//! End-to-end tests of the profile-guided auto-tuner (`twill::tune`,
//! DESIGN.md §13) and the per-queue depth plumbing it actuates.
//!
//! The determinism contract (same program + input + seed ⇒ byte-identical
//! report and search trace) and the strictly-improving acceptance rule
//! (tuned cycles ≤ paper-default cycles, in *both* simulator loop modes)
//! are the load-bearing guarantees here.

use proptest::prelude::*;
use twill::{tune, Compiler, TuneOptions};

/// A pipeline-shaped program with enough work to give the tuner real
/// signals (saturated queues / starved threads), but small enough that a
/// whole search runs in well under a second.
const PIPELINE: &str = r#"
int main() {
  int acc = 0;
  for (int i = 0; i < 200; i++) {
    int x = (i * 7 + 3) ^ (i << 2);
    int y = (x % 13) * (x % 7) + (x >> 1);
    acc += (y % 11) * (y % 11) - (x & 15);
  }
  out(acc);
  return 0;
}
"#;

/// A reduction over a memory-carried array: different shape, also cheap.
const MEMORY: &str = r#"
int buf[64];
int main() {
  for (int i = 0; i < 64; i++) buf[i] = (i * 17) ^ (i << 4);
  int s = 0;
  for (int i = 0; i < 64; i++) s += buf[i] % 23;
  out(s);
  return 0;
}
"#;

fn opts(seed: u64) -> TuneOptions {
    TuneOptions { seed, max_rounds: 3, threads: 2, bench: "t".into() }
}

#[test]
fn tuned_config_never_slower_in_either_loop_mode() {
    let b = Compiler::new().partitions(3).compile("t", PIPELINE).unwrap();
    let golden = b.run_reference(vec![]).unwrap();
    for seed in [0, 1, 42] {
        let cfg = b.sim_config();
        let out = tune(&b, &[], &cfg, &opts(seed)).unwrap();
        let r = &out.report;
        assert!(r.tuned_cycles <= r.baseline_cycles, "seed {seed}: tuner regressed");

        // Replay the accepted configuration under both simulator loops:
        // the fast-forward and naive cores are observably identical by
        // contract, so the tuned config must hold its cycle count — and
        // its win — in each, and keep the program's output intact.
        let tuned_build = out.compiler.build_on(b.graph());
        for fast_forward in [true, false] {
            let mut replay_cfg = out.cfg.clone();
            replay_cfg.fast_forward = fast_forward;
            let repartitioned = r.tuned.sw_fraction.is_some() || r.tuned.partitions.is_some();
            let rep = if repartitioned {
                tuned_build.simulate_hybrid_with(vec![], &replay_cfg)
            } else {
                b.simulate_hybrid_with(vec![], &replay_cfg)
            }
            .unwrap();
            assert_eq!(rep.cycles, r.tuned_cycles, "seed {seed} ff={fast_forward}");
            assert!(rep.cycles <= r.baseline_cycles, "seed {seed} ff={fast_forward}");
            assert_eq!(rep.output, golden, "seed {seed} ff={fast_forward}");
        }
    }
}

#[test]
fn tuning_report_is_identical_across_loop_modes() {
    // The loop mode is a simulator implementation detail; the tuner only
    // sees cycles and metrics, which are identical by contract. So the
    // whole search — every trial, every acceptance — must replay
    // byte-for-byte when the naive loop does the evaluating.
    let b = Compiler::new().partitions(3).compile("t", PIPELINE).unwrap();
    let fast = tune(&b, &[], &b.sim_config(), &opts(9)).unwrap().report;
    let mut slow_cfg = b.sim_config();
    slow_cfg.fast_forward = false;
    let slow = tune(&b, &[], &slow_cfg, &opts(9)).unwrap().report;
    assert_eq!(fast.to_json(), slow.to_json());
    assert_eq!(fast.search_trace(), slow.search_trace());
}

#[test]
fn report_invariants_hold() {
    let b = Compiler::new().partitions(3).compile("t", PIPELINE).unwrap();
    let r = tune(&b, &[], &b.sim_config(), &opts(2)).unwrap().report;

    // Trial 0 is the baseline; ids are the evaluation order.
    assert_eq!(r.trials[0].arm, "baseline");
    assert_eq!(r.trials[0].cycles, r.baseline_cycles);
    for (i, t) in r.trials.iter().enumerate() {
        assert_eq!(t.id, i);
    }
    // Every accepted move strictly improved on the incumbent and names
    // the observability signal that proposed it.
    let accepted: Vec<_> = r.trials.iter().filter(|t| t.accepted && t.arm != "baseline").collect();
    for t in &accepted {
        assert!(t.cycles < t.best_before, "{t:?}");
        assert_ne!(t.signal.kind, "baseline");
        assert!(!t.signal.detail.is_empty());
    }
    // One hint per accepted move, and the diff proof reconciles exactly.
    assert_eq!(r.hints.len(), accepted.len());
    let total: i64 = r.diff.attribution.iter().map(|c| c.delta).sum();
    assert_eq!(total, r.tuned_cycles as i64 - r.baseline_cycles as i64);

    // The search trace is valid JSON with one slice per trial.
    let doc = twill_obs::json::parse(&r.search_trace()).expect("trace parses");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let slices = events.iter().filter(|e| e.get("ph").unwrap().as_str() == Some("X")).count();
    assert_eq!(slices, r.trials.len());
}

#[test]
fn declared_queue_depth_overrides_reach_module_and_area() {
    let base =
        Compiler::new().partitions(2).split_points(vec![0.5, 0.5]).compile("t", PIPELINE).unwrap();
    assert!(!base.dswp().module.queues.is_empty(), "test needs a queue");
    let tuned = Compiler::new()
        .partitions(2)
        .split_points(vec![0.5, 0.5])
        .queue_depths(vec![(0, 32)])
        .compile("t", PIPELINE)
        .unwrap();
    assert_eq!(tuned.dswp().module.queues[0].depth, 32);
    // Only queue 0 changed; the others keep the paper default.
    for (a, b) in base.dswp().module.queues.iter().zip(&tuned.dswp().module.queues).skip(1) {
        assert_eq!(a.depth, b.depth);
    }
    // Deeper declared FIFOs cost BRAM/LUTs: the area model must see them.
    assert!(
        tuned.area().twill_total.luts >= base.area().twill_total.luts,
        "area model ignored the declared depth override"
    );
}

#[test]
fn simulator_queue_depth_overrides_cap_occupancy_and_validate() {
    let b =
        Compiler::new().partitions(2).split_points(vec![0.5, 0.5]).compile("t", PIPELINE).unwrap();
    let n_queues = b.dswp().module.queues.len();
    assert!(n_queues >= 1);

    let mut cfg = b.sim_config();
    cfg.queue_depths = vec![(0, 2)];
    let rep = b.simulate_hybrid_with(vec![], &cfg).unwrap();
    assert!(rep.stats.queue_peak[0] <= 2, "{:?}", rep.stats.queue_peak);
    assert_eq!(rep.output, b.run_reference(vec![]).unwrap());

    // Naming a queue the module doesn't declare is a config error, not a
    // silent no-op.
    let mut bad = b.sim_config();
    bad.queue_depths = vec![(n_queues, 8)];
    let err = b.simulate_hybrid_with(vec![], &bad).unwrap_err();
    assert!(err.to_string().contains("queue_depths"), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Determinism contract: same profile + seed ⇒ byte-identical report
    /// and search trace, for arbitrary seeds and either test program.
    #[test]
    fn same_seed_same_bytes(seed in any::<u64>(), mem in any::<bool>()) {
        let src = if mem { MEMORY } else { PIPELINE };
        let b = Compiler::new().partitions(3).compile("t", src).unwrap();
        let cfg = b.sim_config();
        let a = tune(&b, &[], &cfg, &opts(seed)).unwrap().report;
        let c = tune(&b, &[], &cfg, &opts(seed)).unwrap().report;
        prop_assert_eq!(a.to_json(), c.to_json());
        prop_assert_eq!(a.search_trace(), c.search_trace());
    }

    /// Monotonicity: for any seed the accepted configuration never has
    /// more cycles than the paper default.
    #[test]
    fn any_seed_never_regresses(seed in any::<u64>()) {
        let b = Compiler::new().partitions(3).compile("t", PIPELINE).unwrap();
        let r = tune(&b, &[], &b.sim_config(), &opts(seed)).unwrap().report;
        prop_assert!(r.tuned_cycles <= r.baseline_cycles);
    }
}
