//! The staged artifact pipeline: laziness, memoization, cold-vs-warm
//! equivalence, and parallel-vs-serial determinism.
//!
//! These tests pin down the contract of `twill::artifacts::BuildGraph`:
//! * a Fig 6.5-style sweep runs frontend/passes/DSWP/HLS exactly once,
//! * the pure-HW (LegUp) schedule is never computed unless demanded,
//! * a warm build off a shared graph produces bit-identical results to a
//!   cold from-scratch compile while doing zero new stage work,
//! * the parallel per-function pipeline/scheduler match the serial ones
//!   byte-for-byte on randomized programs.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use twill::artifacts::BuildGraph;
use twill::Compiler;

/// A program with enough structure to produce queues and HW threads.
const SRC: &str = r#"
int mix(int x, int y) {
  int a = x;
  for (int j = 0; j < 10; j++) {
    a = a + ((y ^ j) * 7 % 129);
  }
  return a;
}
int main() {
  int acc = 1;
  for (int i = 0; i < 24; i++) {
    acc = acc + mix(acc, i) % 1009;
  }
  out(acc);
  return 0;
}
"#;

#[test]
fn fig_6_5_style_sweep_compiles_each_stage_once() {
    let b = Compiler::new().partitions(2).compile("sweep", SRC).unwrap();
    let g = b.graph().clone();
    // compile() only forces the frontend (to surface errors eagerly).
    let c = g.counters();
    assert_eq!((c.frontend, c.passes, c.dswp, c.hls), (1, 0, 0, 0));

    // Pure-SW simulation needs the prepared module only.
    let sw = b.simulate_pure_sw(vec![]).unwrap();
    let c = g.counters();
    assert_eq!((c.passes, c.dswp, c.hls), (1, 0, 0));

    // The Fig 6.5 sweep: seven queue-latency points over one build. Only
    // the simulation varies — every compile stage must be reused.
    for lat in [2u32, 4, 8, 16, 32, 64, 128] {
        let cfg = twill::SimulationConfig { queue_latency: lat, ..b.sim_config() };
        let rep = b.simulate_hybrid_with(vec![], &cfg).unwrap();
        assert_eq!(rep.output, sw.output, "latency {lat} diverged");
    }
    let c = g.counters();
    assert_eq!(
        (c.frontend, c.passes, c.dswp, c.hls),
        (1, 1, 1, 1),
        "sweep must run each upstream stage exactly once: {c:?}"
    );

    // The pure-HW (LegUp) schedule was never demanded, so it never ran —
    // the old eager build computed it even for hybrid-only callers.
    let _ = b.simulate_pure_hw(vec![]).unwrap();
    assert_eq!(g.counters().hls, 2, "pure-HW schedule runs only once demanded");
}

#[test]
fn chstone_cold_and_warm_builds_identical() {
    let bench = chstone::by_name("mips").unwrap();
    let inp = chstone::input_for(bench.name, 1);

    // Cold: compile from scratch, no shared graph.
    let cold = Compiler::new()
        .partitions(bench.partitions)
        .build_from_module(chstone::compile_and_prepare(&bench));
    let cold_rep = cold.simulate_hybrid(inp.clone()).unwrap();
    let cold_stats = format!("{:?}", cold.stats());
    let cold_verilog = cold.verilog();

    // Warm: a second build on a graph whose artifacts a first build
    // already forced.
    let graph =
        Arc::new(BuildGraph::from_prepared(bench.name, chstone::compile_and_prepare(&bench)));
    let first = Compiler::new().partitions(bench.partitions).build_on(&graph);
    let _ = first.simulate_hybrid(inp.clone()).unwrap();
    let _ = first.verilog();
    let after_first = graph.counters();

    let warm = Compiler::new().partitions(bench.partitions).build_on(&graph);
    let warm_rep = warm.simulate_hybrid(inp).unwrap();
    let warm_verilog = warm.verilog();
    let after_warm = graph.counters();
    assert_eq!(
        after_warm.runs(),
        after_first.runs(),
        "the warm build must be served entirely from the artifact cache: {after_warm:?}"
    );
    assert!(
        after_warm.hits() > after_first.hits(),
        "warm demands must register as cache hits: {after_warm:?} vs {after_first:?}"
    );
    assert_eq!(warm_rep.cycles, cold_rep.cycles);
    assert_eq!(warm_rep.output, cold_rep.output);
    assert_eq!(format!("{:?}", warm.stats()), cold_stats);
    assert_eq!(*warm_verilog, *cold_verilog);
}

/// Small random mini-C programs: several independent functions so the
/// per-function fan-out has real chunks to split.
fn gen_source(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let nfuncs = rng.gen_range(2..6usize);
    let mut src = String::new();
    for i in 0..nfuncs {
        src.push_str(&format!(
            "int f{i}(int x, int y) {{\n  int a = x + {};\n  for (int j = 0; j < {}; j++) {{\n    a = a + ((y ^ j) * {} % 257);\n  }}\n  return a;\n}}\n",
            rng.gen_range(-50..50),
            rng.gen_range(1..12),
            rng.gen_range(1..9),
        ));
    }
    src.push_str("int main() {\n  int acc = 1;\n");
    for i in 0..nfuncs {
        src.push_str(&format!("  acc = acc + f{i}(acc, {});\n", rng.gen_range(-20..20)));
    }
    src.push_str("  out(acc);\n  return 0;\n}\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The parallel pipeline and scheduler are byte-identical to serial.
    #[test]
    fn parallel_build_matches_serial(seed in 0u64..(1u64 << 48)) {
        let src = gen_source(seed);
        let hls = twill_hls::schedule::HlsOptions::default();
        let build = |threads: usize| {
            let g = BuildGraph::from_source("p", &src, false, Default::default())
                .threads(threads);
            g.ensure_frontend().unwrap();
            let ir = twill_ir::printer::print_module(g.prepared());
            let verilog = g.verilog_for(g.prepared(), g.prepared_hash(), &hls);
            (ir, verilog)
        };
        let (ir_serial, v_serial) = build(1);
        for threads in [2usize, 4] {
            let (ir_par, v_par) = build(threads);
            prop_assert_eq!(&ir_par, &ir_serial, "IR diverged at {} threads", threads);
            prop_assert_eq!(v_par.as_str(), v_serial.as_str(),
                "Verilog diverged at {} threads", threads);
        }
    }
}
