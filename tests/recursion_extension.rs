//! The thesis' §7 future-work extension: recursive programs are accepted
//! and the recursive call tree runs on the software master while the rest
//! of the program still pipelines into hardware.

use twill::Compiler;

const RECURSIVE_SRC: &str = r#"
/* Recursive collatz-length helper inside a streaming loop. */
int collatz_len(int n, int depth) {
  if (n <= 1) return depth;
  if (depth > 60) return depth;
  if (n % 2 == 0) return collatz_len(n / 2, depth + 1);
  return collatz_len(3 * n + 1, depth + 1);
}
int main() {
  int total = 0;
  unsigned int mixer = 0;
  for (int i = 0; i < 24; i++) {
    int v = in();
    int n = (v & 1023) + 2;
    total += collatz_len(n, 0);                 /* recursive: software   */
    unsigned int x = (unsigned int) v;          /* pure mixing: hardware */
    x = (x ^ 0x9E3779B9) * 2654435761u;
    x = (x >> 13) ^ x;
    x = x * 2246822519u;
    mixer = mixer * 31 + x;
  }
  out(total);
  out((int) mixer);
  return 0;
}
"#;

fn input() -> Vec<i32> {
    (0..24).map(|i| i * 977 + 31).collect()
}

#[test]
fn default_compiler_rejects_recursion() {
    let err = match Compiler::new().compile("rec", RECURSIVE_SRC) {
        Err(e) => e,
        Ok(_) => panic!("recursion should be rejected by default"),
    };
    assert!(err.msg.contains("recursion"), "{err}");
}

#[test]
fn recursive_program_runs_in_all_configs() {
    let b = Compiler::new()
        .allow_recursion(true)
        .partitions(3)
        .compile("rec", RECURSIVE_SRC)
        .expect("compile with recursion");
    let golden = b.run_reference(input()).expect("reference");
    assert_eq!(golden.len(), 2);

    let sw = b.simulate_pure_sw(input()).expect("sw sim");
    assert_eq!(sw.output, golden);

    let tw = b.simulate_hybrid(input()).expect("hybrid sim");
    assert_eq!(tw.output, golden);

    // The recursive helper must have landed on the software master: its
    // hardware-partition versions are stubs (no instructions beyond ret).
    let m = &b.dswp().module;
    for f in &m.funcs {
        if f.name.starts_with("collatz_len_dswp_") && !f.name.ends_with("_0") {
            let real = f
                .inst_ids_in_layout()
                .iter()
                .filter(|(_, i)| {
                    !matches!(f.inst(*i).op, twill_ir::Op::Br(_) | twill_ir::Op::Ret(_))
                })
                .count();
            assert_eq!(real, 0, "@{} should be a control-only stub", f.name);
        }
    }
    // And the CPU did real work while hardware still participated.
    assert!(tw.cpu_busy_fraction > 0.05, "cpu {:.2}", tw.cpu_busy_fraction);
}

#[test]
fn mutual_recursion_is_handled() {
    let src = r#"
int is_odd(int n);
int is_even(int n) {
  if (n == 0) return 1;
  return is_odd(n - 1);
}
int is_odd(int n) {
  if (n == 0) return 0;
  return is_even(n - 1);
}
int main() {
  int s = 0;
  for (int i = 0; i < 12; i++) s += is_even(i) * (i + 1);
  out(s);
  return 0;
}
"#;
    // Forward declarations aren't in the grammar; declare via definition
    // order instead.
    let src = src.replace("int is_odd(int n);\n", "");
    // is_even calls is_odd before its definition — our frontend resolves
    // functions module-wide, so this parses.
    let b = Compiler::new()
        .allow_recursion(true)
        .partitions(2)
        .compile("mutual", &src)
        .expect("compile");
    let golden = b.run_reference(vec![]).unwrap();
    assert_eq!(b.simulate_pure_sw(vec![]).unwrap().output, golden);
    assert_eq!(b.simulate_hybrid(vec![]).unwrap().output, golden);
}

#[test]
fn runaway_recursion_faults_cleanly() {
    let src = "int f(int n) { return f(n + 1); } int main() { out(f(0)); return 0; }";
    let b = Compiler::new().allow_recursion(true).partitions(2).compile("inf", src).unwrap();
    let err = b.run_reference(vec![]).unwrap_err();
    assert!(matches!(err, twill_ir::ExecError::Recursion(_)), "{err}");
}
