//! Smoke tests over the experiment harness: every table/figure function
//! runs and reproduces the paper's qualitative shape at a reduced scale.

#[test]
fn fig_6_2_ordering_holds() {
    // Default workload scales: pipelines need enough iterations to reach
    // steady state (the paper runs full CHStone workloads).
    let rows = twill::experiments::fig_6_2(None);
    assert_eq!(rows.len(), 8);
    let (hw, twill, ratio) = twill::experiments::fig_6_2_geomeans(&rows);
    // Paper: HW 13.6x, Twill 22.2x, ratio 1.63x. Shape reproduced: both
    // far above 1; Twill at least on par with pure HW on average.
    assert!(hw > 3.0, "pure HW geomean {hw:.2}");
    assert!(twill > 3.0, "Twill geomean {twill:.2}");
    assert!(ratio > 0.95, "Twill/HW geomean {ratio:.2}");
    for r in &rows {
        assert!(r.hw_speedup > 1.5, "{}: HW {:.2}", r.name, r.hw_speedup);
        assert!(r.twill_speedup > 1.5, "{}: Twill {:.2}", r.name, r.twill_speedup);
    }
}

#[test]
fn split_point_sweep_shapes() {
    // Fig 6.3: performance varies with the split point, and queue count
    // anti-correlates with performance (paper §6.5).
    let rows = twill::experiments::fig_6_3_4("mips", Some(1));
    assert_eq!(rows.len(), 9);
    let best = rows.iter().map(|r| r.cycles).min().unwrap();
    let worst = rows.iter().map(|r| r.cycles).max().unwrap();
    assert!(worst > best, "sweep should show variation");
}

#[test]
fn blowfish_tuned_beats_default() {
    let r = twill::experiments::blowfish_tuned(Some(1));
    assert!(
        r.tuned_cycles <= r.default_cycles,
        "tuned {} vs default {}",
        r.tuned_cycles,
        r.default_cycles
    );
    assert!(r.tuned_queues <= r.default_queues);
}

#[test]
fn fig_6_6_small_queues_slow_or_equal() {
    for row in twill::experiments::fig_6_6(Some(1)) {
        // depth 2 never beats depth 8 by more than noise.
        assert!(row.normalized[0] <= 1.02, "{}: depth-2 speedup {:?}", row.name, row.normalized);
        // Everything fits the device at depth 8 in our calibration.
        assert!(row.fits_device[2], "{}", row.name);
    }
}
