//! Acceptance test for the fault story on a real benchmark: a pinned
//! message drop deadlocks the CHStone blowfish hybrid, the watchdog
//! diagnoses the hang down to C source lines, and `run_resilient` still
//! serves the correct answer over the pure-software fallback — reporting
//! which path served and why the hybrid was abandoned.

use twill::{
    Compiler, FaultPlan, FaultSite, FaultSpec, PinnedFault, ServedBy, SimError, SimulationConfig,
};

fn blowfish() -> (twill::TwillBuild, Vec<i32>, Vec<i32>) {
    let b = chstone::by_name("blowfish").unwrap();
    let build = Compiler::new().partitions(b.partitions).compile(b.name, b.source).unwrap();
    let input = chstone::input_for(b.name, 1);
    let golden = build.run_reference(input.clone()).unwrap();
    (build, input, golden)
}

/// A message silently lost on q0 in every attempt (pinned faults fire
/// regardless of the retry reseed), with a small watchdog so the hang is
/// diagnosed quickly.
fn lossy_cfg(build: &twill::TwillBuild) -> SimulationConfig {
    let spec = FaultSpec {
        pinned: vec![PinnedFault { cycle: 0, site: FaultSite::QueueDrop { queue: 0 } }],
        ..Default::default()
    };
    SimulationConfig {
        fault: Some(FaultPlan::new(42, spec)),
        watchdog_window: 100_000,
        max_cycles: 50_000_000,
        ..build.sim_config()
    }
}

#[test]
fn dropped_message_is_diagnosed_and_survived() {
    let (build, input, golden) = blowfish();
    let cfg = lossy_cfg(&build);

    // 1. The faulted hybrid hangs, and the watchdog explains it.
    let err = build.simulate_hybrid_with(input.clone(), &cfg).unwrap_err();
    let report = match &err {
        SimError::Deadlock { report, partial } => {
            assert_eq!(partial.stats.faults.drops, 1, "the pinned drop was injected");
            report
        }
        other => panic!("expected the lost message to hang the pipeline, got {other}"),
    };
    assert!(!report.agents.is_empty(), "agents must be named");
    assert!(
        report
            .agents
            .iter()
            .any(|a| !matches!(a.state, twill::WaitState::Running | twill::WaitState::Finished)),
        "at least one agent is resource-blocked: {:?}",
        report.agents
    );
    assert!(!report.chain.is_empty(), "the wait-for walk found the dependency chain");
    assert!(
        !report.source_lines().is_empty(),
        "the diagnosis points at C source lines: {}",
        report.render()
    );
    // The top-level error message carries the chain too.
    assert!(err.to_string().contains(" -> "), "{err}");

    // 2. Graceful degradation: every hybrid attempt fails the same way,
    //    and the pure-SW fallback serves the golden output.
    let outcome = build.run_resilient(input.clone(), &cfg, 3).unwrap();
    assert_eq!(outcome.served_by, ServedBy::PureSw);
    assert_eq!(outcome.served_by.to_string(), "pure-SW fallback");
    assert_eq!(outcome.failures.len(), 3, "one failure per abandoned attempt");
    assert!(outcome.failures.iter().all(|f| f.contains("deadlock")), "{:?}", outcome.failures);
    assert_eq!(outcome.report.output, golden, "the served output is correct");
    assert_eq!(outcome.report.stats.faults.total(), 0, "fallback runs with injection off");

    // 3. Happy path: an armed-but-inert plan serves from the first hybrid
    //    attempt and reports it.
    let quiet = SimulationConfig {
        fault: Some(FaultPlan::new(42, FaultSpec::uniform(0.0))),
        ..build.sim_config()
    };
    let outcome = build.run_resilient(input, &quiet, 3).unwrap();
    assert_eq!(outcome.served_by, ServedBy::Hybrid { attempt: 0 });
    assert!(outcome.failures.is_empty());
    assert_eq!(outcome.report.output, golden);
}
