//! Source-location plumbing, end to end.
//!
//! Three contracts make line-granular profiling trustworthy (DESIGN.md
//! §10):
//! * the preparation pipeline and DSWP extraction never *invent* a source
//!   line — every surviving instruction maps to a line the frontend
//!   stamped on the original program, or to `SrcLoc::NONE`,
//! * the IR text format round-trips the location table byte-identically,
//! * simulated cycle attribution is exhaustive — per-line attributed
//!   cycles sum to each thread's total cycle count, and observing a run
//!   never changes it.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use twill::Compiler;
use twill_ir::SrcLoc;

/// Random mini-C programs with calls, loops, and branches so the pipeline
/// exercises inlining, switch lowering, if-conversion, and loop transforms.
fn gen_source(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let nfuncs = rng.gen_range(2..5usize);
    let mut src = String::new();
    for i in 0..nfuncs {
        src.push_str(&format!(
            "int f{i}(int x, int y) {{\n  int a = x + {};\n  if (y > {}) {{\n    a = a * 3;\n  }} else {{\n    a = a - 1;\n  }}\n  for (int j = 0; j < {}; j++) {{\n    a = a + ((y ^ j) * {} % 257);\n  }}\n  return a;\n}}\n",
            rng.gen_range(-50..50),
            rng.gen_range(-5..5),
            rng.gen_range(1..12),
            rng.gen_range(1..9),
        ));
    }
    src.push_str("int main() {\n  int acc = 1;\n");
    for i in 0..nfuncs {
        src.push_str(&format!("  acc = acc + f{i}(acc, {});\n", rng.gen_range(-20..20)));
    }
    src.push_str("  out(acc);\n  return 0;\n}\n");
    src
}

/// Every line referenced anywhere in the module (the frontend's stamp set).
fn live_lines(m: &twill_ir::Module) -> BTreeSet<u32> {
    let mut lines = BTreeSet::new();
    for f in &m.funcs {
        lines.extend(f.live_loc_lines());
    }
    lines
}

fn assert_locations_valid(m: &twill_ir::Module, valid: &BTreeSet<u32>, stage: &str) {
    for f in &m.funcs {
        for (_, iid) in f.inst_ids_in_layout() {
            let loc = f.loc(iid);
            assert!(
                loc == SrcLoc::NONE || valid.contains(&loc.line),
                "{stage}: {}: instruction {iid:?} carries invented line {}",
                f.name,
                loc.line
            );
        }
    }
}

/// The ` !N` location suffixes of an IR listing, in layout order.
fn loc_stream(text: &str) -> Vec<String> {
    text.lines().filter_map(|l| l.rsplit_once(" !").map(|(_, loc)| loc.to_string())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full preparation pipeline and DSWP extraction preserve the
    /// location table: surviving instructions only ever map to lines the
    /// frontend stamped (inlining may migrate a callee's line into the
    /// caller, but never fabricate one).
    #[test]
    fn pipeline_and_dswp_preserve_location_table(seed in 0u64..(1u64 << 48)) {
        let src = gen_source(seed);
        let frontend = twill_frontend::compile("p", &src).unwrap();
        let valid = live_lines(&frontend);
        prop_assert!(!valid.is_empty(), "frontend stamped no locations");

        let mut prepared = frontend;
        twill_passes::run_standard_pipeline(&mut prepared, &Default::default());
        assert_locations_valid(&prepared, &valid, "pipeline");

        let build = Compiler::new().partitions(2).compile("p", &src).unwrap();
        assert_locations_valid(&build.dswp().module, &valid, "dswp");
    }

    /// The location table survives printer -> parser byte-identically: the
    /// `!line` suffix stream (in layout order) is unchanged by a round
    /// trip, and once the parser has normalized value numbering the text
    /// form is a fixed point.
    #[test]
    fn location_table_roundtrips_byte_identically(seed in 0u64..(1u64 << 48)) {
        let src = gen_source(seed);
        let build = Compiler::new().partitions(2).compile("p", &src).unwrap();
        let printed = twill_ir::printer::print_module(build.prepared());
        let reparsed = twill_ir::parser::parse_module(&printed).unwrap();
        let printed2 = twill_ir::printer::print_module(&reparsed);
        // The parser renumbers values densely, so compare the location
        // stream rather than whole lines...
        prop_assert_eq!(loc_stream(&printed), loc_stream(&printed2), "location suffixes changed");
        prop_assert!(!loc_stream(&printed).is_empty(), "prepared module printed no locations");
        // ...and demand full byte-identity once numbering is normalized.
        let reparsed2 = twill_ir::parser::parse_module(&printed2).unwrap();
        prop_assert_eq!(twill_ir::printer::print_module(&reparsed2), printed2);
    }
}

/// Pins the attribution invariant on a real CHStone run: profiling is
/// observation-only (identical cycles/output), and per-line attributed
/// cycles sum exactly to each thread's total cycle count.
#[test]
fn chstone_per_line_attribution_sums_to_thread_cycles() {
    let b = chstone::by_name("mips").unwrap();
    let graph = twill::experiments::benchmark_graph(&b);
    let build = Compiler::new().partitions(b.partitions).build_on(&graph);
    let inp = chstone::input_for(b.name, 1);

    let plain = build.simulate_hybrid(inp.clone()).unwrap();
    let cfg = twill::SimulationConfig { profile: true, ..build.sim_config() };
    let rep = build.simulate_hybrid_with(inp, &cfg).unwrap();
    assert_eq!(rep.cycles, plain.cycles, "profiling must not change the simulation");
    assert_eq!(rep.output, plain.output, "profiling must not change the output");

    let sp = rep.source_profile(&build.dswp().module).expect("profile requested");
    let totals = sp.thread_totals();
    assert!(!totals.is_empty());
    for (thread, total) in &totals {
        assert_eq!(
            *total, rep.cycles,
            "{thread}: per-line attributed cycles must sum to the thread's total"
        );
    }
    assert!(
        sp.samples.iter().any(|s| s.line != 0),
        "a real benchmark must attribute cycles to real source lines"
    );
    let (line, cycles) = sp.hottest_line().expect("some line is hottest");
    assert!(line > 0 && cycles > 0);
}
