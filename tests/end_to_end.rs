//! Cross-crate integration: the full Twill flow (frontend → passes → PDG →
//! DSWP → HLS → cycle simulation) on hand-written programs exercising each
//! language/runtime feature, differentially tested in all three
//! configurations.

use twill::Compiler;

fn check_all_configs(name: &str, src: &str, input: Vec<i32>, partitions: usize) {
    let b = Compiler::new()
        .partitions(partitions)
        .compile(name, src)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    let golden = b.run_reference(input.clone()).unwrap_or_else(|e| panic!("{name}: {e}"));
    let sw = b.simulate_pure_sw(input.clone()).unwrap_or_else(|e| panic!("{name} sw: {e}"));
    assert_eq!(sw.output, golden, "{name}: pure SW diverged");
    let hw = b.simulate_pure_hw(input.clone()).unwrap_or_else(|e| panic!("{name} hw: {e}"));
    assert_eq!(hw.output, golden, "{name}: pure HW diverged");
    let tw = b.simulate_hybrid(input).unwrap_or_else(|e| panic!("{name} hybrid: {e}"));
    assert_eq!(tw.output, golden, "{name}: hybrid diverged");
}

#[test]
fn feistel_rounds_pipeline() {
    check_all_configs(
        "feistel",
        r#"
unsigned int f_round(unsigned int x, unsigned int k) {
  return ((x << 5) ^ (x >> 7)) + k;
}
int main() {
  int n = in();
  unsigned int checksum = 0;
  for (int i = 0; i < n; i++) {
    unsigned int l = (unsigned int) in();
    unsigned int r = (unsigned int) in();
    r ^= f_round(l, 0x9E3779B9); l ^= f_round(r, 0x7F4A7C15);
    r ^= f_round(l, 0x85EBCA6B); l ^= f_round(r, 0xC2B2AE35);
    r ^= f_round(l, 0x27D4EB2F); l ^= f_round(r, 0x165667B1);
    checksum = checksum * 31 + (l ^ r);
  }
  out((int) checksum);
  return 0;
}
"#,
        {
            let mut v = vec![20];
            for i in 0..40 {
                v.push(i * 7919 + 13);
            }
            v
        },
        4,
    );
}

#[test]
fn histogram_with_arrays() {
    check_all_configs(
        "hist",
        r#"
int bins[16];
int main() {
  int n = in();
  for (int i = 0; i < n; i++) {
    int v = in();
    bins[v & 15] += 1;
  }
  for (int i = 0; i < 16; i++) out(bins[i]);
  return 0;
}
"#,
        {
            let mut v = vec![64];
            for i in 0..64 {
                v.push(i * i + 3);
            }
            v
        },
        3,
    );
}

#[test]
fn division_heavy_kernel() {
    // Exercises the 34-vs-13-cycle divider asymmetry the thesis quotes.
    check_all_configs(
        "divk",
        r#"
int main() {
  int acc = 0;
  for (int d = 1; d <= 50; d++) {
    acc += 1000000 / d + 1000000 % d;
  }
  out(acc);
  return 0;
}
"#,
        vec![],
        3,
    );
}

#[test]
fn nested_loops_and_switch() {
    check_all_configs(
        "nested",
        r#"
int classify(int x) {
  switch (x & 3) {
    case 0: return x * 2;
    case 1: return x - 7;
    case 2: return x ^ 0x55;
    default: return -x;
  }
}
int main() {
  int total = 0;
  for (int i = 0; i < 12; i++) {
    for (int j = 0; j < 9; j++) {
      total += classify(i * 9 + j);
    }
  }
  out(total);
  return 0;
}
"#,
        vec![],
        3,
    );
}

#[test]
fn pointer_walk() {
    check_all_configs(
        "ptr",
        r#"
int data[32];
int sum_region(int *p, int n) {
  int s = 0;
  while (n > 0) {
    s += *p;
    p = p + 1;
    n--;
  }
  return s;
}
int main() {
  for (int i = 0; i < 32; i++) data[i] = i * 3 - 7;
  out(sum_region(data, 32));
  out(sum_region(&data[8], 8));
  return 0;
}
"#,
        vec![],
        2,
    );
}

#[test]
fn unsigned_and_narrow_types() {
    check_all_configs(
        "narrow",
        r#"
unsigned char state[8];
int main() {
  for (int i = 0; i < 8; i++) state[i] = (unsigned char)(i * 37);
  unsigned short acc = 0;
  for (int r = 0; r < 20; r++) {
    for (int i = 0; i < 8; i++) {
      unsigned char v = state[i];
      state[i] = (unsigned char)((v << 1) | (v >> 7));
      acc = (unsigned short)(acc + state[i]);
    }
  }
  out(acc);
  for (int i = 0; i < 8; i++) out(state[i]);
  return 0;
}
"#,
        vec![],
        3,
    );
}

#[test]
fn deep_call_chain() {
    check_all_configs(
        "calls",
        r#"
int leaf(int x) { return x * x + 1; }
int mid(int x) { return leaf(x) + leaf(x + 1); }
int top(int x) { return mid(x) - mid(x - 1); }
int main() {
  int s = 0;
  for (int i = 0; i < 25; i++) s += top(i);
  out(s);
  return 0;
}
"#,
        vec![],
        3,
    );
}

#[test]
fn queue_depth_and_latency_sweeps_preserve_output() {
    let src = r#"
int main() {
  int acc = 0;
  for (int i = 0; i < 60; i++) {
    int x = in();
    acc += ((x * 13) ^ (x >> 3)) % 101;
  }
  out(acc);
  return 0;
}
"#;
    let mut input = vec![];
    for i in 0..60 {
        input.push(i * 31 + 5);
    }
    let b = twill::Compiler::new()
        .partitions(3)
        .split_points(vec![0.0, 0.5, 0.5])
        .compile("sweep", src)
        .unwrap();
    let golden = b.run_reference(input.clone()).unwrap();
    for latency in [2, 16, 128] {
        for depth in [2, 8, 32] {
            let cfg = twill_rt::SimConfig {
                queue_latency: latency,
                queue_depth: Some(depth),
                ..b.sim_config()
            };
            let rep = b
                .simulate_hybrid_with(input.clone(), &cfg)
                .unwrap_or_else(|e| panic!("lat={latency} depth={depth}: {e}"));
            assert_eq!(rep.output, golden, "lat={latency} depth={depth}");
        }
    }
}
