//! Differential fuzzing: generate random (but terminating, well-defined)
//! mini-C programs and require that the interpreter reference, the
//! optimization pipeline, the DSWP functional co-execution and the
//! cycle-level simulation of all three configurations agree bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Structured random program generator.
struct Gen {
    rng: StdRng,
    depth: u32,
    var_count: u32,
    loop_count: u32,
    /// Names of in-scope pure helper functions (all arity 2).
    helpers: Vec<String>,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            rng: StdRng::seed_from_u64(seed),
            depth: 0,
            var_count: 0,
            loop_count: 0,
            helpers: Vec::new(),
        }
    }

    fn fresh_var(&mut self) -> String {
        self.var_count += 1;
        format!("v{}", self.var_count)
    }

    /// An expression over the in-scope variables (always defined behavior:
    /// divisors forced non-zero, shifts masked).
    fn expr(&mut self, vars: &[String], depth: u32) -> String {
        if depth == 0 || vars.is_empty() || self.rng.gen_bool(0.3) {
            if !vars.is_empty() && self.rng.gen_bool(0.7) {
                return vars[self.rng.gen_range(0..vars.len())].clone();
            }
            return format!("{}", self.rng.gen_range(-100..100));
        }
        let a = self.expr(vars, depth - 1);
        let b = self.expr(vars, depth - 1);
        if !self.helpers.is_empty() && self.rng.gen_bool(0.15) {
            let h = self.helpers[self.rng.gen_range(0..self.helpers.len())].clone();
            return format!("{h}({a}, {b})");
        }
        match self.rng.gen_range(0..10) {
            0 => format!("({a} + {b})"),
            1 => format!("({a} - {b})"),
            2 => format!("({a} * {b})"),
            3 => format!("({a} / (({b} & 7) + 1))"),
            4 => format!("({a} % (({b} & 15) + 1))"),
            5 => format!("({a} ^ {b})"),
            6 => format!("({a} & {b})"),
            7 => format!("({a} | {b})"),
            8 => format!("({a} << ({b} & 7))"),
            _ => format!("({a} >> ({b} & 7))"),
        }
    }

    fn cond(&mut self, vars: &[String]) -> String {
        let a = self.expr(vars, 1);
        let b = self.expr(vars, 1);
        let op = ["<", ">", "<=", ">=", "==", "!="][self.rng.gen_range(0..6usize)];
        format!("{a} {op} {b}")
    }

    /// A statement block writing only to `vars` and the global array.
    fn stmts(&mut self, vars: &mut Vec<String>, budget: &mut u32) -> String {
        let mut out = String::new();
        let n = self.rng.gen_range(1..4);
        for _ in 0..n {
            if *budget == 0 {
                break;
            }
            *budget -= 1;
            match self.rng.gen_range(0..8) {
                // new local
                0 | 1 => {
                    let e = self.expr(vars, 2);
                    let v = self.fresh_var();
                    out.push_str(&format!("int {v} = {e};\n"));
                    vars.push(v);
                }
                // assignment (never to a loop induction variable)
                2 | 3 => {
                    let targets: Vec<String> =
                        vars.iter().filter(|v| !v.starts_with("it")).cloned().collect();
                    if let Some(v) = self.pick(&targets) {
                        let e = self.expr(vars, 2);
                        out.push_str(&format!("{v} = {e};\n"));
                    }
                }
                // array store + load
                4 => {
                    let idx = self.expr(vars, 1);
                    let e = self.expr(vars, 2);
                    out.push_str(&format!("buf[({idx}) & 31] = {e};\n"));
                    let targets: Vec<String> =
                        vars.iter().filter(|v| !v.starts_with("it")).cloned().collect();
                    if let Some(v) = self.pick(&targets) {
                        let idx2 = self.expr(vars, 1);
                        out.push_str(&format!("{v} = {v} + buf[({idx2}) & 31];\n"));
                    }
                }
                // if/else
                5 => {
                    if self.depth < 2 {
                        self.depth += 1;
                        let c = self.cond(vars);
                        let mut tv = vars.clone();
                        let t = self.stmts(&mut tv, budget);
                        let mut ev = vars.clone();
                        let e = self.stmts(&mut ev, budget);
                        out.push_str(&format!("if ({c}) {{\n{t}}} else {{\n{e}}}\n"));
                        self.depth -= 1;
                    }
                }
                // bounded for loop
                6 => {
                    if self.depth < 2 && self.loop_count < 4 {
                        self.depth += 1;
                        self.loop_count += 1;
                        let iters = self.rng.gen_range(2..12);
                        self.var_count += 1;
                        let i = format!("it{}", self.var_count);
                        let mut bv = vars.clone();
                        bv.push(i.clone());
                        let body = self.stmts(&mut bv, budget);
                        out.push_str(&format!(
                            "for (int {i} = 0; {i} < {iters}; {i}++) {{\n{body}}}\n"
                        ));
                        self.depth -= 1;
                    }
                }
                // input read
                _ => {
                    let v = self.fresh_var();
                    out.push_str(&format!("int {v} = in();\n"));
                    vars.push(v);
                }
            }
        }
        out
    }

    fn pick(&mut self, vars: &[String]) -> Option<String> {
        if vars.is_empty() {
            None
        } else {
            Some(vars[self.rng.gen_range(0..vars.len())].clone())
        }
    }

    fn program(&mut self) -> String {
        let mut vars = vec!["seed".to_string()];
        let mut budget = 28u32;
        let body = self.stmts(&mut vars, &mut budget);
        let sink = self.expr(&vars, 2);
        format!(
            "int buf[32];\nint main() {{\nint seed = in();\n{body}out({sink});\nfor (int k = 0; k < 32; k++) out(buf[k]);\nreturn 0;\n}}\n"
        )
    }

    /// A pure two-argument helper: straight-line math over its params,
    /// optionally folded through a short bounded loop. Defined behavior by
    /// the same masking rules as `expr`.
    fn helper(&mut self, name: &str) -> String {
        let params = vec!["a".to_string(), "b".to_string()];
        let e1 = self.expr(&params, 2);
        if self.rng.gen_bool(0.5) {
            let iters = self.rng.gen_range(2..6);
            let step = self.expr(&["a".to_string(), "b".to_string(), "r".to_string()], 1);
            format!(
                "int {name}(int a, int b) {{\nint r = {e1};\nfor (int k = 0; k < {iters}; k++) r = r ^ ({step});\nreturn r;\n}}\n"
            )
        } else {
            let e2 = self.expr(&params, 2);
            format!("int {name}(int a, int b) {{\nreturn ({e1}) + ({e2});\n}}\n")
        }
    }

    /// Like `program`, but first defines 1–3 helpers that expressions may
    /// call — exercises per-partition function versioning and call-result
    /// forwarding in DSWP on random shapes.
    fn program_with_helpers(&mut self) -> String {
        let n = self.rng.gen_range(1..=3);
        let mut defs = String::new();
        for i in 0..n {
            let name = format!("h{i}");
            defs.push_str(&self.helper(&name));
            self.helpers.push(name);
        }
        let mut vars = vec!["seed".to_string()];
        let mut budget = 24u32;
        let body = self.stmts(&mut vars, &mut budget);
        let sink = self.expr(&vars, 2);
        format!(
            "int buf[32];\n{defs}int main() {{\nint seed = in();\n{body}out({sink});\nfor (int k = 0; k < 32; k++) out(buf[k]);\nreturn 0;\n}}\n"
        )
    }
}

fn check_program(seed: u64) {
    check_source(seed, Gen::new(seed).program());
}

fn check_source(seed: u64, src: String) {
    let build = twill::Compiler::new()
        .partitions(2 + (seed % 3) as usize)
        .compile("fuzz", &src)
        .unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e}\n{src}"));

    // Unoptimized reference (frontend output before the pass pipeline).
    let raw = twill_frontend::compile("fuzz", &src).unwrap();
    let input = vec![seed as i32, 7, -3, 100, 5, 0, 1, 2, 3, 4, 5, 6, 7, 8];
    let (golden, _, _) = twill_ir::interp::run_main(&raw, input.clone(), 500_000_000)
        .unwrap_or_else(|e| panic!("seed {seed}: raw run: {e}\n{src}"));

    // Pipeline preserved semantics.
    let opt = build
        .run_reference(input.clone())
        .unwrap_or_else(|e| panic!("seed {seed}: optimized run: {e}\n{src}"));
    assert_eq!(golden, opt, "seed {seed}: pipeline diverged\n{src}");

    // DSWP functional co-execution.
    let (part_out, _, _) = twill_dswp::run_partitioned(build.dswp(), input.clone(), 500_000_000)
        .unwrap_or_else(|e| panic!("seed {seed}: partitioned: {e}\n{src}"));
    assert_eq!(golden, part_out, "seed {seed}: DSWP diverged\n{src}");

    // Cycle-accurate configurations.
    let sw = build
        .simulate_pure_sw(input.clone())
        .unwrap_or_else(|e| panic!("seed {seed}: sw sim: {e}\n{src}"));
    assert_eq!(golden, sw.output, "seed {seed}: SW sim diverged\n{src}");
    let hw = build
        .simulate_pure_hw(input.clone())
        .unwrap_or_else(|e| panic!("seed {seed}: hw sim: {e}\n{src}"));
    assert_eq!(golden, hw.output, "seed {seed}: HW sim diverged\n{src}");
    let tw = build
        .simulate_hybrid(input)
        .unwrap_or_else(|e| panic!("seed {seed}: hybrid sim: {e}\n{src}"));
    assert_eq!(golden, tw.output, "seed {seed}: hybrid sim diverged\n{src}");
}

#[test]
fn fuzz_batch_a() {
    for seed in 0..12 {
        check_program(seed);
    }
}

#[test]
fn fuzz_batch_b() {
    for seed in 100..112 {
        check_program(seed);
    }
}

#[test]
fn fuzz_batch_helpers() {
    // Programs whose expressions call randomly generated pure helpers:
    // exercises per-partition function versioning, ret-owner forwarding
    // and call memory-token fan-out on random shapes.
    let mut with_calls = 0;
    for seed in 300..310 {
        let src = Gen::new(seed).program_with_helpers();
        if src.contains("h0(") || src.contains("h1(") || src.contains("h2(") {
            with_calls += 1;
        }
        check_source(seed, src);
    }
    assert!(with_calls >= 5, "generator must actually emit helper calls: {with_calls}/10");
}

#[test]
fn fuzz_batch_c_forced_splits() {
    // Force aggressive splitting (bypasses the cost-model merge) so queue
    // machinery gets exercised even on small programs.
    for seed in 200..208 {
        let src = Gen::new(seed).program();
        let build = twill::Compiler::new()
            .partitions(3)
            .split_points(vec![0.2, 0.4, 0.4])
            .compile("fuzz", &src)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        let input = vec![seed as i32, 1, 2, 3, 4, 5, 6, 7, 8, 9];
        let golden = build.run_reference(input.clone()).unwrap();
        let (part_out, _, _) =
            twill_dswp::run_partitioned(build.dswp(), input.clone(), 500_000_000)
                .unwrap_or_else(|e| panic!("seed {seed}: partitioned: {e}\n{src}"));
        assert_eq!(golden, part_out, "seed {seed}\n{src}");
        let tw = build
            .simulate_hybrid(input)
            .unwrap_or_else(|e| panic!("seed {seed}: hybrid: {e}\n{src}"));
        assert_eq!(golden, tw.output, "seed {seed}\n{src}");
    }
}
