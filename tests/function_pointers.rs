//! The thesis' §7 function-pointer extension: function addresses are
//! first-class, indirect calls execute on the software master, and the
//! rest of the program still reaches hardware.

use twill::Compiler;

const DISPATCH_SRC: &str = r#"
int op_add(int a, int b) { return a + b; }
int op_xor(int a, int b) { return a ^ b; }
int op_mul(int a, int b) { return (a * b) & 0xFFFF; }

int main() {
  int *table[4];
  table[0] = op_add;
  table[1] = op_xor;
  table[2] = op_mul;
  table[3] = op_add;
  int acc = 1;
  unsigned int hw = 0;
  for (int i = 0; i < 16; i++) {
    int v = in();
    acc = table[i & 3](acc, v);      /* indirect: software master */
    unsigned int x = (unsigned int) v * 2654435761u;
    hw = hw * 31 + ((x >> 9) ^ x);   /* pure mixing: hardware     */
  }
  out(acc);
  out((int) hw);
  return 0;
}
"#;

fn input() -> Vec<i32> {
    (0..16).map(|i| i * 37 + 5).collect()
}

#[test]
fn dispatch_table_all_configs() {
    let b = Compiler::new().partitions(3).compile("fp", DISPATCH_SRC).expect("compile");
    let golden = b.run_reference(input()).expect("reference");
    // Hand-check the accumulator against Rust.
    let mut acc: i32 = 1;
    for (i, v) in input().into_iter().enumerate() {
        acc = match i & 3 {
            0 | 3 => acc.wrapping_add(v),
            1 => acc ^ v,
            _ => (acc.wrapping_mul(v)) & 0xFFFF,
        };
    }
    assert_eq!(golden[0], acc);

    assert_eq!(b.simulate_pure_sw(input()).unwrap().output, golden);
    let tw = b.simulate_hybrid(input()).expect("hybrid");
    assert_eq!(tw.output, golden);
}

#[test]
fn address_taken_functions_are_software_pinned() {
    let b = Compiler::new().partitions(3).compile("fp", DISPATCH_SRC).unwrap();
    for f in &b.dswp().module.funcs {
        let hw_version = f.name.starts_with("op_") && !f.name.ends_with("_dswp_0");
        if hw_version {
            let real = f
                .inst_ids_in_layout()
                .iter()
                .filter(|(_, i)| {
                    !matches!(f.inst(*i).op, twill_ir::Op::Br(_) | twill_ir::Op::Ret(_))
                })
                .count();
            assert_eq!(real, 0, "@{} must be a stub (software-pinned)", f.name);
        }
    }
}

#[test]
fn deref_call_syntax() {
    let src = r#"
int twice(int x) { return 2 * x; }
int main() {
  int *fp = twice;
  out((*fp)(21));
  out(fp(10));
  return 0;
}
"#;
    let b = Compiler::new().partitions(2).compile("fp2", src).unwrap();
    let golden = b.run_reference(vec![]).unwrap();
    assert_eq!(golden, vec![42, 20]);
    assert_eq!(b.simulate_hybrid(vec![]).unwrap().output, golden);
}

#[test]
fn bad_indirect_target_traps() {
    let src = r#"
int main() {
  int x = 1234;
  int *p = &x;
  out(p(1));
  return 0;
}
"#;
    let b = Compiler::new().partitions(2).compile("bad", src).unwrap();
    let err = b.run_reference(vec![]).unwrap_err();
    assert!(matches!(err, twill_ir::ExecError::Trap(_)), "{err}");
}

#[test]
fn arity_mismatch_traps() {
    let src = r#"
int one_arg(int x) { return x; }
int main() {
  int *fp = one_arg;
  out(fp(1, 2));
  return 0;
}
"#;
    let b = Compiler::new().partitions(2).compile("arity", src).unwrap();
    let err = b.run_reference(vec![]).unwrap_err();
    assert!(matches!(err, twill_ir::ExecError::Trap(_)), "{err}");
}

#[test]
fn functions_not_assignable() {
    let src = "int f() { return 1; } int main() { f = 3; return 0; }";
    let err = match Compiler::new().compile("na", src) {
        Err(e) => e,
        Ok(_) => panic!("expected a semantic error"),
    };
    assert!(err.msg.contains("not assignable"), "{err}");
}
