//! Domain example using the thesis' §7 extensions together: a byte-code
//! dispatch engine (function-pointer table, executed on the software
//! master) feeding a hardware checksum pipeline, plus a recursive
//! evaluator for one of the opcodes.
//!
//! Run with: `cargo run --release --example dispatch_engine`

use twill::Compiler;

const SOURCE: &str = r#"
int op_inc(int x)  { return x + 1; }
int op_dbl(int x)  { return x * 2; }
int op_neg(int x)  { return -x; }
int op_fold(int x) {
  /* recursive digit fold */
  if (x < 10 && x > -10) return x;
  return op_fold(x / 10) + x % 10;
}

int main() {
  int *ops[4];
  ops[0] = op_inc;
  ops[1] = op_dbl;
  ops[2] = op_neg;
  ops[3] = op_fold;

  int n = in();
  int reg = 7;
  unsigned int sig = 0;
  for (int i = 0; i < n; i++) {
    int code = in() & 3;
    reg = ops[code](reg);             /* dispatch: software master   */
    /* heavy signature pipeline: hardware threads */
    unsigned int x = (unsigned int) reg * 2654435761u;
    x = ((x >> 11) ^ x) * 2246822519u;
    x = ((x >> 7) ^ x) + 0x9E3779B9;
    x = ((x << 3) ^ (x >> 13)) * 3266489917u;
    x = (x >> 16) ^ x;
    sig = sig * 33 + x;
  }
  out(reg);
  out((int) sig);
  return 0;
}
"#;

fn main() {
    let build = Compiler::new()
        .allow_recursion(true)
        .partitions(3)
        .compile("dispatch", SOURCE)
        .expect("compile");

    let mut input = vec![64];
    let mut x = 99u32;
    for _ in 0..64 {
        x = x.wrapping_mul(1103515245).wrapping_add(12345);
        input.push((x >> 16) as i32);
    }

    let golden = build.run_reference(input.clone()).expect("reference");
    let sw = build.simulate_pure_sw(input.clone()).expect("sw");
    let tw = build.simulate_hybrid(input).expect("hybrid");
    assert_eq!(sw.output, golden);
    assert_eq!(tw.output, golden);

    println!("register = {}, signature = {:#x}", golden[0], golden[1] as u32);
    println!("pure SW: {} cycles", sw.cycles);
    println!(
        "hybrid:  {} cycles ({:.2}x) — dispatch + recursion on the CPU, mixing in HW",
        tw.cycles,
        sw.cycles as f64 / tw.cycles as f64
    );
    println!("cpu busy fraction: {:.2}", tw.cpu_busy_fraction);
    println!("hardware threads: {}, queues: {}", build.stats().hw_threads, build.stats().queues);
}
