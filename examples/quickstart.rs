//! Quickstart: compile a single-threaded C program with Twill, simulate the
//! three configurations of the paper's evaluation, and print what the
//! compiler extracted.
//!
//! Run with: `cargo run --release --example quickstart`

use twill::Compiler;

const SOURCE: &str = r#"
/* A toy stream cipher: each sample goes through three mixing stages.
 * The stages are independent dataflow chunks, so DSWP can pipeline them
 * across hardware threads. */
unsigned int mix(unsigned int x, unsigned int k) {
  x = (x ^ k) * 2654435761u;
  x = (x >> 13) ^ x;
  x = (x * 2246822519u) + k;
  x = (x >> 16) ^ (x << 5);
  return x;
}
int main() {
  int n = in();
  unsigned int acc = 0;
  for (int i = 0; i < n; i++) {
    unsigned int s = (unsigned int) in();
    unsigned int a = mix(mix(s, 0x9E3779B9), 0x85EBCA6B);  /* stage 1 */
    unsigned int b = mix(mix(a, 0xC2B2AE35), 0x27D4EB2F);  /* stage 2 */
    unsigned int c = mix(mix(b, 0x165667B1), 0xFD7046C5);  /* stage 3 */
    acc = acc * 31 + c;                                     /* stage 4 */
  }
  out((int) acc);
  return 0;
}
"#;

fn main() {
    let build = Compiler::new().partitions(4).compile("quickstart", SOURCE).expect("compile");

    // Workload: 256 pseudo-random samples.
    let mut input = vec![256];
    let mut x = 0x1234u32;
    for _ in 0..256 {
        x = x.wrapping_mul(1664525).wrapping_add(1013904223);
        input.push((x >> 20) as i32 - 2048);
    }

    let golden = build.run_reference(input.clone()).expect("reference run");
    println!("reference output:    {golden:?}");

    let sw = build.simulate_pure_sw(input.clone()).expect("pure SW");
    let hw = build.simulate_pure_hw(input.clone()).expect("pure HW");
    let twill = build.simulate_hybrid(input).expect("hybrid");
    assert_eq!(sw.output, golden);
    assert_eq!(hw.output, golden);
    assert_eq!(twill.output, golden);

    println!();
    println!("pure software (Microblaze):  {:>9} cycles", sw.cycles);
    println!(
        "pure hardware (LegUp flow):  {:>9} cycles  ({:.1}x vs SW)",
        hw.cycles,
        sw.cycles as f64 / hw.cycles as f64
    );
    println!(
        "Twill hybrid:                {:>9} cycles  ({:.1}x vs SW, {:.2}x vs HW)",
        twill.cycles,
        sw.cycles as f64 / twill.cycles as f64,
        hw.cycles as f64 / twill.cycles as f64
    );

    let s = build.stats();
    println!();
    println!(
        "extracted: {} hardware thread(s), {} queue(s) ({} data, {} token), {} semaphore(s)",
        s.hw_threads, s.queues, s.data_queues, s.token_queues, s.semaphores
    );
    let area = build.area();
    println!(
        "area: LegUp {} LUTs | Twill HW threads {} | + runtime {} | + Microblaze {}",
        area.legup.luts,
        area.twill_hw_threads.luts,
        area.twill_total.luts,
        area.twill_plus_microblaze.luts
    );
}
