//! Inspect the hardware side of the flow: the per-thread Verilog the HLS
//! stage emits (thesis §5.4) and the per-function FSM schedules.
//!
//! Run with: `cargo run --release --example hw_codegen`

use twill::Compiler;

const SOURCE: &str = r#"
int main() {
  int sum = 0;
  for (int i = 0; i < 100; i++) {
    int v = in();
    sum += (v * v) % 97;
  }
  out(sum);
  return 0;
}
"#;

fn main() {
    let build = Compiler::new().partitions(3).compile("codegen", SOURCE).expect("compile");

    println!("== FSM schedules (partitioned module) ==");
    for (fs, f) in build.hybrid_schedule().funcs.iter().zip(&build.dswp().module.funcs) {
        if f.live_inst_count() <= 1 {
            continue;
        }
        println!(
            "{:24} {} blocks, {} states, {} live regs{}",
            f.name,
            f.blocks.len(),
            fs.states,
            fs.live_values,
            if fs.blocks.iter().any(|b| b.ii.is_some()) { "  [loop pipelined]" } else { "" }
        );
    }

    println!("\n== Verilog (first 60 lines) ==");
    for line in build.verilog().lines().take(60) {
        println!("{line}");
    }
    println!("...");
}
