//! Domain example: the AES-128 benchmark — the workload class the paper's
//! introduction motivates (streaming crypto on an embedded SoC). Shows the
//! pipeline DSWP extracts from an unrolled cipher and how throughput scales
//! with the number of hardware threads.
//!
//! Run with: `cargo run --release --example crypto_pipeline`

use twill::Compiler;

fn main() {
    let bench = chstone::AES;
    let input = chstone::input_for(bench.name, 8); // 16 blocks
    let prepared = chstone::compile_and_prepare(&bench);

    let sw_cycles = {
        let b = Compiler::new().partitions(2).build_from_module(prepared.clone());
        b.simulate_pure_sw(input.clone()).expect("sw").cycles
    };
    println!("AES-128, 16 blocks");
    println!("pure software: {sw_cycles} cycles");
    println!();
    println!("partitions  hw_threads  queues   cycles   vs SW    vs pure-HW");

    let mut hw_cycles = 0u64;
    for k in [2, 3, 4, 5, 6] {
        let b = Compiler::new().partitions(k).build_from_module(prepared.clone());
        if hw_cycles == 0 {
            hw_cycles = b.simulate_pure_hw(input.clone()).expect("hw").cycles;
            println!("pure HW baseline: {hw_cycles} cycles");
        }
        let rep = b.simulate_hybrid(input.clone()).expect("hybrid");
        println!(
            "{:>10}  {:>10}  {:>6}  {:>7}  {:>6.1}x  {:>9.2}x",
            k,
            b.stats().hw_threads,
            b.stats().queues,
            rep.cycles,
            sw_cycles as f64 / rep.cycles as f64,
            hw_cycles as f64 / rep.cycles as f64,
        );
    }
    println!();
    println!("(the cost model may merge stages when the cut outweighs the gain,");
    println!(" so hw_threads can be smaller than partitions-1)");
}
