/* A small mixing pipeline with an obvious hotspot, for trying the
 * line-granular profiler:
 *
 *     cargo run --release --bin twillc -- examples/hotspot.c \
 *         --partitions 2 --annotate --folded hotspot.folded
 *
 * The annotated listing shows most cycles landing on the mix loop below;
 * feed hotspot.folded to flamegraph.pl / inferno for the same picture as
 * a flamegraph. See README "find your hotspot".
 */

int table[64];

int mix(int x) {
  int a = (x * 7 + 3) & 63;
  int b = (x >> 2) & 63;
  return table[a] ^ table[b] ^ (x * 2654435761);
}

int main() {
  for (int i = 0; i < 64; i++) {
    table[i] = i * i + 17;
  }
  int acc = 0;
  for (int i = 0; i < 512; i++) {
    int v = mix(i + acc);
    acc = acc + (v % 97);
  }
  out(acc);
  return 0;
}
