//! Break it on purpose: inject deterministic faults into the simulated
//! hardware, watch the watchdog diagnose the resulting deadlock down to C
//! source lines, and let graceful degradation serve the right answer
//! anyway.
//!
//! Run with: `cargo run --release --example fault_drill`

use twill::{Compiler, FaultPlan, FaultSite, FaultSpec, PinnedFault, SimError, SimulationConfig};

const SOURCE: &str = r#"
/* Same pipeline as the quickstart: three mixing stages DSWP spreads
 * across hardware threads, talking through queues we can now sabotage. */
unsigned int mix(unsigned int x, unsigned int k) {
  x = (x ^ k) * 2654435761u;
  x = (x >> 13) ^ x;
  return (x * 2246822519u) + k;
}
int main() {
  int n = in();
  unsigned int acc = 0;
  for (int i = 0; i < n; i++) {
    unsigned int s = (unsigned int) in();
    unsigned int a = mix(mix(s, 0x9E3779B9), 0x85EBCA6B);
    unsigned int b = mix(mix(a, 0xC2B2AE35), 0x27D4EB2F);
    acc = acc * 31 + b;
  }
  out((int) acc);
  return 0;
}
"#;

fn main() {
    let build = Compiler::new().partitions(3).compile("fault_drill", SOURCE).expect("compile");
    let mut input = vec![200];
    let mut x = 0x5EEDu32;
    for _ in 0..200 {
        x = x.wrapping_mul(1664525).wrapping_add(1013904223);
        input.push((x >> 20) as i32 - 2048);
    }
    let golden = build.run_reference(input.clone()).expect("reference run");

    // 1. Sweep per-cycle fault rates. Same seed + spec → same faults,
    //    every run, forever: a failure seen once is a failure kept.
    println!("rate      faults  outcome");
    for rate in [1e-6, 1e-5, 1e-4, 1e-3] {
        let cfg = SimulationConfig {
            fault: Some(FaultPlan::new(7, FaultSpec::uniform(rate))),
            watchdog_window: 100_000,
            max_cycles: 50_000_000,
            ..build.sim_config()
        };
        let line = match build.simulate_hybrid_with(input.clone(), &cfg) {
            Ok(rep) => format!(
                "{:>6}  {}",
                rep.stats.faults.total(),
                if rep.output == golden { "survived" } else { "output corrupted" }
            ),
            Err(SimError::Deadlock { partial, .. }) => {
                format!("{:>6}  hang (diagnosed)", partial.stats.faults.total())
            }
            Err(SimError::Timeout { partial, .. }) => {
                format!("{:>6}  timeout", partial.stats.faults.total())
            }
            Err(e) => panic!("{e}"),
        };
        println!("{rate:<8}  {line}");
    }

    // 2. Lose exactly one message and read the diagnosis: the watchdog
    //    walks the queue wait-for graph and names the C lines involved.
    let lossy = SimulationConfig {
        fault: Some(FaultPlan::new(
            7,
            FaultSpec {
                pinned: vec![PinnedFault { cycle: 0, site: FaultSite::QueueDrop { queue: 0 } }],
                ..Default::default()
            },
        )),
        watchdog_window: 50_000,
        ..build.sim_config()
    };
    println!("\ndropping the first message on q0:");
    match build.simulate_hybrid_with(input.clone(), &lossy) {
        Err(SimError::Deadlock { report, .. }) => print!("{}", report.render()),
        other => panic!("expected a diagnosed hang, got {other:?}"),
    }

    // 3. Graceful degradation: retry with fresh seeds, fall back to pure
    //    software, and still hand back the correct output.
    let outcome = build.run_resilient(input, &lossy, 3).expect("resilient run");
    println!();
    for f in &outcome.failures {
        println!("abandoned {f}");
    }
    assert_eq!(outcome.report.output, golden);
    println!("served by {} — output correct", outcome.served_by);
}
