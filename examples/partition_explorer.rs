//! Reproduce the paper's §6.5 exploration interactively: sweep the targeted
//! SW/HW split point for a benchmark and watch performance and queue count
//! move against each other (Figs 6.3/6.4).
//!
//! Run with: `cargo run --release --example partition_explorer [benchmark]`

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mips".to_string());
    let rows = twill::experiments::fig_6_3_4(&name, None);
    println!("{name}: targeted split-point sweep (2 partitions)\n");
    println!("SW target   cycles   queues   speedup vs pure SW");
    for r in rows {
        let bar = "#".repeat((r.speedup_vs_sw * 4.0) as usize);
        println!(
            "{:>8}%  {:>7}  {:>6}   {:>5.2}x {bar}",
            r.sw_target_percent, r.cycles, r.queues, r.speedup_vs_sw
        );
    }
    println!("\n(the paper finds even splits worst — communication dominates)");
}
