//! Shared printing helpers for the experiment binaries.

pub use twill::experiments;
pub use twill::report::format_table;

/// Print a markdown-ish section header.
pub fn section(title: &str) {
    println!("\n## {title}\n");
}
