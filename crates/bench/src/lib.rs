//! Shared helpers for the experiment binaries: printing, the perf
//! baseline collector (`twill-bench baseline` / `compare` / the CI perf
//! gate all measure through [`collect_baseline`]), and common CLI flags.

pub mod campaign;

pub use twill::experiments;
pub use twill::report::format_table;

use twill::Compiler;
use twill_obs::baseline::{Baseline, BaselineEntry, StageTimings, SCHEMA_VERSION};

/// Print a markdown-ish section header.
pub fn section(title: &str) {
    println!("\n## {title}\n");
}

/// Workload scale every baseline entry is recorded at (the scale the
/// golden-cycle regression in `twill-rt` pins).
pub const BASELINE_SCALE: u32 = 1;

/// Default path of the committed baseline, relative to the repo root.
pub const BASELINE_PATH: &str = "BENCH_baseline.json";

/// Environment metadata recorded in the baseline. Only the cycle data is
/// compared across machines — this is provenance, not a cache key.
pub fn env_metadata() -> Vec<(String, String)> {
    let no_ff = std::env::var_os("TWILL_NO_FAST_FORWARD").is_some();
    vec![
        ("generator".into(), "twill-bench baseline".into()),
        ("schema".into(), SCHEMA_VERSION.to_string()),
        ("os".into(), std::env::consts::OS.into()),
        ("arch".into(), std::env::consts::ARCH.into()),
        // Which simulator loop produced the numbers (they are identical
        // by contract, but a mismatch investigation starts here).
        ("fast_forward".into(), (if no_ff { "off" } else { "on" }).into()),
        ("TWILL_NO_FAST_FORWARD".into(), (if no_ff { "set" } else { "unset" }).into()),
    ]
}

/// Measure the full baseline: every CHStone benchmark × mode simulated at
/// [`BASELINE_SCALE`] (cycles + stall/queue metrics — deterministic), plus
/// per-benchmark wall-clock compile-stage timings (environment-dependent;
/// compared only under a noise band). Each benchmark is compiled on a
/// fresh [`twill::artifacts::BuildGraph`] from source so the stage spans
/// reflect a cold compile (frontend through HLS) regardless of what else
/// the process ran.
pub fn collect_baseline() -> Baseline {
    let mut entries = Vec::new();
    let mut stages = Vec::new();
    for b in chstone::all() {
        let build = Compiler::new()
            .partitions(b.partitions)
            .compile(b.name, b.source)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let input = chstone::input_for(b.name, BASELINE_SCALE);
        let runs = [
            ("sw", build.simulate_pure_sw(input.clone())),
            ("hw", build.simulate_pure_hw(input.clone())),
            ("hybrid", build.simulate_hybrid(input)),
        ];
        for (mode, rep) in runs {
            let rep = rep.unwrap_or_else(|e| panic!("{} {mode} simulation failed: {e}", b.name));
            entries.push(BaselineEntry {
                bench: b.name.to_string(),
                mode: mode.to_string(),
                scale: BASELINE_SCALE,
                metrics: rep.metrics(),
            });
        }
        let c = build.graph().counters();
        stages.push(StageTimings {
            bench: b.name.to_string(),
            spans: build.graph().spans().into_iter().map(|s| (s.name, s.dur_ns)).collect(),
            runs: c.runs() as u64,
            hits: c.hits() as u64,
        });
    }
    Baseline { schema_version: SCHEMA_VERSION, env: env_metadata(), entries, stages }
}

/// Parse a `--obs-ring-capacity N` occurrence shared by the bench bins
/// and `twillc`: the event-ring bound used when tracing is armed.
pub fn parse_ring_capacity(it: &mut impl Iterator<Item = String>) -> Option<usize> {
    it.next().and_then(|v| v.parse().ok())
}
