//! Runs every experiment in sequence (the data source for EXPERIMENTS.md).
//!
//! ```console
//! all_experiments [--trace FILE] [--metrics FILE] [--obs-ring-capacity N]
//! ```
//!
//! `--trace` / `--metrics` additionally run a traced hybrid of the
//! blowfish benchmark (the §6.4 case study) and write the Perfetto
//! `trace_event` JSON / metrics JSON for it; `--obs-ring-capacity`
//! bounds the event ring for that traced run (default 2^22).

use std::process::Command;

use twill::experiments::benchmark_graph;
use twill::Compiler;

fn usage() -> ! {
    eprintln!("usage: all_experiments [--trace FILE] [--metrics FILE] [--obs-ring-capacity N]");
    std::process::exit(2);
}

fn main() {
    let mut trace: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut ring_capacity: usize = 1 << 22;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => trace = it.next(),
            "--metrics" => metrics = it.next(),
            "--obs-ring-capacity" => {
                ring_capacity = twill_bench::parse_ring_capacity(&mut it).unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }

    // Run in-process for the tables to avoid rebuild churn.
    for bin in
        ["table_6_1", "table_6_2", "fig_6_1", "fig_6_2", "fig_6_3", "fig_6_4", "fig_6_5", "fig_6_6"]
    {
        println!("\n=== {bin} ===\n");
        let status = Command::new(std::env::current_exe().unwrap().with_file_name(bin))
            .status()
            .expect("spawn experiment binary");
        assert!(status.success(), "{bin} failed");
    }
    println!("\n=== blowfish tuned (§6.4) ===\n");
    let t = twill::experiments::blowfish_tuned(None);
    println!(
        "default: {} cycles / {} queues; tuned: {} cycles / {} queues ({:.2}x vs pure HW)",
        t.default_cycles, t.default_queues, t.tuned_cycles, t.tuned_queues, t.tuned_vs_hw
    );

    if trace.is_some() || metrics.is_some() {
        let b = chstone::by_name("blowfish").unwrap();
        let graph = benchmark_graph(&b);
        let build = Compiler::new().partitions(b.partitions).build_on(&graph);
        let input = chstone::input_for(b.name, b.default_scale);
        let cfg = twill::SimulationConfig {
            trace_events: if trace.is_some() { ring_capacity } else { 0 },
            ..build.sim_config()
        };
        let rep = build.simulate_hybrid_with(input, &cfg).expect("hybrid simulation");
        println!();
        println!("{}", twill_obs::profile_report("blowfish hybrid profile", &rep.metrics(), None));
        if let Some(f) = &trace {
            let json = rep.trace_builder().spans(graph.spans()).build();
            std::fs::write(f, json).expect("write trace");
            println!("Perfetto trace written to {f} ({} event(s))", rep.events.len());
        }
        if rep.dropped_events > 0 {
            eprintln!(
                "all_experiments: WARN: trace truncated: {} event(s) dropped — raise --obs-ring-capacity",
                rep.dropped_events
            );
        }
        if let Some(f) = &metrics {
            std::fs::write(f, rep.metrics().to_json()).expect("write metrics");
            println!("metrics JSON written to {f}");
        }
    }
}
