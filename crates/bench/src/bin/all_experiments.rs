//! Runs every experiment in sequence (the data source for EXPERIMENTS.md).

use std::process::Command;

fn main() {
    // Run in-process for the tables to avoid rebuild churn.
    for bin in
        ["table_6_1", "table_6_2", "fig_6_1", "fig_6_2", "fig_6_3", "fig_6_4", "fig_6_5", "fig_6_6"]
    {
        println!("\n=== {bin} ===\n");
        let status = Command::new(std::env::current_exe().unwrap().with_file_name(bin))
            .status()
            .expect("spawn experiment binary");
        assert!(status.success(), "{bin} failed");
    }
    println!("\n=== blowfish tuned (§6.4) ===\n");
    let t = twill::experiments::blowfish_tuned(None);
    println!(
        "default: {} cycles / {} queues; tuned: {} cycles / {} queues ({:.2}x vs pure HW)",
        t.default_cycles, t.default_queues, t.tuned_cycles, t.tuned_queues, t.tuned_vs_hw
    );
}
