//! Regenerates paper Fig 6.6: Twill speedup normalized to 8-deep queues,
//! for queue depths 2..32, plus the device-fit check (the paper's 32-deep
//! JPEG did not fit the Virtex-5).

fn main() {
    let rows = twill::experiments::fig_6_6(None);
    let headers: Vec<String> = std::iter::once("benchmark".to_string())
        .chain(twill::experiments::SIZE_POINTS.iter().map(|d| format!("depth {d}")))
        .collect();
    let href: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            std::iter::once(r.name.clone())
                .chain(r.normalized.iter().zip(&r.fits_device).map(|(v, fits)| {
                    if *fits {
                        format!("{v:.2}")
                    } else {
                        format!("{v:.2}!")
                    }
                }))
                .collect()
        })
        .collect();
    println!("Fig 6.6 — speedup normalized to 8-deep queues ('!' = exceeds device)\n");
    print!("{}", twill::report::format_table(&href, &table));
    let avg2: f64 = rows.iter().map(|r| r.normalized[0]).sum::<f64>() / rows.len() as f64;
    println!(
        "\nmean slowdown with 2-deep queues: {:.1}%  (paper: 9.7% going 32 -> 8)",
        (1.0 - avg2) * 100.0
    );
}
