//! Regenerates paper Fig 6.4: Blowfish performance vs targeted partition
//! split point.

#[path = "fig_6_3.rs"]
#[allow(dead_code)]
mod fig_6_3;

fn main() {
    fig_6_3::print_split_sweep("blowfish");
}
