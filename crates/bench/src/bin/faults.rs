//! `faults` — the deterministic fault-injection campaign driver.
//!
//! ```console
//! faults [--benches a,b,c] [--rates 1e-6,1e-5,1e-4] [--seed N]
//!        [--attempts K] [--scale S] [--watchdog CYCLES] [--json FILE]
//!        [--strict-obs] [--obs-ring-capacity N] [--no-fast-forward]
//! ```
//!
//! Sweeps per-cycle fault rates across the CHStone suite, injecting queue
//! bit flips, dropped/duplicated messages, transient hardware-thread
//! stalls, and memory upsets, and prints the survival/detection/
//! corruption table. Each cell retries the hybrid with fresh derived
//! seeds and degrades to pure software when every attempt fails.
//!
//! Exit status is non-zero when any cell's *served* output is corrupt
//! (corruption that slipped past retry and fallback), or — with
//! `--strict-obs` — when observability data was lost (dropped trace
//! events or a truncated fault log). Fixed seeds make the `--json`
//! artifact byte-identical across runs.

use std::process::ExitCode;
use twill_bench::campaign::{run_campaign, CampaignOptions};

fn usage() -> ! {
    eprintln!(
        "usage: faults [--benches a,b,c] [--rates r1,r2] [--seed N] \
         [--attempts K] [--scale S] [--watchdog CYCLES] [--json FILE] \
         [--strict-obs] [--obs-ring-capacity N] [--no-fast-forward]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut opts = CampaignOptions::default();
    let mut benches = chstone::all();
    let mut json_out: Option<String> = None;
    let mut strict_obs = false;
    let mut ring_capacity = 1usize << 20;

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--benches" => {
                let list = it.next().unwrap_or_else(|| usage());
                benches = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|n| chstone::by_name(n.trim()).unwrap_or_else(|| usage()))
                    .collect();
            }
            "--rates" => {
                let list = it.next().unwrap_or_else(|| usage());
                opts.rates = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--seed" => {
                opts.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--attempts" => {
                opts.attempts = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--scale" => {
                opts.scale = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--watchdog" => {
                opts.watchdog = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--json" => json_out = Some(it.next().unwrap_or_else(|| usage())),
            "--strict-obs" => strict_obs = true,
            "--no-fast-forward" => opts.fast_forward = false,
            "--obs-ring-capacity" => {
                ring_capacity = twill_bench::parse_ring_capacity(&mut it).unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    if strict_obs {
        // Arm the event ring so data loss is accounted, not invisible.
        opts.trace_capacity = ring_capacity;
    }

    eprintln!(
        "fault campaign: {} benchmark(s) x {} rate(s), seed {}, up to {} attempt(s)...",
        benches.len(),
        opts.rates.len(),
        opts.seed,
        opts.attempts
    );
    let campaign = run_campaign(&benches, &opts);
    print!("{}", campaign.table());

    if let Some(f) = &json_out {
        if let Err(e) = std::fs::write(f, campaign.to_json()) {
            eprintln!("faults: cannot write {f}: {e}");
            return ExitCode::FAILURE;
        }
        println!("campaign JSON written to {f}");
    }

    if campaign.undetected_corruption() {
        eprintln!("faults: FAIL: a served output is corrupt");
        return ExitCode::FAILURE;
    }
    if strict_obs && campaign.obs_data_lost() {
        eprintln!("faults: --strict-obs: observability data was lost");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
