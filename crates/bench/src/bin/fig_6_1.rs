//! Regenerates paper Fig 6.1: power normalized to the pure-SW (Microblaze)
//! implementation.

fn main() {
    let rows = twill::experiments::fig_6_1(None);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.0} mW", r.power.pure_sw_mw),
                format!("{:.2}", r.normalized.1),
                format!("{:.2}", r.normalized.2),
            ]
        })
        .collect();
    println!("Fig 6.1 — power normalized to pure SW (= 1.00)\n");
    print!(
        "{}",
        twill::report::format_table(
            &["benchmark", "pure SW", "pure HW (norm)", "Twill (norm)"],
            &table
        )
    );
    println!("\npaper shape: pure HW lowest, Twill between HW and SW (PLLs dominate)");
}
