//! Compare a fresh measurement of the suite against a recorded baseline —
//! the perf-regression gate CI runs on every PR.
//!
//! ```console
//! compare [--against FILE] [--report FILE] [--max-wall-factor F] [--verbose]
//! ```
//!
//! Re-simulates every benchmark × mode entry of the baseline and diffs the
//! metrics with the `twill-obs` diff engine. Simulated cycles must match
//! the baseline **exactly** — the simulator is deterministic, so any delta
//! is a real behaviour change and fails the gate with a ranked stall-class
//! attribution in the log. Wall-clock compile-stage timings are
//! environment noise; they only fail the gate when a benchmark's total
//! compile time exceeds `--max-wall-factor` (default 5x) times the
//! recorded value. `--report` additionally writes the full diff report as
//! JSON (the CI artifact).

use std::fmt::Write as _;
use twill_obs::baseline::Baseline;

struct Args {
    against: String,
    report: Option<String>,
    max_wall_factor: f64,
    verbose: bool,
}

fn usage() -> ! {
    eprintln!("usage: compare [--against FILE] [--report FILE] [--max-wall-factor F] [--verbose]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        against: twill_bench::BASELINE_PATH.to_string(),
        report: None,
        max_wall_factor: 5.0,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--against" => args.against = it.next().unwrap_or_else(|| usage()),
            "--report" => args.report = Some(it.next().unwrap_or_else(|| usage())),
            "--max-wall-factor" => {
                args.max_wall_factor =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--verbose" => args.verbose = true,
            _ => usage(),
        }
    }
    args
}

/// Ignore wall-clock comparison below this baseline total: timer jitter
/// on a sub-millisecond stage is not a regression signal.
const WALL_FLOOR_NS: u64 = 1_000_000;

fn main() {
    let args = parse_args();
    let baseline = Baseline::load(std::path::Path::new(&args.against)).unwrap_or_else(|e| {
        eprintln!("compare: {e}");
        std::process::exit(2);
    });

    eprintln!("re-measuring {} baseline entries...", baseline.entries.len());
    let current = twill_bench::collect_baseline();

    let mut failures: Vec<String> = Vec::new();
    let mut report_json: Vec<String> = Vec::new();
    let mut clean = 0usize;

    for base in &baseline.entries {
        let label = format!("{} {}", base.bench, base.mode);
        let Some(now) = current.find(&base.bench, &base.mode) else {
            failures.push(format!("{label}: entry missing from current measurement"));
            continue;
        };
        let d = twill_obs::diff(&base.metrics, &now.metrics);
        report_json.push(d.to_json(&label));
        if d.cycle_delta == 0 && !d.structural {
            clean += 1;
            if args.verbose {
                println!("ok {label}: {} cycles (no delta)", base.cycles());
            }
            if !d.is_zero() {
                // Same cycle count but counters moved: worth a line even
                // though the gate only keys on cycles.
                println!("note {}", d.headline(&label));
            }
        } else {
            failures.push(d.headline(&label));
            print!("{}", d.render_text(&format!("FAIL {label}")));
        }
    }

    // Wall-clock: generous noise band around the recorded stage totals.
    for s in &baseline.stages {
        let Some(now) = current.find_stages(&s.bench) else { continue };
        let (base_ns, now_ns) = (s.total_ns(), now.total_ns());
        if base_ns < WALL_FLOOR_NS {
            continue;
        }
        let factor = now_ns as f64 / base_ns as f64;
        if factor > args.max_wall_factor {
            failures.push(format!(
                "{}: compile stages took {:.1} ms vs {:.1} ms recorded ({factor:.1}x > {:.1}x band)",
                s.bench,
                now_ns as f64 / 1e6,
                base_ns as f64 / 1e6,
                args.max_wall_factor
            ));
        } else if args.verbose {
            println!(
                "ok {} stages: {:.1} ms vs {:.1} ms recorded ({factor:.2}x)",
                s.bench,
                now_ns as f64 / 1e6,
                base_ns as f64 / 1e6
            );
        }
    }

    if let Some(f) = &args.report {
        let mut doc = String::from("{\n  \"diffs\": [\n");
        for (i, d) in report_json.iter().enumerate() {
            let block: String = d.trim_end().lines().map(|l| format!("    {l}\n")).collect();
            doc.push_str(block.trim_end_matches('\n'));
            doc.push_str(if i + 1 < report_json.len() { ",\n" } else { "\n" });
        }
        let _ = writeln!(doc, "  ],\n  \"failures\": {},", failures.len());
        let _ = writeln!(doc, "  \"entries\": {}", baseline.entries.len());
        doc.push_str("}\n");
        std::fs::write(f, doc).unwrap_or_else(|e| {
            eprintln!("compare: cannot write {f}: {e}");
            std::process::exit(2);
        });
        println!("compare report written to {f}");
    }

    if failures.is_empty() {
        println!(
            "perf gate PASS: {clean}/{} entries match the baseline exactly",
            baseline.entries.len()
        );
    } else {
        println!("perf gate FAIL ({} regression(s)):", failures.len());
        for f in &failures {
            println!("  {f}");
        }
        std::process::exit(1);
    }
}
