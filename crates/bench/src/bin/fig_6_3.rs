//! Regenerates paper Fig 6.3: MIPS performance vs targeted partition split
//! point (and the queue-count anti-correlation of §6.5).

fn main() {
    print_split_sweep("mips");
}

pub fn print_split_sweep(name: &str) {
    let rows = twill::experiments::fig_6_3_4(name, None);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}%", r.sw_target_percent),
                r.cycles.to_string(),
                r.queues.to_string(),
                format!("{:.2}x", r.speedup_vs_sw),
            ]
        })
        .collect();
    println!("{name} — performance vs targeted SW split point (2 partitions)\n");
    print!(
        "{}",
        twill::report::format_table(&["SW target", "cycles", "queues", "speedup vs SW"], &table)
    );
    println!("\npaper shape: even splits worst; queue count anti-correlates with speed");
}
