//! Regenerates paper Fig 6.5: Twill speedup normalized to the 2-cycle
//! queue-latency baseline, for queue latencies 2..128.

fn main() {
    let rows = twill::experiments::fig_6_5(None);
    let headers: Vec<String> = std::iter::once("benchmark".to_string())
        .chain(twill::experiments::LATENCY_POINTS.iter().map(|l| format!("lat {l}")))
        .collect();
    let href: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            std::iter::once(r.name.clone())
                .chain(r.normalized.iter().map(|v| format!("{v:.2}")))
                .collect()
        })
        .collect();
    println!("Fig 6.5 — speedup normalized to 2-cycle queue latency\n");
    print!("{}", twill::report::format_table(&href, &table));
    let avg128: f64 =
        rows.iter().map(|r| *r.normalized.last().unwrap()).sum::<f64>() / rows.len() as f64;
    println!(
        "\nmean slowdown at latency 128: {:.0}%  (paper: 27% on average)",
        (1.0 - avg128) * 100.0
    );
}
