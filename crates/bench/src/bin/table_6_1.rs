//! Regenerates paper Table 6.1: queues, semaphores and hardware threads
//! produced by DSWP for each CHStone benchmark.

fn main() {
    let rows = twill::experiments::table_6_1();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.queues.to_string(),
                r.semaphores.to_string(),
                r.hw_threads.to_string(),
                format!("{}q/{}t", r.forced_queues, r.forced_hw_threads),
                format!("{}/{}/{}", r.paper_queues, r.paper_semaphores, r.paper_hw_threads),
            ]
        })
        .collect();
    println!("Table 6.1 — DSWP results (paper column: queues/sems/HW threads)\n");
    print!(
        "{}",
        twill::report::format_table(
            &["benchmark", "queues", "semaphores", "hw_threads", "forced-split", "paper"],
            &table
        )
    );
}
