//! Run the profile-guided auto-tuner over the CHStone suite and record
//! the results (`BENCH_tuning.json`).
//!
//! ```console
//! tune [--out FILE] [--seed N] [--rounds N] [--bench a,b,c]
//!      [--report-dir DIR] [--trace-dir DIR] [--no-fast-forward]
//!      [--obs-ring-capacity N] [--strict-obs]
//! ```
//!
//! For every selected benchmark the tuner searches DSWP split points and
//! per-queue depths from the paper-default configuration and the bin
//! writes one document with `{default, tuned}` hybrid cycles and the
//! trial count per benchmark. Acceptance is strictly improving, so a
//! tuned entry with more cycles than the default is a tuner bug — the
//! bin exits non-zero on one (the CI tuning gate relies on this).
//!
//! `--report-dir`/`--trace-dir` additionally write each benchmark's full
//! [`twill_obs::TuningReport`] JSON and Perfetto search trace (the CI
//! gate uploads both as artifacts). The search is seeded and
//! deterministic: same tree, seed, and benchmark set ⇒ byte-identical
//! outputs.
//!
//! `--obs-ring-capacity` arms the event recorder on each benchmark's
//! *baseline* run with a ring of that many events (trials always run
//! untraced — tracing is observation-only either way); truncation warns
//! on stderr, never silent, and exits non-zero under `--strict-obs`.

use std::path::Path;
use std::process::ExitCode;

use twill::{Compiler, TuneOptions};

/// Default path of the tuning record, relative to the repo root.
const TUNING_PATH: &str = "BENCH_tuning.json";

struct Args {
    out: String,
    seed: u64,
    rounds: usize,
    benches: Option<Vec<String>>,
    report_dir: Option<String>,
    trace_dir: Option<String>,
    no_fast_forward: bool,
    ring_capacity: Option<usize>,
    strict_obs: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: tune [--out FILE] [--seed N] [--rounds N] [--bench a,b,c] \
         [--report-dir DIR] [--trace-dir DIR] [--no-fast-forward] \
         [--obs-ring-capacity N] [--strict-obs]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        out: TUNING_PATH.into(),
        seed: 0,
        rounds: 4,
        benches: None,
        report_dir: None,
        trace_dir: None,
        no_fast_forward: false,
        ring_capacity: None,
        strict_obs: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => args.out = it.next().unwrap_or_else(|| usage()),
            "--seed" => {
                args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--rounds" => {
                args.rounds = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--bench" => {
                let list = it.next().unwrap_or_else(|| usage());
                args.benches =
                    Some(list.split(',').filter(|s| !s.is_empty()).map(str::to_string).collect());
            }
            "--report-dir" => args.report_dir = Some(it.next().unwrap_or_else(|| usage())),
            "--trace-dir" => args.trace_dir = Some(it.next().unwrap_or_else(|| usage())),
            "--no-fast-forward" => args.no_fast_forward = true,
            "--obs-ring-capacity" => {
                args.ring_capacity =
                    Some(twill_bench::parse_ring_capacity(&mut it).unwrap_or_else(|| usage()))
            }
            "--strict-obs" => args.strict_obs = true,
            _ => usage(),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let all = chstone::all();
    let selected: Vec<&chstone::Benchmark> = all
        .iter()
        .filter(|b| args.benches.as_ref().is_none_or(|names| names.iter().any(|n| n == b.name)))
        .collect();
    if selected.is_empty() {
        eprintln!("tune: no benchmark matches {:?}", args.benches);
        return ExitCode::FAILURE;
    }
    for dir in [&args.report_dir, &args.trace_dir].into_iter().flatten() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("tune: cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let mut rows = Vec::new();
    let mut regressed = false;
    let mut improved = 0usize;
    let mut obs_data_lost = false;
    for b in &selected {
        let build = Compiler::new()
            .partitions(b.partitions)
            .compile(b.name, b.source)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let input = chstone::input_for(b.name, twill_bench::BASELINE_SCALE);
        let mut cfg = build.sim_config();
        if args.no_fast_forward {
            cfg.fast_forward = false;
        }
        if let Some(cap) = args.ring_capacity {
            cfg.trace_events = cap;
        }
        let topts = TuneOptions {
            seed: args.seed,
            max_rounds: args.rounds,
            bench: b.name.to_string(),
            ..Default::default()
        };
        let outcome = match twill::tune(&build, &input, &cfg, &topts) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("tune: {} baseline run failed: {e}", b.name);
                return ExitCode::FAILURE;
            }
        };
        if outcome.dropped_events > 0 {
            obs_data_lost = true;
            eprintln!(
                "tune: WARN: trace truncated for {}: {} event(s) dropped — \
                 raise --obs-ring-capacity",
                b.name, outcome.dropped_events
            );
        }
        let r = &outcome.report;
        if r.tuned_cycles > r.baseline_cycles {
            eprintln!(
                "tune: REGRESSION: {} tuned to {} cycles from {} — strictly-improving \
                 acceptance is broken",
                b.name, r.tuned_cycles, r.baseline_cycles
            );
            regressed = true;
        }
        if r.tuned_cycles < r.baseline_cycles {
            improved += 1;
        }
        println!(
            "  {:<10} {:>10} \u{2192} {:>10} cycles ({:.2}x, {} trial(s))  {}",
            b.name,
            r.baseline_cycles,
            r.tuned_cycles,
            r.speedup(),
            r.trials.len(),
            r.tuned.as_flags()
        );
        for h in &r.hints {
            println!("      {h}");
        }
        if let Some(dir) = &args.report_dir {
            let f = Path::new(dir).join(format!("{}_tuning.json", b.name));
            if let Err(e) = std::fs::write(&f, r.to_json()) {
                eprintln!("tune: cannot write {}: {e}", f.display());
                return ExitCode::FAILURE;
            }
        }
        if let Some(dir) = &args.trace_dir {
            let f = Path::new(dir).join(format!("{}_search_trace.json", b.name));
            if let Err(e) = std::fs::write(&f, r.search_trace()) {
                eprintln!("tune: cannot write {}: {e}", f.display());
                return ExitCode::FAILURE;
            }
        }
        rows.push((
            b.name.to_string(),
            r.baseline_cycles,
            r.tuned_cycles,
            r.trials.len(),
            r.speedup(),
            r.tuned.as_flags(),
        ));
    }

    let doc = render_json(args.seed, args.rounds, &rows);
    if let Err(e) = std::fs::write(&args.out, doc) {
        eprintln!("tune: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!(
        "tuning record written to {}: {}/{} benchmark(s) improved, seed {}",
        args.out,
        improved,
        rows.len(),
        args.seed
    );
    if args.strict_obs && obs_data_lost {
        eprintln!("tune: --strict-obs: observability data was lost");
        return ExitCode::FAILURE;
    }
    if regressed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `BENCH_tuning.json`: benchmark × {default, tuned} cycles + trial
/// count. Cycle data is deterministic; env metadata is provenance.
fn render_json(
    seed: u64,
    rounds: usize,
    rows: &[(String, u64, u64, usize, f64, String)],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"rounds\": {rounds},");
    out.push_str("  \"env\": {");
    let env = twill_bench::env_metadata();
    for (i, (k, v)) in env.iter().enumerate() {
        let sep = if i + 1 < env.len() { ", " } else { "" };
        let _ = write!(out, "{}: {}{sep}", twill_obs::json::quote(k), twill_obs::json::quote(v));
    }
    out.push_str("},\n  \"benches\": [\n");
    for (i, (bench, base, tuned, trials, speedup, flags)) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"bench\": {}, \"default_cycles\": {base}, \"tuned_cycles\": {tuned}, \
             \"trials\": {trials}, \"speedup\": {}, \"tuned_flags\": {}}}",
            twill_obs::json::quote(bench),
            twill_obs::json::number(*speedup),
            twill_obs::json::quote(flags),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
