//! Regenerates paper Fig 6.2: performance speedups normalized to the pure
//! software implementation. Pass `--blowfish-tuned` to also run the §6.4
//! modified-heuristic experiment.

fn main() {
    let rows = twill::experiments::fig_6_2(None);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.sw_cycles.to_string(),
                format!("{:.2}x", r.hw_speedup),
                format!("{:.2}x", r.twill_speedup),
                format!("{:.2}x", r.twill_vs_hw),
            ]
        })
        .collect();
    println!("Fig 6.2 — speedups normalized to pure SW\n");
    print!(
        "{}",
        twill::report::format_table(
            &["benchmark", "SW cycles", "pure HW", "Twill", "Twill vs HW"],
            &table
        )
    );
    let (hw, twill, ratio) = twill::experiments::fig_6_2_geomeans(&rows);
    println!("\ngeomeans: pure HW {hw:.2}x, Twill {twill:.2}x, Twill/HW {ratio:.2}x");
    println!("paper:    pure HW ~13.6x, Twill 22.2x, Twill/HW 1.63x (averages)");

    if std::env::args().any(|a| a == "--blowfish-tuned") {
        let t = twill::experiments::blowfish_tuned(None);
        println!("\n§6.4 Blowfish heuristic experiment:");
        println!("  default-heuristic: {} cycles, {} queues", t.default_cycles, t.default_queues);
        println!(
            "  tuned-heuristic:   {} cycles, {} queues ({:.2}x vs pure HW; paper: 1.89x, queues 92 -> 34)",
            t.tuned_cycles, t.tuned_queues, t.tuned_vs_hw
        );
    }
}
