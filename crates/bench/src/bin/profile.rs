//! Pipeline-level profiling of a CHStone benchmark's hybrid run.
//!
//! ```console
//! profile [BENCH] [--scale N] [--trace FILE] [--metrics FILE]
//!         [--metrics-text FILE] [--regmap-out FILE] [--dump-out FILE]
//!         [--annotate-out FILE] [--folded-out FILE]
//!         [--sample-interval N] [--timeline-out FILE] [--phases-out FILE]
//!         [--obs-ring-capacity N] [--strict-obs] [--no-fast-forward]
//! ```
//!
//! With no benchmark name, profiles all eight. Prints the per-thread
//! stall/utilization table (busy / queue-full / queue-empty / semaphore /
//! memory-bus / module-bus / idle) and names the critical pipeline stage;
//! `--trace` writes a Chrome/Perfetto `trace_event` JSON of the run
//! (compiler stages + cycle timeline, open at <https://ui.perfetto.dev>),
//! `--metrics` writes the structured metrics report as JSON,
//! `--metrics-text` writes the same metrics in the Prometheus text
//! exposition format, `--regmap-out`/`--dump-out` write the hardware
//! performance-counter register map and the simulated word-for-word
//! counter dump (DESIGN.md §14 readback artifacts),
//! `--annotate-out` writes the benchmark's C source annotated with the
//! per-line cycles/stall gutter, `--folded-out` writes folded-stack lines
//! for flamegraph tooling. `--timeline-out` writes the interval-sampled
//! counter timeline as JSON and `--phases-out` the phase-segmentation
//! report (runs of intervals sharing a dominant stall-class signature,
//! each named by its hottest C line); both default to one sample every
//! 4096 cycles unless `--sample-interval` says otherwise, and both are
//! the artifacts CI archives for the blowfish perf gate.
//! `--obs-ring-capacity` bounds the event ring
//! used with `--trace` (default 2^22 events; overflow warns on stderr,
//! never silent — and exits non-zero under `--strict-obs`).

use twill::experiments::benchmark_graph;
use twill::Compiler;

fn usage() -> ! {
    eprintln!(
        "usage: profile [BENCH] [--scale N] [--trace FILE] [--metrics FILE] \
         [--metrics-text FILE] [--regmap-out FILE] [--dump-out FILE] \
         [--annotate-out FILE] [--folded-out FILE] [--sample-interval N] \
         [--timeline-out FILE] [--phases-out FILE] [--obs-ring-capacity N] \
         [--strict-obs] [--no-fast-forward]"
    );
    std::process::exit(2);
}

fn main() {
    let mut bench: Option<String> = None;
    let mut scale: Option<u32> = None;
    let mut trace: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut metrics_text: Option<String> = None;
    let mut regmap_out: Option<String> = None;
    let mut dump_out: Option<String> = None;
    let mut annotate_out: Option<String> = None;
    let mut folded_out: Option<String> = None;
    let mut sample_interval: Option<u64> = None;
    let mut timeline_out: Option<String> = None;
    let mut phases_out: Option<String> = None;
    let mut ring_capacity: usize = 1 << 22;
    let mut strict_obs = false;
    let mut no_fast_forward = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--trace" => trace = Some(it.next().unwrap_or_else(|| usage())),
            "--metrics" => metrics = Some(it.next().unwrap_or_else(|| usage())),
            "--metrics-text" => metrics_text = Some(it.next().unwrap_or_else(|| usage())),
            "--regmap-out" => regmap_out = Some(it.next().unwrap_or_else(|| usage())),
            "--dump-out" => dump_out = Some(it.next().unwrap_or_else(|| usage())),
            "--annotate-out" => annotate_out = Some(it.next().unwrap_or_else(|| usage())),
            "--folded-out" => folded_out = Some(it.next().unwrap_or_else(|| usage())),
            "--sample-interval" => {
                sample_interval =
                    Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--timeline-out" => timeline_out = Some(it.next().unwrap_or_else(|| usage())),
            "--phases-out" => phases_out = Some(it.next().unwrap_or_else(|| usage())),
            "--obs-ring-capacity" => {
                ring_capacity = twill_bench::parse_ring_capacity(&mut it).unwrap_or_else(|| usage())
            }
            "--strict-obs" => strict_obs = true,
            "--no-fast-forward" => no_fast_forward = true,
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && bench.is_none() => bench = Some(other.to_string()),
            _ => usage(),
        }
    }

    let benches: Vec<chstone::Benchmark> = match &bench {
        Some(name) => {
            vec![chstone::by_name(name).unwrap_or_else(|| {
                eprintln!("profile: unknown benchmark {name:?}");
                std::process::exit(2);
            })]
        }
        None => chstone::all(),
    };
    if benches.len() > 1
        && (trace.is_some()
            || metrics.is_some()
            || metrics_text.is_some()
            || regmap_out.is_some()
            || dump_out.is_some()
            || annotate_out.is_some()
            || folded_out.is_some()
            || timeline_out.is_some()
            || phases_out.is_some())
    {
        eprintln!("profile: per-file output flags need a single benchmark");
        std::process::exit(2);
    }

    let mut obs_data_lost = false;
    for b in &benches {
        let graph = benchmark_graph(b);
        let hw_counters = regmap_out.is_some() || dump_out.is_some();
        let build =
            Compiler::new().partitions(b.partitions).hw_counters(hw_counters).build_on(&graph);
        let input = chstone::input_for(b.name, scale.unwrap_or(b.default_scale));
        let sampling = sample_interval.is_some() || timeline_out.is_some() || phases_out.is_some();
        let cfg = twill::SimulationConfig {
            trace_events: if trace.is_some() { ring_capacity } else { 0 },
            // Phase reports name each phase's hottest C line, so
            // `--phases-out` needs the line-granular profile too.
            profile: annotate_out.is_some() || folded_out.is_some() || phases_out.is_some(),
            sample_interval: sampling.then(|| sample_interval.unwrap_or(4096)),
            fast_forward: !no_fast_forward && build.sim_config().fast_forward,
            ..build.sim_config()
        };
        let rep = build.simulate_hybrid_with(input, &cfg).expect("hybrid simulation");
        let c = graph.counters();
        let spans = graph.spans();
        println!(
            "{}",
            twill_obs::profile_report(
                b.name,
                &rep.metrics(),
                Some(twill_obs::StageSection { spans: &spans, runs: c.runs(), hits: c.hits() }),
            )
        );

        if let Some(f) = &trace {
            let json = rep.trace_builder().spans(graph.spans()).build();
            std::fs::write(f, json).expect("write trace");
            println!("Perfetto trace written to {f} ({} event(s))", rep.events.len());
        }
        if let Some(f) = &metrics {
            std::fs::write(f, rep.metrics().to_json()).expect("write metrics");
            println!("metrics JSON written to {f}");
        }
        if let Some(f) = &metrics_text {
            std::fs::write(f, rep.metrics().metrics_text()).expect("write text metrics");
            println!("Prometheus text metrics written to {f}");
        }
        if let Some(f) = &regmap_out {
            std::fs::write(f, build.regmap_json().as_bytes()).expect("write register map");
            println!("counter register map written to {f}");
        }
        if let Some(f) = &dump_out {
            std::fs::write(f, build.counter_bank(&rep).dump().to_json()).expect("write dump");
            println!("hardware counter dump written to {f}");
        }
        if annotate_out.is_some() || folded_out.is_some() {
            let sp = rep
                .source_profile(&build.dswp().module)
                .expect("source profile requested but missing");
            if let Some(f) = &annotate_out {
                let mut text = sp.annotate_source(b.source);
                text.push('\n');
                text.push_str(&sp.report(10));
                std::fs::write(f, text).expect("write annotated source");
                println!("annotated source written to {f}");
            }
            if let Some(f) = &folded_out {
                std::fs::write(f, sp.folded_stacks()).expect("write folded stacks");
                println!("folded stacks written to {f} (feed to flamegraph.pl / inferno)");
            }
        }
        if let Some(f) = &timeline_out {
            let t = rep.timeline.as_ref().expect("sampling was enabled");
            std::fs::write(f, t.to_json()).expect("write timeline");
            println!(
                "sampled timeline written to {f} ({} interval(s) of {} cycles)",
                t.intervals.len(),
                t.sample_interval
            );
        }
        if let Some(f) = &phases_out {
            let t = rep.timeline.as_ref().expect("sampling was enabled");
            let mut pr = twill_obs::segment(t);
            let sp = rep
                .source_profile(&build.dswp().module)
                .expect("source profile requested but missing");
            pr.annotate(&sp);
            std::fs::write(f, pr.to_json()).expect("write phase report");
            print!("{}", pr.render_text());
            println!("phase report written to {f} ({} phase(s))", pr.phases.len());
        }
        if rep.dropped_events > 0 {
            obs_data_lost = true;
            eprintln!(
                "profile: WARN: trace truncated for {}: {} event(s) dropped — raise --obs-ring-capacity",
                b.name, rep.dropped_events
            );
        }
    }
    if strict_obs && obs_data_lost {
        eprintln!("profile: --strict-obs: observability data was lost");
        std::process::exit(1);
    }
}
