//! (Re)record the performance baseline (`BENCH_baseline.json`).
//!
//! ```console
//! baseline [--out FILE]
//! ```
//!
//! Simulates every CHStone benchmark in all three configurations
//! (sw/hw/hybrid) at the golden workload scale and writes the versioned
//! baseline document: per-entry cycle counts with the full stall-class
//! and queue-occupancy breakdown, per-benchmark compile-stage wall-clock
//! timings, and environment metadata. The cycle data is deterministic, so
//! re-running on an unchanged tree rewrites the file with identical
//! simulation numbers (only the wall-clock spans move).
//!
//! Commit the result; `twill-bench compare` and the CI perf gate judge
//! every future change against it, and the golden-cycle test in
//! `twill-rt` reads its expected counts from it.

fn main() {
    let mut out = twill_bench::BASELINE_PATH.to_string();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(f) => out = f,
                None => usage(),
            },
            _ => usage(),
        }
    }

    eprintln!("recording baseline (8 benchmarks x 3 modes)...");
    let baseline = twill_bench::collect_baseline();
    std::fs::write(&out, baseline.to_json()).unwrap_or_else(|e| {
        eprintln!("baseline: cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!(
        "baseline written to {out}: {} entries, {} stage records, schema v{}",
        baseline.entries.len(),
        baseline.stages.len(),
        baseline.schema_version
    );
    for e in &baseline.entries {
        println!("  {:<10} {:<8} {:>12} cycles", e.bench, e.mode, e.cycles());
    }
}

fn usage() -> ! {
    eprintln!("usage: baseline [--out FILE]");
    std::process::exit(2);
}
