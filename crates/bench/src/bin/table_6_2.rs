//! Regenerates paper Table 6.2: LUTs for the pure LegUp translation vs the
//! Twill hybrid (HW threads only / + runtime / + Microblaze).

fn main() {
    let rows = twill::experiments::table_6_2();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.legup_luts.to_string(),
                r.twill_hw_luts.to_string(),
                r.twill_luts.to_string(),
                r.twill_mb_luts.to_string(),
                format!("{}/{}/{}/{}", r.paper.0, r.paper.1, r.paper.2, r.paper.3),
            ]
        })
        .collect();
    println!("Table 6.2 — FPGA LUTs (paper column: LegUp/TwillHW/Twill/Twill+MB)\n");
    print!(
        "{}",
        twill::report::format_table(
            &["benchmark", "LegUp", "Twill HWThreads", "Twill", "Twill+Microblaze", "paper"],
            &table
        )
    );
    let n = rows.len() as f64;
    let geo = |f: &dyn Fn(&twill::experiments::Table62Row) -> f64| {
        (rows.iter().map(|r| f(r).ln()).sum::<f64>() / n).exp()
    };
    println!(
        "\nHW-thread area ratio (LegUp / Twill HWThreads), geomean: {:.2}x  (paper: 1.73x)",
        geo(&|r| r.legup_luts as f64 / r.twill_hw_luts as f64)
    );
    println!(
        "Total area ratio (Twill / LegUp), geomean: {:.2}x  (paper: 1.35x increase)",
        geo(&|r| r.twill_luts as f64 / r.legup_luts as f64)
    );
}
