//! Deterministic fault-injection campaign over the CHStone suite.
//!
//! For every benchmark × fault-rate cell the driver runs the hybrid under
//! a seeded [`FaultPlan`], classifies the outcome against the golden
//! interpreter output (survived / corrupted / hang / timeout), retries
//! with fresh derived seeds, and degrades to a fault-free pure-software
//! run when every hybrid attempt fails — the same policy as
//! `TwillBuild::run_resilient`, but with the full per-attempt taxonomy
//! recorded for the survival table.
//!
//! Everything is keyed off the campaign seed, so the same invocation
//! produces byte-identical JSON twice.

use twill::{Compiler, FaultPlan, FaultSpec, SimulationConfig};
use twill_obs::json;
use twill_rt::SimError;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Per-cycle fault rates to sweep (applied uniformly to every fault
    /// class via [`FaultSpec::uniform`]).
    pub rates: Vec<f64>,
    /// Master seed; every cell/attempt seed is derived from it.
    pub seed: u64,
    /// Hybrid attempts per cell before degrading to pure software.
    pub attempts: u32,
    /// Workload scale for every benchmark.
    pub scale: u32,
    /// Watchdog no-progress window (small, so injected deadlocks are
    /// diagnosed quickly).
    pub watchdog: u64,
    /// Cycle budget per attempt (small relative to the simulator default:
    /// a faulted run that blows far past its clean cycle count is a
    /// failure worth classifying, not worth simulating for billions of
    /// cycles).
    pub max_cycles: u64,
    /// Event-ring capacity armed on every run (0 = tracing off). With
    /// tracing armed, dropped events count as observability data loss.
    pub trace_capacity: usize,
    /// Run the simulator's event-driven fast-forward loop (the default;
    /// false forces the naive tick-every-cycle loop for cross-checking).
    pub fast_forward: bool,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            rates: vec![1e-6, 1e-5, 1e-4],
            seed: 1,
            attempts: 3,
            scale: 1,
            watchdog: 200_000,
            max_cycles: 20_000_000,
            trace_capacity: 0,
            fast_forward: true,
        }
    }
}

/// How one hybrid attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Completed with correct output (faults absorbed).
    Survived,
    /// Completed but the output differs from the golden reference — the
    /// runtime itself did not notice (caught only by the cross-check).
    Corrupted,
    /// The watchdog declared a hang and produced a diagnosis.
    Hang,
    /// The cycle budget ran out.
    Timeout,
}

impl Outcome {
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Survived => "survived",
            Outcome::Corrupted => "corrupted",
            Outcome::Hang => "hang",
            Outcome::Timeout => "timeout",
        }
    }
}

/// One hybrid attempt's record.
#[derive(Debug, Clone)]
pub struct Attempt {
    pub outcome: Outcome,
    /// Faults injected during the attempt.
    pub faults: u64,
    /// For hangs: the wait-for walk produced a non-empty chain.
    pub diagnosed: bool,
    /// Trace events dropped (observability loss when tracing was armed).
    pub obs_lost: u64,
}

/// One benchmark × rate cell.
#[derive(Debug, Clone)]
pub struct Cell {
    pub bench: String,
    pub rate: f64,
    pub attempts: Vec<Attempt>,
    /// `"hybrid"` or `"pure-sw"` — the path that served the final output.
    pub served: &'static str,
    /// 0-based attempt index that served (0 for the fallback too).
    pub served_attempt: u32,
    /// The served output matched the golden reference.
    pub final_ok: bool,
    /// The bounded fault log could not hold every injected fault.
    pub log_truncated: bool,
}

/// The whole campaign result.
#[derive(Debug)]
pub struct Campaign {
    pub seed: u64,
    pub attempts: u32,
    pub scale: u32,
    pub cells: Vec<Cell>,
}

/// Derive a per-cell seed from the campaign seed, benchmark name, and
/// rate index (FNV-1a over the name, folded with the master seed).
fn cell_seed(seed: u64, bench: &str, rate_idx: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in bench.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h.wrapping_add(rate_idx as u64)
}

/// Run the campaign over `benches`.
pub fn run_campaign(benches: &[chstone::Benchmark], opts: &CampaignOptions) -> Campaign {
    let mut cells = Vec::new();
    for b in benches {
        let build = Compiler::new()
            .partitions(b.partitions)
            .compile(b.name, b.source)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let input = chstone::input_for(b.name, opts.scale);
        let golden = build
            .run_reference(input.clone())
            .unwrap_or_else(|e| panic!("{}: reference run failed: {e}", b.name));
        for (ri, &rate) in opts.rates.iter().enumerate() {
            let plan = FaultPlan::new(cell_seed(opts.seed, b.name, ri), FaultSpec::uniform(rate));
            let mut cell = Cell {
                bench: b.name.to_string(),
                rate,
                attempts: Vec::new(),
                served: "pure-sw",
                served_attempt: 0,
                final_ok: false,
                log_truncated: false,
            };
            for k in 0..opts.attempts {
                let cfg = SimulationConfig {
                    fault: Some(plan.reseeded(k)),
                    watchdog_window: opts.watchdog,
                    max_cycles: opts.max_cycles,
                    trace_events: opts.trace_capacity,
                    fast_forward: opts.fast_forward && build.sim_config().fast_forward,
                    ..build.sim_config()
                };
                let (attempt, report) = match build.simulate_hybrid_with(input.clone(), &cfg) {
                    Ok(rep) => {
                        let ok = rep.output == golden;
                        let a = Attempt {
                            outcome: if ok { Outcome::Survived } else { Outcome::Corrupted },
                            faults: rep.stats.faults.total(),
                            diagnosed: false,
                            obs_lost: rep.dropped_events,
                        };
                        (a, Some(rep))
                    }
                    Err(SimError::Deadlock { report, partial }) => {
                        let a = Attempt {
                            outcome: Outcome::Hang,
                            faults: partial.stats.faults.total(),
                            diagnosed: !report.chain.is_empty(),
                            obs_lost: partial.dropped_events,
                        };
                        (a, Some(*partial))
                    }
                    Err(SimError::Timeout { partial, .. }) => {
                        let a = Attempt {
                            outcome: Outcome::Timeout,
                            faults: partial.stats.faults.total(),
                            diagnosed: false,
                            obs_lost: partial.dropped_events,
                        };
                        (a, Some(*partial))
                    }
                    Err(e @ SimError::Config(_)) => {
                        panic!("{} rate {rate}: {e}", b.name)
                    }
                };
                if let Some(rep) = &report {
                    if (rep.stats.faults.total() as usize) > rep.fault_log.len() {
                        cell.log_truncated = true;
                    }
                }
                let outcome = attempt.outcome;
                cell.attempts.push(attempt);
                if outcome == Outcome::Survived {
                    cell.served = "hybrid";
                    cell.served_attempt = k;
                    cell.final_ok = true;
                    break;
                }
            }
            if cell.served != "hybrid" {
                // Degraded path: the whole program on the soft CPU,
                // injection off — must produce the golden output.
                let cfg = SimulationConfig {
                    fault: None,
                    fast_forward: opts.fast_forward && build.sim_config().fast_forward,
                    ..build.sim_config()
                };
                let rep = twill_rt::simulate_pure_sw(build.prepared(), input.clone(), &cfg)
                    .unwrap_or_else(|e| panic!("{}: pure-SW fallback failed: {e}", b.name));
                cell.final_ok = rep.output == golden;
            }
            cells.push(cell);
        }
    }
    Campaign { seed: opts.seed, attempts: opts.attempts, scale: opts.scale, cells }
}

impl Campaign {
    /// Any cell whose *served* output was wrong — corruption that slipped
    /// past both the retry policy and the fallback.
    pub fn undetected_corruption(&self) -> bool {
        self.cells.iter().any(|c| !c.final_ok)
    }

    /// Observability data was lost somewhere (dropped trace events or a
    /// truncated fault log).
    pub fn obs_data_lost(&self) -> bool {
        self.cells.iter().any(|c| c.log_truncated || c.attempts.iter().any(|a| a.obs_lost > 0))
    }

    /// The survival/detection/corruption table.
    pub fn table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                let count =
                    |o: Outcome| c.attempts.iter().filter(|a| a.outcome == o).count().to_string();
                let faults: u64 = c.attempts.iter().map(|a| a.faults).sum();
                let diagnosed = c.attempts.iter().filter(|a| a.diagnosed).count();
                vec![
                    c.bench.clone(),
                    format!("{:e}", c.rate),
                    faults.to_string(),
                    count(Outcome::Survived),
                    count(Outcome::Corrupted),
                    format!(
                        "{} ({diagnosed} diagnosed)",
                        c.attempts.iter().filter(|a| a.outcome == Outcome::Hang).count()
                    ),
                    count(Outcome::Timeout),
                    c.served.to_string(),
                    if c.final_ok { "ok".to_string() } else { "CORRUPT".to_string() },
                ]
            })
            .collect();
        twill::report::format_table(
            &[
                "bench",
                "rate",
                "faults",
                "survived",
                "corrupted",
                "hangs",
                "timeouts",
                "served",
                "final",
            ],
            &rows,
        )
    }

    /// Deterministic JSON document (same seed + spec → byte-identical).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": 1,");
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"attempts\": {},", self.attempts);
        let _ = writeln!(s, "  \"scale\": {},", self.scale);
        let _ = writeln!(s, "  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"bench\": {},", json::quote(&c.bench));
            let _ = writeln!(s, "      \"rate\": {},", json::number(c.rate));
            let _ = writeln!(s, "      \"served\": {},", json::quote(c.served));
            let _ = writeln!(s, "      \"served_attempt\": {},", c.served_attempt);
            let _ = writeln!(s, "      \"final_ok\": {},", c.final_ok);
            let _ = writeln!(s, "      \"log_truncated\": {},", c.log_truncated);
            let _ = writeln!(s, "      \"attempts\": [");
            for (j, a) in c.attempts.iter().enumerate() {
                let _ = write!(
                    s,
                    "        {{\"outcome\": {}, \"faults\": {}, \"diagnosed\": {}, \"obs_lost\": {}}}",
                    json::quote(a.outcome.label()),
                    a.faults,
                    a.diagnosed,
                    a.obs_lost
                );
                let _ = writeln!(s, "{}", if j + 1 < c.attempts.len() { "," } else { "" });
            }
            let _ = writeln!(s, "      ]");
            let _ = writeln!(s, "    }}{}", if i + 1 < self.cells.len() { "," } else { "" });
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }
}
