//! Ablation benchmarks for the design choices DESIGN.md calls out: reports
//! *simulated cycles* under each ablation as custom measurements (lower =
//! better), alongside host-time of the full flow.

use criterion::{criterion_group, criterion_main, Criterion};

/// Print a small ablation table once (criterion runs the timing part).
fn ablation_tables() {
    let b = chstone::AES;
    let prepared = chstone::compile_and_prepare(&b);
    let input = chstone::input_for(b.name, b.default_scale);

    println!("\n=== ablation: HLS chaining / loop pipelining (pure HW cycles) ===");
    for (name, chaining, pipelining) in [
        ("baseline", true, true),
        ("no-chaining", false, true),
        ("no-loop-pipelining", true, false),
        ("neither", false, false),
    ] {
        let cfg = twill_rt::SimConfig {
            hls: twill_hls::schedule::HlsOptions {
                chaining,
                loop_pipelining: pipelining,
                ..Default::default()
            },
            ..Default::default()
        };
        let rep = twill_rt::simulate_pure_hw(&prepared, input.clone(), &cfg).unwrap();
        println!("  {name:20} {} cycles", rep.cycles);
    }

    println!("\n=== ablation: DSWP options (hybrid cycles, aes) ===");
    for (name, opts) in [
        (
            "baseline",
            twill_dswp::DswpOptions { num_partitions: b.partitions, ..Default::default() },
        ),
        (
            "no-pruning",
            twill_dswp::DswpOptions {
                num_partitions: b.partitions,
                prune: false,
                ..Default::default()
            },
        ),
        (
            "no-phi-const-pairs",
            twill_dswp::DswpOptions {
                num_partitions: b.partitions,
                phi_const_pairs: false,
                ..Default::default()
            },
        ),
        (
            "flat-placement-weights",
            twill_dswp::DswpOptions {
                num_partitions: b.partitions,
                freq_weights: false,
                ..Default::default()
            },
        ),
    ] {
        let d = twill_dswp::run_dswp(&prepared, &opts);
        let rep = twill_rt::simulate_hybrid(&d, input.clone(), &Default::default()).unwrap();
        println!("  {name:24} {} cycles, {} queues", rep.cycles, d.stats.queues);
    }
}

fn bench_full_flow(c: &mut Criterion) {
    ablation_tables();
    let b = chstone::AES;
    c.bench_function("full_flow_aes", |bench| {
        bench.iter(|| {
            let prepared = chstone::compile_and_prepare(&b);
            twill::Compiler::new().partitions(b.partitions).build_from_module(prepared)
        })
    });
}

criterion_group! {
    name = ablate;
    config = Criterion::default().sample_size(10);
    targets = bench_full_flow
}
criterion_main!(ablate);
