//! Criterion benchmarks of the cycle-level simulator itself: simulated
//! cycles per host-second for the three configurations.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_simulator(c: &mut Criterion) {
    let b = chstone::AES;
    let prepared = chstone::compile_and_prepare(&b);
    let input = chstone::input_for(b.name, 4);
    let build = twill::Compiler::new().partitions(b.partitions).build_from_module(prepared);

    let sw_cycles = build.simulate_pure_sw(input.clone()).unwrap().cycles;
    let hw_cycles = build.simulate_pure_hw(input.clone()).unwrap().cycles;
    let tw_cycles = build.simulate_hybrid(input.clone()).unwrap().cycles;

    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(sw_cycles));
    g.bench_function("pure_sw_aes", |bench| {
        bench.iter(|| build.simulate_pure_sw(input.clone()).unwrap())
    });
    g.throughput(Throughput::Elements(hw_cycles));
    g.bench_function("pure_hw_aes", |bench| {
        bench.iter(|| build.simulate_pure_hw(input.clone()).unwrap())
    });
    g.throughput(Throughput::Elements(tw_cycles));
    g.bench_function("hybrid_aes", |bench| {
        bench.iter(|| build.simulate_hybrid(input.clone()).unwrap())
    });
    g.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let b = chstone::MOTION;
    let m = chstone::compile_and_prepare(&b);
    let input = chstone::input_for(b.name, 1);
    c.bench_function("reference_interpreter_motion", |bench| {
        bench.iter(|| twill_ir::interp::run_main(&m, input.clone(), 2_000_000_000).unwrap())
    });
}

criterion_group! {
    name = sim;
    config = Criterion::default().sample_size(10);
    targets = bench_simulator, bench_interpreter
}
criterion_main!(sim);
