//! Criterion benchmarks of the cycle-level simulator itself: simulated
//! cycles per host-second for the three configurations.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_simulator(c: &mut Criterion) {
    let b = chstone::AES;
    let prepared = chstone::compile_and_prepare(&b);
    let input = chstone::input_for(b.name, 4);
    let build = twill::Compiler::new().partitions(b.partitions).build_from_module(prepared);

    let sw_cycles = build.simulate_pure_sw(input.clone()).unwrap().cycles;
    let hw_cycles = build.simulate_pure_hw(input.clone()).unwrap().cycles;
    let tw_cycles = build.simulate_hybrid(input.clone()).unwrap().cycles;

    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(sw_cycles));
    g.bench_function("pure_sw_aes", |bench| {
        bench.iter(|| build.simulate_pure_sw(input.clone()).unwrap())
    });
    g.throughput(Throughput::Elements(hw_cycles));
    g.bench_function("pure_hw_aes", |bench| {
        bench.iter(|| build.simulate_pure_hw(input.clone()).unwrap())
    });
    g.throughput(Throughput::Elements(tw_cycles));
    g.bench_function("hybrid_aes", |bench| {
        bench.iter(|| build.simulate_hybrid(input.clone()).unwrap())
    });
    g.finish();
}

/// Stall-dominated pipeline: 2-slot queues and 512-cycle queue operations
/// skew every producer/consumer pair far apart, so nearly every simulated
/// cycle is part of a blocked, charge, or latency span — the workload
/// class the event-driven fast-forward core leaps over. Reported as
/// simulated-cycles/sec for both loop modes; the runs produce identical
/// reports by contract (asserted here on cycle count).
fn bench_stall_heavy(c: &mut Criterion) {
    let b = chstone::JPEG;
    let prepared = chstone::compile_and_prepare(&b);
    let input = chstone::input_for(b.name, 1);
    let build = twill::Compiler::new().partitions(b.partitions).build_from_module(prepared);

    let stall_cfg = |fast_forward: bool| twill::SimulationConfig {
        queue_latency: 512,
        queue_depth: Some(2),
        fast_forward,
        ..build.sim_config()
    };
    let cycles = build.simulate_hybrid_with(input.clone(), &stall_cfg(true)).unwrap().cycles;
    let naive_cycles = build.simulate_hybrid_with(input.clone(), &stall_cfg(false)).unwrap().cycles;
    assert_eq!(cycles, naive_cycles, "fast-forward must not change simulated time");

    let mut g = c.benchmark_group("stall_heavy");
    g.throughput(Throughput::Elements(cycles));
    g.bench_function("hybrid_jpeg_fast_forward", |bench| {
        bench.iter(|| build.simulate_hybrid_with(input.clone(), &stall_cfg(true)).unwrap())
    });
    g.bench_function("hybrid_jpeg_naive", |bench| {
        bench.iter(|| build.simulate_hybrid_with(input.clone(), &stall_cfg(false)).unwrap())
    });
    g.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let b = chstone::MOTION;
    let m = chstone::compile_and_prepare(&b);
    let input = chstone::input_for(b.name, 1);
    c.bench_function("reference_interpreter_motion", |bench| {
        bench.iter(|| twill_ir::interp::run_main(&m, input.clone(), 2_000_000_000).unwrap())
    });
}

criterion_group! {
    name = sim;
    config = Criterion::default().sample_size(10);
    targets = bench_simulator, bench_stall_heavy, bench_interpreter
}
criterion_main!(sim);
