//! Criterion benchmarks of the compiler phases on the CHStone suite:
//! frontend parse+lower, the optimization pipeline, PDG construction, and
//! DSWP thread extraction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn bench_frontend(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend");
    for b in [chstone::AES, chstone::JPEG, chstone::GSM] {
        g.bench_function(b.name, |bench| {
            bench.iter(|| twill_frontend::compile(b.name, b.source).unwrap())
        });
    }
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pass_pipeline");
    for b in [chstone::AES, chstone::JPEG] {
        let raw = twill_frontend::compile(b.name, b.source).unwrap();
        g.bench_function(b.name, |bench| {
            bench.iter_batched(
                || raw.clone(),
                |mut m| {
                    twill_passes::run_standard_pipeline(
                        &mut m,
                        &twill_passes::PipelineOptions {
                            verify_between: false,
                            ..Default::default()
                        },
                    );
                    m
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_pdg_and_dswp(c: &mut Criterion) {
    let mut g = c.benchmark_group("dswp");
    for b in [chstone::AES, chstone::MOTION] {
        let prepared = chstone::compile_and_prepare(&b);
        g.bench_function(format!("{}_extract", b.name), |bench| {
            bench.iter(|| {
                twill_dswp::run_dswp(
                    &prepared,
                    &twill_dswp::DswpOptions { num_partitions: b.partitions, ..Default::default() },
                )
            })
        });
    }
    g.finish();
}

fn bench_hls(c: &mut Criterion) {
    let mut g = c.benchmark_group("hls_schedule");
    for b in [chstone::AES, chstone::JPEG] {
        let prepared = chstone::compile_and_prepare(&b);
        g.bench_function(b.name, |bench| {
            bench.iter(|| twill_hls::schedule::schedule_module(&prepared, &Default::default()))
        });
    }
    g.finish();
}

/// Cold-vs-warm Fig 6.5-style sweep (7 queue-latency points on MIPS).
/// Cold rebuilds every compile artifact per point — the pre-`BuildGraph`
/// behaviour. Warm forks all points off one shared artifact graph, so
/// frontend/passes/DSWP/HLS are served from the memoized stages and only
/// the simulation runs per point.
fn bench_cold_vs_warm_sweep(c: &mut Criterion) {
    const LATENCIES: [u32; 7] = [2, 4, 8, 16, 32, 64, 128];
    // AES: compilation (passes + DSWP + HLS) dominates a sweep point, so
    // the cache benefit is visible; tiny benchmarks are simulation-bound.
    let b = chstone::by_name("aes").unwrap();
    let inp = chstone::input_for(b.name, 1);

    let sweep = |build: &twill::TwillBuild| -> u64 {
        let mut total = 0;
        for lat in LATENCIES {
            let cfg = twill::SimulationConfig { queue_latency: lat, ..build.sim_config() };
            total += build.simulate_hybrid_with(inp.clone(), &cfg).expect("sim").cycles;
        }
        total
    };
    let cold_sweep = || {
        let mut total = 0;
        for lat in LATENCIES {
            // One fresh compile per point: nothing is shared.
            let build = twill::Compiler::new()
                .partitions(b.partitions)
                .build_from_module(chstone::compile_and_prepare(&b));
            let cfg = twill::SimulationConfig { queue_latency: lat, ..build.sim_config() };
            total += build.simulate_hybrid_with(inp.clone(), &cfg).expect("sim").cycles;
        }
        total
    };
    let graph = std::sync::Arc::new(twill::artifacts::BuildGraph::from_prepared(
        b.name,
        chstone::compile_and_prepare(&b),
    ));
    let warm_sweep = || sweep(&twill::Compiler::new().partitions(b.partitions).build_on(&graph));
    // Prime the graph so the warm benchmark measures steady-state reuse.
    assert_eq!(cold_sweep(), warm_sweep(), "cold and warm sweeps must agree");

    let mut g = c.benchmark_group("artifact_cache");
    g.bench_function("cold_sweep_7pt", |bench| bench.iter(cold_sweep));
    g.bench_function("warm_sweep_7pt", |bench| bench.iter(warm_sweep));
    g.finish();

    // One explicit ratio line: the staged pipeline's acceptance criterion
    // is warm ≥ 5× faster than cold on this sweep.
    let t = std::time::Instant::now();
    let _ = cold_sweep();
    let cold = t.elapsed();
    let t = std::time::Instant::now();
    let _ = warm_sweep();
    let warm = t.elapsed();
    println!(
        "artifact_cache: cold sweep {cold:?} vs warm sweep {warm:?} ({:.1}x)",
        cold.as_secs_f64() / warm.as_secs_f64().max(1e-9)
    );
}

criterion_group! {
    name = phases;
    config = Criterion::default().sample_size(20);
    targets = bench_frontend, bench_pipeline, bench_pdg_and_dswp, bench_hls,
        bench_cold_vs_warm_sweep
}
criterion_main!(phases);
