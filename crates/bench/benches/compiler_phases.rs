//! Criterion benchmarks of the compiler phases on the CHStone suite:
//! frontend parse+lower, the optimization pipeline, PDG construction, and
//! DSWP thread extraction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn bench_frontend(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend");
    for b in [chstone::AES, chstone::JPEG, chstone::GSM] {
        g.bench_function(b.name, |bench| {
            bench.iter(|| twill_frontend::compile(b.name, b.source).unwrap())
        });
    }
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pass_pipeline");
    for b in [chstone::AES, chstone::JPEG] {
        let raw = twill_frontend::compile(b.name, b.source).unwrap();
        g.bench_function(b.name, |bench| {
            bench.iter_batched(
                || raw.clone(),
                |mut m| {
                    twill_passes::run_standard_pipeline(
                        &mut m,
                        &twill_passes::PipelineOptions {
                            verify_between: false,
                            ..Default::default()
                        },
                    );
                    m
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_pdg_and_dswp(c: &mut Criterion) {
    let mut g = c.benchmark_group("dswp");
    for b in [chstone::AES, chstone::MOTION] {
        let prepared = chstone::compile_and_prepare(&b);
        g.bench_function(format!("{}_extract", b.name), |bench| {
            bench.iter(|| {
                twill_dswp::run_dswp(
                    &prepared,
                    &twill_dswp::DswpOptions {
                        num_partitions: b.partitions,
                        ..Default::default()
                    },
                )
            })
        });
    }
    g.finish();
}

fn bench_hls(c: &mut Criterion) {
    let mut g = c.benchmark_group("hls_schedule");
    for b in [chstone::AES, chstone::JPEG] {
        let prepared = chstone::compile_and_prepare(&b);
        g.bench_function(b.name, |bench| {
            bench.iter(|| {
                twill_hls::schedule::schedule_module(&prepared, &Default::default())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = phases;
    config = Criterion::default().sample_size(20);
    targets = bench_frontend, bench_pipeline, bench_pdg_and_dswp, bench_hls
}
criterion_main!(phases);
