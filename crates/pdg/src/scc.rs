//! Strongly connected components of the PDG (iterative Tarjan) and the
//! condensed SCC DAG the DSWP partitioner works on.

use crate::graph::Pdg;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SccId(pub u32);

impl SccId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Condensation of the PDG: every node belongs to exactly one SCC; edges
/// between distinct SCCs form a DAG.
pub struct SccDag {
    /// SCC id per PDG node index.
    pub scc_of: Vec<SccId>,
    /// Member PDG nodes per SCC.
    pub members: Vec<Vec<usize>>,
    /// DAG edges: `succs[s]` = SCCs that depend on s (must run after).
    pub succs: Vec<Vec<SccId>>,
    pub preds: Vec<Vec<SccId>>,
    /// Topological order (dependencies first).
    pub topo: Vec<SccId>,
}

impl SccDag {
    pub fn new(pdg: &Pdg) -> SccDag {
        let n = pdg.len();
        // Iterative Tarjan.
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut scc_of = vec![SccId(u32::MAX); n];
        let mut members: Vec<Vec<usize>> = Vec::new();

        #[derive(Clone)]
        struct Frame {
            v: usize,
            edge: usize,
        }

        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut call: Vec<Frame> = vec![Frame { v: root, edge: 0 }];
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;

            while let Some(fr) = call.last_mut() {
                let v = fr.v;
                if fr.edge < pdg.edges[v].len() {
                    let (w, _) = pdg.edges[v][fr.edge];
                    fr.edge += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call.push(Frame { v: w, edge: 0 });
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        let sid = SccId(members.len() as u32);
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().unwrap();
                            on_stack[w] = false;
                            scc_of[w] = sid;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort();
                        members.push(comp);
                    }
                    let done = call.pop().unwrap();
                    if let Some(parent) = call.last() {
                        low[parent.v] = low[parent.v].min(low[done.v]);
                    }
                }
            }
        }

        // Condensed DAG edges.
        let nscc = members.len();
        let mut succs: Vec<Vec<SccId>> = vec![Vec::new(); nscc];
        let mut preds: Vec<Vec<SccId>> = vec![Vec::new(); nscc];
        for (t, h, _) in pdg.all_edges() {
            let (st, sh) = (scc_of[t], scc_of[h]);
            if st != sh && !succs[st.index()].contains(&sh) {
                succs[st.index()].push(sh);
                preds[sh.index()].push(st);
            }
        }

        // Kahn topo order.
        let mut indeg: Vec<usize> = preds.iter().map(|p| p.len()).collect();
        // Tarjan emits SCCs in reverse topological order already, but we
        // recompute explicitly for clarity and verification.
        let mut ready: Vec<SccId> =
            (0..nscc).filter(|&i| indeg[i] == 0).map(|i| SccId(i as u32)).collect();
        // Deterministic order: prefer lowest first-member node.
        ready.sort_by_key(|s| std::cmp::Reverse(members[s.index()][0]));
        let mut topo = Vec::with_capacity(nscc);
        while let Some(s) = ready.pop() {
            topo.push(s);
            for &nx in &succs[s.index()] {
                indeg[nx.index()] -= 1;
                if indeg[nx.index()] == 0 {
                    ready.push(nx);
                    ready.sort_by_key(|s| std::cmp::Reverse(members[s.index()][0]));
                }
            }
        }
        debug_assert_eq!(topo.len(), nscc, "SCC condensation must be acyclic");

        SccDag { scc_of, members, succs, preds, topo }
    }

    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Pdg, PdgOptions};
    use twill_passes::callgraph::function_effects;

    fn dag_for(src: &str) -> (twill_ir::Module, SccDag, Pdg) {
        let m = twill_ir::parser::parse_module(src).unwrap();
        let fx = function_effects(&m);
        let pdg = Pdg::build(&m, &m.funcs[0], &fx, &PdgOptions::default());
        let dag = SccDag::new(&pdg);
        (m, dag, pdg)
    }

    #[test]
    fn straightline_is_all_singletons() {
        let (_, dag, pdg) = dag_for(
            "func @f(i32) -> i32 {\nbb0:\n  %0 = add i32 %a0, 1:i32\n  %1 = mul i32 %0, 2:i32\n  ret %1\n}\n",
        );
        assert_eq!(dag.len(), pdg.len());
        assert!(dag.members.iter().all(|m| m.len() == 1));
    }

    #[test]
    fn loop_counter_cycle_is_one_scc() {
        let (m, dag, pdg) = dag_for(
            r#"
func @f(i32) -> i32 {
bb0:
  br bb1
bb1:
  %i = phi i32 [bb0: 0:i32], [bb1: %ni]
  %ni = add i32 %i, 1:i32
  %c = cmp slt %ni, %a0
  condbr %c, bb1, bb2
bb2:
  ret %i
}
"#,
        );
        let f = &m.funcs[0];
        // phi and add form a data cycle; the condbr controls them (and
        // itself is data-dependent on them) so all are one SCC.
        let phi = pdg.node_of[f.block(twill_ir::BlockId(1)).insts[0].index()];
        let add = pdg.node_of[f.block(twill_ir::BlockId(1)).insts[1].index()];
        let cbr = pdg.node_of[f.block(twill_ir::BlockId(1)).insts[3].index()];
        assert_eq!(dag.scc_of[phi], dag.scc_of[add]);
        assert_eq!(dag.scc_of[phi], dag.scc_of[cbr]);
        let _ = dag.len();
    }

    #[test]
    fn topo_respects_edges() {
        let (_, dag, _) = dag_for(
            r#"
func @f(i32) -> i32 {
bb0:
  br bb1
bb1:
  %i = phi i32 [bb0: 0:i32], [bb1: %ni]
  %ni = add i32 %i, 1:i32
  %sq = mul i32 %i, %i
  out %sq
  %c = cmp slt %ni, %a0
  condbr %c, bb1, bb2
bb2:
  ret %i
}
"#,
        );
        let pos: std::collections::HashMap<SccId, usize> =
            dag.topo.iter().enumerate().map(|(i, s)| (*s, i)).collect();
        for (s, succs) in dag.succs.iter().enumerate() {
            for nx in succs {
                assert!(pos[&SccId(s as u32)] < pos[nx], "topo order violated");
            }
        }
        assert_eq!(dag.topo.len(), dag.len());
    }

    #[test]
    fn two_independent_loops_are_separate_sccs() {
        let (m, dag, pdg) = dag_for(
            r#"
func @f(i32) -> i32 {
bb0:
  br bb1
bb1:
  %i = phi i32 [bb0: 0:i32], [bb1: %ni]
  %s = phi i32 [bb0: 0:i32], [bb1: %ns]
  %ni = add i32 %i, 1:i32
  %ns = add i32 %s, 7:i32
  %c = cmp slt %ni, %a0
  condbr %c, bb1, bb2
bb2:
  ret %s
}
"#,
        );
        let f = &m.funcs[0];
        let i_phi = pdg.node_of[f.block(twill_ir::BlockId(1)).insts[0].index()];
        let s_phi = pdg.node_of[f.block(twill_ir::BlockId(1)).insts[1].index()];
        // The induction SCC {i, ni, c, condbr} is distinct from {s, ns}
        // even though the latter is control dependent on the former.
        assert_ne!(dag.scc_of[i_phi], dag.scc_of[s_phi]);
    }
}
