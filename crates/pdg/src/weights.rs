//! Node and SCC weights (thesis §5.2).
//!
//! Each instruction gets two weights:
//! * **software weight** — estimated Microblaze cycles,
//! * **hardware weight** — estimated cycle·area product when synthesized.
//!
//! Both are scaled by an execution-frequency estimate of `FREQ_BASE^depth`
//! for loop-nesting depth, the standard static profile stand-in.

use crate::graph::Pdg;
use crate::scc::SccDag;
use twill_ir::cost;
use twill_ir::Function;
use twill_passes::domtree::DomTree;
use twill_passes::loops::LoopInfo;

/// Assumed iterations per loop level for static frequency estimation.
pub const FREQ_BASE: u64 = 10;

#[derive(Debug, Clone)]
pub struct NodeWeights {
    /// Estimated dynamic software cycles per PDG node.
    pub sw: Vec<u64>,
    /// Estimated hardware cycle·area product per PDG node.
    pub hw: Vec<u64>,
    /// Loop depth per node (0 = not in a loop).
    pub depth: Vec<u32>,
}

impl NodeWeights {
    /// Thesis-faithful weights: flat static cycle / cycle·area estimates
    /// per instruction (§5.2 describes per-instruction estimates with no
    /// profile scaling). Cold setup code therefore carries most of the
    /// static weight and lands in the software partition, while compact
    /// hot kernels go to hardware — the behaviour behind the thesis'
    /// 75/25 observation.
    pub fn compute(f: &Function, pdg: &Pdg) -> NodeWeights {
        Self::compute_with(f, pdg, false)
    }

    /// `freq_scale = true` multiplies weights by FREQ_BASE^loop-depth
    /// (profile-estimate ablation).
    pub fn compute_with(f: &Function, pdg: &Pdg, freq_scale: bool) -> NodeWeights {
        let dt = DomTree::new(f);
        let li = LoopInfo::new(f, &dt);
        let mut sw = Vec::with_capacity(pdg.len());
        let mut hw = Vec::with_capacity(pdg.len());
        let mut depth = Vec::with_capacity(pdg.len());
        for (k, &iid) in pdg.nodes.iter().enumerate() {
            let b = pdg.block_of[k];
            let d = li.loop_of(b).map(|l| li.loops[l].depth).unwrap_or(0);
            let freq = if freq_scale { FREQ_BASE.saturating_pow(d.min(6)) } else { 1 };
            let op = &f.inst(iid).op;
            sw.push(cost::sw_cycles(op).saturating_mul(freq).max(1));
            hw.push(cost::hw_weight(op).saturating_mul(freq).max(1));
            depth.push(d);
        }
        NodeWeights { sw, hw, depth }
    }

    /// Aggregate software weight of an SCC.
    pub fn scc_sw(&self, dag: &SccDag, s: crate::scc::SccId) -> u64 {
        dag.members[s.index()].iter().map(|&n| self.sw[n]).sum()
    }

    /// Aggregate hardware weight of an SCC.
    pub fn scc_hw(&self, dag: &SccDag, s: crate::scc::SccId) -> u64 {
        dag.members[s.index()].iter().map(|&n| self.hw[n]).sum()
    }

    /// Total software weight of the whole function.
    pub fn total_sw(&self) -> u64 {
        self.sw.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Pdg, PdgOptions};
    use twill_passes::callgraph::function_effects;

    #[test]
    fn loop_nodes_weigh_more() {
        let src = r#"
func @f(i32) -> i32 {
bb0:
  %pre = add i32 %a0, 1:i32
  br bb1
bb1:
  %i = phi i32 [bb0: 0:i32], [bb1: %ni]
  %ni = add i32 %i, 1:i32
  %c = cmp slt %ni, %pre
  condbr %c, bb1, bb2
bb2:
  ret %i
}
"#;
        let m = twill_ir::parser::parse_module(src).unwrap();
        let fx = function_effects(&m);
        let pdg = Pdg::build(&m, &m.funcs[0], &fx, &PdgOptions::default());
        let w = NodeWeights::compute_with(&m.funcs[0], &pdg, true);
        let f = &m.funcs[0];
        let pre = pdg.node_of[f.block(twill_ir::BlockId(0)).insts[0].index()];
        let body_add = pdg.node_of[f.block(twill_ir::BlockId(1)).insts[1].index()];
        assert!(w.sw[body_add] > w.sw[pre]);
        // Thesis-default flat weights: equal ops weigh the same anywhere.
        let wf = NodeWeights::compute(&m.funcs[0], &pdg);
        assert_eq!(wf.sw[body_add], wf.sw[pre]);
        assert_eq!(w.depth[pre], 0);
        assert_eq!(w.depth[body_add], 1);
    }

    #[test]
    fn division_dominates_sw_weight() {
        let src = "func @f(i32) -> i32 {\nbb0:\n  %0 = sdiv i32 %a0, 3:i32\n  %1 = add i32 %0, 1:i32\n  ret %1\n}\n";
        let m = twill_ir::parser::parse_module(src).unwrap();
        let fx = function_effects(&m);
        let pdg = Pdg::build(&m, &m.funcs[0], &fx, &PdgOptions::default());
        let w = NodeWeights::compute(&m.funcs[0], &pdg);
        assert!(w.sw[0] >= 34);
        assert!(w.sw[0] > w.sw[1] * 10);
    }

    #[test]
    fn scc_aggregation_sums_members() {
        let src = r#"
func @f(i32) -> i32 {
bb0:
  br bb1
bb1:
  %i = phi i32 [bb0: 0:i32], [bb1: %ni]
  %ni = add i32 %i, 1:i32
  %c = cmp slt %ni, %a0
  condbr %c, bb1, bb2
bb2:
  ret %i
}
"#;
        let m = twill_ir::parser::parse_module(src).unwrap();
        let fx = function_effects(&m);
        let pdg = Pdg::build(&m, &m.funcs[0], &fx, &PdgOptions::default());
        let dag = crate::scc::SccDag::new(&pdg);
        let w = NodeWeights::compute(&m.funcs[0], &pdg);
        let total: u64 = (0..dag.len()).map(|s| w.scc_sw(&dag, crate::scc::SccId(s as u32))).sum();
        assert_eq!(total, w.total_sw());
    }
}
