//! PDG construction.

use twill_ir::{BlockId, Function, InstId, Intr, Module, Op, Value};
use twill_passes::alias::AliasInfo;
use twill_passes::callgraph::Effects;
use twill_passes::domtree::{DomTree, PostDomTree};
use twill_passes::loops::LoopInfo;

/// Kind of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Head uses the SSA value produced by tail.
    Data,
    /// Memory/IO ordering: tail must execute before head.
    Memory,
    /// Tail is a branch deciding whether head executes.
    Control,
    /// Thesis Fig 5.2 fake dependence tying a constant-PHI to its branch.
    PhiConst,
}

#[derive(Debug, Clone, Copy)]
pub struct PdgOptions {
    /// Insert the PHI-constant fake dependence pairs (thesis default: on).
    pub phi_const_pairs: bool,
}

impl Default for PdgOptions {
    fn default() -> Self {
        PdgOptions { phi_const_pairs: true }
    }
}

/// The PDG of one function. Nodes are the function's live instructions.
pub struct Pdg {
    /// Dense node list (live instructions in layout order).
    pub nodes: Vec<InstId>,
    /// node index per InstId arena slot (usize::MAX = not a node).
    pub node_of: Vec<usize>,
    /// Adjacency: `edges[a] = (b, kind)` meaning a must execute before b
    /// (tail = a, head = b).
    pub edges: Vec<Vec<(usize, DepKind)>>,
    /// Owning block per node.
    pub block_of: Vec<BlockId>,
}

impl Pdg {
    /// Build the PDG for `f` (a function of `m` with effect table `fx`).
    pub fn build(m: &Module, f: &Function, fx: &[Effects], opts: &PdgOptions) -> Pdg {
        let layout = f.inst_ids_in_layout();
        let nodes: Vec<InstId> = layout.iter().map(|(_, i)| *i).collect();
        let block_of: Vec<BlockId> = layout.iter().map(|(b, _)| *b).collect();
        let mut node_of = vec![usize::MAX; f.insts.len()];
        for (k, &iid) in nodes.iter().enumerate() {
            node_of[iid.index()] = k;
        }
        let mut pdg = Pdg { nodes, node_of, edges: Vec::new(), block_of };
        pdg.edges = vec![Vec::new(); pdg.nodes.len()];

        pdg.add_data_edges(f);
        pdg.add_memory_edges(m, f, fx);
        pdg.reduce_memory_edges();
        pdg.add_control_edges(f);
        if opts.phi_const_pairs {
            pdg.add_phi_const_pairs(f);
        }
        pdg.dedup();
        pdg
    }

    fn add_edge(&mut self, tail: usize, head: usize, kind: DepKind) {
        self.edges[tail].push((head, kind));
    }

    fn dedup(&mut self) {
        for e in &mut self.edges {
            e.sort_by_key(|(h, k)| (*h, *k as u8));
            e.dedup();
        }
    }

    /// SSA use-def edges (def → use).
    fn add_data_edges(&mut self, f: &Function) {
        for (head, &iid) in self.nodes.clone().iter().enumerate() {
            f.inst(iid).op.for_each_value(|v| {
                if let Value::Inst(def) = v {
                    let tail = self.node_of[def.index()];
                    if tail != usize::MAX {
                        self.add_edge(tail, head, DepKind::Data);
                    }
                }
            });
        }
    }

    /// Conservative memory/IO ordering edges.
    ///
    /// For each pair of "effectful" instructions that may conflict:
    /// * if the two share a loop, the dependence may be loop-carried in
    ///   either direction → add both edges (forcing one SCC);
    /// * otherwise direction follows dominance; incomparable blocks get
    ///   both edges.
    fn add_memory_edges(&mut self, m: &Module, f: &Function, fx: &[Effects]) {
        #[derive(Clone, Copy, PartialEq)]
        enum MemKind {
            Load(Value),
            Store(Value),
            CallRead,
            CallWrite,
            Io,
            RtComm,
        }
        let aa = AliasInfo::new(f);
        let dt = DomTree::new(f);
        let li = LoopInfo::new(f, &dt);
        // Block-to-block CFG reachability (small graphs; O(V·E) BFS).
        let nb = f.blocks.len();
        let mut reach: Vec<Vec<bool>> = vec![vec![false; nb]; nb];
        for (start, row) in reach.iter_mut().enumerate() {
            let mut stack = vec![twill_ir::BlockId::new(start)];
            while let Some(b) = stack.pop() {
                for s in f.successors(b) {
                    if !row[s.index()] {
                        row[s.index()] = true;
                        stack.push(s);
                    }
                }
            }
        }

        let mut ops: Vec<(usize, MemKind)> = Vec::new();
        for (k, &iid) in self.nodes.iter().enumerate() {
            let kind = match &f.inst(iid).op {
                Op::Load(a) => Some(MemKind::Load(*a)),
                Op::Store(_, a) => Some(MemKind::Store(*a)),
                Op::Call(c, _) => {
                    let e = fx[c.index()];
                    if e.has_io {
                        Some(MemKind::Io)
                    } else if e.writes_mem {
                        Some(MemKind::CallWrite)
                    } else if e.reads_mem {
                        Some(MemKind::CallRead)
                    } else {
                        None
                    }
                }
                // Unknown target: totally ordered like IO.
                Op::CallIndirect(..) => Some(MemKind::Io),
                Op::Intrin(i, _) => match i {
                    Intr::Out | Intr::In => Some(MemKind::Io),
                    _ => Some(MemKind::RtComm),
                },
                _ => None,
            };
            if let Some(kd) = kind {
                ops.push((k, kd));
            }
        }
        let _ = m;

        let conflicts = |a: MemKind, b: MemKind| -> bool {
            use MemKind::*;
            match (a, b) {
                // Two reads never conflict.
                (Load(_), Load(_))
                | (CallRead, CallRead)
                | (Load(_), CallRead)
                | (CallRead, Load(_)) => false,
                // IO is a totally ordered stream.
                (Io, Io) => true,
                // Runtime comm ops: ordered among themselves (queue ops on
                // the same queue must not reorder) — conservative: ordered.
                (RtComm, RtComm) => true,
                (RtComm, Io) | (Io, RtComm) => true,
                // IO doesn't touch program memory.
                (Io, _) | (_, Io) => false,
                (RtComm, _) | (_, RtComm) => false,
                (Load(x), Store(y)) | (Store(x), Load(y)) | (Store(x), Store(y)) => {
                    aa.may_alias(x, y)
                }
                (Load(x), CallWrite) | (CallWrite, Load(x)) => aa.may_conflict_with_calls(f, x),
                (Store(x), CallWrite) | (CallWrite, Store(x)) => aa.may_conflict_with_calls(f, x),
                (Store(x), CallRead) | (CallRead, Store(x)) => aa.may_conflict_with_calls(f, x),
                (CallWrite, CallWrite) | (CallWrite, CallRead) | (CallRead, CallWrite) => true,
            }
        };

        for i in 0..ops.len() {
            for j in (i + 1)..ops.len() {
                let (na, ka) = ops[i];
                let (nb, kb) = ops[j];
                if !conflicts(ka, kb) {
                    continue;
                }
                let ba = self.block_of[na];
                let bb = self.block_of[nb];
                let carried = li.lowest_common_loop(ba, bb).is_some();
                if carried {
                    // A loop may carry the dependence either way: tie the
                    // pair into one SCC (one thread).
                    self.add_edge(na, nb, DepKind::Memory);
                    self.add_edge(nb, na, DepKind::Memory);
                } else if ba == bb {
                    // Same block: program order (nodes are in layout order).
                    self.add_edge(na, nb, DepKind::Memory);
                } else if reach[ba.index()][bb.index()] {
                    // Every execution of `a` precedes any of `b` (without a
                    // common loop, reachability is one-directional).
                    self.add_edge(na, nb, DepKind::Memory);
                } else if reach[bb.index()][ba.index()] {
                    self.add_edge(nb, na, DepKind::Memory);
                } else {
                    // Mutually unreachable and loop-free: no single run
                    // executes both — no ordering constraint.
                }
            }
        }
    }

    /// Transitive reduction of the *acyclic* part of the memory-edge
    /// graph: ordering is transitive, so an edge a→c implied by a→b→c is
    /// redundant and would only inflate DSWP token-queue counts
    /// (quadratically for straight-line call chains). Edges participating
    /// in 2-cycles (loop-carried conservatism) are left untouched.
    fn reduce_memory_edges(&mut self) {
        use std::collections::HashSet;
        let n = self.len();
        // Collect memory edges; identify bidirectional pairs.
        let mut mem_edges: HashSet<(usize, usize)> = HashSet::new();
        for (t, es) in self.edges.iter().enumerate() {
            for &(h, k) in es {
                if k == DepKind::Memory {
                    mem_edges.insert((t, h));
                }
            }
        }
        let acyclic: Vec<(usize, usize)> =
            mem_edges.iter().copied().filter(|&(t, h)| !mem_edges.contains(&(h, t))).collect();
        if acyclic.is_empty() {
            return;
        }
        // Successor lists of the acyclic subgraph.
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(t, h) in &acyclic {
            succ[t].push(h);
        }
        // An edge (t,h) is redundant if h is reachable from t via a path
        // of ≥2 acyclic memory edges.
        let mut drop: HashSet<(usize, usize)> = HashSet::new();
        for &(t, h) in &acyclic {
            // BFS from t's other successors.
            let mut seen = vec![false; n];
            let mut stack: Vec<usize> = succ[t].iter().copied().filter(|&x| x != h).collect();
            let mut found = false;
            while let Some(x) = stack.pop() {
                if x == h {
                    found = true;
                    break;
                }
                if seen[x] {
                    continue;
                }
                seen[x] = true;
                for &nx in &succ[x] {
                    if !seen[nx] {
                        stack.push(nx);
                    }
                }
            }
            if found {
                drop.insert((t, h));
            }
        }
        if drop.is_empty() {
            return;
        }
        for (t, es) in self.edges.iter_mut().enumerate() {
            es.retain(|&(h, k)| k != DepKind::Memory || !drop.contains(&(t, h)));
        }
    }

    /// Classic control dependence: block B is control dependent on the
    /// terminator of A iff A ∈ PDF(B). Every instruction of B gets an edge
    /// from A's terminator.
    fn add_control_edges(&mut self, f: &Function) {
        let pdt = PostDomTree::new(f);
        for b in f.block_ids() {
            for &ctrl_block in &pdt.frontier[b.index()] {
                let Some(term) = f.block(ctrl_block).terminator() else { continue };
                let tail = self.node_of[term.index()];
                if tail == usize::MAX {
                    continue;
                }
                for &iid in &f.block(b).insts {
                    let head = self.node_of[iid.index()];
                    if head != usize::MAX && head != tail {
                        self.add_edge(tail, head, DepKind::Control);
                    }
                }
            }
        }
    }

    /// Thesis Fig 5.2: a PHI with a constant incoming value from block P is
    /// tied (both directions) to the *decision-carrying* branch of P,
    /// forcing them into the same partition. Only conditional branches are
    /// paired (Fig 5.2's dotted edges target the conditional branches whose
    /// outcome selects the constant); tying to unconditional preheader
    /// branches would spuriously merge every loop phi into one SCC.
    fn add_phi_const_pairs(&mut self, f: &Function) {
        let pdt = PostDomTree::new(f);
        for (head, &iid) in self.nodes.clone().iter().enumerate() {
            if let Op::Phi(incoming) = &f.inst(iid).op {
                for (pred, v) in incoming {
                    if !matches!(v, Value::Imm(..)) {
                        continue;
                    }
                    // The decision-carrying branch: the pred's own
                    // terminator when conditional, else the branches the
                    // pred is control-dependent on (its PDF).
                    let mut branches: Vec<InstId> = Vec::new();
                    if let Some(term) = f.block(*pred).terminator() {
                        if matches!(f.inst(term).op, Op::CondBr(..) | Op::Switch(..)) {
                            branches.push(term);
                        } else {
                            for &cb in &pdt.frontier[pred.index()] {
                                if let Some(t) = f.block(cb).terminator() {
                                    branches.push(t);
                                }
                            }
                        }
                    }
                    for term in branches {
                        let t = self.node_of[term.index()];
                        if t != usize::MAX && t != head {
                            self.add_edge(t, head, DepKind::PhiConst);
                            self.add_edge(head, t, DepKind::PhiConst);
                        }
                    }
                }
            }
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All edges as (tail, head, kind) triples.
    pub fn all_edges(&self) -> Vec<(usize, usize, DepKind)> {
        let mut out = Vec::new();
        for (t, es) in self.edges.iter().enumerate() {
            for (h, k) in es {
                out.push((t, *h, *k));
            }
        }
        out
    }

    /// Successor node indices irrespective of kind.
    pub fn succs(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges[n].iter().map(|(h, _)| *h)
    }
}

/// Convenience: reverse adjacency.
pub fn predecessors(pdg: &Pdg) -> Vec<Vec<usize>> {
    let mut preds = vec![Vec::new(); pdg.len()];
    for (t, h, _) in pdg.all_edges() {
        if !preds[h].contains(&t) {
            preds[h].push(t);
        }
    }
    preds
}

/// Map from node index to a short debug string.
pub fn describe_node(m: &Module, f: &Function, pdg: &Pdg, n: usize) -> String {
    let iid = pdg.nodes[n];
    let inst = f.inst(iid);
    format!(
        "{}[{}]: {}",
        pdg.block_of[n],
        iid,
        twill_ir::printer::print_inst(m, &inst.op, inst.ty, iid.0)
    )
}

#[derive(Debug, Default)]
pub struct PdgStats {
    pub nodes: usize,
    pub data_edges: usize,
    pub memory_edges: usize,
    pub control_edges: usize,
    pub phi_const_edges: usize,
}

pub fn stats(pdg: &Pdg) -> PdgStats {
    let mut s = PdgStats { nodes: pdg.len(), ..Default::default() };
    for (_, _, k) in pdg.all_edges() {
        match k {
            DepKind::Data => s.data_edges += 1,
            DepKind::Memory => s.memory_edges += 1,
            DepKind::Control => s.control_edges += 1,
            DepKind::PhiConst => s.phi_const_edges += 1,
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_passes::callgraph::function_effects;

    fn build(src: &str) -> (Module, Pdg) {
        let m = twill_ir::parser::parse_module(src).unwrap();
        let fx = function_effects(&m);
        let f = &m.funcs[m.funcs.len() - 1];
        let pdg = Pdg::build(&m, f, &fx, &Default::default());
        let m2 = m.clone();
        (m2, pdg)
    }

    fn has_edge(pdg: &Pdg, f: &Function, tail: InstId, head: InstId, kind: DepKind) -> bool {
        let t = pdg.node_of[tail.index()];
        let h = pdg.node_of[head.index()];
        let _ = f;
        pdg.edges[t].iter().any(|(x, k)| *x == h && *k == kind)
    }

    #[test]
    fn data_edges_follow_use_def() {
        let (m, pdg) = build(
            "func @f(i32) -> i32 {\nbb0:\n  %0 = add i32 %a0, 1:i32\n  %1 = mul i32 %0, %0\n  ret %1\n}\n",
        );
        let f = &m.funcs[0];
        assert!(has_edge(&pdg, f, InstId(0), InstId(1), DepKind::Data));
        assert!(has_edge(&pdg, f, InstId(1), InstId(2), DepKind::Data));
        assert!(!has_edge(&pdg, f, InstId(1), InstId(0), DepKind::Data));
    }

    #[test]
    fn memory_edges_in_straightline() {
        let (m, pdg) = build(
            "global @g size=4 []\nfunc @f() -> i32 {\nbb0:\n  %0 = gaddr @g\n  store i32 1:i32, %0\n  %1 = load i32 %0\n  ret %1\n}\n",
        );
        let f = &m.funcs[0];
        // store (inst 1) before load (inst 2).
        assert!(has_edge(&pdg, f, InstId(1), InstId(2), DepKind::Memory));
        assert!(!has_edge(&pdg, f, InstId(2), InstId(1), DepKind::Memory));
    }

    #[test]
    fn disjoint_objects_no_memory_edge() {
        let (m, pdg) = build(
            "global @a size=4 []\nglobal @b size=4 []\nfunc @f() -> void {\nbb0:\n  %0 = gaddr @a\n  %1 = gaddr @b\n  store i32 1:i32, %0\n  store i32 2:i32, %1\n  ret\n}\n",
        );
        let f = &m.funcs[0];
        assert!(!has_edge(&pdg, f, InstId(2), InstId(3), DepKind::Memory));
        assert!(!has_edge(&pdg, f, InstId(3), InstId(2), DepKind::Memory));
    }

    #[test]
    fn loop_carried_memory_is_bidirectional() {
        let (m, pdg) = build(
            r#"
global @g size=4 []
func @f(i32) -> void {
bb0:
  %p = gaddr @g
  br bb1
bb1:
  %i = phi i32 [bb0: 0:i32], [bb1: %ni]
  %v = load i32 %p
  %nv = add i32 %v, 1:i32
  store i32 %nv, %p
  %ni = add i32 %i, 1:i32
  %c = cmp slt %ni, %a0
  condbr %c, bb1, bb2
bb2:
  ret
}
"#,
        );
        let f = &m.funcs[0];
        let load = f.block(BlockId(1)).insts[1];
        let store = f.block(BlockId(1)).insts[3];
        assert!(has_edge(&pdg, f, load, store, DepKind::Memory));
        assert!(has_edge(&pdg, f, store, load, DepKind::Memory));
    }

    #[test]
    fn io_stream_is_ordered() {
        let (m, pdg) = build("func @f() -> void {\nbb0:\n  out 1:i32\n  out 2:i32\n  ret\n}\n");
        let f = &m.funcs[0];
        assert!(has_edge(&pdg, f, InstId(0), InstId(1), DepKind::Memory));
    }

    #[test]
    fn control_edges_from_branch() {
        let (m, pdg) = build(
            r#"
func @f(i1) -> i32 {
bb0:
  condbr %a0, bb1, bb2
bb1:
  %x = add i32 1:i32, 2:i32
  br bb3
bb2:
  br bb3
bb3:
  %r = phi i32 [bb1: %x], [bb2: 0:i32]
  ret %r
}
"#,
        );
        let f = &m.funcs[0];
        let condbr = f.block(BlockId(0)).insts[0];
        let add = f.block(BlockId(1)).insts[0];
        assert!(has_edge(&pdg, f, condbr, add, DepKind::Control));
        // bb3 post-dominates bb0: no control dep on its instructions.
        let ret = f.block(BlockId(3)).insts[1];
        assert!(!has_edge(&pdg, f, condbr, ret, DepKind::Control));
    }

    #[test]
    fn phi_const_pair_forces_cycle() {
        let (m, pdg) = build(
            r#"
func @f(i1) -> i32 {
bb0:
  condbr %a0, bb1, bb2
bb1:
  br bb3
bb2:
  br bb3
bb3:
  %r = phi i32 [bb1: 1:i32], [bb2: 2:i32]
  ret %r
}
"#,
        );
        let f = &m.funcs[0];
        let phi = f.block(BlockId(3)).insts[0];
        // bb1/bb2 end in unconditional branches; the decision carrier is
        // the condbr in bb0 (their control dependence), as in Fig 5.2.
        let cbr = f.block(BlockId(0)).insts[0];
        assert!(has_edge(&pdg, f, cbr, phi, DepKind::PhiConst));
        assert!(has_edge(&pdg, f, phi, cbr, DepKind::PhiConst));
    }

    #[test]
    fn phi_const_pairs_can_be_disabled() {
        let m = twill_ir::parser::parse_module(
            r#"
func @f(i1) -> i32 {
bb0:
  condbr %a0, bb1, bb2
bb1:
  br bb3
bb2:
  br bb3
bb3:
  %r = phi i32 [bb1: 1:i32], [bb2: 2:i32]
  ret %r
}
"#,
        )
        .unwrap();
        let fx = function_effects(&m);
        let pdg = Pdg::build(&m, &m.funcs[0], &fx, &PdgOptions { phi_const_pairs: false });
        assert_eq!(stats(&pdg).phi_const_edges, 0);
    }

    #[test]
    fn loop_body_control_dep_on_loop_branch() {
        let (m, pdg) = build(
            r#"
func @f(i32) -> i32 {
bb0:
  br bb1
bb1:
  %i = phi i32 [bb0: 0:i32], [bb2: %ni]
  %c = cmp slt %i, %a0
  condbr %c, bb2, bb3
bb2:
  %ni = add i32 %i, 1:i32
  br bb1
bb3:
  ret %i
}
"#,
        );
        let f = &m.funcs[0];
        let condbr = f.block(BlockId(1)).insts[2];
        let add = f.block(BlockId(2)).insts[0];
        assert!(has_edge(&pdg, f, condbr, add, DepKind::Control));
        // Header is control dependent on its own branch (self loop region).
        let phi = f.block(BlockId(1)).insts[0];
        assert!(has_edge(&pdg, f, condbr, phi, DepKind::Control));
    }

    #[test]
    fn stats_count_kinds() {
        let (_, pdg) =
            build("func @f() -> i32 {\nbb0:\n  %0 = add i32 1:i32, 2:i32\n  ret %0\n}\n");
        let s = stats(&pdg);
        assert_eq!(s.nodes, 2);
        assert_eq!(s.data_edges, 1);
        assert_eq!(s.control_edges, 0);
    }
}
