//! # twill-pdg
//!
//! Program Dependence Graph construction for the DSWP thread extractor,
//! following thesis §3.1.1/§5.2:
//!
//! * **data dependences** — SSA use-def edges,
//! * **memory dependences** — conservative edges between may-conflicting
//!   loads/stores/calls/IO, bidirectional when a loop may carry the
//!   dependence (forcing the pair into one SCC → one thread),
//! * **control dependences** — Ferrante-style via post-dominance frontiers,
//! * **PHI-constant fake dependences** (thesis Fig 5.2) — a PHI node with a
//!   constant incoming value is tied to the branches of the associated
//!   predecessor blocks with a *pair* of edges so they land in one SCC.
//!
//! Each node carries the thesis' two weights: estimated software cycles and
//! the hardware cycle·area product, scaled by loop-depth-based execution
//! frequency.

pub mod graph;
pub mod scc;
pub mod weights;

pub use graph::{DepKind, Pdg, PdgOptions};
pub use scc::{SccDag, SccId};
pub use weights::NodeWeights;
