//! # chstone
//!
//! The eight CHStone-style benchmark programs the thesis evaluates Twill
//! on (Table 6.1), rewritten in the project's mini-C dialect, plus
//! deterministic workload generators and golden-output helpers.
//!
//! The thesis excludes the four 64-bit CHStone programs (DFAdd/DFDiv/
//! DFMul/DFSine); so do we. Per-benchmark substitutions relative to the
//! original CHStone sources are documented at the top of each `.c` file
//! and in `DESIGN.md`.

use twill_ir::Module;

/// A benchmark program.
#[derive(Clone, Copy, Debug)]
pub struct Benchmark {
    pub name: &'static str,
    pub source: &'static str,
    /// DSWP partition count used for the headline experiments:
    /// Table 6.1's hardware-thread count plus the software master.
    pub partitions: usize,
    /// Default workload scale for experiments.
    pub default_scale: u32,
}

pub const MIPS: Benchmark = Benchmark {
    name: "mips",
    source: include_str!("c/mips.c"),
    partitions: 2, // 1 HW thread (Table 6.1)
    default_scale: 1,
};
pub const ADPCM: Benchmark = Benchmark {
    name: "adpcm",
    source: include_str!("c/adpcm.c"),
    partitions: 6, // 5 HW threads
    default_scale: 2,
};
pub const AES: Benchmark = Benchmark {
    name: "aes",
    source: include_str!("c/aes.c"),
    partitions: 4, // 3 HW threads
    default_scale: 8,
};
pub const BLOWFISH: Benchmark = Benchmark {
    name: "blowfish",
    source: include_str!("c/blowfish.c"),
    partitions: 3, // 2 HW threads
    default_scale: 4,
};
pub const GSM: Benchmark = Benchmark {
    name: "gsm",
    source: include_str!("c/gsm.c"),
    partitions: 4, // 3 HW threads
    default_scale: 3,
};
pub const JPEG: Benchmark = Benchmark {
    name: "jpeg",
    source: include_str!("c/jpeg.c"),
    partitions: 7, // 6 HW threads
    default_scale: 6,
};
pub const MOTION: Benchmark = Benchmark {
    name: "motion",
    source: include_str!("c/motion.c"),
    partitions: 5, // 4 HW threads (thesis: MPEG-2)
    default_scale: 2,
};
pub const SHA: Benchmark = Benchmark {
    name: "sha",
    source: include_str!("c/sha.c"),
    partitions: 2, // 1 HW thread
    default_scale: 6,
};

/// All eight benchmarks in the thesis' table order.
pub fn all() -> Vec<Benchmark> {
    vec![MIPS, ADPCM, AES, BLOWFISH, GSM, JPEG, MOTION, SHA]
}

pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

/// Deterministic pseudo-random stream for workload generation.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493))
    }
    fn next(&mut self) -> u32 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 33) as u32
    }
    fn next_i32(&mut self) -> i32 {
        self.next() as i32
    }
}

/// The input stream for a benchmark at the given workload scale.
pub fn input_for(name: &str, scale: u32) -> Vec<i32> {
    let scale = scale.max(1);
    let mut r = Lcg::new(0xC0FFEE ^ name.len() as u64);
    let mut v = Vec::new();
    match name {
        "sha" => {
            let nblocks = 2 * scale as i32;
            v.push(nblocks);
            for _ in 0..nblocks * 16 {
                v.push(r.next_i32());
            }
        }
        "aes" => {
            for _ in 0..4 {
                v.push(r.next_i32()); // key
            }
            let nblocks = 2 * scale as i32;
            v.push(nblocks);
            for _ in 0..nblocks * 4 {
                v.push(r.next_i32());
            }
        }
        "adpcm" => {
            let n = 120 * scale as i32;
            v.push(n);
            // Smooth-ish waveform: random walk clamped to 16 bits.
            let mut s: i32 = 0;
            for _ in 0..n {
                s += (r.next() % 2048) as i32 - 1024;
                s = s.clamp(-30000, 30000);
                v.push(s);
            }
        }
        "gsm" => {
            let nframes = scale as i32;
            v.push(nframes);
            for _ in 0..nframes * 40 {
                v.push((r.next() & 0xFF) as i32);
            }
        }
        "blowfish" => {
            for _ in 0..4 {
                v.push(r.next_i32());
            }
            let nblocks = 8 * scale as i32;
            v.push(nblocks);
            for _ in 0..nblocks * 2 {
                v.push(r.next_i32());
            }
        }
        "mips" => {
            let n = 16i32;
            v.push(n);
            for _ in 0..n {
                v.push((r.next() % 1000) as i32);
            }
        }
        "jpeg" => {
            let nblocks = scale as i32;
            v.push(nblocks);
            for _ in 0..nblocks {
                for i in 0..64 {
                    // JPEG-like: large DC, sparse decaying AC.
                    if i == 0 {
                        v.push((r.next() % 128) as i32 - 64);
                    } else if r.next().is_multiple_of(4) && i < 24 {
                        v.push((r.next() % 31) as i32 - 15);
                    } else {
                        v.push(0);
                    }
                }
            }
        }
        "motion" => {
            v.push((r.next() | 1) as i32); // seed
            v.push((2 * scale as i32).min(9)); // macroblocks
        }
        other => panic!("unknown benchmark '{other}'"),
    }
    v
}

/// Compile a benchmark and run the thesis' preparation pipeline.
pub fn compile_and_prepare(b: &Benchmark) -> Module {
    let mut m =
        twill_frontend::compile(b.name, b.source).unwrap_or_else(|e| panic!("{}: {e}", b.name));
    // HLS flows inline aggressively (LegUp flattens everything it
    // synthesizes); a higher threshold than the generic default exposes
    // the per-round pipeline structure to DSWP.
    let opts = twill_passes::PipelineOptions {
        verify_between: false,
        inline: twill_passes::inline::InlineOptions {
            small_threshold: 400,
            single_site_threshold: 600,
            max_inlines: 1000,
            ..Default::default()
        },
    };
    twill_passes::run_standard_pipeline(&mut m, &opts);
    m
}

/// Reference (single-threaded) execution: (output, interpreter steps).
pub fn reference_run(b: &Benchmark, scale: u32) -> (Vec<i32>, u64) {
    let m = compile_and_prepare(b);
    let (out, _, steps) = twill_ir::interp::run_main(&m, input_for(b.name, scale), 2_000_000_000)
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
    (out, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_compile() {
        for b in all() {
            let m = twill_frontend::compile(b.name, b.source)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(m.find_func("main").is_some(), "{}", b.name);
        }
    }

    #[test]
    fn all_benchmarks_run_and_are_deterministic() {
        for b in all() {
            let (out1, steps) = reference_run(&b, 1);
            let (out2, _) = reference_run(&b, 1);
            assert_eq!(out1, out2, "{} nondeterministic", b.name);
            assert!(!out1.is_empty(), "{} produced no output", b.name);
            assert!(steps > 100, "{} trivially small ({steps} steps)", b.name);
        }
    }

    #[test]
    fn pipeline_preserves_benchmark_semantics() {
        for b in all() {
            let mut m = twill_frontend::compile(b.name, b.source).unwrap();
            let input = input_for(b.name, 1);
            let (before, _, _) =
                twill_ir::interp::run_main(&m, input.clone(), 2_000_000_000).unwrap();
            twill_passes::run_standard_pipeline(&mut m, &Default::default());
            twill_passes::utils::assert_valid_ssa(&m);
            let (after, _, _) = twill_ir::interp::run_main(&m, input, 2_000_000_000).unwrap();
            assert_eq!(before, after, "{}: pipeline changed behaviour", b.name);
        }
    }

    #[test]
    fn mips_sorts_correctly() {
        let (out, _) = reference_run(&MIPS, 1);
        // First 16 outputs are the sorted array.
        let sorted = &out[..16];
        for w in sorted.windows(2) {
            assert!(w[0] <= w[1], "mips output not sorted: {sorted:?}");
        }
        // Instruction count follows.
        assert!(out[16] > 100);
    }

    #[test]
    fn sha_known_shape() {
        let (out, _) = reference_run(&SHA, 1);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn adpcm_reconstruction_reasonable() {
        let (out, _) = reference_run(&ADPCM, 1);
        // total_err (out[1]) should be positive but bounded relative to
        // the signal energy.
        assert!(out[1] > 0);
        assert!(out[1] < 120 * 32768);
    }

    #[test]
    fn motion_finds_the_planted_shift() {
        let (out, _) = reference_run(&MOTION, 1);
        // Current frame = reference shifted by (3,2): best vector is (3,2).
        let dx = out[1];
        let dy = out[2];
        assert_eq!((dx, dy), (3, 2), "full output: {out:?}");
    }

    #[test]
    fn workloads_scale() {
        for b in all() {
            let i1 = input_for(b.name, 1);
            let i3 = input_for(b.name, 3);
            assert!(i3.len() >= i1.len(), "{}", b.name);
        }
    }

    #[test]
    fn jpeg_pixels_in_range() {
        let (out, _) = reference_run(&JPEG, 1);
        for &px in &out[1..] {
            assert!((0..=255).contains(&px), "pixel {px} out of range");
        }
    }
}
