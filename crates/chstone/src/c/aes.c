/* AES-128 ECB encryption, word-oriented (CHStone "aes").
 *
 * The cipher state is four column words; each round is expressed as four
 * calls to `aes_col` (SubBytes + ShiftRows byte selection + MixColumns +
 * AddRoundKey for one output column) and the ten rounds are written out
 * explicitly. After inlining, the block loop becomes a forward dataflow
 * chain of forty column computations — the long-running pipeline DSWP
 * extracts (documented substitution: CHStone's byte-array formulation
 * communicates rounds through an in-memory state array, which pessimistic
 * memory dependence analysis would serialize).
 *
 * The S-box is the standard constant table (a const global stays local
 * to each hardware thread as a ROM — thesis §5.2's constant-global
 * exemption).
 *
 * Input stream: 4 key words, nblocks, then nblocks*4 data words.
 * Output: rolling ciphertext checksum, then the last ciphertext block.
 */

const unsigned char sbox[256] = {
  0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B,
  0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
  0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26,
  0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
  0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2,
  0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
  0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED,
  0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
  0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F,
  0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
  0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
  0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
  0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
  0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
  0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D,
  0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
  0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F,
  0x4B, 0xBD, 0x8B, 0x8A, 0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
  0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11,
  0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
  0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F,
  0xB0, 0x54, 0xBB, 0x16
};
unsigned int rk[44]; /* round keys, word-oriented */

unsigned char xtime(unsigned char x) {
  unsigned char h = x & 0x80;
  unsigned char r = (unsigned char)(x << 1);
  if (h) r = r ^ 0x1B;
  return r;
}

unsigned int subword(unsigned int w) {
  return ((unsigned int) sbox[(w >> 24) & 0xFF] << 24) |
         ((unsigned int) sbox[(w >> 16) & 0xFF] << 16) |
         ((unsigned int) sbox[(w >> 8) & 0xFF] << 8) |
         (unsigned int) sbox[w & 0xFF];
}

void expand_key() {
  unsigned int rcon = 0x01000000;
  for (int i = 4; i < 44; i++) {
    unsigned int t = rk[i - 1];
    if (i % 4 == 0) {
      t = subword((t << 8) | (t >> 24)) ^ rcon;
      rcon = ((unsigned int) xtime((unsigned char)(rcon >> 24))) << 24;
    }
    rk[i] = rk[i - 4] ^ t;
  }
}

/* One output column: inputs are the four state columns arranged so that
 * ShiftRows is the byte selection (row r comes from column (j+r) mod 4),
 * followed by SubBytes, MixColumns and the round-key word. */
unsigned int aes_col(unsigned int w0, unsigned int w1, unsigned int w2,
                     unsigned int w3, unsigned int rkw) {
  unsigned char s0 = sbox[(w0 >> 24) & 0xFF];
  unsigned char s1 = sbox[(w1 >> 16) & 0xFF];
  unsigned char s2 = sbox[(w2 >> 8) & 0xFF];
  unsigned char s3 = sbox[w3 & 0xFF];
  unsigned char t0 = (unsigned char)(xtime(s0) ^ (xtime(s1) ^ s1) ^ s2 ^ s3);
  unsigned char t1 = (unsigned char)(s0 ^ xtime(s1) ^ (xtime(s2) ^ s2) ^ s3);
  unsigned char t2 = (unsigned char)(s0 ^ s1 ^ xtime(s2) ^ (xtime(s3) ^ s3));
  unsigned char t3 = (unsigned char)((xtime(s0) ^ s0) ^ s1 ^ s2 ^ xtime(s3));
  return (((unsigned int) t0 << 24) | ((unsigned int) t1 << 16) |
          ((unsigned int) t2 << 8) | (unsigned int) t3) ^ rkw;
}

/* Final round: no MixColumns. */
unsigned int aes_col_final(unsigned int w0, unsigned int w1, unsigned int w2,
                           unsigned int w3, unsigned int rkw) {
  unsigned char s0 = sbox[(w0 >> 24) & 0xFF];
  unsigned char s1 = sbox[(w1 >> 16) & 0xFF];
  unsigned char s2 = sbox[(w2 >> 8) & 0xFF];
  unsigned char s3 = sbox[w3 & 0xFF];
  return (((unsigned int) s0 << 24) | ((unsigned int) s1 << 16) |
          ((unsigned int) s2 << 8) | (unsigned int) s3) ^ rkw;
}

int main() {
  for (int i = 0; i < 4; i++) {
    rk[i] = (unsigned int) in();
  }
  expand_key();

  int nblocks = in();
  unsigned int checksum = 0;
  unsigned int o0 = 0, o1 = 0, o2 = 0, o3 = 0;
  for (int b = 0; b < nblocks; b++) {
    unsigned int c0 = (unsigned int) in() ^ rk[0];
    unsigned int c1 = (unsigned int) in() ^ rk[1];
    unsigned int c2 = (unsigned int) in() ^ rk[2];
    unsigned int c3 = (unsigned int) in() ^ rk[3];
    unsigned int n0, n1, n2, n3;
    /* rounds 1..9, written out so each is a pipeline stage */
    n0 = aes_col(c0, c1, c2, c3, rk[4]);  n1 = aes_col(c1, c2, c3, c0, rk[5]);
    n2 = aes_col(c2, c3, c0, c1, rk[6]);  n3 = aes_col(c3, c0, c1, c2, rk[7]);
    c0 = aes_col(n0, n1, n2, n3, rk[8]);  c1 = aes_col(n1, n2, n3, n0, rk[9]);
    c2 = aes_col(n2, n3, n0, n1, rk[10]); c3 = aes_col(n3, n0, n1, n2, rk[11]);
    n0 = aes_col(c0, c1, c2, c3, rk[12]); n1 = aes_col(c1, c2, c3, c0, rk[13]);
    n2 = aes_col(c2, c3, c0, c1, rk[14]); n3 = aes_col(c3, c0, c1, c2, rk[15]);
    c0 = aes_col(n0, n1, n2, n3, rk[16]); c1 = aes_col(n1, n2, n3, n0, rk[17]);
    c2 = aes_col(n2, n3, n0, n1, rk[18]); c3 = aes_col(n3, n0, n1, n2, rk[19]);
    n0 = aes_col(c0, c1, c2, c3, rk[20]); n1 = aes_col(c1, c2, c3, c0, rk[21]);
    n2 = aes_col(c2, c3, c0, c1, rk[22]); n3 = aes_col(c3, c0, c1, c2, rk[23]);
    c0 = aes_col(n0, n1, n2, n3, rk[24]); c1 = aes_col(n1, n2, n3, n0, rk[25]);
    c2 = aes_col(n2, n3, n0, n1, rk[26]); c3 = aes_col(n3, n0, n1, n2, rk[27]);
    n0 = aes_col(c0, c1, c2, c3, rk[28]); n1 = aes_col(c1, c2, c3, c0, rk[29]);
    n2 = aes_col(c2, c3, c0, c1, rk[30]); n3 = aes_col(c3, c0, c1, c2, rk[31]);
    c0 = aes_col(n0, n1, n2, n3, rk[32]); c1 = aes_col(n1, n2, n3, n0, rk[33]);
    c2 = aes_col(n2, n3, n0, n1, rk[34]); c3 = aes_col(n3, n0, n1, n2, rk[35]);
    n0 = aes_col(c0, c1, c2, c3, rk[36]); n1 = aes_col(c1, c2, c3, c0, rk[37]);
    n2 = aes_col(c2, c3, c0, c1, rk[38]); n3 = aes_col(c3, c0, c1, c2, rk[39]);
    /* final round */
    o0 = aes_col_final(n0, n1, n2, n3, rk[40]);
    o1 = aes_col_final(n1, n2, n3, n0, rk[41]);
    o2 = aes_col_final(n2, n3, n0, n1, rk[42]);
    o3 = aes_col_final(n3, n0, n1, n2, rk[43]);
    checksum = checksum * 31 + o0;
    checksum = checksum * 31 + o1;
    checksum = checksum * 31 + o2;
    checksum = checksum * 31 + o3;
  }
  out((int) checksum);
  out((int) o0);
  out((int) o1);
  out((int) o2);
  out((int) o3);
  return 0;
}
