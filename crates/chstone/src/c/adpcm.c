/* ADPCM encode + decode round trip (CHStone "adpcm").
 *
 * CHStone's adpcm is a CCITT G.722-style codec; this reproduction keeps
 * the same pipeline shape — adaptive-quantizer encoder feeding a decoder
 * feeding error/checksum accumulation — with a compact IMA-style step
 * table (documented substitution). Codec state lives in locals so the
 * encoder, decoder and accumulator form the decoupled recurrences DSWP
 * pipelines (stage 1 → stage 2 → stage 3).
 *
 * Input stream: nsamples, then nsamples PCM samples.
 * Output: decoded-signal checksum, total absolute reconstruction error,
 * and the final predictor state of both codecs.
 */

const int steptab[16] = {7, 9, 11, 13, 16, 19, 23, 28, 34, 41, 49, 60, 73, 88, 107, 130};
const int indextab[8] = {-1, -1, -1, -1, 2, 4, 6, 8};

int main() {
  int n = in();
  int enc_pred = 0, enc_index = 0;
  int dec_pred = 0, dec_index = 0;
  unsigned int checksum = 0;
  int total_err = 0;
  for (int i = 0; i < n; i++) {
    int sample = in();

    /* ---- encoder stage ---- */
    int step = steptab[enc_index];
    int diff = sample - enc_pred;
    int code = 0;
    if (diff < 0) {
      code = 8;
      diff = -diff;
    }
    if (diff >= step) {
      code |= 4;
      diff -= step;
    }
    if (diff >= (step >> 1)) {
      code |= 2;
      diff -= step >> 1;
    }
    if (diff >= (step >> 2)) {
      code |= 1;
    }
    int e_delta = (step >> 3) + ((code & 1) ? (step >> 2) : 0) +
                  ((code & 2) ? (step >> 1) : 0) + ((code & 4) ? step : 0);
    if (code & 8) {
      enc_pred -= e_delta;
    } else {
      enc_pred += e_delta;
    }
    if (enc_pred > 32767) enc_pred = 32767;
    if (enc_pred < -32768) enc_pred = -32768;
    int e_ix = enc_index + indextab[code & 7];
    if (e_ix < 0) e_ix = 0;
    if (e_ix > 15) e_ix = 15;
    enc_index = e_ix;

    /* ---- decoder stage (consumes only `code`) ---- */
    int dstep = steptab[dec_index];
    int d_delta = (dstep >> 3) + ((code & 1) ? (dstep >> 2) : 0) +
                  ((code & 2) ? (dstep >> 1) : 0) + ((code & 4) ? dstep : 0);
    if (code & 8) {
      dec_pred -= d_delta;
    } else {
      dec_pred += d_delta;
    }
    if (dec_pred > 32767) dec_pred = 32767;
    if (dec_pred < -32768) dec_pred = -32768;
    int d_ix = dec_index + indextab[code & 7];
    if (d_ix < 0) d_ix = 0;
    if (d_ix > 15) d_ix = 15;
    dec_index = d_ix;
    int rec = dec_pred;

    /* ---- accumulation stage (consumes sample + rec) ---- */
    int err = sample - rec;
    if (err < 0) err = -err;
    total_err += err;
    checksum = checksum * 131 + (unsigned int) (rec & 0xFFFF);
  }
  out((int) checksum);
  out(total_err);
  out(enc_pred);
  out(enc_index);
  out(dec_pred);
  out(dec_index);
  return 0;
}
