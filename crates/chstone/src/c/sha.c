/* SHA-1 over whole 512-bit blocks (CHStone "sha").
 *
 * Input stream: nblocks, then nblocks*16 message words.
 * Output: the five hash words.
 * Padding is omitted: the driver supplies whole blocks (documented
 * substitution — CHStone's sha also hashes a fixed in-memory buffer).
 */

unsigned int w[80];

unsigned int rotl(unsigned int x, int n) {
  return (x << n) | (x >> (32 - n));
}

int main() {
  unsigned int h0 = 0x67452301;
  unsigned int h1 = 0xEFCDAB89;
  unsigned int h2 = 0x98BADCFE;
  unsigned int h3 = 0x10325476;
  unsigned int h4 = 0xC3D2E1F0;

  int nblocks = in();
  for (int blk = 0; blk < nblocks; blk++) {
    for (int t = 0; t < 16; t++) {
      w[t] = (unsigned int) in();
    }
    for (int t = 16; t < 80; t++) {
      w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
    }
    unsigned int a = h0, b = h1, c = h2, d = h3, e = h4;
    for (int t = 0; t < 80; t++) {
      unsigned int f;
      unsigned int k;
      if (t < 20) {
        f = (b & c) | ((~b) & d);
        k = 0x5A827999;
      } else if (t < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1;
      } else if (t < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDC;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6;
      }
      unsigned int tmp = rotl(a, 5) + f + e + k + w[t];
      e = d;
      d = c;
      c = rotl(b, 30);
      b = a;
      a = tmp;
    }
    h0 += a; h1 += b; h2 += c; h3 += d; h4 += e;
  }
  out((int) h0);
  out((int) h1);
  out((int) h2);
  out((int) h3);
  out((int) h4);
  return 0;
}
