/* MPEG-2 motion estimation/compensation kernel (CHStone "motion").
 *
 * CHStone's motion decodes MPEG-2 motion vectors from a bitstream; this
 * reproduction runs the surrounding computation — full-search block
 * matching (SAD over a ±7 search window) of 16x16 macroblocks against a
 * reference frame, followed by motion compensation of the best match
 * (documented substitution: synthetic frames derived from the input seed
 * replace the bitstream).
 *
 * Input stream: seed, nmacroblocks.
 * Output: per macroblock best (dx, dy, sad) folded into a checksum, then
 * the final compensation-error sum.
 */

unsigned char ref_frame[2304];  /* 48 x 48 */
unsigned char cur_frame[2304];
int best_dx, best_dy, best_sad;

unsigned int lcg_state = 1;

unsigned int lcg() {
  lcg_state = lcg_state * 1664525 + 1013904223;
  return lcg_state >> 16;
}

void make_frames(int seed) {
  lcg_state = (unsigned int) seed;
  for (int i = 0; i < 2304; i++) {
    ref_frame[i] = (unsigned char) lcg();
  }
  /* current frame = reference shifted by (3, 2) with noise */
  for (int y = 0; y < 48; y++) {
    for (int x = 0; x < 48; x++) {
      int sy = y + 2;
      int sx = x + 3;
      int v;
      if (sy < 48 && sx < 48) {
        v = ref_frame[sy * 48 + sx];
      } else {
        v = 128;
      }
      v += (int)(lcg() & 7) - 4;
      if (v < 0) v = 0;
      if (v > 255) v = 255;
      cur_frame[y * 48 + x] = (unsigned char) v;
    }
  }
}

/* SAD of the 16x16 block at (bx,by) in cur vs (bx+dx, by+dy) in ref. */
int sad16(int bx, int by, int dx, int dy) {
  int sum = 0;
  for (int y = 0; y < 16; y++) {
    for (int x = 0; x < 16; x++) {
      int c = cur_frame[(by + y) * 48 + bx + x];
      int r = ref_frame[(by + y + dy) * 48 + bx + x + dx];
      int d = c - r;
      if (d < 0) d = -d;
      sum += d;
    }
  }
  return sum;
}

void full_search(int bx, int by) {
  best_sad = 0x7FFFFFFF;
  best_dx = 0;
  best_dy = 0;
  for (int dy = -7; dy <= 7; dy++) {
    for (int dx = -7; dx <= 7; dx++) {
      if (bx + dx < 0 || bx + dx + 16 > 48) continue;
      if (by + dy < 0 || by + dy + 16 > 48) continue;
      int s = sad16(bx, by, dx, dy);
      if (s < best_sad) {
        best_sad = s;
        best_dx = dx;
        best_dy = dy;
      }
    }
  }
}

int main() {
  int seed = in();
  int nmb = in();
  make_frames(seed);
  unsigned int checksum = 0;
  int err_total = 0;
  for (int mb = 0; mb < nmb; mb++) {
    int bx = 8 + (mb % 3) * 8;
    int by = 8 + ((mb / 3) % 3) * 8;
    full_search(bx, by);
    checksum = checksum * 131 + (unsigned int)(best_dx + 8);
    checksum = checksum * 131 + (unsigned int)(best_dy + 8);
    checksum = checksum * 131 + (unsigned int) best_sad;
    /* motion compensation error for the winning vector */
    for (int y = 0; y < 16; y++) {
      for (int x = 0; x < 16; x++) {
        int c = cur_frame[(by + y) * 48 + bx + x];
        int r = ref_frame[(by + y + best_dy) * 48 + bx + x + best_dx];
        int d = c - r;
        err_total += d * d;
      }
    }
  }
  out((int) checksum);
  out(best_dx);
  out(best_dy);
  out(best_sad);
  out(err_total);
  return 0;
}
