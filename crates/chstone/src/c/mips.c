/* MIPS-style ISA interpreter running a bubble sort (CHStone "mips").
 *
 * CHStone's mips simulates real MIPS encodings of a sort routine; this
 * reproduction keeps the fetch/decode/execute interpreter-in-a-loop shape
 * with a compact custom encoding (documented substitution):
 *
 *   word = (op << 24) | (a << 16) | (b << 8) | c      for register ops
 *   word = (op << 24) | (a << 16) | (imm & 0xFFFF)    for immediates
 *
 * ops: 0 HALT, 1 ADD a,b,c, 2 SUB, 3 AND, 4 OR, 5 SLT a,b,c,
 *      6 ADDI a,imm(a += simm... a = b? -> ADDI uses a as dest with b in
 *      bits 8..15: word=(6<<24)|(a<<16)|(b<<8)|imm8), 7 LW a, [rb+imm8],
 *      8 SW a, [rb+imm8], 9 BEQ a,b,+imm8(signed), 10 BNE, 11 JMP abs,
 *      12 SLL a,b,sh, 13 SRL a,b,sh
 *
 * Input stream: n, then n data words to sort.
 * Output: the sorted array followed by the executed-instruction count.
 */

int imem[64];
int dmem[64];
int regs[16];

/* Assemble the bubble-sort program.
 * Register plan: r1 = n, r2 = i, r3 = j, r4 = addr, r5/r6 = elems,
 * r7 = tmp flag, r8 = n-1, r0 always 0.
 */
void load_program() {
  int pc = 0;
  /* r8 = r1 - 1 ; uses r9 = 1 */
  imem[pc++] = (6 << 24) | (9 << 16) | (0 << 8) | 1;    /* ADDI r9 = r0 + 1   */
  imem[pc++] = (2 << 24) | (8 << 16) | (1 << 8) | 9;    /* SUB  r8 = r1 - r9  */
  imem[pc++] = (6 << 24) | (2 << 16) | (0 << 8) | 0;    /* ADDI r2 = r0 + 0   (i=0) */
  /* outer: if (i == n-1) halt */
  imem[pc++] = (9 << 24) | (2 << 16) | (8 << 8) | 14;   /* BEQ r2, r8, +14 -> halt */
  imem[pc++] = (6 << 24) | (3 << 16) | (0 << 8) | 0;    /* ADDI r3 = 0        (j=0) */
  /* limit r10 = n-1-i */
  imem[pc++] = (2 << 24) | (10 << 16) | (8 << 8) | 2;   /* SUB r10 = r8 - r2  */
  /* inner: if (j == limit) -> i++, outer */
  imem[pc++] = (9 << 24) | (3 << 16) | (10 << 8) | 9;   /* BEQ r3, r10, +9    */
  imem[pc++] = (7 << 24) | (5 << 16) | (3 << 8) | 0;    /* LW r5, [r3+0]      */
  imem[pc++] = (7 << 24) | (6 << 16) | (3 << 8) | 1;    /* LW r6, [r3+1]      */
  imem[pc++] = (5 << 24) | (7 << 16) | (6 << 8) | 5;    /* SLT r7 = r6 < r5   */
  imem[pc++] = (9 << 24) | (7 << 16) | (0 << 8) | 3;    /* BEQ r7, r0, +3 (skip swap) */
  imem[pc++] = (8 << 24) | (6 << 16) | (3 << 8) | 0;    /* SW r6, [r3+0]      */
  imem[pc++] = (8 << 24) | (5 << 16) | (3 << 8) | 1;    /* SW r5, [r3+1]      */
  imem[pc++] = (6 << 24) | (3 << 16) | (3 << 8) | 1;    /* ADDI r3 = r3 + 1   */
  imem[pc++] = (11 << 24) | 6;                          /* JMP inner          */
  imem[pc++] = (6 << 24) | (2 << 16) | (2 << 8) | 1;    /* ADDI r2 = r2 + 1   */
  imem[pc++] = (11 << 24) | 3;                          /* JMP outer          */
  imem[pc++] = 0;                                       /* HALT */
}

int main() {
  load_program();
  int n = in();
  if (n > 60) n = 60;
  for (int i = 0; i < n; i++) {
    dmem[i] = in();
  }
  regs[1] = n;

  int pc = 0;
  int executed = 0;
  int running = 1;
  while (running) {
    int inst = imem[pc];
    int op = (inst >> 24) & 0xFF;
    int a = (inst >> 16) & 0xFF;
    int b = (inst >> 8) & 0xFF;
    int c = inst & 0xFF;
    int next = pc + 1;
    executed++;
    switch (op) {
      case 0:
        running = 0;
        break;
      case 1:
        regs[a] = regs[b] + regs[c];
        break;
      case 2:
        regs[a] = regs[b] - regs[c];
        break;
      case 3:
        regs[a] = regs[b] & regs[c];
        break;
      case 4:
        regs[a] = regs[b] | regs[c];
        break;
      case 5:
        regs[a] = regs[b] < regs[c] ? 1 : 0;
        break;
      case 6:
        regs[a] = regs[b] + c;
        break;
      case 7:
        regs[a] = dmem[regs[b] + c];
        break;
      case 8:
        dmem[regs[b] + c] = regs[a];
        break;
      case 9:
        if (regs[a] == regs[b]) next = pc + c;
        break;
      case 10:
        if (regs[a] != regs[b]) next = pc + c;
        break;
      case 11:
        next = inst & 0xFFFF;
        break;
      case 12:
        regs[a] = regs[b] << c;
        break;
      case 13:
        regs[a] = (int) ((unsigned int) regs[b] >> c);
        break;
      default:
        running = 0;
    }
    regs[0] = 0;
    pc = next;
    if (executed > 100000) running = 0;
  }

  for (int i = 0; i < n; i++) {
    out(dmem[i]);
  }
  out(executed);
  return 0;
}
