/* GSM 06.10 LPC analysis stage (CHStone "gsm").
 *
 * Performs the benchmark's core: windowed autocorrelation of a speech
 * segment followed by the Schur recursion computing the eight reflection
 * coefficients, all in scaled integer arithmetic (heavy on division —
 * which is where the thesis' HW divider matters).
 *
 * Input stream: nframes, then nframes*40 8-bit samples (as ints).
 * Output: per-frame reflection coefficients folded into a checksum;
 * finally the checksum and the last frame's coefficients.
 */

int samples[40];
int acf[9];
int refl[8];
int p_arr[9];
int k_arr[9];

void autocorrelation() {
  for (int lag = 0; lag <= 8; lag++) {
    int sum = 0;
    for (int i = lag; i < 40; i++) {
      sum += samples[i] * samples[i - lag];
    }
    acf[lag] = sum;
  }
}

/* Q15 multiply with truncation toward zero. */
int mult_r(int a, int b) {
  int prod = a * b;
  if (prod < 0) {
    return -((-prod) >> 15);
  }
  return prod >> 15;
}

void schur() {
  for (int i = 0; i < 8; i++) refl[i] = 0;
  if (acf[0] == 0) {
    return;
  }
  /* Normalize so Q15 products stay within 32 bits (GSM's scaling step). */
  while (acf[0] >= 32768) {
    for (int i = 0; i <= 8; i++) {
      acf[i] = acf[i] >> 1;
    }
  }
  for (int i = 0; i < 8; i++) {
    k_arr[i] = acf[i + 1];
    p_arr[i] = acf[i];
  }
  p_arr[8] = acf[8];
  for (int n = 0; n < 8; n++) {
    if (p_arr[0] <= 0) {
      return;
    }
    int num = k_arr[0];
    int neg = 0;
    if (num < 0) { num = -num; neg = 1; }
    int rc;
    if (num >= p_arr[0]) {
      rc = 32767;
    } else {
      /* Q15 division: the hot divider the thesis calls out. */
      rc = (int) ((num << 15) / p_arr[0]);
    }
    refl[n] = neg ? -rc : rc;
    if (n == 7) return;
    int src = refl[n];
    /* Schur update */
    p_arr[0] = p_arr[0] + mult_r(k_arr[0], src);
    for (int j = 0; j < 7 - n; j++) {
      k_arr[j] = k_arr[j + 1] + mult_r(p_arr[j + 1], src);
      p_arr[j + 1] = p_arr[j + 1] + mult_r(k_arr[j + 1], src);
    }
  }
}

int main() {
  int nframes = in();
  unsigned int checksum = 0;
  for (int f = 0; f < nframes; f++) {
    for (int i = 0; i < 40; i++) {
      samples[i] = (in() & 0xFF) - 128;
    }
    autocorrelation();
    schur();
    for (int i = 0; i < 8; i++) {
      checksum = checksum * 37 + (unsigned int) (refl[i] & 0xFFFF);
    }
  }
  out((int) checksum);
  for (int i = 0; i < 8; i++) out(refl[i]);
  return 0;
}
