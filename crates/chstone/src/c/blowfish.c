/* Blowfish-style Feistel cipher (CHStone "blowfish").
 *
 * Structure-faithful: 16-round Feistel with four 256-entry S-boxes and an
 * 18-entry P-array, key schedule that runs the cipher over its own state,
 * and an encryption driver. The P/S initial values come from a
 * deterministic LCG instead of the digits of pi (documented substitution —
 * avoids 4 KiB of literal tables while keeping identical dataflow).
 *
 * The key schedule and the bulk encryption both call bf_encrypt — the
 * "optimized call graph" the thesis blames for Blowfish's partitioning
 * trouble (§6.4).
 *
 * Input stream: 4 key words, nblocks, then nblocks*2 data words.
 * Output: running ciphertext checksum and the last ciphertext block.
 */

unsigned int P[18];
unsigned int S[1024]; /* 4 boxes x 256, flattened */
unsigned int xl, xr;

unsigned int f_mix(unsigned int x) {
  unsigned int a = (x >> 24) & 0xFF;
  unsigned int b = (x >> 16) & 0xFF;
  unsigned int c = (x >> 8) & 0xFF;
  unsigned int d = x & 0xFF;
  return ((S[a] + S[256 + b]) ^ S[512 + c]) + S[768 + d];
}

void bf_encrypt() {
  unsigned int l = xl;
  unsigned int r = xr;
  for (int i = 0; i < 16; i++) {
    l = l ^ P[i];
    r = r ^ f_mix(l);
    unsigned int t = l;
    l = r;
    r = t;
  }
  unsigned int t2 = l;
  l = r;
  r = t2;
  r = r ^ P[16];
  l = l ^ P[17];
  xl = l;
  xr = r;
}

void init_boxes() {
  unsigned int lcg = 0x12345678;
  for (int i = 0; i < 18; i++) {
    lcg = lcg * 1664525 + 1013904223;
    P[i] = lcg;
  }
  for (int i = 0; i < 1024; i++) {
    lcg = lcg * 1664525 + 1013904223;
    S[i] = lcg;
  }
}

void key_schedule(unsigned int k0, unsigned int k1, unsigned int k2, unsigned int k3) {
  P[0] = P[0] ^ k0;
  P[1] = P[1] ^ k1;
  P[2] = P[2] ^ k2;
  P[3] = P[3] ^ k3;
  P[4] = P[4] ^ k0;
  P[5] = P[5] ^ k1;
  P[6] = P[6] ^ k2;
  P[7] = P[7] ^ k3;
  P[8] = P[8] ^ k0;
  P[9] = P[9] ^ k1;
  P[10] = P[10] ^ k2;
  P[11] = P[11] ^ k3;
  P[12] = P[12] ^ k0;
  P[13] = P[13] ^ k1;
  P[14] = P[14] ^ k2;
  P[15] = P[15] ^ k3;
  P[16] = P[16] ^ k0;
  P[17] = P[17] ^ k1;
  xl = 0;
  xr = 0;
  for (int i = 0; i < 18; i += 2) {
    bf_encrypt();
    P[i] = xl;
    P[i + 1] = xr;
  }
  /* CHStone reworks all four S boxes; we refresh the first two (shorter
   * key schedule, same call pattern). */
  for (int i = 0; i < 512; i += 2) {
    bf_encrypt();
    S[i] = xl;
    S[i + 1] = xr;
  }
}

int main() {
  init_boxes();
  unsigned int k0 = (unsigned int) in();
  unsigned int k1 = (unsigned int) in();
  unsigned int k2 = (unsigned int) in();
  unsigned int k3 = (unsigned int) in();
  key_schedule(k0, k1, k2, k3);

  int nblocks = in();
  unsigned int checksum = 0;
  for (int b = 0; b < nblocks; b++) {
    xl = (unsigned int) in();
    xr = (unsigned int) in();
    bf_encrypt();
    checksum = checksum * 131 + (xl ^ (xr >> 7));
  }
  out((int) checksum);
  out((int) xl);
  out((int) xr);
  return 0;
}
