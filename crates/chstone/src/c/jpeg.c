/* JPEG decode kernel: zigzag + dequantize + 2-D integer IDCT + level
 * shift/clamp (CHStone "jpeg").
 *
 * CHStone's jpeg decodes a full JFIF file; this reproduction runs the
 * compute core the thesis' pipeline actually spends time in — per-block
 * coefficient reordering, dequantization and the separable fixed-point
 * IDCT — over a stream of coefficient blocks (documented substitution:
 * the Huffman bit-reader is replaced by the input stream).
 *
 * Input stream: nblocks, then nblocks*64 quantized coefficients in zigzag
 * order.
 * Output: rolling checksum of all reconstructed pixels, then four corner
 * pixels of the last block.
 */

int zigzag[64];
int qtab[64];
int coef[64];
int block[64];
int tmp[64];
int basis[64]; /* Q12 IDCT basis: c(u) * cos((2x+1)u*pi/16) */

void make_zigzag() {
  int x = 0, y = 0, dir = 1, i = 0;
  while (i < 64) {
    zigzag[i] = y * 8 + x;
    i++;
    if (dir == 1) { /* moving up-right */
      if (x == 7) { y++; dir = 0; }
      else if (y == 0) { x++; dir = 0; }
      else { x++; y--; }
    } else { /* moving down-left */
      if (y == 7) { x++; dir = 1; }
      else if (x == 0) { y++; dir = 1; }
      else { x--; y++; }
    }
  }
}

void make_tables() {
  /* cos(k*pi/16) in Q12 for k = 0..8, then extended by symmetry. */
  int base[9];
  int costab[32];
  base[0] = 4096;
  base[1] = 4017;
  base[2] = 3784;
  base[3] = 3406;
  base[4] = 2896;
  base[5] = 2276;
  base[6] = 1567;
  base[7] = 799;
  base[8] = 0;
  for (int k = 0; k < 32; k++) {
    int v;
    if (k <= 8) v = base[k];
    else if (k <= 16) v = -base[16 - k];
    else if (k <= 24) v = -base[k - 16];
    else v = base[32 - k];
    costab[k] = v;
  }
  /* Basis with c(0) = 1/sqrt(2) folded in (2896 = 4096/sqrt2). */
  for (int u = 0; u < 8; u++) {
    int cu = (u == 0) ? 2896 : 4096;
    for (int x = 0; x < 8; x++) {
      int ang = ((2 * x + 1) * u) % 32;
      basis[u * 8 + x] = (cu * costab[ang]) >> 12;
    }
  }
  /* Synthetic luminance-style quant table. */
  for (int y = 0; y < 8; y++) {
    for (int x = 0; x < 8; x++) {
      qtab[y * 8 + x] = 16 + (x + y) * 3;
    }
  }
}

/* Separable 8x8 IDCT: rows (block -> tmp) then columns (tmp -> block). */
void idct_block() {
  for (int row = 0; row < 8; row++) {
    for (int x = 0; x < 8; x++) {
      int sum = 2048; /* rounding */
      for (int u = 0; u < 8; u++) {
        sum += block[row * 8 + u] * basis[u * 8 + x];
      }
      tmp[row * 8 + x] = sum >> 12;
    }
  }
  for (int col = 0; col < 8; col++) {
    for (int y = 0; y < 8; y++) {
      int sum = 2048;
      for (int u = 0; u < 8; u++) {
        sum += tmp[u * 8 + col] * basis[u * 8 + y];
      }
      block[y * 8 + col] = sum >> 15; /* >>12 for Q12, >>3 for the 1/8 DCT scale */
    }
  }
}

int clamp_pixel(int v) {
  v += 128;
  if (v < 0) return 0;
  if (v > 255) return 255;
  return v;
}

int main() {
  make_zigzag();
  make_tables();
  int nblocks = in();
  unsigned int checksum = 0;
  for (int b = 0; b < nblocks; b++) {
    for (int i = 0; i < 64; i++) {
      coef[i] = in();
    }
    /* de-zigzag + dequantize */
    for (int i = 0; i < 64; i++) {
      block[zigzag[i]] = coef[i] * qtab[zigzag[i]];
    }
    idct_block();
    for (int i = 0; i < 64; i++) {
      block[i] = clamp_pixel(block[i]);
      checksum = checksum * 31 + (unsigned int) block[i];
    }
  }
  out((int) checksum);
  out(block[0]);
  out(block[7]);
  out(block[56]);
  out(block[63]);
  return 0;
}
