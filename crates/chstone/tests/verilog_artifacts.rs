//! The hardware-side artifacts for the benchmark suite: Verilog emission
//! must be deterministic, structurally balanced, and cover every hardware
//! thread.

#[test]
fn verilog_for_all_benchmarks() {
    for b in chstone::all() {
        let m = chstone::compile_and_prepare(&b);
        let d = twill_dswp::run_dswp(
            &m,
            &twill_dswp::DswpOptions { num_partitions: b.partitions, ..Default::default() },
        );
        let sched = twill_hls::schedule::schedule_module(&d.module, &Default::default());
        let v = twill_hls::verilog::emit_module(&d.module, &sched);
        assert!(v.len() > 500, "{}: suspiciously small Verilog", b.name);
        assert_eq!(
            v.matches("\nmodule ").count(),
            v.matches("endmodule").count(),
            "{}: unbalanced modules",
            b.name
        );
        // Every hardware thread's entry function has a module.
        for t in d.threads.iter().filter(|t| t.is_hw) {
            let name = &d.module.func(t.entry).name;
            assert!(
                v.contains(&format!("module {}", name.replace('.', "_"))),
                "{}: missing module for {name}",
                b.name
            );
        }
        // Determinism.
        let v2 = twill_hls::verilog::emit_module(&d.module, &sched);
        assert_eq!(v, v2);
    }
}

#[test]
fn pure_hw_verilog_contains_runtime_interface() {
    let m = chstone::compile_and_prepare(&chstone::SHA);
    let sched = twill_hls::schedule::schedule_module(&m, &Default::default());
    let v = twill_hls::verilog::emit_module(&m, &sched);
    assert!(v.contains("rt_req"), "runtime interface signals (thesis §5.4)");
    assert!(v.contains("module main"));
}
