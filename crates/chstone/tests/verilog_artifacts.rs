//! The hardware-side artifacts for the benchmark suite: Verilog emission
//! must be deterministic, structurally balanced, and cover every hardware
//! thread. With `--hw-counters` off the output must be byte-identical to
//! plain emission for every benchmark; with it on, the counters-enabled
//! emission for `mips` is pinned by a golden snapshot. Regenerate the
//! snapshot after an intentional emitter change with:
//!
//! ```sh
//! TWILL_UPDATE_GOLDEN=1 cargo test -p chstone --test verilog_artifacts
//! ```

use twill_hls::verilog::EmitOptions;

#[test]
fn verilog_for_all_benchmarks() {
    for b in chstone::all() {
        let m = chstone::compile_and_prepare(&b);
        let d = twill_dswp::run_dswp(
            &m,
            &twill_dswp::DswpOptions { num_partitions: b.partitions, ..Default::default() },
        );
        let sched = twill_hls::schedule::schedule_module(&d.module, &Default::default());
        let v = twill_hls::verilog::emit_module(&d.module, &sched);
        assert!(v.len() > 500, "{}: suspiciously small Verilog", b.name);
        assert_eq!(
            v.matches("\nmodule ").count(),
            v.matches("endmodule").count(),
            "{}: unbalanced modules",
            b.name
        );
        // Every hardware thread's entry function has a module.
        for t in d.threads.iter().filter(|t| t.is_hw) {
            let name = &d.module.func(t.entry).name;
            assert!(
                v.contains(&format!("module {}", name.replace('.', "_"))),
                "{}: missing module for {name}",
                b.name
            );
        }
        // Determinism.
        let v2 = twill_hls::verilog::emit_module(&d.module, &sched);
        assert_eq!(v, v2);
    }
}

#[test]
fn counters_off_is_byte_identical_for_all_benchmarks() {
    // The instrumentation is strictly opt-in: with `hw_counters` off the
    // options-taking entry point must reproduce plain emission exactly,
    // byte for byte, for every benchmark in the suite.
    for b in chstone::all() {
        let m = chstone::compile_and_prepare(&b);
        let d = twill_dswp::run_dswp(
            &m,
            &twill_dswp::DswpOptions { num_partitions: b.partitions, ..Default::default() },
        );
        let sched = twill_hls::schedule::schedule_module(&d.module, &Default::default());
        let plain = twill_hls::verilog::emit_module(&d.module, &sched);
        let off = twill_hls::verilog::emit_module_with(&d.module, &sched, &EmitOptions::default());
        assert_eq!(plain, off, "{}: counters-off emission drifted from plain", b.name);
    }
}

#[test]
fn counters_enabled_emission_matches_golden_snapshot() {
    let b = chstone::by_name("mips").unwrap();
    let m = chstone::compile_and_prepare(&b);
    let d = twill_dswp::run_dswp(
        &m,
        &twill_dswp::DswpOptions { num_partitions: b.partitions, ..Default::default() },
    );
    let sched = twill_hls::schedule::schedule_module(&d.module, &Default::default());
    let opts = EmitOptions { hw_counters: true, threads: d.agent_names() };
    let v = twill_hls::verilog::emit_module_with(&d.module, &sched, &opts);

    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/mips_counters.v");
    if std::env::var_os("TWILL_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &v).unwrap();
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing; run with TWILL_UPDATE_GOLDEN=1 to create it");
    assert_eq!(v, golden, "counters-enabled Verilog drifted from tests/golden/mips_counters.v");

    // Structural facts the snapshot should always carry: the perf module,
    // a mux arm per register, and the magic word first.
    let map = opts.regmap(&d.module);
    assert!(v.contains("module twill_perf ("), "twill_perf register file present");
    for r in map.registers() {
        assert!(
            v.contains(&format!("// {}", r.name)),
            "register {} missing from readback mux",
            r.name
        );
    }
    assert!(v.contains("32'h54574c50; // magic"));

    // Determinism of the instrumented emission.
    let v2 = twill_hls::verilog::emit_module_with(&d.module, &sched, &opts);
    assert_eq!(v, v2);
}

#[test]
fn pure_hw_verilog_contains_runtime_interface() {
    let m = chstone::compile_and_prepare(&chstone::SHA);
    let sched = twill_hls::schedule::schedule_module(&m, &Default::default());
    let v = twill_hls::verilog::emit_module(&m, &sched);
    assert!(v.contains("rt_req"), "runtime interface signals (thesis §5.4)");
    assert!(v.contains("module main"));
}
