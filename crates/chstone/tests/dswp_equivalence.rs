//! Differential test: every CHStone benchmark, partitioned by DSWP at its
//! Table 6.1 thread count, must produce byte-identical output to the
//! single-threaded reference when co-executed.

use chstone::{all, compile_and_prepare, input_for};
use twill_dswp::{run_dswp, run_partitioned, DswpOptions};

fn check_benchmark(b: &chstone::Benchmark, opts: &DswpOptions) -> twill_dswp::extract::DswpStats {
    let m = compile_and_prepare(b);
    let input = input_for(b.name, 1);
    let (ref_out, _, _) = twill_ir::interp::run_main(&m, input.clone(), 2_000_000_000)
        .unwrap_or_else(|e| panic!("{} reference: {e}", b.name));

    let r = run_dswp(&m, opts);
    twill_ir::verifier::assert_valid(&r.module);
    for f in &r.module.funcs {
        let errs = twill_passes::utils::verify_dominance(f);
        assert!(errs.is_empty(), "{} @{}: {errs:?}", b.name, f.name);
    }
    let (out, _, _) = run_partitioned(&r, input, 4_000_000_000)
        .unwrap_or_else(|e| panic!("{} partitioned: {e}", b.name));
    assert_eq!(ref_out, out, "{}: partitioned output differs", b.name);
    r.stats
}

#[test]
fn all_benchmarks_partitioned_match_reference() {
    for b in all() {
        let opts = DswpOptions { num_partitions: b.partitions, ..Default::default() };
        let stats = check_benchmark(&b, &opts);
        println!(
            "{:10} partitions={} queues={} (data {}, token {}) hw_threads={}",
            b.name,
            b.partitions,
            stats.queues,
            stats.data_queues,
            stats.token_queues,
            stats.hw_threads
        );
        assert!(stats.queues > 0 || b.partitions == 1, "{}: no communication", b.name);
    }
}

#[test]
fn two_partitions_always_work() {
    for b in all() {
        check_benchmark(&b, &DswpOptions { num_partitions: 2, ..Default::default() });
    }
}

#[test]
fn pruning_off_matches_too() {
    for b in [chstone::SHA, chstone::AES, chstone::GSM] {
        check_benchmark(&b, &DswpOptions { num_partitions: 3, prune: false, ..Default::default() });
    }
}

#[test]
fn split_point_sweep_preserves_semantics() {
    // The Fig 6.3/6.4 sweep must be semantics-preserving at every point.
    for frac in [0.1, 0.3, 0.5, 0.7, 0.9] {
        check_benchmark(
            &chstone::MIPS,
            &DswpOptions {
                num_partitions: 2,
                split_points: Some(vec![frac, 1.0 - frac]),
                ..Default::default()
            },
        );
    }
}
