//! End-to-end tests of the `twillc` command-line driver: flag parsing,
//! artifact emission, and the three-way simulation cross-check, all via
//! the real binary.

use std::process::Command;

fn twillc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_twillc"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("twillc-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    std::fs::write(&p, contents).unwrap();
    p
}

const SRC: &str = r#"
int main() {
  int acc = 0;
  for (int i = 0; i < 40; i++) {
    acc += (i * 3) ^ (acc >> 2);
  }
  out(acc);
  return 0;
}
"#;

#[test]
fn compiles_and_reports_stats() {
    let p = write_temp("basic.c", SRC);
    let out = twillc().arg(&p).arg("--stats").output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}\n{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("compiled basic:"), "{stdout}");
    assert!(stdout.contains("area: LegUp"), "{stdout}");
    assert!(stdout.contains("instructions per partition"), "{stdout}");
}

#[test]
fn run_cross_checks_three_configurations() {
    let p = write_temp("run.c", SRC);
    let out = twillc().arg(&p).arg("--run").arg("--partitions").arg("2").output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}\n{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("output: ["), "{stdout}");
    assert!(stdout.contains("cycles: pure SW"), "{stdout}");
}

#[test]
fn run_with_input_feeds_the_stream() {
    let p = write_temp(
        "echoish.c",
        "int main() { int a = in(); int b = in(); out(a * 10 + b); return 0; }",
    );
    let out = twillc().arg(&p).arg("--run").arg("--input").arg("7,3").output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}\n{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("output: [73]"), "{stdout}");
}

#[test]
fn emits_verilog_and_ir_artifacts() {
    let p = write_temp("emit.c", SRC);
    let v = p.with_file_name("emit.v");
    let ir = p.with_file_name("emit.ir");
    let out =
        twillc().arg(&p).arg("--emit-verilog").arg(&v).arg("--emit-ir").arg(&ir).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let vtext = std::fs::read_to_string(&v).unwrap();
    assert!(vtext.contains("module"), "{vtext}");
    let irtext = std::fs::read_to_string(&ir).unwrap();
    assert!(irtext.contains("func @"), "{irtext}");
    // The emitted IR round-trips through the parser.
    twill_ir::parser::parse_module(&irtext).unwrap();
}

#[test]
fn bad_source_fails_with_diagnostic() {
    let p = write_temp("bad.c", "int main( { return 0; }");
    let out = twillc().arg(&p).arg("--run").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad.c"), "diagnostic names the file: {stderr}");
}

#[test]
fn missing_file_fails_cleanly() {
    let out = twillc().arg("/nonexistent/nope.c").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn recursion_needs_explicit_flag() {
    let rec =
        "int f(int n) { return n < 2 ? 1 : n * f(n - 1); }\nint main() { out(f(5)); return 0; }";
    let p = write_temp("rec.c", rec);
    let denied = twillc().arg(&p).output().unwrap();
    assert!(!denied.status.success());
    let allowed = twillc().arg(&p).arg("--allow-recursion").arg("--run").output().unwrap();
    let stdout = String::from_utf8_lossy(&allowed.stdout);
    assert!(allowed.status.success(), "{stdout}\n{}", String::from_utf8_lossy(&allowed.stderr));
    assert!(stdout.contains("output: [120]"), "{stdout}");
}
