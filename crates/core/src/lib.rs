//! # Twill
//!
//! A faithful, fully-simulated reproduction of *Twill: A Hybrid
//! Microcontroller-FPGA Framework for Parallelizing Single-Threaded C
//! Programs* (Gallatin, 2014): an automatic hybrid compiler that extracts
//! long-running threads from single-threaded C via modified Decoupled
//! Software Pipelining and distributes them across a soft CPU and FPGA
//! hardware threads communicating through statically-allocated queues.
//!
//! ## Quick start
//!
//! ```
//! use twill::Compiler;
//!
//! let src = r#"
//!     int main() {
//!       int acc = 0;
//!       for (int i = 0; i < 64; i++) {
//!         int x = (i * 7 + 3) ^ (i << 2);
//!         acc += (x % 11) * (x % 11);
//!       }
//!       out(acc);
//!       return 0;
//!     }
//! "#;
//! let build = Compiler::new().partitions(3).compile("demo", src).unwrap();
//! let hybrid = build.simulate_hybrid(vec![]).unwrap();
//! let sw = build.simulate_pure_sw(vec![]).unwrap();
//! assert_eq!(hybrid.output, sw.output);
//! assert!(hybrid.cycles < sw.cycles);
//! ```
//!
//! The three configurations of the paper's evaluation:
//! * [`TwillBuild::simulate_pure_sw`] — everything on the Microblaze-style
//!   soft CPU,
//! * [`TwillBuild::simulate_pure_hw`] — the LegUp-style translation as one
//!   hardware thread,
//! * [`TwillBuild::simulate_hybrid`] — the Twill hybrid (DSWP partitions on
//!   CPU + hardware threads).
//!
//! [`experiments`] regenerates every table and figure of the paper's
//! Chapter 6.

pub mod artifacts;
pub mod experiments;
pub mod report;
pub mod tune;

use std::sync::{Arc, OnceLock};

use artifacts::{BuildGraph, DswpArtifact};
use twill_dswp::DswpResult;
use twill_frontend::CError;
use twill_hls::schedule::{HlsOptions, ModuleSchedule};
use twill_ir::Module;
use twill_rt::{SimConfig, SimReport};

pub use artifacts::StageCounts;
pub use tune::{tune, TuneOptions, TuneOutcome};
pub use twill_dswp::DswpOptions;
pub use twill_hls::area::AreaReport;
pub use twill_obs::MetricsSummary;
pub use twill_rt::SimConfig as SimulationConfig;
pub use twill_rt::{
    ConfigError, FaultPlan, FaultRecord, FaultSite, FaultSpec, HangReport, PinnedFault, SimError,
    WaitState,
};

/// Which execution path ultimately served a [`TwillBuild::run_resilient`]
/// request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// A hybrid attempt completed with correct output (0-based attempt).
    Hybrid { attempt: u32 },
    /// Every hybrid attempt failed; the pure-software fallback served the
    /// run (with fault injection disabled).
    PureSw,
}

impl std::fmt::Display for ServedBy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServedBy::Hybrid { attempt } => write!(f, "hybrid (attempt {})", attempt + 1),
            ServedBy::PureSw => write!(f, "pure-SW fallback"),
        }
    }
}

/// Outcome of a [`TwillBuild::run_resilient`] run: the report that served
/// the request, the path that produced it, and what went wrong on the way.
#[derive(Debug)]
pub struct ResilientOutcome {
    pub report: SimReport,
    pub served_by: ServedBy,
    /// Human-readable failure description per abandoned hybrid attempt.
    pub failures: Vec<String>,
}

/// The Twill compiler front door.
#[derive(Clone, Debug)]
pub struct Compiler {
    pub dswp: DswpOptions,
    pub pipeline: twill_passes::PipelineOptions,
    pub hls: HlsOptions,
    /// Accept recursive programs (thesis §7 extension): recursive call
    /// trees are pinned whole to the software master.
    pub allow_recursion: bool,
    /// Instrument the emitted Verilog with the `twill_perf` counter
    /// register file (DESIGN.md §14). Opt-in: off keeps every artifact
    /// byte-identical to an uninstrumented build.
    pub hw_counters: bool,
}

impl Default for Compiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Compiler {
    pub fn new() -> Compiler {
        Compiler {
            dswp: DswpOptions::default(),
            // HLS flows inline aggressively (LegUp flattens what it
            // synthesizes).
            pipeline: twill_passes::PipelineOptions {
                verify_between: false,
                inline: twill_passes::inline::InlineOptions {
                    small_threshold: 400,
                    single_site_threshold: 600,
                    max_inlines: 1000,
                    ..Default::default()
                },
            },
            hls: HlsOptions::default(),
            allow_recursion: false,
            hw_counters: false,
        }
    }

    /// Total partitions (1 software master + n-1 hardware threads).
    pub fn partitions(mut self, n: usize) -> Compiler {
        self.dswp.num_partitions = n;
        self
    }

    /// Targeted fraction of estimated work for the software partition.
    pub fn sw_fraction(mut self, f: f64) -> Compiler {
        self.dswp.sw_fraction = f;
        self
    }

    /// Explicit per-partition work targets (the Fig 6.3/6.4 sweeps).
    pub fn split_points(mut self, sp: Vec<f64>) -> Compiler {
        self.dswp.split_points = Some(sp);
        self
    }

    /// Queue depth for all generated queues (paper baseline: 8).
    pub fn queue_depth(mut self, d: u32) -> Compiler {
        self.dswp.queue_depth = d;
        self
    }

    /// Per-queue depth overrides `(queue id, depth)`, layered over
    /// [`Compiler::queue_depth`]. These change the *declared* depths, so
    /// the Verilog FIFOs and area model see them too — the tuner's main
    /// actuator, also reachable via `twillc --queue-depths q0=4,q1=32`.
    pub fn queue_depths(mut self, overrides: Vec<(usize, u32)>) -> Compiler {
        self.dswp.queue_depth_overrides = overrides;
        self
    }

    /// Accept recursive programs (thesis §7 extension: recursion runs on
    /// the software master; hardware threads never need a stack).
    pub fn allow_recursion(mut self, yes: bool) -> Compiler {
        self.allow_recursion = yes;
        self
    }

    /// Emit on-chip performance counters with the Verilog (`twillc
    /// --hw-counters`). The area model then charges the instrumentation
    /// overhead, and [`TwillBuild::regmap_json`] describes the readback.
    pub fn hw_counters(mut self, yes: bool) -> Compiler {
        self.hw_counters = yes;
        self
    }

    /// Compile mini-C source through the full Twill flow. The frontend runs
    /// eagerly (so errors surface here); every later stage — passes, DSWP,
    /// HLS, Verilog — is computed lazily on first demand and memoized in
    /// the build's [`BuildGraph`].
    pub fn compile(&self, name: &str, source: &str) -> Result<TwillBuild, CError> {
        let graph =
            Arc::new(BuildGraph::from_source(name, source, self.allow_recursion, self.pipeline));
        graph.ensure_frontend()?;
        Ok(self.build_on(&graph))
    }

    /// Run the Twill flow on an already-prepared IR module (the module is
    /// used as-is; the preparation pipeline is not re-run).
    pub fn build_from_module(&self, prepared: Module) -> TwillBuild {
        let graph = Arc::new(BuildGraph::from_prepared("module", prepared));
        self.build_on(&graph)
    }

    /// Fork a build off an existing artifact graph with this compiler's
    /// DSWP/HLS knobs. This is the sweep API: every [`TwillBuild`] on the
    /// same graph shares its memoized stages, so varying only split points
    /// or simulation parameters reuses the frontend/passes (and, where the
    /// keys match, DSWP and HLS) artifacts.
    pub fn build_on(&self, graph: &Arc<BuildGraph>) -> TwillBuild {
        TwillBuild {
            graph: graph.clone(),
            dswp_opts: self.dswp.clone(),
            hls: self.hls,
            hw_counters: self.hw_counters,
            dswp: OnceLock::new(),
            hybrid_schedule: OnceLock::new(),
            pure_schedule: OnceLock::new(),
        }
    }
}

/// One configuration's view of a compiled program: a [`BuildGraph`] plus
/// the DSWP/HLS options to build with. Artifacts (partitions, schedules,
/// Verilog, area) are computed on first access and cached in the graph;
/// accessors therefore take `&self` and return references/`Arc`s.
pub struct TwillBuild {
    graph: Arc<BuildGraph>,
    dswp_opts: DswpOptions,
    hls: HlsOptions,
    hw_counters: bool,
    dswp: OnceLock<Arc<DswpArtifact>>,
    hybrid_schedule: OnceLock<Arc<ModuleSchedule>>,
    pure_schedule: OnceLock<Arc<ModuleSchedule>>,
}

impl TwillBuild {
    /// The shared artifact graph (pass to [`Compiler::build_on`] to fork
    /// further configurations that reuse this build's artifacts).
    pub fn graph(&self) -> &Arc<BuildGraph> {
        &self.graph
    }

    /// The optimized single-threaded module (input to DSWP; also the
    /// pure-SW / pure-HW baselines).
    pub fn prepared(&self) -> &Module {
        self.graph.prepared()
    }

    fn dswp_artifact(&self) -> &Arc<DswpArtifact> {
        self.dswp.get_or_init(|| self.graph.dswp(&self.dswp_opts))
    }

    /// The partitioned program + thread table + Table 6.1 statistics.
    pub fn dswp(&self) -> &DswpResult {
        &self.dswp_artifact().result
    }

    /// HLS schedule of the partitioned module.
    pub fn hybrid_schedule(&self) -> &ModuleSchedule {
        self.hybrid_schedule.get_or_init(|| {
            let art = self.dswp_artifact().clone();
            self.graph.schedule_for(&art.result.module, art.module_hash, &self.hls)
        })
    }

    /// HLS schedule of the whole program (the LegUp pure-HW baseline).
    /// Lazy: simulating only hybrid / pure-SW never computes it.
    pub fn pure_schedule(&self) -> &ModuleSchedule {
        self.pure_schedule.get_or_init(|| self.graph.pure_schedule(&self.hls))
    }

    /// Golden reference: the interpreter, no timing.
    pub fn run_reference(&self, input: Vec<i32>) -> Result<Vec<i32>, twill_ir::ExecError> {
        twill_ir::interp::run_main(self.prepared(), input, 4_000_000_000).map(|(o, _, _)| o)
    }

    pub fn sim_config(&self) -> SimConfig {
        SimConfig { hls: self.hls, ..Default::default() }
    }

    pub fn simulate_pure_sw(&self, input: Vec<i32>) -> Result<SimReport, SimError> {
        twill_rt::simulate_pure_sw(self.prepared(), input, &self.sim_config())
    }

    pub fn simulate_pure_hw(&self, input: Vec<i32>) -> Result<SimReport, SimError> {
        twill_rt::simulate_pure_hw_scheduled(
            self.prepared(),
            self.pure_schedule(),
            input,
            &self.sim_config(),
        )
    }

    pub fn simulate_hybrid(&self, input: Vec<i32>) -> Result<SimReport, SimError> {
        twill_rt::simulate_hybrid_scheduled(
            self.dswp(),
            self.hybrid_schedule(),
            input,
            &self.sim_config(),
        )
    }

    /// Simulate the hybrid under a custom [`SimConfig`] (the Fig 6.5/6.6
    /// sweeps). The schedule is looked up in the graph cache keyed by
    /// `cfg.hls`, so sweeping queue latency/depth schedules exactly once.
    pub fn simulate_hybrid_with(
        &self,
        input: Vec<i32>,
        cfg: &SimConfig,
    ) -> Result<SimReport, SimError> {
        let art = self.dswp_artifact().clone();
        let sched = self.graph.schedule_for(&art.result.module, art.module_hash, &cfg.hls);
        twill_rt::simulate_hybrid_scheduled(&art.result, &sched, input, cfg)
    }

    /// Graceful degradation: run the hybrid under `cfg`, retrying up to
    /// `max_attempts` times (each retry derives a fresh fault seed from the
    /// plan), and fall back to a fault-free pure-software run when every
    /// hybrid attempt deadlocks, times out, or corrupts its output.
    ///
    /// An attempt's output is checked against the interpreter's golden
    /// reference, so silently corrupted runs (e.g. an injected bit flip
    /// that survives to the output) are retried rather than returned.
    /// Configuration errors abort immediately — no retry can fix them.
    pub fn run_resilient(
        &self,
        input: Vec<i32>,
        cfg: &SimConfig,
        max_attempts: u32,
    ) -> Result<ResilientOutcome, SimError> {
        let mut failures = Vec::new();
        let golden = self.run_reference(input.clone()).ok();
        for attempt in 0..max_attempts {
            let attempt_cfg =
                SimConfig { fault: cfg.fault.as_ref().map(|p| p.reseeded(attempt)), ..cfg.clone() };
            match self.simulate_hybrid_with(input.clone(), &attempt_cfg) {
                Ok(report) => {
                    if let Some(expect) = &golden {
                        if &report.output != expect {
                            failures.push(format!(
                                "attempt {}: output corrupted ({} fault(s) injected)",
                                attempt + 1,
                                report.stats.faults.total()
                            ));
                            continue;
                        }
                    }
                    return Ok(ResilientOutcome {
                        report,
                        served_by: ServedBy::Hybrid { attempt },
                        failures,
                    });
                }
                Err(e @ SimError::Config(_)) => return Err(e),
                Err(e) => failures.push(format!("attempt {}: {e}", attempt + 1)),
            }
        }
        // Degraded path: the whole program on the soft CPU, injection off.
        let sw_cfg = SimConfig { fault: None, ..cfg.clone() };
        let report = twill_rt::simulate_pure_sw(self.prepared(), input, &sw_cfg)?;
        Ok(ResilientOutcome { report, served_by: ServedBy::PureSw, failures })
    }

    /// DSWP statistics (queues/semaphores/HW threads — Table 6.1).
    pub fn stats(&self) -> &twill_dswp::extract::DswpStats {
        &self.dswp().stats
    }

    /// Area breakdown in the four columns of Table 6.2.
    pub fn area(&self) -> report::AreaBreakdown {
        report::area_breakdown(self)
    }

    /// Verilog for the hardware threads (thesis §5.4 output artifact).
    /// When the build was configured with [`Compiler::hw_counters`], the
    /// bundle includes the `twill_perf` register file (DESIGN.md §14).
    pub fn verilog(&self) -> Arc<String> {
        let art = self.dswp_artifact().clone();
        if self.hw_counters {
            let emit =
                twill_hls::EmitOptions { hw_counters: true, threads: art.result.agent_names() };
            self.graph.verilog_for_opts(&art.result.module, art.module_hash, &self.hls, &emit)
        } else {
            self.graph.verilog_for(&art.result.module, art.module_hash, &self.hls)
        }
    }

    /// Verilog for the pure-HW (LegUp-style) translation.
    pub fn verilog_pure_hw(&self) -> Arc<String> {
        let h = self.graph.prepared_hash();
        self.graph.verilog_for(self.prepared(), h, &self.hls)
    }

    /// Whether this build instruments its Verilog with `twill_perf`.
    pub fn hw_counters(&self) -> bool {
        self.hw_counters
    }

    /// The machine-readable counter register-map artifact (JSON) for this
    /// build's hybrid design — the document `twillc --emit-regmap` writes
    /// next to the Verilog. Available regardless of
    /// [`TwillBuild::hw_counters`] so tooling can inspect the would-be
    /// layout; cached in the graph.
    pub fn regmap_json(&self) -> Arc<String> {
        let art = self.dswp_artifact().clone();
        self.graph.regmap_for(&art.result.module, art.module_hash, &art.result.agent_names())
    }

    /// Model the post-run `twill_perf` readback for a hybrid report of
    /// this build: the word image a flashed design's counters would hold,
    /// served through the same register map as [`TwillBuild::regmap_json`]
    /// (same design name, threads, and queues).
    pub fn counter_bank(&self, rep: &SimReport) -> twill_rt::CounterBank {
        twill_rt::CounterBank::from_report(&self.dswp().module.name, rep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
int main() {
  int acc = 0;
  for (int i = 0; i < 32; i++) {
    acc += (i * 3) ^ (acc >> 2);
  }
  out(acc);
  return 0;
}
"#;

    #[test]
    fn compile_and_simulate_all_configs() {
        let b = Compiler::new().partitions(3).compile("t", SRC).unwrap();
        let golden = b.run_reference(vec![]).unwrap();
        assert_eq!(b.simulate_pure_sw(vec![]).unwrap().output, golden);
        assert_eq!(b.simulate_pure_hw(vec![]).unwrap().output, golden);
        assert_eq!(b.simulate_hybrid(vec![]).unwrap().output, golden);
    }

    #[test]
    fn frontend_errors_surface() {
        let err = match Compiler::new().compile("t", "int main( { return 0; }") {
            Err(e) => e,
            Ok(_) => panic!("expected a parse error"),
        };
        assert!(err.line > 0);
    }

    #[test]
    fn area_columns_ordered_like_table_6_2() {
        let b = Compiler::new().partitions(3).compile("t", SRC).unwrap();
        let a = b.area();
        // HW threads alone are smaller than with the runtime; adding the
        // Microblaze adds its 1434 LUTs.
        assert!(a.twill_hw_threads.luts <= a.twill_total.luts);
        assert_eq!(
            a.twill_plus_microblaze.luts,
            a.twill_total.luts + twill_ir::cost::LUTS_MICROBLAZE
        );
    }

    #[test]
    fn queue_depth_option_bounds_occupancy() {
        let b = Compiler::new()
            .partitions(2)
            .split_points(vec![0.5, 0.5])
            .queue_depth(2)
            .compile("t", SRC)
            .unwrap();
        let golden = b.run_reference(vec![]).unwrap();
        let rep = b.simulate_hybrid(vec![]).unwrap();
        assert_eq!(rep.output, golden);
        assert!(rep.stats.queue_peak.iter().all(|&p| p <= 2), "{:?}", rep.stats.queue_peak);
    }

    #[test]
    fn split_points_force_multiple_busy_partitions() {
        let b =
            Compiler::new().partitions(2).split_points(vec![0.5, 0.5]).compile("t", SRC).unwrap();
        let s = b.stats();
        assert_eq!(s.partitions, 2);
        assert!(s.insts_per_partition.iter().all(|&n| n > 0), "{s:?}");
        assert!(s.queues >= 1, "forced even split must communicate: {s:?}");
    }

    #[test]
    fn recursion_rejected_by_default_allowed_when_opted_in() {
        let rec = "int fact(int n) { return n < 2 ? 1 : n * fact(n - 1); }\nint main() { out(fact(6)); return 0; }";
        let err = match Compiler::new().compile("t", rec) {
            Err(e) => e,
            Ok(_) => panic!("default compiler must reject recursion"),
        };
        assert!(err.msg.contains("recursion"), "{err}");
        let b = Compiler::new().allow_recursion(true).compile("t", rec).unwrap();
        assert_eq!(b.run_reference(vec![]).unwrap(), vec![720]);
        assert_eq!(b.simulate_hybrid(vec![]).unwrap().output, vec![720]);
    }

    #[test]
    fn builder_queue_depth_sets_declared_queue_depths() {
        let b = Compiler::new()
            .partitions(2)
            .split_points(vec![0.5, 0.5])
            .queue_depth(4)
            .compile("t", SRC)
            .unwrap();
        assert!(!b.dswp().module.queues.is_empty());
        assert!(b.dswp().module.queues.iter().all(|q| q.depth == 4));
        // The simulator override stays unset: declared depths rule.
        assert_eq!(b.sim_config().queue_depth, None);
    }

    #[test]
    fn hybrid_cycles_reported_nonzero_and_cpu_fraction_sane() {
        let b = Compiler::new().partitions(2).compile("t", SRC).unwrap();
        let rep = b.simulate_hybrid(vec![]).unwrap();
        assert!(rep.cycles > 0);
        assert!((0.0..=1.0).contains(&rep.cpu_busy_fraction), "{}", rep.cpu_busy_fraction);
        assert_eq!(rep.hw_threads, b.stats().hw_threads);
    }

    #[test]
    fn verilog_emitted_for_both_flows() {
        let b = Compiler::new().partitions(2).compile("t", SRC).unwrap();
        assert!(b.verilog().contains("module"));
        assert!(b.verilog_pure_hw().contains("module main"));
    }
}
