//! `twill-tune`: the profile-guided auto-tuner that closes the
//! obs → compiler loop (DESIGN.md §13).
//!
//! The tuner reads one instrumented hybrid run — [`SimMetrics`] for the
//! stall-class and queue counters, [`SourceProfile`] for line-granular
//! attribution — and searches two arms to minimize hybrid cycles:
//!
//! * **queue-depth** — a queue whose high-water mark pins its depth while
//!   charging full-stall cycles is saturated; trials raise its simulator
//!   cap ([`SimConfig::queue_depths`]), which reuses the cached DSWP
//!   artifact and HLS schedule, so these trials cost one simulation each.
//! * **split-point** — when the software master is the critical thread the
//!   pipeline is CPU-bound, so trials lower `sw_fraction`; when a hardware
//!   thread is critical they raise it. These trials fork a [`TwillBuild`]
//!   on the same [`crate::artifacts::BuildGraph`], so repartitioning is
//!   memoized per option set.
//!
//! Every evaluated configuration becomes a [`TrialRecord`] naming the
//! observability signal and C line that proposed it; the final
//! [`TuningReport`] proves the win through the diff engine. Acceptance is
//! strictly-improving greedy, so the tuned configuration never has more
//! cycles than the paper default.
//!
//! Determinism contract: the search reads no clock and no ambient state.
//! Randomness comes from one [`SplitMix64`] stream seeded by
//! [`TuneOptions::seed`], consumed in proposal order; trials are evaluated
//! in parallel but recorded in proposal order. Same program, input, and
//! seed ⇒ byte-identical report and search trace.

use std::collections::BTreeMap;

use twill_obs::{
    diff, CycleBreakdown, ObsSignal, SimMetrics, SourceProfile, TrialRecord, TunedConfig,
    TuningReport,
};
use twill_rt::fault::SplitMix64;
use twill_rt::{SimConfig, SimError};

use crate::{Compiler, TwillBuild};

/// Largest queue depth the tuner will propose (64 words keeps the FIFO
/// BRAM cost plausible for the paper's Atlys-class part).
const MAX_QUEUE_DEPTH: u32 = 64;
/// Saturated queues considered per round, busiest first.
const QUEUES_PER_ROUND: usize = 2;

/// Knobs of the search itself (the *searched* knobs live in
/// [`TunedConfig`]).
#[derive(Clone, Debug)]
pub struct TuneOptions {
    /// Seed of the search's PRNG (candidate sub-sampling).
    pub seed: u64,
    /// Maximum propose→evaluate rounds; the search also stops at the
    /// first round where no trial beats the incumbent.
    pub max_rounds: usize,
    /// Worker threads for evaluating a round's trials in parallel.
    pub threads: usize,
    /// Benchmark name for the report; source lines are attributed to
    /// `<bench>.c`.
    pub bench: String,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            seed: 0,
            max_rounds: 4,
            threads: twill_passes::par::default_threads(),
            bench: "program".into(),
        }
    }
}

/// What [`tune`] hands back: the self-proving report plus the two ways to
/// replay the winning configuration.
pub struct TuneOutcome {
    pub report: TuningReport,
    /// Replays the tuned config on the tuned build's graph: accepted
    /// queue depths as simulator caps (cheap — reuses cached artifacts).
    pub cfg: SimConfig,
    /// Rebuilds the tuned config from scratch: accepted depths baked into
    /// the *declared* FIFO depths (so Verilog and the area model see
    /// them) and the accepted `sw_fraction` applied.
    pub compiler: Compiler,
    /// Events dropped from the baseline run's trace ring. Always 0 unless
    /// the caller armed tracing via `base_cfg.trace_events`; a non-zero
    /// value means the observability data behind the tuning report is
    /// incomplete (the `--strict-obs` signal).
    pub dropped_events: u64,
}

/// Floor of the `sw_fraction` grid: the software master keeps only the
/// work DSWP cannot move (the "drain the master" probe).
const SW_FLOOR: f64 = 0.02;
/// A hardware thread busier than this never triggers a merge proposal.
const UNDERUTILIZED: f64 = 0.5;

/// One candidate configuration change. Partition moves carry the
/// `sw_fraction` they repartition at: merging threads and draining the
/// software master often only pay off *together* (neither alone beats
/// the default), so the compound is a single greedy move.
#[derive(Clone, Debug)]
enum Move {
    QueueDepth { queue: usize, from: u32, to: u32 },
    SwFraction { from: f64, to: f64 },
    Partitions { from: usize, to: usize, sw_from: f64, sw: f64 },
}

/// A proposed move with its full provenance.
#[derive(Clone, Debug)]
struct Candidate {
    mv: Move,
    arm: &'static str,
    action: String,
    signal: ObsSignal,
}

/// Search DSWP split points and per-queue depths to minimize hybrid
/// cycles for `input`, starting from `build`'s configuration. `base_cfg`
/// supplies the simulation parameters (HLS options, latencies, loop
/// mode); trials run with `profile` forced on and event tracing off —
/// both observation-only, so trial cycle counts equal plain-run counts
/// and the "tuned is never slower" guarantee transfers. The baseline run
/// honors the caller's `trace_events` ring, and any truncation it suffers
/// is reported via [`TuneOutcome::dropped_events`].
///
/// Fails only if the *baseline* run fails; trials that deadlock or time
/// out are recorded as worthless (`u64::MAX` would lie — they are simply
/// skipped) and never accepted.
pub fn tune(
    build: &TwillBuild,
    input: &[i32],
    base_cfg: &SimConfig,
    opts: &TuneOptions,
) -> Result<TuneOutcome, SimError> {
    let file = format!("{}.c", opts.bench);
    let mut rng = SplitMix64::new(opts.seed);

    // Trial template: profiling on (free in cycle terms), tracing off.
    let mut trial_cfg = base_cfg.clone();
    trial_cfg.profile = true;
    trial_cfg.trace_events = 0;

    // The baseline run alone keeps the caller's event ring: it is the one
    // run whose trace a caller may want to inspect, and its drop count is
    // surfaced so truncation is never silent. Tracing is observation-only,
    // so trial cycle counts still equal baseline cycle counts.
    let baseline_cfg = SimConfig { trace_events: base_cfg.trace_events, ..trial_cfg.clone() };
    let base_rep = build.simulate_hybrid_with(input.to_vec(), &baseline_cfg)?;
    let base_metrics = base_rep.metrics();
    let base_profile = base_rep.source_profile(&build.dswp().module);

    let mut trials = vec![TrialRecord {
        id: 0,
        round: 0,
        arm: "baseline".into(),
        action: "paper default".into(),
        signal: ObsSignal::baseline(),
        cycles: base_rep.cycles,
        best_before: u64::MAX,
        accepted: true,
        stalls: crit_breakdown(&base_metrics),
    }];
    let mut hints: Vec<String> = Vec::new();

    // Search state. `tuned_build` is Some once a repartitioning move
    // (split-point or partition-merge) landed; accepted queue depths live
    // in `trial_cfg.queue_depths` so every later trial inherits them.
    let mut tuned_build: Option<TwillBuild> = None;
    let mut accepted_partitions: Option<usize> = None;
    let mut accepted_sw: Option<f64> = None;
    let mut accepted_depths: BTreeMap<usize, u32> = BTreeMap::new();
    let mut best_cycles = base_rep.cycles;
    let mut best_metrics = base_metrics.clone();
    let mut best_profile = base_profile;

    let mut rounds = 0;
    for round in 1..=opts.max_rounds {
        let cur_sw = accepted_sw.unwrap_or(build.dswp_opts.sw_fraction);
        let cur_p = accepted_partitions.unwrap_or(build.dswp_opts.num_partitions);
        let cands = propose(&best_metrics, best_profile.as_ref(), cur_sw, cur_p, &file, &mut rng);
        if cands.is_empty() {
            break;
        }
        rounds = round;

        let cur: &TwillBuild = tuned_build.as_ref().unwrap_or(build);
        let results = twill_passes::par::par_map(&cands, opts.threads, |_, cand| {
            evaluate(build, cur, cur_p, input, &trial_cfg, cand)
        });

        // Accept the best strictly-improving trial (ties: first proposed).
        let winner = results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|e| (i, e.cycles)))
            .filter(|&(_, c)| c < best_cycles)
            .min_by_key(|&(i, c)| (c, i))
            .map(|(i, _)| i);

        for (i, cand) in cands.iter().enumerate() {
            let accepted = Some(i) == winner;
            let (cycles, stalls) = match &results[i] {
                Some(e) => (e.cycles, crit_breakdown(&e.metrics)),
                // Failed trial (deadlock/timeout): record the failure as
                // "no better than baseline" with an empty breakdown.
                None => (u64::MAX, CycleBreakdown::default()),
            };
            trials.push(TrialRecord {
                id: trials.len(),
                round,
                arm: cand.arm.into(),
                action: cand.action.clone(),
                signal: cand.signal.clone(),
                cycles,
                best_before: best_cycles,
                accepted,
                stalls,
            });
        }

        let Some(w) = winner else { break };
        let eval = results[w].as_ref().expect("winner evaluated");
        let cand = &cands[w];
        hints.push(hint_for(cand));
        match cand.mv {
            Move::QueueDepth { queue, to, .. } => {
                accepted_depths.insert(queue, to);
                trial_cfg.queue_depths.push((queue, to));
            }
            Move::SwFraction { to, .. } => {
                // Repartitioning renumbers the queues, so depth overrides
                // tuned against the old partitioning are dropped.
                accepted_sw = Some(to);
                accepted_depths.clear();
                trial_cfg.queue_depths.clear();
                tuned_build = Some(fork(build, cur_p, to).build_on(build.graph()));
            }
            Move::Partitions { to, sw, .. } => {
                accepted_partitions = Some(to);
                if (sw - build.dswp_opts.sw_fraction).abs() > 1e-12 {
                    accepted_sw = Some(sw);
                }
                accepted_depths.clear();
                trial_cfg.queue_depths.clear();
                tuned_build = Some(fork(build, to, sw).build_on(build.graph()));
            }
        }
        best_cycles = eval.cycles;
        best_metrics = eval.metrics.clone();
        best_profile = eval.profile.clone();
    }

    let tuned = TunedConfig {
        partitions: accepted_partitions,
        sw_fraction: accepted_sw,
        queue_depths: accepted_depths.iter().map(|(&q, &d)| (q, d)).collect(),
    };
    let report = TuningReport {
        bench: opts.bench.clone(),
        seed: opts.seed,
        rounds,
        baseline_cycles: base_rep.cycles,
        tuned_cycles: best_cycles,
        trials,
        tuned: tuned.clone(),
        diff: diff(&base_metrics, &best_metrics),
        hints,
    };

    // Replay config: the user's cfg plus the accepted simulator caps.
    let repartitioned = accepted_sw.is_some() || accepted_partitions.is_some();
    let mut cfg = base_cfg.clone();
    cfg.queue_depths = if repartitioned {
        tuned.queue_depths.clone()
    } else {
        let mut qd = base_cfg.queue_depths.clone();
        qd.extend(tuned.queue_depths.iter().copied());
        qd
    };
    // From-scratch compiler: depths become declared FIFO depths.
    let mut compiler = if repartitioned {
        fork(
            build,
            accepted_partitions.unwrap_or(build.dswp_opts.num_partitions),
            accepted_sw.unwrap_or(build.dswp_opts.sw_fraction),
        )
    } else {
        Compiler {
            dswp: build.dswp_opts.clone(),
            pipeline: twill_passes::PipelineOptions::default(),
            hls: build.hls,
            allow_recursion: false,
            hw_counters: build.hw_counters(),
        }
    };
    compiler.dswp.queue_depth_overrides.extend(tuned.queue_depths.iter().copied());

    Ok(TuneOutcome { report, cfg, compiler, dropped_events: base_rep.dropped_events })
}

/// A successfully simulated trial.
struct Eval {
    cycles: u64,
    metrics: SimMetrics,
    profile: Option<SourceProfile>,
}

fn evaluate(
    base: &TwillBuild,
    cur: &TwillBuild,
    cur_p: usize,
    input: &[i32],
    trial_cfg: &SimConfig,
    cand: &Candidate,
) -> Option<Eval> {
    let rep = match &cand.mv {
        Move::QueueDepth { queue, to, .. } => {
            let mut cfg = trial_cfg.clone();
            cfg.queue_depths.push((*queue, *to));
            cur.simulate_hybrid_with(input.to_vec(), &cfg).ok()?
        }
        mv @ (Move::SwFraction { .. } | Move::Partitions { .. }) => {
            let (p, sw) = match mv {
                Move::SwFraction { to, .. } => (cur_p, *to),
                Move::Partitions { to, sw, .. } => (*to, *sw),
                Move::QueueDepth { .. } => unreachable!(),
            };
            // Fresh partitioning: old queue ids are meaningless here.
            let mut cfg = trial_cfg.clone();
            cfg.queue_depths.clear();
            let f = fork(base, p, sw).build_on(base.graph());
            let rep = f.simulate_hybrid_with(input.to_vec(), &cfg).ok()?;
            let metrics = rep.metrics();
            let profile = rep.source_profile(&f.dswp().module);
            return Some(Eval { cycles: rep.cycles, metrics, profile });
        }
    };
    let metrics = rep.metrics();
    let profile = rep.source_profile(&cur.dswp().module);
    Some(Eval { cycles: rep.cycles, metrics, profile })
}

/// Compiler for a repartitioning fork of `build` at `partitions = p`,
/// `sw_fraction = sw`. Explicit split points and old depth overrides are
/// dropped: the tuner owns the split now.
fn fork(build: &TwillBuild, p: usize, sw: f64) -> Compiler {
    let mut dswp = build.dswp_opts.clone();
    dswp.num_partitions = p;
    dswp.sw_fraction = sw;
    dswp.split_points = None;
    dswp.queue_depth_overrides.clear();
    Compiler {
        dswp,
        pipeline: twill_passes::PipelineOptions::default(),
        hls: build.hls,
        allow_recursion: false,
        hw_counters: build.hw_counters(),
    }
}

/// Propose this round's candidates from the incumbent's observability
/// artifacts. Deterministic given (metrics, profile, rng state).
fn propose(
    m: &SimMetrics,
    sp: Option<&SourceProfile>,
    cur_sw: f64,
    cur_p: usize,
    file: &str,
    rng: &mut SplitMix64,
) -> Vec<Candidate> {
    let mut out = Vec::new();

    // -- queue-depth arm: saturated queues, busiest first ----------------
    let mut sat: Vec<usize> = (0..m.queues.len())
        .filter(|&i| {
            let q = &m.queues[i];
            q.full_stalls > 0 && q.high_water >= q.depth && q.depth < MAX_QUEUE_DEPTH
        })
        .collect();
    sat.sort_by_key(|&i| (std::cmp::Reverse(m.queues[i].full_stalls), i));
    sat.truncate(QUEUES_PER_ROUND);
    for i in sat {
        let q = &m.queues[i];
        let (line, pct, thread) = attribute(sp, None, |c| c.queue_full);
        let signal = ObsSignal {
            kind: "queue-full-saturated".into(),
            detail: format!(
                "{} high-water {}/{} with {} full-stall cycle(s)",
                q.name, q.high_water, q.depth, q.full_stalls
            ),
            queue: Some(i),
            thread,
            file: if line > 0 { file.into() } else { String::new() },
            line,
            stall_class: "queue-full".into(),
            charge_pct: pct,
        };
        for to in [q.depth * 2, q.depth * 4] {
            let to = to.min(MAX_QUEUE_DEPTH);
            if to <= q.depth {
                continue;
            }
            if out.iter().any(|c: &Candidate| {
                matches!(c.mv, Move::QueueDepth { queue, to: t, .. } if queue == i && t == to)
            }) {
                continue;
            }
            out.push(Candidate {
                mv: Move::QueueDepth { queue: i, from: q.depth, to },
                arm: "queue-depth",
                action: format!("{} depth {}\u{2192}{}", q.name, q.depth, to),
                signal: signal.clone(),
            });
        }
    }

    // -- split-point arm: move work away from the critical thread --------
    if let Some(ci) = m.critical_thread() {
        let t = &m.threads[ci];
        if m.cycles > 0 && t.busy > 0 {
            let busy_pct = 100.0 * t.busy as f64 / m.cycles as f64;
            let cpu_bound = ci == 0;
            let starved = t.queue_empty > 0;
            let (kind, stall_class, mut fracs): (&str, &str, Vec<f64>) = if cpu_bound {
                // Software master bounds the pipeline: shrink its share.
                (
                    "critical-thread-cpu",
                    "busy",
                    [0.4, 0.6, 0.8].iter().map(|k| (cur_sw * k).max(SW_FLOOR)).collect(),
                )
            } else if starved {
                // The critical hardware thread waits on empty queues fed
                // by the software master: drain the master's share so
                // operands arrive ahead of the consumer.
                (
                    "critical-thread-starved",
                    "queue-empty",
                    vec![(cur_sw * 0.4).max(SW_FLOOR), SW_FLOOR],
                )
            } else {
                // A purely-busy hardware thread bounds it: give the CPU
                // more of the work.
                (
                    "critical-thread-hw",
                    "busy",
                    [1.5, 2.0, 2.5].iter().map(|k| (cur_sw * k).min(0.9)).collect(),
                )
            };
            fracs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
            fracs.retain(|f| (*f - cur_sw).abs() > 1e-9);
            // Seeded sub-sampling: drop one candidate so the seed shapes
            // the walk (and the trial budget stays small).
            if fracs.len() > 2 {
                let drop = (rng.next_u64() % fracs.len() as u64) as usize;
                fracs.remove(drop);
            }
            let class = if stall_class == "queue-empty" {
                (|c: &CycleBreakdown| c.queue_empty) as fn(&CycleBreakdown) -> u64
            } else {
                (|c: &CycleBreakdown| c.busy) as fn(&CycleBreakdown) -> u64
            };
            let (line, pct, _) = attribute(sp, Some(&t.name), class);
            let detail = if starved && !cpu_bound {
                format!(
                    "{} is the critical thread yet waits on empty queues {:.0}% of {} cycles",
                    t.name,
                    100.0 * t.queue_empty as f64 / m.cycles as f64,
                    m.cycles
                )
            } else {
                format!(
                    "{} is the critical thread ({:.0}% busy of {} cycles)",
                    t.name, busy_pct, m.cycles
                )
            };
            let signal = ObsSignal {
                kind: kind.into(),
                detail,
                queue: None,
                thread: Some(t.name.clone()),
                file: if line > 0 { file.into() } else { String::new() },
                line,
                stall_class: stall_class.into(),
                charge_pct: pct,
            };
            for f in fracs {
                out.push(Candidate {
                    mv: Move::SwFraction { from: cur_sw, to: f },
                    arm: "split-point",
                    action: format!("sw_fraction {:.3}\u{2192}{:.3}", cur_sw, f),
                    signal: signal.clone(),
                });
            }
        }
    }

    // -- partition arm: merge threads the partitioner can't keep busy ----
    // Compound candidates (partitions, sw_fraction): see [`Move`].
    let actual = m.threads.len(); // 1 software master + materialized HW
    let mut merges: Vec<(usize, f64)> = Vec::new();
    let mut signal: Option<ObsSignal> = None;
    if cur_p > actual && actual >= 2 {
        // DSWP could not fill the requested partition count; the declared
        // but empty partitions still shape the split targets.
        merges.extend([(actual, cur_sw), (actual, SW_FLOOR)]);
        let crit = m.critical_thread().map(|i| m.threads[i].name.clone());
        let (line, pct, _) = attribute(sp, crit.as_deref(), |c| c.queue_empty);
        signal = Some(ObsSignal {
            kind: "partition-collapse".into(),
            detail: format!(
                "requested {} partitions but only {} materialized ({} hw thread(s))",
                cur_p,
                actual,
                actual - 1
            ),
            queue: None,
            thread: crit,
            file: if line > 0 { file.into() } else { String::new() },
            line,
            stall_class: "queue-empty".into(),
            charge_pct: pct,
        });
    } else if actual > 2 {
        let (li, lt) = m.threads[1..]
            .iter()
            .enumerate()
            .min_by_key(|(i, t)| (t.busy, *i))
            .map(|(i, t)| (i + 1, t))
            .expect("at least one hw thread");
        let util = lt.busy as f64 / m.cycles.max(1) as f64;
        if util < UNDERUTILIZED && cur_p > 2 {
            for p in [cur_p - 1, 2] {
                for sw in [cur_sw, SW_FLOOR] {
                    if !merges.contains(&(p, sw)) {
                        merges.push((p, sw));
                    }
                }
            }
            let (name, _) = lt.dominant_stall();
            let class = match name {
                "queue-full" => (|c: &CycleBreakdown| c.queue_full) as fn(&CycleBreakdown) -> u64,
                "sem" => |c: &CycleBreakdown| c.sem,
                "idle" => |c: &CycleBreakdown| c.idle,
                _ => |c: &CycleBreakdown| c.queue_empty,
            };
            let (line, pct, _) = attribute(sp, Some(&m.threads[li].name), class);
            signal = Some(ObsSignal {
                kind: "underutilized-hw-thread".into(),
                detail: format!(
                    "{} is busy only {:.0}% of {} cycles (dominant stall: {})",
                    lt.name,
                    100.0 * util,
                    m.cycles,
                    name
                ),
                queue: None,
                thread: Some(lt.name.clone()),
                file: if line > 0 { file.into() } else { String::new() },
                line,
                stall_class: name.into(),
                charge_pct: pct,
            });
        }
    }
    if let Some(signal) = signal {
        merges.retain(|&(p, sw)| p != cur_p || (sw - cur_sw).abs() > 1e-9);
        // Same seeded sub-sampling as the split arm.
        while merges.len() > 3 {
            let drop = (rng.next_u64() % merges.len() as u64) as usize;
            merges.remove(drop);
        }
        for (p, sw) in merges {
            let action = if (sw - cur_sw).abs() > 1e-9 {
                format!("partitions {cur_p}\u{2192}{p} + sw_fraction {cur_sw:.3}\u{2192}{sw:.3}")
            } else {
                format!("partitions {cur_p}\u{2192}{p}")
            };
            out.push(Candidate {
                mv: Move::Partitions { from: cur_p, to: p, sw_from: cur_sw, sw },
                arm: "partition-merge",
                action,
                signal: signal.clone(),
            });
        }
    }
    out
}

/// Line-granular attribution: the 1-based C line charging the most
/// cycles to `class` (optionally restricted to one thread), the share of
/// the class total it carries, and the thread it ran on. `(0, 0.0, _)`
/// when the profile has no attributable line.
fn attribute(
    sp: Option<&SourceProfile>,
    thread: Option<&str>,
    class: fn(&CycleBreakdown) -> u64,
) -> (u32, f64, Option<String>) {
    let Some(sp) = sp else { return (0, 0.0, thread.map(String::from)) };
    let mut total = 0u64;
    let mut lines: BTreeMap<u32, u64> = BTreeMap::new();
    for s in &sp.samples {
        if thread.is_some_and(|t| t != s.thread) {
            continue;
        }
        let v = class(&s.cycles);
        total += v;
        if s.line > 0 && v > 0 {
            *lines.entry(s.line).or_default() += v;
        }
    }
    // Smallest line wins ties, so attribution is order-independent.
    let best = lines.iter().max_by_key(|&(l, v)| (*v, std::cmp::Reverse(*l)));
    let Some((&line, &val)) = best else { return (0, 0.0, thread.map(String::from)) };
    let who = thread.map(String::from).or_else(|| {
        sp.samples
            .iter()
            .filter(|s| s.line == line && class(&s.cycles) > 0)
            .max_by_key(|s| class(&s.cycles))
            .map(|s| s.thread.clone())
    });
    let pct = if total > 0 { 100.0 * val as f64 / total as f64 } else { 0.0 };
    (line, pct, who)
}

/// The report hint for an accepted move, ISSUE-shaped: *"depth of q2
/// raised 8→32 because line 41 of jpeg.c charged 61% of stalls to
/// queue-full"*.
fn hint_for(cand: &Candidate) -> String {
    let s = &cand.signal;
    let because = if s.line > 0 {
        format!(
            "line {} of {} charged {:.0}% of {} to {}",
            s.line,
            s.file,
            s.charge_pct,
            if s.stall_class == "busy" { "busy cycles" } else { "stalls" },
            s.stall_class
        )
    } else {
        s.detail.clone()
    };
    match cand.mv {
        Move::QueueDepth { queue, from, to } => {
            format!("depth of q{queue} raised {from}\u{2192}{to} because {because}")
        }
        Move::SwFraction { from, to } => format!(
            "sw_fraction {} {from:.3}\u{2192}{to:.3} because {} ({because})",
            if to < from { "lowered" } else { "raised" },
            s.detail
        ),
        Move::Partitions { from, to, sw_from, sw } => {
            let sw_part = if (sw - sw_from).abs() > 1e-9 {
                format!(" with sw_fraction {sw_from:.3}\u{2192}{sw:.3}")
            } else {
                String::new()
            };
            format!(
                "partitions merged {from}\u{2192}{to}{sw_part} because {} ({because})",
                s.detail
            )
        }
    }
}

/// Stall-class breakdown of the critical thread of a run.
fn crit_breakdown(m: &SimMetrics) -> CycleBreakdown {
    let Some(i) = m.critical_thread() else { return CycleBreakdown::default() };
    let t = &m.threads[i];
    CycleBreakdown {
        busy: t.busy,
        queue_full: t.queue_full,
        queue_empty: t.queue_empty,
        sem: t.sem,
        mem_bus: t.mem_bus,
        module_bus: t.module_bus,
        idle: t.idle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
int main() {
  int acc = 0;
  for (int i = 0; i < 200; i++) {
    int x = (i * 7 + 3) ^ (i << 2);
    int y = (x % 13) * (x % 7) + (x >> 1);
    acc += (y % 11) * (y % 11) - (x & 15);
  }
  out(acc);
  return 0;
}
"#;

    fn opts(seed: u64) -> TuneOptions {
        TuneOptions { seed, max_rounds: 3, threads: 2, bench: "demo".into() }
    }

    #[test]
    fn tuned_never_slower_and_output_preserved() {
        let b = Compiler::new().partitions(3).compile("demo", SRC).unwrap();
        let cfg = b.sim_config();
        let out = tune(&b, &[], &cfg, &opts(1)).unwrap();
        let r = &out.report;
        assert!(r.tuned_cycles <= r.baseline_cycles, "{} > {}", r.tuned_cycles, r.baseline_cycles);
        // The replay config reproduces the tuned cycle count on the
        // tuned build (or the original when no split move landed).
        let replay = match r.tuned.sw_fraction {
            Some(_) => out.compiler.build_on(b.graph()).simulate_hybrid_with(vec![], &out.cfg),
            None => b.simulate_hybrid_with(vec![], &out.cfg),
        }
        .unwrap();
        assert_eq!(replay.cycles, r.tuned_cycles);
        assert_eq!(replay.output, b.run_reference(vec![]).unwrap());
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let b = Compiler::new().partitions(3).compile("demo", SRC).unwrap();
        let cfg = b.sim_config();
        let a = tune(&b, &[], &cfg, &opts(7)).unwrap().report;
        let b2 = tune(&b, &[], &cfg, &opts(7)).unwrap().report;
        assert_eq!(a.to_json(), b2.to_json());
        assert_eq!(a.search_trace(), b2.search_trace());
    }

    #[test]
    fn every_nonbaseline_trial_names_its_signal() {
        let b = Compiler::new().partitions(3).compile("demo", SRC).unwrap();
        let cfg = b.sim_config();
        let r = tune(&b, &[], &cfg, &opts(3)).unwrap().report;
        for t in r.trials.iter().skip(1) {
            assert_ne!(t.signal.kind, "baseline", "{:?}", t);
            assert!(!t.signal.detail.is_empty(), "{:?}", t);
        }
        // Diff proof reconciles exactly with the headline delta.
        let total: i64 = r.diff.attribution.iter().map(|c| c.delta).sum();
        assert_eq!(total, r.tuned_cycles as i64 - r.baseline_cycles as i64);
    }
}
