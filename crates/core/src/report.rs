//! Area and power reporting in the paper's terms (Table 6.2, Fig 6.1).

use crate::TwillBuild;
use twill_hls::area::{
    estimate_function_area, estimate_module_area, microblaze_area, perf_counter_area, runtime_area,
    AreaReport,
};
use twill_hls::power::{fig_6_1_configs, power_mw};

/// The four columns of Table 6.2 for one program.
#[derive(Debug, Clone, Copy)]
pub struct AreaBreakdown {
    /// Pure LegUp translation of the whole program.
    pub legup: AreaReport,
    /// LUTs of the Twill-generated HW threads only.
    pub twill_hw_threads: AreaReport,
    /// HW threads + runtime system (queues, semaphores, buses, scheduler).
    pub twill_total: AreaReport,
    /// Everything plus the Microblaze soft core.
    pub twill_plus_microblaze: AreaReport,
}

pub fn area_breakdown(b: &TwillBuild) -> AreaBreakdown {
    let legup = estimate_module_area(b.prepared(), b.pure_schedule());

    // Twill HW threads: only functions that actually run in hardware
    // (nonempty hardware-partition versions reachable from the HW entry
    // points).
    let hw_funcs = hw_reachable_functions(b);
    let mut twill_hw = AreaReport::default();
    for fid in &hw_funcs {
        twill_hw.add(estimate_function_area(b.hybrid_schedule().for_func(*fid)));
    }

    let dswp = b.dswp();
    let hw_threads = dswp.threads.iter().filter(|t| t.is_hw).count() as u32;
    let mut twill_total = twill_hw;
    twill_total.add(runtime_area(&dswp.module, hw_threads, 1));
    if b.hw_counters() {
        // Instrumentation is not free: charge the twill_perf register file
        // (one bank covering the CPU track + every HW thread and queue).
        twill_total.add(perf_counter_area(hw_threads + 1, dswp.module.queues.len() as u32));
    }

    let mut twill_mb = twill_total;
    twill_mb.add(microblaze_area());

    AreaBreakdown {
        legup,
        twill_hw_threads: twill_hw,
        twill_total,
        twill_plus_microblaze: twill_mb,
    }
}

/// Functions reachable from the hardware threads' entry points.
fn hw_reachable_functions(b: &TwillBuild) -> Vec<twill_ir::FuncId> {
    let dswp = b.dswp();
    let m = &dswp.module;
    let mut keep = vec![false; m.funcs.len()];
    let mut stack: Vec<twill_ir::FuncId> =
        dswp.threads.iter().filter(|t| t.is_hw).map(|t| t.entry).collect();
    for f in &stack {
        keep[f.index()] = true;
    }
    while let Some(f) = stack.pop() {
        let func = m.func(f);
        for (_, iid) in func.inst_ids_in_layout() {
            if let twill_ir::Op::Call(c, _) = &func.inst(iid).op {
                if !keep[c.index()] {
                    keep[c.index()] = true;
                    stack.push(*c);
                }
            }
        }
    }
    (0..m.funcs.len()).filter(|&i| keep[i]).map(twill_ir::FuncId::new).collect()
}

/// Fig 6.1's three power numbers (mW): pure SW, pure HW, Twill hybrid.
#[derive(Debug, Clone, Copy)]
pub struct PowerBreakdown {
    pub pure_sw_mw: f64,
    pub pure_hw_mw: f64,
    pub twill_mw: f64,
}

impl PowerBreakdown {
    /// Normalized to the pure-SW implementation (the figure's y-axis).
    pub fn normalized(&self) -> (f64, f64, f64) {
        (1.0, self.pure_hw_mw / self.pure_sw_mw, self.twill_mw / self.pure_sw_mw)
    }
}

pub fn power_breakdown(b: &TwillBuild, twill_cpu_util: f64) -> PowerBreakdown {
    let areas = area_breakdown(b);
    let (sw, hw, twill) = fig_6_1_configs(areas.legup, areas.twill_total, twill_cpu_util);
    PowerBreakdown {
        pure_sw_mw: power_mw(&sw),
        pure_hw_mw: power_mw(&hw),
        twill_mw: power_mw(&twill),
    }
}

/// Simple fixed-width table formatting for the experiment binaries.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncol) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", c, width = widths[i]));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formatting_aligns() {
        let t = format_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["longer".into(), "123456".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("123456"));
    }

    #[test]
    fn hw_counters_charge_area_overhead() {
        let src =
            "int main() { int s = 0; for (int i = 0; i < 40; i++) s += i * i; out(s); return 0; }";
        let plain = crate::Compiler::new().partitions(3).compile("t", src).unwrap();
        let counted =
            crate::Compiler::new().partitions(3).hw_counters(true).compile("t", src).unwrap();
        let a = area_breakdown(&plain);
        let b = area_breakdown(&counted);
        assert_eq!(a.twill_hw_threads.luts, b.twill_hw_threads.luts);
        assert!(
            b.twill_total.luts > a.twill_total.luts,
            "twill_perf must cost LUTs: {} vs {}",
            b.twill_total.luts,
            a.twill_total.luts
        );
        assert!(b.twill_plus_microblaze.luts > a.twill_plus_microblaze.luts);
    }

    #[test]
    fn power_ordering_matches_fig_6_1() {
        let b = crate::Compiler::new().partitions(3).compile(
            "t",
            "int main() { int s = 0; for (int i = 0; i < 40; i++) s += i * i; out(s); return 0; }",
        )
        .unwrap();
        let p = power_breakdown(&b, 0.25);
        let (sw, hw, twill) = p.normalized();
        assert_eq!(sw, 1.0);
        assert!(hw < twill, "pure HW lowest: {hw} vs {twill}");
        assert!(twill < 1.0, "Twill below pure SW: {twill}");
    }
}
