//! The staged artifact build pipeline.
//!
//! A [`BuildGraph`] owns one program's compilation artifacts as a chain of
//! lazily-computed, memoized stages:
//!
//! ```text
//! source ──frontend──▶ raw IR ──passes──▶ prepared IR ──dswp(opts)──▶
//!     partitioned module ──hls(opts)──▶ schedules ──▶ verilog
//!                 └────────hls(opts)──▶ pure-HW schedule (LegUp baseline)
//! ```
//!
//! Each stage runs at most once per distinct input: the linear stages
//! (frontend, passes) live behind [`OnceLock`] cells; the fan-out stages
//! (DSWP, HLS scheduling, Verilog emission) live in hash maps keyed by an
//! FNV-1a content hash of their inputs (module text + option bits). Sweep
//! drivers that vary only `SimConfig` knobs or DSWP split points therefore
//! reuse every upstream artifact instead of recompiling from source — the
//! Fig 6.3–6.6 experiments build one graph per benchmark and fork cheap
//! [`crate::TwillBuild`] views off it.
//!
//! [`StageCounts`] exposes how many times each stage actually executed, so
//! tests can assert both laziness (a stage never demanded never runs) and
//! memoization (a stage demanded N times runs once).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use twill_dswp::{run_dswp, DswpOptions, DswpResult};
use twill_frontend::CError;
use twill_hls::schedule::{schedule_module_threads, HlsOptions, ModuleSchedule};
use twill_ir::Module;
use twill_obs::Span;

/// Minimal FNV-1a 64-bit hasher — deterministic across runs and platforms
/// (unlike `DefaultHasher`), which keeps artifact keys stable.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bool(&mut self, v: bool) {
        self.bytes(&[v as u8]);
    }
    fn finish(self) -> u64 {
        self.0
    }
}

/// Content hash of a module: FNV-1a over its printed text. The printer is
/// a total serialization of everything downstream stages read (functions,
/// globals, queues, semaphores), so equal hashes ⇒ equal compile inputs.
pub fn hash_module(m: &Module) -> u64 {
    let mut h = Fnv::new();
    h.bytes(twill_ir::printer::print_module(m).as_bytes());
    h.finish()
}

fn hash_dswp_opts(h: &mut Fnv, o: &DswpOptions) {
    h.u64(o.num_partitions as u64);
    h.f64(o.sw_fraction);
    match &o.split_points {
        None => h.u64(0),
        Some(sp) => {
            h.u64(1 + sp.len() as u64);
            for &x in sp {
                h.f64(x);
            }
        }
    }
    h.u64(o.queue_depth as u64);
    h.u64(o.queue_depth_overrides.len() as u64);
    for &(id, depth) in &o.queue_depth_overrides {
        h.u64(id as u64);
        h.u64(depth as u64);
    }
    h.bool(o.prune);
    h.bool(o.phi_const_pairs);
    h.bool(o.reuse_queues);
    h.bool(o.freq_weights);
    h.bool(o.pin_call_subtrees);
}

fn hash_hls_opts(h: &mut Fnv, o: &HlsOptions) {
    h.bool(o.chaining);
    h.bool(o.loop_pipelining);
    h.u64(o.multipliers as u64);
    h.u64(o.dividers as u64);
}

fn schedule_key(module_hash: u64, hls: &HlsOptions) -> u64 {
    let mut h = Fnv::new();
    h.u64(module_hash);
    hash_hls_opts(&mut h, hls);
    h.finish()
}

/// How many times each pipeline stage has actually executed on a graph.
/// Cache hits do not count; this is the "work done" ledger the laziness
/// and memoization tests assert over.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageCounts {
    /// mini-C → raw IR lowerings.
    pub frontend: usize,
    /// Preparation-pipeline runs (`run_standard_pipeline`).
    pub passes: usize,
    /// DSWP partitionings (one per distinct `DswpOptions`).
    pub dswp: usize,
    /// HLS module schedulings (one per distinct module × `HlsOptions`).
    pub hls: usize,
    /// Verilog emissions.
    pub verilog: usize,
    /// Counter register-map JSON artifact generations (only demanded by
    /// `--hw-counters` flows; stays 0 during baseline collection).
    pub regmap: usize,
    /// DSWP demands answered from the cache.
    pub dswp_hits: usize,
    /// Schedule demands answered from the cache.
    pub hls_hits: usize,
    /// Verilog demands answered from the cache.
    pub verilog_hits: usize,
    /// Register-map demands answered from the cache.
    pub regmap_hits: usize,
}

impl StageCounts {
    /// Total stage executions (cache misses — the work actually done).
    pub fn runs(&self) -> usize {
        self.frontend + self.passes + self.dswp + self.hls + self.verilog + self.regmap
    }

    /// Total demands answered from a memoization cache.
    pub fn hits(&self) -> usize {
        self.dswp_hits + self.hls_hits + self.verilog_hits + self.regmap_hits
    }
}

#[derive(Default)]
struct StageCounters {
    frontend: AtomicUsize,
    passes: AtomicUsize,
    dswp: AtomicUsize,
    hls: AtomicUsize,
    verilog: AtomicUsize,
    regmap: AtomicUsize,
    dswp_hits: AtomicUsize,
    hls_hits: AtomicUsize,
    verilog_hits: AtomicUsize,
    regmap_hits: AtomicUsize,
}

/// A DSWP run plus the content hash of its partitioned module; the hash
/// keys the downstream schedule/Verilog caches without re-printing the
/// module on every lookup.
pub struct DswpArtifact {
    pub result: DswpResult,
    pub module_hash: u64,
}

enum GraphInput {
    /// mini-C source: the frontend and pass stages are live.
    Source { source: String, allow_recursion: bool },
    /// Seeded directly with a prepared module (e.g. from
    /// `twill_chstone::compile_and_prepare`): frontend/passes never run.
    Prepared,
}

/// One program's staged, memoized compilation artifacts. Create with
/// [`BuildGraph::from_source`] or [`BuildGraph::from_prepared`], wrap in an
/// [`Arc`], and fork per-configuration [`crate::TwillBuild`]s off it with
/// [`crate::Compiler::build_on`]. All stage accessors take `&self`; the
/// graph is `Sync`, so sweep points may also demand stages from worker
/// threads — each stage still runs exactly once.
pub struct BuildGraph {
    name: String,
    input: GraphInput,
    pipeline: twill_passes::PipelineOptions,
    /// Fan-out width for the parallel per-function stages (passes, HLS).
    /// Any width produces byte-identical artifacts; see `twill_passes::par`.
    threads: usize,
    frontend: OnceLock<Result<Module, CError>>,
    prepared: OnceLock<Module>,
    prepared_hash: OnceLock<u64>,
    dswp: Mutex<HashMap<u64, Arc<DswpArtifact>>>,
    schedules: Mutex<HashMap<u64, Arc<ModuleSchedule>>>,
    verilog: Mutex<HashMap<u64, Arc<String>>>,
    regmaps: Mutex<HashMap<u64, Arc<String>>>,
    counters: StageCounters,
    /// Wall-clock span per stage *execution* (cache hits record nothing),
    /// on the shared [`twill_obs::now_ns`] epoch.
    spans: Mutex<Vec<Span>>,
}

impl BuildGraph {
    /// A graph over mini-C source. Nothing is compiled yet; call
    /// [`BuildGraph::ensure_frontend`] to surface syntax/semantic errors
    /// eagerly (as [`crate::Compiler::compile`] does).
    pub fn from_source(
        name: &str,
        source: &str,
        allow_recursion: bool,
        pipeline: twill_passes::PipelineOptions,
    ) -> BuildGraph {
        BuildGraph::new(
            name,
            GraphInput::Source { source: source.to_string(), allow_recursion },
            pipeline,
        )
    }

    /// A graph seeded with an already-prepared module: the frontend and
    /// pass stages are pre-satisfied and their counters stay at zero.
    pub fn from_prepared(name: &str, prepared: Module) -> BuildGraph {
        let g = BuildGraph::new(name, GraphInput::Prepared, Default::default());
        g.prepared.set(prepared).expect("fresh graph");
        g
    }

    fn new(name: &str, input: GraphInput, pipeline: twill_passes::PipelineOptions) -> BuildGraph {
        BuildGraph {
            name: name.to_string(),
            input,
            pipeline,
            threads: twill_passes::par::default_threads(),
            frontend: OnceLock::new(),
            prepared: OnceLock::new(),
            prepared_hash: OnceLock::new(),
            dswp: Mutex::new(HashMap::new()),
            schedules: Mutex::new(HashMap::new()),
            verilog: Mutex::new(HashMap::new()),
            regmaps: Mutex::new(HashMap::new()),
            counters: StageCounters::default(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Time `f` as one execution of `stage` and remember the span.
    fn timed<T>(&self, stage: &str, f: impl FnOnce() -> T) -> T {
        let (value, span) = Span::record(stage, f);
        self.spans.lock().unwrap().push(span);
        value
    }

    /// Override the per-function fan-out width (before sharing the graph).
    /// `1` is the reference serial pipeline; the determinism tests compare
    /// widths against it.
    pub fn threads(mut self, n: usize) -> BuildGraph {
        self.threads = n.max(1);
        self
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Snapshot of how many times each stage has run so far, plus how
    /// many demands its memoization caches have absorbed.
    pub fn counters(&self) -> StageCounts {
        StageCounts {
            frontend: self.counters.frontend.load(Ordering::Relaxed),
            passes: self.counters.passes.load(Ordering::Relaxed),
            dswp: self.counters.dswp.load(Ordering::Relaxed),
            hls: self.counters.hls.load(Ordering::Relaxed),
            verilog: self.counters.verilog.load(Ordering::Relaxed),
            regmap: self.counters.regmap.load(Ordering::Relaxed),
            dswp_hits: self.counters.dswp_hits.load(Ordering::Relaxed),
            hls_hits: self.counters.hls_hits.load(Ordering::Relaxed),
            verilog_hits: self.counters.verilog_hits.load(Ordering::Relaxed),
            regmap_hits: self.counters.regmap_hits.load(Ordering::Relaxed),
        }
    }

    /// Wall-clock spans of every stage execution so far, in completion
    /// order (feed to [`twill_obs::TraceBuilder::spans`] for the Perfetto
    /// compiler timeline).
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().unwrap().clone()
    }

    /// Force the frontend stage so lex/parse/semantic errors surface as a
    /// `Result` instead of a later panic. No-op for prepared-module graphs.
    pub fn ensure_frontend(&self) -> Result<(), CError> {
        if self.prepared.get().is_some() {
            return Ok(());
        }
        self.frontend_ir().map(|_| ())
    }

    fn frontend_ir(&self) -> Result<&Module, CError> {
        self.frontend
            .get_or_init(|| {
                let GraphInput::Source { source, allow_recursion } = &self.input else {
                    unreachable!("prepared-module graphs never demand the frontend stage")
                };
                self.counters.frontend.fetch_add(1, Ordering::Relaxed);
                self.timed("frontend", || {
                    twill_frontend::compile_with(&self.name, source, *allow_recursion)
                })
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// The optimized single-threaded module (frontend + preparation
    /// pipeline). Panics on frontend errors — call
    /// [`BuildGraph::ensure_frontend`] first to handle them gracefully.
    pub fn prepared(&self) -> &Module {
        self.prepared.get_or_init(|| {
            let mut m = self
                .frontend_ir()
                .unwrap_or_else(|e| panic!("frontend error in '{}': {e}", self.name))
                .clone();
            self.counters.passes.fetch_add(1, Ordering::Relaxed);
            self.timed("passes", || {
                twill_passes::run_standard_pipeline_threads(&mut m, &self.pipeline, self.threads);
            });
            m
        })
    }

    /// Content hash of the prepared module (computed once).
    pub fn prepared_hash(&self) -> u64 {
        *self.prepared_hash.get_or_init(|| hash_module(self.prepared()))
    }

    /// DSWP-partition the prepared module under `opts`, memoized per
    /// distinct option set.
    pub fn dswp(&self, opts: &DswpOptions) -> Arc<DswpArtifact> {
        let key = {
            let mut h = Fnv::new();
            h.u64(self.prepared_hash());
            hash_dswp_opts(&mut h, opts);
            h.finish()
        };
        let mut cache = self.dswp.lock().unwrap();
        if let Some(hit) = cache.get(&key) {
            self.counters.dswp_hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.counters.dswp.fetch_add(1, Ordering::Relaxed);
        let result = self.timed("dswp", || run_dswp(self.prepared(), opts));
        let module_hash = hash_module(&result.module);
        let art = Arc::new(DswpArtifact { result, module_hash });
        cache.insert(key, art.clone());
        art
    }

    /// HLS-schedule `module` under `hls`, memoized on
    /// (`module_hash`, option bits). The caller vouches that `module_hash`
    /// is [`hash_module`] of `module` — the two always travel together
    /// ([`BuildGraph::prepared_hash`], [`DswpArtifact::module_hash`]).
    pub fn schedule_for(
        &self,
        module: &Module,
        module_hash: u64,
        hls: &HlsOptions,
    ) -> Arc<ModuleSchedule> {
        let key = schedule_key(module_hash, hls);
        let mut cache = self.schedules.lock().unwrap();
        if let Some(hit) = cache.get(&key) {
            self.counters.hls_hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.counters.hls.fetch_add(1, Ordering::Relaxed);
        let sched =
            Arc::new(self.timed("hls", || schedule_module_threads(module, hls, self.threads)));
        cache.insert(key, sched.clone());
        sched
    }

    /// Schedule of the whole prepared module as one hardware design (the
    /// LegUp pure-HW baseline). Lazy: never runs if the caller only
    /// simulates hybrid or pure-SW configurations.
    pub fn pure_schedule(&self, hls: &HlsOptions) -> Arc<ModuleSchedule> {
        let h = self.prepared_hash();
        self.schedule_for(self.prepared(), h, hls)
    }

    /// Verilog for `module` under `hls`, memoized like
    /// [`BuildGraph::schedule_for`] (and reusing its schedule).
    pub fn verilog_for(&self, module: &Module, module_hash: u64, hls: &HlsOptions) -> Arc<String> {
        self.verilog_for_opts(module, module_hash, hls, &twill_hls::EmitOptions::default())
    }

    /// [`BuildGraph::verilog_for`] with explicit emission switches
    /// (`--hw-counters`). Counters-on and counters-off artifacts memoize
    /// under distinct keys, so a sweep mixing both never serves the wrong
    /// text.
    pub fn verilog_for_opts(
        &self,
        module: &Module,
        module_hash: u64,
        hls: &HlsOptions,
        emit: &twill_hls::EmitOptions,
    ) -> Arc<String> {
        let key = {
            let mut h = Fnv::new();
            h.u64(schedule_key(module_hash, hls));
            h.bool(emit.hw_counters);
            h.u64(emit.threads.len() as u64);
            for t in &emit.threads {
                h.bytes(t.as_bytes());
                h.bytes(&[0xff]);
            }
            h.finish()
        };
        if let Some(hit) = self.verilog.lock().unwrap().get(&key) {
            self.counters.verilog_hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        // Compute the schedule before re-taking the verilog lock so the
        // two caches are only ever locked one at a time.
        let sched = self.schedule_for(module, module_hash, hls);
        let mut cache = self.verilog.lock().unwrap();
        if let Some(hit) = cache.get(&key) {
            self.counters.verilog_hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.counters.verilog.fetch_add(1, Ordering::Relaxed);
        let text = Arc::new(
            self.timed("verilog", || twill_hls::verilog::emit_module_with(module, &sched, emit)),
        );
        cache.insert(key, text.clone());
        text
    }

    /// The counter register-map JSON artifact for `module` instrumented
    /// with agent tracks `threads`, memoized per (module, track list).
    /// Emitted next to the Verilog by `twillc --emit-regmap`.
    pub fn regmap_for(&self, module: &Module, module_hash: u64, threads: &[String]) -> Arc<String> {
        let key = {
            let mut h = Fnv::new();
            h.u64(module_hash);
            h.u64(threads.len() as u64);
            for t in threads {
                h.bytes(t.as_bytes());
                h.bytes(&[0xff]);
            }
            h.finish()
        };
        let mut cache = self.regmaps.lock().unwrap();
        if let Some(hit) = cache.get(&key) {
            self.counters.regmap_hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.counters.regmap.fetch_add(1, Ordering::Relaxed);
        let opts = twill_hls::EmitOptions { hw_counters: true, threads: threads.to_vec() };
        let json = Arc::new(self.timed("regmap", || opts.regmap(module).to_json()));
        cache.insert(key, json.clone());
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
int main() {
  int acc = 0;
  for (int i = 0; i < 24; i++) {
    acc += (i * 5) ^ (acc >> 1);
  }
  out(acc);
  return 0;
}
"#;

    fn graph() -> BuildGraph {
        BuildGraph::from_source("t", SRC, false, Default::default())
    }

    #[test]
    fn stages_are_lazy_until_demanded() {
        let g = graph();
        assert_eq!(g.counters(), StageCounts::default());
        g.ensure_frontend().unwrap();
        assert_eq!(g.counters().frontend, 1);
        assert_eq!(g.counters().passes, 0);
        let _ = g.prepared();
        assert_eq!(g.counters().passes, 1);
        assert_eq!(g.counters().dswp, 0);
        assert_eq!(g.counters().hls, 0);
    }

    #[test]
    fn stages_memoize_per_distinct_input() {
        let g = graph();
        let o2 = DswpOptions { num_partitions: 2, ..Default::default() };
        let o3 = DswpOptions { num_partitions: 3, ..Default::default() };
        let a = g.dswp(&o2);
        let b = g.dswp(&o2);
        assert!(Arc::ptr_eq(&a, &b), "same opts must hit the cache");
        let _ = g.dswp(&o3);
        assert_eq!(g.counters().dswp, 2, "distinct opts recompute");
        assert_eq!(g.counters().passes, 1, "upstream stages still ran once");

        let hls = HlsOptions::default();
        let s1 = g.schedule_for(&a.result.module, a.module_hash, &hls);
        let s2 = g.schedule_for(&a.result.module, a.module_hash, &hls);
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(g.counters().hls, 1);
        let _ = g.pure_schedule(&hls);
        assert_eq!(g.counters().hls, 2, "pure-HW schedule is a distinct module");
    }

    #[test]
    fn verilog_memoized_and_reuses_schedule() {
        let g = graph();
        let hls = HlsOptions::default();
        let v1 = g.verilog_for(g.prepared(), g.prepared_hash(), &hls);
        let v2 = g.verilog_for(g.prepared(), g.prepared_hash(), &hls);
        assert!(Arc::ptr_eq(&v1, &v2));
        assert_eq!(g.counters().verilog, 1);
        assert_eq!(g.counters().hls, 1);
    }

    #[test]
    fn counter_emission_memoizes_separately_from_plain_verilog() {
        let g = graph();
        let hls = HlsOptions::default();
        let plain = g.verilog_for(g.prepared(), g.prepared_hash(), &hls);
        let opts = twill_hls::EmitOptions { hw_counters: true, threads: vec!["cpu".into()] };
        let counted = g.verilog_for_opts(g.prepared(), g.prepared_hash(), &hls, &opts);
        assert_ne!(*plain, *counted, "instrumented text must differ");
        assert!(counted.contains("module twill_perf ("));
        assert_eq!(g.counters().verilog, 2, "two distinct emissions");
        // Each key hits its own cache entry; the schedule is shared.
        let again = g.verilog_for_opts(g.prepared(), g.prepared_hash(), &hls, &opts);
        assert!(Arc::ptr_eq(&counted, &again));
        assert_eq!(g.counters().hls, 1);

        let r1 = g.regmap_for(g.prepared(), g.prepared_hash(), &["cpu".to_string()]);
        let r2 = g.regmap_for(g.prepared(), g.prepared_hash(), &["cpu".to_string()]);
        assert!(Arc::ptr_eq(&r1, &r2));
        let c = g.counters();
        assert_eq!((c.regmap, c.regmap_hits), (1, 1));
        assert!(r1.contains("\"schema\": \"twill-regmap\""));
    }

    #[test]
    fn prepared_graph_skips_frontend_and_passes() {
        let g = graph();
        let prepared = g.prepared().clone();
        let seeded = BuildGraph::from_prepared("t", prepared);
        seeded.ensure_frontend().unwrap();
        let _ = seeded.dswp(&DswpOptions::default());
        let c = seeded.counters();
        assert_eq!((c.frontend, c.passes, c.dswp), (0, 0, 1));
    }

    #[test]
    fn module_hash_is_content_based() {
        let g1 = graph();
        let g2 = graph();
        assert_eq!(g1.prepared_hash(), g2.prepared_hash());
        let other = BuildGraph::from_source(
            "t",
            "int main() { out(1); return 0; }",
            false,
            Default::default(),
        );
        assert_ne!(g1.prepared_hash(), other.prepared_hash());
    }

    #[test]
    fn spans_and_hit_counters_track_cache_behaviour() {
        let g = graph();
        let o2 = DswpOptions { num_partitions: 2, ..Default::default() };
        let _ = g.dswp(&o2);
        let _ = g.dswp(&o2);
        let c = g.counters();
        assert_eq!((c.dswp, c.dswp_hits), (1, 1), "{c:?}");
        // One span per execution, none for the cache hit.
        let names: Vec<String> = g.spans().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, ["frontend", "passes", "dswp"]);
        assert_eq!(c.runs(), 3);
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn frontend_errors_are_memoized_too() {
        let g = BuildGraph::from_source("t", "int main( {", false, Default::default());
        assert!(g.ensure_frontend().is_err());
        assert!(g.ensure_frontend().is_err());
        assert_eq!(g.counters().frontend, 1);
    }
}
