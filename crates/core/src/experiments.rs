//! Regeneration of every table and figure in the paper's Chapter 6.
//!
//! Each function returns structured rows; the `twill-bench` binaries print
//! them and `EXPERIMENTS.md` records paper-vs-measured values.
//!
//! | Paper item | Function |
//! |---|---|
//! | Table 6.1 (queues/semaphores/HW threads)    | [`table_6_1`] |
//! | Table 6.2 (LUT columns)                     | [`table_6_2`] |
//! | Fig 6.1 (power, normalized to pure SW)      | [`fig_6_1`] |
//! | Fig 6.2 (speedups, normalized to pure SW)   | [`fig_6_2`] |
//! | Fig 6.3 (MIPS split-point sweep)            | [`fig_6_3_4`] |
//! | Fig 6.4 (Blowfish split-point sweep)        | [`fig_6_3_4`] |
//! | Fig 6.5 (queue-latency sweep)               | [`fig_6_5`] |
//! | Fig 6.6 (queue-size sweep)                  | [`fig_6_6`] |
//! | §6.4 Blowfish tuned heuristic               | [`blowfish_tuned`] |

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::artifacts::BuildGraph;
use crate::report::{power_breakdown, PowerBreakdown};
use crate::{Compiler, TwillBuild};
use chstone::Benchmark;

/// Process-wide artifact graph per benchmark: every table/figure in one
/// `twill-bench` run (and every sweep point within a figure) shares the
/// same memoized frontend/passes/DSWP/HLS artifacts, so each CHStone
/// program is compiled exactly once per process.
pub fn benchmark_graph(b: &Benchmark) -> Arc<BuildGraph> {
    static GRAPHS: OnceLock<Mutex<HashMap<String, Arc<BuildGraph>>>> = OnceLock::new();
    let mut map = GRAPHS.get_or_init(Default::default).lock().unwrap();
    map.entry(b.name.to_string())
        .or_insert_with(|| {
            Arc::new(BuildGraph::from_prepared(b.name, chstone::compile_and_prepare(b)))
        })
        .clone()
}

fn build_benchmark(b: &Benchmark) -> TwillBuild {
    Compiler::new().partitions(b.partitions).build_on(&benchmark_graph(b))
}

fn input(b: &Benchmark, scale: Option<u32>) -> Vec<i32> {
    chstone::input_for(b.name, scale.unwrap_or(b.default_scale))
}

/// Fan-out width for the Fig 6.3–6.6 sweeps: each sweep point's hybrid
/// simulation runs on its own thread. Points share the memoized build
/// artifacts read-only (`&DswpResult` / `&ModuleSchedule`) and each writes
/// only its own row slot, so any width produces rows byte-identical to the
/// serial loop (see `twill_passes::par`; pinned by
/// `sweep_rows_identical_serial_vs_parallel`).
fn sweep_threads() -> usize {
    twill_passes::par::default_threads()
}

// ---------------------------------------------------------------------------
// Table 6.1
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Table61Row {
    pub name: String,
    pub queues: usize,
    pub semaphores: usize,
    pub hw_threads: usize,
    /// Extraction products when forced to the paper's thread count with
    /// even targets (no cost-model stage merging) — closer to what the
    /// thesis' always-splitting partitioner reports.
    pub forced_queues: usize,
    pub forced_hw_threads: usize,
    /// Paper values for side-by-side comparison.
    pub paper_queues: usize,
    pub paper_semaphores: usize,
    pub paper_hw_threads: usize,
}

/// Paper Table 6.1 values (MIPS, ADPCM, AES, Blowfish, GSM, JPEG, MPEG-2,
/// SHA).
pub const PAPER_TABLE_6_1: [(&str, usize, usize, usize); 8] = [
    ("mips", 12, 0, 1),
    ("adpcm", 328, 0, 5),
    ("aes", 100, 0, 3),
    ("blowfish", 104, 2, 2),
    ("gsm", 65, 0, 3),
    ("jpeg", 576, 3, 6),
    ("motion", 47, 0, 4),
    ("sha", 82, 0, 1),
];

pub fn table_6_1() -> Vec<Table61Row> {
    chstone::all()
        .iter()
        .map(|b| {
            let graph = benchmark_graph(b);
            let build = Compiler::new().partitions(b.partitions).build_on(&graph);
            let s = build.stats();
            // Forced split at the paper's partition count (same graph: the
            // prepared module is shared, only the DSWP stage differs).
            let even = vec![1.0 / b.partitions as f64; b.partitions];
            let forced =
                Compiler::new().partitions(b.partitions).split_points(even).build_on(&graph);
            let fs = forced.stats();
            let paper = PAPER_TABLE_6_1.iter().find(|(n, ..)| *n == b.name).unwrap();
            Table61Row {
                name: b.name.into(),
                queues: s.queues,
                semaphores: s.semaphores,
                hw_threads: s.hw_threads,
                forced_queues: fs.queues,
                forced_hw_threads: fs.hw_threads,
                paper_queues: paper.1,
                paper_semaphores: paper.2,
                paper_hw_threads: paper.3,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 6.2
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Table62Row {
    pub name: String,
    pub legup_luts: u32,
    pub twill_hw_luts: u32,
    pub twill_luts: u32,
    pub twill_mb_luts: u32,
    pub paper: (u32, u32, u32, u32),
}

/// Paper Table 6.2 (LegUp, Twill HWThreads, Twill, Twill + Microblaze).
pub const PAPER_TABLE_6_2: [(&str, u32, u32, u32, u32); 8] = [
    ("mips", 2101, 1830, 2318, 3752),
    ("adpcm", 16893, 7182, 28682, 30116),
    ("aes", 16488, 8302, 15338, 16772),
    ("blowfish", 5872, 3293, 10493, 11927),
    ("gsm", 7397, 5888, 11983, 13417),
    ("jpeg", 31084, 18443, 56101, 57535),
    ("motion", 16295, 8116, 13467, 14901),
    ("sha", 12956, 7856, 13352, 14768),
];

pub fn table_6_2() -> Vec<Table62Row> {
    chstone::all()
        .iter()
        .map(|b| {
            let build = build_benchmark(b);
            let a = build.area();
            let p = PAPER_TABLE_6_2.iter().find(|(n, ..)| *n == b.name).unwrap();
            Table62Row {
                name: b.name.into(),
                legup_luts: a.legup.luts,
                twill_hw_luts: a.twill_hw_threads.luts,
                twill_luts: a.twill_total.luts,
                twill_mb_luts: a.twill_plus_microblaze.luts,
                paper: (p.1, p.2, p.3, p.4),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig 6.1 — power
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig61Row {
    pub name: String,
    pub power: PowerBreakdown,
    /// (pure SW, pure HW, Twill), normalized to pure SW.
    pub normalized: (f64, f64, f64),
}

pub fn fig_6_1(scale: Option<u32>) -> Vec<Fig61Row> {
    chstone::all()
        .iter()
        .map(|b| {
            let build = build_benchmark(b);
            let util =
                build.simulate_hybrid(input(b, scale)).map(|r| r.cpu_busy_fraction).unwrap_or(0.25);
            let power = power_breakdown(&build, util);
            Fig61Row { name: b.name.into(), normalized: power.normalized(), power }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig 6.2 — performance
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig62Row {
    pub name: String,
    pub sw_cycles: u64,
    pub hw_cycles: u64,
    pub twill_cycles: u64,
    pub hw_speedup: f64,
    pub twill_speedup: f64,
    pub twill_vs_hw: f64,
}

pub fn fig_6_2(scale: Option<u32>) -> Vec<Fig62Row> {
    chstone::all()
        .iter()
        .map(|b| {
            let build = build_benchmark(b);
            let inp = input(b, scale);
            let sw = build.simulate_pure_sw(inp.clone()).expect("pure SW sim");
            let hw = build.simulate_pure_hw(inp.clone()).expect("pure HW sim");
            let tw = build.simulate_hybrid(inp).expect("hybrid sim");
            assert_eq!(sw.output, hw.output, "{}: HW output diverged", b.name);
            assert_eq!(sw.output, tw.output, "{}: hybrid output diverged", b.name);
            Fig62Row {
                name: b.name.into(),
                sw_cycles: sw.cycles,
                hw_cycles: hw.cycles,
                twill_cycles: tw.cycles,
                hw_speedup: sw.cycles as f64 / hw.cycles as f64,
                twill_speedup: sw.cycles as f64 / tw.cycles as f64,
                twill_vs_hw: hw.cycles as f64 / tw.cycles as f64,
            }
        })
        .collect()
}

/// Geometric means reported under Fig 6.2 (paper: HW ≈ 13.6×, Twill ≈
/// 22.2×, Twill/HW ≈ 1.63×).
pub fn fig_6_2_geomeans(rows: &[Fig62Row]) -> (f64, f64, f64) {
    let n = rows.len() as f64;
    let g = |f: &dyn Fn(&Fig62Row) -> f64| -> f64 {
        (rows.iter().map(|r| f(r).ln()).sum::<f64>() / n).exp()
    };
    (g(&|r| r.hw_speedup), g(&|r| r.twill_speedup), g(&|r| r.twill_vs_hw))
}

// ---------------------------------------------------------------------------
// Fig 6.3 / 6.4 — split-point sweeps
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct SplitSweepRow {
    pub sw_target_percent: u32,
    pub cycles: u64,
    pub queues: usize,
    pub speedup_vs_sw: f64,
    /// Stall/utilization summary of this sweep point's hybrid run.
    pub metrics: twill_obs::MetricsSummary,
}

/// Sweep the targeted SW/HW split point for a benchmark with 2 partitions
/// (Fig 6.3: mips, Fig 6.4: blowfish).
pub fn fig_6_3_4(bench_name: &str, scale: Option<u32>) -> Vec<SplitSweepRow> {
    fig_6_3_4_with_threads(bench_name, scale, sweep_threads())
}

/// [`fig_6_3_4`] with an explicit fan-out width (`threads <= 1` runs the
/// plain serial loop).
pub fn fig_6_3_4_with_threads(
    bench_name: &str,
    scale: Option<u32>,
    threads: usize,
) -> Vec<SplitSweepRow> {
    let b = chstone::by_name(bench_name).expect("unknown benchmark");
    let graph = benchmark_graph(&b);
    let inp = input(&b, scale);
    let sw_cycles = twill_rt::simulate_pure_sw(graph.prepared(), inp.clone(), &Default::default())
        .expect("pure SW sim")
        .cycles;
    // Compile every point serially first — the graph memoizes per split
    // point and the stage-span log keeps a deterministic order — so the
    // fan-out below is simulation-only.
    let points: Vec<(u32, TwillBuild)> = [10u32, 20, 30, 40, 50, 60, 70, 80, 90]
        .into_iter()
        .map(|pct| {
            let frac = pct as f64 / 100.0;
            let build =
                Compiler::new().partitions(2).split_points(vec![frac, 1.0 - frac]).build_on(&graph);
            build.hybrid_schedule();
            (pct, build)
        })
        .collect();
    twill_passes::par::par_map(&points, threads, |_, (pct, build)| {
        let rep = build.simulate_hybrid(inp.clone()).expect("hybrid sim");
        SplitSweepRow {
            sw_target_percent: *pct,
            cycles: rep.cycles,
            queues: build.stats().queues,
            speedup_vs_sw: sw_cycles as f64 / rep.cycles as f64,
            metrics: rep.metrics().summary(),
        }
    })
}

// ---------------------------------------------------------------------------
// Fig 6.5 — queue latency sweep
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct LatencySweepRow {
    pub name: String,
    /// cycles at queue latency 2/4/8/16/32/64/128, normalized to latency 2.
    pub normalized: Vec<f64>,
    /// Stall/utilization summary at each latency point (tracks where the
    /// pipeline tips from compute-bound to communication-bound).
    pub metrics: Vec<twill_obs::MetricsSummary>,
}

pub const LATENCY_POINTS: [u32; 7] = [2, 4, 8, 16, 32, 64, 128];

pub fn fig_6_5(scale: Option<u32>) -> Vec<LatencySweepRow> {
    fig_6_5_with_threads(scale, sweep_threads())
}

/// [`fig_6_5`] with an explicit fan-out width (`threads <= 1` runs the
/// plain serial loop).
pub fn fig_6_5_with_threads(scale: Option<u32>, threads: usize) -> Vec<LatencySweepRow> {
    chstone::all()
        .iter()
        .map(|b| {
            let build = build_benchmark(b);
            let inp = input(b, scale);
            // Warm the DSWP artifact and schedule cache serially; the
            // latency points then only simulate.
            build.hybrid_schedule();
            let runs = twill_passes::par::par_map(&LATENCY_POINTS, threads, |_, &lat| {
                let cfg = twill_rt::SimConfig { queue_latency: lat, ..build.sim_config() };
                let rep = build.simulate_hybrid_with(inp.clone(), &cfg).expect("sim");
                (rep.cycles, rep.metrics().summary())
            });
            let base = runs[0].0 as f64;
            LatencySweepRow {
                name: b.name.into(),
                normalized: runs.iter().map(|r| base / r.0 as f64).collect(),
                metrics: runs.into_iter().map(|r| r.1).collect(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig 6.6 — queue size sweep
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct SizeSweepRow {
    pub name: String,
    /// speedup at queue depth 2/4/8/16/32, normalized to depth 8.
    pub normalized: Vec<f64>,
    /// Whether the design fits the Virtex-5 LX110T at each depth (the
    /// paper's 32-deep JPEG did not fit).
    pub fits_device: Vec<bool>,
    /// Stall/utilization summary at each depth point.
    pub metrics: Vec<twill_obs::MetricsSummary>,
}

pub const SIZE_POINTS: [u32; 5] = [2, 4, 8, 16, 32];

pub fn fig_6_6(scale: Option<u32>) -> Vec<SizeSweepRow> {
    fig_6_6_with_threads(scale, sweep_threads())
}

/// [`fig_6_6`] with an explicit fan-out width (`threads <= 1` runs the
/// plain serial loop).
pub fn fig_6_6_with_threads(scale: Option<u32>, threads: usize) -> Vec<SizeSweepRow> {
    chstone::all()
        .iter()
        .map(|b| {
            let build = build_benchmark(b);
            let inp = input(b, scale);
            // Warm the artifacts serially; the per-depth area math below is
            // pure, so the depth points are simulation + arithmetic only.
            build.hybrid_schedule();
            let hw_threads = build.dswp().threads.iter().filter(|t| t.is_hw).count() as u32;
            let hw_area = build.area().twill_hw_threads;
            let runs = twill_passes::par::par_map(&SIZE_POINTS, threads, |_, &depth| {
                let cfg = twill_rt::SimConfig { queue_depth: Some(depth), ..build.sim_config() };
                let rep = build.simulate_hybrid_with(inp.clone(), &cfg).expect("sim");
                // Area with this queue depth.
                let mut m2 = build.dswp().module.clone();
                for q in &mut m2.queues {
                    q.depth = depth;
                }
                let mut area = hw_area;
                area.add(twill_hls::area::runtime_area(&m2, hw_threads, 1));
                area.add(twill_hls::area::microblaze_area());
                (rep.cycles, twill_hls::area::fits_device(&area), rep.metrics().summary())
            });
            let base = runs[2].0 as f64; // depth 8 is the paper baseline
            SizeSweepRow {
                name: b.name.into(),
                normalized: runs.iter().map(|r| base / r.0 as f64).collect(),
                fits_device: runs.iter().map(|r| r.1).collect(),
                metrics: runs.into_iter().map(|r| r.2).collect(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// §6.4 — the Blowfish tuned-heuristic experiment
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct BlowfishTuned {
    pub default_cycles: u64,
    pub default_queues: usize,
    pub tuned_cycles: u64,
    pub tuned_queues: usize,
    pub hw_cycles: u64,
    /// Paper: tuned heuristic reached 1.89× over pure HW and cut queues
    /// from 92 to 34.
    pub tuned_vs_hw: f64,
}

/// The thesis' modified heuristic pins call subtrees so master control
/// stops ping-ponging; our equivalent keeps hot functions out of the
/// software stage and merges stages whose cut exceeds their work (both on
/// by default), so the "tuned" run here widens the search to more stage
/// counts while the "default" run disables the cost-model merge.
pub fn blowfish_tuned(scale: Option<u32>) -> BlowfishTuned {
    let b = chstone::by_name("blowfish").unwrap();
    let graph = benchmark_graph(&b);
    let inp = input(&b, scale);
    let cfg = twill_rt::SimConfig::default();
    let hw = twill_rt::simulate_pure_hw_scheduled(
        graph.prepared(),
        &graph.pure_schedule(&cfg.hls),
        inp.clone(),
        &cfg,
    )
    .expect("pure HW sim");

    // "Default" heuristic: fixed even split across the paper's partition
    // count (no cost model) — the configuration the thesis describes as
    // choosing poor partitions.
    let even = vec![1.0 / b.partitions as f64; b.partitions];
    let default_build =
        Compiler::new().partitions(b.partitions).split_points(even).build_on(&graph);
    let default_rep = default_build.simulate_hybrid(inp.clone()).expect("sim");

    // "Tuned": the full heuristic (loop-guarded SW + cost-model stage
    // selection).
    let tuned_build = Compiler::new().partitions(b.partitions).build_on(&graph);
    let tuned_rep = tuned_build.simulate_hybrid(inp).expect("sim");

    BlowfishTuned {
        default_cycles: default_rep.cycles,
        default_queues: default_build.stats().queues,
        tuned_cycles: tuned_rep.cycles,
        tuned_queues: tuned_build.stats().queues,
        hw_cycles: hw.cycles,
        tuned_vs_hw: hw.cycles as f64 / tuned_rep.cycles as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_6_1_has_all_benchmarks() {
        let rows = table_6_1();
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.queues > 0 || r.hw_threads <= 1, "{}: no queues", r.name);
        }
    }

    #[test]
    fn table_6_2_twill_hw_smaller_than_legup() {
        // The paper's area claim: Twill's HW threads need less logic than
        // the full LegUp translation (avg 1.73× decrease) because the
        // software thread absorbs part of the program. Our partitioner
        // only offloads setup code it can take *whole* (see DESIGN.md), so
        // the reduction shows on the benchmarks with one-shot setup loops
        // (mips/blowfish/motion/…) and not on those that split hot
        // pipelines across extra HW FSMs (aes).
        let rows = table_6_2();
        let mut smaller = 0;
        for r in &rows {
            if r.twill_hw_luts <= r.legup_luts + 8 {
                smaller += 1;
            }
            assert!(r.twill_mb_luts > r.twill_luts);
        }
        assert!(smaller >= 4, "HW-thread area should shrink on several: {rows:?}");
    }

    #[test]
    fn fig_6_1_ordering() {
        for row in fig_6_1(Some(1)) {
            let (sw, hw, twill) = row.normalized;
            assert_eq!(sw, 1.0);
            assert!(hw < 1.0, "{}: pure HW should be below SW", row.name);
            assert!(twill < 1.0, "{}: Twill should be below SW", row.name);
            assert!(hw <= twill + 1e-9, "{}: pure HW lowest", row.name);
        }
    }

    #[test]
    fn sweep_rows_identical_serial_vs_parallel() {
        // The sweep fan-out must be invisible: any thread count yields rows
        // byte-identical to the serial loop (same artifacts, same sims,
        // same slot order).
        let serial = fig_6_3_4_with_threads("mips", Some(1), 1);
        let parallel = fig_6_3_4_with_threads("mips", Some(1), 4);
        assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));

        let serial = fig_6_5_with_threads(Some(1), 1);
        let parallel = fig_6_5_with_threads(Some(1), 5);
        assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));

        let serial = fig_6_6_with_threads(Some(1), 1);
        let parallel = fig_6_6_with_threads(Some(1), 3);
        assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    }

    #[test]
    fn fig_6_5_latency_monotone_degradation() {
        // More queue latency never speeds a benchmark up.
        for row in fig_6_5(Some(1)) {
            assert!((row.normalized[0] - 1.0).abs() < 1e-9);
            for w in row.normalized.windows(2) {
                assert!(w[1] <= w[0] + 0.02, "{}: {:?}", row.name, row.normalized);
            }
            // Every sweep point carries its stall/utilization summary.
            assert_eq!(row.metrics.len(), LATENCY_POINTS.len());
            for m in &row.metrics {
                assert!(m.cycles > 0);
                assert!(m.utilization.iter().all(|u| (0.0..=1.0).contains(u)), "{m:?}");
                assert!((0.0..=1.0).contains(&m.stall_fraction), "{m:?}");
            }
        }
    }
}
