//! `twillc` — the Twill compiler as a command-line tool.
//!
//! ```console
//! twillc program.c [--partitions N] [--sw-fraction F] [--queue-depth D]
//!        [--queue-depths q0=4,q1=32]
//!        [--allow-recursion] [--run] [--input 1,2,3] [--emit-verilog FILE]
//!        [--emit-ir FILE] [--stats] [--profile] [--annotate]
//!        [--folded FILE] [--profile-json FILE] [--trace FILE]
//!        [--metrics FILE] [--metrics-text FILE] [--compare BASELINE]
//!        [--compare-profile PROFILE.json] [--compare-timeline TIMELINE.json]
//!        [--sample-interval N] [--timeline-out FILE] [--phases]
//!        [--obs-ring-capacity N]
//!        [--strict-obs] [--fault-rate R] [--fault-seed N]
//!        [--watchdog CYCLES] [--resilient] [--no-fast-forward]
//!        [--hw-counters] [--emit-regmap FILE] [--counter-dump FILE]
//!        [--tune] [--tune-report FILE] [--tune-trace FILE]
//!        [--tune-seed N] [--tune-rounds N]
//! ```
//!
//! `--hw-counters` instruments the emitted Verilog with the synthesizable
//! `twill_perf` register file (DESIGN.md §14): per-thread busy/stall/idle
//! cycle counters and per-queue push/pop/stall counters, readable over the
//! existing runtime interface. `--emit-regmap` writes the machine-readable
//! register map (JSON) that describes every readback word; `--counter-dump`
//! runs the hybrid simulation and writes the word-for-word counter dump a
//! host would read from the hardware — decode it against the register map
//! to recover the exact simulator metrics. Either artifact flag implies
//! `--hw-counters`. `--metrics-text` writes the run's metrics in the
//! Prometheus text exposition format for scrape-based dashboards.
//!
//! `--tune` runs the profile-guided auto-tuner (DESIGN.md §13): it
//! searches DSWP split points and per-queue depths to minimize hybrid
//! cycles and prints the tuning report — every accepted move names the
//! observability signal and C line that proposed it, and the win is
//! proved through the metrics diff engine. `--tune-report` writes the
//! full report as JSON; `--tune-trace` writes the *search itself* as a
//! Perfetto trace (one track per search arm, a counter track for
//! best-so-far cycles); `--tune-seed`/`--tune-rounds` control the seeded
//! deterministic search (same program + seed ⇒ byte-identical outputs).
//!
//! `--no-fast-forward` runs the simulator's naive tick-every-cycle loop
//! instead of the event-driven fast-forward core — an escape hatch for
//! cross-checking the two (they are observably identical by contract).
//!
//! `--fault-rate` injects deterministic faults (queue bit flips, drops,
//! duplications, transient hardware-thread stalls, memory upsets) at the
//! given per-cycle rate, seeded by `--fault-seed` (default 1) — same
//! seed, same faults; `--watchdog` sets the no-progress window before a
//! hung run is diagnosed into a wait-for-graph hang report; `--resilient`
//! retries a failing hybrid with fresh seeds and degrades to pure
//! software instead of failing.
//!
//! `--profile` prints the hybrid run's stall/utilization table plus
//! compiler-stage timings; `--annotate` reprints the C source with a
//! per-line cycles/stall-class gutter (plus the top stall sites);
//! `--folded` writes folded-stack lines for flamegraph tooling;
//! `--profile-json` writes the line-granular profile as JSON (feed it to
//! a later `--compare-profile`); `--trace` writes a Chrome/Perfetto
//! `trace_event` JSON (open at <https://ui.perfetto.dev>) with the
//! compiler stages and the cycle-level simulator timeline; `--metrics`
//! writes the structured metrics report as JSON; `--compare` diffs the
//! hybrid run against the matching entry of a recorded baseline
//! (`BENCH_baseline.json`) and prints the ranked cycle-delta attribution
//! — add `--compare-profile` with a previously saved `--profile-json`
//! file and the diff also names the source line the regression comes
//! from; `--obs-ring-capacity` bounds the `--trace` event ring (default
//! 2^20). `--strict-obs` turns observability data loss (trace
//! truncation) into a non-zero exit instead of just a warning.
//!
//! `--sample-interval N` snapshots every cycle-class and queue counter
//! each N cycles into a sampled timeline (printed as a per-interval
//! table); `--timeline-out` writes that timeline as JSON (feed it to a
//! later `--compare-timeline`); `--phases` segments the timeline into
//! execution phases — runs of intervals with the same dominant
//! stall-class signature — and names each phase's hottest C line;
//! `--compare-timeline` with a previously saved timeline makes
//! `--compare` attribute the cycle delta phase by phase ("the +41k
//! cycles come from phase 2 of 5"). Timeline flags without an explicit
//! `--sample-interval` default to one sample every 4096 cycles; a
//! sampled `--trace` additionally carries per-thread/per-class and
//! per-queue-occupancy counter tracks over time.

use std::process::ExitCode;
use twill::Compiler;

struct Args {
    source: Option<String>,
    partitions: usize,
    sw_fraction: Option<f64>,
    queue_depth: Option<u32>,
    queue_depths: Vec<(usize, u32)>,
    allow_recursion: bool,
    run: bool,
    input: Vec<i32>,
    emit_verilog: Option<String>,
    emit_ir: Option<String>,
    stats: bool,
    profile: bool,
    annotate: bool,
    folded: Option<String>,
    profile_json: Option<String>,
    trace: Option<String>,
    metrics: Option<String>,
    metrics_text: Option<String>,
    compare: Option<String>,
    compare_profile: Option<String>,
    compare_timeline: Option<String>,
    sample_interval: Option<u64>,
    timeline_out: Option<String>,
    phases: bool,
    ring_capacity: usize,
    strict_obs: bool,
    fault_rate: Option<f64>,
    fault_seed: u64,
    watchdog: Option<u64>,
    resilient: bool,
    no_fast_forward: bool,
    hw_counters: bool,
    emit_regmap: Option<String>,
    counter_dump: Option<String>,
    tune: bool,
    tune_report: Option<String>,
    tune_trace: Option<String>,
    tune_seed: u64,
    tune_rounds: usize,
}

/// Hybrid attempts before `--resilient` degrades to pure software.
const RESILIENT_ATTEMPTS: u32 = 3;

/// Sample window when a timeline flag is used without an explicit
/// `--sample-interval`: coarse enough to stay cheap on long runs, fine
/// enough that CHStone-sized programs still get several intervals.
const DEFAULT_SAMPLE_INTERVAL: u64 = 4096;

/// Parse `q0=4,q1=32` (the `q` prefix is optional) into per-queue depth
/// overrides. `None` on any malformed entry or a zero depth.
fn parse_queue_depths(list: &str) -> Option<Vec<(usize, u32)>> {
    let mut out = Vec::new();
    for entry in list.split(',').filter(|s| !s.is_empty()) {
        let (id, depth) = entry.split_once('=')?;
        let id = id.trim().strip_prefix('q').unwrap_or(id.trim());
        let depth: u32 = depth.trim().parse().ok()?;
        if depth == 0 {
            return None;
        }
        out.push((id.parse().ok()?, depth));
    }
    Some(out)
}

fn usage() -> ! {
    eprintln!(
        "usage: twillc <program.c> [--partitions N] [--sw-fraction F] \
         [--queue-depth D] [--queue-depths q0=4,q1=32] \
         [--allow-recursion] [--run] [--input a,b,c] \
         [--emit-verilog FILE] [--emit-ir FILE] [--stats] [--profile] \
         [--annotate] [--folded FILE] [--profile-json FILE] \
         [--trace FILE] [--metrics FILE] [--metrics-text FILE] \
         [--compare BASELINE] \
         [--compare-profile PROFILE.json] [--compare-timeline TIMELINE.json] \
         [--sample-interval N] [--timeline-out FILE] [--phases] \
         [--obs-ring-capacity N] \
         [--strict-obs] [--fault-rate R] [--fault-seed N] \
         [--watchdog CYCLES] [--resilient] [--no-fast-forward] \
         [--hw-counters] [--emit-regmap FILE] [--counter-dump FILE] \
         [--tune] [--tune-report FILE] [--tune-trace FILE] \
         [--tune-seed N] [--tune-rounds N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        source: None,
        partitions: 3,
        sw_fraction: None,
        queue_depth: None,
        queue_depths: Vec::new(),
        allow_recursion: false,
        run: false,
        input: Vec::new(),
        emit_verilog: None,
        emit_ir: None,
        stats: false,
        profile: false,
        annotate: false,
        folded: None,
        profile_json: None,
        trace: None,
        metrics: None,
        metrics_text: None,
        compare: None,
        compare_profile: None,
        compare_timeline: None,
        sample_interval: None,
        timeline_out: None,
        phases: false,
        ring_capacity: 1 << 20,
        strict_obs: false,
        fault_rate: None,
        fault_seed: 1,
        watchdog: None,
        resilient: false,
        no_fast_forward: false,
        hw_counters: false,
        emit_regmap: None,
        counter_dump: None,
        tune: false,
        tune_report: None,
        tune_trace: None,
        tune_seed: 0,
        tune_rounds: 4,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--partitions" => {
                args.partitions = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--sw-fraction" => {
                args.sw_fraction =
                    Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--queue-depth" => {
                args.queue_depth =
                    Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--queue-depths" => {
                let list = it.next().unwrap_or_else(|| usage());
                args.queue_depths = parse_queue_depths(&list).unwrap_or_else(|| usage());
            }
            "--allow-recursion" => args.allow_recursion = true,
            "--run" => args.run = true,
            "--input" => {
                let list = it.next().unwrap_or_else(|| usage());
                args.input = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--emit-verilog" => args.emit_verilog = Some(it.next().unwrap_or_else(|| usage())),
            "--emit-ir" => args.emit_ir = Some(it.next().unwrap_or_else(|| usage())),
            "--stats" => args.stats = true,
            "--profile" => args.profile = true,
            "--annotate" => args.annotate = true,
            "--folded" => args.folded = Some(it.next().unwrap_or_else(|| usage())),
            "--profile-json" => args.profile_json = Some(it.next().unwrap_or_else(|| usage())),
            "--trace" => args.trace = Some(it.next().unwrap_or_else(|| usage())),
            "--metrics" => args.metrics = Some(it.next().unwrap_or_else(|| usage())),
            "--metrics-text" => args.metrics_text = Some(it.next().unwrap_or_else(|| usage())),
            "--compare" => args.compare = Some(it.next().unwrap_or_else(|| usage())),
            "--compare-profile" => {
                args.compare_profile = Some(it.next().unwrap_or_else(|| usage()))
            }
            "--compare-timeline" => {
                args.compare_timeline = Some(it.next().unwrap_or_else(|| usage()))
            }
            "--sample-interval" => {
                args.sample_interval =
                    Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--timeline-out" => args.timeline_out = Some(it.next().unwrap_or_else(|| usage())),
            "--phases" => args.phases = true,
            "--strict-obs" => args.strict_obs = true,
            "--fault-rate" => {
                args.fault_rate =
                    Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--fault-seed" => {
                args.fault_seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--watchdog" => {
                args.watchdog =
                    Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--resilient" => args.resilient = true,
            "--no-fast-forward" => args.no_fast_forward = true,
            "--hw-counters" => args.hw_counters = true,
            "--emit-regmap" => args.emit_regmap = Some(it.next().unwrap_or_else(|| usage())),
            "--counter-dump" => args.counter_dump = Some(it.next().unwrap_or_else(|| usage())),
            "--tune" => args.tune = true,
            "--tune-report" => args.tune_report = Some(it.next().unwrap_or_else(|| usage())),
            "--tune-trace" => args.tune_trace = Some(it.next().unwrap_or_else(|| usage())),
            "--tune-seed" => {
                args.tune_seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--tune-rounds" => {
                args.tune_rounds = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--obs-ring-capacity" => {
                args.ring_capacity =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && args.source.is_none() => {
                args.source = Some(other.to_string())
            }
            _ => usage(),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let Some(path) = args.source.clone() else { usage() };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("twillc: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let name = std::path::Path::new(&path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("program")
        .to_string();

    // Either counter artifact flag implies instrumentation.
    let hw_counters = args.hw_counters || args.emit_regmap.is_some() || args.counter_dump.is_some();
    let mut compiler = Compiler::new()
        .partitions(args.partitions)
        .allow_recursion(args.allow_recursion)
        .hw_counters(hw_counters);
    if let Some(f) = args.sw_fraction {
        compiler = compiler.sw_fraction(f);
    }
    if let Some(d) = args.queue_depth {
        compiler = compiler.queue_depth(d);
    }
    if !args.queue_depths.is_empty() {
        compiler = compiler.queue_depths(args.queue_depths.clone());
    }

    let build = match compiler.compile(&name, &src) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{path}:{e}");
            return ExitCode::FAILURE;
        }
    };

    let s = build.stats();
    println!(
        "compiled {name}: {} partition(s), {} hardware thread(s), {} queue(s), {} semaphore(s)",
        s.partitions, s.hw_threads, s.queues, s.semaphores
    );

    if args.stats {
        let a = build.area();
        println!(
            "area: LegUp {} LUTs | Twill HW threads {} | + runtime {} | + Microblaze {}",
            a.legup.luts, a.twill_hw_threads.luts, a.twill_total.luts, a.twill_plus_microblaze.luts
        );
        println!("instructions per partition: {:?}", s.insts_per_partition);
    }

    if let Some(f) = &args.emit_ir {
        let text = twill_ir::printer::print_module(&build.dswp().module);
        if let Err(e) = std::fs::write(f, text) {
            eprintln!("twillc: cannot write {f}: {e}");
            return ExitCode::FAILURE;
        }
        println!("partitioned IR written to {f}");
    }

    if let Some(f) = &args.emit_verilog {
        if let Err(e) = std::fs::write(f, build.verilog().as_bytes()) {
            eprintln!("twillc: cannot write {f}: {e}");
            return ExitCode::FAILURE;
        }
        println!("hardware-thread Verilog written to {f}");
    }

    if let Some(f) = &args.emit_regmap {
        if let Err(e) = std::fs::write(f, build.regmap_json().as_bytes()) {
            eprintln!("twillc: cannot write {f}: {e}");
            return ExitCode::FAILURE;
        }
        println!("performance-counter register map written to {f}");
    }

    if args.tune || args.tune_report.is_some() || args.tune_trace.is_some() {
        // The tuner gets the same loop-mode/watchdog knobs as the main
        // run, but never fault injection: it optimizes the healthy
        // machine.
        let mut tune_cfg = build.sim_config();
        if let Some(w) = args.watchdog {
            tune_cfg.watchdog_window = w;
        }
        if args.no_fast_forward {
            tune_cfg.fast_forward = false;
        }
        let topts = twill::TuneOptions {
            seed: args.tune_seed,
            max_rounds: args.tune_rounds,
            bench: name.clone(),
            ..Default::default()
        };
        let outcome = match twill::tune(&build, &args.input, &tune_cfg, &topts) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("twillc: tuning baseline run failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", outcome.report.render_text());
        if let Some(f) = &args.tune_report {
            if let Err(e) = std::fs::write(f, outcome.report.to_json()) {
                eprintln!("twillc: cannot write {f}: {e}");
                return ExitCode::FAILURE;
            }
            println!("tuning report written to {f}");
        }
        if let Some(f) = &args.tune_trace {
            if let Err(e) = std::fs::write(f, outcome.report.search_trace()) {
                eprintln!("twillc: cannot write {f}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "search trace written to {f} ({} trial(s)) — open at https://ui.perfetto.dev",
                outcome.report.trials.len()
            );
        }
    }

    let line_profiling = args.annotate
        || args.folded.is_some()
        || args.profile_json.is_some()
        || args.compare_profile.is_some()
        // Phase reports name each phase's hottest C line, which needs
        // the line-granular profile of the same run.
        || args.phases
        || args.compare_timeline.is_some();
    let sampling = args.sample_interval.is_some()
        || args.timeline_out.is_some()
        || args.phases
        || args.compare_timeline.is_some();
    let observing = args.profile
        || args.trace.is_some()
        || args.metrics.is_some()
        || args.metrics_text.is_some()
        || args.counter_dump.is_some()
        || args.compare.is_some()
        || sampling
        || line_profiling;
    let mut obs_data_lost = false;
    if args.run || observing {
        // One hybrid run serves --run, --profile, --annotate, --folded,
        // --trace, --metrics and --compare; the event recorder is only
        // armed when a trace was requested, and per-instruction cycle
        // attribution only when a line-granular view was.
        let mut cfg = twill::SimulationConfig {
            trace_events: if args.trace.is_some() { args.ring_capacity } else { 0 },
            profile: line_profiling,
            sample_interval: sampling
                .then(|| args.sample_interval.unwrap_or(DEFAULT_SAMPLE_INTERVAL)),
            fault: args
                .fault_rate
                .map(|r| twill::FaultPlan::new(args.fault_seed, twill::FaultSpec::uniform(r))),
            ..build.sim_config()
        };
        if let Some(w) = args.watchdog {
            cfg.watchdog_window = w;
        }
        if args.no_fast_forward {
            cfg.fast_forward = false;
        }
        let tw = if args.resilient {
            match build.run_resilient(args.input.clone(), &cfg, RESILIENT_ATTEMPTS) {
                Ok(outcome) => {
                    for f in &outcome.failures {
                        eprintln!("twillc: {f}");
                    }
                    println!("resilient run served by {}", outcome.served_by);
                    outcome.report
                }
                Err(e) => {
                    eprintln!("twillc: resilient run failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            match build.simulate_hybrid_with(args.input.clone(), &cfg) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("twillc: hybrid simulation failed: {e}");
                    if let Some(hang) = e.hang_report() {
                        eprintln!("{hang}");
                    }
                    return ExitCode::FAILURE;
                }
            }
        };

        if args.run {
            let sw = build.simulate_pure_sw(args.input.clone());
            let hw = build.simulate_pure_hw(args.input.clone());
            match (sw, hw) {
                (Ok(sw), Ok(hw)) => {
                    if sw.output != tw.output || sw.output != hw.output {
                        if cfg.fault.is_some() {
                            // Expected failure mode under injection: the
                            // cross-configuration check caught it.
                            eprintln!("twillc: injected faults corrupted the output");
                        } else {
                            eprintln!("twillc: CONFIGURATION OUTPUTS DIVERGED (bug!)");
                        }
                        return ExitCode::FAILURE;
                    }
                    println!("output: {:?}", tw.output);
                    println!(
                        "cycles: pure SW {} | pure HW {} ({:.2}x) | Twill {} ({:.2}x vs SW, {:.2}x vs HW)",
                        sw.cycles,
                        hw.cycles,
                        sw.cycles as f64 / hw.cycles as f64,
                        tw.cycles,
                        sw.cycles as f64 / tw.cycles as f64,
                        hw.cycles as f64 / tw.cycles as f64
                    );
                }
                (sw, hw) => {
                    for (name, r) in [("SW", sw.err()), ("HW", hw.err())] {
                        if let Some(e) = r {
                            eprintln!("twillc: {name} simulation failed: {e}");
                        }
                    }
                    return ExitCode::FAILURE;
                }
            }
        }

        if args.profile {
            let c = build.graph().counters();
            let spans = build.graph().spans();
            println!(
                "{}",
                twill_obs::profile_report(
                    &name,
                    &tw.metrics(),
                    Some(twill_obs::StageSection { spans: &spans, runs: c.runs(), hits: c.hits() }),
                )
            );
        }

        if args.sample_interval.is_some() {
            let t = tw.timeline.as_ref().expect("sampling was enabled");
            print!("{}", twill_obs::timeline_table(t));
        }

        let source_profile = tw.source_profile(&build.dswp().module);

        if args.annotate {
            let sp = source_profile.as_ref().expect("profiling was enabled");
            print!("{}", sp.annotate_source(&src));
            println!();
            print!("{}", sp.report(10));
        }

        if let Some(f) = &args.folded {
            let sp = source_profile.as_ref().expect("profiling was enabled");
            if let Err(e) = std::fs::write(f, sp.folded_stacks()) {
                eprintln!("twillc: cannot write {f}: {e}");
                return ExitCode::FAILURE;
            }
            println!("folded stacks written to {f} (feed to flamegraph.pl / inferno)");
        }

        if let Some(f) = &args.profile_json {
            let sp = source_profile.as_ref().expect("profiling was enabled");
            if let Err(e) = std::fs::write(f, sp.to_json()) {
                eprintln!("twillc: cannot write {f}: {e}");
                return ExitCode::FAILURE;
            }
            println!("line-granular profile written to {f}");
        }

        if let Some(f) = &args.compare {
            let baseline = match twill_obs::Baseline::load(std::path::Path::new(f)) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("twillc: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let Some(entry) = baseline.find(&name, "hybrid") else {
                eprintln!("twillc: no `{name} hybrid` entry in {f}");
                return ExitCode::FAILURE;
            };
            // With a saved line-granular profile, name the source line
            // the regression comes from.
            let hint = args.compare_profile.as_ref().and_then(|pf| {
                let text = match std::fs::read_to_string(pf) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("twillc: cannot read {pf}: {e}");
                        std::process::exit(1);
                    }
                };
                let base_profile = twill_obs::json::parse(&text)
                    .and_then(|doc| twill_obs::SourceProfile::from_json(&doc))
                    .unwrap_or_else(|e| {
                        eprintln!("twillc: {pf}: {e}");
                        std::process::exit(1);
                    });
                let cur = source_profile.as_ref().expect("profiling was enabled");
                twill_obs::line_regression(&base_profile, cur)
            });
            let d = twill_obs::diff(&entry.metrics, &tw.metrics());
            let label = format!("{name} hybrid");
            if d.is_zero() {
                println!("compare {label}: identical to baseline ({} cycles)", entry.cycles());
            } else {
                let file = std::path::Path::new(&path)
                    .file_name()
                    .and_then(|s| s.to_str())
                    .unwrap_or(&path);
                print!("{}", d.render_text_with_line_hint(&label, hint.map(|(l, c)| (file, l, c))));
            }
        }

        if let Some(tf) = &args.compare_timeline {
            // Segment both timelines into phases and attribute the cycle
            // delta phase by phase; the per-phase deltas sum exactly to
            // the total because phases tile each run.
            let text = match std::fs::read_to_string(tf) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("twillc: cannot read {tf}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let base_t = match twill_obs::json::parse(&text)
                .and_then(|doc| twill_obs::Timeline::from_json(&doc))
            {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("twillc: {tf}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let t = tw.timeline.as_ref().expect("sampling was enabled");
            if base_t.sample_interval != t.sample_interval {
                eprintln!(
                    "twillc: WARN: baseline timeline sampled every {} cycles, this run \
                     every {} — phase alignment may be coarse",
                    base_t.sample_interval, t.sample_interval
                );
            }
            let base_phases = twill_obs::segment(&base_t);
            let mut new_phases = twill_obs::segment(t);
            if let Some(sp) = source_profile.as_ref() {
                new_phases.annotate(sp);
            }
            let cycle_delta = tw.cycles as i64 - base_t.total_cycles() as i64;
            let deltas = twill_obs::phase_attribution(&base_phases, &new_phases);
            if cycle_delta == 0 && deltas.iter().all(|d| d.delta == 0) {
                println!("compare timeline: identical phase timing ({} cycles)", tw.cycles);
            } else {
                print!("{}", twill_obs::render_phase_attribution(&deltas, cycle_delta));
            }
        }

        if let Some(f) = &args.trace {
            let json = tw.trace_builder().spans(build.graph().spans()).build();
            if let Err(e) = std::fs::write(f, json) {
                eprintln!("twillc: cannot write {f}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "Perfetto trace written to {f} ({} event(s), {} dropped) — open at https://ui.perfetto.dev",
                tw.events.len(),
                tw.dropped_events
            );
        }

        if let Some(f) = &args.timeline_out {
            let t = tw.timeline.as_ref().expect("sampling was enabled");
            if let Err(e) = std::fs::write(f, t.to_json()) {
                eprintln!("twillc: cannot write {f}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "sampled timeline written to {f} ({} interval(s) of {} cycles)",
                t.intervals.len(),
                t.sample_interval
            );
        }

        if args.phases {
            let t = tw.timeline.as_ref().expect("sampling was enabled");
            let mut pr = twill_obs::segment(t);
            if let Some(sp) = source_profile.as_ref() {
                pr.annotate(sp);
            }
            print!("{}", pr.render_text());
        }

        if let Some(f) = &args.metrics {
            if let Err(e) = std::fs::write(f, tw.metrics().to_json()) {
                eprintln!("twillc: cannot write {f}: {e}");
                return ExitCode::FAILURE;
            }
            println!("metrics JSON written to {f}");
        }

        if let Some(f) = &args.metrics_text {
            if let Err(e) = std::fs::write(f, tw.metrics().metrics_text()) {
                eprintln!("twillc: cannot write {f}: {e}");
                return ExitCode::FAILURE;
            }
            println!("Prometheus text metrics written to {f}");
        }

        if let Some(f) = &args.counter_dump {
            let dump = build.counter_bank(&tw).dump();
            if let Err(e) = std::fs::write(f, dump.to_json()) {
                eprintln!("twillc: cannot write {f}: {e}");
                return ExitCode::FAILURE;
            }
            println!("hardware counter dump written to {f} (decode with --emit-regmap)");
        }

        if tw.dropped_events > 0 {
            obs_data_lost = true;
            eprintln!(
                "twillc: WARN: trace truncated: {} event(s) dropped — \
                 raise --obs-ring-capacity",
                tw.dropped_events
            );
        }
    }
    if args.strict_obs && obs_data_lost {
        eprintln!("twillc: --strict-obs: observability data was lost");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
