//! Extended C-semantics conformance: each test compiles a small program
//! and checks the exact outputs against hand-computed C results.

fn run(src: &str, input: Vec<i32>) -> Vec<i32> {
    let m = twill_frontend::compile("t", src).unwrap();
    twill_ir::interp::run_main(&m, input, 50_000_000).unwrap().0
}

fn run_opt(src: &str, input: Vec<i32>) -> Vec<i32> {
    let mut m = twill_frontend::compile("t", src).unwrap();
    twill_passes::run_standard_pipeline(&mut m, &Default::default());
    twill_ir::interp::run_main(&m, input, 50_000_000).unwrap().0
}

fn check(src: &str, input: Vec<i32>, expect: &[i32]) {
    assert_eq!(run(src, input.clone()), expect, "unoptimized");
    assert_eq!(run_opt(src, input), expect, "optimized");
}

#[test]
fn comma_operator_in_for() {
    check(
        "int main() { int a = 0, b = 10; for (int i = 0; i < 5; i++, a++) b--; out(a); out(b); return 0; }",
        vec![],
        &[5, 5],
    );
}

#[test]
fn do_while_with_break() {
    check(
        r#"
int main() {
  int n = 0;
  do {
    n++;
    if (n == 7) break;
  } while (1);
  out(n);
  return 0;
}
"#,
        vec![],
        &[7],
    );
}

#[test]
fn pointer_comparisons() {
    check(
        r#"
int arr[8];
int main() {
  int *lo = &arr[1];
  int *hi = &arr[6];
  out(lo < hi);
  out(hi - lo);       /* element difference: 5 */
  out(lo == &arr[1]);
  return 0;
}
"#,
        vec![],
        &[1, 5, 1],
    );
}

#[test]
fn nested_ternaries() {
    let src = "int main() { int x = in(); out(x < 0 ? -1 : x == 0 ? 0 : 1); return 0; }";
    check(src, vec![-5], &[-1]);
    check(src, vec![0], &[0]);
    check(src, vec![99], &[1]);
}

#[test]
fn hex_char_and_escapes() {
    check(
        "int main() { out('A'); out('\\n'); out(0xFF); out('\\\\'); return 0; }",
        vec![],
        &[65, 10, 255, 92],
    );
}

#[test]
fn operator_precedence_torture() {
    // 2 + 3 * 4 << 1 | 5 & 3  ==  ((2 + (3*4)) << 1) | (5 & 3)  ==  28 | 1
    check("int main() { out(2 + 3 * 4 << 1 | 5 & 3); return 0; }", vec![], &[29]);
    // !0 + ~0  ==  1 + (-1)  ==  0
    check("int main() { out(!0 + ~0); return 0; }", vec![], &[0]);
    // -3 % 2 (C: remainder keeps dividend sign)
    check("int main() { out(-3 % 2); return 0; }", vec![], &[-1]);
}

#[test]
fn assignment_expressions_yield_values() {
    check(
        "int main() { int a; int b = (a = 5) + 1; out(a); out(b); int c = a += 2; out(c); return 0; }",
        vec![],
        &[5, 6, 7],
    );
}

#[test]
fn short_evaluation_order_left_to_right_calls() {
    check(
        r#"
int order[4];
int pos = 0;
int mark(int id) { order[pos] = id; pos++; return id; }
int main() {
  int s = mark(1) + mark(2) * mark(3);
  out(s);
  for (int i = 0; i < 3; i++) out(order[i]);
  return 0;
}
"#,
        vec![],
        &[7, 1, 2, 3],
    );
}

#[test]
fn global_scalar_initializers() {
    check(
        r#"
int a = 5;
int b = -7;
unsigned char c = 0xF0;
short d = 1 << 12;
int main() { out(a); out(b); out(c); out(d); return 0; }
"#,
        vec![],
        &[5, -7, 240, 4096],
    );
}

#[test]
fn while_condition_side_effects() {
    check(
        r#"
int main() {
  int n = 0;
  int budget = 5;
  while (budget-- > 0) n += 10;
  out(n);
  out(budget);
  return 0;
}
"#,
        vec![],
        &[50, -1],
    );
}

#[test]
fn array_of_shorts_stride() {
    check(
        r#"
short tab[6];
int main() {
  for (int i = 0; i < 6; i++) tab[i] = (short)(i * 1000);
  int s = 0;
  for (int i = 0; i < 6; i++) s += tab[i];
  out(s);
  out(tab[5]);
  return 0;
}
"#,
        vec![],
        &[15000, 5000],
    );
}

#[test]
fn empty_statements_and_blocks() {
    check("int main() { ;;; { } int x = 1; { out(x); } ; return 0; }", vec![], &[1]);
}

#[test]
fn unary_plus_and_double_negation() {
    check("int main() { out(+5); out(- -7); out(!!9); return 0; }", vec![], &[5, 7, 1]);
}

#[test]
fn diagnostics_have_positions() {
    for (src, needle) in [
        ("int main() { return x; }", "unknown variable"),
        ("int main() { foo(); return 0; }", "unknown function"),
        ("int main() { break; }", "break outside"),
        ("int f() { return 0; } int f() { return 1; }", "duplicate function"),
        ("void f(int x) { return x; } int main() { return 0; }", "void function returns"),
    ] {
        let err = twill_frontend::compile("t", src).unwrap_err();
        assert!(err.msg.contains(needle), "{src}: got '{}'", err.msg);
    }
}

#[test]
fn shadowing_in_nested_scopes() {
    check(
        r#"
int main() {
  int x = 1;
  {
    int x = 2;
    out(x);
  }
  out(x);
  for (int x = 9; x < 10; x++) out(x);
  out(x);
  return 0;
}
"#,
        vec![],
        &[2, 1, 9, 1],
    );
}

#[test]
fn signed_division_truncates_toward_zero() {
    // C99 semantics: -7/2 == -3, -7%2 == -1, 7/-2 == -3, and the
    // remainder's sign follows the dividend: 7 % -2 == 1.
    check(
        r#"
int main() {
  int a = -7, b = 2;
  out(a / b); out(a % b);
  out(-a / -b); out(-a % -b);
  out((-a) / b); out((-a) % b);
  return 0;
}
"#,
        vec![],
        &[-3, -1, -3, 1, 3, 1],
    );
}

#[test]
fn unsigned_comparison_differs_from_signed() {
    check(
        r#"
int main() {
  unsigned int u = 0xFFFFFFFFu;
  int s = -1;
  out(u > 5u);          /* huge unsigned */
  out(s > 5);           /* negative signed */
  out((unsigned int)s == u);
  return 0;
}
"#,
        vec![],
        &[1, 0, 1],
    );
}

#[test]
fn shift_semantics_signed_and_unsigned() {
    check(
        r#"
int main() {
  int s = -16;
  unsigned int u = 0x80000000u;
  out(s >> 2);            /* arithmetic: -4 */
  out((int)(u >> 28));    /* logical: 8 */
  out(1 << 10);
  int sh = 3;
  out(100 >> sh);         /* variable shift amount */
  return 0;
}
"#,
        vec![],
        &[-4, 8, 1024, 12],
    );
}

#[test]
fn short_circuit_skips_side_effects() {
    check(
        r#"
int g = 0;
int bump() { g = g + 1; return 1; }
int main() {
  if (0 && bump()) {}
  out(g);
  if (1 || bump()) {}
  out(g);
  if (1 && bump()) {}
  out(g);
  if (0 || bump()) {}
  out(g);
  return 0;
}
"#,
        vec![],
        &[0, 0, 1, 2],
    );
}

#[test]
fn switch_with_fallthrough_and_default() {
    check(
        r#"
int classify(int x) {
  int r = 0;
  switch (x) {
    case 1:
    case 2: r = 10; break;
    case 3: r = 20; /* falls through */
    case 4: r = r + 1; break;
    default: r = -1;
  }
  return r;
}
int main() {
  out(classify(1)); out(classify(2)); out(classify(3));
  out(classify(4)); out(classify(9));
  return 0;
}
"#,
        vec![],
        &[10, 10, 21, 1, -1],
    );
}

#[test]
fn continue_in_nested_loops_targets_inner() {
    check(
        r#"
int main() {
  int n = 0;
  for (int i = 0; i < 3; i++) {
    for (int j = 0; j < 5; j++) {
      if (j % 2 == 1) continue;
      n++;
    }
  }
  out(n);  /* 3 * 3 even js */
  return 0;
}
"#,
        vec![],
        &[9],
    );
}

#[test]
fn char_arithmetic_wraps_at_byte() {
    check(
        r#"
int main() {
  char c = 120;
  c = (char)(c + 10);     /* 130 -> -126 as signed char */
  out(c);
  unsigned char u = 250;
  u = (unsigned char)(u + 10);  /* 260 -> 4 */
  out(u);
  return 0;
}
"#,
        vec![],
        &[-126, 4],
    );
}

#[test]
fn short_truncation_and_sign_extension() {
    check(
        r#"
int main() {
  short s = (short)70000;       /* 70000 - 65536 = 4464 */
  out(s);
  unsigned short us = (unsigned short)(-1);
  out(us);                      /* 65535 */
  short neg = (short)0x8000;    /* -32768 */
  out(neg);
  return 0;
}
"#,
        vec![],
        &[4464, 65535, -32768],
    );
}

#[test]
fn pointer_arithmetic_scales_by_element() {
    check(
        r#"
int main() {
  int a[5];
  for (int i = 0; i < 5; i++) a[i] = i * i;
  int *p = a;
  p = p + 2;
  out(*p);        /* 4 */
  out(*(p + 2));  /* 16 */
  out(p[-1]);     /* 1 */
  return 0;
}
"#,
        vec![],
        &[4, 16, 1],
    );
}

#[test]
fn compound_assign_through_pointer() {
    check(
        r#"
int main() {
  int a[3];
  a[0] = 5; a[1] = 7; a[2] = 9;
  int *p = a + 1;
  *p += 100;
  p[1] <<= 2;
  out(a[0]); out(a[1]); out(a[2]);
  return 0;
}
"#,
        vec![],
        &[5, 107, 36],
    );
}

#[test]
fn post_increment_in_array_index() {
    check(
        r#"
int main() {
  int a[4];
  int i = 0;
  a[i++] = 10;
  a[i++] = 20;
  a[i++] = 30;
  a[i] = 40;
  out(a[0] + a[1] + a[2] + a[3]);
  out(i);
  return 0;
}
"#,
        vec![],
        &[100, 3],
    );
}

#[test]
fn ternary_lvalue_free_nesting_and_mixed_width() {
    check(
        r#"
int main() {
  int x = in();
  /* mixed char/int operands promote to int */
  char small = 3;
  int big = 1000;
  out(x > 0 ? small : big);
  out(x > 0 ? big : small);
  return 0;
}
"#,
        vec![1],
        &[3, 1000],
    );
}

#[test]
fn global_array_brace_initializer_with_padding() {
    check(
        r#"
int tab[6] = {1, 2, 3};
int main() {
  int s = 0;
  for (int i = 0; i < 6; i++) s += tab[i];
  out(s);      /* trailing elements zero-filled */
  out(tab[5]);
  return 0;
}
"#,
        vec![],
        &[6, 0],
    );
}

#[test]
fn while_with_unsigned_wraparound_counter() {
    check(
        r#"
int main() {
  unsigned int u = 0xFFFFFFFEu;
  int steps = 0;
  while (u != 2u) {
    u = u + 1u;   /* wraps through 0 */
    steps++;
  }
  out(steps);
  return 0;
}
"#,
        vec![],
        &[4],
    );
}

#[test]
fn multiplication_overflow_wraps_two_complement() {
    check(
        r#"
int main() {
  int big = 0x40000000;
  out(big * 2);            /* wraps to INT_MIN */
  unsigned int ub = 0x80000001u;
  out((int)(ub * 3u));     /* 0x80000003 */
  return 0;
}
"#,
        vec![],
        &[-2147483648i64 as i32, 0x80000003u32 as i32],
    );
}
