//! Lowering from the mini-C AST to Twill IR.
//!
//! Follows the Clang -O0 strategy: every local variable (including
//! parameters) becomes an entry-block `alloca` with explicit loads/stores;
//! `mem2reg` in `twill-passes` rebuilds SSA afterwards. C semantics
//! implemented here:
//!
//! * integer promotions (char/short → int, value-preserving),
//! * usual arithmetic conversions (unsigned wins at equal rank),
//! * signedness-directed division/remainder/shift/compare selection,
//! * short-circuit `&&`/`||` and `?:` via control flow,
//! * pointer arithmetic scaled by element size (`gep`),
//! * array-to-pointer decay.
//!
//! Like the thesis' Twill/LegUp, recursion and function pointers are
//! compile errors.

use crate::ast::*;
use crate::parser::{eval_const, Parser};
use crate::{cerr, CError};
use std::collections::HashMap;
use twill_ir::{BlockId, CastOp, CmpOp, FuncBuilder, FuncId, Module, Op, Ty, Value};

/// Compile mini-C source text into a Twill IR module (globals laid out,
/// verified). Recursion is rejected, matching Twill/LegUp.
pub fn compile(name: &str, src: &str) -> Result<Module, CError> {
    compile_with(name, src, false)
}

/// Like [`compile`], optionally accepting recursive programs (the thesis'
/// §7 extension: recursion runs on the software master).
pub fn compile_with(name: &str, src: &str, allow_recursion: bool) -> Result<Module, CError> {
    let prog = Parser::new(src)?.parse_program()?;
    let mut m = lower_program(name, &prog)?;
    twill_ir::layout::assign_global_addrs(&mut m);
    let errs = twill_ir::verifier::verify_module(&m);
    if let Some(e) = errs.first() {
        return cerr(0, 0, format!("internal: lowering produced invalid IR: {e}"));
    }
    if !allow_recursion {
        check_no_recursion(&m)?;
    }
    Ok(m)
}

struct FuncSig {
    id: FuncId,
    ret: CTy,
    params: Vec<CTy>,
}

struct GlobalInfo {
    id: twill_ir::GlobalId,
    ty: CTy,
}

/// A typed rvalue.
#[derive(Clone)]
struct RV {
    v: Value,
    ty: CTy,
}

/// A typed lvalue (address + element type).
struct LV {
    addr: Value,
    ty: CTy,
}

fn lower_program(name: &str, prog: &Program) -> Result<Module, CError> {
    let mut m = Module::new(name);

    // Globals first (addresses resolved lazily through GlobalAddr).
    let mut globals: HashMap<String, GlobalInfo> = HashMap::new();
    for g in &prog.globals {
        let size = g.ty.size().max(1);
        let init = global_init_bytes(&g.ty, g.init.as_ref(), g.line)?;
        let id = m.add_global(twill_ir::Global {
            name: g.name.clone(),
            size,
            init,
            addr: 0,
            is_const: g.is_const && g.init.is_some(),
        });
        if globals.insert(g.name.clone(), GlobalInfo { id, ty: g.ty.clone() }).is_some() {
            return cerr(g.line, 0, format!("duplicate global '{}'", g.name));
        }
    }

    // Declare all functions (so calls can be order-independent).
    let mut sigs: HashMap<String, FuncSig> = HashMap::new();
    for f in &prog.funcs {
        let id = m.add_func(twill_ir::Function::new(
            f.name.clone(),
            f.params.iter().map(|(t, _)| t.decayed().ir()).collect(),
            f.ret.ir(),
        ));
        if sigs
            .insert(
                f.name.clone(),
                FuncSig {
                    id,
                    ret: f.ret.clone(),
                    params: f.params.iter().map(|(t, _)| t.decayed()).collect(),
                },
            )
            .is_some()
        {
            return cerr(f.line, 0, format!("duplicate function '{}'", f.name));
        }
    }

    // Lower bodies.
    for f in &prog.funcs {
        let built = {
            let mut ctx = Lower {
                sigs: &sigs,
                globals: &globals,
                b: FuncBuilder::from_function(std::mem::replace(
                    &mut m.funcs[sigs[&f.name].id.index()],
                    twill_ir::Function::new("", vec![], Ty::Void),
                )),
                scopes: Vec::new(),
                breaks: Vec::new(),
                continues: Vec::new(),
                ret_ty: f.ret.clone(),
            };
            ctx.lower_func(f)?;
            ctx.b.finish()
        };
        m.funcs[sigs[&f.name].id.index()] = built;
    }

    Ok(m)
}

fn global_init_bytes(ty: &CTy, init: Option<&Init>, line: usize) -> Result<Vec<u8>, CError> {
    fn scalar_bytes(ty: &CTy, v: i64) -> Vec<u8> {
        match ty.size() {
            1 => vec![v as u8],
            2 => (v as u16).to_le_bytes().to_vec(),
            _ => (v as u32).to_le_bytes().to_vec(),
        }
    }
    match (ty, init) {
        (_, None) => Ok(Vec::new()),
        (CTy::Array(elem, n), Some(Init::List(es))) => {
            if es.len() > *n as usize {
                return cerr(line, 0, "too many initializers");
            }
            let mut out = Vec::new();
            for e in es {
                let v = eval_const(e).ok_or_else(|| CError {
                    line,
                    col: 0,
                    msg: "global initializer must be constant".into(),
                })?;
                out.extend(scalar_bytes(elem, v));
            }
            Ok(out)
        }
        (CTy::Int { .. }, Some(Init::Scalar(e))) => {
            let v = eval_const(e).ok_or_else(|| CError {
                line,
                col: 0,
                msg: "global initializer must be constant".into(),
            })?;
            Ok(scalar_bytes(ty, v))
        }
        _ => cerr(line, 0, "unsupported global initializer"),
    }
}

fn check_no_recursion(m: &Module) -> Result<(), CError> {
    // DFS cycle detection over direct calls.
    let n = m.funcs.len();
    let mut callees: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (fi, f) in m.funcs.iter().enumerate() {
        for (_, iid) in f.inst_ids_in_layout() {
            if let Op::Call(c, _) = &f.inst(iid).op {
                callees[fi].push(c.index());
            }
        }
    }
    let mut state = vec![0u8; n];
    fn dfs(v: usize, callees: &[Vec<usize>], state: &mut [u8], m: &Module) -> Result<(), CError> {
        state[v] = 1;
        for &c in &callees[v] {
            if state[c] == 1 {
                return cerr(
                    0,
                    0,
                    format!("recursion involving '{}' is not supported by Twill", m.funcs[c].name),
                );
            }
            if state[c] == 0 {
                dfs(c, callees, state, m)?;
            }
        }
        state[v] = 2;
        Ok(())
    }
    for v in 0..n {
        if state[v] == 0 {
            dfs(v, &callees, &mut state, m)?;
        }
    }
    Ok(())
}

struct Var {
    addr: Value,
    ty: CTy,
}

struct Lower<'a> {
    sigs: &'a HashMap<String, FuncSig>,
    globals: &'a HashMap<String, GlobalInfo>,
    b: FuncBuilder,
    scopes: Vec<HashMap<String, Var>>,
    breaks: Vec<BlockId>,
    continues: Vec<BlockId>,
    ret_ty: CTy,
}

impl Lower<'_> {
    fn lower_func(&mut self, f: &FuncDef) -> Result<(), CError> {
        let entry = self.b.create_block("entry");
        self.b.func.entry = entry;
        self.b.switch_to(entry);
        // Prologue instructions attribute to the function definition line.
        self.b.set_line(f.line);
        self.scopes.push(HashMap::new());

        // Spill parameters to allocas (mem2reg promotes them back).
        for (i, (pty, pname)) in f.params.iter().enumerate() {
            let pty = pty.decayed();
            let slot = self.b.alloca(pty.size().max(4));
            self.b.store(Value::Arg(i as u16), slot);
            self.scopes.last_mut().unwrap().insert(pname.clone(), Var { addr: slot, ty: pty });
        }

        self.lower_stmts(&f.body)?;

        // Implicit return (C allows falling off the end).
        if !self.b.is_terminated() {
            if self.ret_ty == CTy::Void {
                self.b.ret(None);
            } else {
                self.b.ret(Some(Value::Imm(0, self.ret_ty.ir())));
            }
        }
        self.scopes.pop();
        Ok(())
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), CError> {
        for s in stmts {
            if self.b.is_terminated() {
                // Dead code after return/break: emit into a fresh
                // unreachable block (cleaned by simplifycfg).
                let dead = self.b.create_block("dead");
                self.b.switch_to(dead);
            }
            self.lower_stmt(s)?;
        }
        Ok(())
    }

    /// The source line a statement starts on (containers defer to their
    /// contents).
    fn stmt_line(s: &Stmt) -> Option<usize> {
        match s {
            Stmt::Block(_) | Stmt::DeclGroup(_) => None,
            Stmt::Expr(e) => Some(e.line()),
            Stmt::Decl(.., line)
            | Stmt::Return(.., line)
            | Stmt::If(.., line)
            | Stmt::While(.., line)
            | Stmt::DoWhile(.., line)
            | Stmt::For(.., line)
            | Stmt::Switch(.., line)
            | Stmt::Break(line)
            | Stmt::Continue(line) => Some(*line),
        }
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Result<(), CError> {
        if let Some(line) = Self::stmt_line(s) {
            self.b.set_line(line);
        }
        match s {
            Stmt::Block(items) => {
                self.scopes.push(HashMap::new());
                self.lower_stmts(items)?;
                self.scopes.pop();
                Ok(())
            }
            Stmt::DeclGroup(items) => self.lower_stmts(items),
            Stmt::Decl(ty, name, init, line) => self.lower_decl(ty, name, init.as_ref(), *line),
            Stmt::Expr(e) => {
                self.rvalue(e)?;
                Ok(())
            }
            Stmt::Return(v, line) => {
                match (v, self.ret_ty.clone()) {
                    (None, CTy::Void) => self.b.ret(None),
                    (Some(_), CTy::Void) => return cerr(*line, 0, "void function returns a value"),
                    (None, _) => return cerr(*line, 0, "non-void function must return a value"),
                    (Some(e), rt) => {
                        let rv = self.rvalue(e)?;
                        let conv = self.convert(rv, &rt);
                        self.b.ret(Some(conv.v));
                    }
                }
                Ok(())
            }
            Stmt::If(cond, then_s, else_s, _) => {
                let c = self.lower_condition(cond)?;
                let then_b = self.b.create_block("if.then");
                let else_b = self.b.create_block("if.else");
                let end_b = self.b.create_block("if.end");
                self.b.cond_br(c, then_b, if else_s.is_empty() { end_b } else { else_b });
                self.b.switch_to(then_b);
                self.scopes.push(HashMap::new());
                self.lower_stmts(then_s)?;
                self.scopes.pop();
                if !self.b.is_terminated() {
                    self.b.br(end_b);
                }
                if !else_s.is_empty() {
                    self.b.switch_to(else_b);
                    self.scopes.push(HashMap::new());
                    self.lower_stmts(else_s)?;
                    self.scopes.pop();
                    if !self.b.is_terminated() {
                        self.b.br(end_b);
                    }
                } else {
                    // else block unused; make it branch to end so it's
                    // trivially removable.
                    self.b.switch_to(else_b);
                    self.b.br(end_b);
                }
                self.b.switch_to(end_b);
                Ok(())
            }
            Stmt::While(cond, body, _) => {
                let head = self.b.create_block("while.head");
                let body_b = self.b.create_block("while.body");
                let end_b = self.b.create_block("while.end");
                self.b.br(head);
                self.b.switch_to(head);
                let c = self.lower_condition(cond)?;
                self.b.cond_br(c, body_b, end_b);
                self.b.switch_to(body_b);
                self.breaks.push(end_b);
                self.continues.push(head);
                self.scopes.push(HashMap::new());
                self.lower_stmts(body)?;
                self.scopes.pop();
                self.continues.pop();
                self.breaks.pop();
                if !self.b.is_terminated() {
                    self.b.br(head);
                }
                self.b.switch_to(end_b);
                Ok(())
            }
            Stmt::DoWhile(body, cond, _) => {
                let body_b = self.b.create_block("do.body");
                let cond_b = self.b.create_block("do.cond");
                let end_b = self.b.create_block("do.end");
                self.b.br(body_b);
                self.b.switch_to(body_b);
                self.breaks.push(end_b);
                self.continues.push(cond_b);
                self.scopes.push(HashMap::new());
                self.lower_stmts(body)?;
                self.scopes.pop();
                self.continues.pop();
                self.breaks.pop();
                if !self.b.is_terminated() {
                    self.b.br(cond_b);
                }
                self.b.switch_to(cond_b);
                let c = self.lower_condition(cond)?;
                self.b.cond_br(c, body_b, end_b);
                self.b.switch_to(end_b);
                Ok(())
            }
            Stmt::For(init, cond, step, body, _) => {
                self.scopes.push(HashMap::new());
                self.lower_stmts(init)?;
                let head = self.b.create_block("for.head");
                let body_b = self.b.create_block("for.body");
                let step_b = self.b.create_block("for.step");
                let end_b = self.b.create_block("for.end");
                self.b.br(head);
                self.b.switch_to(head);
                match cond {
                    Some(c) => {
                        let cv = self.lower_condition(c)?;
                        self.b.cond_br(cv, body_b, end_b);
                    }
                    None => self.b.br(body_b),
                }
                self.b.switch_to(body_b);
                self.breaks.push(end_b);
                self.continues.push(step_b);
                self.scopes.push(HashMap::new());
                self.lower_stmts(body)?;
                self.scopes.pop();
                self.continues.pop();
                self.breaks.pop();
                if !self.b.is_terminated() {
                    self.b.br(step_b);
                }
                self.b.switch_to(step_b);
                if let Some(st) = step {
                    self.rvalue(st)?;
                }
                self.b.br(head);
                self.b.switch_to(end_b);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Switch(scrut, arms, line) => self.lower_switch(scrut, arms, *line),
            Stmt::Break(line) => {
                let Some(&target) = self.breaks.last() else {
                    return cerr(*line, 0, "break outside loop/switch");
                };
                self.b.br(target);
                Ok(())
            }
            Stmt::Continue(line) => {
                let Some(&target) = self.continues.last() else {
                    return cerr(*line, 0, "continue outside loop");
                };
                self.b.br(target);
                Ok(())
            }
        }
    }

    fn lower_decl(
        &mut self,
        ty: &CTy,
        name: &str,
        init: Option<&Init>,
        line: usize,
    ) -> Result<(), CError> {
        let size = ty.size().max(4);
        // Allocas must live in the entry block: emit there, keep current
        // position.
        let cur = self.b.current_block();
        let entry = self.b.func.entry;
        let addr = if cur == entry {
            self.b.alloca(size)
        } else {
            // Insert the alloca at the end of entry's leading alloca run.
            let id = self.b.func.create_inst_at(Op::Alloca(size), Ty::Ptr, self.b.cur_loc());
            let lead = self
                .b
                .func
                .block(entry)
                .insts
                .iter()
                .take_while(|&&i| matches!(self.b.func.inst(i).op, Op::Alloca(_)))
                .count();
            self.b.func.block_mut(entry).insts.insert(lead, id);
            Value::Inst(id)
        };
        self.scopes.last_mut().unwrap().insert(name.to_string(), Var { addr, ty: ty.clone() });
        match (init, ty) {
            (None, _) => {}
            (Some(Init::Scalar(e)), _) => {
                let rv = self.rvalue(e)?;
                let conv = self.convert(rv, &ty.decayed());
                self.b.store(conv.v, addr);
            }
            (Some(Init::List(es)), CTy::Array(elem, n)) => {
                if es.len() > *n as usize {
                    return cerr(line, 0, "too many initializers");
                }
                for (i, e) in es.iter().enumerate() {
                    let rv = self.rvalue(e)?;
                    let conv = self.convert(rv, elem);
                    let slot = self.b.gep(addr, Value::imm32(i as i64), elem.size());
                    self.b.store(conv.v, slot);
                }
            }
            (Some(Init::List(_)), _) => return cerr(line, 0, "list initializer on scalar"),
        }
        Ok(())
    }

    fn lower_switch(
        &mut self,
        scrut: &Expr,
        arms: &[SwitchArm],
        _line: usize,
    ) -> Result<(), CError> {
        let sv = self.rvalue(scrut)?;
        let sv = self.promote(sv);
        let end_b = self.b.create_block("switch.end");
        // One block per arm; fallthrough = branch to next arm's block.
        let arm_blocks: Vec<BlockId> =
            (0..arms.len()).map(|i| self.b.create_block(format!("case.{i}"))).collect();
        let mut cases = Vec::new();
        let mut default = end_b;
        for (i, arm) in arms.iter().enumerate() {
            match arm.value {
                Some(v) => cases.push((v, arm_blocks[i])),
                None => default = arm_blocks[i],
            }
        }
        self.b.switch(sv.v, cases, default);
        self.breaks.push(end_b);
        for (i, arm) in arms.iter().enumerate() {
            self.b.switch_to(arm_blocks[i]);
            self.scopes.push(HashMap::new());
            self.lower_stmts(&arm.body)?;
            self.scopes.pop();
            if !self.b.is_terminated() {
                // Fallthrough to the next arm, or exit.
                let next = arm_blocks.get(i + 1).copied().unwrap_or(end_b);
                self.b.br(next);
            }
        }
        self.breaks.pop();
        self.b.switch_to(end_b);
        Ok(())
    }

    // ---- expressions ----

    fn find_var(&self, name: &str) -> Option<&Var> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    /// Evaluate as condition (`i1`).
    fn lower_condition(&mut self, e: &Expr) -> Result<Value, CError> {
        let rv = self.rvalue(e)?;
        Ok(self.tobool(rv))
    }

    fn tobool(&mut self, rv: RV) -> Value {
        let ity = rv.ty.decayed().ir();
        if ity == Ty::I1 {
            return rv.v;
        }
        self.b.cmp(CmpOp::Ne, rv.v, Value::Imm(0, ity))
    }

    /// Integer promotion: char/short → int (sign- or zero-extended).
    fn promote(&mut self, rv: RV) -> RV {
        match &rv.ty {
            CTy::Int { bits, signed } if *bits < 32 => {
                let op = if *signed { CastOp::Sext } else { CastOp::Zext };
                let v = self.b.cast(op, rv.v, Ty::I32);
                RV { v, ty: CTy::Int { bits: 32, signed: true } }
            }
            _ => rv,
        }
    }

    /// Convert an rvalue to the target C type (for assignment/args/return).
    fn convert(&mut self, rv: RV, to: &CTy) -> RV {
        let from_ir = rv.ty.decayed().ir();
        let to_ir = to.decayed().ir();
        if from_ir == to_ir {
            return RV { v: rv.v, ty: to.clone() };
        }
        let v = match (from_ir.bits(), to_ir.bits()) {
            (f, t) if f > t => self.b.cast(CastOp::Trunc, rv.v, to_ir),
            (f, t) if f < t => {
                let signed = matches!(&rv.ty, CTy::Int { signed: true, .. });
                self.b.cast(if signed { CastOp::Sext } else { CastOp::Zext }, rv.v, to_ir)
            }
            // Same width, different IR type (i32 <-> ptr).
            _ => self.b.cast(CastOp::Zext, rv.v, to_ir),
        };
        RV { v, ty: to.clone() }
    }

    /// Compute the lvalue (address) of an expression.
    fn lvalue(&mut self, e: &Expr) -> Result<LV, CError> {
        self.b.set_line(e.line());
        match e {
            Expr::Ident(name, line) => {
                if let Some(var) = self.find_var(name) {
                    return Ok(LV { addr: var.addr, ty: var.ty.clone() });
                }
                if let Some(g) = self.globals.get(name) {
                    let id = g.id;
                    let ty = g.ty.clone();
                    let addr = self.b.global_addr(id);
                    return Ok(LV { addr, ty });
                }
                if self.sigs.contains_key(name) {
                    return cerr(*line, 0, format!("function '{name}' is not assignable"));
                }
                cerr(*line, 0, format!("unknown variable '{name}'"))
            }
            Expr::Index(base, idx, _) => {
                let base_rv = self.rvalue(base)?;
                let elem = base_rv.ty.pointee().cloned().ok_or_else(|| CError {
                    line: e.line(),
                    col: 0,
                    msg: "indexing a non-pointer".into(),
                })?;
                let idx_rv = self.rvalue(idx)?;
                let idx_rv = self.promote(idx_rv);
                let addr = self.b.gep(base_rv.v, idx_rv.v, elem.size());
                Ok(LV { addr, ty: elem })
            }
            Expr::Un(UnKind::Deref, p, line) => {
                let rv = self.rvalue(p)?;
                let elem = rv.ty.pointee().cloned().ok_or_else(|| CError {
                    line: *line,
                    col: 0,
                    msg: "dereferencing a non-pointer".into(),
                })?;
                Ok(LV { addr: rv.v, ty: elem })
            }
            other => cerr(other.line(), 0, "expression is not assignable"),
        }
    }

    fn load_lv(&mut self, lv: &LV) -> RV {
        match &lv.ty {
            CTy::Array(..) => {
                // Arrays decay: the lvalue address *is* the value.
                RV { v: lv.addr, ty: lv.ty.decayed() }
            }
            ty => {
                let v = self.b.load(lv.addr, ty.ir());
                RV { v, ty: ty.clone() }
            }
        }
    }

    fn rvalue(&mut self, e: &Expr) -> Result<RV, CError> {
        self.b.set_line(e.line());
        match e {
            Expr::IntLit(v, _) => Ok(RV { v: Value::imm32(*v), ty: CTy::INT }),
            Expr::Ident(name, _)
                if self.find_var(name).is_none()
                    && !self.globals.contains_key(name)
                    && self.sigs.contains_key(name) =>
            {
                // A function name in value position decays to its address
                // (thesis §7 extension: function pointers).
                let id = self.sigs[name].id;
                let v = self.b.emit(Op::FuncAddr(id), Ty::Ptr);
                Ok(RV { v, ty: CTy::Ptr(Box::new(CTy::Void)) })
            }
            Expr::Ident(..) | Expr::Index(..) | Expr::Un(UnKind::Deref, _, _) => {
                let lv = self.lvalue(e)?;
                Ok(self.load_lv(&lv))
            }
            Expr::Un(UnKind::Addr, inner, _) => {
                let lv = self.lvalue(inner)?;
                Ok(RV { v: lv.addr, ty: CTy::Ptr(Box::new(lv.ty.decayed())) })
            }
            Expr::Un(UnKind::Neg, inner, _) => {
                let rv = self.rvalue(inner)?;
                let rv = self.promote(rv);
                let v = self.b.sub(Value::imm32(0), rv.v);
                Ok(RV { v, ty: rv.ty })
            }
            Expr::Un(UnKind::BitNot, inner, _) => {
                let rv = self.rvalue(inner)?;
                let rv = self.promote(rv);
                let v = self.b.xor(rv.v, Value::imm32(-1));
                Ok(RV { v, ty: rv.ty })
            }
            Expr::Un(UnKind::LogNot, inner, _) => {
                let rv = self.rvalue(inner)?;
                let ity = rv.ty.decayed().ir();
                let c = self.b.cmp(CmpOp::Eq, rv.v, Value::Imm(0, ity));
                let v = self.b.cast(CastOp::Zext, c, Ty::I32);
                Ok(RV { v, ty: CTy::INT })
            }
            Expr::Cast(to, inner, _) => {
                let rv = self.rvalue(inner)?;
                Ok(self.convert(rv, to))
            }
            Expr::Bin(BinKind::LAnd, a, b, _) => self.lower_short_circuit(a, b, true),
            Expr::Bin(BinKind::LOr, a, b, _) => self.lower_short_circuit(a, b, false),
            Expr::Bin(kind, a, b, line) => {
                let ra = self.rvalue(a)?;
                let rb = self.rvalue(b)?;
                self.lower_arith(*kind, ra, rb, *line)
            }
            Expr::Ternary(c, t, f, _) => {
                let cond = self.lower_condition(c)?;
                let then_b = self.b.create_block("tern.then");
                let else_b = self.b.create_block("tern.else");
                let end_b = self.b.create_block("tern.end");
                self.b.cond_br(cond, then_b, else_b);
                self.b.switch_to(then_b);
                let tv = self.rvalue(t)?;
                let tv = self.promote(tv);
                let then_exit = self.b.current_block();
                self.b.br(end_b);
                self.b.switch_to(else_b);
                let fv = self.rvalue(f)?;
                let fv = self.convert(fv, &tv.ty);
                let else_exit = self.b.current_block();
                self.b.br(end_b);
                self.b.switch_to(end_b);
                let phi =
                    self.b.phi(tv.ty.decayed().ir(), vec![(then_exit, tv.v), (else_exit, fv.v)]);
                Ok(RV { v: phi, ty: tv.ty })
            }
            Expr::Assign(lhs, rhs, _) => {
                let rv = self.rvalue(rhs)?;
                let lv = self.lvalue(lhs)?;
                let conv = self.convert(rv, &lv.ty.decayed());
                self.b.store(conv.v, lv.addr);
                Ok(conv)
            }
            Expr::CompoundAssign(kind, lhs, rhs, line) => {
                let lv = self.lvalue(lhs)?;
                let cur = self.load_lv(&lv);
                let rv = self.rvalue(rhs)?;
                let result = self.lower_arith(*kind, cur, rv, *line)?;
                let conv = self.convert(result, &lv.ty.decayed());
                self.b.store(conv.v, lv.addr);
                Ok(conv)
            }
            Expr::IncDec(is_inc, inner, is_post, line) => {
                let lv = self.lvalue(inner)?;
                let cur = self.load_lv(&lv);
                let one = RV { v: Value::imm32(1), ty: CTy::INT };
                let kind = if *is_inc { BinKind::Add } else { BinKind::Sub };
                let next = self.lower_arith(kind, cur.clone(), one, *line)?;
                let conv = self.convert(next, &lv.ty.decayed());
                self.b.store(conv.v, lv.addr);
                Ok(if *is_post { cur } else { conv })
            }
            Expr::Comma(a, b, _) => {
                self.rvalue(a)?;
                self.rvalue(b)
            }
            Expr::Call(name, args, line) => self.lower_call(name, args, *line),
            Expr::CallPtr(target, args, line) => {
                // C's decay rule: `(*fp)(…)` ≡ `fp(…)` — dereferencing a
                // function pointer is the identity.
                let target = match &**target {
                    Expr::Un(UnKind::Deref, inner, _) => inner,
                    other => other,
                };
                let tv = self.rvalue(target)?;
                self.lower_indirect_call(tv, args, *line)
            }
        }
    }

    fn lower_short_circuit(&mut self, a: &Expr, b: &Expr, is_and: bool) -> Result<RV, CError> {
        let ca = self.lower_condition(a)?;
        let a_exit = self.b.current_block();
        let rhs_b = self.b.create_block(if is_and { "land.rhs" } else { "lor.rhs" });
        let end_b = self.b.create_block(if is_and { "land.end" } else { "lor.end" });
        if is_and {
            self.b.cond_br(ca, rhs_b, end_b);
        } else {
            self.b.cond_br(ca, end_b, rhs_b);
        }
        self.b.switch_to(rhs_b);
        let cb = self.lower_condition(b)?;
        let b_exit = self.b.current_block();
        self.b.br(end_b);
        self.b.switch_to(end_b);
        let short_val = Value::imm1(!is_and);
        let phi = self.b.phi(Ty::I1, vec![(a_exit, short_val), (b_exit, cb)]);
        let v = self.b.cast(CastOp::Zext, phi, Ty::I32);
        Ok(RV { v, ty: CTy::INT })
    }

    fn lower_arith(&mut self, kind: BinKind, ra: RV, rb: RV, line: usize) -> Result<RV, CError> {
        use BinKind::*;
        // Pointer arithmetic.
        let pa = ra.ty.is_pointerish();
        let pb = rb.ty.is_pointerish();
        if (pa || pb) && matches!(kind, Add | Sub) {
            if pa && pb {
                if kind != Sub {
                    return cerr(line, 0, "cannot add two pointers");
                }
                // Pointer difference in elements.
                let elem = ra.ty.pointee().unwrap().size().max(1);
                let diff = self.b.sub(ra.v, rb.v);
                let v = self.b.sdiv(diff, Value::imm32(elem as i64));
                return Ok(RV { v, ty: CTy::INT });
            }
            let (ptr, int, flip) = if pa { (ra, rb, false) } else { (rb, ra, true) };
            if kind == Sub && flip {
                return cerr(line, 0, "cannot subtract pointer from integer");
            }
            let elem = ptr.ty.pointee().cloned().unwrap();
            let int = self.promote(int);
            let idx = if kind == Sub { self.b.sub(Value::imm32(0), int.v) } else { int.v };
            let v = self.b.gep(ptr.v, idx, elem.size().max(1));
            return Ok(RV { v, ty: CTy::Ptr(Box::new(elem)) });
        }
        // Pointer comparisons: unsigned.
        if (pa || pb) && matches!(kind, Lt | Gt | Le | Ge | Eq | Ne) {
            let op = match kind {
                Lt => CmpOp::Ult,
                Gt => CmpOp::Ugt,
                Le => CmpOp::Ule,
                Ge => CmpOp::Uge,
                Eq => CmpOp::Eq,
                Ne => CmpOp::Ne,
                _ => unreachable!(),
            };
            let c = self.b.cmp(op, ra.v, rb.v);
            let v = self.b.cast(CastOp::Zext, c, Ty::I32);
            return Ok(RV { v, ty: CTy::INT });
        }

        // Usual arithmetic conversions: promote both; unsigned wins.
        let ra = self.promote(ra);
        let rb = self.promote(rb);
        let unsigned = matches!(ra.ty, CTy::Int { signed: false, .. })
            || matches!(rb.ty, CTy::Int { signed: false, .. });
        let res_ty = if unsigned { CTy::UINT } else { CTy::INT };

        let v = match kind {
            Add => self.b.add(ra.v, rb.v),
            Sub => self.b.sub(ra.v, rb.v),
            Mul => self.b.mul(ra.v, rb.v),
            Div => {
                if unsigned {
                    self.b.udiv(ra.v, rb.v)
                } else {
                    self.b.sdiv(ra.v, rb.v)
                }
            }
            Rem => {
                if unsigned {
                    self.b.urem(ra.v, rb.v)
                } else {
                    self.b.srem(ra.v, rb.v)
                }
            }
            And => self.b.and(ra.v, rb.v),
            Or => self.b.or(ra.v, rb.v),
            Xor => self.b.xor(ra.v, rb.v),
            Shl => self.b.shl(ra.v, rb.v),
            Shr => {
                // Shift semantics follow the (promoted) left operand.
                if matches!(ra.ty, CTy::Int { signed: false, .. }) {
                    self.b.lshr(ra.v, rb.v)
                } else {
                    self.b.ashr(ra.v, rb.v)
                }
            }
            Lt | Gt | Le | Ge | Eq | Ne => {
                let op = match (kind, unsigned) {
                    (Lt, false) => CmpOp::Slt,
                    (Gt, false) => CmpOp::Sgt,
                    (Le, false) => CmpOp::Sle,
                    (Ge, false) => CmpOp::Sge,
                    (Lt, true) => CmpOp::Ult,
                    (Gt, true) => CmpOp::Ugt,
                    (Le, true) => CmpOp::Ule,
                    (Ge, true) => CmpOp::Uge,
                    (Eq, _) => CmpOp::Eq,
                    (Ne, _) => CmpOp::Ne,
                    _ => unreachable!(),
                };
                let c = self.b.cmp(op, ra.v, rb.v);
                let v = self.b.cast(CastOp::Zext, c, Ty::I32);
                return Ok(RV { v, ty: CTy::INT });
            }
            LAnd | LOr => unreachable!("handled by lower_short_circuit"),
        };
        // For Shr of unsigned the result stays unsigned; generally result
        // signedness = unsigned flag.
        Ok(RV { v, ty: res_ty })
    }

    /// Indirect call through a computed target (thesis §7 extension).
    /// Targets must be `int`-returning; argument types are taken as-is
    /// (checked at run time against the actual callee).
    fn lower_indirect_call(
        &mut self,
        target: RV,
        args: &[Expr],
        line: usize,
    ) -> Result<RV, CError> {
        // Loose typing (C lets any object pointer hold a function address
        // in this dialect); reinterpret 32-bit targets as pointers.
        let tv = if target.ty.decayed().ir() == Ty::Ptr {
            target.v
        } else if target.ty.is_integer() {
            self.b.cast(twill_ir::CastOp::Zext, target.v, Ty::Ptr)
        } else {
            return cerr(line, 0, "indirect call target must be a pointer");
        };
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            let rv = self.rvalue(a)?;
            let rv = self.promote(rv);
            vals.push(rv.v);
        }
        let v = self.b.emit(Op::CallIndirect(tv, vals), Ty::I32);
        Ok(RV { v, ty: CTy::INT })
    }

    fn lower_call(&mut self, name: &str, args: &[Expr], line: usize) -> Result<RV, CError> {
        // Builtins standing in for the serial I/O manager.
        if name == "out" {
            if args.len() != 1 {
                return cerr(line, 0, "out() takes one argument");
            }
            let rv = self.rvalue(&args[0])?;
            let rv = self.promote(rv);
            self.b.out(rv.v);
            return Ok(RV { v: Value::imm32(0), ty: CTy::INT });
        }
        if name == "in" {
            if !args.is_empty() {
                return cerr(line, 0, "in() takes no arguments");
            }
            let v = self.b.input();
            return Ok(RV { v, ty: CTy::INT });
        }
        let Some(sig) = self.sigs.get(name) else {
            // A pointer variable called like a function: indirect call.
            if self.find_var(name).is_some() || self.globals.contains_key(name) {
                let tv = self.rvalue(&Expr::Ident(name.to_string(), line))?;
                let args_vec: Vec<Expr> = args.to_vec();
                return self.lower_indirect_call(tv, &args_vec, line);
            }
            return cerr(line, 0, format!("unknown function '{name}'"));
        };
        if sig.params.len() != args.len() {
            return cerr(
                line,
                0,
                format!("'{name}' expects {} arguments, got {}", sig.params.len(), args.len()),
            );
        }
        let mut vals = Vec::with_capacity(args.len());
        let param_tys = sig.params.clone();
        for (a, pty) in args.iter().zip(&param_tys) {
            let rv = self.rvalue(a)?;
            let conv = self.convert(rv, pty);
            vals.push(conv.v);
        }
        let (id, ret) = (sig.id, sig.ret.clone());
        let v = self.b.call(id, vals, ret.ir());
        Ok(RV { v, ty: ret })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, input: Vec<i32>) -> Vec<i32> {
        let m = compile("test", src).unwrap();
        let (out, _, _) = twill_ir::interp::run_main(&m, input, 50_000_000).unwrap();
        out
    }

    #[test]
    fn hello_arith() {
        let out = run("int main() { out(6 * 7); return 0; }", vec![]);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn locals_and_loops() {
        let out = run(
            "int main() { int s = 0; for (int i = 1; i <= 10; i++) s += i; out(s); return s; }",
            vec![],
        );
        assert_eq!(out, vec![55]);
    }

    #[test]
    fn while_and_dowhile() {
        let out = run(
            r#"
int main() {
  int n = 5, f = 1;
  while (n > 1) { f *= n; n--; }
  out(f);
  int c = 0;
  do { c++; } while (c < 3);
  out(c);
  return 0;
}
"#,
            vec![],
        );
        assert_eq!(out, vec![120, 3]);
    }

    #[test]
    fn arrays_and_pointers() {
        let out = run(
            r#"
int tab[5];
int sum(int *p, int n) {
  int s = 0;
  for (int i = 0; i < n; i++) s += p[i];
  return s;
}
int main() {
  for (int i = 0; i < 5; i++) tab[i] = i * i;
  out(sum(tab, 5));
  int *q = &tab[2];
  out(*q);
  out(q[1]);
  return 0;
}
"#,
            vec![],
        );
        assert_eq!(out, vec![30, 4, 9]);
    }

    #[test]
    fn unsigned_semantics() {
        let out = run(
            r#"
int main() {
  unsigned int x = 0xffffffff;
  out(x > 0);            // unsigned compare: true
  int y = -1;
  out(y > 0);            // signed compare: false
  out((int)(x >> 28));   // logical shift: 15
  out(y >> 28);          // arithmetic shift: -1
  unsigned char c = 200;
  out(c + 100);          // promoted: 300
  out((unsigned char)(c + 100)); // wrapped: 44
  return 0;
}
"#,
            vec![],
        );
        assert_eq!(out, vec![1, 0, 15, -1, 300, 44]);
    }

    #[test]
    fn short_circuit_effects() {
        let out = run(
            r#"
int g = 0;
int bump() { g = g + 1; return 1; }
int main() {
  int a = 0 && bump();
  out(g); // 0: rhs not evaluated
  int b = 1 && bump();
  out(g); // 1
  int c = 1 || bump();
  out(g); // still 1
  out(a); out(b); out(c);
  return 0;
}
"#,
            vec![],
        );
        assert_eq!(out, vec![0, 1, 1, 0, 1, 1]);
    }

    #[test]
    fn switch_with_fallthrough() {
        let src = r#"
int classify(int x) {
  int r = 0;
  switch (x) {
    case 0:
    case 1: r = 10; break;
    case 2: r = 20; // fallthrough
    case 3: r += 1; break;
    default: r = 99;
  }
  return r;
}
int main() { out(classify(in())); return 0; }
"#;
        assert_eq!(run(src, vec![0]), vec![10]);
        assert_eq!(run(src, vec![1]), vec![10]);
        assert_eq!(run(src, vec![2]), vec![21]);
        assert_eq!(run(src, vec![3]), vec![1]);
        assert_eq!(run(src, vec![7]), vec![99]);
    }

    #[test]
    fn ternary_and_incdec() {
        let out = run(
            r#"
int main() {
  int x = 5;
  int y = x++ + 1; // y=6, x=6
  int z = ++x * 2; // x=7, z=14
  out(y); out(z);
  out(x > 5 ? 100 : 200);
  return 0;
}
"#,
            vec![],
        );
        assert_eq!(out, vec![6, 14, 100]);
    }

    #[test]
    fn global_arrays_with_init() {
        let out = run(
            r#"
const int weights[4] = {10, 20, 30, 40};
short state[3];
int main() {
  int s = 0;
  for (int i = 0; i < 4; i++) s += weights[i];
  state[0] = (short)s;
  state[1] = -1;
  out(state[0]);
  out(state[1]);
  return 0;
}
"#,
            vec![],
        );
        assert_eq!(out, vec![100, -1]);
    }

    #[test]
    fn char_sign_behaviour() {
        let out = run(
            r#"
int main() {
  char c = 0xF0;           // -16 as signed char
  unsigned char u = 0xF0;  // 240
  out(c);
  out(u);
  return 0;
}
"#,
            vec![],
        );
        assert_eq!(out, vec![-16, 240]);
    }

    #[test]
    fn recursion_rejected() {
        let err =
            compile("t", "int f(int n) { return n ? f(n-1) : 0; } int main() { return f(3); }")
                .unwrap_err();
        assert!(err.msg.contains("recursion"), "{err}");
    }

    #[test]
    fn io_builtins() {
        let out =
            run("int main() { int a = in(); int b = in(); out(a + b); return 0; }", vec![30, 12]);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn break_continue() {
        let out = run(
            r#"
int main() {
  int s = 0;
  for (int i = 0; i < 100; i++) {
    if (i % 2) continue;
    if (i > 10) break;
    s += i;
  }
  out(s); // 0+2+4+6+8+10 = 30
  return 0;
}
"#,
            vec![],
        );
        assert_eq!(out, vec![30]);
    }

    #[test]
    fn nested_function_calls_and_args() {
        let out = run(
            r#"
int min(int a, int b) { return a < b ? a : b; }
int max(int a, int b) { return a > b ? a : b; }
int clamp(int x, int lo, int hi) { return max(lo, min(x, hi)); }
int main() {
  out(clamp(15, 0, 10));
  out(clamp(-5, 0, 10));
  out(clamp(7, 0, 10));
  return 0;
}
"#,
            vec![],
        );
        assert_eq!(out, vec![10, 0, 7]);
    }

    #[test]
    fn lowering_stamps_source_lines() {
        let src = "int main() {\n  int s = 0;\n  for (int i = 0; i < 4; i++)\n    s += i;\n  out(s);\n  return s;\n}\n";
        let m = compile("t", src).unwrap();
        let f = m.func(m.find_func("main").unwrap());
        // Every live instruction carries a location inside the source.
        let n_lines = src.lines().count() as u32;
        for (_, i) in f.inst_ids_in_layout() {
            let loc = f.loc(i);
            assert!(loc.is_some(), "unlocated instruction {:?}", f.inst(i).op);
            assert!(loc.line <= n_lines, "line {} out of range", loc.line);
        }
        // The loop body (line 4) and the output call (line 5) both appear.
        let lines = f.live_loc_lines();
        assert!(lines.contains(&4), "{lines:?}");
        assert!(lines.contains(&5), "{lines:?}");
    }

    #[test]
    fn full_pipeline_equivalence() {
        // Compile, run; then run the standard pass pipeline and re-run.
        let src = r#"
const int key[4] = {3, 1, 4, 1};
int scramble(int x, int r) {
  return ((x << 3) ^ (x >> 2)) + key[r & 3];
}
int main() {
  int x = in();
  for (int r = 0; r < 8; r++) {
    x = scramble(x, r);
  }
  out(x);
  return 0;
}
"#;
        let mut m = compile("t", src).unwrap();
        let (before, _, _) = twill_ir::interp::run_main(&m, vec![1234], 10_000_000).unwrap();
        twill_passes::run_standard_pipeline(&mut m, &Default::default());
        twill_passes::utils::assert_valid_ssa(&m);
        let (after, _, _) = twill_ir::interp::run_main(&m, vec![1234], 10_000_000).unwrap();
        assert_eq!(before, after);
    }
}
