//! Abstract syntax tree for the mini-C dialect.

/// C-level types. Arrays decay to pointers in expression position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CTy {
    Void,
    /// Integer with width in bits (8/16/32) and signedness.
    Int {
        bits: u8,
        signed: bool,
    },
    Ptr(Box<CTy>),
    Array(Box<CTy>, u32),
}

impl CTy {
    pub const INT: CTy = CTy::Int { bits: 32, signed: true };
    pub const UINT: CTy = CTy::Int { bits: 32, signed: false };
    pub const CHAR: CTy = CTy::Int { bits: 8, signed: true };
    pub const UCHAR: CTy = CTy::Int { bits: 8, signed: false };
    pub const SHORT: CTy = CTy::Int { bits: 16, signed: true };
    pub const USHORT: CTy = CTy::Int { bits: 16, signed: false };

    /// Size in bytes when stored in memory.
    pub fn size(&self) -> u32 {
        match self {
            CTy::Void => 0,
            CTy::Int { bits, .. } => (*bits as u32) / 8,
            CTy::Ptr(_) => 4,
            CTy::Array(e, n) => e.size() * n,
        }
    }

    /// The element type of a pointer/array, if any.
    pub fn pointee(&self) -> Option<&CTy> {
        match self {
            CTy::Ptr(t) => Some(t),
            CTy::Array(t, _) => Some(t),
            _ => None,
        }
    }

    pub fn is_integer(&self) -> bool {
        matches!(self, CTy::Int { .. })
    }

    pub fn is_pointerish(&self) -> bool {
        matches!(self, CTy::Ptr(_) | CTy::Array(..))
    }

    /// The type this decays to in rvalue position.
    pub fn decayed(&self) -> CTy {
        match self {
            CTy::Array(e, _) => CTy::Ptr(e.clone()),
            other => other.clone(),
        }
    }

    /// IR type for a value of this C type.
    pub fn ir(&self) -> twill_ir::Ty {
        match self {
            CTy::Void => twill_ir::Ty::Void,
            CTy::Int { bits: 8, .. } => twill_ir::Ty::I8,
            CTy::Int { bits: 16, .. } => twill_ir::Ty::I16,
            CTy::Int { .. } => twill_ir::Ty::I32,
            CTy::Ptr(_) | CTy::Array(..) => twill_ir::Ty::Ptr,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    LAnd,
    LOr,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnKind {
    Neg,
    BitNot,
    LogNot,
    /// `&x`
    Addr,
    /// `*p`
    Deref,
}

#[derive(Debug, Clone)]
pub enum Expr {
    IntLit(i64, usize),
    Ident(String, usize),
    Bin(BinKind, Box<Expr>, Box<Expr>, usize),
    Un(UnKind, Box<Expr>, usize),
    /// `a[i]`
    Index(Box<Expr>, Box<Expr>, usize),
    Call(String, Vec<Expr>, usize),
    /// Indirect call through an arbitrary pointer expression: `(*fp)(..)`.
    CallPtr(Box<Expr>, Vec<Expr>, usize),
    /// `c ? a : b`
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>, usize),
    /// `(T) e`
    Cast(CTy, Box<Expr>, usize),
    /// `lhs = rhs` (returns rhs value, C semantics)
    Assign(Box<Expr>, Box<Expr>, usize),
    /// `lhs op= rhs`
    CompoundAssign(BinKind, Box<Expr>, Box<Expr>, usize),
    /// `++x` / `--x` / `x++` / `x--` (kind, lvalue, is_post)
    IncDec(bool, Box<Expr>, bool, usize),
    /// `e1, e2`
    Comma(Box<Expr>, Box<Expr>, usize),
}

impl Expr {
    pub fn line(&self) -> usize {
        match self {
            Expr::IntLit(_, l)
            | Expr::Ident(_, l)
            | Expr::Bin(_, _, _, l)
            | Expr::Un(_, _, l)
            | Expr::Index(_, _, l)
            | Expr::Call(_, _, l)
            | Expr::CallPtr(_, _, l)
            | Expr::Ternary(_, _, _, l)
            | Expr::Cast(_, _, l)
            | Expr::Assign(_, _, l)
            | Expr::CompoundAssign(_, _, _, l)
            | Expr::IncDec(_, _, _, l)
            | Expr::Comma(_, _, l) => *l,
        }
    }
}

#[derive(Debug, Clone)]
pub enum Stmt {
    /// Declaration: type, name, optional array-size brackets already folded
    /// into the type, optional initializer (scalar expr or brace list).
    Decl(CTy, String, Option<Init>, usize),
    Expr(Expr),
    If(Expr, Vec<Stmt>, Vec<Stmt>, usize),
    While(Expr, Vec<Stmt>, usize),
    DoWhile(Vec<Stmt>, Expr, usize),
    /// init (as stmts), cond (None = true), step, body
    For(Vec<Stmt>, Option<Expr>, Option<Expr>, Vec<Stmt>, usize),
    Switch(Expr, Vec<SwitchArm>, usize),
    Break(usize),
    Continue(usize),
    Return(Option<Expr>, usize),
    Block(Vec<Stmt>),
    /// Several `Decl`s from one declaration statement; unlike `Block` this
    /// does NOT open a scope (the variables belong to the enclosing one).
    DeclGroup(Vec<Stmt>),
}

#[derive(Debug, Clone)]
pub enum Init {
    Scalar(Expr),
    List(Vec<Expr>),
}

/// One `case K:` (or `default:`) arm with its statements (fallthrough is
/// represented by arms whose statement list doesn't end in break).
#[derive(Debug, Clone)]
pub struct SwitchArm {
    /// None = default arm.
    pub value: Option<i64>,
    pub body: Vec<Stmt>,
    pub line: usize,
}

#[derive(Debug, Clone)]
pub struct FuncDef {
    pub name: String,
    pub ret: CTy,
    pub params: Vec<(CTy, String)>,
    pub body: Vec<Stmt>,
    pub line: usize,
}

#[derive(Debug, Clone)]
pub struct GlobalDef {
    pub ty: CTy,
    pub name: String,
    pub init: Option<Init>,
    pub is_const: bool,
    pub line: usize,
}

#[derive(Debug, Clone, Default)]
pub struct Program {
    pub globals: Vec<GlobalDef>,
    pub funcs: Vec<FuncDef>,
}
