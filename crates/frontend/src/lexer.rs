//! Hand-written lexer for the mini-C dialect.

use crate::{cerr, CError};

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // literals / identifiers
    Ident(String),
    IntLit(i64),
    CharLit(i64),
    // keywords
    KwVoid,
    KwChar,
    KwShort,
    KwInt,
    KwUnsigned,
    KwSigned,
    KwConst,
    KwStatic,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwDo,
    KwSwitch,
    KwCase,
    KwDefault,
    KwBreak,
    KwContinue,
    KwReturn,
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    // operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    AmpAmp,
    PipePipe,
    Shl,
    Shr,
    Assign,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    ShlEq,
    ShrEq,
    PlusPlus,
    MinusMinus,
    Eof,
}

#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
    pub col: usize,
}

pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn skip_ws_and_comments(&mut self) -> Result<(), CError> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.peek() != b'\n' && self.peek() != 0 {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let (l, c) = (self.line, self.col);
                    self.bump();
                    self.bump();
                    loop {
                        if self.peek() == 0 {
                            return cerr(l, c, "unterminated block comment");
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                // Preprocessor lines are skipped wholesale (the benchmark
                // sources use only #define-free headers-free code, but keep
                // the lexer tolerant).
                b'#' if self.col == 1 => {
                    while self.peek() != b'\n' && self.peek() != 0 {
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Tokenize the whole input.
    pub fn tokenize(mut self) -> Result<Vec<Token>, CError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws_and_comments()?;
            let (line, col) = (self.line, self.col);
            let c = self.peek();
            if c == 0 {
                out.push(Token { kind: TokenKind::Eof, line, col });
                return Ok(out);
            }
            let kind = if c.is_ascii_alphabetic() || c == b'_' {
                let mut s = String::new();
                while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
                    s.push(self.bump() as char);
                }
                match s.as_str() {
                    "void" => TokenKind::KwVoid,
                    "char" => TokenKind::KwChar,
                    "short" => TokenKind::KwShort,
                    "int" => TokenKind::KwInt,
                    "unsigned" => TokenKind::KwUnsigned,
                    "signed" => TokenKind::KwSigned,
                    "const" => TokenKind::KwConst,
                    "static" => TokenKind::KwStatic,
                    "if" => TokenKind::KwIf,
                    "else" => TokenKind::KwElse,
                    "while" => TokenKind::KwWhile,
                    "for" => TokenKind::KwFor,
                    "do" => TokenKind::KwDo,
                    "switch" => TokenKind::KwSwitch,
                    "case" => TokenKind::KwCase,
                    "default" => TokenKind::KwDefault,
                    "break" => TokenKind::KwBreak,
                    "continue" => TokenKind::KwContinue,
                    "return" => TokenKind::KwReturn,
                    "long" | "float" | "double" => {
                        return cerr(
                            line,
                            col,
                            format!("type '{s}' is not supported (Twill is 32-bit integer only)"),
                        )
                    }
                    _ => TokenKind::Ident(s),
                }
            } else if c.is_ascii_digit() {
                let mut v: i64 = 0;
                if c == b'0' && (self.peek2() == b'x' || self.peek2() == b'X') {
                    self.bump();
                    self.bump();
                    let mut any = false;
                    while self.peek().is_ascii_hexdigit() {
                        v = v.wrapping_mul(16) + (self.bump() as char).to_digit(16).unwrap() as i64;
                        any = true;
                    }
                    if !any {
                        return cerr(line, col, "bad hex literal");
                    }
                } else {
                    while self.peek().is_ascii_digit() {
                        v = v.wrapping_mul(10) + (self.bump() - b'0') as i64;
                    }
                }
                // Integer suffixes (u, U, l rejected earlier as keyword only
                // in type position; accept and ignore u/U).
                while matches!(self.peek(), b'u' | b'U') {
                    self.bump();
                }
                TokenKind::IntLit(v)
            } else if c == b'\'' {
                self.bump();
                let ch = match self.bump() {
                    b'\\' => match self.bump() {
                        b'n' => b'\n' as i64,
                        b't' => b'\t' as i64,
                        b'r' => b'\r' as i64,
                        b'0' => 0,
                        b'\\' => b'\\' as i64,
                        b'\'' => b'\'' as i64,
                        other => {
                            return cerr(line, col, format!("bad escape '\\{}'", other as char))
                        }
                    },
                    other => other as i64,
                };
                if self.bump() != b'\'' {
                    return cerr(line, col, "unterminated char literal");
                }
                TokenKind::CharLit(ch)
            } else {
                use TokenKind::*;
                let two = |l: &mut Self, k: TokenKind| {
                    l.bump();
                    l.bump();
                    k
                };
                match (c, self.peek2()) {
                    (b'<', b'<') => {
                        self.bump();
                        self.bump();
                        if self.peek() == b'=' {
                            self.bump();
                            ShlEq
                        } else {
                            Shl
                        }
                    }
                    (b'>', b'>') => {
                        self.bump();
                        self.bump();
                        if self.peek() == b'=' {
                            self.bump();
                            ShrEq
                        } else {
                            Shr
                        }
                    }
                    (b'<', b'=') => two(&mut self, Le),
                    (b'>', b'=') => two(&mut self, Ge),
                    (b'=', b'=') => two(&mut self, EqEq),
                    (b'!', b'=') => two(&mut self, Ne),
                    (b'&', b'&') => two(&mut self, AmpAmp),
                    (b'|', b'|') => two(&mut self, PipePipe),
                    (b'+', b'+') => two(&mut self, PlusPlus),
                    (b'-', b'-') => two(&mut self, MinusMinus),
                    (b'+', b'=') => two(&mut self, PlusEq),
                    (b'-', b'=') => two(&mut self, MinusEq),
                    (b'*', b'=') => two(&mut self, StarEq),
                    (b'/', b'=') => two(&mut self, SlashEq),
                    (b'%', b'=') => two(&mut self, PercentEq),
                    (b'&', b'=') => two(&mut self, AmpEq),
                    (b'|', b'=') => two(&mut self, PipeEq),
                    (b'^', b'=') => two(&mut self, CaretEq),
                    _ => {
                        self.bump();
                        match c {
                            b'(' => LParen,
                            b')' => RParen,
                            b'{' => LBrace,
                            b'}' => RBrace,
                            b'[' => LBracket,
                            b']' => RBracket,
                            b';' => Semi,
                            b',' => Comma,
                            b':' => Colon,
                            b'?' => Question,
                            b'+' => Plus,
                            b'-' => Minus,
                            b'*' => Star,
                            b'/' => Slash,
                            b'%' => Percent,
                            b'&' => Amp,
                            b'|' => Pipe,
                            b'^' => Caret,
                            b'~' => Tilde,
                            b'!' => Bang,
                            b'<' => Lt,
                            b'>' => Gt,
                            b'=' => Assign,
                            other => {
                                return cerr(
                                    line,
                                    col,
                                    format!("unexpected character '{}'", other as char),
                                )
                            }
                        }
                    }
                }
            };
            out.push(Token { kind, line, col });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src).tokenize().unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration() {
        use TokenKind::*;
        assert_eq!(
            kinds("int x = 42;"),
            vec![KwInt, Ident("x".into()), Assign, IntLit(42), Semi, Eof]
        );
    }

    #[test]
    fn lexes_hex_and_char() {
        use TokenKind::*;
        assert_eq!(kinds("0xff 'A' '\\n'"), vec![IntLit(255), CharLit(65), CharLit(10), Eof]);
    }

    #[test]
    fn lexes_compound_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("a <<= b >> c <= d && e++"),
            vec![
                Ident("a".into()),
                ShlEq,
                Ident("b".into()),
                Shr,
                Ident("c".into()),
                Le,
                Ident("d".into()),
                AmpAmp,
                Ident("e".into()),
                PlusPlus,
                Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_preprocessor() {
        use TokenKind::*;
        let src = "#include <stdio.h>\n// line\nint /* blk */ y;\n";
        assert_eq!(kinds(src), vec![KwInt, Ident("y".into()), Semi, Eof]);
    }

    #[test]
    fn rejects_double() {
        let e = Lexer::new("double d;").tokenize().unwrap_err();
        assert!(e.msg.contains("not supported"));
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = Lexer::new("int\nx\n;").tokenize().unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn unsigned_suffix_ignored() {
        use TokenKind::*;
        assert_eq!(kinds("42u 0xFFu"), vec![IntLit(42), IntLit(255), Eof]);
    }
}
