//! Recursive-descent parser with C operator precedence.

use crate::ast::*;
use crate::lexer::{Lexer, Token, TokenKind};
use crate::{cerr, CError};

pub struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

type PResult<T> = Result<T, CError>;

impl Parser {
    pub fn new(src: &str) -> Result<Parser, CError> {
        Ok(Parser { toks: Lexer::new(src).tokenize()?, pos: 0 })
    }

    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        self.toks.get(self.pos + 1).map(|t| &t.kind).unwrap_or(&TokenKind::Eof)
    }

    fn loc(&self) -> (usize, usize) {
        let t = &self.toks[self.pos];
        (t.line, t.col)
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn eat(&mut self, k: &TokenKind) -> bool {
        if self.peek() == k {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, k: TokenKind, what: &str) -> PResult<()> {
        if self.eat(&k) {
            Ok(())
        } else {
            let (l, c) = self.loc();
            cerr(l, c, format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn expect_ident(&mut self) -> PResult<String> {
        let (l, c) = self.loc();
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => cerr(l, c, format!("expected identifier, found {other:?}")),
        }
    }

    // ---- types ----

    fn at_type_start(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::KwVoid
                | TokenKind::KwChar
                | TokenKind::KwShort
                | TokenKind::KwInt
                | TokenKind::KwUnsigned
                | TokenKind::KwSigned
                | TokenKind::KwConst
                | TokenKind::KwStatic
        )
    }

    /// Parse type specifiers + pointer stars. Returns (type, is_const).
    fn parse_type(&mut self) -> PResult<(CTy, bool)> {
        let (l, c) = self.loc();
        let mut is_const = false;
        let mut is_static = false;
        let mut signedness: Option<bool> = None;
        let mut base: Option<CTy> = None;
        loop {
            match self.peek() {
                TokenKind::KwConst => {
                    self.bump();
                    is_const = true;
                }
                TokenKind::KwStatic => {
                    self.bump();
                    is_static = true;
                }
                TokenKind::KwUnsigned => {
                    self.bump();
                    signedness = Some(false);
                }
                TokenKind::KwSigned => {
                    self.bump();
                    signedness = Some(true);
                }
                TokenKind::KwVoid => {
                    self.bump();
                    base = Some(CTy::Void);
                }
                TokenKind::KwChar => {
                    self.bump();
                    base = Some(CTy::Int { bits: 8, signed: true });
                }
                TokenKind::KwShort => {
                    self.bump();
                    base = Some(CTy::Int { bits: 16, signed: true });
                }
                TokenKind::KwInt => {
                    self.bump();
                    if base.is_none() {
                        base = Some(CTy::INT);
                    } // "short int" / "unsigned int": keep existing base
                }
                _ => break,
            }
        }
        let _ = is_static;
        let mut ty = match (base, signedness) {
            (Some(CTy::Int { bits, .. }), Some(s)) => CTy::Int { bits, signed: s },
            (Some(t), _) => t,
            (None, Some(s)) => CTy::Int { bits: 32, signed: s },
            (None, None) => return cerr(l, c, "expected type"),
        };
        while self.eat(&TokenKind::Star) {
            ty = CTy::Ptr(Box::new(ty));
        }
        Ok((ty, is_const))
    }

    // ---- program ----

    pub fn parse_program(&mut self) -> PResult<Program> {
        let mut prog = Program::default();
        while self.peek() != &TokenKind::Eof {
            let line = self.line();
            if !self.at_type_start() {
                let (l, c) = self.loc();
                return cerr(l, c, format!("expected declaration, found {:?}", self.peek()));
            }
            let (ty, is_const) = self.parse_type()?;
            let name = self.expect_ident()?;
            if self.peek() == &TokenKind::LParen {
                prog.funcs.push(self.parse_func(ty, name, line)?);
            } else {
                // One or more global declarators sharing the base type.
                let mut name = name;
                loop {
                    let (full_ty, init) = self.parse_declarator_tail(ty.clone())?;
                    prog.globals.push(GlobalDef {
                        ty: full_ty,
                        name: name.clone(),
                        init,
                        is_const,
                        line,
                    });
                    if self.eat(&TokenKind::Comma) {
                        name = self.expect_ident()?;
                        continue;
                    }
                    self.expect(TokenKind::Semi, "';'")?;
                    break;
                }
            }
        }
        Ok(prog)
    }

    /// After `type name`, parse `[N]...` suffixes and `= init`.
    fn parse_declarator_tail(&mut self, mut ty: CTy) -> PResult<(CTy, Option<Init>)> {
        let mut dims: Vec<Option<u32>> = Vec::new();
        while self.eat(&TokenKind::LBracket) {
            if self.eat(&TokenKind::RBracket) {
                dims.push(None);
            } else {
                let (l, c) = self.loc();
                let e = self.parse_assignment()?;
                let n = eval_const(&e).ok_or_else(|| CError {
                    line: l,
                    col: c,
                    msg: "array size must be a constant".into(),
                })?;
                self.expect(TokenKind::RBracket, "']'")?;
                dims.push(Some(n as u32));
            }
        }
        let init = if self.eat(&TokenKind::Assign) { Some(self.parse_init()?) } else { None };
        // Infer [] size from list init.
        for d in dims.iter().rev() {
            let n = match d {
                Some(n) => *n,
                None => match &init {
                    Some(Init::List(es)) => es.len() as u32,
                    _ => {
                        return cerr(0, 0, "cannot infer array size without initializer list");
                    }
                },
            };
            ty = CTy::Array(Box::new(ty), n);
        }
        Ok((ty, init))
    }

    fn parse_init(&mut self) -> PResult<Init> {
        if self.eat(&TokenKind::LBrace) {
            let mut items = Vec::new();
            if !self.eat(&TokenKind::RBrace) {
                loop {
                    items.push(self.parse_assignment()?);
                    if self.eat(&TokenKind::Comma) {
                        if self.eat(&TokenKind::RBrace) {
                            break; // trailing comma
                        }
                        continue;
                    }
                    self.expect(TokenKind::RBrace, "'}'")?;
                    break;
                }
            }
            Ok(Init::List(items))
        } else {
            Ok(Init::Scalar(self.parse_assignment()?))
        }
    }

    fn parse_func(&mut self, ret: CTy, name: String, line: usize) -> PResult<FuncDef> {
        self.expect(TokenKind::LParen, "'('")?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            if self.peek() == &TokenKind::KwVoid && self.peek2() == &TokenKind::RParen {
                self.bump();
                self.bump();
            } else {
                loop {
                    let (mut pty, _) = self.parse_type()?;
                    let pname = self.expect_ident()?;
                    // Array params decay to pointers.
                    while self.eat(&TokenKind::LBracket) {
                        if !self.eat(&TokenKind::RBracket) {
                            let e = self.parse_assignment()?;
                            let _ = eval_const(&e);
                            self.expect(TokenKind::RBracket, "']'")?;
                        }
                        pty = CTy::Ptr(Box::new(pty));
                    }
                    params.push((pty, pname));
                    if self.eat(&TokenKind::Comma) {
                        continue;
                    }
                    self.expect(TokenKind::RParen, "')'")?;
                    break;
                }
            }
        }
        self.expect(TokenKind::LBrace, "'{'")?;
        let body = self.parse_block_items()?;
        Ok(FuncDef { name, ret, params, body, line })
    }

    fn parse_block_items(&mut self) -> PResult<Vec<Stmt>> {
        let mut out = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.peek() == &TokenKind::Eof {
                let (l, c) = self.loc();
                return cerr(l, c, "unexpected end of file in block");
            }
            out.push(self.parse_stmt()?);
        }
        Ok(out)
    }

    fn parse_stmt(&mut self) -> PResult<Stmt> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::LBrace => {
                self.bump();
                Ok(Stmt::Block(self.parse_block_items()?))
            }
            TokenKind::KwIf => {
                self.bump();
                self.expect(TokenKind::LParen, "'('")?;
                let cond = self.parse_expr()?;
                self.expect(TokenKind::RParen, "')'")?;
                let then_s = vec![self.parse_stmt()?];
                let else_s =
                    if self.eat(&TokenKind::KwElse) { vec![self.parse_stmt()?] } else { vec![] };
                Ok(Stmt::If(cond, then_s, else_s, line))
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(TokenKind::LParen, "'('")?;
                let cond = self.parse_expr()?;
                self.expect(TokenKind::RParen, "')'")?;
                let body = vec![self.parse_stmt()?];
                Ok(Stmt::While(cond, body, line))
            }
            TokenKind::KwDo => {
                self.bump();
                let body = vec![self.parse_stmt()?];
                self.expect(TokenKind::KwWhile, "'while'")?;
                self.expect(TokenKind::LParen, "'('")?;
                let cond = self.parse_expr()?;
                self.expect(TokenKind::RParen, "')'")?;
                self.expect(TokenKind::Semi, "';'")?;
                Ok(Stmt::DoWhile(body, cond, line))
            }
            TokenKind::KwFor => {
                self.bump();
                self.expect(TokenKind::LParen, "'('")?;
                let init = if self.eat(&TokenKind::Semi) {
                    vec![]
                } else if self.at_type_start() {
                    self.parse_decl_stmt()?
                } else {
                    let e = self.parse_expr()?;
                    self.expect(TokenKind::Semi, "';'")?;
                    vec![Stmt::Expr(e)]
                };
                let cond =
                    if self.peek() == &TokenKind::Semi { None } else { Some(self.parse_expr()?) };
                self.expect(TokenKind::Semi, "';'")?;
                let step =
                    if self.peek() == &TokenKind::RParen { None } else { Some(self.parse_expr()?) };
                self.expect(TokenKind::RParen, "')'")?;
                let body = vec![self.parse_stmt()?];
                Ok(Stmt::For(init, cond, step, body, line))
            }
            TokenKind::KwSwitch => {
                self.bump();
                self.expect(TokenKind::LParen, "'('")?;
                let scrut = self.parse_expr()?;
                self.expect(TokenKind::RParen, "')'")?;
                self.expect(TokenKind::LBrace, "'{'")?;
                let mut arms: Vec<SwitchArm> = Vec::new();
                while !self.eat(&TokenKind::RBrace) {
                    let aline = self.line();
                    if self.eat(&TokenKind::KwCase) {
                        let (l, c) = self.loc();
                        let e = self.parse_ternary()?;
                        let v = eval_const(&e).ok_or_else(|| CError {
                            line: l,
                            col: c,
                            msg: "case value must be a constant".into(),
                        })?;
                        self.expect(TokenKind::Colon, "':'")?;
                        arms.push(SwitchArm { value: Some(v), body: vec![], line: aline });
                    } else if self.eat(&TokenKind::KwDefault) {
                        self.expect(TokenKind::Colon, "':'")?;
                        arms.push(SwitchArm { value: None, body: vec![], line: aline });
                    } else {
                        let (l, c) = self.loc();
                        let stmt = self.parse_stmt()?;
                        match arms.last_mut() {
                            Some(arm) => arm.body.push(stmt),
                            None => {
                                return cerr(l, c, "statement before first case label");
                            }
                        }
                    }
                }
                Ok(Stmt::Switch(scrut, arms, line))
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(TokenKind::Semi, "';'")?;
                Ok(Stmt::Break(line))
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(TokenKind::Semi, "';'")?;
                Ok(Stmt::Continue(line))
            }
            TokenKind::KwReturn => {
                self.bump();
                let v =
                    if self.peek() == &TokenKind::Semi { None } else { Some(self.parse_expr()?) };
                self.expect(TokenKind::Semi, "';'")?;
                Ok(Stmt::Return(v, line))
            }
            _ if self.at_type_start() => {
                let stmts = self.parse_decl_stmt()?;
                Ok(Stmt::DeclGroup(stmts))
            }
            TokenKind::Semi => {
                self.bump();
                Ok(Stmt::Block(vec![]))
            }
            _ => {
                let e = self.parse_expr()?;
                self.expect(TokenKind::Semi, "';'")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    /// Parse `type a = 1, b[3], c;` into individual Decl statements,
    /// consuming the trailing ';'.
    fn parse_decl_stmt(&mut self) -> PResult<Vec<Stmt>> {
        let line = self.line();
        let (base, _) = self.parse_type()?;
        let mut out = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let (ty, init) = self.parse_declarator_tail(base.clone())?;
            out.push(Stmt::Decl(ty, name, init, line));
            if self.eat(&TokenKind::Comma) {
                continue;
            }
            self.expect(TokenKind::Semi, "';'")?;
            break;
        }
        Ok(out)
    }

    // ---- expressions (precedence climbing) ----

    pub fn parse_expr(&mut self) -> PResult<Expr> {
        let line = self.line();
        let first = self.parse_assignment()?;
        if self.peek() == &TokenKind::Comma {
            self.bump();
            let rest = self.parse_expr()?;
            Ok(Expr::Comma(Box::new(first), Box::new(rest), line))
        } else {
            Ok(first)
        }
    }

    fn parse_assignment(&mut self) -> PResult<Expr> {
        let line = self.line();
        let lhs = self.parse_ternary()?;
        use TokenKind::*;
        let kind = match self.peek() {
            Assign => None,
            PlusEq => Some(BinKind::Add),
            MinusEq => Some(BinKind::Sub),
            StarEq => Some(BinKind::Mul),
            SlashEq => Some(BinKind::Div),
            PercentEq => Some(BinKind::Rem),
            AmpEq => Some(BinKind::And),
            PipeEq => Some(BinKind::Or),
            CaretEq => Some(BinKind::Xor),
            ShlEq => Some(BinKind::Shl),
            ShrEq => Some(BinKind::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_assignment()?;
        Ok(match kind {
            None => Expr::Assign(Box::new(lhs), Box::new(rhs), line),
            Some(k) => Expr::CompoundAssign(k, Box::new(lhs), Box::new(rhs), line),
        })
    }

    fn parse_ternary(&mut self) -> PResult<Expr> {
        let line = self.line();
        let cond = self.parse_binary(0)?;
        if self.eat(&TokenKind::Question) {
            let t = self.parse_assignment()?;
            self.expect(TokenKind::Colon, "':'")?;
            let e = self.parse_ternary()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(t), Box::new(e), line))
        } else {
            Ok(cond)
        }
    }

    /// Binary operators by precedence level (0 = lowest = `||`).
    fn parse_binary(&mut self, min_level: u8) -> PResult<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let (kind, level) = match self.peek() {
                TokenKind::PipePipe => (BinKind::LOr, 0),
                TokenKind::AmpAmp => (BinKind::LAnd, 1),
                TokenKind::Pipe => (BinKind::Or, 2),
                TokenKind::Caret => (BinKind::Xor, 3),
                TokenKind::Amp => (BinKind::And, 4),
                TokenKind::EqEq => (BinKind::Eq, 5),
                TokenKind::Ne => (BinKind::Ne, 5),
                TokenKind::Lt => (BinKind::Lt, 6),
                TokenKind::Gt => (BinKind::Gt, 6),
                TokenKind::Le => (BinKind::Le, 6),
                TokenKind::Ge => (BinKind::Ge, 6),
                TokenKind::Shl => (BinKind::Shl, 7),
                TokenKind::Shr => (BinKind::Shr, 7),
                TokenKind::Plus => (BinKind::Add, 8),
                TokenKind::Minus => (BinKind::Sub, 8),
                TokenKind::Star => (BinKind::Mul, 9),
                TokenKind::Slash => (BinKind::Div, 9),
                TokenKind::Percent => (BinKind::Rem, 9),
                _ => break,
            };
            if level < min_level {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.parse_binary(level + 1)?;
            lhs = Expr::Bin(kind, Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> PResult<Expr> {
        let line = self.line();
        use TokenKind::*;
        match self.peek().clone() {
            Minus => {
                self.bump();
                Ok(Expr::Un(UnKind::Neg, Box::new(self.parse_unary()?), line))
            }
            Tilde => {
                self.bump();
                Ok(Expr::Un(UnKind::BitNot, Box::new(self.parse_unary()?), line))
            }
            Bang => {
                self.bump();
                Ok(Expr::Un(UnKind::LogNot, Box::new(self.parse_unary()?), line))
            }
            Amp => {
                self.bump();
                Ok(Expr::Un(UnKind::Addr, Box::new(self.parse_unary()?), line))
            }
            Star => {
                self.bump();
                Ok(Expr::Un(UnKind::Deref, Box::new(self.parse_unary()?), line))
            }
            Plus => {
                self.bump();
                self.parse_unary()
            }
            PlusPlus => {
                self.bump();
                Ok(Expr::IncDec(true, Box::new(self.parse_unary()?), false, line))
            }
            MinusMinus => {
                self.bump();
                Ok(Expr::IncDec(false, Box::new(self.parse_unary()?), false, line))
            }
            LParen if self.is_cast_ahead() => {
                self.bump();
                let (ty, _) = self.parse_type()?;
                self.expect(RParen, "')'")?;
                Ok(Expr::Cast(ty, Box::new(self.parse_unary()?), line))
            }
            _ => self.parse_postfix(),
        }
    }

    fn is_cast_ahead(&self) -> bool {
        self.peek() == &TokenKind::LParen
            && matches!(
                self.peek2(),
                TokenKind::KwVoid
                    | TokenKind::KwChar
                    | TokenKind::KwShort
                    | TokenKind::KwInt
                    | TokenKind::KwUnsigned
                    | TokenKind::KwSigned
                    | TokenKind::KwConst
            )
    }

    fn parse_postfix(&mut self) -> PResult<Expr> {
        let mut e = self.parse_primary()?;
        loop {
            let line = self.line();
            match self.peek() {
                TokenKind::LBracket => {
                    self.bump();
                    let idx = self.parse_expr()?;
                    self.expect(TokenKind::RBracket, "']'")?;
                    e = Expr::Index(Box::new(e), Box::new(idx), line);
                }
                TokenKind::PlusPlus => {
                    self.bump();
                    e = Expr::IncDec(true, Box::new(e), true, line);
                }
                TokenKind::MinusMinus => {
                    self.bump();
                    e = Expr::IncDec(false, Box::new(e), true, line);
                }
                TokenKind::LParen => {
                    // Indirect call through a pointer expression.
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.parse_assignment()?);
                            if self.eat(&TokenKind::Comma) {
                                continue;
                            }
                            self.expect(TokenKind::RParen, "')'")?;
                            break;
                        }
                    }
                    e = Expr::CallPtr(Box::new(e), args, line);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> PResult<Expr> {
        let (l, c) = self.loc();
        match self.bump() {
            TokenKind::IntLit(v) | TokenKind::CharLit(v) => Ok(Expr::IntLit(v, l)),
            TokenKind::Ident(name) => {
                if self.peek() == &TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.parse_assignment()?);
                            if self.eat(&TokenKind::Comma) {
                                continue;
                            }
                            self.expect(TokenKind::RParen, "')'")?;
                            break;
                        }
                    }
                    Ok(Expr::Call(name, args, l))
                } else {
                    Ok(Expr::Ident(name, l))
                }
            }
            TokenKind::LParen => {
                let e = self.parse_expr()?;
                self.expect(TokenKind::RParen, "')'")?;
                Ok(e)
            }
            other => cerr(l, c, format!("expected expression, found {other:?}")),
        }
    }
}

/// Constant-expression evaluator for array sizes / case labels / global
/// initializers.
pub fn eval_const(e: &Expr) -> Option<i64> {
    Some(match e {
        Expr::IntLit(v, _) => *v,
        Expr::Un(UnKind::Neg, x, _) => eval_const(x)?.wrapping_neg(),
        Expr::Un(UnKind::BitNot, x, _) => !eval_const(x)?,
        Expr::Un(UnKind::LogNot, x, _) => (eval_const(x)? == 0) as i64,
        Expr::Cast(ty, x, _) => {
            let v = eval_const(x)?;
            match ty {
                CTy::Int { bits, signed: true } => {
                    let sh = 64 - *bits as u32;
                    (v << sh) >> sh
                }
                CTy::Int { bits, signed: false } => v & ((1i64 << bits).wrapping_sub(1)),
                _ => return None,
            }
        }
        Expr::Bin(k, a, b, _) => {
            let a = eval_const(a)?;
            let b = eval_const(b)?;
            match k {
                BinKind::Add => a.wrapping_add(b),
                BinKind::Sub => a.wrapping_sub(b),
                BinKind::Mul => a.wrapping_mul(b),
                BinKind::Div => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_div(b)
                }
                BinKind::Rem => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_rem(b)
                }
                BinKind::And => a & b,
                BinKind::Or => a | b,
                BinKind::Xor => a ^ b,
                BinKind::Shl => a.wrapping_shl(b as u32 & 31),
                BinKind::Shr => a.wrapping_shr(b as u32 & 31),
                BinKind::Lt => (a < b) as i64,
                BinKind::Gt => (a > b) as i64,
                BinKind::Le => (a <= b) as i64,
                BinKind::Ge => (a >= b) as i64,
                BinKind::Eq => (a == b) as i64,
                BinKind::Ne => (a != b) as i64,
                BinKind::LAnd => ((a != 0) && (b != 0)) as i64,
                BinKind::LOr => ((a != 0) || (b != 0)) as i64,
            }
        }
        Expr::Ternary(c, a, b, _) => {
            if eval_const(c)? != 0 {
                eval_const(a)?
            } else {
                eval_const(b)?
            }
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Program {
        Parser::new(src).unwrap().parse_program().unwrap()
    }

    #[test]
    fn parses_global_and_function() {
        let p = parse("int g = 5;\nint main() { return g; }\n");
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "main");
    }

    #[test]
    fn parses_array_global_with_inferred_size() {
        let p = parse("const int tab[] = {1, 2, 3};\n");
        assert_eq!(p.globals[0].ty, CTy::Array(Box::new(CTy::INT), 3));
        assert!(p.globals[0].is_const);
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("int f() { return 1 + 2 * 3; }");
        match &p.funcs[0].body[0] {
            Stmt::Return(Some(Expr::Bin(BinKind::Add, _, rhs, _)), _) => {
                assert!(matches!(**rhs, Expr::Bin(BinKind::Mul, _, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_full_statement_set() {
        parse(
            r#"
int f(int n) {
  int acc = 0;
  for (int i = 0; i < n; i++) {
    if (i % 2 == 0) continue;
    acc += i;
  }
  while (acc > 100) acc -= 10;
  do { acc++; } while (acc < 0);
  switch (acc) {
    case 1: acc = 10; break;
    case 2:
    case 3: acc = 20; break;
    default: acc = 30;
  }
  return acc;
}
"#,
        );
    }

    #[test]
    fn parses_pointers_and_arrays() {
        let p =
            parse("int f(int *p, int a[], unsigned char buf[16]) { return p[0] + a[1] + buf[2]; }");
        assert_eq!(p.funcs[0].params[0].0, CTy::Ptr(Box::new(CTy::INT)));
        assert_eq!(p.funcs[0].params[1].0, CTy::Ptr(Box::new(CTy::INT)));
        assert_eq!(p.funcs[0].params[2].0, CTy::Ptr(Box::new(CTy::UCHAR)));
    }

    #[test]
    fn parses_casts_and_ternary() {
        parse("int f(int x) { return (unsigned char)(x ? x + 1 : -x); }");
    }

    #[test]
    fn unsigned_types() {
        let p = parse("unsigned int u; unsigned short s; unsigned char c; unsigned x;");
        assert_eq!(p.globals[0].ty, CTy::UINT);
        assert_eq!(p.globals[1].ty, CTy::USHORT);
        assert_eq!(p.globals[2].ty, CTy::UCHAR);
        assert_eq!(p.globals[3].ty, CTy::UINT);
    }

    #[test]
    fn const_eval() {
        let e = Parser::new("(3 + 4) * 2 - 1").unwrap().parse_expr().unwrap();
        assert_eq!(eval_const(&e), Some(13));
        let e = Parser::new("1 << 10").unwrap().parse_expr().unwrap();
        assert_eq!(eval_const(&e), Some(1024));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Parser::new("int f() { return @; }").is_err());
        let p = Parser::new("int f() { if }").unwrap().parse_program();
        assert!(p.is_err());
    }

    #[test]
    fn multi_declarator_statement() {
        let p = parse("int f() { int a = 1, b = 2, c; return a + b; }");
        match &p.funcs[0].body[0] {
            Stmt::DeclGroup(items) => assert_eq!(items.len(), 3),
            other => panic!("{other:?}"),
        }
    }
}
