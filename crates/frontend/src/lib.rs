//! # twill-frontend
//!
//! A mini-C frontend (the Clang stage of the thesis' tool flow) targeting
//! the Twill IR. It supports the C subset the thesis supports:
//!
//! * integer types only, up to 32 bits (`char`, `short`, `int`, `long` is
//!   rejected), signed and unsigned — the thesis excludes 64-bit programs,
//! * pointers and one-dimensional arrays (globals and locals),
//! * full statement set: `if`/`else`, `while`, `for`, `do`, `switch` with
//!   fallthrough, `break`/`continue`/`return`,
//! * short-circuit `&&`/`||`, ternary `?:`, all C integer operators with C
//!   precedence, compound assignment, `++`/`--`,
//! * function definitions and calls — **no recursion, no function
//!   pointers** (both rejected at compile time, same as Twill/LegUp),
//! * the I/O builtins `out(x)` and `in()` standing in for the thesis'
//!   serial-port I/O manager.
//!
//! Entry point: [`compile`] (source text → `twill_ir::Module`).

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use lexer::{Lexer, Token, TokenKind};
pub use lower::{compile, compile_with};

/// A frontend diagnostic (lex, parse or semantic error) with location.
#[derive(Debug, Clone)]
pub struct CError {
    pub line: usize,
    pub col: usize,
    pub msg: String,
}

impl std::fmt::Display for CError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: error: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for CError {}

pub(crate) fn cerr<T>(line: usize, col: usize, msg: impl Into<String>) -> Result<T, CError> {
    Err(CError { line, col, msg: msg.into() })
}
