//! Structural invariants of the DSWP extraction output: whatever the
//! placement decides, the produced module must verify, the thread table
//! must be consistent with the stats, and the functional co-execution of
//! all partitions must match the single-threaded reference.

use twill_dswp::{run_dswp, run_partitioned, DswpOptions, DswpResult};

fn prepare(src: &str) -> twill_ir::Module {
    let mut m = twill_frontend::compile("t", src).unwrap();
    twill_passes::run_standard_pipeline(&mut m, &Default::default());
    m
}

fn reference(m: &twill_ir::Module, input: Vec<i32>) -> (Vec<i32>, Option<i64>) {
    let (out, ret, _) = twill_ir::interp::run_main(m, input, 50_000_000).unwrap();
    (out, ret)
}

const PIPELINE_SRC: &str = r#"
int main() {
  unsigned int acc = 0;
  for (int i = 0; i < 50; i++) {
    unsigned int x = (unsigned int)(i * 2654435761u);
    unsigned int y = (x >> 7) ^ (x << 3);
    unsigned int z = (y * 31u) + 17u;
    acc = acc ^ z;
  }
  out((int) acc);
  return 0;
}
"#;

fn check_invariants(r: &DswpResult) {
    twill_ir::verifier::assert_valid(&r.module);

    // Threads: partition 0 exists exactly once and is the software master.
    let sw: Vec<_> = r.threads.iter().filter(|t| !t.is_hw).collect();
    assert_eq!(sw.len(), 1, "exactly one software master");
    assert_eq!(sw[0].partition, 0);
    for t in &r.threads {
        assert!(t.entry.index() < r.module.funcs.len(), "entry in range");
    }
    // Partition indices are unique.
    let mut parts: Vec<usize> = r.threads.iter().map(|t| t.partition).collect();
    parts.sort();
    parts.dedup();
    assert_eq!(parts.len(), r.threads.len(), "partitions unique");

    // Stats consistency.
    assert_eq!(r.stats.queues, r.stats.data_queues + r.stats.token_queues);
    assert_eq!(r.stats.queues, r.module.queues.len());
    assert_eq!(r.stats.semaphores, r.module.sems.len());
    assert_eq!(r.stats.hw_threads, r.threads.iter().filter(|t| t.is_hw).count());
    assert!(r.stats.insts_per_partition.iter().sum::<usize>() > 0);
}

#[test]
fn two_partition_split_verifies_and_matches_reference() {
    let m = prepare(PIPELINE_SRC);
    let (want_out, want_ret) = reference(&m, vec![]);
    for split in [0.2, 0.5, 0.8] {
        let r = run_dswp(
            &m,
            &DswpOptions {
                num_partitions: 2,
                split_points: Some(vec![split, 1.0 - split]),
                ..Default::default()
            },
        );
        check_invariants(&r);
        let (out, ret, steps) = run_partitioned(&r, vec![], 100_000_000).unwrap();
        assert_eq!(out, want_out, "split {split}");
        assert_eq!(ret, want_ret, "split {split}");
        assert_eq!(steps.len(), r.threads.len());
        assert!(steps.iter().all(|&s| s > 0), "every thread ran: {steps:?}");
    }
}

#[test]
fn single_partition_degenerates_to_no_queues() {
    let m = prepare(PIPELINE_SRC);
    let r = run_dswp(&m, &DswpOptions { num_partitions: 1, ..Default::default() });
    check_invariants(&r);
    assert_eq!(r.stats.queues, 0, "one partition needs no communication");
    assert_eq!(r.threads.len(), 1);
    let (want_out, want_ret) = reference(&m, vec![]);
    let (out, ret, _) = run_partitioned(&r, vec![], 100_000_000).unwrap();
    assert_eq!(out, want_out);
    assert_eq!(ret, want_ret);
}

#[test]
fn forced_split_creates_data_queues() {
    let m = prepare(PIPELINE_SRC);
    let r = run_dswp(
        &m,
        &DswpOptions {
            num_partitions: 2,
            split_points: Some(vec![0.5, 0.5]),
            ..Default::default()
        },
    );
    assert!(r.stats.data_queues >= 1, "{:?}", r.stats);
}

#[test]
fn cross_partition_stores_get_ordering_tokens() {
    // Two conflicting global accesses that a forced mid-split separates —
    // the extraction must insert memory-ordering token queues.
    let src = r#"
int buf[16];
int main() {
  for (int i = 0; i < 16; i++) {
    buf[i] = i * 3;
  }
  int s = 0;
  for (int i = 0; i < 16; i++) {
    s += buf[i];
  }
  out(s);
  return 0;
}
"#;
    let m = prepare(src);
    let (want_out, want_ret) = reference(&m, vec![]);
    let r = run_dswp(
        &m,
        &DswpOptions {
            num_partitions: 2,
            split_points: Some(vec![0.5, 0.5]),
            ..Default::default()
        },
    );
    check_invariants(&r);
    let (out, ret, _) = run_partitioned(&r, vec![], 100_000_000).unwrap();
    assert_eq!(out, want_out);
    assert_eq!(ret, want_ret);
}

#[test]
fn three_way_split_remains_correct() {
    let m = prepare(PIPELINE_SRC);
    let (want_out, want_ret) = reference(&m, vec![]);
    let r = run_dswp(
        &m,
        &DswpOptions {
            num_partitions: 3,
            split_points: Some(vec![0.34, 0.33, 0.33]),
            ..Default::default()
        },
    );
    check_invariants(&r);
    let (out, ret, _) = run_partitioned(&r, vec![], 100_000_000).unwrap();
    assert_eq!(out, want_out);
    assert_eq!(ret, want_ret);
}

#[test]
fn input_values_flow_through_partitions() {
    let src = r#"
int main() {
  int n = in();
  int acc = 7;
  for (int i = 0; i < n; i++) {
    int x = in();
    int y = (x * 13) ^ (x >> 2);
    acc = acc * 31 + y;
  }
  out(acc);
  return acc;
}
"#;
    let m = prepare(src);
    let input = vec![5, 11, -3, 99, 0, 42];
    let (want_out, want_ret) = reference(&m, input.clone());
    let r = run_dswp(
        &m,
        &DswpOptions {
            num_partitions: 2,
            split_points: Some(vec![0.4, 0.6]),
            ..Default::default()
        },
    );
    check_invariants(&r);
    let (out, ret, _) = run_partitioned(&r, input, 100_000_000).unwrap();
    assert_eq!(out, want_out);
    assert_eq!(ret, want_ret);
}

#[test]
fn calls_are_versioned_per_partition() {
    // A helper called from the pipelined loop: every partition that needs
    // it gets its own version; the result flows to the caller partitions.
    let src = r#"
int mix(int a, int b) { return (a * 31) ^ (b >> 3); }
int main() {
  int acc = 0;
  for (int i = 0; i < 40; i++) {
    acc = mix(acc, i * 2654435761u);
  }
  out(acc);
  return 0;
}
"#;
    let m = prepare(src);
    let (want_out, want_ret) = reference(&m, vec![]);
    for k in [2usize, 3] {
        let r = run_dswp(
            &m,
            &DswpOptions {
                num_partitions: k,
                split_points: Some(vec![1.0 / k as f64; k]),
                ..Default::default()
            },
        );
        check_invariants(&r);
        let (out, ret, _) = run_partitioned(&r, vec![], 100_000_000).unwrap();
        assert_eq!(out, want_out, "k={k}");
        assert_eq!(ret, want_ret, "k={k}");
    }
}

#[test]
fn stats_partition_sizes_cover_all_threads() {
    let m = prepare(PIPELINE_SRC);
    let r = run_dswp(
        &m,
        &DswpOptions {
            num_partitions: 2,
            split_points: Some(vec![0.5, 0.5]),
            ..Default::default()
        },
    );
    assert_eq!(r.stats.partitions, r.threads.len());
    assert_eq!(r.stats.insts_per_partition.len(), r.stats.partitions);
    // Forced even split: both partitions hold real work.
    assert!(r.stats.insts_per_partition.iter().all(|&n| n > 0), "{:?}", r.stats);
}
