//! Property: the DSWP extraction is semantics-preserving for *every*
//! combination of its options. For random partition counts, split points
//! and toggles, the partitioned co-execution must reproduce the reference
//! interpreter's output stream and return value exactly, and the emitted
//! module must pass the IR verifier.

use proptest::prelude::*;
use twill_dswp::{run_dswp, run_partitioned, DswpOptions};

const PROGRAMS: &[&str] = &[
    // Forward-decoupling hash pipeline.
    r#"
int main() {
  unsigned int acc = 0;
  for (int i = 0; i < 30; i++) {
    unsigned int x = (unsigned int)(i * 2654435761u);
    unsigned int y = (x >> 7) ^ (x << 3);
    acc = acc * 31 + y;
  }
  out((int) acc);
  return 0;
}
"#,
    // Memory-carried: produce into an array, then reduce it.
    r#"
int buf[24];
int main() {
  for (int i = 0; i < 24; i++) buf[i] = (i * 17) ^ (i << 4);
  int s = 0;
  for (int i = 0; i < 24; i++) s += buf[i];
  out(s);
  return s;
}
"#,
    // Call in the hot loop + data-dependent control.
    r#"
int mix(int a, int b) { return (a * 31) ^ (b >> 3); }
int main() {
  int acc = 7;
  for (int i = 0; i < 25; i++) {
    if (i % 3 == 0) acc = mix(acc, i * 1103515245);
    else acc = acc + i;
  }
  out(acc);
  return 0;
}
"#,
];

fn prepare(src: &str) -> twill_ir::Module {
    let mut m = twill_frontend::compile("t", src).unwrap();
    twill_passes::run_standard_pipeline(&mut m, &Default::default());
    m
}

fn split_strategy() -> impl Strategy<Value = (usize, Vec<f64>)> {
    (2usize..=4).prop_flat_map(|k| {
        (
            Just(k),
            proptest::collection::vec(1u32..=10, k).prop_map(|raw| {
                let total: u32 = raw.iter().sum();
                raw.iter().map(|&r| r as f64 / total as f64).collect()
            }),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn any_option_combination_preserves_semantics(
        prog_idx in 0usize..PROGRAMS.len(),
        (k, splits) in split_strategy(),
        prune in any::<bool>(),
        phi_const_pairs in any::<bool>(),
        freq_weights in any::<bool>(),
        reuse_queues in any::<bool>(),
    ) {
        let m = prepare(PROGRAMS[prog_idx]);
        let (want_out, want_ret, _) =
            twill_ir::interp::run_main(&m, vec![], 50_000_000).unwrap();

        let opts = DswpOptions {
            num_partitions: k,
            split_points: Some(splits),
            prune,
            phi_const_pairs,
            freq_weights,
            reuse_queues,
            ..Default::default()
        };
        let r = run_dswp(&m, &opts);
        twill_ir::verifier::assert_valid(&r.module);
        prop_assert_eq!(r.stats.queues, r.stats.data_queues + r.stats.token_queues);

        let (out, ret, _) = run_partitioned(&r, vec![], 200_000_000)
            .map_err(|e| TestCaseError::fail(format!("co-execution failed: {e}")))?;
        prop_assert_eq!(&out, &want_out);
        prop_assert_eq!(ret, want_ret);
    }
}
