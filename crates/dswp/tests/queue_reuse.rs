//! The thesis §5.2 queue-reuse optimization: queues between the same
//! partition pair in different functions share hardware, guarded by
//! semaphores when call sites may overlap.

use twill_dswp::{run_dswp, run_partitioned, DswpOptions};

fn prepared() -> twill_ir::Module {
    // Two callees, each with cross-partition traffic, called from main's
    // loop — reusable queue pairs across @stage_a/@stage_b.
    let src = r#"
int stage_a(int x) {
  int r = 0;
  for (int i = 0; i < 6; i++) r += (x ^ i) * 3;
  return r;
}
int stage_b(int x) {
  int r = 1;
  for (int i = 0; i < 6; i++) r = r * 2 + (x & i);
  return r;
}
int main() {
  int acc = 0;
  for (int i = 0; i < 10; i++) {
    acc += stage_a(i) - stage_b(acc);
  }
  out(acc);
  return 0;
}
"#;
    let mut m = twill_frontend::compile("reuse", src).unwrap();
    // Keep the callees out-of-line.
    let opts = twill_passes::PipelineOptions {
        inline: twill_passes::inline::InlineOptions {
            small_threshold: 0,
            single_site_threshold: 0,
            ..Default::default()
        },
        ..Default::default()
    };
    twill_passes::run_standard_pipeline(&mut m, &opts);
    assert!(m.funcs.len() >= 3, "callees must survive");
    m
}

#[test]
fn reuse_reduces_queues_and_preserves_semantics() {
    let m = prepared();
    let base_opts =
        DswpOptions { num_partitions: 2, split_points: Some(vec![0.5, 0.5]), ..Default::default() };
    let plain = run_dswp(&m, &base_opts);
    let reuse = run_dswp(&m, &DswpOptions { reuse_queues: true, ..base_opts.clone() });

    assert!(
        reuse.stats.queues <= plain.stats.queues,
        "reuse should not increase queues: {} vs {}",
        reuse.stats.queues,
        plain.stats.queues
    );

    let (out_plain, _, _) = run_partitioned(&plain, vec![], 100_000_000).unwrap();
    let (out_reuse, _, _) = run_partitioned(&reuse, vec![], 100_000_000).unwrap();
    assert_eq!(out_plain, out_reuse, "queue reuse changed behaviour");

    // Cycle-accurate too.
    let r1 = twill_rt::simulate_hybrid(&plain, vec![], &Default::default()).unwrap();
    let r2 = twill_rt::simulate_hybrid(&reuse, vec![], &Default::default()).unwrap();
    assert_eq!(r1.output, r2.output);
}

#[test]
fn reuse_semaphore_accounting_is_bounded() {
    let m = prepared();
    let reuse = run_dswp(
        &m,
        &DswpOptions {
            num_partitions: 2,
            split_points: Some(vec![0.5, 0.5]),
            reuse_queues: true,
            ..Default::default()
        },
    );
    assert!(reuse.stats.semaphores <= m.funcs.len());
}
