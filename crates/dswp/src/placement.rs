//! SCC-to-partition assignment (the thesis' greedy partitioning heuristic).

use twill_ir::Function;
use twill_pdg::{NodeWeights, Pdg, SccDag, SccId};

/// DSWP configuration.
#[derive(Debug, Clone)]
pub struct DswpOptions {
    /// Total number of partitions (pipeline stages). Partition 0 is the
    /// software master thread; 1..n are hardware threads.
    pub num_partitions: usize,
    /// Targeted fraction of estimated work for the software partition
    /// (thesis default ≈ 25%: "a workload split of about 75%-25% between
    /// the hardware threads and the software thread").
    pub sw_fraction: f64,
    /// Optional explicit per-partition work targets (overrides
    /// `sw_fraction`; must sum to ~1.0). Used by the Fig 6.3/6.4 sweeps.
    pub split_points: Option<Vec<f64>>,
    /// Queue depth for all data queues (paper runs 8×32 queues).
    pub queue_depth: u32,
    /// Per-queue depth overrides `(queue id, depth)`, applied to the
    /// declared depths after extraction materializes the queue set (so
    /// they land in the Verilog FIFOs and the area model, not just the
    /// simulator). Ids past the declared set are ignored; duplicates keep
    /// the last entry. The auto-tuner and `--queue-depths` set these.
    pub queue_depth_overrides: Vec<(usize, u32)>,
    /// Prune irrelevant loops/diamonds per partition (thesis behaviour).
    pub prune: bool,
    /// Include the PHI-constant fake dependence pairs in the PDG.
    pub phi_const_pairs: bool,
    /// Reuse queues between non-overlapping regions, guarded by semaphores
    /// where call sites may overlap (thesis §5.2; ablation option).
    pub reuse_queues: bool,
    /// Scale placement weights by loop-depth frequency estimates so hot
    /// loops dominate the per-partition budgets and get split into
    /// pipeline stages across the hardware threads. Disable for the
    /// flat-static-weight ablation.
    pub freq_weights: bool,
    /// Pin whole call-subtrees to the partition that owns the call (the
    /// thesis' modified Blowfish heuristic, §6.4): when a callee's work is
    /// dominated by one partition, give that partition everything, killing
    /// master-transfer ping-pong.
    pub pin_call_subtrees: bool,
}

impl Default for DswpOptions {
    fn default() -> Self {
        DswpOptions {
            num_partitions: 3,
            sw_fraction: 0.25,
            split_points: None,
            queue_depth: 8,
            queue_depth_overrides: Vec::new(),
            prune: true,
            phi_const_pairs: true,
            reuse_queues: false,
            freq_weights: true,
            pin_call_subtrees: false,
        }
    }
}

impl DswpOptions {
    /// Per-partition work-fraction targets.
    pub fn targets(&self) -> Vec<f64> {
        if let Some(sp) = &self.split_points {
            assert_eq!(sp.len(), self.num_partitions);
            return sp.clone();
        }
        let k = self.num_partitions.max(1);
        if k == 1 {
            return vec![1.0];
        }
        let hw = (1.0 - self.sw_fraction) / (k - 1) as f64;
        let mut v = vec![self.sw_fraction];
        v.extend(std::iter::repeat_n(hw, k - 1));
        v
    }
}

/// Result of partitioning one function.
pub struct Placement {
    /// Partition per SCC.
    pub of_scc: Vec<usize>,
    /// Partition per PDG node.
    pub of_node: Vec<usize>,
    /// Estimated software-cycle weight placed in each partition.
    pub weight: Vec<u64>,
}

impl Placement {
    /// The thesis' greedy: walk the SCC DAG maintaining the set of
    /// *available* SCCs (all predecessors placed); fill partition 0, then
    /// 1, … each up to its targeted share of the total estimated work,
    /// always taking the smallest available SCC by the domain-appropriate
    /// weight. The pipeline property (cross-partition edges only point
    /// from lower to higher partitions) holds by construction.
    pub fn compute(
        f: &Function,
        pdg: &Pdg,
        dag: &SccDag,
        w: &NodeWeights,
        opts: &DswpOptions,
    ) -> Placement {
        Self::compute_for(f, pdg, dag, w, opts, true)
    }

    /// `sw_allowed = false` gives the software stage nothing (used for hot
    /// functions whose every invocation comes from a loop).
    pub fn compute_for(
        f: &Function,
        pdg: &Pdg,
        dag: &SccDag,
        w: &NodeWeights,
        opts: &DswpOptions,
        sw_allowed: bool,
    ) -> Placement {
        // Loop depth of an SCC (max over members) — the software partition
        // prefers shallow (cold) SCCs so hot-loop recurrences stay in
        // hardware; the thesis observes its greedy "works well enough" but
        // §6.5 shows heuristic choice dominates, and keeping hot-loop SCCs
        // off the processor is what its good configurations do.
        let scc_depth: Vec<u32> = (0..dag.len())
            .map(|s| dag.members[s].iter().map(|&n| w.depth[n]).max().unwrap_or(0))
            .collect();
        // Outermost loop per SCC (None = straight-line), so the software
        // stage can absorb *whole* one-shot setup loops atomically: a loop
        // split between SW and HW pays per-iteration stream traffic, but a
        // whole loop on the processor costs startup time only — this is
        // what produces the thesis' 75%/25% static split and the Table 6.2
        // area reduction.
        let dt = twill_passes::domtree::DomTree::new(f);
        let li = twill_passes::loops::LoopInfo::new(f, &dt);
        let block_of_node = |n: usize| pdg.block_of[n];
        let scc_top_loop: Vec<Option<usize>> = (0..dag.len())
            .map(|s| {
                dag.members[s]
                    .iter()
                    .filter_map(|&n| li.loop_chain(block_of_node(n)).last().copied())
                    .next()
            })
            .collect();
        let k = opts.num_partitions.max(1);
        let targets = opts.targets();
        let total: u64 = w.total_sw().max(1);

        let nscc = dag.len();
        let mut of_scc = vec![usize::MAX; nscc];
        let mut unplaced_preds: Vec<usize> = dag.preds.iter().map(|p| p.len()).collect();
        let mut avail: Vec<SccId> =
            (0..nscc).filter(|&s| unplaced_preds[s] == 0).map(|s| SccId(s as u32)).collect();
        let mut weight = vec![0u64; k];
        let mut placed = 0usize;

        for p in 0..k {
            let is_last = p + 1 == k;
            // HW budgets rebalance over what the software stage actually
            // took (it may stop early at the loop boundary, below).
            let budget = if p == 0 {
                (targets[0] * total as f64) as u64
            } else {
                let placed_w: u64 = weight.iter().sum();
                (total - placed_w.min(total)) / (k - p).max(1) as u64
            };
            loop {
                if avail.is_empty() || (!is_last && weight[p] >= budget) {
                    break;
                }
                if placed == nscc {
                    break;
                }
                // Smallest available by appropriate weight; tie-break on
                // first member for determinism.
                let key = |s: SccId| {
                    if p == 0 {
                        // Software: shallowest first, then cheapest.
                        (scc_depth[s.index()] as u64, w.scc_sw(dag, s), dag.members[s.index()][0])
                    } else {
                        // Hardware stages take available SCCs in program
                        // order, producing contiguous pipeline slabs (a
                        // weight-sorted pick interleaves cheap memory SCCs
                        // into early stages and explodes the cut).
                        (0, 0, dag.members[s.index()][0])
                    }
                };
                let (ai, &best) =
                    avail.iter().enumerate().min_by_key(|(_, s)| key(**s)).expect("avail nonempty");
                // The software stage never *splits* a loop: a processor
                // participating in a pipelined loop pays the 5-cycle stream
                // cost per value per iteration and becomes the bottleneck
                // (the thesis' "communication costs skyrocket" at bad split
                // points, §6.5). It may absorb a *whole* loop nest when its
                // entire SCC set fits the remaining budget (one-shot setup
                // loops — the source of the thesis' 75/25 static split and
                // the Table 6.2 area reduction). Explicit split_points (the
                // Fig 6.3/6.4 sweeps) disable this guard.
                if p == 0 && opts.split_points.is_none() && !sw_allowed {
                    break;
                }
                if p == 0 && opts.split_points.is_none() && scc_depth[best.index()] > 0 {
                    let Some(top) = scc_top_loop[best.index()] else { break };
                    let loop_sccs: Vec<usize> = (0..nscc)
                        .filter(|&s| of_scc[s] == usize::MAX && scc_top_loop[s] == Some(top))
                        .collect();
                    let loop_weight: u64 =
                        loop_sccs.iter().map(|&s| w.scc_sw(dag, SccId(s as u32))).sum();
                    if weight[0] + loop_weight > budget {
                        break;
                    }
                    // Trial absorption on a snapshot: take depth-0 and
                    // this-loop SCCs in topo order until the loop is fully
                    // placed; roll back if stuck on a foreign dependency.
                    let snap =
                        (of_scc.clone(), unplaced_preds.clone(), avail.clone(), weight[0], placed);
                    let mut ok = false;
                    let mut remaining: std::collections::BTreeSet<usize> =
                        loop_sccs.iter().copied().collect();
                    loop {
                        if remaining.is_empty() {
                            ok = true;
                            break;
                        }
                        let cand = avail
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| {
                                remaining.contains(&s.index()) || scc_depth[s.index()] == 0
                            })
                            .min_by_key(|(_, s)| dag.members[s.index()][0])
                            .map(|(i, s)| (i, *s));
                        let Some((ci, cs)) = cand else { break };
                        if weight[0] + w.scc_sw(dag, cs) > budget + budget / 4 {
                            break;
                        }
                        avail.swap_remove(ci);
                        of_scc[cs.index()] = 0;
                        weight[0] += w.scc_sw(dag, cs);
                        placed += 1;
                        remaining.remove(&cs.index());
                        for &nx in &dag.succs[cs.index()] {
                            unplaced_preds[nx.index()] -= 1;
                            if unplaced_preds[nx.index()] == 0 {
                                avail.push(nx);
                            }
                        }
                    }
                    if !ok {
                        let (so, su, sa, sw0, spl) = snap;
                        of_scc = so;
                        unplaced_preds = su;
                        avail = sa;
                        weight[0] = sw0;
                        placed = spl;
                        break;
                    }
                    continue;
                }
                avail.swap_remove(ai);
                of_scc[best.index()] = p;
                weight[p] += w.scc_sw(dag, best);
                placed += 1;
                for &nx in &dag.succs[best.index()] {
                    unplaced_preds[nx.index()] -= 1;
                    if unplaced_preds[nx.index()] == 0 {
                        avail.push(nx);
                    }
                }
            }
        }
        // Anything left (when budgets rounded down) goes to the last
        // partition in topological order.
        while placed < nscc {
            let (ai, &best) = avail
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| dag.members[s.index()][0])
                .expect("DAG must drain");
            avail.swap_remove(ai);
            of_scc[best.index()] = k - 1;
            weight[k - 1] += w.scc_sw(dag, best);
            placed += 1;
            for &nx in &dag.succs[best.index()] {
                unplaced_preds[nx.index()] -= 1;
                if unplaced_preds[nx.index()] == 0 {
                    avail.push(nx);
                }
            }
        }

        let of_node: Vec<usize> = (0..pdg.len()).map(|n| of_scc[dag.scc_of[n].index()]).collect();
        Placement { of_scc, of_node, weight }
    }

    /// Validate the pipeline property: every PDG edge goes to an equal or
    /// higher partition, except edges into replicated instructions (which
    /// extraction handles via backward-safe forwarding).
    pub fn pipeline_violations(&self, pdg: &Pdg) -> usize {
        let mut v = 0;
        for (t, h, _) in pdg.all_edges() {
            if self.of_node[t] > self.of_node[h] {
                v += 1;
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_passes::callgraph::function_effects;
    use twill_pdg::PdgOptions;

    fn place(src: &str, opts: &DswpOptions) -> (Placement, Pdg, SccDag) {
        let m = twill_ir::parser::parse_module(src).unwrap();
        let fx = function_effects(&m);
        let pdg =
            Pdg::build(&m, &m.funcs[0], &fx, &PdgOptions { phi_const_pairs: opts.phi_const_pairs });
        let dag = SccDag::new(&pdg);
        let w = NodeWeights::compute(&m.funcs[0], &pdg);
        let p = Placement::compute(&m.funcs[0], &pdg, &dag, &w, opts);
        (p, pdg, dag)
    }

    const PIPE: &str = r#"
func @f(i32) -> void {
bb0:
  br bb1
bb1:
  %i = phi i32 [bb0: 0:i32], [bb1: %ni]
  %ni = add i32 %i, 1:i32
  %x = mul i32 %i, 3:i32
  %y = mul i32 %x, %x
  %z = add i32 %y, 7:i32
  out %z
  %c = cmp slt %ni, %a0
  condbr %c, bb1, bb2
bb2:
  ret
}
"#;

    #[test]
    fn all_sccs_placed_and_pipeline_holds() {
        let opts = DswpOptions { num_partitions: 3, ..Default::default() };
        let (p, pdg, dag) = place(PIPE, &opts);
        assert!(p.of_scc.iter().all(|&x| x < 3));
        assert_eq!(p.pipeline_violations(&pdg), 0);
        assert_eq!(p.of_scc.len(), dag.len());
    }

    #[test]
    fn single_partition_takes_everything() {
        let opts = DswpOptions { num_partitions: 1, ..Default::default() };
        let (p, _, _) = place(PIPE, &opts);
        assert!(p.of_scc.iter().all(|&x| x == 0));
    }

    #[test]
    fn sw_fraction_steers_partition_zero_weight() {
        let small = DswpOptions { num_partitions: 2, sw_fraction: 0.1, ..Default::default() };
        let large = DswpOptions { num_partitions: 2, sw_fraction: 0.9, ..Default::default() };
        let (ps, _, _) = place(PIPE, &small);
        let (pl, _, _) = place(PIPE, &large);
        let tot_s: u64 = ps.weight.iter().sum();
        let tot_l: u64 = pl.weight.iter().sum();
        assert_eq!(tot_s, tot_l);
        assert!(ps.weight[0] <= pl.weight[0]);
    }

    #[test]
    fn explicit_split_points() {
        let opts = DswpOptions {
            num_partitions: 2,
            split_points: Some(vec![0.5, 0.5]),
            ..Default::default()
        };
        let (p, _, _) = place(PIPE, &opts);
        let tot: u64 = p.weight.iter().sum();
        assert!(p.weight[0] > 0 && p.weight[0] < tot);
    }

    #[test]
    fn targets_sum_to_one() {
        let opts = DswpOptions { num_partitions: 4, sw_fraction: 0.25, ..Default::default() };
        let t = opts.targets();
        assert_eq!(t.len(), 4);
        assert!((t.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((t[0] - 0.25).abs() < 1e-9);
        assert!((t[1] - 0.25).abs() < 1e-9);
    }
}
