//! Thread extraction: builds the per-partition functions with queue
//! communication, pruning, and master/slave call handling.

use crate::placement::{DswpOptions, Placement};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use twill_ir::{
    BlockId, FuncId, Function, InstId, Intr, Module, Op, QueueDecl, QueueId, SemDecl, Ty, Value,
};
use twill_passes::callgraph::{function_effects, CallGraph};
use twill_passes::domtree::PostDomTree;
use twill_pdg::{DepKind, NodeWeights, Pdg, PdgOptions, SccDag};

/// One extracted thread.
#[derive(Debug, Clone)]
pub struct ThreadSpec {
    /// Entry function (`main_dswp_<p>`) in the output module.
    pub entry: FuncId,
    /// Partition index (0 = software master).
    pub partition: usize,
    /// Hardware thread (true) or software thread (false).
    pub is_hw: bool,
}

/// Queue bookkeeping for reporting (Table 6.1).
#[derive(Debug, Clone, Default)]
pub struct DswpStats {
    pub queues: usize,
    pub data_queues: usize,
    pub token_queues: usize,
    pub semaphores: usize,
    pub hw_threads: usize,
    pub partitions: usize,
    /// Instructions placed per partition (whole module).
    pub insts_per_partition: Vec<usize>,
}

/// Output of the DSWP pass.
pub struct DswpResult {
    pub module: Module,
    pub threads: Vec<ThreadSpec>,
    pub stats: DswpStats,
}

impl DswpResult {
    /// Agent track names of the hybrid system this partitioning deploys
    /// to: the software master (`cpu`) followed by one `hw<i>` per
    /// hardware thread, in partition order. This is the naming authority
    /// shared by the simulator's `SimReport`, the observability exporters,
    /// and the hardware performance-counter register map — all three must
    /// agree on it for counter readbacks to line up.
    pub fn agent_names(&self) -> Vec<String> {
        let mut names = vec!["cpu".to_string()];
        names.extend(
            (1..=self.threads.iter().filter(|t| t.is_hw).count()).map(|i| format!("hw{i}")),
        );
        names
    }
}

/// Per-(function, partition) extraction plan.
struct PartPlan {
    needed_args: Vec<u16>,
    /// Foreign defs whose value this partition dequeues.
    needed_defs: Vec<InstId>,
    /// Foreign pure defs this partition re-materializes locally (gaddr).
    remat_defs: BTreeSet<InstId>,
    /// Foreign effectful instructions this partition token-syncs on:
    /// (instruction, producing partition).
    token_defs: Vec<(InstId, usize)>,
    /// Rewritten conditional branches: block -> new unconditional target.
    branch_rewrite: HashMap<BlockId, BlockId>,
    /// Reachable blocks under the rewrites.
    kept: Vec<bool>,
    nonempty: bool,
}

struct FnPlan {
    placement: Placement,
    pdg: Pdg,
    /// PDG node -> owning partition, indexed by InstId arena slot.
    owner_of_inst: Vec<usize>,
    /// SCC id per InstId arena slot (usize::MAX = dead).
    scc_of_inst: Vec<usize>,
    /// Members per SCC.
    scc_members: Vec<Vec<InstId>>,
    /// SCCs cheap and pure enough to replicate into consumer partitions
    /// (loop induction/condition recurrences): avoids per-iteration
    /// condition broadcasts through queues.
    scc_replicable: Vec<bool>,
    parts: Vec<PartPlan>,
    /// Partition owning the (unique) return value, and its node.
    ret_owner: usize,
    has_ret_value: bool,
}

/// Queue allocation key.
#[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy)]
enum QKey {
    /// Value of `def` forwarded from its owner to `consumer`.
    Data(u32 /*func*/, InstId, usize),
    /// Memory/IO ordering token for `def` from `producer` into `consumer`.
    Token(u32, InstId, usize, usize),
}

/// Run DSWP over a prepared module.
pub fn run_dswp(m: &Module, opts: &DswpOptions) -> DswpResult {
    let k = opts.num_partitions.max(1);
    let fx = function_effects(m);
    let cg = CallGraph::new(m);
    // Recursion (thesis §7 extension): recursive call trees and everything
    // they invoke are pinned whole to the software master — "the master
    // function call always being in software" — so no hardware thread ever
    // needs a stack and no queue crosses a recursive region.
    let mut pinned: Vec<bool> =
        if cg.is_recursive() { cg.software_pinned_set(m) } else { vec![false; m.funcs.len()] };
    // Function pointers (thesis §7 extension): address-taken functions can
    // be invoked from anywhere through an indirect call — which DSWP pins
    // to the software master — so they (and their callees) are
    // software-pinned too.
    {
        let mut stack: Vec<usize> = Vec::new();
        for f in &m.funcs {
            for (_, iid) in f.inst_ids_in_layout() {
                if let Op::FuncAddr(t) = &f.inst(iid).op {
                    if !pinned[t.index()] {
                        pinned[t.index()] = true;
                        stack.push(t.index());
                    }
                }
            }
        }
        while let Some(fi) = stack.pop() {
            for &c in &cg.callees[fi] {
                if !pinned[c.index()] {
                    pinned[c.index()] = true;
                    stack.push(c.index());
                }
            }
        }
    }

    // Interprocedural hotness: a function whose every call site sits
    // inside a loop (transitively) is hot — the software stage must not
    // take slices of it, or every invocation ping-pongs between the
    // processor and hardware (the thesis' Blowfish pathology, §6.4).
    let fn_hot = compute_fn_hotness(m, &cg);

    // ---- analysis per function ----
    let pdg_opts = PdgOptions { phi_const_pairs: opts.phi_const_pairs };
    let mut plans: Vec<FnPlan> = Vec::with_capacity(m.funcs.len());
    for fid in m.func_ids() {
        let f = m.func(fid);
        let pdg = Pdg::build(m, f, &fx, &pdg_opts);
        let dag = SccDag::new(&pdg);
        let w = NodeWeights::compute_with(f, &pdg, opts.freq_weights);
        // The thesis iterates the partitioning with different targets
        // (§5.2); we implement that as a static steady-state cost model:
        // try every stage count up to the requested one and keep the
        // cheapest (max over stages of loop-resident work + queue traffic).
        let mut placement = Placement::compute_for(f, &pdg, &dag, &w, opts, !fn_hot[fid.index()]);
        if opts.split_points.is_none() && opts.num_partitions > 2 {
            let mut best_cost = placement_cost(&pdg, &w, &placement, k);
            for k_eff in 2..opts.num_partitions {
                let mut o2 = opts.clone();
                o2.num_partitions = k_eff;
                let cand = Placement::compute_for(f, &pdg, &dag, &w, &o2, !fn_hot[fid.index()]);
                // Re-express in k partitions (unused tail stays empty).
                let mut of_scc = cand.of_scc.clone();
                let mut weight = cand.weight.clone();
                weight.resize(k, 0);
                let of_node: Vec<usize> =
                    (0..pdg.len()).map(|n| of_scc[dag.scc_of[n].index()]).collect();
                let expanded = Placement { of_scc: std::mem::take(&mut of_scc), of_node, weight };
                let cost = placement_cost(&pdg, &w, &expanded, k);
                if cost < best_cost {
                    best_cost = cost;
                    placement = expanded;
                }
            }
        }

        if pinned[fid.index()] {
            // Whole function on the software master.
            placement.of_scc.iter_mut().for_each(|p| *p = 0);
            placement.of_node.iter_mut().for_each(|p| *p = 0);
        }

        // The software master drives program execution (thesis §5.3): in
        // `main`, pin the entry block's terminator chain… we express this
        // by pinning allocas and IO-free entry to partition 0 only when it
        // is main. Simpler faithful rule: nothing to do — partition 0 is
        // always software and main_dswp_0 exists by construction.
        //
        // Allocas: "all allocations … on a single special thread" — pin
        // every alloca's SCC to partition 0 (software memory manager).
        for (n, &iid) in pdg.nodes.iter().enumerate() {
            if matches!(f.inst(iid).op, Op::Alloca(_) | Op::CallIndirect(..)) {
                let scc = dag.scc_of[n];
                reassign_scc_with_preds(&mut placement, &dag, scc, 0);
            }
        }

        let mut owner_of_inst = vec![usize::MAX; f.insts.len()];
        for (n, &iid) in pdg.nodes.iter().enumerate() {
            owner_of_inst[iid.index()] = placement.of_node[n];
        }

        // SCC replication analysis.
        let mut scc_of_inst = vec![usize::MAX; f.insts.len()];
        for (n, &iid) in pdg.nodes.iter().enumerate() {
            scc_of_inst[iid.index()] = dag.scc_of[n].index();
        }
        let scc_members: Vec<Vec<InstId>> =
            dag.members.iter().map(|ms| ms.iter().map(|&n| pdg.nodes[n]).collect()).collect();
        let dt = twill_passes::domtree::DomTree::new(f);
        let li = twill_passes::loops::LoopInfo::new(f, &dt);
        let inst_block = f.inst_blocks();
        let scc_replicable: Vec<bool> = scc_members
            .iter()
            .map(|ms| {
                if ms.len() > 16 {
                    return false;
                }
                // Pure, cheap ops only (ROM loads allowed).
                for &iid in ms {
                    let inst = f.inst(iid);
                    let ok = match &inst.op {
                        Op::Load(a) => m.const_global_base(f, *a).is_some(),
                        Op::Store(..)
                        | Op::Call(..)
                        | Op::CallIndirect(..)
                        | Op::Intrin(..)
                        | Op::Alloca(_) => false,
                        Op::Bin(b, _, _) if b.can_trap() => false,
                        _ => true,
                    };
                    if !ok {
                        return false;
                    }
                }
                // The SCC's loop: external operands must come from outside
                // it (forwarded once per entry, not per iteration).
                let blocks: Vec<twill_ir::BlockId> =
                    ms.iter().filter_map(|&iid| inst_block[iid.index()]).collect();
                let Some(&first) = blocks.first() else { return false };
                let mut common: Option<usize> = li.loop_of(first);
                for &b in &blocks[1..] {
                    common = match common {
                        Some(l) => li.lowest_common_loop(li.loops[l].header, b),
                        None => None,
                    };
                }
                if let Some(l) = common {
                    let member_set: std::collections::HashSet<InstId> =
                        ms.iter().copied().collect();
                    for &iid in ms {
                        let mut bad = false;
                        f.inst(iid).op.for_each_value(|v| {
                            if let Value::Inst(d) = v {
                                if !member_set.contains(&d) {
                                    if let Some(db) = inst_block[d.index()] {
                                        if li.in_loop(l, db) {
                                            bad = true;
                                        }
                                    }
                                }
                            }
                        });
                        if bad {
                            return false;
                        }
                    }
                }
                true
            })
            .collect();

        // Return ownership.
        let mut ret_owner = 0usize;
        let mut has_ret_value = false;
        for (n, &iid) in pdg.nodes.iter().enumerate() {
            if let Op::Ret(v) = &f.inst(iid).op {
                ret_owner = placement.of_node[n];
                has_ret_value = v.is_some();
            }
        }

        plans.push(FnPlan {
            placement,
            pdg,
            owner_of_inst,
            scc_of_inst,
            scc_members,
            scc_replicable,
            parts: Vec::new(),
            ret_owner,
            has_ret_value,
        });
    }

    // ---- per-partition planning, callees before callers ----
    // (pinned functions may form cycles; their summaries are preset below
    // so ordering among them is irrelevant)
    let order: Vec<FuncId> = if pinned.iter().any(|&p| p) {
        cg.reverse_topo_excluding(m, &pinned)
    } else {
        cg.reverse_topo.clone()
    };
    // g_nonempty[f][p], g_needed_args[f][p], g_mem[f][p] (partition's
    // version of f transitively touches memory or the IO stream).
    let mut g_nonempty: Vec<Vec<bool>> = vec![vec![false; k]; m.funcs.len()];
    let mut g_needed_args: Vec<Vec<Vec<u16>>> = vec![vec![Vec::new(); k]; m.funcs.len()];
    let mut g_mem: Vec<Vec<bool>> = vec![vec![false; k]; m.funcs.len()];
    for (fi, &pin) in pinned.iter().enumerate() {
        if pin {
            // Software-master-only: full original signature, runs (and may
            // touch memory) on partition 0 exclusively.
            g_nonempty[fi][0] = true;
            g_needed_args[fi][0] = (0..m.funcs[fi].params.len() as u16).collect();
            g_mem[fi][0] = true;
        }
    }

    for &fid in &order {
        let f = m.func(fid);
        let plan = &plans[fid.index()];
        // Which partitions of this function touch memory/IO directly or
        // through a relevant callee? `p` indexes both the callee rows of
        // `g_mem` (which may alias this function's row under recursion)
        // and the row being written, so a range loop is the honest shape.
        #[allow(clippy::needless_range_loop)]
        for p in 0..k {
            let mut touches = false;
            for (_, iid) in f.inst_ids_in_layout() {
                match &f.inst(iid).op {
                    Op::Load(_) | Op::Store(..) if plan.owner_of_inst[iid.index()] == p => {
                        touches = true;
                    }
                    Op::Intrin(Intr::Out | Intr::In, _) if plan.owner_of_inst[iid.index()] == p => {
                        touches = true;
                    }
                    Op::Call(c, _) if g_mem[c.index()][p] => {
                        touches = true;
                    }
                    _ => {}
                }
            }
            g_mem[fid.index()][p] = touches;
        }
        let ret_owners: Vec<(usize, bool)> =
            plans.iter().map(|pl| (pl.ret_owner, pl.has_ret_value)).collect();
        let mut parts = Vec::with_capacity(k);
        for p in 0..k {
            let part = plan_partition(
                m,
                f,
                fid,
                plan,
                p,
                opts,
                &g_nonempty,
                &g_needed_args,
                &g_mem,
                &ret_owners,
            );
            parts.push(part);
        }
        // A callee whose return value callers may consume must have its
        // ret-owner version instantiated even if otherwise empty (e.g. a
        // function returning a constant).
        if plan.has_ret_value && plan.ret_owner < k {
            parts[plan.ret_owner].nonempty = true;
        }
        if pinned[fid.index()] {
            // Keep the preset full-signature summary (self-calls were
            // planned against it).
            parts[0].needed_args = (0..f.params.len() as u16).collect();
            parts[0].nonempty = true;
        }
        // Producer side of non-emptiness: p is active if any sibling
        // partition consumes one of its defs.
        for p in 0..k {
            let ret_owners: Vec<(usize, bool)> =
                plans.iter().map(|pl| (pl.ret_owner, pl.has_ret_value)).collect();
            let produces = (0..k).filter(|&c| c != p).any(|c| {
                parts[c]
                    .needed_defs
                    .iter()
                    .any(|d| value_owner(f, *d, &plan.owner_of_inst, &ret_owners) == p)
                    || parts[c].token_defs.iter().any(|&(_, prod)| prod == p)
            });
            if produces {
                parts[p].nonempty = true;
            }
            g_nonempty[fid.index()][p] = parts[p].nonempty;
            g_needed_args[fid.index()][p] = parts[p].needed_args.clone();
        }
        plans[fid.index()].parts = parts;
    }

    // ---- queue allocation (deterministic order) ----
    // Collect every (def, consumer) pair across all functions/partitions.
    let mut qmap: BTreeMap<QKey, QueueId> = BTreeMap::new();
    let mut out = Module::new(format!("{}.dswp", m.name));
    out.globals = m.globals.clone();
    for fid in m.func_ids() {
        let f = m.func(fid);
        let plan = &plans[fid.index()];
        for p in 0..k {
            for &d in &plan.parts[p].needed_defs {
                let ty = queue_width(f.inst(d).ty);
                let key = QKey::Data(fid.0, d, p);
                qmap.entry(key).or_insert_with(|| {
                    out.add_queue(QueueDecl { width: ty, depth: opts.queue_depth })
                });
            }
            for &(d, prod) in &plan.parts[p].token_defs {
                let key = QKey::Token(fid.0, d, prod, p);
                qmap.entry(key).or_insert_with(|| {
                    out.add_queue(QueueDecl { width: Ty::I1, depth: opts.queue_depth })
                });
            }
        }
    }

    // ---- build partition functions ----
    // Function ids in the output module: func_ids[orig][p].
    let mut func_ids: Vec<Vec<FuncId>> = vec![Vec::new(); m.funcs.len()];
    for fid in m.func_ids() {
        let f = m.func(fid);
        let mut v = Vec::with_capacity(k);
        for p in 0..k {
            let plan = &plans[fid.index()];
            let params: Vec<Ty> =
                plan.parts[p].needed_args.iter().map(|&a| f.params[a as usize]).collect();
            let ret = if p == plan.ret_owner && plan.has_ret_value { f.ret } else { Ty::Void };
            let nf = Function::new(format!("{}_dswp_{}", f.name, p), params, ret);
            v.push(out.add_func(nf));
        }
        func_ids[fid.index()] = v;
    }

    let mut data_queues = 0usize;
    let mut token_queues = 0usize;
    for key in qmap.keys() {
        match key {
            QKey::Data(..) => data_queues += 1,
            QKey::Token(..) => token_queues += 1,
        }
    }

    let mut insts_per_partition = vec![0usize; k];
    for fid in m.func_ids() {
        let f = m.func(fid);
        let plan = &plans[fid.index()];
        for p in 0..k {
            let built = build_partition_function(
                m,
                f,
                fid,
                plan,
                p,
                &qmap,
                &func_ids,
                &g_needed_args,
                &g_nonempty,
                &plans,
            );
            insts_per_partition[p] += count_real_insts(&built);
            out.funcs[func_ids[fid.index()][p].index()] = built;
        }
    }

    // ---- optional queue reuse with semaphore guards ----
    let mut semaphores = 0usize;
    if opts.reuse_queues {
        semaphores = reuse_queues(&mut out, m, &cg);
    }

    // Per-queue depth overrides land in the declared depths so the
    // Verilog FIFOs and area model see them, not just the simulator.
    // Queue ids are deterministic (BTreeMap allocation order above), so
    // an override tuned against one run names the same queue in the next.
    for &(id, depth) in &opts.queue_depth_overrides {
        if let Some(q) = out.queues.get_mut(id) {
            q.depth = depth.max(1);
        }
    }

    twill_ir::layout::assign_global_addrs(&mut out);

    // ---- threads ----
    let main = m.find_func("main").expect("module needs @main");
    let mut threads = Vec::new();
    for (p, _) in (0..k).enumerate() {
        // A partition participates if any function is nonempty for it.
        let active = (0..m.funcs.len()).any(|fi| g_nonempty[fi][p]) || p == 0;
        if active {
            threads.push(ThreadSpec {
                entry: func_ids[main.index()][p],
                partition: p,
                is_hw: p != 0,
            });
        }
    }
    let hw_threads = threads.iter().filter(|t| t.is_hw).count();

    let stats = DswpStats {
        queues: out.queues.len(),
        data_queues,
        token_queues,
        semaphores,
        hw_threads,
        partitions: k,
        insts_per_partition,
    };
    DswpResult { module: out, threads, stats }
}

fn queue_width(ty: Ty) -> Ty {
    match ty {
        Ty::I1 => Ty::I1,
        Ty::I8 => Ty::I8,
        Ty::I16 => Ty::I16,
        _ => Ty::I32,
    }
}

/// Move an SCC (and, transitively, its unplaced-constraint predecessors if
/// they sit in higher partitions) to `target`, preserving the pipeline
/// property.
fn reassign_scc_with_preds(
    placement: &mut Placement,
    dag: &SccDag,
    scc: twill_pdg::SccId,
    target: usize,
) {
    let mut stack = vec![scc];
    while let Some(s) = stack.pop() {
        if placement.of_scc[s.index()] <= target {
            continue; // already at or below the target stage: pipeline ok
        }
        placement.of_scc[s.index()] = target;
        for &pr in &dag.preds[s.index()] {
            if placement.of_scc[pr.index()] > target {
                stack.push(pr);
            }
        }
    }
    // Rebuild node map.
    for n in 0..placement.of_node.len() {
        placement.of_node[n] = placement.of_scc[dag.scc_of[n].index()];
    }
}

/// Can this instruction be re-materialized in any partition instead of
/// being forwarded through a queue?
fn is_remat(op: &Op) -> bool {
    matches!(op, Op::GlobalAddr(_))
}

/// Static steady-state cost of a placement: the slowest pipeline stage's
/// per-iteration work plus its queue traffic (2 cycles per enqueue or
/// dequeue of a loop-resident cross-partition value). The software stage's
/// work is weighted by the CPU cost table.
fn placement_cost(pdg: &Pdg, w: &NodeWeights, placement: &Placement, k: usize) -> u64 {
    let mut work = vec![0u64; k];
    for n in 0..pdg.len() {
        if w.depth[n] == 0 {
            continue;
        }
        let p = placement.of_node[n];
        // Rough HW throughput: ~3 chained ops per cycle; SW is the table.
        work[p] += if p == 0 { w.sw[n] * 2 } else { 1 };
    }
    for w in work.iter_mut().skip(1) {
        *w = w.div_ceil(3);
    }
    // Queue traffic per iteration: distinct (def, consumer) pairs for
    // loop-resident cross-partition data/memory edges.
    let mut pairs: std::collections::BTreeSet<(usize, usize)> = std::collections::BTreeSet::new();
    for (t, h, kind) in pdg.all_edges() {
        if matches!(kind, DepKind::Data | DepKind::Memory) {
            let (pt, ph) = (placement.of_node[t], placement.of_node[h]);
            if pt != ph && w.depth[t] > 0 {
                pairs.insert((t, ph));
            }
        }
    }
    let mut enq = vec![0u64; k];
    let mut deq = vec![0u64; k];
    for (t, ph) in pairs {
        enq[placement.of_node[t]] += 2;
        deq[ph] += 2;
    }
    (0..k)
        .map(|p| {
            let q = enq[p] + deq[p];
            work[p] + if p == 0 { q * 5 / 2 } else { q }
        })
        .max()
        .unwrap_or(0)
}

/// Hot = every call site is inside a loop, or inside a hot caller.
/// `main` is never hot; unreachable functions are hot (doesn't matter).
fn compute_fn_hotness(m: &Module, cg: &CallGraph) -> Vec<bool> {
    let n = m.funcs.len();
    let main = m.find_func("main");
    let mut hot = vec![true; n];
    if let Some(main) = main {
        hot[main.index()] = false;
    }
    // Iterate to fixpoint: a callee is cold if some cold caller calls it
    // from outside any loop.
    let mut changed = true;
    while changed {
        changed = false;
        for fid in m.func_ids() {
            if hot[fid.index()] {
                continue;
            }
            let f = m.func(fid);
            let dt = twill_passes::domtree::DomTree::new(f);
            let li = twill_passes::loops::LoopInfo::new(f, &dt);
            for (b, iid) in f.inst_ids_in_layout() {
                if let Op::Call(c, _) = &f.inst(iid).op {
                    if li.loop_of(b).is_none() && hot[c.index()] {
                        hot[c.index()] = false;
                        changed = true;
                    }
                }
            }
        }
    }
    let _ = cg;
    hot
}

/// The partition that *produces the SSA value* of an instruction. For call
/// instructions the result materializes in the callee's ret-owner
/// partition (that partition's callee version has the non-void return);
/// for everything else it is the instruction's placement.
fn value_owner(
    f: &Function,
    iid: InstId,
    owner_of_inst: &[usize],
    ret_owners: &[(usize, bool)],
) -> usize {
    match &f.inst(iid).op {
        Op::Call(c, _) => {
            let (ro, has) = ret_owners[c.index()];
            if has {
                ro
            } else {
                owner_of_inst[iid.index()]
            }
        }
        _ => owner_of_inst[iid.index()],
    }
}

fn count_real_insts(f: &Function) -> usize {
    f.inst_ids_in_layout().iter().filter(|(_, i)| !matches!(f.inst(*i).op, Op::Br(_))).count()
}

/// Compute the extraction plan for one (function, partition).
#[allow(clippy::too_many_arguments)]
fn plan_partition(
    m: &Module,
    f: &Function,
    fid: FuncId,
    plan: &FnPlan,
    p: usize,
    opts: &DswpOptions,
    g_nonempty: &[Vec<bool>],
    g_needed_args: &[Vec<Vec<u16>>],
    g_mem: &[Vec<bool>],
    ret_owners: &[(usize, bool)],
) -> PartPlan {
    let _ = fid;
    let owner = &plan.owner_of_inst;
    // Value-producer ownership (differs from placement for calls).
    let vowner = |iid: InstId| value_owner(f, iid, owner, ret_owners);
    let pdg = &plan.pdg;
    let pdt = PostDomTree::new(f);
    let k = plan.placement.weight.len();

    // Token deps: cross-partition memory/IO ordering edges whose *head*
    // this partition executes. Calls expand to every partition whose
    // callee version touches memory (the callee's memory ops run in all
    // those threads).
    let expand = |node: usize| -> Vec<usize> {
        let iid = pdg.nodes[node];
        match &f.inst(iid).op {
            Op::Call(c, _) => (0..k).filter(|&q| g_mem[c.index()][q]).collect(),
            _ => vec![plan.placement.of_node[node]],
        }
    };
    let mut token_defs: BTreeSet<(InstId, usize)> = BTreeSet::new();
    for (t, h, kind) in pdg.all_edges() {
        if kind == DepKind::Memory {
            let producers = expand(t);
            let consumers = expand(h);
            if consumers.contains(&p) {
                for &prod in &producers {
                    if prod != p {
                        token_defs.insert((pdg.nodes[t], prod));
                    }
                }
            }
        }
    }

    // Relevant calls for p.
    let call_relevant = |iid: InstId| -> bool {
        match &f.inst(iid).op {
            Op::Call(c, _) => g_nonempty[c.index()][p],
            _ => false,
        }
    };

    // Fixpoint: needed defs/args ↔ kept branches.
    #[allow(unused_assignments)]
    let mut needed_defs: BTreeSet<InstId> = BTreeSet::new();
    #[allow(unused_assignments)]
    let mut needed_args: BTreeSet<u16> = BTreeSet::new();
    let mut branch_rewrite: HashMap<BlockId, BlockId> = HashMap::new();
    let mut kept: Vec<bool> = vec![true; f.blocks.len()];
    let owned = |iid: InstId| owner[iid.index()] == p;

    // Uses contributed by p's own (non-branch) instructions + relevant
    // call args + owned ret operands. These are iteration-independent.
    let mut base_uses: Vec<Value> = Vec::new();
    for (_, iid) in f.inst_ids_in_layout() {
        let inst = f.inst(iid);
        match &inst.op {
            Op::Br(_) | Op::CondBr(..) | Op::Switch(..) => {}
            Op::Ret(Some(v)) if owned(iid) && p == plan.ret_owner => {
                base_uses.push(*v);
            }
            Op::Call(c, args)
                // p passes exactly the args its callee's p-version needs;
                // callees are planned before callers (reverse topo), so the
                // exact list is available.
                if call_relevant(iid) => {
                    for &a in &g_needed_args[c.index()][p] {
                        base_uses.push(args[a as usize]);
                    }
                }
            _ if owned(iid) => {
                inst.op.for_each_value(|v| base_uses.push(v));
            }
            _ => {}
        }
    }

    // Classify a set of root uses into queue-forwarded defs, argument
    // needs and locally re-materialized defs (single pure ops and whole
    // replicable SCCs, transitively through their external operands).
    let classify = |roots: &[Value]| -> (BTreeSet<InstId>, BTreeSet<u16>, BTreeSet<InstId>) {
        let mut defs: BTreeSet<InstId> = BTreeSet::new();
        let mut args: BTreeSet<u16> = BTreeSet::new();
        let mut remat: BTreeSet<InstId> = BTreeSet::new();
        let mut work: Vec<Value> = roots.to_vec();
        let mut seen: BTreeSet<Value> = BTreeSet::new();
        while let Some(v) = work.pop() {
            if !seen.insert(v) {
                continue;
            }
            match v {
                Value::Imm(..) => {}
                Value::Arg(n) => {
                    args.insert(n);
                }
                Value::Inst(d) => {
                    if vowner(d) == p {
                        continue;
                    }
                    let op = &f.inst(d).op;
                    if is_remat(op) {
                        remat.insert(d);
                        continue;
                    }
                    let scc = plan.scc_of_inst[d.index()];
                    if scc != usize::MAX && plan.scc_replicable[scc] {
                        // Clone the whole recurrence; its external operands
                        // become further roots.
                        for &mem in &plan.scc_members[scc] {
                            if f.inst(mem).op.is_terminator() {
                                continue;
                            }
                            if remat.insert(mem) {
                                f.inst(mem).op.for_each_value(|ov| work.push(ov));
                            }
                        }
                    } else {
                        defs.insert(d);
                    }
                }
            }
        }
        (defs, args, remat)
    };

    // Seed with base uses only; conditions join the need set only for
    // branches that survive pruning (starting from keep-all would let
    // every loop keep itself alive through its own condition dequeue).
    let mut remat_defs: BTreeSet<InstId>;
    {
        let (d, a, r) = classify(&base_uses);
        needed_defs = d;
        needed_args = a;
        remat_defs = r;
    }
    loop {
        // Relevance from the current need set.
        let mut relevant = vec![false; f.blocks.len()];
        relevant[f.entry.index()] = true;
        let inst_block = f.inst_blocks();
        for (b, iid) in f.inst_ids_in_layout() {
            let inst = f.inst(iid);
            let rel = match &inst.op {
                Op::Br(_) | Op::CondBr(..) | Op::Switch(..) => false,
                Op::Ret(_) => true,
                Op::Call(..) => call_relevant(iid),
                _ => owned(iid),
            };
            if rel {
                relevant[b.index()] = true;
            }
        }
        for d in
            needed_defs.iter().chain(remat_defs.iter()).chain(token_defs.iter().map(|(d, _)| d))
        {
            if let Some(b) = inst_block[d.index()] {
                relevant[b.index()] = true;
            }
        }
        // Producer side: blocks where p owns a def some sibling consumes
        // are covered by the `owned` rule above.
        // Phi-pred forcing: predecessors of blocks holding phis this
        // partition materializes must stay, so incoming lists survive.
        let preds_tbl = f.predecessors();
        for (b, iid) in f.inst_ids_in_layout() {
            if matches!(f.inst(iid).op, Op::Phi(_))
                && (owned(iid) || needed_defs.contains(&iid) || remat_defs.contains(&iid))
            {
                for &pr in &preds_tbl[b.index()] {
                    relevant[pr.index()] = true;
                }
                relevant[b.index()] = true;
            }
        }

        // Pruning: rewrite a CondBr at B to Br(ipdom(B)) when no relevant
        // block lies strictly between B and its immediate post-dominator.
        let mut new_rewrites: HashMap<BlockId, BlockId> = HashMap::new();
        if opts.prune {
            for b in f.block_ids() {
                let Some(t) = f.block(b).terminator() else { continue };
                if !matches!(f.inst(t).op, Op::CondBr(..)) {
                    continue;
                }
                let Some(ipd) = pdt.ipdom[b.index()] else { continue };
                let mut region_relevant = false;
                let mut seen = vec![false; f.blocks.len()];
                let mut stack: Vec<BlockId> =
                    f.successors(b).into_iter().filter(|s| *s != ipd).collect();
                while let Some(x) = stack.pop() {
                    if seen[x.index()] {
                        continue;
                    }
                    seen[x.index()] = true;
                    if relevant[x.index()] {
                        region_relevant = true;
                        break;
                    }
                    for s in f.successors(x) {
                        if s != ipd && !seen[s.index()] {
                            stack.push(s);
                        }
                    }
                }
                if !region_relevant {
                    new_rewrites.insert(b, ipd);
                }
            }
        }

        // Reachability under the rewrites.
        let mut new_kept = vec![false; f.blocks.len()];
        let mut stack = vec![f.entry];
        new_kept[f.entry.index()] = true;
        while let Some(b) = stack.pop() {
            let succs: Vec<BlockId> = match new_rewrites.get(&b) {
                Some(t) => vec![*t],
                None => f.successors(b),
            };
            for s in succs {
                if !new_kept[s.index()] {
                    new_kept[s.index()] = true;
                    stack.push(s);
                }
            }
        }

        // Needs: base uses plus conditions of surviving branches.
        let mut uses = base_uses.clone();
        for b in f.block_ids() {
            if !new_kept[b.index()] || new_rewrites.contains_key(&b) {
                continue;
            }
            if let Some(t) = f.block(b).terminator() {
                if let Op::CondBr(c, _, _) = &f.inst(t).op {
                    uses.push(*c);
                }
            }
        }
        let (new_defs, new_args, new_remat) = classify(&uses);

        let fixed = new_defs == needed_defs
            && new_args == needed_args
            && new_remat == remat_defs
            && new_rewrites == branch_rewrite
            && new_kept == kept;
        needed_defs = new_defs;
        needed_args = new_args;
        remat_defs = new_remat;
        branch_rewrite = new_rewrites;
        kept = new_kept;
        if fixed {
            break;
        }
    }
    let _ = m;

    // Non-emptiness (consumer side; the producer side is added by the
    // driver once all partitions of this function are planned).
    let mut nonempty = !needed_defs.is_empty() || !token_defs.is_empty();
    for (_, iid) in f.inst_ids_in_layout() {
        let inst = f.inst(iid);
        match &inst.op {
            Op::Br(_) | Op::CondBr(..) | Op::Switch(..) | Op::Ret(_) => {}
            Op::Call(..) => {
                if call_relevant(iid) {
                    nonempty = true;
                }
            }
            _ => {
                if owned(iid) {
                    nonempty = true;
                }
            }
        }
    }

    PartPlan {
        needed_args: needed_args.into_iter().collect(),
        needed_defs: needed_defs.into_iter().collect(),
        remat_defs,
        token_defs: token_defs.into_iter().collect(),
        branch_rewrite,
        kept,
        nonempty,
    }
}

/// Materialize partition `p`'s function.
#[allow(clippy::too_many_arguments)]
fn build_partition_function(
    m: &Module,
    f: &Function,
    fid: FuncId,
    plan: &FnPlan,
    p: usize,
    qmap: &BTreeMap<QKey, QueueId>,
    func_ids: &[Vec<FuncId>],
    g_needed_args: &[Vec<Vec<u16>>],
    g_nonempty: &[Vec<bool>],
    plans: &[FnPlan],
) -> Function {
    let part = &plan.parts[p];
    let owner = &plan.owner_of_inst;
    let owned = |iid: InstId| owner[iid.index()] == p;
    let ret_owners: Vec<(usize, bool)> =
        plans.iter().map(|pl| (pl.ret_owner, pl.has_ret_value)).collect();
    let vowned = |iid: InstId| value_owner(f, iid, owner, &ret_owners) == p;
    let params: Vec<Ty> = part.needed_args.iter().map(|&a| f.params[a as usize]).collect();
    let ret_ty = if p == plan.ret_owner && plan.has_ret_value { f.ret } else { Ty::Void };
    let mut nf = Function::new(format!("{}_dswp_{}", f.name, p), params, ret_ty);

    // Block mapping: one new block per kept block.
    let mut block_map: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
    for b in f.block_ids() {
        if part.kept[b.index()] {
            block_map[b.index()] = Some(nf.create_block(f.block(b).name.clone()));
        }
    }
    nf.entry = block_map[f.entry.index()].expect("entry always kept");

    let arg_map: HashMap<u16, u16> =
        part.needed_args.iter().enumerate().map(|(i, &a)| (a, i as u16)).collect();

    // Consumers per def (for enqueue emission): consumer partitions that
    // listed `def` in needed_defs / token_defs.
    let mut data_consumers: HashMap<InstId, Vec<usize>> = HashMap::new();
    let mut token_consumers: HashMap<InstId, Vec<usize>> = HashMap::new();
    for (c, cp) in plan.parts.iter().enumerate() {
        if c == p {
            continue;
        }
        for &d in &cp.needed_defs {
            if vowned(d) {
                data_consumers.entry(d).or_default().push(c);
            }
        }
        // Token edges name their producer explicitly (calls fan out).
        for &(d, prod) in &cp.token_defs {
            if prod == p {
                token_consumers.entry(d).or_default().push(c);
            }
        }
    }

    // Value map: original InstId -> new Value.
    let mut vmap: HashMap<InstId, Value> = HashMap::new();
    let needed: BTreeSet<InstId> = part.needed_defs.iter().copied().collect();
    let mut tokens: BTreeMap<InstId, Vec<usize>> = BTreeMap::new();
    for &(d, prod) in &part.token_defs {
        tokens.entry(d).or_default().push(prod);
    }

    // Remat cache per (block scope): GlobalAddr values materialized at def
    // point.
    let remap = |v: Value, vmap: &HashMap<InstId, Value>| -> Value {
        match v {
            Value::Inst(d) => {
                *vmap.get(&d).unwrap_or_else(|| panic!("@{}[p{}]: unmapped value {}", f.name, p, d))
            }
            Value::Arg(n) => Value::Arg(
                *arg_map
                    .get(&n)
                    .unwrap_or_else(|| panic!("@{}[p{}]: unmapped arg {}", f.name, p, n)),
            ),
            imm => imm,
        }
    };

    // Emit blocks in reverse post-order of the original CFG so every
    // non-phi def is mapped before its uses (defs dominate uses, and a
    // dominator precedes its subtree in RPO); phi operands may still
    // forward-reference and are patched afterwards.
    for b in twill_passes::utils::rpo(f) {
        if !part.kept[b.index()] {
            continue;
        }
        let nb = block_map[b.index()].unwrap();
        let mut cursor: Vec<InstId> = Vec::new(); // non-phi instruction list

        // Rewritten terminator?
        let rewrite = part.branch_rewrite.get(&b).copied();

        for &iid in &f.block(b).insts {
            let inst = f.inst(iid);
            match &inst.op {
                Op::Phi(incoming) => {
                    if owned(iid) {
                        // Clone the phi; incoming preds are guaranteed kept.
                        let inc: Vec<(BlockId, Value)> = incoming
                            .iter()
                            .map(|(pb, v)| {
                                (
                                    block_map[pb.index()].unwrap_or_else(|| {
                                        panic!(
                                            "@{}[p{}]: phi {} pred {} pruned",
                                            f.name, p, iid, pb
                                        )
                                    }),
                                    *v, // patched afterwards (may be fwd ref)
                                )
                            })
                            .collect();
                        let nid = nf.create_inst_at(Op::Phi(inc), inst.ty, f.loc(iid));
                        // Phis form the prefix; push at front section.
                        let nphis = nf
                            .block(nb)
                            .insts
                            .iter()
                            .take_while(|&&i| nf.inst(i).op.is_phi())
                            .count();
                        nf.block_mut(nb).insts.insert(nphis, nid);
                        vmap.insert(iid, Value::Inst(nid));
                        // Producer side.
                        emit_queue_ops_after_def(
                            &mut nf,
                            nb,
                            iid,
                            Value::Inst(nid),
                            fid,
                            p,
                            qmap,
                            &data_consumers,
                            &token_consumers,
                            f,
                        );
                    } else if part.remat_defs.contains(&iid) {
                        // Replicated recurrence phi: clone with original
                        // incoming values (patched after the walk).
                        let inc: Vec<(BlockId, Value)> = incoming
                            .iter()
                            .map(|(pb, v)| {
                                (
                                    block_map[pb.index()].unwrap_or_else(|| {
                                        panic!(
                                            "@{}[p{}]: remat phi {} pred {} pruned",
                                            f.name, p, iid, pb
                                        )
                                    }),
                                    *v,
                                )
                            })
                            .collect();
                        let nid = nf.create_inst_at(Op::Phi(inc), inst.ty, f.loc(iid));
                        let nphis = nf
                            .block(nb)
                            .insts
                            .iter()
                            .take_while(|&&i| nf.inst(i).op.is_phi())
                            .count();
                        nf.block_mut(nb).insts.insert(nphis, nid);
                        vmap.insert(iid, Value::Inst(nid));
                    } else if needed.contains(&iid) {
                        let q = qmap[&QKey::Data(fid.0, iid, p)];
                        let nid = nf.create_inst_at(
                            Op::Intrin(Intr::Dequeue(q), vec![]),
                            dq_ty(inst.ty),
                            f.loc(iid),
                        );
                        cursor.push(nid);
                        vmap.insert(iid, Value::Inst(nid));
                    }
                    if let Some(prods) = tokens.get(&iid) {
                        for &prod in prods {
                            let q = qmap[&QKey::Token(fid.0, iid, prod, p)];
                            let nid = nf.create_inst_at(
                                Op::Intrin(Intr::Dequeue(q), vec![]),
                                Ty::I1,
                                f.loc(iid),
                            );
                            cursor.push(nid);
                        }
                    }
                }
                Op::Br(_) | Op::CondBr(..) | Op::Switch(..) | Op::Ret(_) => {
                    // handled below as terminator
                }
                Op::Call(callee, args) => {
                    let rel = g_nonempty[callee.index()][p];
                    if rel {
                        let cargs: Vec<Value> = g_needed_args[callee.index()][p]
                            .iter()
                            .map(|&a| remap(args[a as usize], &vmap))
                            .collect();
                        let callee_plan = &plans[callee.index()];
                        let crets = if p == callee_plan.ret_owner && callee_plan.has_ret_value {
                            m.func(*callee).ret
                        } else {
                            Ty::Void
                        };
                        let nid = nf.create_inst_at(
                            Op::Call(func_ids[callee.index()][p], cargs),
                            crets,
                            f.loc(iid),
                        );
                        cursor.push(nid);
                        if crets != Ty::Void {
                            vmap.insert(iid, Value::Inst(nid));
                            // p produced the call's value: forward it.
                            emit_enqueues(
                                &mut cursor,
                                &mut nf,
                                iid,
                                Value::Inst(nid),
                                fid,
                                p,
                                qmap,
                                &data_consumers,
                                &token_consumers,
                                f,
                            );
                        } else {
                            // Token producers still signal completion.
                            emit_token_enqueues(
                                &mut cursor,
                                &mut nf,
                                iid,
                                fid,
                                p,
                                qmap,
                                &token_consumers,
                                f,
                            );
                        }
                    }
                    // Consumer of a foreign call result (call not owned /
                    // not result-owning here).
                    if !vmap.contains_key(&iid) && needed.contains(&iid) {
                        let q = qmap[&QKey::Data(fid.0, iid, p)];
                        let nid = nf.create_inst_at(
                            Op::Intrin(Intr::Dequeue(q), vec![]),
                            dq_ty(inst.ty),
                            f.loc(iid),
                        );
                        cursor.push(nid);
                        vmap.insert(iid, Value::Inst(nid));
                    }
                    if let Some(prods) = tokens.get(&iid) {
                        for &prod in prods {
                            let q = qmap[&QKey::Token(fid.0, iid, prod, p)];
                            let nid = nf.create_inst_at(
                                Op::Intrin(Intr::Dequeue(q), vec![]),
                                Ty::I1,
                                f.loc(iid),
                            );
                            cursor.push(nid);
                        }
                    }
                }
                op => {
                    if owned(iid) {
                        let mut new_op = op.clone();
                        new_op.for_each_value_mut(|v| *v = remap(*v, &vmap));
                        // Function addresses point to the software-master
                        // version (indirect calls only execute there).
                        if let Op::FuncAddr(t) = &mut new_op {
                            *t = func_ids[t.index()][0];
                        }
                        let nid = nf.create_inst_at(new_op, inst.ty, f.loc(iid));
                        cursor.push(nid);
                        if inst.ty != Ty::Void {
                            vmap.insert(iid, Value::Inst(nid));
                        }
                        emit_enqueues(
                            &mut cursor,
                            &mut nf,
                            iid,
                            Value::Inst(nid),
                            fid,
                            p,
                            qmap,
                            &data_consumers,
                            &token_consumers,
                            f,
                        );
                    } else {
                        if part.remat_defs.contains(&iid) {
                            // Re-materialize (gaddr / replicated-SCC member)
                            // at the def point; non-phi operands were
                            // already mapped earlier in RPO.
                            let mut new_op = op.clone();
                            new_op.for_each_value_mut(|v| *v = remap(*v, &vmap));
                            let nid = nf.create_inst_at(new_op, inst.ty, f.loc(iid));
                            cursor.push(nid);
                            vmap.insert(iid, Value::Inst(nid));
                        } else if needed.contains(&iid) {
                            let q = qmap[&QKey::Data(fid.0, iid, p)];
                            let nid = nf.create_inst_at(
                                Op::Intrin(Intr::Dequeue(q), vec![]),
                                dq_ty(inst.ty),
                                f.loc(iid),
                            );
                            cursor.push(nid);
                            vmap.insert(iid, Value::Inst(nid));
                        }
                        if let Some(prods) = tokens.get(&iid) {
                            for &prod in prods {
                                let q = qmap[&QKey::Token(fid.0, iid, prod, p)];
                                let nid = nf.create_inst_at(
                                    Op::Intrin(Intr::Dequeue(q), vec![]),
                                    Ty::I1,
                                    f.loc(iid),
                                );
                                cursor.push(nid);
                            }
                        }
                    }
                }
            }
        }

        // Terminator.
        let term = f.block(b).terminator().expect("block has terminator");
        let tinst = f.inst(term);
        let new_term = match (&tinst.op, rewrite) {
            (_, Some(target)) => Op::Br(block_map[target.index()].unwrap_or_else(|| {
                panic!("@{}[p{}]: rewrite target {} pruned", f.name, p, target)
            })),
            (Op::Br(t), None) => Op::Br(block_map[t.index()].expect("Br target kept")),
            (Op::CondBr(c, t, e), None) => Op::CondBr(
                remap(*c, &vmap),
                block_map[t.index()].expect("condbr target kept"),
                block_map[e.index()].expect("condbr target kept"),
            ),
            (Op::Ret(v), None) => {
                if p == plan.ret_owner && plan.has_ret_value {
                    Op::Ret(Some(remap(v.expect("ret value"), &vmap)))
                } else {
                    Op::Ret(None)
                }
            }
            (Op::Switch(..), None) => panic!("switch must be lowered before DSWP"),
            (other, None) => panic!("unexpected terminator {other:?}"),
        };
        let tid = nf.create_inst_at(new_term, Ty::Void, f.loc(term));
        cursor.push(tid);
        nf.block_mut(nb).insts.extend(cursor);
    }

    // Patch phi operands: they were copied verbatim with ORIGINAL value
    // ids (phis may forward-reference defs mapped later in the walk).
    let live: Vec<InstId> = nf.inst_ids_in_layout().into_iter().map(|(_, i)| i).collect();
    for nid in live {
        let fname = &f.name;
        if let Op::Phi(incoming) = &mut nf.inst_mut(nid).op {
            for (_, v) in incoming.iter_mut() {
                match v {
                    Value::Inst(orig) => {
                        *v = *vmap.get(orig).unwrap_or_else(|| {
                            panic!("@{fname}[p{p}]: phi operand {orig} unmapped")
                        });
                    }
                    Value::Arg(n) => {
                        *v = Value::Arg(arg_map[n]);
                    }
                    Value::Imm(..) => {}
                }
            }
        }
    }

    nf
}

fn dq_ty(ty: Ty) -> Ty {
    if ty == Ty::Void {
        Ty::I1
    } else {
        ty
    }
}

/// Emit producer-side enqueues for a def directly after it in `cursor`.
#[allow(clippy::too_many_arguments)]
fn emit_enqueues(
    cursor: &mut Vec<InstId>,
    nf: &mut Function,
    def: InstId,
    val: Value,
    fid: FuncId,
    p: usize,
    qmap: &BTreeMap<QKey, QueueId>,
    data_consumers: &HashMap<InstId, Vec<usize>>,
    token_consumers: &HashMap<InstId, Vec<usize>>,
    f: &Function,
) {
    // Queue traffic attributes to the line of the value it forwards.
    let loc = f.loc(def);
    if let Some(cs) = data_consumers.get(&def) {
        for &c in cs {
            let q = qmap[&QKey::Data(fid.0, def, c)];
            let e = nf.create_inst_at(Op::Intrin(Intr::Enqueue(q), vec![val]), Ty::Void, loc);
            cursor.push(e);
        }
    }
    if let Some(cs) = token_consumers.get(&def) {
        for &c in cs {
            let q = qmap[&QKey::Token(fid.0, def, p, c)];
            let e = nf.create_inst_at(
                Op::Intrin(Intr::Enqueue(q), vec![Value::imm1(true)]),
                Ty::Void,
                loc,
            );
            cursor.push(e);
        }
    }
}

/// Token-only producer signalling (void calls).
#[allow(clippy::too_many_arguments)]
fn emit_token_enqueues(
    cursor: &mut Vec<InstId>,
    nf: &mut Function,
    def: InstId,
    fid: FuncId,
    p: usize,
    qmap: &BTreeMap<QKey, QueueId>,
    token_consumers: &HashMap<InstId, Vec<usize>>,
    f: &Function,
) {
    let loc = f.loc(def);
    if let Some(cs) = token_consumers.get(&def) {
        for &c in cs {
            let q = qmap[&QKey::Token(fid.0, def, p, c)];
            let e = nf.create_inst_at(
                Op::Intrin(Intr::Enqueue(q), vec![Value::imm1(true)]),
                Ty::Void,
                loc,
            );
            cursor.push(e);
        }
    }
}

/// Enqueue emission when the def was emitted directly into the block (phi
/// path): append right after the phi prefix.
#[allow(clippy::too_many_arguments)]
fn emit_queue_ops_after_def(
    nf: &mut Function,
    nb: BlockId,
    def: InstId,
    val: Value,
    fid: FuncId,
    p: usize,
    qmap: &BTreeMap<QKey, QueueId>,
    data_consumers: &HashMap<InstId, Vec<usize>>,
    token_consumers: &HashMap<InstId, Vec<usize>>,
    f: &Function,
) {
    let loc = f.loc(def);
    let mut pending: Vec<InstId> = Vec::new();
    if let Some(cs) = data_consumers.get(&def) {
        for &c in cs {
            let q = qmap[&QKey::Data(fid.0, def, c)];
            pending.push(nf.create_inst_at(Op::Intrin(Intr::Enqueue(q), vec![val]), Ty::Void, loc));
        }
    }
    if let Some(cs) = token_consumers.get(&def) {
        for &c in cs {
            let q = qmap[&QKey::Token(fid.0, def, p, c)];
            pending.push(nf.create_inst_at(
                Op::Intrin(Intr::Enqueue(q), vec![Value::imm1(true)]),
                Ty::Void,
                loc,
            ));
        }
    }
    if pending.is_empty() {
        return;
    }
    let nphis = nf.block(nb).insts.iter().take_while(|&&i| nf.inst(i).op.is_phi()).count();
    for (k, e) in pending.into_iter().enumerate() {
        nf.block_mut(nb).insts.insert(nphis + k, e);
    }
}

/// Queue reuse: merge data queues with identical (producer, consumer,
/// width) across *different functions* — safe because function activations
/// never interleave between a fixed thread pair and every queue drains by
/// its function's return. Guard functions with potentially overlapping
/// call sites with a binary semaphore (thesis §5.2). Returns #semaphores.
fn reuse_queues(out: &mut Module, orig: &Module, cg: &CallGraph) -> usize {
    // Queue -> (function set, producer partition, consumer partition).
    // We recover producer/consumer by scanning enqueue/dequeue sites.
    let mut producer: HashMap<QueueId, (usize, Ty)> = HashMap::new(); // func idx
    let mut consumer: HashMap<QueueId, usize> = HashMap::new();
    let mut pfunc: HashMap<QueueId, String> = HashMap::new();
    for (fi, f) in out.funcs.iter().enumerate() {
        for (_, iid) in f.inst_ids_in_layout() {
            match &f.inst(iid).op {
                Op::Intrin(Intr::Enqueue(q), _) => {
                    producer.insert(*q, (fi, out.queues[q.index()].width));
                    pfunc.insert(*q, f.name.clone());
                }
                Op::Intrin(Intr::Dequeue(q), _) => {
                    consumer.insert(*q, fi);
                }
                _ => {}
            }
        }
    }
    // Group by (producer func partition suffix, consumer func partition
    // suffix, width, base-function-distinct). Reuse across different base
    // functions only.
    let part_of = |name: &str| -> (String, String) {
        match name.rfind("_dswp_") {
            Some(i) => (name[..i].to_string(), name[i + 6..].to_string()),
            None => (name.to_string(), "?".into()),
        }
    };
    let mut groups: BTreeMap<(String, String, u32), Vec<QueueId>> = BTreeMap::new();
    for (q, (pf, width)) in &producer {
        let Some(cf) = consumer.get(q) else { continue };
        let (pbase, ppart) = part_of(&out.funcs[*pf].name);
        let (_, cpart) = part_of(&out.funcs[*cf].name);
        let _ = pbase;
        groups.entry((ppart, cpart, width.bits())).or_default().push(*q);
    }
    // Within each group, queues from different base functions can share one
    // physical queue. Build remap: representative per (group, base func) —
    // all map to the group representative.
    let mut remap: HashMap<QueueId, QueueId> = HashMap::new();
    for (_, qs) in groups {
        // Partition queues by base function of the producer site.
        let mut by_func: BTreeMap<String, Vec<QueueId>> = BTreeMap::new();
        for q in qs {
            let name = pfunc.get(&q).cloned().unwrap_or_default();
            let (base, _) = part_of(&name);
            by_func.entry(base).or_default().push(q);
        }
        if by_func.len() < 2 {
            continue;
        }
        // The function with the most queues keeps its ids; others reuse.
        let mut funcs: Vec<(String, Vec<QueueId>)> = by_func.into_iter().collect();
        funcs.sort_by_key(|(_, v)| std::cmp::Reverse(v.len()));
        let pool: Vec<QueueId> = funcs[0].1.clone();
        for (_, qs) in funcs.iter().skip(1) {
            for (i, q) in qs.iter().enumerate() {
                if i < pool.len() {
                    remap.insert(*q, pool[i]);
                }
            }
        }
    }
    if remap.is_empty() {
        return 0;
    }
    // Apply remap.
    for f in &mut out.funcs {
        let live: Vec<InstId> = f.inst_ids_in_layout().into_iter().map(|(_, i)| i).collect();
        for iid in live {
            if let Op::Intrin(Intr::Enqueue(q) | Intr::Dequeue(q), _) = &mut f.inst_mut(iid).op {
                if let Some(nq) = remap.get(q) {
                    *q = *nq;
                }
            }
        }
    }
    // Drop now-unused queue decls? Keep declarations but mark: simplest is
    // to rebuild the queue table compactly.
    compact_queue_table(out);

    // Semaphores: one per original function with multiple call sites that
    // lack a connecting dependence chain (thesis' conservative overlap
    // test). We approximate: any function with >1 static call site.
    let mut sems = 0;
    for fid in orig.func_ids() {
        if cg.call_site_count(orig, fid) > 1 && orig.func(fid).name != "main" {
            out.add_sem(SemDecl { max: 1, initial: 1 });
            sems += 1;
        }
    }
    sems
}

fn compact_queue_table(out: &mut Module) {
    let mut used: BTreeSet<QueueId> = BTreeSet::new();
    for f in &out.funcs {
        for (_, iid) in f.inst_ids_in_layout() {
            if let Op::Intrin(Intr::Enqueue(q) | Intr::Dequeue(q), _) = &f.inst(iid).op {
                used.insert(*q);
            }
        }
    }
    let mut remap: HashMap<QueueId, QueueId> = HashMap::new();
    let mut new_queues = Vec::new();
    for q in used {
        remap.insert(q, QueueId::new(new_queues.len()));
        new_queues.push(out.queues[q.index()]);
    }
    out.queues = new_queues;
    for f in &mut out.funcs {
        let live: Vec<InstId> = f.inst_ids_in_layout().into_iter().map(|(_, i)| i).collect();
        for iid in live {
            if let Op::Intrin(Intr::Enqueue(q) | Intr::Dequeue(q), _) = &mut f.inst_mut(iid).op {
                *q = remap[q];
            }
        }
    }
}
