//! Functional (non-cycle-accurate) co-execution of a DSWP result.
//!
//! Round-robin steps every thread's interpreter over a shared [`Machine`];
//! used for differential testing (partitioned output must equal the
//! single-threaded reference) before the cycle-level simulator gets
//! involved.

use crate::extract::DswpResult;
use twill_ir::interp::{Interp, Machine, StepEvent};
use twill_ir::{layout, ExecError};

/// Errors from partitioned co-execution.
#[derive(Debug)]
pub enum RunError {
    Exec(ExecError),
    /// No thread could make progress.
    Deadlock {
        blocked: Vec<String>,
    },
    OutOfFuel,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Exec(e) => write!(f, "{e}"),
            RunError::Deadlock { blocked } => write!(f, "deadlock: {}", blocked.join("; ")),
            RunError::OutOfFuel => write!(f, "out of fuel"),
        }
    }
}

impl std::error::Error for RunError {}

/// (output stream, master return value, per-thread step counts).
pub type RunOutput = (Vec<i32>, Option<i64>, Vec<u64>);

/// Run all threads to completion.
pub fn run_partitioned(r: &DswpResult, input: Vec<i32>, fuel: u64) -> Result<RunOutput, RunError> {
    let m = &r.module;
    let mut machine = Machine::new(m, layout::DEFAULT_MEM_SIZE, input);

    // Stack layout: globals end, then one region per thread.
    let globals_end =
        m.globals.iter().map(|g| g.addr + g.size).max().unwrap_or(layout::GLOBAL_BASE);
    let region = ((layout::DEFAULT_MEM_SIZE - globals_end) / (r.threads.len() as u32 + 1)) & !63;
    let mut threads: Vec<Interp> = r
        .threads
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let base = (globals_end + 64 + region * i as u32 + 63) & !63;
            Interp::new(m, t.entry, vec![], (base, base + region - 64))
        })
        .collect();

    let mut master_ret: Option<i64> = None;
    let mut remaining = fuel;
    loop {
        if threads.iter().all(|t| t.is_finished()) {
            break;
        }
        let mut progressed = false;
        let mut blocked_info: Vec<String> = Vec::new();
        for (i, t) in threads.iter_mut().enumerate() {
            if t.is_finished() {
                continue;
            }
            // Step this thread until it blocks or finishes (run-to-block
            // scheduling maximizes queue locality and is deterministic).
            loop {
                if remaining == 0 {
                    return Err(RunError::OutOfFuel);
                }
                remaining -= 1;
                let mut mem = std::mem::take(&mut machine.mem);
                let ev = t.step(m, &mut mem, &mut machine);
                machine.mem = mem;
                match ev {
                    Ok(StepEvent::Executed(..)) => {
                        progressed = true;
                    }
                    Ok(StepEvent::Blocked(fid, iid)) => {
                        blocked_info.push(format!("thread{} @{}:{}", i, m.func(fid).name, iid));
                        break;
                    }
                    Ok(StepEvent::Finished(v)) => {
                        progressed = true;
                        // The program's return value comes from whichever
                        // partition owns the original `ret` (its entry
                        // function is the only non-void one).
                        if m.func(r.threads[i].entry).ret != twill_ir::Ty::Void {
                            master_ret = v;
                        }
                        break;
                    }
                    Err(e) => return Err(RunError::Exec(e)),
                }
            }
        }
        if !progressed {
            return Err(RunError::Deadlock { blocked: blocked_info });
        }
    }
    let steps = threads.iter().map(|t| t.steps).collect();
    Ok((machine.output.clone(), master_ret, steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::run_dswp;
    use crate::placement::DswpOptions;

    /// Compile mini-C, run reference, run DSWP, co-execute, compare.
    fn check(src: &str, input: Vec<i32>, opts: &DswpOptions) -> crate::extract::DswpStats {
        let mut m = twill_frontend::compile("t", src).unwrap();
        twill_passes::run_standard_pipeline(&mut m, &Default::default());
        let (ref_out, ref_ret, _) =
            twill_ir::interp::run_main(&m, input.clone(), 200_000_000).unwrap();

        let r = run_dswp(&m, opts);
        twill_ir::verifier::assert_valid(&r.module);
        for f in &r.module.funcs {
            let errs = twill_passes::utils::verify_dominance(f);
            assert!(errs.is_empty(), "@{}: {errs:?}", f.name);
        }
        let (out, ret, _) = run_partitioned(&r, input, 400_000_000)
            .unwrap_or_else(|e| panic!("partitioned run failed: {e}"));
        assert_eq!(ref_out, out, "output mismatch");
        if ref_ret.is_some() {
            assert_eq!(ref_ret, ret, "return value mismatch");
        }
        r.stats
    }

    #[test]
    fn simple_loop_two_partitions() {
        let stats = check(
            r#"
int main() {
  int s = 0;
  for (int i = 0; i < 50; i++) {
    s += i * i;
  }
  out(s);
  return s;
}
"#,
            vec![],
            &DswpOptions { num_partitions: 2, ..Default::default() },
        );
        // With the loop-boundary software guard the whole hot loop may
        // land in one hardware partition; correctness is what matters.
        assert_eq!(stats.partitions, 2);
    }

    #[test]
    fn three_partition_pipeline() {
        check(
            r#"
int main() {
  int acc = 0;
  for (int i = 0; i < 40; i++) {
    int x = i * 3 + 1;
    int y = (x << 2) ^ x;
    int z = y % 7;
    acc += z;
  }
  out(acc);
  return 0;
}
"#,
            vec![],
            &DswpOptions { num_partitions: 3, ..Default::default() },
        );
    }

    #[test]
    fn branches_inside_loop() {
        check(
            r#"
int main() {
  int even = 0, odd = 0;
  for (int i = 0; i < 30; i++) {
    if (i % 2 == 0) even += i;
    else odd += i * 2;
  }
  out(even);
  out(odd);
  return 0;
}
"#,
            vec![],
            &DswpOptions { num_partitions: 2, ..Default::default() },
        );
    }

    #[test]
    fn memory_traffic_through_global_array() {
        check(
            r#"
int buf[64];
int main() {
  for (int i = 0; i < 64; i++) buf[i] = i * 5;
  int s = 0;
  for (int i = 0; i < 64; i++) s += buf[i];
  out(s);
  return 0;
}
"#,
            vec![],
            &DswpOptions { num_partitions: 2, ..Default::default() },
        );
    }

    #[test]
    fn function_calls_partitioned() {
        check(
            r#"
int work(int x) {
  int r = 0;
  for (int i = 0; i < 8; i++) r += (x ^ i) * 3;
  return r;
}
int main() {
  int total = 0;
  for (int i = 0; i < 10; i++) {
    total += work(i + in());
  }
  out(total);
  return 0;
}
"#,
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
            &DswpOptions { num_partitions: 2, ..Default::default() },
        );
    }

    #[test]
    fn input_stream_consumed_in_order() {
        check(
            r#"
int main() {
  int s = 0;
  for (int i = 0; i < 6; i++) {
    int v = in();
    s = s * 31 + v;
  }
  out(s);
  return 0;
}
"#,
            vec![5, 4, 3, 2, 1, 0],
            &DswpOptions { num_partitions: 3, ..Default::default() },
        );
    }

    #[test]
    fn pruning_on_and_off_agree() {
        let src = r#"
int main() {
  int a = 0, b = 0;
  for (int i = 0; i < 25; i++) {
    if (i & 1) a += i * 7;
    b ^= i << 3;
  }
  out(a);
  out(b);
  return 0;
}
"#;
        check(src, vec![], &DswpOptions { num_partitions: 2, prune: true, ..Default::default() });
        check(src, vec![], &DswpOptions { num_partitions: 2, prune: false, ..Default::default() });
    }

    #[test]
    fn single_partition_is_identity_semantics() {
        check(
            "int main() { int s = 0; for (int i = 0; i < 9; i++) s += i; out(s); return 0; }",
            vec![],
            &DswpOptions { num_partitions: 1, ..Default::default() },
        );
    }
}
