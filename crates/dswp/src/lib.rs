//! # twill-dswp
//!
//! The Twill compiler core: modified Decoupled Software Pipelining (thesis
//! Ch. 5). Takes a prepared single-threaded module and produces one
//! *partition function* per thread per original function, communicating
//! through statically-declared FIFO queues, plus the HW/SW split.
//!
//! ## Algorithm (and how it maps to the thesis)
//!
//! 1. **Partitioning** (§5.2): per function, the PDG's SCC DAG is walked in
//!    topological order; a greedy heuristic fills each partition up to a
//!    targeted percentage of the function's estimated work, picking the
//!    smallest available SCC each time (the thesis' sorted-list greedy).
//!    Partition 0 is the software master (the thesis pins `main`'s master
//!    to software, §5.3); the remaining partitions are hardware threads.
//! 2. **Extraction** (§5.2.1): each partition receives a copy of the
//!    function CFG; instructions go to their SCC's partition; every
//!    cross-partition SSA value is forwarded through a dedicated queue with
//!    the *enqueue immediately after the definition* and the *dequeue at
//!    the definition's program point in the consumer* — which makes
//!    enqueue/dequeue counts match on every control-flow path by
//!    construction (the four loop-matching cases of Fig 5.3 all reduce to
//!    this placement). Cross-partition memory/IO orderings become 1-bit
//!    token queues at the same program points.
//! 3. **Pruning** (§5.2's "branch to the closest post-dominating block"):
//!    per partition, single-exit loops and branch diamonds containing no
//!    relevant work for that partition are skipped by retargeting to the
//!    post-dominator. Queues are materialized *after* pruning so both
//!    endpoints agree.
//! 4. **Function calls** (§5.2.1): every partition's copy of a call site
//!    calls its own partition's version of the callee (thread reuse, no
//!    recursion); argument values and the return value are forwarded like
//!    any other cross-partition value. Callees are processed before
//!    callers so signatures are known.
//!
//! The result can be co-executed functionally (for differential testing)
//! via [`run_partitioned`], or cycle-accurately by `twill-rt`.

pub mod extract;
pub mod placement;
pub mod runner;

pub use extract::{run_dswp, DswpResult, ThreadSpec};
pub use placement::{DswpOptions, Placement};
pub use runner::run_partitioned;
