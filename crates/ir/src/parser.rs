//! Parser for the textual IR produced by [`crate::printer`].
//!
//! Intended primarily for tests (writing IR snippets directly) and for
//! snapshotting compiler phases; the grammar is exactly what the printer
//! emits. Instruction ids in the text are arbitrary labels and are renumbered
//! densely on parse.

use crate::entities::{BlockId, FuncId, InstId, QueueId, SemId};
use crate::inst::{BinOp, CastOp, CmpOp, Intr, Op, Value};
use crate::module::{Block, Function, Global, InstData, Module, QueueDecl, SemDecl, SrcLoc, Ty};
use std::collections::HashMap;

/// Parse error with 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

fn err<T>(line: usize, msg: impl Into<String>) -> PResult<T> {
    Err(ParseError { line, msg: msg.into() })
}

fn parse_ty(s: &str, line: usize) -> PResult<Ty> {
    match s {
        "void" => Ok(Ty::Void),
        "i1" => Ok(Ty::I1),
        "i8" => Ok(Ty::I8),
        "i16" => Ok(Ty::I16),
        "i32" => Ok(Ty::I32),
        "ptr" => Ok(Ty::Ptr),
        _ => err(line, format!("unknown type '{s}'")),
    }
}

fn strip_comment(l: &str) -> &str {
    match l.find(';') {
        Some(i) => &l[..i],
        None => l,
    }
    .trim()
}

struct FnCtx<'a> {
    /// textual inst name -> renumbered id
    ids: HashMap<String, InstId>,
    module_funcs: &'a [(String, Vec<Ty>, Ty)],
    globals: &'a [Global],
    line: usize,
}

impl FnCtx<'_> {
    fn value(&self, s: &str) -> PResult<Value> {
        let s = s.trim();
        if let Some(rest) = s.strip_prefix("%a") {
            if !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()) {
                let n: u16 = rest
                    .parse()
                    .map_err(|_| ParseError { line: self.line, msg: format!("bad arg '{s}'") })?;
                return Ok(Value::Arg(n));
            }
        }
        if let Some(rest) = s.strip_prefix('%') {
            let id = self
                .ids
                .get(rest)
                .ok_or_else(|| ParseError { line: self.line, msg: format!("undefined %{rest}") })?;
            return Ok(Value::Inst(*id));
        }
        // immediate: N:ty
        let (num, ty) = s
            .split_once(':')
            .ok_or_else(|| ParseError { line: self.line, msg: format!("bad immediate '{s}'") })?;
        let v: i64 = num
            .trim()
            .parse()
            .map_err(|_| ParseError { line: self.line, msg: format!("bad int '{num}'") })?;
        let t = parse_ty(ty.trim(), self.line)?;
        Ok(Value::Imm(v, t))
    }

    fn block(&self, s: &str) -> PResult<BlockId> {
        let s = s.trim();
        let rest = s
            .strip_prefix("bb")
            .ok_or_else(|| ParseError { line: self.line, msg: format!("bad block ref '{s}'") })?;
        let n: u32 = rest
            .parse()
            .map_err(|_| ParseError { line: self.line, msg: format!("bad block id '{s}'") })?;
        Ok(BlockId(n))
    }

    fn split_args(&self, s: &str) -> Vec<String> {
        // split on commas not inside brackets
        let mut out = Vec::new();
        let mut depth = 0usize;
        let mut cur = String::new();
        for ch in s.chars() {
            match ch {
                '[' | '(' => {
                    depth += 1;
                    cur.push(ch);
                }
                ']' | ')' => {
                    depth = depth.saturating_sub(1);
                    cur.push(ch);
                }
                ',' if depth == 0 => {
                    out.push(cur.trim().to_string());
                    cur.clear();
                }
                _ => cur.push(ch),
            }
        }
        if !cur.trim().is_empty() {
            out.push(cur.trim().to_string());
        }
        out
    }
}

fn parse_bin_mnemonic(s: &str) -> Option<BinOp> {
    BinOp::ALL.into_iter().find(|b| b.mnemonic() == s)
}

fn parse_cmp_mnemonic(s: &str) -> Option<CmpOp> {
    use CmpOp::*;
    [Eq, Ne, Slt, Sle, Sgt, Sge, Ult, Ule, Ugt, Uge].into_iter().find(|&c| c.mnemonic() == s)
}

/// Parse one instruction body (after any `%N = ` prefix was stripped).
fn parse_op(ctx: &FnCtx, body: &str) -> PResult<(Op, Ty)> {
    let line = ctx.line;
    let body = body.trim();
    let (head, rest) = match body.split_once(' ') {
        Some((h, r)) => (h, r.trim()),
        None => (body, ""),
    };

    if let Some(b) = parse_bin_mnemonic(head) {
        let (tys, args) = rest
            .split_once(' ')
            .ok_or_else(|| ParseError { line, msg: "bin needs type".into() })?;
        let ty = parse_ty(tys, line)?;
        let parts = ctx.split_args(args);
        if parts.len() != 2 {
            return err(line, "bin needs two operands");
        }
        return Ok((Op::Bin(b, ctx.value(&parts[0])?, ctx.value(&parts[1])?), ty));
    }

    match head {
        "cmp" => {
            let (pred, args) = rest
                .split_once(' ')
                .ok_or_else(|| ParseError { line, msg: "cmp needs predicate".into() })?;
            let c = parse_cmp_mnemonic(pred)
                .ok_or_else(|| ParseError { line, msg: format!("bad predicate '{pred}'") })?;
            let parts = ctx.split_args(args);
            if parts.len() != 2 {
                return err(line, "cmp needs two operands");
            }
            Ok((Op::Cmp(c, ctx.value(&parts[0])?, ctx.value(&parts[1])?), Ty::I1))
        }
        "select" => {
            let (tys, args) = rest
                .split_once(' ')
                .ok_or_else(|| ParseError { line, msg: "select needs type".into() })?;
            let ty = parse_ty(tys, line)?;
            let parts = ctx.split_args(args);
            if parts.len() != 3 {
                return err(line, "select needs three operands");
            }
            Ok((
                Op::Select(ctx.value(&parts[0])?, ctx.value(&parts[1])?, ctx.value(&parts[2])?),
                ty,
            ))
        }
        "zext" | "sext" | "trunc" => {
            let cast = match head {
                "zext" => CastOp::Zext,
                "sext" => CastOp::Sext,
                _ => CastOp::Trunc,
            };
            let (v, toty) = rest
                .split_once(" to ")
                .ok_or_else(|| ParseError { line, msg: "cast needs 'to <ty>'".into() })?;
            let ty = parse_ty(toty.trim(), line)?;
            Ok((Op::Cast(cast, ctx.value(v)?), ty))
        }
        "load" => {
            let (tys, a) = rest
                .split_once(' ')
                .ok_or_else(|| ParseError { line, msg: "load needs type".into() })?;
            let ty = parse_ty(tys, line)?;
            Ok((Op::Load(ctx.value(a)?), ty))
        }
        "store" => {
            let (tys, args) = rest
                .split_once(' ')
                .ok_or_else(|| ParseError { line, msg: "store needs type".into() })?;
            let ty = parse_ty(tys, line)?;
            let parts = ctx.split_args(args);
            if parts.len() != 2 {
                return err(line, "store needs value, addr");
            }
            Ok((Op::Store(ctx.value(&parts[0])?, ctx.value(&parts[1])?), ty))
        }
        "gep" => {
            let parts = ctx.split_args(rest);
            if parts.len() != 3 {
                return err(line, "gep needs base, index, size");
            }
            let sz: u32 =
                parts[2].parse().map_err(|_| ParseError { line, msg: "bad gep size".into() })?;
            Ok((Op::Gep(ctx.value(&parts[0])?, ctx.value(&parts[1])?, sz), Ty::Ptr))
        }
        "alloca" => {
            let sz: u32 =
                rest.parse().map_err(|_| ParseError { line, msg: "bad alloca size".into() })?;
            Ok((Op::Alloca(sz), Ty::Ptr))
        }
        "faddr" => {
            let name = rest.trim_start_matches('@');
            let fid = ctx
                .module_funcs
                .iter()
                .position(|(n, _, _)| n == name)
                .ok_or_else(|| ParseError { line, msg: format!("unknown func '@{name}'") })?;
            Ok((Op::FuncAddr(FuncId::new(fid)), Ty::Ptr))
        }
        "calli" => {
            let (tys, callrest) = rest
                .split_once(' ')
                .ok_or_else(|| ParseError { line, msg: "calli needs type".into() })?;
            let ty = parse_ty(tys, line)?;
            let callrest = callrest.trim();
            let open = callrest
                .find('(')
                .ok_or_else(|| ParseError { line, msg: "calli needs '('".into() })?;
            let target = ctx.value(callrest[..open].trim())?;
            let argstr = callrest[open + 1..]
                .strip_suffix(')')
                .ok_or_else(|| ParseError { line, msg: "calli needs ')'".into() })?;
            let mut args = Vec::new();
            for a in ctx.split_args(argstr) {
                args.push(ctx.value(&a)?);
            }
            Ok((Op::CallIndirect(target, args), ty))
        }
        "gaddr" => {
            let name = rest.trim_start_matches('@');
            let gid = ctx
                .globals
                .iter()
                .position(|g| g.name == name)
                .ok_or_else(|| ParseError { line, msg: format!("unknown global '@{name}'") })?;
            Ok((Op::GlobalAddr(crate::entities::GlobalId::new(gid)), Ty::Ptr))
        }
        "call" => {
            let (tys, callrest) = rest
                .split_once(' ')
                .ok_or_else(|| ParseError { line, msg: "call needs type".into() })?;
            let ty = parse_ty(tys, line)?;
            let callrest = callrest.trim();
            let open = callrest
                .find('(')
                .ok_or_else(|| ParseError { line, msg: "call needs '('".into() })?;
            let name = callrest[..open].trim().trim_start_matches('@');
            let argstr = callrest[open + 1..]
                .strip_suffix(')')
                .ok_or_else(|| ParseError { line, msg: "call needs ')'".into() })?;
            let fid = ctx
                .module_funcs
                .iter()
                .position(|(n, _, _)| n == name)
                .ok_or_else(|| ParseError { line, msg: format!("unknown func '@{name}'") })?;
            let mut args = Vec::new();
            for a in ctx.split_args(argstr) {
                args.push(ctx.value(&a)?);
            }
            Ok((Op::Call(FuncId::new(fid), args), ty))
        }
        "out" => Ok((Op::Intrin(Intr::Out, vec![ctx.value(rest)?]), Ty::Void)),
        "in" => Ok((Op::Intrin(Intr::In, vec![]), Ty::I32)),
        "enqueue" => {
            let parts = ctx.split_args(rest);
            if parts.len() != 2 {
                return err(line, "enqueue needs queue, value");
            }
            let q: u32 = parts[0]
                .strip_prefix('q')
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ParseError { line, msg: "bad queue ref".into() })?;
            Ok((Op::Intrin(Intr::Enqueue(QueueId(q)), vec![ctx.value(&parts[1])?]), Ty::Void))
        }
        "dequeue" => {
            let (tys, qs) = rest
                .split_once(' ')
                .ok_or_else(|| ParseError { line, msg: "dequeue needs type".into() })?;
            let ty = parse_ty(tys, line)?;
            let q: u32 = qs
                .trim()
                .strip_prefix('q')
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ParseError { line, msg: "bad queue ref".into() })?;
            Ok((Op::Intrin(Intr::Dequeue(QueueId(q)), vec![]), ty))
        }
        "raise" | "lower" => {
            let parts = ctx.split_args(rest);
            if parts.len() != 2 {
                return err(line, "sem op needs sem, count");
            }
            let s: u32 = parts[0]
                .strip_prefix("sem")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ParseError { line, msg: "bad sem ref".into() })?;
            let n = ctx.value(&parts[1])?;
            let intr =
                if head == "raise" { Intr::SemRaise(SemId(s)) } else { Intr::SemLower(SemId(s)) };
            Ok((Op::Intrin(intr, vec![n]), Ty::Void))
        }
        "phi" => {
            let (tys, args) = rest
                .split_once(' ')
                .ok_or_else(|| ParseError { line, msg: "phi needs type".into() })?;
            let ty = parse_ty(tys, line)?;
            let mut incoming = Vec::new();
            for part in ctx.split_args(args) {
                let inner = part
                    .strip_prefix('[')
                    .and_then(|s| s.strip_suffix(']'))
                    .ok_or_else(|| ParseError { line, msg: format!("bad phi arm '{part}'") })?;
                let (b, v) = inner
                    .split_once(':')
                    .ok_or_else(|| ParseError { line, msg: "phi arm needs ':'".into() })?;
                incoming.push((ctx.block(b)?, ctx.value(v)?));
            }
            Ok((Op::Phi(incoming), ty))
        }
        "br" => Ok((Op::Br(ctx.block(rest)?), Ty::Void)),
        "condbr" => {
            let parts = ctx.split_args(rest);
            if parts.len() != 3 {
                return err(line, "condbr needs cond, then, else");
            }
            Ok((
                Op::CondBr(ctx.value(&parts[0])?, ctx.block(&parts[1])?, ctx.block(&parts[2])?),
                Ty::Void,
            ))
        }
        "switch" => {
            let parts = ctx.split_args(rest);
            if parts.len() < 2 {
                return err(line, "switch needs value and default");
            }
            let v = ctx.value(&parts[0])?;
            let mut cases = Vec::new();
            let mut default = None;
            for p in &parts[1..] {
                if let Some(d) = p.strip_prefix("default") {
                    default = Some(ctx.block(d.trim())?);
                } else {
                    let inner = p
                        .strip_prefix('[')
                        .and_then(|s| s.strip_suffix(']'))
                        .ok_or_else(|| ParseError { line, msg: format!("bad case '{p}'") })?;
                    let (k, b) = inner
                        .split_once(':')
                        .ok_or_else(|| ParseError { line, msg: "case needs ':'".into() })?;
                    let kv: i64 = k
                        .trim()
                        .parse()
                        .map_err(|_| ParseError { line, msg: "bad case value".into() })?;
                    cases.push((kv, ctx.block(b)?));
                }
            }
            let default =
                default.ok_or_else(|| ParseError { line, msg: "switch needs default".into() })?;
            Ok((Op::Switch(v, cases, default), Ty::Void))
        }
        "ret" => {
            if rest.is_empty() {
                Ok((Op::Ret(None), Ty::Void))
            } else {
                Ok((Op::Ret(Some(ctx.value(rest)?)), Ty::Void))
            }
        }
        _ => err(line, format!("unknown opcode '{head}'")),
    }
}

/// Parse a whole module from text.
pub fn parse_module(text: &str) -> PResult<Module> {
    let lines: Vec<&str> = text.lines().collect();
    let mut m = Module::new("parsed");

    // Pass A: collect function signatures so calls can forward-reference.
    let mut sigs: Vec<(String, Vec<Ty>, Ty)> = Vec::new();
    for (lineno, raw) in lines.iter().enumerate() {
        let l = strip_comment(raw);
        if let Some(rest) = l.strip_prefix("func @") {
            let (name, tail) = rest
                .split_once('(')
                .ok_or_else(|| ParseError { line: lineno + 1, msg: "func needs '('".into() })?;
            let close = tail
                .find(')')
                .ok_or_else(|| ParseError { line: lineno + 1, msg: "func needs ')'".into() })?;
            let mut params = Vec::new();
            let ps = &tail[..close];
            if !ps.trim().is_empty() {
                for p in ps.split(',') {
                    params.push(parse_ty(p.trim(), lineno + 1)?);
                }
            }
            let after = &tail[close + 1..];
            let ret = match after.split_once("->") {
                Some((_, r)) => parse_ty(r.trim().trim_end_matches('{').trim(), lineno + 1)?,
                None => Ty::Void,
            };
            sigs.push((name.trim().to_string(), params, ret));
        }
    }

    // Pass B: module-level items + function bodies.
    let mut i = 0usize;
    while i < lines.len() {
        let lineno = i + 1;
        let l = strip_comment(lines[i]);
        if l.is_empty() {
            i += 1;
            continue;
        }
        if let Some(rest) = l.strip_prefix("module") {
            if let (Some(a), Some(b)) = (rest.find('"'), rest.rfind('"')) {
                if b > a {
                    m.name = rest[a + 1..b].to_string();
                }
            }
            i += 1;
            continue;
        }
        if let Some(rest) = l.strip_prefix("queue ") {
            // queue qN <ty> x <depth>
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 4 || parts[2] != "x" {
                return err(lineno, "bad queue decl");
            }
            let width = parse_ty(parts[1], lineno)?;
            let depth: u32 = parts[3]
                .parse()
                .map_err(|_| ParseError { line: lineno, msg: "bad depth".into() })?;
            m.add_queue(QueueDecl { width, depth });
            i += 1;
            continue;
        }
        if let Some(rest) = l.strip_prefix("sem ") {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            let mut max = 1;
            let mut init = 0;
            for p in &parts[1..] {
                if let Some(v) = p.strip_prefix("max=") {
                    max = v
                        .parse()
                        .map_err(|_| ParseError { line: lineno, msg: "bad max".into() })?;
                } else if let Some(v) = p.strip_prefix("init=") {
                    init = v
                        .parse()
                        .map_err(|_| ParseError { line: lineno, msg: "bad init".into() })?;
                }
            }
            m.add_sem(SemDecl { max, initial: init });
            i += 1;
            continue;
        }
        if let Some(rest) = l.strip_prefix("global @") {
            let (name, tail) = rest
                .split_once(' ')
                .ok_or_else(|| ParseError { line: lineno, msg: "bad global".into() })?;
            let mut size = 0u32;
            let is_const = tail.contains(" const") || tail.contains("const ");
            for tok in tail.split_whitespace() {
                if let Some(v) = tok.strip_prefix("size=") {
                    size = v
                        .parse()
                        .map_err(|_| ParseError { line: lineno, msg: "bad size".into() })?;
                }
            }
            let mut init = Vec::new();
            if let (Some(a), Some(b)) = (tail.find('['), tail.rfind(']')) {
                for h in tail[a + 1..b].split_whitespace() {
                    init.push(u8::from_str_radix(h, 16).map_err(|_| ParseError {
                        line: lineno,
                        msg: format!("bad hex byte '{h}'"),
                    })?);
                }
            }
            m.add_global(Global { name: name.to_string(), size, init, addr: 0, is_const });
            i += 1;
            continue;
        }
        if l.starts_with("func @") {
            let fidx = m.funcs.len();
            let (name, params, ret) = sigs[fidx].clone();
            let mut f = Function::new(name, params, ret);

            // Scan to the closing '}' collecting body lines (raw text kept
            // alongside so block-name comments survive the round trip).
            let mut body: Vec<(usize, String, String)> = Vec::new();
            i += 1;
            while i < lines.len() {
                let bl = strip_comment(lines[i]);
                if bl == "}" {
                    break;
                }
                if !bl.is_empty() {
                    body.push((i + 1, bl.to_string(), lines[i].trim().to_string()));
                }
                i += 1;
            }
            if i >= lines.len() {
                return err(lineno, "unterminated function body");
            }
            i += 1; // consume '}'

            // First sub-pass: allocate blocks & instruction ids.
            let mut ids: HashMap<String, InstId> = HashMap::new();
            let mut next_inst = 0u32;
            let mut cur_block: Option<BlockId> = None;
            let mut placements: Vec<(BlockId, InstId, usize, String)> = Vec::new();
            for (ln, bl, raw) in &body {
                if bl.starts_with("bb") && bl.ends_with(':') {
                    let n: u32 = bl[2..bl.len() - 1]
                        .parse()
                        .map_err(|_| ParseError { line: *ln, msg: "bad block header".into() })?;
                    while f.blocks.len() <= n as usize {
                        f.blocks.push(Block::default());
                    }
                    // Preserve the block name from the trailing comment.
                    if let Some(cpos) = raw.find(';') {
                        f.blocks[n as usize].name = raw[cpos + 1..].trim().to_string();
                    }
                    cur_block = Some(BlockId(n));
                    continue;
                }
                let b = cur_block
                    .ok_or_else(|| ParseError { line: *ln, msg: "inst outside block".into() })?;
                let id = InstId(next_inst);
                next_inst += 1;
                // Does it define a textual id?
                let bodytext = if let Some((lhs, rhs)) = bl.split_once('=') {
                    let lhs = lhs.trim();
                    if let Some(name) = lhs.strip_prefix('%') {
                        if !name.is_empty()
                            && name.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '.')
                        {
                            ids.insert(name.to_string(), id);
                            rhs.trim().to_string()
                        } else {
                            bl.clone()
                        }
                    } else {
                        bl.clone()
                    }
                } else {
                    bl.clone()
                };
                let _ = raw;
                // Split off a trailing ` !N` source-location marker (the
                // printer's loc syntax; `;` comments never survive to here).
                let (bodytext, loc) = match bodytext.rsplit_once(" !") {
                    Some((pre, num))
                        if !num.is_empty() && num.bytes().all(|c| c.is_ascii_digit()) =>
                    {
                        let n: u32 = num.parse().map_err(|_| ParseError {
                            line: *ln,
                            msg: "bad source-location marker".into(),
                        })?;
                        (pre.trim_end().to_string(), SrcLoc::new(n))
                    }
                    _ => (bodytext, SrcLoc::NONE),
                };
                placements.push((b, id, *ln, bodytext));
                f.insts.push(InstData { op: Op::Ret(None), ty: Ty::Void }); // placeholder
                f.locs.push(loc); // parallel side table stays in sync
            }

            // Second sub-pass: parse each op now that all ids are known.
            for (b, id, ln, text) in placements {
                let ctx =
                    FnCtx { ids: ids.clone(), module_funcs: &sigs, globals: &m.globals, line: ln };
                let (op, ty) = parse_op(&ctx, &text)?;
                f.insts[id.index()] = InstData { op, ty };
                f.block_mut(b).insts.push(id);
            }
            f.entry = BlockId(0);
            m.add_func(f);
            continue;
        }
        return err(lineno, format!("unexpected line: '{l}'"));
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;

    const SAMPLE: &str = r#"
module "t"
queue q0 i32 x 8
sem sem0 max=2 init=1
global @tab size=8 const [01 02 03 04]

func @helper(i32) -> i32 {
bb0:
  %0 = add i32 %a0, 1:i32
  ret %0
}

func @main() -> i32 {
bb0: ; entry
  %0 = gaddr @tab
  %1 = load i32 %0
  %2 = call i32 @helper(%1)
  br bb1
bb1:
  %3 = phi i32 [bb0: %2], [bb1: %4]
  %4 = add i32 %3, -1:i32
  %5 = cmp sgt %4, 0:i32
  condbr %5, bb1, bb2
bb2:
  out %4
  enqueue q0, %4
  %6 = dequeue i32 q0
  raise sem0, 1:i32
  lower sem0, 1:i32
  ret %6
}
"#;

    #[test]
    fn parses_sample() {
        let m = parse_module(SAMPLE).unwrap();
        assert_eq!(m.funcs.len(), 2);
        assert_eq!(m.queues.len(), 1);
        assert_eq!(m.sems[0].max, 2);
        assert_eq!(m.globals[0].init, vec![1, 2, 3, 4]);
        let main = m.func(m.find_func("main").unwrap());
        assert_eq!(main.blocks.len(), 3);
        assert_eq!(main.live_inst_count(), 14);
    }

    #[test]
    fn roundtrips_through_printer() {
        let m1 = parse_module(SAMPLE).unwrap();
        let text1 = print_module(&m1);
        let m2 = parse_module(&text1).unwrap();
        let text2 = print_module(&m2);
        assert_eq!(text1, text2);
    }

    #[test]
    fn source_locations_roundtrip() {
        let src = "func @f(i32) -> i32 {\nbb0:\n  %0 = add i32 %a0, 1:i32 !3\n  %1 = mul i32 %0, %0 !4\n  ret %1 !5\n}\n";
        let m = parse_module(src).unwrap();
        let f = &m.funcs[0];
        assert_eq!(f.loc(InstId(0)), SrcLoc::new(3));
        assert_eq!(f.loc(InstId(1)), SrcLoc::new(4));
        assert_eq!(f.loc(InstId(2)), SrcLoc::new(5));
        let text = print_module(&m);
        assert!(text.contains("add i32 %a0, 1:i32 !3"), "{text}");
        let m2 = parse_module(&text).unwrap();
        assert_eq!(print_module(&m2), text);
    }

    #[test]
    fn missing_locations_stay_absent() {
        let m = parse_module(SAMPLE).unwrap();
        let main = m.func(m.find_func("main").unwrap());
        for (_, i) in main.inst_ids_in_layout() {
            assert!(main.loc(i).is_none());
        }
        // And the printer emits no markers for them.
        assert!(!print_module(&m).contains(" !"));
    }

    #[test]
    fn phi_forward_reference_resolves() {
        let m = parse_module(SAMPLE).unwrap();
        let main = m.func(m.find_func("main").unwrap());
        // The phi in bb1 references %4 defined after it.
        let phi_id = main.block(BlockId(1)).insts[0];
        match &main.inst(phi_id).op {
            Op::Phi(inc) => {
                assert_eq!(inc.len(), 2);
                assert!(matches!(inc[1].1, Value::Inst(_)));
            }
            other => panic!("expected phi, got {other:?}"),
        }
    }

    #[test]
    fn error_reports_line() {
        let bad = "func @f() -> i32 {\nbb0:\n  %0 = frobnicate i32 1:i32\n}\n";
        let e = parse_module(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("frobnicate"));
    }

    #[test]
    fn error_on_undefined_value() {
        let bad = "func @f() -> i32 {\nbb0:\n  ret %9\n}\n";
        let e = parse_module(bad).unwrap_err();
        assert!(e.msg.contains("undefined"));
    }

    #[test]
    fn switch_roundtrip() {
        let src = "func @f(i32) -> i32 {\nbb0:\n  switch %a0, [1: bb1], [2: bb2], default bb3\nbb1:\n  ret 1:i32\nbb2:\n  ret 2:i32\nbb3:\n  ret 0:i32\n}\n";
        let m = parse_module(src).unwrap();
        let f = &m.funcs[0];
        match &f.inst(f.block(BlockId(0)).insts[0]).op {
            Op::Switch(_, cases, d) => {
                assert_eq!(cases.len(), 2);
                assert_eq!(*d, BlockId(3));
            }
            _ => panic!("expected switch"),
        }
        let text = print_module(&m);
        let m2 = parse_module(&text).unwrap();
        assert_eq!(print_module(&m2), text);
    }
}
