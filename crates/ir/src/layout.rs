//! Memory layout: assigns flat addresses to globals and defines the memory
//! map shared by the interpreter and the runtime simulator.
//!
//! ```text
//! 0x0000_0000 .. 0x0000_1000   null guard (never mapped)
//! 0x0000_1000 .. globals_end   module globals, 4-byte aligned
//! globals_end .. stack_top     call-frame stack (allocas), grows upward
//! ```
//!
//! The thesis runs on 32 kB of Microblaze BRAM; we default to a more generous
//! 4 MiB so benchmark working sets never constrain experiments, while keeping
//! the flat 32-bit address model of the paper's unified address space.

use crate::module::Module;

/// First valid data address; everything below traps as a null dereference.
pub const GLOBAL_BASE: u32 = 0x1000;

/// Default size of the simulated unified memory.
pub const DEFAULT_MEM_SIZE: u32 = 4 * 1024 * 1024;

/// Assign addresses to all globals, returning the first free address after
/// the global segment (= initial stack pointer).
pub fn assign_global_addrs(m: &mut Module) -> u32 {
    let mut addr = GLOBAL_BASE;
    for g in &mut m.globals {
        g.addr = addr;
        addr += g.size.max(1);
        addr = (addr + 3) & !3;
    }
    addr
}

/// Build the initial memory image for a module (globals written at their
/// assigned addresses, everything else zero).
pub fn initial_memory(m: &Module, size: u32) -> Vec<u8> {
    let mut mem = vec![0u8; size as usize];
    for g in &m.globals {
        let start = g.addr as usize;
        let n = g.init.len().min(g.size as usize);
        mem[start..start + n].copy_from_slice(&g.init[..n]);
    }
    mem
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Global, Module};

    fn g(name: &str, size: u32, init: Vec<u8>) -> Global {
        Global { name: name.into(), size, init, addr: 0, is_const: false }
    }

    #[test]
    fn globals_are_aligned_and_disjoint() {
        let mut m = Module::new("t");
        m.add_global(g("a", 3, vec![1, 2, 3]));
        m.add_global(g("b", 8, vec![9; 8]));
        m.add_global(g("c", 1, vec![]));
        let end = assign_global_addrs(&mut m);
        assert_eq!(m.globals[0].addr, GLOBAL_BASE);
        assert_eq!(m.globals[0].addr % 4, 0);
        assert_eq!(m.globals[1].addr, GLOBAL_BASE + 4);
        assert_eq!(m.globals[2].addr, GLOBAL_BASE + 12);
        assert_eq!(end, GLOBAL_BASE + 16);
    }

    #[test]
    fn initial_memory_contains_init_bytes() {
        let mut m = Module::new("t");
        m.add_global(g("a", 4, vec![0xde, 0xad]));
        assign_global_addrs(&mut m);
        let mem = initial_memory(&m, 0x2000);
        assert_eq!(mem[GLOBAL_BASE as usize], 0xde);
        assert_eq!(mem[GLOBAL_BASE as usize + 1], 0xad);
        assert_eq!(mem[GLOBAL_BASE as usize + 2], 0);
    }

    #[test]
    fn zero_sized_global_still_gets_unique_slot() {
        let mut m = Module::new("t");
        m.add_global(g("z", 0, vec![]));
        m.add_global(g("a", 4, vec![]));
        assign_global_addrs(&mut m);
        assert_ne!(m.globals[0].addr, m.globals[1].addr);
    }
}
