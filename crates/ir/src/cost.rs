//! Calibrated cycle and area cost tables.
//!
//! These constants are the single source of truth for
//! * the PDG instruction weights (thesis §5.2: "a weight to each instruction
//!   node … how many estimated cycles each instruction is expected to take
//!   along with how much area"),
//! * the software CPU model (Microblaze-like, 100 MHz, area-optimized,
//!   3-stage pipeline: multi-cycle mul/div/loads),
//! * the HLS scheduler latencies and the LUT/DSP area model.
//!
//! Numbers taken directly from the thesis where stated:
//! * SW load/store = 2 cycles, HW store = 1 cycle (§5.2),
//! * SW divide = 34 cycles, HW divide = 13 cycles (§5.2),
//! * runtime primitive costs: CPU op = 5 cycles, queue op ≥ 2 cycles,
//!   semaphore raise 1 / lower ≥ 2, bus grant 1 cycle (§4.1–4.5),
//! * runtime module areas: queue 65 LUTs + 1 DSP, semaphore 70 LUTs,
//!   HWInterface 44, processor interface 24, scheduler 98 + 2 DSP,
//!   bus arbiter 15 (§6.2).
//!
//! Remaining constants (ALU LUT widths, FSM overhead, Microblaze size) are
//! calibrated so the pure-HW translations of the CHStone kernels land in the
//! LUT ranges of Table 6.2.

use crate::inst::{BinOp, Intr, Op};
use crate::module::Ty;

// ---------------------------------------------------------------------------
// Software (Microblaze-like) cycle costs
// ---------------------------------------------------------------------------

/// Base integer op (add/sub/logic/shift/compare/select/cast/move).
pub const SW_ALU: u64 = 1;
/// Hardware multiplier on the soft core.
pub const SW_MUL: u64 = 3;
/// Serial software-visible divider (thesis: 34 cycles).
pub const SW_DIV: u64 = 34;
/// Load from local BRAM (thesis: 2 cycles).
pub const SW_LOAD: u64 = 2;
/// Store to local BRAM (thesis: 2 cycles in software).
pub const SW_STORE: u64 = 2;
/// Not-taken / fall-through branch.
pub const SW_BRANCH: u64 = 1;
/// Taken branch pipeline penalty.
pub const SW_BRANCH_TAKEN: u64 = 3;
/// Call/return linkage overhead (prologue + epilogue, no args).
pub const SW_CALL: u64 = 6;
/// Per-argument setup cost for a call.
pub const SW_CALL_ARG: u64 = 1;
/// One runtime-primitive operation via the Microblaze stream interface
/// (two put/get instruction pairs; thesis §4.5: five cycles).
pub const SW_RUNTIME_OP: u64 = 5;
/// Instruction-expansion overhead: one Twill IR operation lowers to
/// roughly two Microblaze instructions on average (address arithmetic,
/// spills, compare+branch pairs), charged per executed IR op by the CPU
/// model on top of the table below.
pub const SW_EXPANSION_OVERHEAD: u64 = 1;
/// `out`/`in` stream I/O from software (goes through the I/O manager
/// hardware thread like any other runtime op).
pub const SW_IO: u64 = SW_RUNTIME_OP;

/// Estimated software cycles for one IR operation (ignoring blocking).
pub fn sw_cycles(op: &Op) -> u64 {
    match op {
        Op::Bin(b, _, _) => match b {
            BinOp::Mul => SW_MUL,
            BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem => SW_DIV,
            _ => SW_ALU,
        },
        Op::Cmp(..) | Op::Select(..) | Op::Cast(..) | Op::Gep(..) => SW_ALU,
        Op::Load(_) => SW_LOAD,
        Op::Store(..) => SW_STORE,
        Op::Alloca(_) | Op::GlobalAddr(_) | Op::FuncAddr(_) => SW_ALU,
        Op::Call(_, args) => SW_CALL + SW_CALL_ARG * args.len() as u64,
        // Indirect call: extra register-indirect branch overhead.
        Op::CallIndirect(_, args) => SW_CALL + 2 + SW_CALL_ARG * args.len() as u64,
        Op::Intrin(i, _) => match i {
            Intr::Out | Intr::In => SW_IO,
            _ => SW_RUNTIME_OP,
        },
        Op::Phi(_) => 0, // resolved as parallel copies on block entry
        Op::Br(_) => SW_BRANCH_TAKEN,
        Op::CondBr(..) => SW_BRANCH_TAKEN, // charged uniformly; see cpu model
        Op::Switch(..) => SW_BRANCH_TAKEN + 2,
        Op::Ret(_) => SW_BRANCH_TAKEN,
    }
}

// ---------------------------------------------------------------------------
// Hardware (HLS) latencies
// ---------------------------------------------------------------------------

/// HW latency in FPGA cycles and whether the op can be *chained* with other
/// combinational ops in the same cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HwOpCost {
    /// Result-available latency in cycles (0 = combinational, chainable).
    pub latency: u32,
    /// Approximate combinational delay in "chain units"; the scheduler packs
    /// chains of up to [`CHAIN_BUDGET`] units into one 100 MHz cycle.
    pub delay: u32,
    /// LUTs consumed by a dedicated functional unit for this op at 32 bits.
    pub luts: u32,
    /// DSP blocks consumed.
    pub dsps: u32,
}

/// Combinational chain budget per clock cycle (models 10 ns at Virtex-5
/// speed grade; ~4 LUT levels of simple arithmetic).
pub const CHAIN_BUDGET: u32 = 4;

/// Pipelined multiplier latency (DSP48E).
pub const HW_MUL_LATENCY: u32 = 2;
/// Serial divider latency (thesis: 13 cycles in hardware).
pub const HW_DIV_LATENCY: u32 = 13;
/// Memory-bus load latency (thesis §4.1: a read takes two cycles).
pub const HW_LOAD_LATENCY: u32 = 2;
/// Memory-bus store latency (thesis §5.2: store takes one cycle in HW).
pub const HW_STORE_LATENCY: u32 = 1;
/// Minimum queue enqueue/dequeue synchronization overhead (thesis §4.3).
pub const HW_QUEUE_LATENCY: u32 = 2;
/// Semaphore raise (1 cycle) / lower (2 cycles minimum) (thesis §4.2).
pub const HW_SEM_RAISE_LATENCY: u32 = 1;
pub const HW_SEM_LOWER_LATENCY: u32 = 2;

/// Hardware cost for one IR operation.
pub fn hw_cost(op: &Op) -> HwOpCost {
    const ZERO: HwOpCost = HwOpCost { latency: 0, delay: 0, luts: 0, dsps: 0 };
    match op {
        Op::Bin(b, _, _) => match b {
            BinOp::Add | BinOp::Sub => HwOpCost { latency: 0, delay: 2, luts: 32, dsps: 0 },
            BinOp::And | BinOp::Or | BinOp::Xor => {
                HwOpCost { latency: 0, delay: 1, luts: 32, dsps: 0 }
            }
            // Variable shifts need a 5-level barrel shifter.
            BinOp::Shl | BinOp::AShr | BinOp::LShr => {
                HwOpCost { latency: 0, delay: 2, luts: 96, dsps: 0 }
            }
            BinOp::Mul => HwOpCost { latency: HW_MUL_LATENCY, delay: 0, luts: 40, dsps: 1 },
            BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem => {
                // Serial divider: cheap-ish in LUTs but long latency; the
                // thesis notes it needs "a dedicated DSP block … or an
                // inordinate amount of LUT blocks" — we model the serial
                // LUT variant LegUp was configured with.
                HwOpCost { latency: HW_DIV_LATENCY, delay: 0, luts: 380, dsps: 0 }
            }
        },
        Op::Cmp(..) => HwOpCost { latency: 0, delay: 2, luts: 16, dsps: 0 },
        Op::Select(..) => HwOpCost { latency: 0, delay: 1, luts: 16, dsps: 0 },
        // Pure wiring in hardware.
        Op::Cast(..) => HwOpCost { latency: 0, delay: 0, luts: 0, dsps: 0 },
        Op::Gep(..) => HwOpCost { latency: 0, delay: 2, luts: 34, dsps: 0 },
        // Memory ops call out to the runtime; minimum area (thesis §5.2).
        Op::Load(_) => HwOpCost { latency: HW_LOAD_LATENCY, delay: 0, luts: 8, dsps: 0 },
        Op::Store(..) => HwOpCost { latency: HW_STORE_LATENCY, delay: 0, luts: 8, dsps: 0 },
        Op::Alloca(_) | Op::GlobalAddr(_) | Op::FuncAddr(_) => {
            HwOpCost { latency: 0, delay: 0, luts: 4, dsps: 0 }
        }
        // A call is an FSM handoff to the callee module. Indirect calls
        // cannot be synthesized (no hardware stack/dispatch) — they are
        // pinned to the processor by DSWP; the cost here only exists so
        // analyses total sensibly.
        Op::Call(..) | Op::CallIndirect(..) => HwOpCost { latency: 1, delay: 0, luts: 12, dsps: 0 },
        Op::Intrin(i, _) => match i {
            Intr::Enqueue(_) | Intr::Dequeue(_) => {
                HwOpCost { latency: HW_QUEUE_LATENCY, delay: 0, luts: 6, dsps: 0 }
            }
            Intr::SemRaise(_) => {
                HwOpCost { latency: HW_SEM_RAISE_LATENCY, delay: 0, luts: 6, dsps: 0 }
            }
            Intr::SemLower(_) => {
                HwOpCost { latency: HW_SEM_LOWER_LATENCY, delay: 0, luts: 6, dsps: 0 }
            }
            Intr::Out | Intr::In => {
                HwOpCost { latency: HW_QUEUE_LATENCY, delay: 0, luts: 6, dsps: 0 }
            }
        },
        Op::Phi(_) => ZERO, // a mux folded into state-register loads
        Op::Br(_) => HwOpCost { latency: 1, delay: 0, luts: 1, dsps: 0 },
        Op::CondBr(..) => HwOpCost { latency: 1, delay: 0, luts: 2, dsps: 0 },
        Op::Switch(..) => HwOpCost { latency: 1, delay: 0, luts: 8, dsps: 0 },
        Op::Ret(_) => HwOpCost { latency: 1, delay: 0, luts: 1, dsps: 0 },
    }
}

/// PDG hardware weight (thesis: the cycle·area product of the instruction
/// when translated to hardware).
pub fn hw_weight(op: &Op) -> u64 {
    let c = hw_cost(op);
    let cycles = (c.latency.max(1)) as u64;
    let area = (c.luts + 100 * c.dsps).max(1) as u64;
    cycles * area
}

// ---------------------------------------------------------------------------
// Runtime primitive areas (thesis §6.2, verbatim)
// ---------------------------------------------------------------------------

/// LUTs per 8-deep 32-bit queue; each queue also uses one DSP block.
pub const LUTS_QUEUE: u32 = 65;
pub const DSPS_QUEUE: u32 = 1;
/// LUTs per counting semaphore (at ~100 primitives on the bus).
pub const LUTS_SEMAPHORE: u32 = 70;
/// LUTs per HWInterface module (one per hardware thread).
pub const LUTS_HW_INTERFACE: u32 = 44;
/// LUTs for the processor interface (one regardless of CPU count).
pub const LUTS_PROC_INTERFACE: u32 = 24;
/// LUTs for the HW round-robin scheduler; also 2 DSP blocks.
pub const LUTS_SCHEDULER: u32 = 98;
pub const DSPS_SCHEDULER: u32 = 2;
/// LUTs per bus arbiter; Twill instantiates two (module bus + memory bus).
pub const LUTS_BUS_ARBITER: u32 = 15;

/// Microblaze soft-core size when configured for minimum area. Derived from
/// Table 6.2: the "+ Microblaze" column is uniformly 1434 LUTs above the
/// Twill column.
pub const LUTS_MICROBLAZE: u32 = 1434;
/// Microblaze fixed BRAM budget (thesis §6.2: 16 blocks, 32 kB).
pub const BRAMS_MICROBLAZE: u32 = 16;

/// Virtex-5 LX110T LUT capacity (XUPV5 board) — used by the Fig 6.6
/// "JPEG with 32-deep queues did not fit" reproduction.
pub const DEVICE_LUTS: u32 = 69_120;

/// Queue depth multiplier: LUT cost scales with depth beyond the 8-deep
/// baseline (distributed RAM grows with depth; width fixed at 32 for the
/// experiments, matching the paper).
pub fn queue_luts(width: Ty, depth: u32) -> u32 {
    let base = LUTS_QUEUE;
    let width_scale = (width.bits().max(1) as f64 / 32.0).max(0.25);
    let depth_scale = (depth.max(1) as f64 / 8.0).max(0.5);
    (base as f64 * width_scale * depth_scale).ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Value;

    #[test]
    fn thesis_quoted_costs() {
        let div = Op::Bin(BinOp::SDiv, Value::Arg(0), Value::Arg(1));
        assert_eq!(sw_cycles(&div), 34);
        assert_eq!(hw_cost(&div).latency, 13);

        let ld = Op::Load(Value::Arg(0));
        assert_eq!(sw_cycles(&ld), 2);
        let st = Op::Store(Value::Arg(0), Value::Arg(1));
        assert_eq!(sw_cycles(&st), 2);
        assert_eq!(hw_cost(&st).latency, 1);
    }

    #[test]
    fn runtime_area_constants_match_thesis() {
        assert_eq!(LUTS_QUEUE, 65);
        assert_eq!(LUTS_SEMAPHORE, 70);
        assert_eq!(LUTS_HW_INTERFACE, 44);
        assert_eq!(LUTS_PROC_INTERFACE, 24);
        assert_eq!(LUTS_SCHEDULER, 98);
        assert_eq!(LUTS_BUS_ARBITER, 15);
    }

    #[test]
    fn hw_faster_than_sw_for_expensive_ops() {
        for b in [BinOp::Mul, BinOp::SDiv, BinOp::UDiv] {
            let op = Op::Bin(b, Value::Arg(0), Value::Arg(1));
            assert!((hw_cost(&op).latency as u64) < sw_cycles(&op), "{b:?} should be faster in HW");
        }
    }

    #[test]
    fn queue_area_scales_with_depth_and_width() {
        assert_eq!(queue_luts(Ty::I32, 8), 65);
        assert!(queue_luts(Ty::I32, 32) > queue_luts(Ty::I32, 8));
        assert!(queue_luts(Ty::I8, 8) < queue_luts(Ty::I32, 8));
        // Depth-2 queues are cheaper but bounded below.
        assert!(queue_luts(Ty::I32, 2) >= 65 / 4);
    }

    #[test]
    fn hw_weight_positive_for_every_op() {
        let ops = [
            Op::Bin(BinOp::Add, Value::Arg(0), Value::Arg(1)),
            Op::Load(Value::Arg(0)),
            Op::Ret(None),
            Op::Phi(vec![]),
        ];
        for op in ops {
            assert!(hw_weight(&op) >= 1);
        }
    }
}
