//! Ergonomic function construction, used by the mini-C frontend and by the
//! DSWP thread extractor when synthesizing partition functions.

use crate::entities::{BlockId, FuncId, GlobalId, QueueId, SemId};
use crate::inst::{BinOp, CastOp, CmpOp, Intr, Op, Value};
use crate::module::{Function, SrcLoc, Ty};

/// A positioned builder over a [`Function`]. Instructions are appended to
/// the current block; terminators seal the block and require explicit
/// repositioning before further insertion. Every emitted instruction is
/// stamped with the builder's current source location (set with
/// [`FuncBuilder::set_loc`]; defaults to [`SrcLoc::NONE`]).
pub struct FuncBuilder {
    pub func: Function,
    cur: Option<BlockId>,
    cur_loc: SrcLoc,
}

impl FuncBuilder {
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret: Ty) -> Self {
        FuncBuilder { func: Function::new(name, params, ret), cur: None, cur_loc: SrcLoc::NONE }
    }

    pub fn from_function(func: Function) -> Self {
        FuncBuilder { func, cur: None, cur_loc: SrcLoc::NONE }
    }

    /// Set the source location stamped on subsequently emitted instructions.
    pub fn set_loc(&mut self, loc: SrcLoc) {
        self.cur_loc = loc;
    }

    /// Set the stamped location from a 1-based source line number.
    pub fn set_line(&mut self, line: usize) {
        self.cur_loc = SrcLoc::new(line as u32);
    }

    pub fn cur_loc(&self) -> SrcLoc {
        self.cur_loc
    }

    /// Finish and return the built function.
    pub fn finish(self) -> Function {
        self.func
    }

    pub fn create_block(&mut self, name: impl Into<String>) -> BlockId {
        self.func.create_block(name)
    }

    /// Move the insertion point to the end of `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = Some(b);
    }

    pub fn current_block(&self) -> BlockId {
        self.cur.expect("builder has no current block")
    }

    /// Whether the current block already ends in a terminator.
    pub fn is_terminated(&self) -> bool {
        let b = self.current_block();
        self.func
            .block(b)
            .terminator()
            .map(|t| self.func.inst(t).op.is_terminator())
            .unwrap_or(false)
    }

    /// Append `op` with result type `ty` to the current block.
    pub fn emit(&mut self, op: Op, ty: Ty) -> Value {
        let b = self.current_block();
        debug_assert!(
            !self.is_terminated(),
            "emitting into terminated block {} of {}",
            self.func.block(b).name,
            self.func.name
        );
        let id = self.func.create_inst_at(op, ty, self.cur_loc);
        self.func.block_mut(b).insts.push(id);
        Value::Inst(id)
    }

    // ---- arithmetic ----

    pub fn bin(&mut self, op: BinOp, a: Value, b: Value) -> Value {
        let ty = self.func.value_ty(a);
        self.emit(Op::Bin(op, a, b), ty)
    }

    pub fn add(&mut self, a: Value, b: Value) -> Value {
        self.bin(BinOp::Add, a, b)
    }
    pub fn sub(&mut self, a: Value, b: Value) -> Value {
        self.bin(BinOp::Sub, a, b)
    }
    pub fn mul(&mut self, a: Value, b: Value) -> Value {
        self.bin(BinOp::Mul, a, b)
    }
    pub fn and(&mut self, a: Value, b: Value) -> Value {
        self.bin(BinOp::And, a, b)
    }
    pub fn or(&mut self, a: Value, b: Value) -> Value {
        self.bin(BinOp::Or, a, b)
    }
    pub fn xor(&mut self, a: Value, b: Value) -> Value {
        self.bin(BinOp::Xor, a, b)
    }
    pub fn shl(&mut self, a: Value, b: Value) -> Value {
        self.bin(BinOp::Shl, a, b)
    }
    pub fn lshr(&mut self, a: Value, b: Value) -> Value {
        self.bin(BinOp::LShr, a, b)
    }
    pub fn ashr(&mut self, a: Value, b: Value) -> Value {
        self.bin(BinOp::AShr, a, b)
    }
    pub fn sdiv(&mut self, a: Value, b: Value) -> Value {
        self.bin(BinOp::SDiv, a, b)
    }
    pub fn udiv(&mut self, a: Value, b: Value) -> Value {
        self.bin(BinOp::UDiv, a, b)
    }
    pub fn srem(&mut self, a: Value, b: Value) -> Value {
        self.bin(BinOp::SRem, a, b)
    }
    pub fn urem(&mut self, a: Value, b: Value) -> Value {
        self.bin(BinOp::URem, a, b)
    }

    pub fn cmp(&mut self, op: CmpOp, a: Value, b: Value) -> Value {
        self.emit(Op::Cmp(op, a, b), Ty::I1)
    }

    pub fn select(&mut self, c: Value, a: Value, b: Value) -> Value {
        let ty = self.func.value_ty(a);
        self.emit(Op::Select(c, a, b), ty)
    }

    pub fn cast(&mut self, op: CastOp, v: Value, to: Ty) -> Value {
        self.emit(Op::Cast(op, v), to)
    }

    // ---- memory ----

    pub fn load(&mut self, addr: Value, ty: Ty) -> Value {
        self.emit(Op::Load(addr), ty)
    }

    pub fn store(&mut self, val: Value, addr: Value) {
        let ty = self.func.value_ty(val);
        self.emit(Op::Store(val, addr), ty);
    }

    pub fn gep(&mut self, base: Value, index: Value, elem_size: u32) -> Value {
        self.emit(Op::Gep(base, index, elem_size), Ty::Ptr)
    }

    pub fn alloca(&mut self, size: u32) -> Value {
        self.emit(Op::Alloca(size), Ty::Ptr)
    }

    pub fn global_addr(&mut self, g: GlobalId) -> Value {
        self.emit(Op::GlobalAddr(g), Ty::Ptr)
    }

    // ---- calls / intrinsics ----

    pub fn call(&mut self, callee: FuncId, args: Vec<Value>, ret: Ty) -> Value {
        self.emit(Op::Call(callee, args), ret)
    }

    pub fn out(&mut self, v: Value) {
        self.emit(Op::Intrin(Intr::Out, vec![v]), Ty::Void);
    }

    pub fn input(&mut self) -> Value {
        self.emit(Op::Intrin(Intr::In, vec![]), Ty::I32)
    }

    pub fn enqueue(&mut self, q: QueueId, v: Value) {
        self.emit(Op::Intrin(Intr::Enqueue(q), vec![v]), Ty::Void);
    }

    pub fn dequeue(&mut self, q: QueueId, ty: Ty) -> Value {
        self.emit(Op::Intrin(Intr::Dequeue(q), vec![]), ty)
    }

    pub fn sem_raise(&mut self, s: SemId, n: Value) {
        self.emit(Op::Intrin(Intr::SemRaise(s), vec![n]), Ty::Void);
    }

    pub fn sem_lower(&mut self, s: SemId, n: Value) {
        self.emit(Op::Intrin(Intr::SemLower(s), vec![n]), Ty::Void);
    }

    // ---- control flow ----

    pub fn phi(&mut self, ty: Ty, incoming: Vec<(BlockId, Value)>) -> Value {
        // PHIs must be a prefix of the block: insert after existing PHIs.
        let b = self.current_block();
        let id = self.func.create_inst_at(Op::Phi(incoming), ty, self.cur_loc);
        let at = self
            .func
            .block(b)
            .insts
            .iter()
            .take_while(|&&iid| self.func.inst(iid).op.is_phi())
            .count();
        self.func.block_mut(b).insts.insert(at, id);
        Value::Inst(id)
    }

    pub fn br(&mut self, target: BlockId) {
        self.emit(Op::Br(target), Ty::Void);
    }

    pub fn cond_br(&mut self, cond: Value, then_b: BlockId, else_b: BlockId) {
        self.emit(Op::CondBr(cond, then_b, else_b), Ty::Void);
    }

    pub fn switch(&mut self, v: Value, cases: Vec<(i64, BlockId)>, default: BlockId) {
        self.emit(Op::Switch(v, cases, default), Ty::Void);
    }

    pub fn ret(&mut self, v: Option<Value>) {
        self.emit(Op::Ret(v), Ty::Void);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::InstId;

    #[test]
    fn builds_straightline_function() {
        let mut b = FuncBuilder::new("f", vec![Ty::I32, Ty::I32], Ty::I32);
        let entry = b.create_block("entry");
        b.switch_to(entry);
        b.func.entry = entry;
        let s = b.add(Value::Arg(0), Value::Arg(1));
        let d = b.mul(s, Value::imm32(3));
        b.ret(Some(d));
        let f = b.finish();
        assert_eq!(f.live_inst_count(), 3);
        assert!(f.block(entry).terminator().is_some());
    }

    #[test]
    fn phi_inserted_after_existing_phis() {
        let mut b = FuncBuilder::new("f", vec![], Ty::Void);
        let e = b.create_block("entry");
        let body = b.create_block("body");
        b.switch_to(e);
        b.br(body);
        b.switch_to(body);
        let p1 = b.phi(Ty::I32, vec![(e, Value::imm32(1))]);
        // Emit a non-phi, then another phi; the phi must come before it.
        let x = b.add(p1, Value::imm32(1));
        let _p2 = b.phi(Ty::I32, vec![(e, Value::imm32(2))]);
        let f = b.finish();
        let insts = &f.block(body).insts;
        assert!(matches!(f.inst(insts[0]).op, Op::Phi(_)));
        assert!(matches!(f.inst(insts[1]).op, Op::Phi(_)));
        assert!(matches!(f.inst(insts[2]).op, Op::Bin(..)));
        let _ = x;
    }

    #[test]
    fn value_types_propagate() {
        let mut b = FuncBuilder::new("f", vec![Ty::I8], Ty::I32);
        let e = b.create_block("entry");
        b.switch_to(e);
        let w = b.cast(CastOp::Zext, Value::Arg(0), Ty::I32);
        assert_eq!(b.func.value_ty(w), Ty::I32);
        let c = b.cmp(CmpOp::Eq, w, Value::imm32(0));
        assert_eq!(b.func.value_ty(c), Ty::I1);
        let InstId(_) = c.as_inst().unwrap();
    }
}
