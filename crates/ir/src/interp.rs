//! Reference interpreter for the IR.
//!
//! This is the *semantic ground truth* for the whole project: the frontend,
//! every optimization pass, the DSWP thread extractor, the HLS FSM executor
//! and the cycle-level runtime simulator are all validated against it.
//!
//! The interpreter is a resumable stepping machine so that multiple threads
//! (the partition functions produced by DSWP) can be co-executed over a
//! shared [`Machine`]: a step that hits a full/empty queue or a zero
//! semaphore reports [`StepEvent::Blocked`] without advancing, and can be
//! retried after other threads make progress.
//!
//! Runtime effects (queues, semaphores, stream I/O) are routed through the
//! [`Runtime`] trait; [`Machine`] provides the functional implementation,
//! while `twill-rt` provides the cycle-accurate bus-level one.

use crate::entities::{BlockId, FuncId, InstId, QueueId, SemId};
use crate::inst::{BinOp, CastOp, CmpOp, Intr, Op, Value};
use crate::layout;
use crate::module::{Module, Ty};
use std::collections::VecDeque;

/// Execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    Trap(String),
    DivByZero,
    /// Address, size of the faulting access.
    MemFault(u32, u32),
    /// Stack region exhausted.
    StackOverflow,
    /// Recursive call detected (unsupported by Twill, like the thesis).
    Recursion(String),
    /// The single-threaded runner hit a blocking runtime op.
    DeadlockedOn(String),
    /// Step budget exhausted.
    OutOfFuel,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Trap(m) => write!(f, "trap: {m}"),
            ExecError::DivByZero => write!(f, "division by zero"),
            ExecError::MemFault(a, s) => write!(f, "memory fault at {a:#x} size {s}"),
            ExecError::StackOverflow => write!(f, "stack overflow"),
            ExecError::Recursion(name) => write!(f, "recursion into @{name}"),
            ExecError::DeadlockedOn(m) => write!(f, "deadlocked on {m}"),
            ExecError::OutOfFuel => write!(f, "out of fuel"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of trying a blocking runtime operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtPoll {
    /// Operation completed (payload for dequeue, 0 otherwise).
    Done(i64),
    /// Operation cannot complete now; retry later without advancing.
    WouldBlock,
}

/// Interface to the runtime primitives, implemented functionally by
/// [`Machine`] and cycle-accurately by `twill-rt`.
pub trait Runtime {
    fn enqueue(&mut self, q: QueueId, v: i64) -> RtPoll;
    fn dequeue(&mut self, q: QueueId) -> RtPoll;
    fn sem_raise(&mut self, s: SemId, n: i64) -> RtPoll;
    fn sem_lower(&mut self, s: SemId, n: i64) -> RtPoll;
    fn write_out(&mut self, v: i64);
    fn read_in(&mut self) -> i64;
}

/// Shared machine state: the unified memory image plus a functional
/// implementation of queues/semaphores and stream I/O.
pub struct Machine {
    pub mem: Vec<u8>,
    pub input: Vec<i32>,
    pub in_pos: usize,
    pub output: Vec<i32>,
    queues: Vec<VecDeque<i64>>,
    queue_caps: Vec<u32>,
    sems: Vec<u32>,
    sem_maxes: Vec<u32>,
}

impl Machine {
    /// Build a machine for `m`: lay out globals (addresses must already be
    /// assigned via [`layout::assign_global_addrs`]) and size queues/sems
    /// from the module's declarations.
    pub fn new(m: &Module, mem_size: u32, input: Vec<i32>) -> Machine {
        Machine {
            mem: layout::initial_memory(m, mem_size),
            input,
            in_pos: 0,
            output: Vec::new(),
            queues: m.queues.iter().map(|_| VecDeque::new()).collect(),
            queue_caps: m.queues.iter().map(|q| q.depth).collect(),
            sems: m.sems.iter().map(|s| s.initial).collect(),
            sem_maxes: m.sems.iter().map(|s| s.max).collect(),
        }
    }

    pub fn queue_len(&self, q: QueueId) -> usize {
        self.queues[q.index()].len()
    }

    pub fn sem_value(&self, s: SemId) -> u32 {
        self.sems[s.index()]
    }

    /// True if every queue is drained (used to assert clean pipeline exit).
    pub fn all_queues_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }
}

impl Runtime for Machine {
    fn enqueue(&mut self, q: QueueId, v: i64) -> RtPoll {
        let cap = self.queue_caps[q.index()] as usize;
        let qq = &mut self.queues[q.index()];
        if qq.len() >= cap {
            RtPoll::WouldBlock
        } else {
            qq.push_back(v);
            RtPoll::Done(0)
        }
    }

    fn dequeue(&mut self, q: QueueId) -> RtPoll {
        match self.queues[q.index()].pop_front() {
            Some(v) => RtPoll::Done(v),
            None => RtPoll::WouldBlock,
        }
    }

    fn sem_raise(&mut self, s: SemId, n: i64) -> RtPoll {
        let max = self.sem_maxes[s.index()];
        let v = &mut self.sems[s.index()];
        *v = (*v + n.max(0) as u32).min(max);
        RtPoll::Done(0)
    }

    fn sem_lower(&mut self, s: SemId, n: i64) -> RtPoll {
        let n = n.max(0) as u32;
        let v = &mut self.sems[s.index()];
        if *v >= n {
            *v -= n;
            RtPoll::Done(0)
        } else {
            RtPoll::WouldBlock
        }
    }

    fn write_out(&mut self, v: i64) {
        self.output.push(v as i32);
    }

    fn read_in(&mut self) -> i64 {
        let v = self.input.get(self.in_pos).copied().unwrap_or(-1);
        self.in_pos += 1;
        v as i64
    }
}

// ---------------------------------------------------------------------------
// Memory access helpers (shared with the HLS executor and the simulator)
// ---------------------------------------------------------------------------

/// Little-endian typed load; returns raw bits zero-extended.
pub fn load_mem(mem: &[u8], addr: u32, ty: Ty) -> Result<i64, ExecError> {
    let size = ty.bytes();
    if addr < layout::GLOBAL_BASE || (addr as u64 + size as u64) > mem.len() as u64 {
        return Err(ExecError::MemFault(addr, size));
    }
    let a = addr as usize;
    let v = match ty {
        Ty::I1 => mem[a] as i64 & 1,
        Ty::I8 => mem[a] as i64,
        Ty::I16 => u16::from_le_bytes([mem[a], mem[a + 1]]) as i64,
        Ty::I32 | Ty::Ptr => {
            u32::from_le_bytes([mem[a], mem[a + 1], mem[a + 2], mem[a + 3]]) as i64
        }
        Ty::Void => 0,
    };
    Ok(v)
}

/// Little-endian typed store.
pub fn store_mem(mem: &mut [u8], addr: u32, ty: Ty, val: i64) -> Result<(), ExecError> {
    let size = ty.bytes();
    if addr < layout::GLOBAL_BASE || (addr as u64 + size as u64) > mem.len() as u64 {
        return Err(ExecError::MemFault(addr, size));
    }
    let a = addr as usize;
    match ty {
        Ty::I1 => mem[a] = (val & 1) as u8,
        Ty::I8 => mem[a] = val as u8,
        Ty::I16 => mem[a..a + 2].copy_from_slice(&(val as u16).to_le_bytes()),
        Ty::I32 | Ty::Ptr => mem[a..a + 4].copy_from_slice(&(val as u32).to_le_bytes()),
        Ty::Void => {}
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Pure operation evaluation (shared with HLS executor / const-folding)
// ---------------------------------------------------------------------------

/// Evaluate a binary op on raw (zero-extended) operand bits of type `ty`,
/// returning the raw result masked to `ty`.
pub fn eval_bin(op: BinOp, ty: Ty, a: i64, b: i64) -> Result<i64, ExecError> {
    let ua = ty.mask(a);
    let ub = ty.mask(b);
    let sa = ty.sext(ua);
    let sb = ty.sext(ub);
    let bits = ty.bits().max(1);
    let sh = (ub as u32) % bits;
    let r = match op {
        BinOp::Add => ua.wrapping_add(ub),
        BinOp::Sub => ua.wrapping_sub(ub),
        BinOp::Mul => ua.wrapping_mul(ub),
        BinOp::SDiv => {
            if sb == 0 {
                return Err(ExecError::DivByZero);
            }
            sa.wrapping_div(sb)
        }
        BinOp::UDiv => {
            if ub == 0 {
                return Err(ExecError::DivByZero);
            }
            ((ua as u64) / (ub as u64)) as i64
        }
        BinOp::SRem => {
            if sb == 0 {
                return Err(ExecError::DivByZero);
            }
            sa.wrapping_rem(sb)
        }
        BinOp::URem => {
            if ub == 0 {
                return Err(ExecError::DivByZero);
            }
            ((ua as u64) % (ub as u64)) as i64
        }
        BinOp::And => ua & ub,
        BinOp::Or => ua | ub,
        BinOp::Xor => ua ^ ub,
        BinOp::Shl => ua.wrapping_shl(sh),
        BinOp::AShr => sa.wrapping_shr(sh),
        BinOp::LShr => ((ua as u64) >> sh) as i64,
    };
    Ok(ty.mask(r))
}

/// Evaluate a comparison on raw bits of type `ty`, returning 0/1.
pub fn eval_cmp(op: CmpOp, ty: Ty, a: i64, b: i64) -> i64 {
    let ua = ty.mask(a) as u64;
    let ub = ty.mask(b) as u64;
    let sa = ty.sext(ty.mask(a));
    let sb = ty.sext(ty.mask(b));
    let r = match op {
        CmpOp::Eq => ua == ub,
        CmpOp::Ne => ua != ub,
        CmpOp::Slt => sa < sb,
        CmpOp::Sle => sa <= sb,
        CmpOp::Sgt => sa > sb,
        CmpOp::Sge => sa >= sb,
        CmpOp::Ult => ua < ub,
        CmpOp::Ule => ua <= ub,
        CmpOp::Ugt => ua > ub,
        CmpOp::Uge => ua >= ub,
    };
    r as i64
}

/// Evaluate a cast from `from_ty` raw bits to `to_ty` raw bits.
pub fn eval_cast(op: CastOp, from_ty: Ty, to_ty: Ty, v: i64) -> i64 {
    match op {
        CastOp::Zext => to_ty.mask(from_ty.mask(v)),
        CastOp::Sext => to_ty.mask(from_ty.sext(from_ty.mask(v))),
        CastOp::Trunc => to_ty.mask(v),
    }
}

/// Function addresses live far above the data address space so stray
/// pointers cannot collide with them.
pub const FUNC_ADDR_BASE: i64 = 0xF000_0000;

/// Encode a function id as a pointer-sized "address".
pub fn func_addr_encode(f: FuncId) -> i64 {
    FUNC_ADDR_BASE + f.0 as i64
}

/// Decode a function address back to an id, if valid.
pub fn func_addr_decode(raw: i64, m: &Module) -> Option<FuncId> {
    let v = raw & 0xffff_ffff;
    if (FUNC_ADDR_BASE..FUNC_ADDR_BASE + m.funcs.len() as i64).contains(&v) {
        Some(FuncId((v - FUNC_ADDR_BASE) as u32))
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// The stepping interpreter
// ---------------------------------------------------------------------------

/// What a single [`Interp::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// Executed the given instruction (of the given function).
    Executed(FuncId, InstId),
    /// Hit a blocking runtime op; nothing advanced. Retry later.
    Blocked(FuncId, InstId),
    /// The outermost function returned (payload = return value).
    Finished(Option<i64>),
}

struct Frame {
    func: FuncId,
    block: BlockId,
    pc: usize,
    regs: Vec<i64>,
    args: Vec<i64>,
    sp_save: u32,
    /// Call instruction in this frame currently awaiting a callee result.
    pending_call: Option<InstId>,
}

/// A resumable single thread of IR execution.
pub struct Interp {
    frames: Vec<Frame>,
    sp: u32,
    stack_limit: u32,
    finished: Option<Option<i64>>,
    /// Total instructions executed.
    pub steps: u64,
}

impl Interp {
    /// Start executing `func(args)`. `stack` is the [start, limit) region in
    /// machine memory this thread may use for allocas.
    pub fn new(m: &Module, func: FuncId, args: Vec<i64>, stack: (u32, u32)) -> Interp {
        let f = m.func(func);
        let frame = Frame {
            func,
            block: f.entry,
            pc: 0,
            regs: vec![0; f.insts.len()],
            args,
            sp_save: stack.0,
            pending_call: None,
        };
        Interp { frames: vec![frame], sp: stack.0, stack_limit: stack.1, finished: None, steps: 0 }
    }

    pub fn is_finished(&self) -> bool {
        self.finished.is_some()
    }

    pub fn result(&self) -> Option<Option<i64>> {
        self.finished
    }

    /// Current call depth (for diagnostics).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Location of the next instruction to execute.
    pub fn current_loc(&self, m: &Module) -> Option<(FuncId, InstId)> {
        let fr = self.frames.last()?;
        let f = m.func(fr.func);
        let iid = *f.block(fr.block).insts.get(fr.pc)?;
        Some((fr.func, iid))
    }

    fn eval(&self, m: &Module, v: Value) -> i64 {
        let fr = self.frames.last().unwrap();
        match v {
            Value::Inst(i) => fr.regs[i.index()],
            Value::Arg(n) => {
                let ty = m.func(fr.func).params[n as usize];
                ty.mask(fr.args[n as usize])
            }
            Value::Imm(x, t) => t.mask(x),
        }
    }

    /// Transfer control to `target`, resolving its PHIs in parallel.
    fn branch_to(&mut self, m: &Module, from: BlockId, target: BlockId) {
        // Evaluate all phi inputs first (parallel-copy semantics), then
        // commit, so phis referencing other phis of the same block read the
        // pre-branch values.
        let fid = self.frames.last().unwrap().func;
        let f = m.func(fid);
        let mut updates: Vec<(InstId, i64)> = Vec::new();
        for &iid in &f.block(target).insts {
            match &f.inst(iid).op {
                Op::Phi(incoming) => {
                    // Predecessors may appear multiple times (condbr with
                    // equal targets); any matching entry has the same value.
                    let (_, v) = incoming
                        .iter()
                        .find(|(b, _)| *b == from)
                        .unwrap_or_else(|| panic!("phi {iid} missing incoming for {from}"));
                    updates.push((iid, self.eval(m, *v)));
                }
                _ => break,
            }
        }
        let fr = self.frames.last_mut().unwrap();
        let nphis = updates.len();
        for (iid, v) in updates {
            fr.regs[iid.index()] = v;
        }
        fr.block = target;
        fr.pc = nphis;
    }

    /// Execute one instruction. `mem` is the unified memory; `rt` handles
    /// runtime primitives.
    pub fn step(
        &mut self,
        m: &Module,
        mem: &mut [u8],
        rt: &mut dyn Runtime,
    ) -> Result<StepEvent, ExecError> {
        if let Some(r) = self.finished {
            return Ok(StepEvent::Finished(r));
        }
        let (fid, iid) = {
            let fr = self.frames.last().unwrap();
            let f = m.func(fr.func);
            let iid = f.block(fr.block).insts[fr.pc];
            (fr.func, iid)
        };
        let f = m.func(fid);
        let inst = f.inst(iid);
        let ty = inst.ty;

        macro_rules! setreg {
            ($v:expr) => {{
                let v = ty.mask($v);
                self.frames.last_mut().unwrap().regs[iid.index()] = v;
            }};
        }
        macro_rules! advance {
            () => {{
                self.frames.last_mut().unwrap().pc += 1;
                self.steps += 1;
                return Ok(StepEvent::Executed(fid, iid));
            }};
        }

        match &inst.op {
            Op::Bin(b, x, y) => {
                let r = eval_bin(*b, ty, self.eval(m, *x), self.eval(m, *y))?;
                setreg!(r);
                advance!();
            }
            Op::Cmp(c, x, y) => {
                let opty = f.value_ty(*x);
                let r = eval_cmp(*c, opty, self.eval(m, *x), self.eval(m, *y));
                setreg!(r);
                advance!();
            }
            Op::Select(c, a, b) => {
                let r = if self.eval(m, *c) & 1 != 0 { self.eval(m, *a) } else { self.eval(m, *b) };
                setreg!(r);
                advance!();
            }
            Op::Cast(c, v) => {
                let from = f.value_ty(*v);
                let r = eval_cast(*c, from, ty, self.eval(m, *v));
                setreg!(r);
                advance!();
            }
            Op::Load(a) => {
                let addr = self.eval(m, *a) as u32;
                let r = load_mem(mem, addr, ty)?;
                setreg!(r);
                advance!();
            }
            Op::Store(v, a) => {
                let addr = self.eval(m, *a) as u32;
                let val = self.eval(m, *v);
                store_mem(mem, addr, ty, val)?;
                advance!();
            }
            Op::Gep(base, idx, sz) => {
                let b = self.eval(m, *base);
                let i = f.value_ty(*idx).sext(self.eval(m, *idx));
                setreg!(b.wrapping_add(i.wrapping_mul(*sz as i64)));
                advance!();
            }
            Op::Alloca(size) => {
                let addr = self.sp;
                let new_sp = addr + ((*size + 3) & !3).max(4);
                if new_sp > self.stack_limit {
                    return Err(ExecError::StackOverflow);
                }
                self.sp = new_sp;
                // Zero the slot (deterministic across configs).
                for b in &mut mem[addr as usize..new_sp as usize] {
                    *b = 0;
                }
                setreg!(addr as i64);
                advance!();
            }
            Op::GlobalAddr(g) => {
                setreg!(m.global(*g).addr as i64);
                advance!();
            }
            Op::FuncAddr(func) => {
                setreg!(func_addr_encode(*func));
                advance!();
            }
            Op::CallIndirect(target, args) => {
                let raw = self.eval(m, *target);
                let Some(callee) = func_addr_decode(raw, m) else {
                    return Err(ExecError::Trap(format!(
                        "indirect call through non-function address {raw:#x}"
                    )));
                };
                let cf = m.func(callee);
                if cf.params.len() != args.len() {
                    return Err(ExecError::Trap(format!(
                        "indirect call to @{} with {} args (expects {})",
                        cf.name,
                        args.len(),
                        cf.params.len()
                    )));
                }
                if self.frames.len() >= 512 {
                    return Err(ExecError::Recursion(cf.name.clone()));
                }
                let argv: Vec<i64> = args.iter().map(|a| self.eval(m, *a)).collect();
                self.frames.last_mut().unwrap().pending_call = Some(iid);
                self.frames.push(Frame {
                    func: callee,
                    block: cf.entry,
                    pc: 0,
                    regs: vec![0; cf.insts.len()],
                    args: argv,
                    sp_save: self.sp,
                    pending_call: None,
                });
                self.steps += 1;
                Ok(StepEvent::Executed(fid, iid))
            }
            Op::Call(callee, args) => {
                // Bounded call depth (recursion is permitted when the
                // frontend was configured to accept it; runaway recursion
                // still faults like a real stack overflow would).
                if self.frames.len() >= 512 {
                    return Err(ExecError::Recursion(m.func(*callee).name.clone()));
                }
                let argv: Vec<i64> = args.iter().map(|a| self.eval(m, *a)).collect();
                self.frames.last_mut().unwrap().pending_call = Some(iid);
                let cf = m.func(*callee);
                self.frames.push(Frame {
                    func: *callee,
                    block: cf.entry,
                    pc: 0,
                    regs: vec![0; cf.insts.len()],
                    args: argv,
                    sp_save: self.sp,
                    pending_call: None,
                });
                self.steps += 1;
                Ok(StepEvent::Executed(fid, iid))
            }
            Op::Intrin(intr, args) => {
                let poll = match intr {
                    Intr::Out => {
                        rt.write_out(self.eval(m, args[0]));
                        RtPoll::Done(0)
                    }
                    Intr::In => RtPoll::Done(rt.read_in()),
                    Intr::Enqueue(q) => {
                        let qty = m.queues[q.index()].width;
                        rt.enqueue(*q, qty.mask(self.eval(m, args[0])))
                    }
                    Intr::Dequeue(q) => rt.dequeue(*q),
                    Intr::SemRaise(s) => rt.sem_raise(*s, self.eval(m, args[0])),
                    Intr::SemLower(s) => rt.sem_lower(*s, self.eval(m, args[0])),
                };
                match poll {
                    RtPoll::Done(v) => {
                        if ty != Ty::Void {
                            setreg!(v);
                        }
                        advance!();
                    }
                    RtPoll::WouldBlock => Ok(StepEvent::Blocked(fid, iid)),
                }
            }
            Op::Phi(_) => {
                // Phis are resolved at branch time; stepping onto one means
                // the entry block starts with a phi, which is invalid IR.
                Err(ExecError::Trap(format!("executed phi {iid} directly")))
            }
            Op::Br(t) => {
                let from = self.frames.last().unwrap().block;
                self.branch_to(m, from, *t);
                self.steps += 1;
                Ok(StepEvent::Executed(fid, iid))
            }
            Op::CondBr(c, t, e) => {
                let cond = self.eval(m, *c) & 1 != 0;
                let from = self.frames.last().unwrap().block;
                self.branch_to(m, from, if cond { *t } else { *e });
                self.steps += 1;
                Ok(StepEvent::Executed(fid, iid))
            }
            Op::Switch(v, cases, default) => {
                let x = f.value_ty(*v).sext(self.eval(m, *v));
                let target =
                    cases.iter().find(|(k, _)| *k == x).map(|(_, b)| *b).unwrap_or(*default);
                let from = self.frames.last().unwrap().block;
                self.branch_to(m, from, target);
                self.steps += 1;
                Ok(StepEvent::Executed(fid, iid))
            }
            Op::Ret(v) => {
                let val = v.map(|x| self.eval(m, x));
                let done = self.frames.pop().unwrap();
                self.sp = done.sp_save;
                self.steps += 1;
                match self.frames.last_mut() {
                    None => {
                        self.finished = Some(val);
                        Ok(StepEvent::Finished(val))
                    }
                    Some(caller) => {
                        let call_inst =
                            caller.pending_call.take().expect("return without pending call");
                        if let Some(v) = val {
                            let cf = m.func(caller.func);
                            caller.regs[call_inst.index()] = cf.inst(call_inst).ty.mask(v);
                        }
                        caller.pc += 1;
                        Ok(StepEvent::Executed(fid, iid))
                    }
                }
            }
        }
    }
}

/// Convenience: run `main` of a single-threaded module to completion with
/// the functional runtime. Any blocking op is a deadlock (single thread).
pub fn run_main(
    m: &Module,
    input: Vec<i32>,
    fuel: u64,
) -> Result<(Vec<i32>, Option<i64>, u64), ExecError> {
    let main = m.find_func("main").ok_or_else(|| ExecError::Trap("no @main in module".into()))?;
    let mut machine = Machine::new(m, layout::DEFAULT_MEM_SIZE, input);
    let globals_end =
        m.globals.iter().map(|g| g.addr + g.size).max().unwrap_or(layout::GLOBAL_BASE);
    let stack_base = (globals_end + 63) & !63;
    let mut it = Interp::new(m, main, vec![], (stack_base, layout::DEFAULT_MEM_SIZE));
    let mut remaining = fuel;
    loop {
        if remaining == 0 {
            return Err(ExecError::OutOfFuel);
        }
        remaining -= 1;
        let mut mem = std::mem::take(&mut machine.mem);
        let ev = it.step(m, &mut mem, &mut machine);
        machine.mem = mem;
        match ev? {
            StepEvent::Finished(v) => return Ok((machine.output, v, it.steps)),
            StepEvent::Blocked(f, i) => {
                return Err(ExecError::DeadlockedOn(format!("{}:{i}", m.func(f).name)))
            }
            StepEvent::Executed(..) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn run_src(src: &str, input: Vec<i32>) -> (Vec<i32>, Option<i64>) {
        let mut m = parse_module(src).unwrap();
        layout::assign_global_addrs(&mut m);
        crate::verifier::assert_valid(&m);
        let (out, ret, _) = run_main(&m, input, 10_000_000).unwrap();
        (out, ret)
    }

    #[test]
    fn arithmetic_and_loop() {
        // sum 1..=5 via loop, print it
        let src = r#"
func @main() -> i32 {
bb0:
  br bb1
bb1:
  %0 = phi i32 [bb0: 0:i32], [bb1: %2]
  %1 = phi i32 [bb0: 1:i32], [bb1: %3]
  %2 = add i32 %0, %1
  %3 = add i32 %1, 1:i32
  %4 = cmp sle %3, 5:i32
  condbr %4, bb1, bb2
bb2:
  out %2
  ret %2
}
"#;
        let (out, ret) = run_src(src, vec![]);
        assert_eq!(out, vec![15]);
        assert_eq!(ret, Some(15));
    }

    #[test]
    fn memory_and_globals() {
        let src = r#"
global @tab size=16 [0a 00 00 00 14 00 00 00 1e 00 00 00 28 00 00 00]
func @main() -> i32 {
bb0:
  %0 = gaddr @tab
  %1 = gep %0, 2:i32, 4
  %2 = load i32 %1
  %3 = alloca 4
  store i32 %2, %3
  %4 = load i32 %3
  out %4
  ret %4
}
"#;
        let (out, ret) = run_src(src, vec![]);
        assert_eq!(out, vec![30]);
        assert_eq!(ret, Some(30));
    }

    #[test]
    fn signedness_matters() {
        // -1 as u32 is large; check slt vs ult.
        let src = r#"
func @main() -> i32 {
bb0:
  %0 = cmp slt -1:i32, 0:i32
  %1 = cmp ult -1:i32, 0:i32
  %2 = zext %0 to i32
  %3 = zext %1 to i32
  out %2
  out %3
  ret 0:i32
}
"#;
        let (out, _) = run_src(src, vec![]);
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    fn narrow_type_wraparound() {
        // i8 250 + 10 = 4 (wraps); sext of i8 0xf4 is -12.
        let src = r#"
func @main() -> i32 {
bb0:
  %0 = add i8 250:i8, 10:i8
  %1 = zext %0 to i32
  %2 = sext 244:i8 to i32
  out %1
  out %2
  ret 0:i32
}
"#;
        let (out, _) = run_src(src, vec![]);
        assert_eq!(out, vec![4, -12]);
    }

    #[test]
    fn division_semantics() {
        let src = r#"
func @main() -> i32 {
bb0:
  %0 = sdiv i32 -7:i32, 2:i32
  %1 = udiv i32 -7:i32, 2:i32
  %2 = srem i32 -7:i32, 2:i32
  out %0
  out %2
  %3 = cmp ugt %1, 1000000:i32
  %4 = zext %3 to i32
  out %4
  ret 0:i32
}
"#;
        let (out, _) = run_src(src, vec![]);
        assert_eq!(out, vec![-3, -1, 1]);
    }

    #[test]
    fn div_by_zero_traps() {
        let src = "func @main() -> i32 {\nbb0:\n  %0 = sdiv i32 1:i32, 0:i32\n  ret %0\n}\n";
        let mut m = parse_module(src).unwrap();
        layout::assign_global_addrs(&mut m);
        let err = run_main(&m, vec![], 1000).unwrap_err();
        assert_eq!(err, ExecError::DivByZero);
    }

    #[test]
    fn calls_and_returns() {
        let src = r#"
func @square(i32) -> i32 {
bb0:
  %0 = mul i32 %a0, %a0
  ret %0
}
func @main() -> i32 {
bb0:
  %0 = in
  %1 = call i32 @square(%0)
  %2 = call i32 @square(%1)
  out %2
  ret %2
}
"#;
        let (out, ret) = run_src(src, vec![3]);
        assert_eq!(out, vec![81]);
        assert_eq!(ret, Some(81));
    }

    #[test]
    fn recursion_is_rejected() {
        let src = r#"
func @f(i32) -> i32 {
bb0:
  %0 = call i32 @f(%a0)
  ret %0
}
func @main() -> i32 {
bb0:
  %0 = call i32 @f(1:i32)
  ret %0
}
"#;
        let mut m = parse_module(src).unwrap();
        layout::assign_global_addrs(&mut m);
        let err = run_main(&m, vec![], 1000).unwrap_err();
        assert!(matches!(err, ExecError::Recursion(_)));
    }

    #[test]
    fn switch_dispatch() {
        let src = r#"
func @main() -> i32 {
bb0:
  %0 = in
  switch %0, [1: bb1], [2: bb2], default bb3
bb1:
  out 100:i32
  ret 1:i32
bb2:
  out 200:i32
  ret 2:i32
bb3:
  out 300:i32
  ret 3:i32
}
"#;
        assert_eq!(run_src(src, vec![2]).0, vec![200]);
        assert_eq!(run_src(src, vec![9]).0, vec![300]);
    }

    #[test]
    fn parallel_phi_swap() {
        // Classic swap-via-phi: both phis must read pre-branch values.
        let src = r#"
func @main() -> i32 {
bb0:
  br bb1
bb1:
  %0 = phi i32 [bb0: 1:i32], [bb1: %1]
  %1 = phi i32 [bb0: 2:i32], [bb1: %0]
  %2 = phi i32 [bb0: 0:i32], [bb1: %3]
  %3 = add i32 %2, 1:i32
  %4 = cmp slt %3, 3:i32
  condbr %4, bb1, bb2
bb2:
  out %0
  out %1
  ret 0:i32
}
"#;
        // After 3 iterations of swapping starting from (1,2):
        // iter counts: enter bb1 with (1,2); swap happens on each back edge.
        // 3 back edges? loop runs while %3 < 3: %3 = 1,2,3 -> two back edges.
        // (1,2) -> (2,1) -> (1,2); final values printed after exit: (1,2).
        let (out, _) = run_src(src, vec![]);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn queue_blocking_reported_as_deadlock_single_threaded() {
        let src =
            "queue q0 i32 x 2\nfunc @main() -> i32 {\nbb0:\n  %0 = dequeue i32 q0\n  ret %0\n}\n";
        let mut m = parse_module(src).unwrap();
        layout::assign_global_addrs(&mut m);
        let err = run_main(&m, vec![], 1000).unwrap_err();
        assert!(matches!(err, ExecError::DeadlockedOn(_)));
    }

    #[test]
    fn queues_work_within_capacity() {
        let src = r#"
queue q0 i32 x 4
func @main() -> i32 {
bb0:
  enqueue q0, 11:i32
  enqueue q0, 22:i32
  %0 = dequeue i32 q0
  %1 = dequeue i32 q0
  out %0
  out %1
  ret 0:i32
}
"#;
        let (out, _) = run_src(src, vec![]);
        assert_eq!(out, vec![11, 22]);
    }

    #[test]
    fn semaphores_count() {
        let src = r#"
sem sem0 max=4 init=2
func @main() -> i32 {
bb0:
  lower sem0, 2:i32
  raise sem0, 3:i32
  lower sem0, 3:i32
  out 1:i32
  ret 0:i32
}
"#;
        let (out, _) = run_src(src, vec![]);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn input_eof_returns_minus_one() {
        let src = "func @main() -> i32 {\nbb0:\n  %0 = in\n  %1 = in\n  out %0\n  out %1\n  ret 0:i32\n}\n";
        let (out, _) = run_src(src, vec![7]);
        assert_eq!(out, vec![7, -1]);
    }

    #[test]
    fn co_execution_of_two_threads_over_shared_machine() {
        // Producer enqueues 1..=100; consumer sums and prints. Queue depth 4
        // forces interleaving and exercises Blocked/retry.
        let src = r#"
queue q0 i32 x 4
func @producer() -> void {
bb0:
  br bb1
bb1:
  %0 = phi i32 [bb0: 1:i32], [bb1: %1]
  enqueue q0, %0
  %1 = add i32 %0, 1:i32
  %2 = cmp sle %1, 100:i32
  condbr %2, bb1, bb2
bb2:
  ret
}
func @consumer() -> void {
bb0:
  br bb1
bb1:
  %0 = phi i32 [bb0: 0:i32], [bb1: %2]
  %3 = phi i32 [bb0: 0:i32], [bb1: %4]
  %1 = dequeue i32 q0
  %2 = add i32 %0, %1
  %4 = add i32 %3, 1:i32
  %5 = cmp slt %4, 100:i32
  condbr %5, bb1, bb2
bb2:
  out %2
  ret
}
"#;
        let mut m = parse_module(src).unwrap();
        layout::assign_global_addrs(&mut m);
        crate::verifier::assert_valid(&m);
        let mut machine = Machine::new(&m, layout::DEFAULT_MEM_SIZE, vec![]);
        let p = m.find_func("producer").unwrap();
        let c = m.find_func("consumer").unwrap();
        let mut t0 = Interp::new(&m, p, vec![], (0x10000, 0x20000));
        let mut t1 = Interp::new(&m, c, vec![], (0x20000, 0x30000));
        let mut fuel = 1_000_000;
        while !(t0.is_finished() && t1.is_finished()) {
            assert!(fuel > 0, "deadlock");
            fuel -= 1;
            let mut mem = std::mem::take(&mut machine.mem);
            if !t0.is_finished() {
                t0.step(&m, &mut mem, &mut machine).unwrap();
            }
            if !t1.is_finished() {
                t1.step(&m, &mut mem, &mut machine).unwrap();
            }
            machine.mem = mem;
        }
        assert_eq!(machine.output, vec![5050]);
        assert!(machine.all_queues_empty());
    }
}
