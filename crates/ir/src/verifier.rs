//! Structural IR verifier.
//!
//! Checks the invariants every pass must preserve:
//! * each block is non-empty and ends in exactly one terminator,
//! * PHIs are a prefix of their block and have exactly one incoming entry
//!   per predecessor edge source (set equality on predecessor blocks),
//! * all operand references are in-range and refer to live instructions,
//! * branch targets are valid blocks, call signatures match,
//! * `alloca` appears only in the entry block,
//! * types are consistent where the opcode dictates them.
//!
//! Dominance of defs over uses is verified separately in `twill-passes`
//! (it needs the dominator tree).

use crate::entities::{BlockId, FuncId};
use crate::inst::{Op, Value};
use crate::module::{Function, Module, Ty};
use std::collections::HashSet;

/// A verification failure, with the function and a human-readable message.
#[derive(Debug, Clone)]
pub struct VerifyError {
    pub func: String,
    pub msg: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "in @{}: {}", self.func, self.msg)
    }
}

impl std::error::Error for VerifyError {}

/// Verify a whole module; returns all problems found.
pub fn verify_module(m: &Module) -> Vec<VerifyError> {
    let mut errs = Vec::new();
    for (fi, f) in m.funcs.iter().enumerate() {
        verify_function(m, FuncId::new(fi), f, &mut errs);
    }
    errs
}

/// Verify and panic with a readable report on failure (for tests/pipelines).
pub fn assert_valid(m: &Module) {
    let errs = verify_module(m);
    if !errs.is_empty() {
        let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        panic!("IR verification failed:\n{}", msgs.join("\n"));
    }
}

fn verify_function(m: &Module, _id: FuncId, f: &Function, errs: &mut Vec<VerifyError>) {
    let mut e = |msg: String| errs.push(VerifyError { func: f.name.clone(), msg });

    if f.blocks.is_empty() {
        e("function has no blocks".into());
        return;
    }
    if f.entry.index() >= f.blocks.len() {
        e(format!("entry {} out of range", f.entry));
        return;
    }

    // Live instruction set & ownership.
    let mut live: HashSet<usize> = HashSet::new();
    for b in f.block_ids() {
        for &i in &f.block(b).insts {
            if i.index() >= f.insts.len() {
                e(format!("{b}: instruction {i} out of arena range"));
                continue;
            }
            if !live.insert(i.index()) {
                e(format!("instruction {i} appears in more than one place"));
            }
        }
    }

    let preds = f.predecessors();

    for b in f.block_ids() {
        let blk = f.block(b);
        if blk.insts.is_empty() {
            e(format!("{b} is empty"));
            continue;
        }
        let term = *blk.insts.last().unwrap();
        if !f.inst(term).op.is_terminator() {
            e(format!("{b} does not end in a terminator"));
        }
        let mut seen_non_phi = false;
        for (pos, &i) in blk.insts.iter().enumerate() {
            let inst = f.inst(i);
            let is_last = pos + 1 == blk.insts.len();
            if inst.op.is_terminator() && !is_last {
                e(format!("{b}: terminator {i} is not last"));
            }
            if inst.op.is_phi() {
                if seen_non_phi {
                    e(format!("{b}: phi {i} after non-phi instruction"));
                }
            } else {
                seen_non_phi = true;
            }

            // Operand validity.
            inst.op.for_each_value(|v| match v {
                Value::Inst(d) => {
                    if d.index() >= f.insts.len() {
                        e(format!("{b}: {i} references out-of-range {d}"));
                    } else if !live.contains(&d.index()) {
                        e(format!("{b}: {i} references dead instruction {d}"));
                    }
                }
                Value::Arg(n) => {
                    if n as usize >= f.params.len() {
                        e(format!("{b}: {i} references missing arg %a{n}"));
                    }
                }
                Value::Imm(_, t) => {
                    if t == Ty::Void {
                        e(format!("{b}: {i} has void immediate"));
                    }
                }
            });

            // Target validity.
            for s in inst.op.successors() {
                if s.index() >= f.blocks.len() {
                    e(format!("{b}: {i} branches to missing {s}"));
                }
            }

            match &inst.op {
                Op::Phi(incoming) => {
                    let from: HashSet<BlockId> = incoming.iter().map(|(p, _)| *p).collect();
                    let expect: HashSet<BlockId> = preds[b.index()].iter().copied().collect();
                    if from != expect {
                        e(format!(
                            "{b}: phi {i} incoming blocks {:?} != predecessors {:?}",
                            from, expect
                        ));
                    }
                    if inst.ty == Ty::Void {
                        e(format!("{b}: phi {i} has void type"));
                    }
                }
                Op::Alloca(_) if b != f.entry => {
                    e(format!("{b}: alloca {i} outside entry block"));
                }
                Op::Call(callee, args) => {
                    if callee.index() >= m.funcs.len() {
                        e(format!("{b}: call {i} to missing function {callee}"));
                    } else {
                        let cf = m.func(*callee);
                        if cf.params.len() != args.len() {
                            e(format!(
                                "{b}: call {i} to @{} passes {} args, expected {}",
                                cf.name,
                                args.len(),
                                cf.params.len()
                            ));
                        }
                        if cf.ret != inst.ty {
                            e(format!(
                                "{b}: call {i} result type {} != @{} return type {}",
                                inst.ty, cf.name, cf.ret
                            ));
                        }
                    }
                }
                Op::GlobalAddr(g) if g.index() >= m.globals.len() => {
                    e(format!("{b}: {i} references missing global {g}"));
                }
                Op::FuncAddr(func) if func.index() >= m.funcs.len() => {
                    e(format!("{b}: {i} references missing function {func}"));
                }
                Op::CallIndirect(t, _) if f.value_ty(*t) != Ty::Ptr => {
                    e(format!("{b}: {i} indirect-call target is not a pointer"));
                }
                Op::Ret(v) => {
                    let got = v.map(|x| f.value_ty(x)).unwrap_or(Ty::Void);
                    if got != f.ret {
                        e(format!("{b}: ret type {} != function return {}", got, f.ret));
                    }
                }
                Op::CondBr(c, _, _) if f.value_ty(*c) != Ty::I1 => {
                    e(format!("{b}: condbr condition is not i1"));
                }
                Op::Cmp(..) if inst.ty != Ty::I1 => {
                    e(format!("{b}: cmp {i} result type must be i1"));
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn verify_src(src: &str) -> Vec<String> {
        let m = parse_module(src).unwrap();
        verify_module(&m).into_iter().map(|e| e.msg).collect()
    }

    #[test]
    fn accepts_valid_function() {
        let errs =
            verify_src("func @f(i32) -> i32 {\nbb0:\n  %0 = add i32 %a0, 1:i32\n  ret %0\n}\n");
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn rejects_missing_terminator() {
        let errs = verify_src("func @f() -> void {\nbb0:\n  %0 = add i32 1:i32, 2:i32\n}\n");
        assert!(errs.iter().any(|m| m.contains("terminator")), "{errs:?}");
    }

    #[test]
    fn rejects_phi_pred_mismatch() {
        // Phi claims an incoming edge from bb1 which is not a predecessor.
        let errs = verify_src(
            "func @f() -> void {\nbb0:\n  br bb2\nbb1:\n  br bb2\nbb2:\n  %0 = phi i32 [bb0: 1:i32]\n  ret\n}\n",
        );
        assert!(errs.iter().any(|m| m.contains("phi")), "{errs:?}");
    }

    #[test]
    fn rejects_alloca_outside_entry() {
        let errs =
            verify_src("func @f() -> void {\nbb0:\n  br bb1\nbb1:\n  %0 = alloca 8\n  ret\n}\n");
        assert!(errs.iter().any(|m| m.contains("alloca")), "{errs:?}");
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let errs = verify_src(
            "func @g(i32) -> void {\nbb0:\n  ret\n}\nfunc @f() -> void {\nbb0:\n  call void @g()\n  ret\n}\n",
        );
        assert!(errs.iter().any(|m| m.contains("args")), "{errs:?}");
    }

    #[test]
    fn rejects_wrong_ret_type() {
        let errs = verify_src("func @f() -> i32 {\nbb0:\n  ret\n}\n");
        assert!(errs.iter().any(|m| m.contains("ret type")), "{errs:?}");
    }

    #[test]
    fn rejects_non_i1_condbr() {
        let errs =
            verify_src("func @f(i32) -> void {\nbb0:\n  condbr %a0, bb1, bb1\nbb1:\n  ret\n}\n");
        assert!(errs.iter().any(|m| m.contains("not i1")), "{errs:?}");
    }

    #[test]
    fn assert_valid_panics_with_report() {
        let m = parse_module("func @f() -> i32 {\nbb0:\n  ret\n}\n").unwrap();
        let r = std::panic::catch_unwind(|| assert_valid(&m));
        assert!(r.is_err());
    }
}
