//! Textual form of the IR, round-trippable with [`crate::parser`].
//!
//! The format is deliberately line-oriented and explicit (every immediate
//! carries a type suffix) so that tests can be written directly in text and
//! diffs of compiler phases stay readable.

use crate::inst::{Intr, Op, Value};
use crate::module::{Function, Module, Ty};
use std::fmt::Write;

fn fmt_value(v: Value) -> String {
    match v {
        Value::Inst(i) => format!("%{}", i.0),
        Value::Arg(n) => format!("%a{n}"),
        Value::Imm(x, t) => format!("{x}:{t}"),
    }
}

fn fmt_values(vs: &[Value]) -> String {
    vs.iter().map(|v| fmt_value(*v)).collect::<Vec<_>>().join(", ")
}

/// Print a single instruction (without trailing newline).
pub fn print_inst(m: &Module, op: &Op, ty: Ty, textual_id: u32) -> String {
    let lhs = |s: String| format!("%{textual_id} = {s}");
    match op {
        Op::Bin(b, x, y) => {
            lhs(format!("{} {} {}, {}", b.mnemonic(), ty, fmt_value(*x), fmt_value(*y)))
        }
        Op::Cmp(c, x, y) => {
            lhs(format!("cmp {} {}, {}", c.mnemonic(), fmt_value(*x), fmt_value(*y)))
        }
        Op::Select(c, a, b) => {
            lhs(format!("select {} {}, {}, {}", ty, fmt_value(*c), fmt_value(*a), fmt_value(*b)))
        }
        Op::Cast(c, v) => lhs(format!("{} {} to {}", c.mnemonic(), fmt_value(*v), ty)),
        Op::Load(a) => lhs(format!("load {} {}", ty, fmt_value(*a))),
        Op::Store(v, a) => format!("store {} {}, {}", ty, fmt_value(*v), fmt_value(*a)),
        Op::Gep(b, i, sz) => lhs(format!("gep {}, {}, {}", fmt_value(*b), fmt_value(*i), sz)),
        Op::Alloca(sz) => lhs(format!("alloca {sz}")),
        Op::GlobalAddr(g) => lhs(format!("gaddr @{}", m.global(*g).name)),
        Op::FuncAddr(func) => lhs(format!("faddr @{}", m.func(*func).name)),
        Op::Call(callee, args) => {
            let name = &m.func(*callee).name;
            let s = format!("call {} @{}({})", ty, name, fmt_values(args));
            if ty == Ty::Void {
                s
            } else {
                lhs(s)
            }
        }
        Op::CallIndirect(t, args) => {
            let s = format!("calli {} {}({})", ty, fmt_value(*t), fmt_values(args));
            if ty == Ty::Void {
                s
            } else {
                lhs(s)
            }
        }
        Op::Intrin(i, args) => match i {
            Intr::Out => format!("out {}", fmt_value(args[0])),
            Intr::In => lhs("in".to_string()),
            Intr::Enqueue(q) => format!("enqueue q{}, {}", q.0, fmt_value(args[0])),
            Intr::Dequeue(q) => lhs(format!("dequeue {} q{}", ty, q.0)),
            Intr::SemRaise(s) => format!("raise sem{}, {}", s.0, fmt_value(args[0])),
            Intr::SemLower(s) => format!("lower sem{}, {}", s.0, fmt_value(args[0])),
        },
        Op::Phi(incoming) => {
            let parts: Vec<String> =
                incoming.iter().map(|(b, v)| format!("[bb{}: {}]", b.0, fmt_value(*v))).collect();
            lhs(format!("phi {} {}", ty, parts.join(", ")))
        }
        Op::Br(t) => format!("br bb{}", t.0),
        Op::CondBr(c, t, e) => format!("condbr {}, bb{}, bb{}", fmt_value(*c), t.0, e.0),
        Op::Switch(v, cases, d) => {
            let parts: Vec<String> =
                cases.iter().map(|(k, b)| format!("[{k}: bb{}]", b.0)).collect();
            format!("switch {}, {}, default bb{}", fmt_value(*v), parts.join(", "), d.0)
        }
        Op::Ret(Some(v)) => format!("ret {}", fmt_value(*v)),
        Op::Ret(None) => "ret".to_string(),
    }
    .trim_end()
    .to_string()
}

/// Print one function.
pub fn print_function(m: &Module, f: &Function) -> String {
    let mut out = String::new();
    let params = f.params.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ");
    writeln!(out, "func @{}({}) -> {} {{", f.name, params, f.ret).unwrap();
    for b in f.block_ids() {
        let blk = f.block(b);
        if blk.name.is_empty() {
            writeln!(out, "bb{}:", b.0).unwrap();
        } else {
            writeln!(out, "bb{}: ; {}", b.0, blk.name).unwrap();
        }
        for &i in &blk.insts {
            let inst = f.inst(i);
            let loc = f.loc(i);
            if loc.is_some() {
                // ` !N` = source line N; parsed back by crate::parser (a
                // `;` comment would be stripped and not round-trip).
                writeln!(out, "  {} !{}", print_inst(m, &inst.op, inst.ty, i.0), loc.line).unwrap();
            } else {
                writeln!(out, "  {}", print_inst(m, &inst.op, inst.ty, i.0)).unwrap();
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Print a whole module (globals, runtime resources, functions).
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    writeln!(out, "module \"{}\"", m.name).unwrap();
    for (i, q) in m.queues.iter().enumerate() {
        writeln!(out, "queue q{} {} x {}", i, q.width, q.depth).unwrap();
    }
    for (i, s) in m.sems.iter().enumerate() {
        writeln!(out, "sem sem{} max={} init={}", i, s.max, s.initial).unwrap();
    }
    for g in &m.globals {
        let init_hex: Vec<String> = g.init.iter().map(|b| format!("{b:02x}")).collect();
        writeln!(
            out,
            "global @{} size={}{} [{}]",
            g.name,
            g.size,
            if g.is_const { " const" } else { "" },
            init_hex.join(" ")
        )
        .unwrap();
    }
    for f in &m.funcs {
        out.push('\n');
        out.push_str(&print_function(m, f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::module::{Global, Module, QueueDecl, SemDecl};

    #[test]
    fn prints_function_with_all_constructs() {
        let mut m = Module::new("t");
        m.add_queue(QueueDecl { width: Ty::I32, depth: 8 });
        m.add_sem(SemDecl { max: 1, initial: 0 });
        let g = m.add_global(Global {
            name: "tab".into(),
            size: 4,
            init: vec![1, 2, 3, 4],
            addr: 0,
            is_const: true,
        });

        let mut b = FuncBuilder::new("main", vec![Ty::I32], Ty::I32);
        let e = b.create_block("entry");
        let l = b.create_block("loop");
        b.func.entry = e;
        b.switch_to(e);
        let ga = b.global_addr(g);
        let v = b.load(ga, Ty::I32);
        b.br(l);
        b.switch_to(l);
        let p = b.phi(Ty::I32, vec![(e, v), (l, Value::imm32(0))]);
        let c = b.cmp(crate::inst::CmpOp::Slt, p, Value::Arg(0));
        b.cond_br(c, l, e);
        m.add_func(b.finish());

        let text = print_module(&m);
        assert!(text.contains("queue q0 i32 x 8"));
        assert!(text.contains("sem sem0 max=1 init=0"));
        assert!(text.contains("global @tab size=4 const [01 02 03 04]"));
        assert!(text.contains("func @main(i32) -> i32 {"));
        assert!(text.contains("gaddr @tab"));
        assert!(text.contains("phi i32 [bb0:"));
        assert!(text.contains("condbr"));
    }

    #[test]
    fn void_call_has_no_lhs() {
        let mut m = Module::new("t");
        let mut cb = FuncBuilder::new("callee", vec![], Ty::Void);
        let e = cb.create_block("entry");
        cb.switch_to(e);
        cb.ret(None);
        let callee = m.add_func(cb.finish());

        let mut b = FuncBuilder::new("main", vec![], Ty::Void);
        let e = b.create_block("entry");
        b.switch_to(e);
        b.call(callee, vec![], Ty::Void);
        b.ret(None);
        m.add_func(b.finish());

        let text = print_module(&m);
        assert!(text.contains("\n  call void @callee()"));
        assert!(!text.contains("= call void"));
    }
}
