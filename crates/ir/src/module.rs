//! Module, function, block and global containers.

use crate::entities::{BlockId, FuncId, GlobalId, InstId, QueueId, SemId};
use crate::inst::{Op, Value};
use std::fmt;

/// Integer-only type system. The Twill thesis explicitly does not support
/// values wider than 32 bits (64-bit CHStone benchmarks are excluded), so
/// neither do we. Pointers are 32-bit flat addresses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Ty {
    Void,
    I1,
    I8,
    I16,
    I32,
    /// 32-bit flat address into the unified memory space.
    Ptr,
}

impl Ty {
    /// Width in bits (pointers are 32-bit).
    pub fn bits(self) -> u32 {
        match self {
            Ty::Void => 0,
            Ty::I1 => 1,
            Ty::I8 => 8,
            Ty::I16 => 16,
            Ty::I32 | Ty::Ptr => 32,
        }
    }

    /// Width in bytes as stored in memory (i1 occupies one byte).
    pub fn bytes(self) -> u32 {
        match self {
            Ty::Void => 0,
            Ty::I1 | Ty::I8 => 1,
            Ty::I16 => 2,
            Ty::I32 | Ty::Ptr => 4,
        }
    }

    /// Mask a raw i64 to this type's width, zero-extended.
    pub fn mask(self, v: i64) -> i64 {
        match self {
            Ty::Void => 0,
            Ty::I1 => v & 1,
            Ty::I8 => v & 0xff,
            Ty::I16 => v & 0xffff,
            Ty::I32 | Ty::Ptr => v & 0xffff_ffff,
        }
    }

    /// Sign-extend a raw value of this width into i64.
    pub fn sext(self, v: i64) -> i64 {
        let b = self.bits();
        if b == 0 || b >= 64 {
            return v;
        }
        let shift = 64 - b;
        (v << shift) >> shift
    }

    pub fn is_int(self) -> bool {
        matches!(self, Ty::I1 | Ty::I8 | Ty::I16 | Ty::I32)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::Void => "void",
            Ty::I1 => "i1",
            Ty::I8 => "i8",
            Ty::I16 => "i16",
            Ty::I32 => "i32",
            Ty::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

/// A basic block: an ordered list of instruction ids whose last element is a
/// terminator. PHI instructions, when present, are a prefix of the list.
#[derive(Clone, Debug, Default)]
pub struct Block {
    pub name: String,
    pub insts: Vec<InstId>,
}

impl Block {
    pub fn terminator(&self) -> Option<InstId> {
        self.insts.last().copied()
    }
}

/// One instruction: opcode plus result type (`Ty::Void` for valueless ops).
#[derive(Clone, Debug)]
pub struct InstData {
    pub op: Op,
    pub ty: Ty,
}

/// Source location of an instruction: the 1-based line of the C statement
/// or expression it was lowered from. Line 0 ([`SrcLoc::NONE`]) marks
/// compiler-synthesized instructions (edge splits, runtime plumbing).
///
/// Locations live in a side table on [`Function`] parallel to the `insts`
/// arena rather than in [`InstData`], so passes that clone or rewrite
/// `InstData` in place inherit the location for free and only *new*
/// instructions need an explicit decision (DESIGN.md §10).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SrcLoc {
    pub line: u32,
}

impl SrcLoc {
    /// "No location": synthesized by the compiler, not traceable to source.
    pub const NONE: SrcLoc = SrcLoc { line: 0 };

    pub fn new(line: u32) -> SrcLoc {
        SrcLoc { line }
    }

    pub fn is_none(self) -> bool {
        self.line == 0
    }

    pub fn is_some(self) -> bool {
        self.line != 0
    }
}

/// A function definition. Instructions live in the `insts` arena and are
/// referenced from blocks by id; dead arena slots (after edits) are tolerated
/// and skipped by iteration helpers.
#[derive(Clone, Debug)]
pub struct Function {
    pub name: String,
    pub params: Vec<Ty>,
    pub ret: Ty,
    pub blocks: Vec<Block>,
    pub insts: Vec<InstData>,
    /// Source-location side table, parallel to `insts` (same indices).
    /// May lag `insts` in length for hand-built functions; [`Function::loc`]
    /// treats missing entries as [`SrcLoc::NONE`].
    pub locs: Vec<SrcLoc>,
    pub entry: BlockId,
}

impl Function {
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret: Ty) -> Self {
        Function {
            name: name.into(),
            params,
            ret,
            blocks: Vec::new(),
            insts: Vec::new(),
            locs: Vec::new(),
            entry: BlockId(0),
        }
    }

    pub fn inst(&self, id: InstId) -> &InstData {
        &self.insts[id.index()]
    }

    pub fn inst_mut(&mut self, id: InstId) -> &mut InstData {
        &mut self.insts[id.index()]
    }

    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Ids of all blocks in arena order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len()).map(BlockId::new)
    }

    /// Iterate `(BlockId, InstId)` over every instruction in layout order.
    pub fn inst_ids_in_layout(&self) -> Vec<(BlockId, InstId)> {
        let mut v = Vec::new();
        for (bi, b) in self.blocks.iter().enumerate() {
            for &i in &b.insts {
                v.push((BlockId::new(bi), i));
            }
        }
        v
    }

    /// The type of a value in the context of this function.
    pub fn value_ty(&self, v: Value) -> Ty {
        match v {
            Value::Inst(i) => self.inst(i).ty,
            Value::Arg(n) => self.params.get(n as usize).copied().unwrap_or(Ty::I32),
            Value::Imm(_, t) => t,
        }
    }

    /// Successor blocks of `b` (from its terminator).
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        match self.block(b).terminator() {
            Some(t) => self.inst(t).op.successors(),
            None => Vec::new(),
        }
    }

    /// Compute the full predecessor table (index = block id).
    ///
    /// A block appears once per incoming *edge*, so a `condbr` with both
    /// targets equal contributes two entries.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in self.block_ids() {
            for s in self.successors(b) {
                preds[s.index()].push(b);
            }
        }
        preds
    }

    /// Which block contains each live instruction (index = inst id).
    pub fn inst_blocks(&self) -> Vec<Option<BlockId>> {
        let mut owner = vec![None; self.insts.len()];
        for (b, i) in self.inst_ids_in_layout() {
            owner[i.index()] = Some(b);
        }
        owner
    }

    /// Append a fresh instruction to the arena (not yet placed in a block).
    /// The instruction starts with no source location; use
    /// [`Function::create_inst_at`] or [`Function::set_loc`] to attach one.
    pub fn create_inst(&mut self, op: Op, ty: Ty) -> InstId {
        self.create_inst_at(op, ty, SrcLoc::NONE)
    }

    /// [`Function::create_inst`] with an explicit source location.
    pub fn create_inst_at(&mut self, op: Op, ty: Ty, loc: SrcLoc) -> InstId {
        let id = InstId::new(self.insts.len());
        self.insts.push(InstData { op, ty });
        self.locs.resize(self.insts.len() - 1, SrcLoc::NONE);
        self.locs.push(loc);
        id
    }

    /// Source location of an instruction ([`SrcLoc::NONE`] if untracked).
    pub fn loc(&self, id: InstId) -> SrcLoc {
        self.locs.get(id.index()).copied().unwrap_or(SrcLoc::NONE)
    }

    /// Set an instruction's source location (grows the side table if the
    /// function was built without one).
    pub fn set_loc(&mut self, id: InstId, loc: SrcLoc) {
        if self.locs.len() < self.insts.len() {
            self.locs.resize(self.insts.len(), SrcLoc::NONE);
        }
        self.locs[id.index()] = loc;
    }

    /// The set of distinct source lines referenced by live instructions
    /// (used by tests to check that passes never invent locations).
    pub fn live_loc_lines(&self) -> std::collections::BTreeSet<u32> {
        self.inst_ids_in_layout()
            .into_iter()
            .map(|(_, i)| self.loc(i).line)
            .filter(|&l| l != 0)
            .collect()
    }

    /// Append a fresh empty block.
    pub fn create_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId::new(self.blocks.len());
        self.blocks.push(Block { name: name.into(), insts: Vec::new() });
        id
    }

    /// Replace every use of value `from` with `to` across all instructions.
    pub fn replace_all_uses(&mut self, from: Value, to: Value) {
        for inst in &mut self.insts {
            inst.op.for_each_value_mut(|v| {
                if *v == from {
                    *v = to;
                }
            });
        }
    }

    /// Number of live (block-resident) instructions.
    pub fn live_inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// Queue element width + depth, configured statically by the DSWP pass
/// (thesis §4.3: widths 1/8/16/32 bits, per-queue depth).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueDecl {
    pub width: Ty,
    pub depth: u32,
}

/// Counting semaphore configuration (thesis §4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SemDecl {
    pub max: u32,
    pub initial: u32,
}

/// A module global: raw bytes plus assigned address after layout.
#[derive(Clone, Debug)]
pub struct Global {
    pub name: String,
    pub size: u32,
    /// Initial bytes; zero-filled to `size` if shorter.
    pub init: Vec<u8>,
    /// Flat address assigned by [`crate::layout::assign_global_addrs`].
    pub addr: u32,
    pub is_const: bool,
}

/// A whole program: functions, globals, and the statically-declared runtime
/// resources (queues/semaphores created by DSWP).
#[derive(Clone, Debug, Default)]
pub struct Module {
    pub name: String,
    pub funcs: Vec<Function>,
    pub globals: Vec<Global>,
    pub queues: Vec<QueueDecl>,
    pub sems: Vec<SemDecl>,
}

impl Module {
    pub fn new(name: impl Into<String>) -> Self {
        Module { name: name.into(), ..Default::default() }
    }

    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.funcs.len()).map(FuncId::new)
    }

    pub fn find_func(&self, name: &str) -> Option<FuncId> {
        self.funcs.iter().position(|f| f.name == name).map(FuncId::new)
    }

    pub fn add_func(&mut self, f: Function) -> FuncId {
        let id = FuncId::new(self.funcs.len());
        self.funcs.push(f);
        id
    }

    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    pub fn add_global(&mut self, g: Global) -> GlobalId {
        let id = GlobalId::new(self.globals.len());
        self.globals.push(g);
        id
    }

    pub fn find_global(&self, name: &str) -> Option<GlobalId> {
        self.globals.iter().position(|g| g.name == name).map(GlobalId::new)
    }

    pub fn add_queue(&mut self, q: QueueDecl) -> QueueId {
        let id = QueueId::new(self.queues.len());
        self.queues.push(q);
        id
    }

    pub fn add_sem(&mut self, s: SemDecl) -> SemId {
        let id = SemId::new(self.sems.len());
        self.sems.push(s);
        id
    }

    /// Total live instructions across all functions (program size metric).
    pub fn total_insts(&self) -> usize {
        self.funcs.iter().map(|f| f.live_inst_count()).sum()
    }

    /// If `addr` provably addresses a constant global (directly or through
    /// gep/cast/pointer-add chains), return it. Constant globals stay local
    /// to each hardware thread as ROMs (thesis §5.2's constant-global
    /// exemption from the unified address space).
    pub fn const_global_base(&self, f: &Function, addr: Value) -> Option<GlobalId> {
        let mut v = addr;
        for _ in 0..16 {
            match v {
                Value::Inst(i) => match &f.inst(i).op {
                    Op::GlobalAddr(g) => {
                        return if self.global(*g).is_const { Some(*g) } else { None };
                    }
                    Op::Gep(base, _, _) => v = *base,
                    Op::Cast(_, inner) => v = *inner,
                    Op::Bin(crate::inst::BinOp::Add | crate::inst::BinOp::Sub, a, b) => {
                        // Pointer arithmetic: follow the pointer side.
                        if f.value_ty(*a) == Ty::Ptr {
                            v = *a;
                        } else if f.value_ty(*b) == Ty::Ptr {
                            v = *b;
                        } else {
                            return None;
                        }
                    }
                    _ => return None,
                },
                _ => return None,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, Op, Value};

    #[test]
    fn ty_mask_and_sext() {
        assert_eq!(Ty::I8.mask(0x1ff), 0xff);
        assert_eq!(Ty::I8.sext(0xff), -1);
        assert_eq!(Ty::I16.sext(0x8000), -32768);
        assert_eq!(Ty::I32.mask(-1), 0xffff_ffff);
        assert_eq!(Ty::I32.sext(0xffff_ffff), -1);
        assert_eq!(Ty::I1.mask(3), 1);
        assert_eq!(Ty::I1.sext(1), -1);
    }

    #[test]
    fn ty_sizes() {
        assert_eq!(Ty::I1.bytes(), 1);
        assert_eq!(Ty::I16.bytes(), 2);
        assert_eq!(Ty::Ptr.bytes(), 4);
        assert_eq!(Ty::Ptr.bits(), 32);
        assert_eq!(Ty::Void.bytes(), 0);
    }

    fn tiny_fn() -> Function {
        let mut f = Function::new("t", vec![Ty::I32], Ty::I32);
        let b0 = f.create_block("entry");
        let b1 = f.create_block("exit");
        let add = f.create_inst(Op::Bin(BinOp::Add, Value::Arg(0), Value::imm32(1)), Ty::I32);
        let br = f.create_inst(Op::Br(b1), Ty::Void);
        let ret = f.create_inst(Op::Ret(Some(Value::Inst(add))), Ty::Void);
        f.block_mut(b0).insts = vec![add, br];
        f.block_mut(b1).insts = vec![ret];
        f
    }

    #[test]
    fn cfg_queries() {
        let f = tiny_fn();
        assert_eq!(f.successors(BlockId(0)), vec![BlockId(1)]);
        let preds = f.predecessors();
        assert_eq!(preds[1], vec![BlockId(0)]);
        assert!(preds[0].is_empty());
        assert_eq!(f.live_inst_count(), 3);
    }

    #[test]
    fn replace_all_uses_rewrites_operands() {
        let mut f = tiny_fn();
        f.replace_all_uses(Value::Arg(0), Value::imm32(7));
        let add = &f.inst(InstId(0)).op;
        assert_eq!(add.values()[0], Value::imm32(7));
    }

    #[test]
    fn condbr_same_target_counts_two_pred_edges() {
        let mut f = Function::new("t", vec![], Ty::Void);
        let b0 = f.create_block("entry");
        let b1 = f.create_block("next");
        let cb = f.create_inst(Op::CondBr(Value::imm1(true), b1, b1), Ty::Void);
        let ret = f.create_inst(Op::Ret(None), Ty::Void);
        f.block_mut(b0).insts = vec![cb];
        f.block_mut(b1).insts = vec![ret];
        let preds = f.predecessors();
        assert_eq!(preds[1].len(), 2);
    }

    #[test]
    fn loc_side_table_tracks_arena() {
        let mut f = Function::new("t", vec![], Ty::Void);
        let a = f.create_inst(Op::Ret(None), Ty::Void);
        let b = f.create_inst_at(Op::Ret(None), Ty::Void, SrcLoc::new(7));
        assert!(f.loc(a).is_none());
        assert_eq!(f.loc(b).line, 7);
        f.set_loc(a, SrcLoc::new(3));
        assert_eq!(f.loc(a).line, 3);
        // A function built without a table tolerates queries and late sets.
        let mut bare = Function::new("u", vec![], Ty::Void);
        bare.insts.push(InstData { op: Op::Ret(None), ty: Ty::Void });
        assert!(bare.loc(InstId(0)).is_none());
        bare.set_loc(InstId(0), SrcLoc::new(9));
        assert_eq!(bare.loc(InstId(0)).line, 9);
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new("m");
        let f = Function::new("main", vec![], Ty::Void);
        let id = m.add_func(f);
        assert_eq!(m.find_func("main"), Some(id));
        assert_eq!(m.find_func("nope"), None);
        let g = m.add_global(Global {
            name: "tbl".into(),
            size: 16,
            init: vec![1, 2],
            addr: 0,
            is_const: true,
        });
        assert_eq!(m.find_global("tbl"), Some(g));
        let q = m.add_queue(QueueDecl { width: Ty::I32, depth: 8 });
        assert_eq!(q.index(), 0);
    }
}
