//! # twill-ir
//!
//! The typed SSA intermediate representation used throughout the Twill
//! pipeline. It is deliberately modelled on the subset of LLVM 2.9 IR that
//! the Twill thesis consumes:
//!
//! * integer-only types up to 32 bits (`i1`, `i8`, `i16`, `i32`) plus
//!   pointers — the thesis explicitly excludes 64-bit values,
//! * SSA form with PHI nodes at block heads,
//! * no recursion and no function pointers (calls reference functions by id),
//! * a small set of runtime intrinsics (`enqueue`, `dequeue`, semaphore
//!   raise/lower, stream I/O) inserted by the DSWP thread-extraction pass.
//!
//! The crate also hosts the *reference interpreter* (used as the golden
//! executor for every benchmark and as the core of the software-thread CPU
//! model) and the calibrated cycle/area cost tables shared by the PDG
//! weighting, the HLS scheduler and the runtime simulator.

pub mod builder;
pub mod cost;
pub mod entities;
pub mod inst;
pub mod interp;
pub mod layout;
pub mod module;
pub mod parser;
pub mod printer;
pub mod verifier;

pub use builder::FuncBuilder;
pub use entities::{BlockId, FuncId, GlobalId, InstId, QueueId, SemId};
pub use inst::{BinOp, CastOp, CmpOp, Intr, Op, Value};
pub use interp::{ExecError, Interp, Machine};
pub use module::{Block, Function, Global, Module, QueueDecl, SemDecl, SrcLoc, Ty};
