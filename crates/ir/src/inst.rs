//! Instruction set of the Twill IR.
//!
//! The opcode vocabulary mirrors the LLVM 2.9 subset that the Twill thesis
//! operates on after its shaping passes: integer arithmetic, comparisons,
//! memory access through explicit addresses, `gep`-style address arithmetic,
//! direct calls, PHI nodes, and structured terminators. The DSWP pass adds
//! the runtime intrinsics (`enqueue`/`dequeue`/semaphore ops) described in
//! Chapter 4 of the thesis.

use crate::entities::{BlockId, FuncId, GlobalId, InstId, QueueId, SemId};
use crate::module::Ty;
use std::fmt;

/// An SSA value operand: the result of an instruction, a function argument,
/// or an immediate constant carrying its own type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Result of instruction `InstId` in the current function.
    Inst(InstId),
    /// The n-th formal parameter of the current function.
    Arg(u16),
    /// An immediate constant. The payload is stored sign-extended to i64 and
    /// masked to the width of `Ty` when evaluated.
    Imm(i64, Ty),
}

impl Value {
    pub const fn imm32(v: i64) -> Value {
        Value::Imm(v, Ty::I32)
    }
    pub const fn imm1(v: bool) -> Value {
        Value::Imm(v as i64, Ty::I1)
    }
    pub fn as_inst(self) -> Option<InstId> {
        match self {
            Value::Inst(i) => Some(i),
            _ => None,
        }
    }
    pub fn as_imm(self) -> Option<i64> {
        match self {
            Value::Imm(v, _) => Some(v),
            _ => None,
        }
    }
    pub fn is_const(self) -> bool {
        matches!(self, Value::Imm(..))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Inst(i) => write!(f, "{i}"),
            Value::Arg(n) => write!(f, "%a{n}"),
            Value::Imm(v, t) => write!(f, "{v}:{t}"),
        }
    }
}

/// Two-operand integer arithmetic / bitwise operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Signed division (traps on divide-by-zero, like the hardware divider).
    SDiv,
    UDiv,
    SRem,
    URem,
    And,
    Or,
    Xor,
    Shl,
    /// Arithmetic (sign-preserving) shift right.
    AShr,
    /// Logical shift right.
    LShr,
}

impl BinOp {
    pub const ALL: [BinOp; 13] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::SDiv,
        BinOp::UDiv,
        BinOp::SRem,
        BinOp::URem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::AShr,
        BinOp::LShr,
    ];

    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::SDiv => "sdiv",
            BinOp::UDiv => "udiv",
            BinOp::SRem => "srem",
            BinOp::URem => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::AShr => "ashr",
            BinOp::LShr => "lshr",
        }
    }

    /// Whether `a op b == b op a`.
    pub fn commutative(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor)
    }

    /// Division and remainder can trap and therefore cannot be speculated or
    /// dead-code-eliminated when the divisor is not a proven non-zero value.
    pub fn can_trap(self) -> bool {
        matches!(self, BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem)
    }
}

/// Integer comparison predicates (result type is always `i1`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
    Ule,
    Ugt,
    Uge,
}

impl CmpOp {
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Slt => "slt",
            CmpOp::Sle => "sle",
            CmpOp::Sgt => "sgt",
            CmpOp::Sge => "sge",
            CmpOp::Ult => "ult",
            CmpOp::Ule => "ule",
            CmpOp::Ugt => "ugt",
            CmpOp::Uge => "uge",
        }
    }

    /// Predicate with operands swapped: `a op b == b op.swapped() a`.
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Slt => CmpOp::Sgt,
            CmpOp::Sle => CmpOp::Sge,
            CmpOp::Sgt => CmpOp::Slt,
            CmpOp::Sge => CmpOp::Sle,
            CmpOp::Ult => CmpOp::Ugt,
            CmpOp::Ule => CmpOp::Uge,
            CmpOp::Ugt => CmpOp::Ult,
            CmpOp::Uge => CmpOp::Ule,
        }
    }

    /// Logical negation of the predicate.
    pub fn inverted(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Slt => CmpOp::Sge,
            CmpOp::Sle => CmpOp::Sgt,
            CmpOp::Sgt => CmpOp::Sle,
            CmpOp::Sge => CmpOp::Slt,
            CmpOp::Ult => CmpOp::Uge,
            CmpOp::Ule => CmpOp::Ugt,
            CmpOp::Ugt => CmpOp::Ule,
            CmpOp::Uge => CmpOp::Ult,
        }
    }
}

/// Integer width conversions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CastOp {
    Zext,
    Sext,
    Trunc,
}

impl CastOp {
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastOp::Zext => "zext",
            CastOp::Sext => "sext",
            CastOp::Trunc => "trunc",
        }
    }
}

/// Runtime intrinsics. `Out`/`In` are the benchmark I/O channel (the thesis'
/// serial-port I/O manager thread); the rest are the Twill runtime primitives
/// inserted by the DSWP pass and lowered to bus messages by the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Intr {
    /// `out(v: i32)` — append a word to the program's output stream.
    Out,
    /// `in() -> i32` — read a word from the input stream; returns -1 at EOF.
    In,
    /// `enqueue(q, v)` — blocking produce onto FIFO queue `q`.
    Enqueue(QueueId),
    /// `dequeue(q) -> v` — blocking consume from FIFO queue `q`.
    Dequeue(QueueId),
    /// `raise(s, n)` — raise counting semaphore `s` by `n` (operand 0).
    SemRaise(SemId),
    /// `lower(s, n)` — lower semaphore `s` by `n`, blocking at zero.
    SemLower(SemId),
}

impl Intr {
    pub fn mnemonic(self) -> &'static str {
        match self {
            Intr::Out => "out",
            Intr::In => "in",
            Intr::Enqueue(_) => "enqueue",
            Intr::Dequeue(_) => "dequeue",
            Intr::SemRaise(_) => "raise",
            Intr::SemLower(_) => "lower",
        }
    }

    /// Intrinsics are all side-effecting (I/O or inter-thread communication)
    /// and must never be removed or reordered against each other.
    pub fn has_side_effect(self) -> bool {
        true
    }
}

/// Instruction opcode with embedded operands.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Op {
    /// Binary arithmetic: both operands share the result type.
    Bin(BinOp, Value, Value),
    /// Integer compare producing `i1`.
    Cmp(CmpOp, Value, Value),
    /// `select cond, a, b` — ternary without control flow.
    Select(Value, Value, Value),
    /// Width conversion; source value, result type is the instruction type.
    Cast(CastOp, Value),
    /// Load of the instruction's result type from an address.
    Load(Value),
    /// `store val, addr` (value type is the instruction's type; result Void).
    Store(Value, Value),
    /// `gep base, index, elem_size` — address arithmetic
    /// `base + index * elem_size`, kept symbolic for alias analysis.
    Gep(Value, Value, u32),
    /// Static stack allocation of `size` bytes, yielding a pointer. Only
    /// allowed in the entry block (the frontend guarantees this).
    Alloca(u32),
    /// Address of a module global.
    GlobalAddr(GlobalId),
    /// Address of a function (for indirect calls — thesis §7 extension).
    FuncAddr(FuncId),
    /// Direct call. The callee's signature determines arg/result types.
    Call(FuncId, Vec<Value>),
    /// Indirect call through a function address. The instruction's type is
    /// the assumed return type; argument checking happens at run time.
    CallIndirect(Value, Vec<Value>),
    /// Runtime intrinsic call.
    Intrin(Intr, Vec<Value>),
    /// SSA PHI: one incoming value per predecessor block.
    Phi(Vec<(BlockId, Value)>),
    /// Unconditional branch.
    Br(BlockId),
    /// Conditional branch on an `i1` value.
    CondBr(Value, BlockId, BlockId),
    /// Multi-way dispatch on an i32 value; lowered by the `lowerswitch` pass
    /// before PDG construction, mirroring the thesis' pass pipeline.
    Switch(Value, Vec<(i64, BlockId)>, BlockId),
    /// Function return.
    Ret(Option<Value>),
}

impl Op {
    /// Whether this opcode terminates a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Op::Br(_) | Op::CondBr(..) | Op::Switch(..) | Op::Ret(_))
    }

    pub fn is_phi(&self) -> bool {
        matches!(self, Op::Phi(_))
    }

    /// Whether the instruction has observable side effects (memory writes,
    /// I/O, inter-thread communication, or possible traps) and therefore
    /// must not be removed even if its result is unused.
    pub fn has_side_effect(&self) -> bool {
        match self {
            Op::Store(..) | Op::Intrin(..) => true,
            Op::Call(..) | Op::CallIndirect(..) => true, // refined by purity analysis
            Op::Bin(op, _, d) => op.can_trap() && !matches!(d, Value::Imm(v, _) if *v != 0),
            _ => false,
        }
    }

    /// Whether this instruction reads memory.
    pub fn reads_memory(&self) -> bool {
        matches!(self, Op::Load(_) | Op::Call(..) | Op::CallIndirect(..))
    }

    /// Whether this instruction writes memory.
    pub fn writes_memory(&self) -> bool {
        matches!(self, Op::Store(..) | Op::Call(..) | Op::CallIndirect(..))
    }

    /// Visit every value operand.
    pub fn for_each_value(&self, mut f: impl FnMut(Value)) {
        match self {
            Op::Bin(_, a, b) | Op::Cmp(_, a, b) | Op::Store(a, b) => {
                f(*a);
                f(*b);
            }
            Op::Select(c, a, b) => {
                f(*c);
                f(*a);
                f(*b);
            }
            Op::Cast(_, a) | Op::CondBr(a, _, _) | Op::Switch(a, _, _) | Op::Load(a) => f(*a),
            Op::Gep(a, b, _) => {
                f(*a);
                f(*b);
            }
            Op::Call(_, args) | Op::Intrin(_, args) => {
                for a in args {
                    f(*a);
                }
            }
            Op::CallIndirect(t, args) => {
                f(*t);
                for a in args {
                    f(*a);
                }
            }
            Op::Phi(incoming) => {
                for (_, v) in incoming {
                    f(*v);
                }
            }
            Op::Ret(Some(v)) => f(*v),
            Op::Ret(None) | Op::Br(_) | Op::Alloca(_) | Op::GlobalAddr(_) | Op::FuncAddr(_) => {}
        }
    }

    /// Mutably visit every value operand (used by rewriting passes).
    pub fn for_each_value_mut(&mut self, mut f: impl FnMut(&mut Value)) {
        match self {
            Op::Bin(_, a, b) | Op::Cmp(_, a, b) | Op::Store(a, b) => {
                f(a);
                f(b);
            }
            Op::Select(c, a, b) => {
                f(c);
                f(a);
                f(b);
            }
            Op::Cast(_, a) | Op::CondBr(a, _, _) | Op::Switch(a, _, _) | Op::Load(a) => f(a),
            Op::Gep(a, b, _) => {
                f(a);
                f(b);
            }
            Op::Call(_, args) | Op::Intrin(_, args) => {
                for a in args {
                    f(a);
                }
            }
            Op::CallIndirect(t, args) => {
                f(t);
                for a in args {
                    f(a);
                }
            }
            Op::Phi(incoming) => {
                for (_, v) in incoming {
                    f(v);
                }
            }
            Op::Ret(Some(v)) => f(v),
            Op::Ret(None) | Op::Br(_) | Op::Alloca(_) | Op::GlobalAddr(_) | Op::FuncAddr(_) => {}
        }
    }

    /// Collect the operands into a vector (convenience for analyses).
    pub fn values(&self) -> Vec<Value> {
        let mut out = Vec::new();
        self.for_each_value(|v| out.push(v));
        out
    }

    /// Successor blocks of a terminator (empty for non-terminators/ret).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Op::Br(t) => vec![*t],
            Op::CondBr(_, t, e) => vec![*t, *e],
            Op::Switch(_, cases, default) => {
                let mut v: Vec<BlockId> = cases.iter().map(|(_, b)| *b).collect();
                v.push(*default);
                v
            }
            _ => Vec::new(),
        }
    }

    /// Mutably visit successor block ids of a terminator.
    pub fn for_each_successor_mut(&mut self, mut f: impl FnMut(&mut BlockId)) {
        match self {
            Op::Br(t) => f(t),
            Op::CondBr(_, t, e) => {
                f(t);
                f(e);
            }
            Op::Switch(_, cases, default) => {
                for (_, b) in cases {
                    f(b);
                }
                f(default);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_inverted_is_involution() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Slt,
            CmpOp::Sle,
            CmpOp::Sgt,
            CmpOp::Sge,
            CmpOp::Ult,
            CmpOp::Ule,
            CmpOp::Ugt,
            CmpOp::Uge,
        ] {
            assert_eq!(op.inverted().inverted(), op);
            assert_eq!(op.swapped().swapped(), op);
        }
    }

    #[test]
    fn terminators_report_successors() {
        let br = Op::Br(BlockId(3));
        assert!(br.is_terminator());
        assert_eq!(br.successors(), vec![BlockId(3)]);

        let cb = Op::CondBr(Value::imm1(true), BlockId(1), BlockId(2));
        assert_eq!(cb.successors(), vec![BlockId(1), BlockId(2)]);

        let sw = Op::Switch(Value::imm32(0), vec![(1, BlockId(4)), (2, BlockId(5))], BlockId(6));
        assert_eq!(sw.successors(), vec![BlockId(4), BlockId(5), BlockId(6)]);

        let ret = Op::Ret(None);
        assert!(ret.is_terminator());
        assert!(ret.successors().is_empty());
    }

    #[test]
    fn side_effects_classification() {
        assert!(Op::Store(Value::imm32(1), Value::imm32(8)).has_side_effect());
        assert!(Op::Intrin(Intr::Out, vec![Value::imm32(1)]).has_side_effect());
        assert!(!Op::Bin(BinOp::Add, Value::imm32(1), Value::imm32(2)).has_side_effect());
        // Division by a non-constant divisor may trap.
        assert!(Op::Bin(BinOp::SDiv, Value::imm32(1), Value::Arg(0)).has_side_effect());
        // Division by a known non-zero constant never traps.
        assert!(!Op::Bin(BinOp::SDiv, Value::imm32(8), Value::imm32(2)).has_side_effect());
        // Division by a literal zero traps (kept so the trap is preserved).
        assert!(Op::Bin(BinOp::SDiv, Value::imm32(8), Value::imm32(0)).has_side_effect());
    }

    #[test]
    fn operand_visitation_covers_all() {
        let op = Op::Select(Value::Arg(0), Value::imm32(1), Value::Inst(InstId(5)));
        assert_eq!(op.values().len(), 3);

        let mut op = Op::Phi(vec![(BlockId(0), Value::imm32(1)), (BlockId(1), Value::Arg(2))]);
        let mut n = 0;
        op.for_each_value_mut(|v| {
            *v = Value::imm32(0);
            n += 1;
        });
        assert_eq!(n, 2);
        assert_eq!(op.values(), vec![Value::imm32(0), Value::imm32(0)]);
    }

    #[test]
    fn successor_rewrite() {
        let mut op = Op::CondBr(Value::Arg(0), BlockId(1), BlockId(2));
        op.for_each_successor_mut(|b| *b = BlockId(b.0 + 10));
        assert_eq!(op.successors(), vec![BlockId(11), BlockId(12)]);
    }

    #[test]
    fn commutativity_table() {
        assert!(BinOp::Add.commutative());
        assert!(BinOp::Xor.commutative());
        assert!(!BinOp::Sub.commutative());
        assert!(!BinOp::Shl.commutative());
        assert!(BinOp::SDiv.can_trap());
        assert!(!BinOp::Add.can_trap());
    }
}
