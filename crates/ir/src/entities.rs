//! Typed index newtypes ("entity references") for the IR arenas.
//!
//! Everything in a [`crate::Function`] is stored in flat `Vec` arenas and
//! referenced by these copy-cheap ids, following the Cranelift/LLVM style of
//! IR layout. Ids are only meaningful relative to their owning container
//! (instruction and block ids are per-function; function, global, queue and
//! semaphore ids are per-module).

use std::fmt;

macro_rules! entity {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
            #[inline]
            pub fn new(i: usize) -> Self {
                debug_assert!(i <= u32::MAX as usize);
                Self(i as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

entity!(
    /// Reference to an instruction within a function's instruction arena.
    InstId,
    "%"
);
entity!(
    /// Reference to a basic block within a function.
    BlockId,
    "bb"
);
entity!(
    /// Reference to a function within a module.
    FuncId,
    "fn"
);
entity!(
    /// Reference to a global variable within a module.
    GlobalId,
    "g"
);
entity!(
    /// Reference to a runtime FIFO queue declared by the DSWP pass.
    QueueId,
    "q"
);
entity!(
    /// Reference to a runtime counting semaphore declared by the DSWP pass.
    SemId,
    "sem"
);

/// A dense secondary map from an entity id to a value, with a default.
///
/// Useful for analyses that annotate every instruction or block.
#[derive(Clone, Debug)]
pub struct EntityMap<V> {
    items: Vec<V>,
    default: V,
}

impl<V: Clone> EntityMap<V> {
    pub fn with_default(default: V) -> Self {
        Self { items: Vec::new(), default }
    }

    pub fn with_capacity(default: V, cap: usize) -> Self {
        Self { items: vec![default.clone(); cap], default }
    }

    pub fn get(&self, idx: usize) -> &V {
        self.items.get(idx).unwrap_or(&self.default)
    }

    pub fn set(&mut self, idx: usize, v: V) {
        if idx >= self.items.len() {
            self.items.resize(idx + 1, self.default.clone());
        }
        self.items[idx] = v;
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_display_uses_prefix() {
        assert_eq!(InstId(3).to_string(), "%3");
        assert_eq!(BlockId(0).to_string(), "bb0");
        assert_eq!(FuncId(7).to_string(), "fn7");
        assert_eq!(GlobalId(1).to_string(), "g1");
        assert_eq!(QueueId(12).to_string(), "q12");
        assert_eq!(SemId(2).to_string(), "sem2");
    }

    #[test]
    fn entity_roundtrip_index() {
        let b = BlockId::new(42);
        assert_eq!(b.index(), 42);
        assert_eq!(b, BlockId(42));
    }

    #[test]
    fn entity_map_defaults_and_grows() {
        let mut m: EntityMap<u32> = EntityMap::with_default(9);
        assert_eq!(*m.get(100), 9);
        m.set(5, 1);
        assert_eq!(*m.get(5), 1);
        assert_eq!(*m.get(4), 9);
        assert_eq!(m.len(), 6);
    }

    #[test]
    fn entity_ordering_follows_index() {
        assert!(InstId(1) < InstId(2));
        let mut v = vec![BlockId(3), BlockId(1), BlockId(2)];
        v.sort();
        assert_eq!(v, vec![BlockId(1), BlockId(2), BlockId(3)]);
    }
}
