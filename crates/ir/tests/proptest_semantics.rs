//! Property tests of the evaluation primitives the whole project rests on:
//! `eval_bin`/`eval_cmp`/`eval_cast` against native Rust integer semantics,
//! type masking laws, and printer/parser round-trips.

use proptest::prelude::*;
use twill_ir::interp::{eval_bin, eval_cast, eval_cmp};
use twill_ir::{BinOp, CastOp, CmpOp, Ty};

fn any_ty() -> impl Strategy<Value = Ty> {
    prop_oneof![Just(Ty::I1), Just(Ty::I8), Just(Ty::I16), Just(Ty::I32)]
}

proptest! {
    #[test]
    fn mask_is_idempotent(v in any::<i64>(), ty in any_ty()) {
        prop_assert_eq!(ty.mask(ty.mask(v)), ty.mask(v));
    }

    #[test]
    fn sext_preserves_masked_value(v in any::<i64>(), ty in any_ty()) {
        let m = ty.mask(v);
        prop_assert_eq!(ty.mask(ty.sext(m)), m);
    }

    #[test]
    fn i32_add_matches_wrapping(a in any::<i32>(), b in any::<i32>()) {
        let r = eval_bin(BinOp::Add, Ty::I32, a as i64 & 0xffff_ffff, b as i64 & 0xffff_ffff).unwrap();
        prop_assert_eq!(Ty::I32.sext(r) as i32, a.wrapping_add(b));
    }

    #[test]
    fn i32_mul_matches_wrapping(a in any::<i32>(), b in any::<i32>()) {
        let r = eval_bin(BinOp::Mul, Ty::I32, a as i64 & 0xffff_ffff, b as i64 & 0xffff_ffff).unwrap();
        prop_assert_eq!(Ty::I32.sext(r) as i32, a.wrapping_mul(b));
    }

    #[test]
    fn sdiv_matches_rust(a in any::<i32>(), b in any::<i32>()) {
        prop_assume!(b != 0);
        let r = eval_bin(BinOp::SDiv, Ty::I32, a as i64 & 0xffff_ffff, b as i64 & 0xffff_ffff).unwrap();
        prop_assert_eq!(Ty::I32.sext(r) as i32, a.wrapping_div(b));
    }

    #[test]
    fn udiv_matches_rust(a in any::<u32>(), b in 1u32..) {
        let r = eval_bin(BinOp::UDiv, Ty::I32, a as i64, b as i64).unwrap();
        prop_assert_eq!(r as u32, a / b);
    }

    #[test]
    fn srem_sign_follows_dividend(a in any::<i32>(), b in any::<i32>()) {
        prop_assume!(b != 0);
        let r = eval_bin(BinOp::SRem, Ty::I32, a as i64 & 0xffff_ffff, b as i64 & 0xffff_ffff).unwrap();
        prop_assert_eq!(Ty::I32.sext(r) as i32, a.wrapping_rem(b));
    }

    #[test]
    fn div_by_zero_always_traps(a in any::<i64>(), ty in any_ty()) {
        for op in [BinOp::SDiv, BinOp::UDiv, BinOp::SRem, BinOp::URem] {
            prop_assert!(eval_bin(op, ty, a, 0).is_err());
        }
    }

    #[test]
    fn shifts_match_rust_mod_width(a in any::<i32>(), s in 0u32..64) {
        let sh = s % 32;
        let shl = eval_bin(BinOp::Shl, Ty::I32, a as i64 & 0xffff_ffff, s as i64).unwrap();
        prop_assert_eq!(Ty::I32.sext(shl) as i32, a.wrapping_shl(sh));
        let ashr = eval_bin(BinOp::AShr, Ty::I32, a as i64 & 0xffff_ffff, s as i64).unwrap();
        prop_assert_eq!(Ty::I32.sext(ashr) as i32, a.wrapping_shr(sh));
        let lshr = eval_bin(BinOp::LShr, Ty::I32, a as i64 & 0xffff_ffff, s as i64).unwrap();
        prop_assert_eq!(lshr as u32, (a as u32).wrapping_shr(sh));
    }

    #[test]
    fn narrow_add_wraps(a in any::<u8>(), b in any::<u8>()) {
        let r = eval_bin(BinOp::Add, Ty::I8, a as i64, b as i64).unwrap();
        prop_assert_eq!(r as u8, a.wrapping_add(b));
    }

    #[test]
    fn cmp_predicates_consistent(a in any::<i32>(), b in any::<i32>()) {
        let ua = a as i64 & 0xffff_ffff;
        let ub = b as i64 & 0xffff_ffff;
        prop_assert_eq!(eval_cmp(CmpOp::Slt, Ty::I32, ua, ub) == 1, a < b);
        prop_assert_eq!(eval_cmp(CmpOp::Ult, Ty::I32, ua, ub) == 1, (a as u32) < (b as u32));
        prop_assert_eq!(eval_cmp(CmpOp::Eq, Ty::I32, ua, ub) == 1, a == b);
        // Inversion law.
        for op in [CmpOp::Slt, CmpOp::Sle, CmpOp::Ugt, CmpOp::Ne] {
            let x = eval_cmp(op, Ty::I32, ua, ub);
            let y = eval_cmp(op.inverted(), Ty::I32, ua, ub);
            prop_assert_eq!(x ^ y, 1);
        }
        // Swap law.
        for op in [CmpOp::Slt, CmpOp::Uge, CmpOp::Sgt] {
            prop_assert_eq!(
                eval_cmp(op, Ty::I32, ua, ub),
                eval_cmp(op.swapped(), Ty::I32, ub, ua)
            );
        }
    }

    #[test]
    fn casts_match_rust(v in any::<i32>()) {
        let raw = v as i64 & 0xffff_ffff;
        prop_assert_eq!(eval_cast(CastOp::Trunc, Ty::I32, Ty::I8, raw) as u8, v as u8);
        prop_assert_eq!(
            Ty::I32.sext(eval_cast(CastOp::Sext, Ty::I8, Ty::I32, raw & 0xff)) as i32,
            (v as i8) as i32
        );
        prop_assert_eq!(
            eval_cast(CastOp::Zext, Ty::I8, Ty::I32, raw & 0xff) as u32,
            (v as u8) as u32
        );
    }

    #[test]
    fn commutative_ops_commute(a in any::<i64>(), b in any::<i64>(), ty in any_ty()) {
        for op in [BinOp::Add, BinOp::Mul, BinOp::And, BinOp::Or, BinOp::Xor] {
            prop_assert_eq!(
                eval_bin(op, ty, a, b).unwrap(),
                eval_bin(op, ty, b, a).unwrap()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Printer/parser round-trip on generated straight-line functions.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn printer_parser_roundtrip(ops in proptest::collection::vec((0usize..13, any::<i8>()), 1..30)) {
        use twill_ir::{FuncBuilder, Value};
        let mut b = FuncBuilder::new("f", vec![Ty::I32, Ty::I32], Ty::I32);
        let entry = b.create_block("entry");
        b.func.entry = entry;
        b.switch_to(entry);
        let mut last = Value::Arg(0);
        for (code, imm) in ops {
            let op = BinOp::ALL[code];
            // Avoid trapping division on zero immediates.
            let rhs = if op.can_trap() {
                Value::imm32((imm as i64).unsigned_abs().max(1) as i64)
            } else {
                Value::imm32(imm as i64)
            };
            last = b.bin(op, last, rhs);
        }
        b.ret(Some(last));
        let mut m = twill_ir::Module::new("t");
        m.add_func(b.finish());
        let text1 = twill_ir::printer::print_module(&m);
        let m2 = twill_ir::parser::parse_module(&text1).unwrap();
        let text2 = twill_ir::printer::print_module(&m2);
        prop_assert_eq!(text1, text2);
        twill_ir::verifier::assert_valid(&m2);
    }
}
