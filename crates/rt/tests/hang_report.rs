//! End-to-end golden tests for the watchdog's hang diagnosis: a crafted
//! two-thread program whose queues form a circular wait must produce a
//! [`HangReport`] that names the blocked agents, walks the wait-for cycle,
//! and points at the C source lines — and a lost-message variant must be
//! reported as a dead-ended chain into the finished producer.

use twill_dswp::{DswpResult, ThreadSpec};
use twill_rt::{simulate_hybrid, HangReport, SimConfig, SimError, WaitState};

/// `@master` (software) and `@worker` (hardware) each dequeue first from
/// the queue the *other* one fills: a textbook circular wait. The `!N`
/// markers are 1-based C source lines.
const CYCLIC_IR: &str = r#"
module "cyclic"
queue q0 i32 x 4
queue q1 i32 x 4

func @master() {
bb0:
  %0 = dequeue i32 q1 !3
  enqueue q0, 1:i32 !4
  ret
}

func @worker() {
bb0:
  %0 = dequeue i32 q0 !8
  enqueue q1, 2:i32 !9
  ret
}
"#;

/// `@master` sends one message and exits; `@worker` expects two. The
/// second dequeue waits forever on a queue nobody will ever fill again.
const LOST_IR: &str = r#"
module "lost"
queue q0 i32 x 4

func @master() {
bb0:
  enqueue q0, 7:i32 !2
  ret
}

func @worker() {
bb0:
  %0 = dequeue i32 q0 !6
  %1 = dequeue i32 q0 !7
  ret
}
"#;

/// Build the two-thread hybrid by hand (partition 0 on the CPU, partition
/// 1 as a hardware thread), bypassing DSWP extraction.
fn two_thread(ir: &str) -> DswpResult {
    let module = twill_ir::parser::parse_module(ir).expect("test IR parses");
    let master = module.find_func("master").expect("@master");
    let worker = module.find_func("worker").expect("@worker");
    DswpResult {
        module,
        threads: vec![
            ThreadSpec { entry: master, partition: 0, is_hw: false },
            ThreadSpec { entry: worker, partition: 1, is_hw: true },
        ],
        stats: Default::default(),
    }
}

fn expect_hang(d: &DswpResult) -> HangReport {
    let cfg = SimConfig { watchdog_window: 5_000, ..Default::default() };
    match simulate_hybrid(d, vec![], &cfg) {
        Err(SimError::Deadlock { report, partial }) => {
            assert_eq!(partial.cycles, report.cycle, "partial report must cover the hung run");
            report
        }
        Ok(_) => panic!("crafted deadlock completed"),
        Err(e) => panic!("expected a deadlock, got {e}"),
    }
}

#[test]
fn cyclic_queue_wait_yields_golden_hang_report() {
    let report = expect_hang(&two_thread(CYCLIC_IR));

    // The watchdog fired after the no-progress window.
    assert_eq!(report.window, 5_000);
    assert!(report.cycle > 0);

    // Both agents are named, blocked on the right queues.
    assert_eq!(report.agents.len(), 2);
    let cpu = &report.agents[0];
    let hw1 = &report.agents[1];
    assert_eq!(cpu.name, "cpu");
    assert_eq!(cpu.state, WaitState::QueueEmpty { queue: 1 });
    assert_eq!(cpu.site, Some(("master".to_string(), 3)));
    assert_eq!(hw1.name, "hw1");
    assert_eq!(hw1.state, WaitState::QueueEmpty { queue: 0 });
    assert_eq!(hw1.site, Some(("worker".to_string(), 8)));

    // The wait-for walk closes into the circular wait.
    assert!(report.wait_cycle, "chain = {:?}", report.chain);
    assert_eq!(report.chain, ["cpu", "q1", "hw1", "q0", "cpu"]);

    // Implicated C source lines: the two blocked dequeues.
    assert_eq!(report.source_lines(), [3, 8]);

    // Golden rendering, line for line.
    let text = report.render();
    assert!(text.contains("wait-for cycle: cpu -> q1 -> hw1 -> q0 -> cpu"), "{text}");
    assert!(text.contains("  cpu: blocked: dequeue on empty q1 at C line 3 (@master)"), "{text}");
    assert!(text.contains("  hw1: blocked: dequeue on empty q0 at C line 8 (@worker)"), "{text}");
}

#[test]
fn lost_message_dead_ends_in_the_finished_producer() {
    let report = expect_hang(&two_thread(LOST_IR));

    // The producer is done; the consumer waits on its second message.
    assert_eq!(report.agents[0].state, WaitState::Finished);
    assert_eq!(report.agents[1].state, WaitState::QueueEmpty { queue: 0 });
    assert_eq!(report.agents[1].site, Some(("worker".to_string(), 7)));

    // The walk dead-ends in the finished agent instead of cycling — the
    // lost-message signature.
    assert!(!report.wait_cycle);
    assert_eq!(report.chain, ["hw1", "q0", "cpu"]);

    let text = report.render();
    assert!(text.contains("wait-for chain: hw1 -> q0 -> cpu"), "{text}");
    assert!(text.contains("cpu: finished"), "{text}");
}

/// The diagnosis is a pure function of the run: byte-identical twice.
#[test]
fn hang_report_is_deterministic() {
    let d = two_thread(CYCLIC_IR);
    let a = expect_hang(&d);
    let b = expect_hang(&d);
    assert_eq!(a.render(), b.render());
    assert_eq!(a.cycle, b.cycle);
    assert_eq!(a.chain, b.chain);
}
