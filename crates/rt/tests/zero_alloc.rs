//! Zero-allocation gate for the simulator hot path (DESIGN.md §8): with
//! tracing disabled, the per-cycle work — bus arbitration, queue/semaphore
//! ops, memory ops, and every always-on metrics counter — must not touch
//! the heap. A counting `#[global_allocator]` measures the steady-state
//! loop; this file holds exactly one test so no concurrent test can
//! pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use twill_ir::{Module, QueueDecl, SemDecl, Ty};
use twill_rt::shared::{OpKind, PendState};
use twill_rt::Shared;

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: Counting = Counting;

/// Run one op to completion, bounded so a deadlock fails loudly.
fn run_to_done(s: &mut Shared, kind: OpKind) -> i64 {
    let mut p = s.start_op(kind, 2);
    for _ in 0..64 {
        s.begin_cycle();
        p = s.poll(p);
        if let PendState::Done(v) = p.state {
            return v;
        }
    }
    panic!("op did not complete");
}

#[test]
fn steady_state_sim_loop_does_not_allocate() {
    // Setup (allocates): a module with one queue and one semaphore.
    let mut m = Module::new("zero-alloc");
    m.add_queue(QueueDecl { width: Ty::I32, depth: 4 });
    m.add_sem(SemDecl { max: 8, initial: 0 });
    let mut s = Shared::new(&m, 1 << 16, vec![], 0, None, &[], 1);
    s.set_agent(0);

    // Warm up one round so lazy one-time costs land before measuring.
    run_to_done(&mut s, OpKind::Enqueue(twill_ir::QueueId(0), 1));
    run_to_done(&mut s, OpKind::Dequeue(twill_ir::QueueId(0)));

    let before = ALLOCS.load(Ordering::Relaxed);
    for round in 0..1_000i64 {
        // Fill the queue to its depth, then drain it (exercises the full
        // push/pop/occupancy-histogram/peak accounting path).
        for v in 0..4 {
            run_to_done(&mut s, OpKind::Enqueue(twill_ir::QueueId(0), round * 4 + v));
        }
        for _ in 0..4 {
            run_to_done(&mut s, OpKind::Dequeue(twill_ir::QueueId(0)));
        }
        // Semaphore raise/lower pair.
        run_to_done(&mut s, OpKind::SemRaise(twill_ir::SemId(0), 2));
        run_to_done(&mut s, OpKind::SemLower(twill_ir::SemId(0), 2));
        // Memory-bus store + load.
        run_to_done(&mut s, OpKind::MemStore(64, Ty::I32, round));
        run_to_done(&mut s, OpKind::MemLoad(64, Ty::I32));
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "simulator hot path allocated with tracing disabled (counters must be pre-allocated)"
    );

    // The counters did advance — we measured the real path, not a no-op.
    assert!(s.stats.queue_stats[0].pushes >= 4_000);
    assert!(s.stats.queue_stats[0].pops >= 4_000);
    assert_eq!(s.stats.queue_peak[0], 4);
}
