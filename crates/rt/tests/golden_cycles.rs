//! Golden cycle-count regression for the observability layer: with tracing
//! disabled (the default `SimConfig`), adding the metrics counters and
//! event hooks must not change simulated timing by even one cycle. These
//! numbers were captured from the simulator before the tracing layer
//! landed; any drift means an instrumentation hook leaked into the cycle
//! math.

use twill_dswp::{run_dswp, DswpOptions};
use twill_rt::{simulate_hybrid, simulate_pure_hw, simulate_pure_sw, SimConfig};

/// (benchmark, sw cycles, pure-hw cycles, hybrid cycles) at scale 1.
const GOLDEN: &[(&str, u64, u64, u64)] = &[
    ("mips", 123_324, 24_206, 24_833),
    ("adpcm", 31_370, 2_419, 2_433),
    ("aes", 24_541, 2_181, 1_736),
    ("blowfish", 370_249, 74_319, 102_567),
    ("gsm", 19_221, 4_351, 4_365),
    ("jpeg", 77_393, 18_006, 25_325),
    ("motion", 8_719_931, 1_636_795, 1_927_860),
    ("sha", 22_341, 3_361, 3_375),
];

#[test]
fn cycle_counts_match_pre_instrumentation_golden() {
    let cfg = SimConfig::default();
    assert_eq!(cfg.trace_events, 0, "golden run must have tracing disabled");
    for &(name, sw_gold, hw_gold, hy_gold) in GOLDEN {
        let b = chstone::by_name(name).unwrap();
        let m = chstone::compile_and_prepare(&b);
        let input = chstone::input_for(b.name, 1);

        let sw = simulate_pure_sw(&m, input.clone(), &cfg).unwrap();
        assert_eq!(sw.cycles, sw_gold, "{name} pure-SW cycles drifted");

        let hw = simulate_pure_hw(&m, input.clone(), &cfg).unwrap();
        assert_eq!(hw.cycles, hw_gold, "{name} pure-HW cycles drifted");

        let d = run_dswp(&m, &DswpOptions { num_partitions: b.partitions, ..Default::default() });
        let hy = simulate_hybrid(&d, input, &cfg).unwrap();
        assert_eq!(hy.cycles, hy_gold, "{name} hybrid cycles drifted");
    }
}

/// Turning the recorder on must observe, not perturb: same cycle counts
/// with a large ring as with tracing off.
#[cfg(feature = "obs")]
#[test]
fn tracing_is_timing_neutral() {
    let off = SimConfig::default();
    let on = SimConfig { trace_events: 1 << 20, ..Default::default() };
    for name in ["adpcm", "aes", "sha"] {
        let b = chstone::by_name(name).unwrap();
        let m = chstone::compile_and_prepare(&b);
        let input = chstone::input_for(b.name, 1);
        let d = run_dswp(&m, &DswpOptions { num_partitions: b.partitions, ..Default::default() });
        let quiet = simulate_hybrid(&d, input.clone(), &off).unwrap();
        let traced = simulate_hybrid(&d, input, &on).unwrap();
        assert_eq!(quiet.cycles, traced.cycles, "{name}: tracing changed timing");
        assert_eq!(quiet.output, traced.output, "{name}: tracing changed output");
        assert!(!traced.events.is_empty(), "{name}: expected events from a traced run");
    }
}
