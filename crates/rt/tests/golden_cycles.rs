//! Golden cycle-count regression for the observability layer: with tracing
//! disabled (the default `SimConfig`), adding the metrics counters and
//! event hooks must not change simulated timing by even one cycle. The
//! expected numbers live in the committed `BENCH_baseline.json` at the
//! repo root (recorded with `twill-bench baseline`); any drift means
//! either an instrumentation hook leaked into the cycle math or a real
//! behaviour change that needs a deliberately re-recorded baseline.

use twill_dswp::{run_dswp, DswpOptions};
use twill_rt::{simulate_hybrid, simulate_pure_hw, simulate_pure_sw, SimConfig};

/// Loads the committed baseline and returns
/// (benchmark, sw cycles, pure-hw cycles, hybrid cycles) at scale 1.
fn golden_from_baseline() -> Vec<(String, u64, u64, u64)> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_baseline.json");
    let base = twill_obs::Baseline::load(&path).expect("load committed BENCH_baseline.json");
    chstone::all()
        .iter()
        .map(|b| {
            let cycles = |mode: &str| {
                let e = base
                    .find(b.name, mode)
                    .unwrap_or_else(|| panic!("{} {mode} missing from baseline", b.name));
                assert_eq!(e.scale, 1, "{} {mode}: golden test expects scale-1 entries", b.name);
                e.cycles()
            };
            (b.name.to_string(), cycles("sw"), cycles("hw"), cycles("hybrid"))
        })
        .collect()
}

#[test]
fn cycle_counts_match_committed_baseline() {
    let cfg = SimConfig::default();
    assert_eq!(cfg.trace_events, 0, "golden run must have tracing disabled");
    for (name, sw_gold, hw_gold, hy_gold) in golden_from_baseline() {
        let name = name.as_str();
        let b = chstone::by_name(name).unwrap();
        let m = chstone::compile_and_prepare(&b);
        let input = chstone::input_for(b.name, 1);

        let sw = simulate_pure_sw(&m, input.clone(), &cfg).unwrap();
        assert_eq!(sw.cycles, sw_gold, "{name} pure-SW cycles drifted");

        let hw = simulate_pure_hw(&m, input.clone(), &cfg).unwrap();
        assert_eq!(hw.cycles, hw_gold, "{name} pure-HW cycles drifted");

        let d = run_dswp(&m, &DswpOptions { num_partitions: b.partitions, ..Default::default() });
        let hy = simulate_hybrid(&d, input, &cfg).unwrap();
        assert_eq!(hy.cycles, hy_gold, "{name} hybrid cycles drifted");
    }
}

/// Turning the recorder on must observe, not perturb: same cycle counts
/// with a large ring as with tracing off.
#[cfg(feature = "obs")]
#[test]
fn tracing_is_timing_neutral() {
    let off = SimConfig::default();
    let on = SimConfig { trace_events: 1 << 20, ..Default::default() };
    for name in ["adpcm", "aes", "sha"] {
        let b = chstone::by_name(name).unwrap();
        let m = chstone::compile_and_prepare(&b);
        let input = chstone::input_for(b.name, 1);
        let d = run_dswp(&m, &DswpOptions { num_partitions: b.partitions, ..Default::default() });
        let quiet = simulate_hybrid(&d, input.clone(), &off).unwrap();
        let traced = simulate_hybrid(&d, input, &on).unwrap();
        assert_eq!(quiet.cycles, traced.cycles, "{name}: tracing changed timing");
        assert_eq!(quiet.output, traced.output, "{name}: tracing changed output");
        assert!(!traced.events.is_empty(), "{name}: expected events from a traced run");
    }
}
