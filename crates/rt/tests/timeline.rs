//! Sampled-timeline regression tests: a golden CHStone snapshot pinning
//! the exact per-interval JSON in both loop modes, plus a proptest that
//! the per-interval deltas always sum — exactly, class by class and
//! queue by queue — to the end-of-run totals.
//!
//! Regenerate the golden file after an intentional timing or schema
//! change with:
//!
//! ```sh
//! TWILL_UPDATE_GOLDEN=1 cargo test -p twill-rt --test timeline
//! ```
#![cfg(feature = "obs")]

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;
use twill_dswp::{run_dswp, DswpOptions, DswpResult};
use twill_rt::obs::json;
use twill_rt::{simulate_hybrid, SimConfig};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/adpcm_timeline.json")
}

/// The committed adpcm timeline must reproduce byte-for-byte — from the
/// fast-forward loop *and* the naive loop. Byte equality of the JSON is
/// the contract CI artifacts and `--timeline-out` files rely on.
#[test]
fn adpcm_timeline_matches_golden_in_both_loop_modes() {
    let b = chstone::by_name("adpcm").unwrap();
    let m = chstone::compile_and_prepare(&b);
    let d = run_dswp(&m, &DswpOptions { num_partitions: b.partitions, ..Default::default() });
    let input = chstone::input_for(b.name, 1);

    // Both loop modes are pinned explicitly so the test means the same
    // thing under `TWILL_NO_FAST_FORWARD=1` in CI.
    let cfg = SimConfig { sample_interval: Some(256), fast_forward: true, ..Default::default() };
    let ff = simulate_hybrid(&d, input.clone(), &cfg).unwrap();
    let ff_json = ff.timeline.as_ref().expect("sampled run carries a timeline").to_json();

    let path = golden_path();
    if std::env::var_os("TWILL_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &ff_json).unwrap();
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing; run with TWILL_UPDATE_GOLDEN=1 to create it");
    assert_eq!(ff_json, golden, "adpcm timeline drifted from tests/data/adpcm_timeline.json");

    let naive = SimConfig { fast_forward: false, ..cfg };
    let nv = simulate_hybrid(&d, input, &naive).unwrap();
    let nv_json = nv.timeline.as_ref().expect("naive run carries a timeline").to_json();
    assert_eq!(nv_json, golden, "naive-loop timeline diverged from the golden snapshot");

    // The committed bytes must parse back to the very timeline that
    // produced them — the round-trip `--compare` depends on.
    let doc = json::parse(&golden).expect("golden timeline is valid JSON");
    let parsed = twill_rt::obs::Timeline::from_json(&doc).expect("golden timeline parses");
    assert_eq!(&parsed, ff.timeline.as_ref().unwrap(), "round-trip lost information");
}

/// Uneven two-stage pipeline: enough queue stalls that intervals carry
/// every cycle class, small enough that proptest cases stay fast.
const PROGRAM: &str = r#"
int main() {
  int acc = 0;
  for (int i = 0; i < 40; i++) {
    int x = (i * 7 + 3) ^ (i << 2);
    for (int j = 0; j < 5; j++) x = (x * 5 + j) % 199;
    acc += x;
  }
  out(acc);
  return 0;
}
"#;

fn testbed() -> &'static DswpResult {
    static TESTBED: OnceLock<DswpResult> = OnceLock::new();
    TESTBED.get_or_init(|| {
        let mut m = twill_frontend::compile("t", PROGRAM).unwrap();
        twill_passes::run_standard_pipeline(&mut m, &Default::default());
        run_dswp(
            &m,
            &DswpOptions {
                num_partitions: 2,
                split_points: Some(vec![0.5, 0.5]),
                ..Default::default()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any sample interval, queue shape, and loop mode: the intervals
    /// tile `[1, cycles]` with no gaps, and summing the per-interval
    /// deltas reproduces the end-of-run totals exactly — all seven cycle
    /// classes per thread, all four counters per queue.
    #[test]
    fn interval_deltas_sum_exactly_to_run_totals(
        interval in prop_oneof![Just(1u64), Just(3), Just(64), Just(257), Just(100_000)],
        queue_latency in prop_oneof![Just(2u32), Just(64)],
        queue_depth in prop_oneof![Just(None), Just(Some(2u32))],
        fast_forward in any::<bool>(),
    ) {
        let cfg = SimConfig {
            sample_interval: Some(interval),
            queue_latency,
            queue_depth,
            fast_forward,
            ..Default::default()
        };
        let rep = simulate_hybrid(testbed(), vec![], &cfg).unwrap();
        let t = rep.timeline.as_ref().expect("sampled run carries a timeline");

        prop_assert_eq!(t.sample_interval, interval);
        prop_assert_eq!(t.total_cycles(), rep.cycles);
        let mut expect_start = 1;
        for iv in &t.intervals {
            prop_assert_eq!(iv.start, expect_start);
            prop_assert!(iv.end >= iv.start);
            prop_assert!(iv.end - iv.start < interval, "interval wider than the sample window");
            expect_start = iv.end + 1;
        }

        let thread_totals = t.thread_totals();
        prop_assert_eq!(thread_totals.len(), rep.stats.agent_cycles.len());
        for (tot, cc) in thread_totals.iter().zip(&rep.stats.agent_cycles) {
            prop_assert_eq!(tot.total(), rep.cycles, "classes must tile every interval");
            let expect = [
                cc.busy, cc.queue_full, cc.queue_empty, cc.sem,
                cc.mem_bus, cc.module_bus, cc.idle,
            ];
            prop_assert_eq!(tot.as_array(), expect);
        }

        let queue_totals = t.queue_totals();
        prop_assert_eq!(queue_totals.len(), rep.stats.queue_stats.len());
        for (tot, q) in queue_totals.iter().zip(&rep.stats.queue_stats) {
            prop_assert_eq!(tot.pushes, q.pushes);
            prop_assert_eq!(tot.pops, q.pops);
            prop_assert_eq!(tot.full_stalls, q.full_stalls);
            prop_assert_eq!(tot.empty_stalls, q.empty_stalls);
        }
    }
}
