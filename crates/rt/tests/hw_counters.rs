//! Counter↔metric equivalence gate (DESIGN.md §14): for every CHStone
//! benchmark, the hardware counter dump read back word-by-word through its
//! register map must reproduce the simulator's per-thread `ClassCycles`
//! and per-queue `QueueStat` numbers *exactly* — in both the fast-forward
//! and the naive tick loop. The dump is a pure function of the final
//! counter state, so it must also be byte-identical across loop modes.
//!
//! CI runs this suite twice: once normally and once under
//! `TWILL_NO_FAST_FORWARD=1`, exercising the env-default path on top of
//! the explicit per-mode configs below.

#![cfg(feature = "obs")]

use twill_dswp::{run_dswp, DswpOptions};
use twill_obs::json;
use twill_obs::regmap::{hardware_view, CounterDump, RegMap};
use twill_rt::{simulate_hybrid, CounterBank, SimConfig, SimReport};

fn hybrid_report(b: &chstone::Benchmark, fast_forward: bool) -> SimReport {
    let m = chstone::compile_and_prepare(b);
    let d = run_dswp(&m, &DswpOptions { num_partitions: b.partitions, ..Default::default() });
    let cfg = SimConfig { fast_forward, ..Default::default() };
    simulate_hybrid(&d, chstone::input_for(b.name, 1), &cfg).unwrap()
}

#[test]
fn counter_dump_reproduces_simulator_metrics_exactly() {
    for b in chstone::all() {
        for fast_forward in [true, false] {
            let rep = hybrid_report(&b, fast_forward);
            let bank = CounterBank::from_report(b.name, &rep);
            let dump = bank.dump();
            let decoded = bank
                .regmap()
                .decode(&dump)
                .unwrap_or_else(|e| panic!("{} ff={fast_forward}: {e}", b.name));
            assert_eq!(
                decoded,
                hardware_view(&rep.metrics()),
                "{} ff={fast_forward}: hardware readback diverged from simulator metrics",
                b.name
            );
        }
    }
}

#[test]
fn counter_dump_is_loop_mode_independent() {
    for name in ["blowfish", "mips", "sha"] {
        let b = chstone::by_name(name).unwrap();
        let fast = CounterBank::from_report(name, &hybrid_report(&b, true));
        let naive = CounterBank::from_report(name, &hybrid_report(&b, false));
        assert_eq!(fast, naive, "{name}: counter state depends on loop mode");
        assert_eq!(
            fast.dump().to_json(),
            naive.dump().to_json(),
            "{name}: dump artifact not byte-identical across loop modes"
        );
    }
}

#[test]
fn artifacts_round_trip_through_json() {
    let b = chstone::by_name("blowfish").unwrap();
    let rep = hybrid_report(&b, true);
    let bank = CounterBank::from_report(b.name, &rep);

    // Register map artifact → parse → identical map.
    let map_doc = json::parse(&bank.regmap().to_json()).expect("regmap artifact parses");
    let map = RegMap::from_json(&map_doc).unwrap();
    assert_eq!(&map, bank.regmap());

    // Dump artifact → parse → decode against the *parsed* map: the full
    // flashed-host round trip (both sides reconstructed from JSON).
    let dump_doc = json::parse(&bank.dump().to_json()).expect("dump artifact parses");
    let dump = CounterDump::from_json(&dump_doc).unwrap();
    assert_eq!(map.decode(&dump).unwrap(), hardware_view(&rep.metrics()));
}

#[test]
fn regmap_names_match_simulator_tracks() {
    // The map's thread and queue names must be exactly the simulator's
    // report tracks — otherwise decoded metrics would not line up with
    // any obs exporter keyed by name.
    let b = chstone::by_name("mips").unwrap();
    let rep = hybrid_report(&b, true);
    let bank = CounterBank::from_report(b.name, &rep);
    assert_eq!(bank.regmap().threads, rep.agent_names);
    let queue_names: Vec<String> = bank.regmap().queues.iter().map(|q| q.name.clone()).collect();
    let metric_names: Vec<String> = rep.metrics().queues.iter().map(|q| q.name.clone()).collect();
    assert_eq!(queue_names, metric_names);
}
