//! Full-system simulation of every CHStone benchmark in all three
//! configurations (pure SW / pure HW / Twill hybrid): outputs must match
//! the reference, and the performance ordering of thesis Fig 6.2 must hold
//! in aggregate (HW ≫ SW, hybrid ≥ HW on average).

use twill_dswp::{run_dswp, DswpOptions};
use twill_rt::{simulate_hybrid, simulate_pure_hw, simulate_pure_sw, SimConfig};

#[test]
fn all_benchmarks_all_configs_correct() {
    let cfg = SimConfig::default();
    let mut sw_total = 0.0;
    let mut hw_total = 0.0;
    let mut twill_total = 0.0;
    let mut n = 0.0;
    for b in chstone::all() {
        let m = chstone::compile_and_prepare(&b);
        let input = chstone::input_for(b.name, b.default_scale);
        let (expect, _, _) = twill_ir::interp::run_main(&m, input.clone(), 2_000_000_000).unwrap();

        let sw = simulate_pure_sw(&m, input.clone(), &cfg)
            .unwrap_or_else(|e| panic!("{} sw: {e}", b.name));
        assert_eq!(sw.output, expect, "{} pure-SW output", b.name);

        let hw = simulate_pure_hw(&m, input.clone(), &cfg)
            .unwrap_or_else(|e| panic!("{} hw: {e}", b.name));
        assert_eq!(hw.output, expect, "{} pure-HW output", b.name);

        let d = run_dswp(&m, &DswpOptions { num_partitions: b.partitions, ..Default::default() });
        let tw =
            simulate_hybrid(&d, input, &cfg).unwrap_or_else(|e| panic!("{} hybrid: {e}", b.name));
        assert_eq!(tw.output, expect, "{} hybrid output", b.name);

        let s_sw = sw.cycles as f64;
        println!(
            "{:10} SW {:>12} HW {:>12} ({:>5.1}x) Twill {:>12} ({:>5.1}x, {:.2}x vs HW) cpu_util={:.2}",
            b.name,
            sw.cycles,
            hw.cycles,
            s_sw / hw.cycles as f64,
            tw.cycles,
            s_sw / tw.cycles as f64,
            hw.cycles as f64 / tw.cycles as f64,
            tw.cpu_busy_fraction,
        );
        sw_total += (s_sw / hw.cycles as f64).ln();
        hw_total += 1.0;
        twill_total += (s_sw / tw.cycles as f64).ln();
        n += 1.0;
        let _ = hw_total;
    }
    let hw_geo = (sw_total / n).exp();
    let twill_geo = (twill_total / n).exp();
    println!("geomean speedup vs SW: pure-HW {hw_geo:.2}x, Twill {twill_geo:.2}x");
    // Fig 6.2 shape: both dramatically faster than SW.
    assert!(hw_geo > 3.0, "pure HW should be far faster than SW: {hw_geo:.2}");
    assert!(twill_geo > 3.0, "Twill should be far faster than SW: {twill_geo:.2}");
}
