//! Fast-forward ⇔ naive loop equivalence.
//!
//! The event-driven fast-forward core (DESIGN.md §12) must be observably
//! identical to ticking every agent on every cycle: same cycle counts,
//! same stats and per-instruction profile, same fault log from the same
//! splitmix64 stream, same trace events, same watchdog/timeout outcomes.
//! A proptest drives both loops over random configurations, fault plans,
//! and watchdog windows and compares entire `SimReport`s; unit tests pin
//! the sharp edges (a pinned fault inside a skipped span, determinism of
//! the fast path itself).

use proptest::prelude::*;
use std::sync::OnceLock;
use twill_dswp::{run_dswp, DswpOptions, DswpResult};
use twill_rt::{
    simulate_hybrid, simulate_pure_hw, simulate_pure_sw, FaultPlan, FaultSite, FaultSpec,
    PinnedFault, SimConfig, SimError, SimReport,
};

fn prepare(src: &str) -> twill_ir::Module {
    let mut m = twill_frontend::compile("t", src).unwrap();
    twill_passes::run_standard_pipeline(&mut m, &Default::default());
    m
}

/// A pipeline with uneven stage weights: the consumer-side modulus chain
/// is much heavier than the producer, so queue-full/queue-empty stalls
/// dominate — exactly the spans fast-forward leaps over.
const PROGRAM: &str = r#"
int main() {
  int acc = 0;
  for (int i = 0; i < 48; i++) {
    int x = (i * 13 + 5) ^ (i << 3);
    int y = x;
    for (int j = 0; j < 6; j++) y = (y * 3 + j) % 251;
    acc += y;
  }
  out(acc);
  return 0;
}
"#;

/// Compile once per process; proptest cases reuse the build.
fn testbed() -> &'static (twill_ir::Module, DswpResult) {
    static TESTBED: OnceLock<(twill_ir::Module, DswpResult)> = OnceLock::new();
    TESTBED.get_or_init(|| {
        let m = prepare(PROGRAM);
        let d = run_dswp(
            &m,
            &DswpOptions {
                num_partitions: 2,
                split_points: Some(vec![0.5, 0.5]),
                ..Default::default()
            },
        );
        assert!(d.stats.queues > 0, "expected queue traffic");
        (m, d)
    })
}

fn assert_reports_equal(a: &SimReport, b: &SimReport, ctx: &str) {
    assert_eq!(a.cycles, b.cycles, "{ctx}: cycles diverged");
    assert_eq!(a.output, b.output, "{ctx}: output diverged");
    assert_eq!(a.stats, b.stats, "{ctx}: stats diverged");
    assert_eq!(
        a.cpu_busy_fraction.to_bits(),
        b.cpu_busy_fraction.to_bits(),
        "{ctx}: cpu_busy_fraction diverged"
    );
    assert_eq!(a.hw_threads, b.hw_threads, "{ctx}: hw_threads diverged");
    assert_eq!(a.agent_names, b.agent_names, "{ctx}: agent_names diverged");
    assert_eq!(a.dropped_events, b.dropped_events, "{ctx}: dropped_events diverged");
    assert_eq!(a.profile, b.profile, "{ctx}: profile diverged");
    assert_eq!(a.fault_log, b.fault_log, "{ctx}: fault_log diverged");
    #[cfg(feature = "obs")]
    {
        assert_eq!(a.events, b.events, "{ctx}: trace events diverged");
        // Full sampled timelines must match — including their serialized
        // bytes, since golden files and CI artifacts are compared as text.
        assert_eq!(a.timeline, b.timeline, "{ctx}: timelines diverged");
        if let (Some(x), Some(y)) = (&a.timeline, &b.timeline) {
            assert_eq!(x.to_json(), y.to_json(), "{ctx}: timeline JSON diverged");
        }
    }
}

/// Both loops must reach the same outcome — including identical deadlock
/// diagnoses and timeout points, with identical partial reports.
fn assert_outcomes_equal(
    ff: Result<SimReport, SimError>,
    naive: Result<SimReport, SimError>,
    ctx: &str,
) {
    match (ff, naive) {
        (Ok(a), Ok(b)) => assert_reports_equal(&a, &b, ctx),
        (
            Err(SimError::Deadlock { report: ra, partial: pa }),
            Err(SimError::Deadlock { report: rb, partial: pb }),
        ) => {
            assert_eq!(ra.cycle, rb.cycle, "{ctx}: watchdog fired at different cycles");
            assert_eq!(ra.render(), rb.render(), "{ctx}: hang diagnosis diverged");
            assert_reports_equal(&pa, &pb, ctx);
        }
        (
            Err(SimError::Timeout { max_cycles: ma, partial: pa }),
            Err(SimError::Timeout { max_cycles: mb, partial: pb }),
        ) => {
            assert_eq!(ma, mb, "{ctx}: timeout bounds diverged");
            assert_reports_equal(&pa, &pb, ctx);
        }
        (x, y) => panic!("{ctx}: outcome kinds diverged:\n  fast-forward: {x:?}\n  naive: {y:?}"),
    }
}

fn run_both(cfg: &SimConfig, ctx: &str) {
    let (m, d) = testbed();
    let ff = SimConfig { fast_forward: true, ..cfg.clone() };
    let naive = SimConfig { fast_forward: false, ..cfg.clone() };
    assert_outcomes_equal(
        simulate_hybrid(d, vec![], &ff),
        simulate_hybrid(d, vec![], &naive),
        &format!("{ctx} [hybrid]"),
    );
    assert_outcomes_equal(
        simulate_pure_hw(m, vec![], &ff),
        simulate_pure_hw(m, vec![], &naive),
        &format!("{ctx} [pure-hw]"),
    );
    assert_outcomes_equal(
        simulate_pure_sw(m, vec![], &ff),
        simulate_pure_sw(m, vec![], &naive),
        &format!("{ctx} [pure-sw]"),
    );
}

fn site_strategy() -> impl Strategy<Value = FaultSite> {
    prop_oneof![
        (0u32..2, 0u32..32).prop_map(|(queue, bit)| FaultSite::QueueBitFlip { queue, bit }).boxed(),
        (0u32..2).prop_map(|queue| FaultSite::QueueDrop { queue }).boxed(),
        (0u32..2).prop_map(|queue| FaultSite::QueueDup { queue }).boxed(),
        (0u32..3, 1u32..60)
            .prop_map(|(agent, cycles)| FaultSite::HwStall { agent, cycles })
            .boxed(),
        (64u32..0x4000, 0u8..8).prop_map(|(addr, bit)| FaultSite::MemUpset { addr, bit }).boxed(),
    ]
}

fn spec_strategy() -> impl Strategy<Value = FaultSpec> {
    // Zero-heavy so plenty of cases exercise the pure skip path (Path A)
    // rather than always forcing per-cycle fault-draw replay.
    let rate = || prop_oneof![Just(0.0), Just(0.0), Just(0.0), Just(0.002), Just(0.02)];
    (
        (rate(), rate(), rate()),
        (rate(), rate()),
        1u32..50,
        proptest::collection::vec((0u64..4000, site_strategy()), 0..3),
    )
        .prop_map(|((flip, drop, dup), (stall, mem), stall_cycles, pinned)| FaultSpec {
            queue_bit_flip_rate: flip,
            queue_drop_rate: drop,
            queue_dup_rate: dup,
            hw_stall_rate: stall,
            hw_stall_cycles: stall_cycles,
            mem_upset_rate: mem,
            pinned: pinned.into_iter().map(|(cycle, site)| PinnedFault { cycle, site }).collect(),
        })
}

fn config_strategy() -> impl Strategy<Value = SimConfig> {
    let fault =
        prop_oneof![Just(None).boxed(), (any::<u64>(), spec_strategy()).prop_map(Some).boxed(),];
    (
        (
            prop_oneof![Just(2u32), Just(16), Just(128)],
            prop_oneof![Just(None), Just(Some(2u32)), Just(Some(8))],
        ),
        (
            prop_oneof![Just(48u64), Just(2_000), Just(200_000)],
            prop_oneof![Just(3_000u64), Just(60_000)],
        ),
        (
            (any::<bool>(), prop_oneof![Just(0usize), Just(512)]),
            prop_oneof![Just(None), Just(Some(7u64)), Just(Some(64)), Just(Some(1000))],
        ),
        fault,
    )
        .prop_map(
            |(
                (queue_latency, queue_depth),
                (watchdog_window, max_cycles),
                ((profile, trace), sample_interval),
                fault,
            )| {
                SimConfig {
                    queue_latency,
                    queue_depth,
                    watchdog_window,
                    max_cycles,
                    profile,
                    trace_events: trace,
                    sample_interval,
                    fault: fault.map(|(seed, spec)| FaultPlan::new(seed, spec)),
                    ..Default::default()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acid test: over random configs, fault plans, and watchdog
    /// windows, both loops produce identical `SimReport`s (or identical
    /// deadlock/timeout diagnoses) in all three simulation modes.
    #[test]
    fn fast_forward_is_equivalent_to_naive(cfg in config_strategy()) {
        run_both(&cfg, &format!("random config {cfg:?}"));
    }
}

/// A pinned fault whose cycle lands inside a skipped span must still fire
/// on its exact cycle: the leap is capped at the next pinned cycle, so the
/// arming `begin_cycle` runs as a real tick.
#[test]
fn pinned_fault_inside_skipped_span_fires_on_its_cycle() {
    let (_, d) = testbed();
    // 128-cycle queue ops make nearly every cycle part of a charge/latency
    // span, so both pinned cycles fall inside leaps.
    let spec = FaultSpec {
        pinned: vec![
            PinnedFault { cycle: 500, site: FaultSite::HwStall { agent: 1, cycles: 40 } },
            PinnedFault { cycle: 777, site: FaultSite::MemUpset { addr: 0x100, bit: 3 } },
        ],
        ..Default::default()
    };
    let cfg = SimConfig {
        queue_latency: 128,
        fault: Some(FaultPlan::new(11, spec)),
        fast_forward: true,
        ..Default::default()
    };
    let rep = simulate_hybrid(d, vec![], &cfg).unwrap();
    assert!(rep.cycles > 777, "run must outlive the pinned faults");
    let cycles: Vec<u64> = rep.fault_log.iter().map(|r| r.cycle).collect();
    assert_eq!(cycles, vec![500, 777], "pinned faults must fire on their exact cycles");
    assert!(matches!(rep.fault_log[0].site, FaultSite::HwStall { agent: 1, cycles: 40 }));
    assert!(matches!(rep.fault_log[1].site, FaultSite::MemUpset { addr: 0x100, bit: 3 }));

    let naive = simulate_hybrid(d, vec![], &SimConfig { fast_forward: false, ..cfg }).unwrap();
    assert_reports_equal(&rep, &naive, "pinned-in-span");
}

/// The fast path must be deterministic in its own right (same run twice).
#[test]
fn fast_forward_is_deterministic() {
    let (_, d) = testbed();
    let cfg = SimConfig {
        queue_latency: 128,
        fault: Some(FaultPlan::new(42, FaultSpec::uniform(1e-3))),
        fast_forward: true,
        max_cycles: 2_000_000,
        watchdog_window: 100_000,
        ..Default::default()
    };
    let a = simulate_hybrid(d, vec![], &cfg);
    let b = simulate_hybrid(d, vec![], &cfg);
    match (a, b) {
        (Ok(x), Ok(y)) => assert_reports_equal(&x, &y, "determinism"),
        (x, y) => assert_outcomes_equal(x, y, "determinism"),
    }
}

/// Deep-queue/skewed-rate stall spans — the workload class the fast path
/// exists for — must stay equivalent when both stall classes (queue-full
/// on the producer, queue-empty on the consumer) dominate.
#[test]
fn stall_heavy_config_is_equivalent() {
    let cfg = SimConfig {
        queue_latency: 128,
        queue_depth: Some(2),
        profile: true,
        trace_events: 1024,
        ..Default::default()
    };
    run_both(&cfg, "stall-heavy");
}
