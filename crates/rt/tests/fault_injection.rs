//! Fault-injection layer guarantees:
//!
//! * **Neutrality** — a zero-rate plan (and no plan at all) is
//!   byte-identical to the committed golden cycle counts of every CHStone
//!   benchmark × mode; injection that is off must cost nothing and change
//!   nothing.
//! * **Determinism** — the same seed and spec produce the identical fault
//!   trace (and therefore the identical run) twice.
//! * **Effect** — nonzero rates actually inject, and every injected fault
//!   is counted in the metrics and recorded in the bounded fault log.
//! * **Validation** — configurations the simulator used to panic on are
//!   rejected up front with a typed [`ConfigError`].

use proptest::prelude::*;
use twill_dswp::{run_dswp, DswpOptions};
use twill_rt::{
    simulate_hybrid, simulate_pure_hw, simulate_pure_sw, ConfigError, FaultPlan, FaultSite,
    FaultSpec, PinnedFault, SimConfig, SimError, SimReport,
};

fn prepare(src: &str) -> twill_ir::Module {
    let mut m = twill_frontend::compile("t", src).unwrap();
    twill_passes::run_standard_pipeline(&mut m, &Default::default());
    m
}

const PROGRAM: &str = r#"
int main() {
  int acc = 0;
  for (int i = 0; i < 64; i++) {
    int x = (i * 7 + 3) ^ (i << 2);
    acc += (x % 11) * (x % 11);
  }
  out(acc);
  return 0;
}
"#;

/// A 2-way split with forced even work so queue traffic exists.
fn split_dswp(m: &twill_ir::Module) -> twill_dswp::DswpResult {
    let d = run_dswp(
        m,
        &DswpOptions {
            num_partitions: 2,
            split_points: Some(vec![0.5, 0.5]),
            ..Default::default()
        },
    );
    assert!(d.stats.queues > 0, "expected queue traffic");
    d
}

fn zero_rate_cfg(seed: u64) -> SimConfig {
    SimConfig { fault: Some(FaultPlan::new(seed, FaultSpec::uniform(0.0))), ..Default::default() }
}

/// The report of a run that may have ended in deadlock/timeout.
fn any_report(res: Result<SimReport, SimError>) -> SimReport {
    match res {
        Ok(r) => r,
        Err(e) => e.partial_report().expect("partial report attached").clone(),
    }
}

/// An armed-but-inert fault plan must not change a single golden cycle
/// count: all 24 committed CHStone entries (8 benchmarks × 3 modes).
#[test]
fn zero_rate_plan_matches_all_golden_counts() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_baseline.json");
    let base = twill_obs::Baseline::load(&path).expect("load committed BENCH_baseline.json");
    let cfg = zero_rate_cfg(0xDEAD_BEEF);
    for b in chstone::all() {
        let golden = |mode: &str| {
            base.find(b.name, mode)
                .unwrap_or_else(|| panic!("{} {mode} missing from baseline", b.name))
                .cycles()
        };
        let m = chstone::compile_and_prepare(&b);
        let input = chstone::input_for(b.name, 1);

        let sw = simulate_pure_sw(&m, input.clone(), &cfg).unwrap();
        assert_eq!(sw.cycles, golden("sw"), "{} pure-SW cycles drifted", b.name);
        assert_eq!(sw.stats.faults.total(), 0);
        assert!(sw.fault_log.is_empty());

        let hw = simulate_pure_hw(&m, input.clone(), &cfg).unwrap();
        assert_eq!(hw.cycles, golden("hw"), "{} pure-HW cycles drifted", b.name);

        let d = run_dswp(&m, &DswpOptions { num_partitions: b.partitions, ..Default::default() });
        let hy = simulate_hybrid(&d, input, &cfg).unwrap();
        assert_eq!(hy.cycles, golden("hybrid"), "{} hybrid cycles drifted", b.name);
        assert_eq!(hy.stats.faults.total(), 0);
        assert!(hy.fault_log.is_empty());
    }
}

/// Same seed, same spec: the identical fault trace (and run) twice.
#[test]
fn same_seed_and_spec_reproduce_the_fault_trace() {
    let m = prepare(PROGRAM);
    let d = split_dswp(&m);
    let cfg = SimConfig {
        fault: Some(FaultPlan::new(7, FaultSpec::uniform(2e-3))),
        max_cycles: 5_000_000,
        watchdog_window: 100_000,
        ..Default::default()
    };
    let a = any_report(simulate_hybrid(&d, vec![], &cfg));
    let b = any_report(simulate_hybrid(&d, vec![], &cfg));
    assert!(a.stats.faults.total() > 0, "expected injection at this rate");
    assert_eq!(a.fault_log, b.fault_log);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.output, b.output);
    assert_eq!(a.stats.faults, b.stats.faults);
}

/// Nonzero rates inject; every fault is counted and logged, and the log
/// stays within the run.
#[test]
fn nonzero_rates_inject_counted_and_logged() {
    let m = prepare(PROGRAM);
    let d = split_dswp(&m);
    let cfg = SimConfig {
        fault: Some(FaultPlan::new(3, FaultSpec::uniform(5e-3))),
        max_cycles: 5_000_000,
        watchdog_window: 100_000,
        ..Default::default()
    };
    let rep = any_report(simulate_hybrid(&d, vec![], &cfg));
    let total = rep.stats.faults.total();
    assert!(total > 0);
    assert_eq!(rep.fault_log.len() as u64, total, "log must hold every fault below its cap");
    assert!(rep.fault_log.iter().all(|r| r.cycle <= rep.cycles));
    #[cfg(feature = "obs")]
    {
        let json = rep.metrics().to_json();
        assert!(json.contains("\"faults\""), "metrics JSON must expose the fault block:\n{json}");
    }
}

/// A pinned queue drop fires exactly once, at the first enqueue at or
/// after its cycle, and is visible in the counters.
#[test]
fn pinned_queue_drop_fires_once() {
    let m = prepare(PROGRAM);
    let d = split_dswp(&m);
    let spec = FaultSpec {
        pinned: vec![PinnedFault { cycle: 0, site: FaultSite::QueueDrop { queue: 0 } }],
        ..Default::default()
    };
    let cfg = SimConfig {
        fault: Some(FaultPlan::new(1, spec)),
        max_cycles: 5_000_000,
        watchdog_window: 50_000,
        ..Default::default()
    };
    let rep = any_report(simulate_hybrid(&d, vec![], &cfg));
    assert_eq!(rep.stats.faults.drops, 1);
    assert_eq!(rep.stats.faults.total(), 1);
    assert_eq!(rep.fault_log.len(), 1);
    assert!(matches!(rep.fault_log[0].site, FaultSite::QueueDrop { queue: 0 }));
}

/// Invalid configurations are rejected with typed errors instead of
/// panicking inside the simulator.
#[test]
fn invalid_configs_are_rejected_up_front() {
    let m = prepare(PROGRAM);
    let reject = |cfg: SimConfig| match simulate_pure_sw(&m, vec![], &cfg).unwrap_err() {
        SimError::Config(e) => e,
        other => panic!("expected a config error, got {other}"),
    };

    assert_eq!(
        reject(SimConfig { queue_depth: Some(0), ..Default::default() }),
        ConfigError::ZeroQueueDepth
    );
    assert!(matches!(
        reject(SimConfig { mem_size: 64, ..Default::default() }),
        ConfigError::MemTooSmall { got: 64, .. }
    ));
    assert_eq!(
        reject(SimConfig { watchdog_window: 0, ..Default::default() }),
        ConfigError::ZeroWatchdog
    );
    assert!(matches!(
        reject(SimConfig {
            fault: Some(FaultPlan::new(1, FaultSpec::uniform(1.5))),
            ..Default::default()
        }),
        ConfigError::BadFaultRate { value: v, .. } if v == 1.5
    ));
    let stall_zero = FaultSpec { hw_stall_rate: 0.5, hw_stall_cycles: 0, ..Default::default() };
    assert_eq!(
        reject(SimConfig { fault: Some(FaultPlan::new(1, stall_zero)), ..Default::default() }),
        ConfigError::ZeroStallCycles
    );

    // A module without @main is a config error, not a panic.
    let no_main = twill_ir::parser::parse_module("module \"t\"\nfunc @f() {\nbb0:\n  ret\n}\n")
        .expect("parses");
    match simulate_pure_sw(&no_main, vec![], &SimConfig::default()).unwrap_err() {
        SimError::Config(ConfigError::NoMain) => {}
        other => panic!("expected NoMain, got {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any seed, an all-zero-rate plan is indistinguishable from no
    /// plan at all: same cycles, same output, same stall accounting.
    #[test]
    fn zero_rate_plan_equals_no_plan(seed in any::<u64>()) {
        use std::sync::OnceLock;
        static PREP: OnceLock<(twill_ir::Module, twill_dswp::DswpResult)> = OnceLock::new();
        let (_, d) = PREP.get_or_init(|| {
            let m = prepare(PROGRAM);
            let d = split_dswp(&m);
            (m, d)
        });
        let none = simulate_hybrid(d, vec![], &SimConfig::default()).unwrap();
        let zero = simulate_hybrid(d, vec![], &zero_rate_cfg(seed)).unwrap();
        prop_assert_eq!(none.cycles, zero.cycles);
        prop_assert_eq!(&none.output, &zero.output);
        prop_assert_eq!(zero.stats.faults.total(), 0);
        prop_assert!(zero.fault_log.is_empty());
        #[cfg(feature = "obs")]
        prop_assert_eq!(none.metrics().to_json(), zero.metrics().to_json());
    }
}
