//! Golden-file test for the Perfetto exporter: a deterministic 2-thread
//! hybrid run must produce exactly the committed `trace_event` JSON, and
//! the parse-back must show the structure ui.perfetto.dev needs — slice
//! events on every simulator thread and a counter track per queue.
//!
//! Regenerate the golden file after an intentional exporter or timing
//! change with:
//!
//! ```sh
//! TWILL_UPDATE_GOLDEN=1 cargo test -p twill-rt --test perfetto_golden
//! ```
#![cfg(feature = "obs")]

use std::collections::BTreeSet;
use std::path::PathBuf;

use twill_dswp::{run_dswp, DswpOptions};
use twill_rt::obs::json::{self, Json};
use twill_rt::{simulate_hybrid, SimConfig, SimReport};

const SRC: &str = r#"
int main() {
  unsigned int acc = 0;
  for (int i = 0; i < 30; i++) {
    unsigned int x = (unsigned int)(i * 2654435761u);
    acc = acc * 31 + ((x >> 7) ^ x);
  }
  out((int) acc);
  return 0;
}
"#;

fn two_thread_run() -> SimReport {
    let mut m = twill_frontend::compile("golden", SRC).unwrap();
    twill_passes::run_standard_pipeline(&mut m, &Default::default());
    let d = run_dswp(
        &m,
        &DswpOptions {
            num_partitions: 2,
            split_points: Some(vec![0.4, 0.6]),
            ..Default::default()
        },
    );
    let cfg = SimConfig { trace_events: 1 << 16, ..Default::default() };
    simulate_hybrid(&d, vec![], &cfg).unwrap()
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/hybrid_trace.json")
}

#[test]
fn exporter_matches_golden_file_and_parses_back() {
    let rep = two_thread_run();
    assert_eq!(rep.agent_names.len(), 2, "expected a 2-thread hybrid (cpu + hw1)");
    assert_eq!(rep.dropped_events, 0, "ring should be large enough for the golden run");

    let trace = rep.trace_builder().build();
    let path = golden_path();
    if std::env::var_os("TWILL_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &trace).unwrap();
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing; run with TWILL_UPDATE_GOLDEN=1 to create it");
    assert_eq!(trace, golden, "Perfetto export drifted from tests/data/hybrid_trace.json");

    // Parse-back: the structural facts Perfetto needs to render the trace.
    let doc = json::parse(&trace).expect("exporter must emit valid JSON");
    let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");

    let mut thread_names = BTreeSet::new();
    let mut slice_tids = BTreeSet::new();
    let mut counter_names = BTreeSet::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or_default();
        let tid = ev.get("tid").and_then(Json::as_u64).unwrap_or_default();
        match ph {
            "M" if ev.get("name").and_then(Json::as_str) == Some("thread_name") => {
                let n = ev.get("args").and_then(|a| a.get("name"));
                thread_names.insert(n.and_then(Json::as_str).unwrap_or_default().to_string());
            }
            "B" | "E" => {
                slice_tids.insert(tid);
            }
            "C" => {
                let n = ev.get("name").and_then(Json::as_str).unwrap_or_default();
                counter_names.insert(n.to_string());
            }
            _ => {}
        }
    }

    for agent in &rep.agent_names {
        assert!(thread_names.contains(agent), "missing thread_name metadata for {agent}");
    }
    assert!(
        slice_tids.len() >= rep.agent_names.len(),
        "expected a slice track per simulator thread, got tids {slice_tids:?}"
    );
    let queues = rep.stats.queue_stats.len();
    assert!(queues > 0, "golden program must exercise at least one queue");
    for q in 0..queues {
        let name = format!("q{q} occupancy");
        assert!(counter_names.contains(&name), "missing counter track {name:?}");
    }
    assert_eq!(
        doc.get("otherData").and_then(|o| o.get("dropped_events")).and_then(Json::as_str),
        Some("0"),
        "dropped_events metadata must be present"
    );
}
