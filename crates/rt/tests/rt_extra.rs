//! Extra runtime-simulator coverage: the software-thread scheduler
//! (multiple SW threads on one CPU), determinism, and statistics.

use twill_rt::cpu::Cpu;
use twill_rt::hwthread::Progress;
use twill_rt::{simulate_hybrid, Shared, SimConfig};

/// Producer/consumer pair as two *software* threads sharing the CPU —
/// exercises the round-robin scheduler with context switches (§4.4).
#[test]
fn two_software_threads_round_robin() {
    let src = r#"
queue q0 i32 x 4
func @producer() -> void {
bb0:
  br bb1
bb1:
  %i = phi i32 [bb0: 0:i32], [bb1: %ni]
  enqueue q0, %i
  %ni = add i32 %i, 1:i32
  %c = cmp slt %ni, 25:i32
  condbr %c, bb1, bb2
bb2:
  ret
}
func @consumer() -> void {
bb0:
  br bb1
bb1:
  %n = phi i32 [bb0: 0:i32], [bb1: %nn]
  %s = phi i32 [bb0: 0:i32], [bb1: %ns]
  %v = dequeue i32 q0
  %ns = add i32 %s, %v
  %nn = add i32 %n, 1:i32
  %c = cmp slt %nn, 25:i32
  condbr %c, bb1, bb2
bb2:
  out %ns
  ret
}
"#;
    let mut m = twill_ir::parser::parse_module(src).unwrap();
    twill_ir::layout::assign_global_addrs(&mut m);
    let p = m.find_func("producer").unwrap();
    let c = m.find_func("consumer").unwrap();
    let mut shared = Shared::new(&m, 0x100000, vec![], 0, None, &[], 1);
    let mut cpu = Cpu::new(0, &m, &[p, c], &[(0x20000, 0x30000), (0x30000, 0x40000)]);
    let mut cycles = 0u64;
    while !cpu.is_finished() {
        shared.begin_cycle();
        let _ = cpu.tick(&m, &mut shared);
        cycles += 1;
        assert!(cycles < 1_000_000, "scheduler deadlock");
    }
    assert_eq!(shared.output, vec![(0..25).sum::<i32>()]);
    // Both threads ran interleaved: blocking forced context switches, so
    // total cycles far exceed one thread's instruction count.
    assert!(cycles > 100);
}

#[test]
fn simulation_is_deterministic() {
    let b = chstone::AES;
    let m = chstone::compile_and_prepare(&b);
    let d = twill_dswp::run_dswp(
        &m,
        &twill_dswp::DswpOptions { num_partitions: b.partitions, ..Default::default() },
    );
    let input = chstone::input_for(b.name, 2);
    let r1 = simulate_hybrid(&d, input.clone(), &SimConfig::default()).unwrap();
    let r2 = simulate_hybrid(&d, input, &SimConfig::default()).unwrap();
    assert_eq!(r1.cycles, r2.cycles, "cycle counts must be reproducible");
    assert_eq!(r1.output, r2.output);
    assert_eq!(r1.stats.module_bus_grants, r2.stats.module_bus_grants);
}

#[test]
fn stats_track_queue_occupancy_and_agents() {
    let b = chstone::AES;
    let m = chstone::compile_and_prepare(&b);
    let d = twill_dswp::run_dswp(
        &m,
        &twill_dswp::DswpOptions { num_partitions: b.partitions, ..Default::default() },
    );
    let rep = simulate_hybrid(&d, chstone::input_for(b.name, 2), &SimConfig::default()).unwrap();
    assert!(rep.stats.queue_peak.iter().any(|&p| p > 0), "queues saw traffic");
    assert!(rep.stats.queue_peak.iter().all(|&p| p <= 8), "depth-8 bound respected");
    let busy: u64 = rep.stats.agent_busy.iter().sum();
    assert!(busy > 0);
    assert_eq!(rep.stats.agent_busy.len(), 1 + rep.hw_threads);
}

/// The `Progress` enum is part of the public agent API.
#[test]
fn progress_enum_is_usable() {
    assert_ne!(Progress::Busy, Progress::Blocked);
}

#[cfg(feature = "obs")]
#[test]
fn event_trace_records_queue_traffic() {
    use twill_rt::obs::EventKind;

    let src = r#"
int main() {
  unsigned int acc = 0;
  for (int i = 0; i < 30; i++) {
    unsigned int x = (unsigned int)(i * 2654435761u);
    unsigned int y = (x >> 7) ^ x;
    acc = acc * 31 + y;
  }
  out((int) acc);
  return 0;
}
"#;
    let mut m = twill_frontend::compile("t", src).unwrap();
    twill_passes::run_standard_pipeline(&mut m, &Default::default());
    let d = twill_dswp::run_dswp(
        &m,
        &twill_dswp::DswpOptions {
            num_partitions: 2,
            split_points: Some(vec![0.4, 0.6]),
            ..Default::default()
        },
    );
    let cfg = SimConfig { trace_events: 1_000_000, ..Default::default() };
    let rep = simulate_hybrid(&d, vec![], &cfg).unwrap();
    assert!(!rep.events.is_empty(), "trace should record events");
    assert_eq!(rep.dropped_events, 0, "large ring must not truncate this run");
    // Events are chronological.
    for w in rep.events.windows(2) {
        assert!(w[0].cycle <= w[1].cycle);
    }
    // Queue traffic and the out() of the result appear in the trace.
    assert!(rep.events.iter().any(|e| matches!(e.kind, EventKind::QueuePush { .. })));
    assert!(rep.events.iter().any(|e| matches!(e.kind, EventKind::QueuePop { .. })));
    assert!(rep.events.iter().any(|e| matches!(e.kind, EventKind::Output { .. })));
    // Both the CPU track and at least one HW track recorded something.
    assert!(rep.events.iter().any(|e| e.track == 0));
    assert!(rep.events.iter().any(|e| e.track > 0));
    // Text rendering works.
    let text = twill_rt::obs::event::format_events(&rep.events);
    assert!(text.contains("push") && text.contains("out"), "{text}");
    // Tracing off by default → empty, and timing is unperturbed.
    let rep2 = simulate_hybrid(&d, vec![], &SimConfig::default()).unwrap();
    assert!(rep2.events.is_empty());
    assert_eq!(rep.output, rep2.output);
    assert_eq!(rep.cycles, rep2.cycles, "tracing must not perturb timing");
}

/// A tiny ring keeps the most recent events and reports the loss in
/// `dropped_events` — truncation is never silent.
#[cfg(feature = "obs")]
#[test]
fn trace_truncation_is_reported_not_silent() {
    let src = r#"
int main() {
  unsigned int acc = 0;
  for (int i = 0; i < 50; i++) {
    unsigned int x = (unsigned int)(i * 2654435761u);
    acc = acc * 31 + ((x >> 7) ^ x);
  }
  out((int) acc);
  return 0;
}
"#;
    let mut m = twill_frontend::compile("t", src).unwrap();
    twill_passes::run_standard_pipeline(&mut m, &Default::default());
    let d = twill_dswp::run_dswp(
        &m,
        &twill_dswp::DswpOptions {
            num_partitions: 2,
            split_points: Some(vec![0.4, 0.6]),
            ..Default::default()
        },
    );
    let big =
        simulate_hybrid(&d, vec![], &SimConfig { trace_events: 1_000_000, ..Default::default() })
            .unwrap();
    let tiny =
        simulate_hybrid(&d, vec![], &SimConfig { trace_events: 8, ..Default::default() }).unwrap();
    assert!(big.events.len() > 8, "need enough traffic to overflow the tiny ring");
    assert_eq!(tiny.events.len(), 8);
    assert_eq!(
        tiny.dropped_events,
        big.events.len() as u64 - 8,
        "every lost event is accounted for"
    );
    // The dropped count flows into the metrics report and the Perfetto
    // export metadata.
    assert_eq!(tiny.metrics().dropped_events, tiny.dropped_events);
    let trace_json = tiny.trace_builder().build();
    assert!(trace_json.contains(&format!("\"dropped_events\": \"{}\"", tiny.dropped_events)));
}

/// Per-thread cycle accounting: busy + stalls + idle == total cycles for
/// every agent, in every configuration (the debug-build invariant, checked
/// here in release too).
#[test]
fn cycle_accounting_sums_to_total() {
    let src = r#"
int main() {
  unsigned int acc = 0;
  for (int i = 0; i < 30; i++) {
    unsigned int x = (unsigned int)(i * 2654435761u);
    acc = acc * 31 + ((x >> 7) ^ x);
  }
  out((int) acc);
  return 0;
}
"#;
    let mut m = twill_frontend::compile("t", src).unwrap();
    twill_passes::run_standard_pipeline(&mut m, &Default::default());
    let d = twill_dswp::run_dswp(
        &m,
        &twill_dswp::DswpOptions {
            num_partitions: 2,
            split_points: Some(vec![0.4, 0.6]),
            ..Default::default()
        },
    );
    let sw = twill_rt::simulate_pure_sw(&m, vec![], &SimConfig::default()).unwrap();
    let hw = twill_rt::simulate_pure_hw(&m, vec![], &SimConfig::default()).unwrap();
    let hy = simulate_hybrid(&d, vec![], &SimConfig::default()).unwrap();
    for rep in [&sw, &hw, &hy] {
        assert_eq!(rep.stats.agent_cycles.len(), rep.agent_names.len());
        for (name, c) in rep.agent_names.iter().zip(&rep.stats.agent_cycles) {
            assert_eq!(
                c.total(),
                rep.cycles,
                "agent {name}: {c:?} must sum to {} cycles",
                rep.cycles
            );
        }
    }
    // The hybrid's queue traffic shows up in the stall attribution.
    let stalls: u64 = hy
        .stats
        .agent_cycles
        .iter()
        .map(|c| c.queue_full + c.queue_empty + c.sem + c.mem_bus + c.module_bus)
        .sum();
    assert!(stalls > 0, "a decoupled pipeline must stall somewhere");
}

/// A software thread blocked forever on an empty queue must be reported
/// as a deadlock, not spin to the cycle limit.
#[test]
fn deadlock_on_never_filled_queue_is_detected() {
    let src = r#"
queue q0 i32 x 4
func @main() -> i32 {
bb0:
  %v = dequeue i32 q0
  out %v
  ret %v
}
"#;
    let mut m = twill_ir::parser::parse_module(src).unwrap();
    twill_ir::layout::assign_global_addrs(&mut m);
    let err = twill_rt::simulate_pure_sw(&m, vec![], &SimConfig::default()).unwrap_err();
    match err {
        twill_rt::SimError::Deadlock { report, partial } => {
            assert!(report.cycle > 0);
            // The lone agent is reported stuck on the never-filled queue.
            assert!(
                report
                    .agents
                    .iter()
                    .any(|a| a.state == twill_rt::WaitState::QueueEmpty { queue: 0 }),
                "{}",
                report.render()
            );
            // The partial report still carries the run so far.
            assert_eq!(partial.cycles, report.cycle);
        }
        other => panic!("expected deadlock, got {other}"),
    }
}

/// Exceeding `max_cycles` yields a timeout error rather than hanging.
#[test]
fn timeout_reported_when_budget_exhausted() {
    let src = r#"
int main() {
  int s = 0;
  for (int i = 0; i < 100000; i++) s += i;
  out(s);
  return 0;
}
"#;
    let mut m = twill_frontend::compile("t", src).unwrap();
    twill_passes::run_standard_pipeline(&mut m, &Default::default());
    let cfg = SimConfig { max_cycles: 50, ..Default::default() };
    let err = twill_rt::simulate_pure_sw(&m, vec![], &cfg).unwrap_err();
    match err {
        twill_rt::SimError::Timeout { max_cycles, partial } => {
            assert_eq!(max_cycles, 50);
            // The partial report covers the truncated run.
            assert_eq!(partial.cycles, 50);
        }
        other => panic!("expected timeout, got {other}"),
    }
}

/// The configured queue depth bounds occupancy, and shrinking it never
/// changes the computed output (only timing).
#[test]
fn queue_depth_bounds_occupancy_without_changing_output() {
    let src = r#"
int main() {
  unsigned int acc = 0;
  for (int i = 0; i < 40; i++) {
    unsigned int x = (unsigned int)(i * 2654435761u);
    unsigned int y = (x >> 7) ^ x;
    acc = acc * 31 + y;
  }
  out((int) acc);
  return 0;
}
"#;
    let mut m = twill_frontend::compile("t", src).unwrap();
    twill_passes::run_standard_pipeline(&mut m, &Default::default());
    let d = twill_dswp::run_dswp(
        &m,
        &twill_dswp::DswpOptions {
            num_partitions: 2,
            split_points: Some(vec![0.4, 0.6]),
            ..Default::default()
        },
    );
    let shallow = SimConfig { queue_depth: Some(2), ..Default::default() };
    let deep = SimConfig { queue_depth: Some(32), ..Default::default() };
    let r2 = simulate_hybrid(&d, vec![], &shallow).unwrap();
    let r32 = simulate_hybrid(&d, vec![], &deep).unwrap();
    assert_eq!(r2.output, r32.output, "depth is a timing knob only");
    assert!(r2.stats.queue_peak.iter().all(|&p| p <= 2), "{:?}", r2.stats.queue_peak);
    assert!(r2.cycles >= r32.cycles, "shallower queues can only stall more");
}

/// Raising queue latency can only slow a pipeline down, never change its
/// result.
#[test]
fn queue_latency_monotonic_in_cycles() {
    let src = r#"
int main() {
  unsigned int acc = 0;
  for (int i = 0; i < 40; i++) {
    unsigned int x = (unsigned int)(i * 2654435761u);
    unsigned int y = (x >> 7) ^ x;
    acc = acc * 31 + y;
  }
  out((int) acc);
  return 0;
}
"#;
    let mut m = twill_frontend::compile("t", src).unwrap();
    twill_passes::run_standard_pipeline(&mut m, &Default::default());
    let d = twill_dswp::run_dswp(
        &m,
        &twill_dswp::DswpOptions {
            num_partitions: 2,
            split_points: Some(vec![0.4, 0.6]),
            ..Default::default()
        },
    );
    let mut prev = 0u64;
    let mut reference: Option<Vec<i32>> = None;
    for lat in [2u32, 8, 32, 128] {
        let cfg = SimConfig { queue_latency: lat, ..Default::default() };
        let r = simulate_hybrid(&d, vec![], &cfg).unwrap();
        match &reference {
            None => reference = Some(r.output.clone()),
            Some(out) => assert_eq!(&r.output, out, "latency {lat} changed the result"),
        }
        assert!(r.cycles >= prev, "latency {lat}: {} < {}", r.cycles, prev);
        prev = r.cycles;
    }
}
