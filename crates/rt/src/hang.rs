//! Deadlock diagnosis: when the watchdog sees no agent make progress for
//! a whole window, it walks the queue/semaphore wait-for graph and renders
//! a structured [`HangReport`] instead of a bare "deadlock" string.
//!
//! The wait-for graph is built from two sources:
//!
//! * **Dynamic**: each agent's in-flight blocked operation names the exact
//!   resource it is stuck on (enqueue on a full queue, dequeue on an empty
//!   one, a semaphore lower at zero) and — via the profiler's attribution
//!   site — the C source line of the blocked instruction.
//! * **Static**: which agent *could* unblock that resource is read from
//!   the IR by walking the call graph from every agent's entry functions
//!   and collecting the queues/semaphores each side touches.
//!
//! A cycle in that graph (`cpu -> q0 -> hw1 -> q1 -> cpu`) is a true
//! deadlock; a chain that dead-ends in a finished agent is the signature
//! of a lost message (e.g. an injected queue drop).

use crate::shared::{OpKind, StallClass};
use std::fmt;
use twill_ir::{FuncId, InstId, Intr, Module, Op};

/// What an agent was doing when the watchdog fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitState {
    /// Enqueue blocked on a full queue.
    QueueFull { queue: u32 },
    /// Dequeue blocked on an empty queue.
    QueueEmpty { queue: u32 },
    /// Semaphore lower blocked at zero.
    Sem { sem: u32 },
    /// Waiting for a bus grant (transient; not a steady-state blocker).
    Bus,
    /// Executing or burning latency — not resource-blocked.
    Running,
    /// Finished while the rest of the system hung.
    Finished,
}

impl WaitState {
    /// Classify an agent from its in-flight op and stall attribution.
    pub(crate) fn classify(kind: Option<OpKind>, class: StallClass, finished: bool) -> WaitState {
        if finished {
            return WaitState::Finished;
        }
        match (kind, class) {
            (Some(OpKind::Enqueue(q, _)), StallClass::QueueFull) => {
                WaitState::QueueFull { queue: q.index() as u32 }
            }
            (Some(OpKind::Dequeue(q)), StallClass::QueueEmpty) => {
                WaitState::QueueEmpty { queue: q.index() as u32 }
            }
            (Some(OpKind::SemLower(s, _)), StallClass::Sem) => {
                WaitState::Sem { sem: s.index() as u32 }
            }
            (Some(_), StallClass::MemBus | StallClass::ModuleBus) => WaitState::Bus,
            _ => WaitState::Running,
        }
    }

    /// The blocked resource's display label (`q3`, `sem0`), if any.
    fn resource(&self) -> Option<String> {
        match self {
            WaitState::QueueFull { queue } | WaitState::QueueEmpty { queue } => {
                Some(format!("q{queue}"))
            }
            WaitState::Sem { sem } => Some(format!("sem{sem}")),
            _ => None,
        }
    }

    fn describe(&self) -> String {
        match self {
            WaitState::QueueFull { queue } => format!("blocked: enqueue on full q{queue}"),
            WaitState::QueueEmpty { queue } => format!("blocked: dequeue on empty q{queue}"),
            WaitState::Sem { sem } => format!("blocked: lower on sem{sem} at zero"),
            WaitState::Bus => "waiting for a bus grant".to_string(),
            WaitState::Running => "running (not resource-blocked)".to_string(),
            WaitState::Finished => "finished".to_string(),
        }
    }
}

/// One agent's entry in the hang report.
#[derive(Debug, Clone)]
pub struct AgentWait {
    /// Track name (`cpu`, `hw1`, …).
    pub name: String,
    pub state: WaitState,
    /// `(function name, 1-based C line)` of the blocked instruction (line
    /// 0 marks compiler-synthesized runtime plumbing).
    pub site: Option<(String, u32)>,
}

/// The structured diagnosis of a hung simulation.
#[derive(Debug, Clone)]
pub struct HangReport {
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// The no-progress window that tripped it.
    pub window: u64,
    /// Every agent's state, in track order.
    pub agents: Vec<AgentWait>,
    /// Alternating agent / resource labels of the wait-for walk, e.g.
    /// `["cpu", "q0", "hw1", "q1", "cpu"]`. When [`Self::wait_cycle`] the
    /// first and last label coincide (a true circular wait); otherwise the
    /// chain dead-ends (typically in a finished agent — a lost message).
    pub chain: Vec<String>,
    /// Whether the chain closes into a cycle.
    pub wait_cycle: bool,
}

impl HangReport {
    /// Human-readable multi-line rendering (also used for golden tests).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "hang at cycle {}: no agent progressed for {} cycles",
            self.cycle, self.window
        );
        if !self.chain.is_empty() {
            let kind = if self.wait_cycle { "wait-for cycle" } else { "wait-for chain" };
            let _ = writeln!(out, "{kind}: {}", self.chain.join(" -> "));
        }
        for a in &self.agents {
            let _ = write!(out, "  {}: {}", a.name, a.state.describe());
            match &a.site {
                Some((func, line)) if *line > 0 => {
                    let _ = write!(out, " at C line {line} (@{func})");
                }
                Some((func, _)) => {
                    let _ = write!(out, " (@{func})");
                }
                None => {}
            }
            out.push('\n');
        }
        out
    }

    /// The C source lines implicated in the hang (deduplicated, sorted).
    pub fn source_lines(&self) -> Vec<u32> {
        let mut lines: Vec<u32> = self
            .agents
            .iter()
            .filter_map(|a| a.site.as_ref())
            .map(|&(_, l)| l)
            .filter(|&l| l > 0)
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines
    }
}

impl fmt::Display for HangReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render().trim_end())
    }
}

/// What the system loop knows about one agent when the watchdog fires.
pub(crate) struct AgentSnapshot {
    pub name: String,
    /// Entry functions (a CPU runs one per software thread).
    pub entries: Vec<FuncId>,
    pub state: WaitState,
    /// Profiler attribution site `(func index, inst index)` of the
    /// blocked/current instruction.
    pub site: Option<(usize, usize)>,
}

/// Per-agent static resource usage: which queues/semaphores the code
/// reachable from the agent's entries can touch.
struct Usage {
    enq: Vec<bool>,
    deq: Vec<bool>,
    raise: Vec<bool>,
}

fn usage(m: &Module, entries: &[FuncId]) -> Usage {
    let mut u = Usage {
        enq: vec![false; m.queues.len()],
        deq: vec![false; m.queues.len()],
        raise: vec![false; m.sems.len()],
    };
    let mut seen = vec![false; m.funcs.len()];
    let mut work: Vec<FuncId> = entries.to_vec();
    while let Some(fid) = work.pop() {
        if seen[fid.index()] {
            continue;
        }
        seen[fid.index()] = true;
        let f = m.func(fid);
        for inst in &f.insts {
            match &inst.op {
                Op::Intrin(Intr::Enqueue(q), _) => u.enq[q.index()] = true,
                Op::Intrin(Intr::Dequeue(q), _) => u.deq[q.index()] = true,
                Op::Intrin(Intr::SemRaise(s), _) => u.raise[s.index()] = true,
                Op::Call(callee, _) => work.push(*callee),
                _ => {}
            }
        }
    }
    u
}

/// Can agent `j` (statically) unblock an agent stuck in `state`?
fn provides(state: WaitState, u: &Usage) -> bool {
    match state {
        WaitState::QueueFull { queue } => u.deq[queue as usize],
        WaitState::QueueEmpty { queue } => u.enq[queue as usize],
        WaitState::Sem { sem } => u.raise[sem as usize],
        _ => false,
    }
}

/// Build the report: classify agents, resolve source sites, walk the
/// wait-for graph for a cycle (or the longest chain from the first
/// blocked agent).
pub(crate) fn build_hang_report(
    m: &Module,
    cycle: u64,
    window: u64,
    agents: &[AgentSnapshot],
) -> HangReport {
    let usages: Vec<Usage> = agents.iter().map(|a| usage(m, &a.entries)).collect();
    let waits: Vec<AgentWait> = agents
        .iter()
        .map(|a| AgentWait {
            name: a.name.clone(),
            state: a.state,
            site: a.site.map(|(fi, ii)| {
                let f = &m.funcs[fi];
                (f.name.clone(), f.loc(InstId::new(ii)).line)
            }),
        })
        .collect();

    // Successor of a blocked agent: prefer a provider that is itself
    // blocked (extends the walk toward a cycle), else any provider.
    let next_of = |i: usize| -> Option<usize> {
        let blocked = |j: usize| waits[j].state.resource().is_some();
        let candidates: Vec<usize> =
            (0..agents.len()).filter(|&j| j != i && provides(waits[i].state, &usages[j])).collect();
        candidates.iter().copied().find(|&j| blocked(j)).or(candidates.first().copied())
    };

    let mut chain: Vec<String> = Vec::new();
    let mut wait_cycle = false;
    if let Some(start) = (0..waits.len()).find(|&i| waits[i].state.resource().is_some()) {
        let mut path: Vec<usize> = vec![start];
        loop {
            let cur = *path.last().unwrap();
            let Some(res) = waits[cur].state.resource() else { break };
            let Some(next) = next_of(cur) else {
                // Nobody can serve this resource; end the chain at it.
                chain = interleave(&path, &waits);
                chain.push(res);
                break;
            };
            if let Some(pos) = path.iter().position(|&p| p == next) {
                // Closed a loop: report the cycle from its first entry.
                let cyc = &path[pos..];
                chain = interleave(cyc, &waits);
                if let Some(r) = waits[*cyc.last().unwrap()].state.resource() {
                    chain.push(r);
                }
                chain.push(waits[next].name.clone());
                wait_cycle = true;
                break;
            }
            path.push(next);
        }
        if chain.is_empty() {
            // Walk ended at a non-blocked agent (finished/running).
            chain = interleave(&path, &waits);
        }
    }

    HangReport { cycle, window, agents: waits, chain, wait_cycle }
}

/// Render a path of agent indices as alternating `agent -> resource`
/// labels (the resource each agent is blocked on leads to the next hop).
fn interleave(path: &[usize], waits: &[AgentWait]) -> Vec<String> {
    let mut out = Vec::with_capacity(path.len() * 2);
    for (k, &i) in path.iter().enumerate() {
        out.push(waits[i].name.clone());
        if k + 1 < path.len() {
            if let Some(r) = waits[i].state.resource() {
                out.push(r);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_ir::QueueId;

    fn module_two_sided() -> Module {
        // @prod enqueues q0 and dequeues q1; @cons dequeues q0, enqueues q1.
        let src = r#"
module "t"
queue q0 i32 x 4
queue q1 i32 x 4

func @prod() {
bb0:
  enqueue q0, 1:i32 !1
  %1 = dequeue i32 q1 !2
  ret
}

func @cons() {
bb0:
  %0 = dequeue i32 q0 !3
  enqueue q1, 2:i32 !4
  ret
}
"#;
        twill_ir::parser::parse_module(src).expect("test module parses")
    }

    #[test]
    fn classify_maps_blocked_ops() {
        let d =
            WaitState::classify(Some(OpKind::Dequeue(QueueId(2))), StallClass::QueueEmpty, false);
        assert_eq!(d, WaitState::QueueEmpty { queue: 2 });
        assert_eq!(WaitState::classify(None, StallClass::Busy, true), WaitState::Finished);
        assert_eq!(WaitState::classify(None, StallClass::Busy, false), WaitState::Running);
    }

    #[test]
    fn cyclic_wait_is_reported_as_cycle() {
        let m = module_two_sided();
        let prod = m.find_func("prod").unwrap();
        let cons = m.find_func("cons").unwrap();
        // prod stuck dequeuing empty q1 (the credit cons would send), cons
        // stuck dequeuing empty q0 (the data prod would send):
        // cpu -> q1 -> hw1 -> q0 -> cpu.
        let agents = [
            AgentSnapshot {
                name: "cpu".into(),
                entries: vec![prod],
                state: WaitState::QueueEmpty { queue: 1 },
                site: Some((prod.index(), 1)),
            },
            AgentSnapshot {
                name: "hw1".into(),
                entries: vec![cons],
                state: WaitState::QueueEmpty { queue: 0 },
                site: Some((cons.index(), 0)),
            },
        ];
        let r = build_hang_report(&m, 1_000_100, 1_000_000, &agents);
        assert!(r.wait_cycle, "chain = {:?}", r.chain);
        assert_eq!(r.chain, vec!["cpu", "q1", "hw1", "q0", "cpu"]);
        let text = r.render();
        assert!(text.contains("wait-for cycle: cpu -> q1 -> hw1 -> q0 -> cpu"), "{text}");
        assert!(text.contains("at C line"), "{text}");
        assert!(!r.source_lines().is_empty());
    }

    #[test]
    fn chain_dead_ends_in_finished_agent() {
        let m = module_two_sided();
        let prod = m.find_func("prod").unwrap();
        let cons = m.find_func("cons").unwrap();
        // Producer finished; consumer still waits on q0: the signature of
        // a lost message.
        let agents = [
            AgentSnapshot {
                name: "cpu".into(),
                entries: vec![prod],
                state: WaitState::Finished,
                site: None,
            },
            AgentSnapshot {
                name: "hw1".into(),
                entries: vec![cons],
                state: WaitState::QueueEmpty { queue: 0 },
                site: Some((cons.index(), 0)),
            },
        ];
        let r = build_hang_report(&m, 2_000_000, 1_000_000, &agents);
        assert!(!r.wait_cycle);
        assert_eq!(r.chain, vec!["hw1", "q0", "cpu"]);
        assert!(r.render().contains("cpu: finished"));
    }
}
