//! Optional per-instruction cycle attribution.
//!
//! When [`crate::SimConfig::profile`] is set, the run loop asks each agent
//! which instruction occupied the cycle just simulated and charges that
//! cycle — under its [`StallClass`] — to a per-agent site table. Cycles
//! with no instruction in flight (startup charges, context switches,
//! post-finish idling) land in an explicit `overhead` bucket so the table
//! still sums exactly to the run's cycle count (asserted in debug builds,
//! mirroring the aggregate `ClassCycles` invariant).
//!
//! Attribution is observation-only: it never feeds back into timing, so
//! profiled and unprofiled runs produce identical cycle counts.

use crate::shared::{ClassCycles, StallClass};
use std::collections::BTreeMap;

/// An attribution site: `(function index, instruction index)` in the
/// simulated module.
pub type Site = (usize, usize);

/// One agent's cycle attribution, keyed by instruction site.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AgentProfile {
    /// Per-site cycle breakdown. BTreeMap keeps report order deterministic.
    pub sites: BTreeMap<Site, ClassCycles>,
    /// Cycles with no instruction in flight.
    pub overhead: ClassCycles,
}

impl AgentProfile {
    pub fn record(&mut self, site: Option<Site>, class: StallClass) {
        self.record_n(site, class, 1);
    }

    /// Bulk-charge `n` cycles of one class to one site (fast-forward spans
    /// attribute every skipped cycle to the instruction that was in flight
    /// when the span began — the site cannot change while skipping).
    pub fn record_n(&mut self, site: Option<Site>, class: StallClass, n: u64) {
        match site {
            Some(s) => self.sites.entry(s).or_default().add_n(class, n),
            None => self.overhead.add_n(class, n),
        }
    }

    /// Total attributed cycles (equals the run's cycle count).
    pub fn total(&self) -> u64 {
        self.sites.values().map(|c| c.total()).sum::<u64>() + self.overhead.total()
    }
}

/// Cycle attribution for a whole run, one entry per agent in
/// [`crate::SimReport::agent_names`] order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimProfile {
    pub agents: Vec<AgentProfile>,
}

impl SimProfile {
    pub fn new(agents: usize) -> SimProfile {
        SimProfile { agents: vec![AgentProfile::default(); agents] }
    }
}
