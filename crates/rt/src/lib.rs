//! # twill-rt
//!
//! Cycle-level simulation of the Twill runtime architecture (thesis Ch. 4)
//! and of the three experiment configurations (pure SW / pure HW / hybrid).
//!
//! ## Timing model (constants from the thesis, see `twill_ir::cost`)
//!
//! * **Module bus** — one message per cycle, 1-cycle grant latency;
//!   priority: processor first, then messages to the processor, then the
//!   longest-waiting primitive (§4.1). Modeled as a per-cycle grant budget
//!   with CPU-first tick ordering and round-rotation for fairness.
//! * **Queues** — enqueue/dequeue ≥ 2 cycles, blocking at full/empty with
//!   circular size+1 semantics (§4.3); the Fig 6.5 experiment adds
//!   configurable extra latency, Fig 6.6 overrides depth.
//! * **Semaphores** — raise 1 cycle, lower ≥ 2, FIFO wakeup (§4.2).
//! * **Memory bus** — HW threads: write 1 cycle, read 2 cycles, one
//!   operation in flight (§4.1). CPU memory is local BRAM (2-cycle
//!   load/store in the instruction cost table). Writes are applied to the
//!   single backing store immediately; the 2-cycle cross-domain visibility
//!   of the write-update scheme is subsumed by the ≥2-cycle token/queue
//!   synchronization DSWP inserts on every cross-thread dependence
//!   (DESIGN.md §2).
//! * **CPU runtime ops** — five cycles via the Microblaze stream
//!   interface (§4.5).
//! * **HW threads** — execute `twill-hls` schedules: one FSM state per
//!   cycle, chained ops free, multi-cycle ops stall, pipelined loop bodies
//!   initiate every II cycles.

#[cfg(feature = "obs")]
pub mod counters;
pub mod cpu;
pub mod fault;
pub mod hang;
pub mod hwthread;
pub mod profile;
pub mod shared;
pub mod system;

#[cfg(feature = "obs")]
pub use counters::CounterBank;
pub use fault::{FaultCounts, FaultPlan, FaultRecord, FaultSite, FaultSpec, PinnedFault};
pub use hang::{AgentWait, HangReport, WaitState};
pub use profile::{AgentProfile, SimProfile};
pub use shared::{ClassCycles, QueueStat, Shared, SimStats, StallClass};
pub use system::{
    simulate_hybrid, simulate_hybrid_scheduled, simulate_pure_hw, simulate_pure_hw_scheduled,
    simulate_pure_sw, ConfigError, SimConfig, SimError, SimReport,
};

/// Re-export of the observability layer (event model, Perfetto export,
/// metrics) when the `obs` feature is enabled.
#[cfg(feature = "obs")]
pub use twill_obs as obs;
