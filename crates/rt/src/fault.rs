//! Deterministic, seed-driven fault injection for the simulated runtime.
//!
//! Real Virtex-5 fabric exposes the queue/semaphore/bus web to transient
//! upsets the thesis never had to model. Because our hardware is simulated
//! and fully inspectable we can do better than "hope": this module injects
//! the classic failure modes on demand — queue-payload bit flips,
//! dropped/duplicated queue messages, transient hardware-thread stalls,
//! and memory single-event upsets — either at per-cycle rates or at pinned
//! `(cycle, site)` points.
//!
//! Determinism is the contract:
//!
//! * All randomness comes from a [`SplitMix64`] PRNG seeded by
//!   [`FaultPlan::seed`] — no `std` randomness anywhere. The simulator
//!   consumes draws in its (deterministic) tick order, so the same seed and
//!   spec reproduce the identical fault trace, cycle for cycle.
//! * With no plan installed the fault layer is a single `Option` check on
//!   the hot path: zero draws, zero allocations, byte-identical cycle
//!   counts to a build that never heard of faults.
//!
//! Every injected fault is counted in [`FaultCounts`] (surfaced through
//! `SimStats`/`SimMetrics`), appended to a bounded [`FaultRecord`] log on
//! the report, and — with the `obs` feature — recorded as a typed
//! `EventKind::Fault` trace event.

/// Bound on the retained fault log; faults past this are still injected
/// and counted, only the per-fault records stop accumulating.
pub const FAULT_LOG_CAP: usize = 65_536;

/// SplitMix64: the tiny, statistically solid PRNG from Steele et al.'s
/// "Fast splittable pseudorandom number generators" (also the seeding
/// generator of xoshiro). One u64 of state, passes BigCrush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * 2f64.powi(-53)
    }

    /// Bernoulli draw. `rate <= 0` is `false` without consuming a draw, so
    /// a zero-rate spec leaves the stream untouched for the classes that
    /// are actually enabled.
    pub fn chance(&mut self, rate: f64) -> bool {
        rate > 0.0 && self.next_f64() < rate
    }

    /// Uniform draw in `[0, n)` (`0` when `n == 0`).
    pub fn below(&mut self, n: u32) -> u32 {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as u32
        }
    }
}

/// Derive the fault seed for retry `attempt` of a resilient run: attempt 0
/// keeps the user's seed (reproducing the observed failure), later
/// attempts re-mix it so each retry sees an independent fault stream.
pub fn reseed(seed: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        seed
    } else {
        let mut rng = SplitMix64::new(seed ^ ((attempt as u64) << 32 | attempt as u64));
        rng.next_u64()
    }
}

/// Per-cycle fault rates plus pinned fault points.
///
/// Rates are probabilities per opportunity: queue rates per successful
/// enqueue, the stall rate per hardware-thread tick, the memory-upset rate
/// per simulated cycle. All zero by default.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// P(flip one payload bit) per enqueue.
    pub queue_bit_flip_rate: f64,
    /// P(message silently lost) per enqueue.
    pub queue_drop_rate: f64,
    /// P(message delivered twice) per enqueue.
    pub queue_dup_rate: f64,
    /// P(transient stall) per hardware-thread tick.
    pub hw_stall_rate: f64,
    /// Length of an injected stall in cycles.
    pub hw_stall_cycles: u32,
    /// P(single-event upset in shared memory) per cycle.
    pub mem_upset_rate: f64,
    /// Deterministic fault points, applied in addition to the rates. Queue
    /// and stall sites fire at the first matching opportunity at or after
    /// their cycle; memory upsets fire exactly at their cycle.
    pub pinned: Vec<PinnedFault>,
}

impl Default for FaultSpec {
    fn default() -> FaultSpec {
        FaultSpec {
            queue_bit_flip_rate: 0.0,
            queue_drop_rate: 0.0,
            queue_dup_rate: 0.0,
            hw_stall_rate: 0.0,
            hw_stall_cycles: 25,
            mem_upset_rate: 0.0,
            pinned: Vec::new(),
        }
    }
}

impl FaultSpec {
    /// Uniform spec: every rate set to `rate` (campaign sweeps).
    pub fn uniform(rate: f64) -> FaultSpec {
        FaultSpec {
            queue_bit_flip_rate: rate,
            queue_drop_rate: rate,
            queue_dup_rate: rate,
            hw_stall_rate: rate,
            mem_upset_rate: rate,
            ..Default::default()
        }
    }

    /// True when nothing can ever fire (all rates zero, no pinned points).
    pub fn is_inert(&self) -> bool {
        self.queue_bit_flip_rate <= 0.0
            && self.queue_drop_rate <= 0.0
            && self.queue_dup_rate <= 0.0
            && self.hw_stall_rate <= 0.0
            && self.mem_upset_rate <= 0.0
            && self.pinned.is_empty()
    }

    /// `(field name, value)` of the first rate outside `[0, 1]`, if any.
    pub fn invalid_rate(&self) -> Option<(&'static str, f64)> {
        let rates = [
            ("queue_bit_flip_rate", self.queue_bit_flip_rate),
            ("queue_drop_rate", self.queue_drop_rate),
            ("queue_dup_rate", self.queue_dup_rate),
            ("hw_stall_rate", self.hw_stall_rate),
            ("mem_upset_rate", self.mem_upset_rate),
        ];
        rates.into_iter().find(|&(_, r)| !(0.0..=1.0).contains(&r) || r.is_nan())
    }
}

/// A concrete injection point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Flip bit `bit` of the next payload enqueued on queue `queue`.
    QueueBitFlip { queue: u32, bit: u32 },
    /// Silently lose the next message enqueued on queue `queue`.
    QueueDrop { queue: u32 },
    /// Deliver the next message on queue `queue` twice.
    QueueDup { queue: u32 },
    /// Freeze hardware agent `agent` for `cycles` cycles.
    HwStall { agent: u32, cycles: u32 },
    /// Flip bit `bit` of the shared-memory byte at `addr`.
    MemUpset { addr: u32, bit: u8 },
}

impl FaultSite {
    /// The affected resource index (queue / agent / byte address) as
    /// recorded in the `unit` field of the trace event.
    pub fn unit(self) -> u32 {
        match self {
            FaultSite::QueueBitFlip { queue, .. }
            | FaultSite::QueueDrop { queue }
            | FaultSite::QueueDup { queue } => queue,
            FaultSite::HwStall { agent, .. } => agent,
            FaultSite::MemUpset { addr, .. } => addr,
        }
    }

    /// Stable lowercase class name (matches `twill_obs::FaultClass`).
    pub fn class_name(self) -> &'static str {
        match self {
            FaultSite::QueueBitFlip { .. } => "queue-bit-flip",
            FaultSite::QueueDrop { .. } => "queue-drop",
            FaultSite::QueueDup { .. } => "queue-dup",
            FaultSite::HwStall { .. } => "hw-stall",
            FaultSite::MemUpset { .. } => "mem-upset",
        }
    }

    #[cfg(feature = "obs")]
    pub(crate) fn obs_class(self) -> twill_obs::FaultClass {
        match self {
            FaultSite::QueueBitFlip { .. } => twill_obs::FaultClass::QueueBitFlip,
            FaultSite::QueueDrop { .. } => twill_obs::FaultClass::QueueDrop,
            FaultSite::QueueDup { .. } => twill_obs::FaultClass::QueueDup,
            FaultSite::HwStall { .. } => twill_obs::FaultClass::HwStall,
            FaultSite::MemUpset { .. } => twill_obs::FaultClass::MemUpset,
        }
    }
}

/// A fault pinned to fire at (or at the first opportunity after) `cycle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinnedFault {
    pub cycle: u64,
    pub site: FaultSite,
}

/// The complete, reproducible description of a fault campaign for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    pub spec: FaultSpec,
}

impl FaultPlan {
    pub fn new(seed: u64, spec: FaultSpec) -> FaultPlan {
        FaultPlan { seed, spec }
    }

    /// The same plan with the seed re-mixed for retry `attempt`.
    pub fn reseeded(&self, attempt: u32) -> FaultPlan {
        FaultPlan { seed: reseed(self.seed, attempt), spec: self.spec.clone() }
    }
}

/// Counts of injected faults by class (always-on counters; all zero when
/// no plan is installed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    pub bit_flips: u64,
    pub drops: u64,
    pub dups: u64,
    pub stalls: u64,
    pub mem_upsets: u64,
}

impl FaultCounts {
    pub fn total(&self) -> u64 {
        self.bit_flips + self.drops + self.dups + self.stalls + self.mem_upsets
    }

    pub fn bump(&mut self, site: FaultSite) {
        match site {
            FaultSite::QueueBitFlip { .. } => self.bit_flips += 1,
            FaultSite::QueueDrop { .. } => self.drops += 1,
            FaultSite::QueueDup { .. } => self.dups += 1,
            FaultSite::HwStall { .. } => self.stalls += 1,
            FaultSite::MemUpset { .. } => self.mem_upsets += 1,
        }
    }
}

/// One injected fault, as retained in the run's fault log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    pub cycle: u64,
    pub site: FaultSite,
}

/// What an enqueue should suffer this time (decided before the push).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EnqueueFaults {
    pub drop: bool,
    pub dup: bool,
    /// Bit to flip in the payload, if any.
    pub flip_bit: Option<u32>,
}

/// Live injection state owned by `Shared` for the duration of one run.
/// Boxed behind an `Option` so the no-fault hot path pays one pointer test.
#[derive(Debug)]
pub struct FaultState {
    pub(crate) rng: SplitMix64,
    pub(crate) spec: FaultSpec,
    /// Pinned faults sorted by cycle; `next_pinned` indexes the first not
    /// yet armed.
    pinned: Vec<PinnedFault>,
    next_pinned: usize,
    /// Armed pinned queue faults waiting for a matching enqueue.
    armed_queue: Vec<FaultSite>,
    /// Armed pinned stalls waiting for the target agent's next tick.
    armed_stalls: Vec<(u32, u32)>,
    /// Bounded per-fault log (see [`FAULT_LOG_CAP`]).
    log: Vec<FaultRecord>,
    log_dropped: u64,
}

impl FaultState {
    pub fn new(plan: &FaultPlan) -> FaultState {
        let mut pinned = plan.spec.pinned.clone();
        pinned.sort_by_key(|p| p.cycle);
        FaultState {
            rng: SplitMix64::new(plan.seed),
            spec: plan.spec.clone(),
            pinned,
            next_pinned: 0,
            armed_queue: Vec::with_capacity(8),
            armed_stalls: Vec::with_capacity(8),
            log: Vec::with_capacity(256),
            log_dropped: 0,
        }
    }

    /// Arm pinned faults due at `cycle`; memory upsets and raw rate draws
    /// are handled by `Shared` (which owns the memory). Returns true if
    /// anything may fire this cycle (armed points or a nonzero mem rate).
    pub(crate) fn arm(&mut self, cycle: u64) {
        while self.next_pinned < self.pinned.len() && self.pinned[self.next_pinned].cycle <= cycle {
            let p = self.pinned[self.next_pinned];
            self.next_pinned += 1;
            match p.site {
                FaultSite::QueueBitFlip { .. }
                | FaultSite::QueueDrop { .. }
                | FaultSite::QueueDup { .. } => self.armed_queue.push(p.site),
                FaultSite::HwStall { agent, cycles } => self.armed_stalls.push((agent, cycles)),
                // Applied immediately by Shared::apply_cycle_faults.
                FaultSite::MemUpset { .. } => self.armed_queue.push(p.site),
            }
        }
    }

    /// Cycle of the earliest pinned fault not yet armed (fast-forward must
    /// not leap past it).
    pub(crate) fn next_pinned_cycle(&self) -> Option<u64> {
        self.pinned.get(self.next_pinned).map(|p| p.cycle)
    }

    /// Whether any armed pinned stall is still waiting for its target
    /// agent's next tick.
    pub(crate) fn has_armed_stalls(&self) -> bool {
        !self.armed_stalls.is_empty()
    }

    /// Pop one armed memory upset (fired the cycle it comes due).
    pub(crate) fn pop_armed_mem(&mut self) -> Option<FaultSite> {
        let pos = self.armed_queue.iter().position(|s| matches!(s, FaultSite::MemUpset { .. }))?;
        Some(self.armed_queue.remove(pos))
    }

    /// Decide what the next successful enqueue on queue `qi` suffers.
    /// `width_bits` bounds the flipped bit to the queue's payload width.
    pub(crate) fn enqueue_faults(&mut self, qi: usize, width_bits: u32) -> EnqueueFaults {
        let mut out = EnqueueFaults::default();
        // Pinned faults first (FIFO per queue); each armed site fires once.
        let mut i = 0;
        while i < self.armed_queue.len() {
            let consume = match self.armed_queue[i] {
                FaultSite::QueueDrop { queue } if queue as usize == qi => {
                    out.drop = true;
                    true
                }
                FaultSite::QueueDup { queue } if queue as usize == qi => {
                    out.dup = true;
                    true
                }
                FaultSite::QueueBitFlip { queue, bit } if queue as usize == qi => {
                    out.flip_bit = Some(bit % width_bits.max(1));
                    true
                }
                _ => false,
            };
            if consume {
                self.armed_queue.remove(i);
            } else {
                i += 1;
            }
        }
        // Then the rates.
        if !out.drop && self.rng.chance(self.spec.queue_drop_rate) {
            out.drop = true;
        }
        if !out.drop {
            if out.flip_bit.is_none() && self.rng.chance(self.spec.queue_bit_flip_rate) {
                out.flip_bit = Some(self.rng.below(width_bits.max(1)));
            }
            if !out.dup && self.rng.chance(self.spec.queue_dup_rate) {
                out.dup = true;
            }
        }
        out
    }

    /// Stall length for agent `agent`'s tick this cycle, if one fires.
    pub(crate) fn stall_for(&mut self, agent: u32) -> Option<u32> {
        if let Some(pos) = self.armed_stalls.iter().position(|&(a, _)| a == agent) {
            let (_, n) = self.armed_stalls.remove(pos);
            return Some(n.max(1));
        }
        if self.rng.chance(self.spec.hw_stall_rate) {
            return Some(self.spec.hw_stall_cycles.max(1));
        }
        None
    }

    /// Append to the bounded log.
    pub(crate) fn log(&mut self, cycle: u64, site: FaultSite) {
        if self.log.len() < FAULT_LOG_CAP {
            self.log.push(FaultRecord { cycle, site });
        } else {
            self.log_dropped += 1;
        }
    }

    /// Detach the log: `(records in order, dropped count)`.
    pub(crate) fn take_log(&mut self) -> (Vec<FaultRecord>, u64) {
        (std::mem::take(&mut self.log), self.log_dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        // Known first value for seed 0 (reference vectors from the paper).
        assert_eq!(SplitMix64::new(0).next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn unit_draws_are_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(r.below(13) < 13);
        }
        assert_eq!(r.below(0), 0);
        assert!(!r.chance(0.0), "zero rate never fires");
        assert!(r.chance(1.0), "unit rate always fires");
    }

    #[test]
    fn reseed_changes_stream_but_is_stable() {
        assert_eq!(reseed(99, 0), 99, "attempt 0 keeps the user's seed");
        assert_ne!(reseed(99, 1), 99);
        assert_eq!(reseed(99, 1), reseed(99, 1));
        assert_ne!(reseed(99, 1), reseed(99, 2));
    }

    #[test]
    fn spec_validation_and_inertness() {
        assert!(FaultSpec::default().is_inert());
        assert!(!FaultSpec::uniform(0.1).is_inert());
        let mut s = FaultSpec::default();
        s.pinned.push(PinnedFault { cycle: 5, site: FaultSite::QueueDrop { queue: 0 } });
        assert!(!s.is_inert());
        assert!(FaultSpec::uniform(0.5).invalid_rate().is_none());
        let bad = FaultSpec { queue_drop_rate: 1.5, ..Default::default() };
        assert_eq!(bad.invalid_rate(), Some(("queue_drop_rate", 1.5)));
        let nan = FaultSpec { mem_upset_rate: f64::NAN, ..Default::default() };
        assert_eq!(nan.invalid_rate().map(|(f, _)| f), Some("mem_upset_rate"));
    }

    #[test]
    fn pinned_queue_faults_fire_once_in_fifo_order() {
        let spec = FaultSpec {
            pinned: vec![
                PinnedFault { cycle: 10, site: FaultSite::QueueDrop { queue: 0 } },
                PinnedFault { cycle: 10, site: FaultSite::QueueBitFlip { queue: 1, bit: 3 } },
            ],
            ..Default::default()
        };
        let mut fs = FaultState::new(&FaultPlan::new(1, spec));
        fs.arm(9);
        assert!(!fs.enqueue_faults(0, 32).drop, "not armed before cycle 10");
        fs.arm(10);
        assert!(fs.enqueue_faults(0, 32).drop);
        assert!(!fs.enqueue_faults(0, 32).drop, "pinned faults fire once");
        assert_eq!(fs.enqueue_faults(1, 32).flip_bit, Some(3));
    }

    #[test]
    fn pinned_stall_targets_one_agent() {
        let spec = FaultSpec {
            pinned: vec![PinnedFault {
                cycle: 3,
                site: FaultSite::HwStall { agent: 2, cycles: 40 },
            }],
            ..Default::default()
        };
        let mut fs = FaultState::new(&FaultPlan::new(1, spec));
        fs.arm(3);
        assert_eq!(fs.stall_for(1), None);
        assert_eq!(fs.stall_for(2), Some(40));
        assert_eq!(fs.stall_for(2), None, "fires once");
    }

    #[test]
    fn log_is_bounded() {
        let mut fs = FaultState::new(&FaultPlan::new(1, FaultSpec::default()));
        for c in 0..(FAULT_LOG_CAP as u64 + 10) {
            fs.log(c, FaultSite::QueueDrop { queue: 0 });
        }
        let (log, dropped) = fs.take_log();
        assert_eq!(log.len(), FAULT_LOG_CAP);
        assert_eq!(dropped, 10);
    }
}
