//! Hardware-thread agent: cycle-accurate execution of `twill-hls` FSM
//! schedules against the simulated buses.

use crate::shared::{OpKind, PendState, Pending, Shared, StallClass};
use twill_hls::schedule::ModuleSchedule;
use twill_ir::cost;
use twill_ir::interp::{eval_bin, eval_cast, eval_cmp};
use twill_ir::{BlockId, FuncId, InstId, Intr, Module, Op, Ty, Value};

/// What an agent did this tick (for stats/progress detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    Busy,
    Blocked,
    Finished,
}

/// How every cycle of a fast-forward span must be accounted for one agent:
/// the Progress the naive tick would report, the stall class it would be
/// charged under, and — for a resource-blocked op — the op kind whose
/// per-retry stall counters must be bumped. All three are constant across
/// a span by construction (the span ends before the agent's
/// `next_interesting_cycle`), so one spec covers the whole leap.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SkipSpec {
    pub progress: Progress,
    pub class: StallClass,
    /// The blocked op whose retry counters accrue each skipped cycle
    /// (`None` unless the agent is in `PendState::WaitResource`).
    pub stall_kind: Option<OpKind>,
}

struct HwFrame {
    func: FuncId,
    block: BlockId,
    prev_block: Option<BlockId>,
    op_idx: usize,
    cur_offset: u32,
    regs: Vec<i64>,
    args: Vec<i64>,
    pending_call: Option<InstId>,
    sp_save: u32,
}

/// One hardware thread executing a (partition) entry function.
pub struct HwThread {
    pub agent_id: usize,
    /// The partition entry function (wait-for-graph analysis).
    entry: FuncId,
    frames: Vec<HwFrame>,
    /// Idle cycles left to burn (schedule gaps).
    charge: u32,
    /// In-flight runtime/memory operation and its destination register.
    pending: Option<(InstId, Pending, u32 /*ticks so far*/, u32 /*issue offset*/)>,
    /// Pipelined-loop gap waiver (depth - II) granted per back edge.
    waive_credit: u32,
    /// Instruction the current/most recent cycle belongs to (profiling);
    /// `None` before the start message arrives.
    attr_site: Option<(usize, usize)>,
    finished: bool,
    /// Stack bump pointer for allocas (pure-HW runs of whole programs).
    sp: u32,
    stack_limit: u32,
    pub busy_cycles: u64,
    pub blocked_cycles: u64,
    pub finish_cycle: u64,
}

impl HwThread {
    pub fn new(agent_id: usize, m: &Module, entry: FuncId, stack: (u32, u32)) -> HwThread {
        let f = m.func(entry);
        HwThread {
            agent_id,
            entry,
            frames: vec![HwFrame {
                func: entry,
                block: f.entry,
                prev_block: None,
                op_idx: 0,
                cur_offset: 0,
                regs: vec![0; f.insts.len()],
                args: vec![],
                pending_call: None,
                sp_save: stack.0,
            }],
            charge: 0,
            pending: None,
            waive_credit: 0,
            attr_site: None,
            finished: false,
            sp: stack.0,
            stack_limit: stack.1,
            busy_cycles: 0,
            blocked_cycles: 0,
            finish_cycle: 0,
        }
    }

    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Attribution for a cycle this agent reported [`Progress::Blocked`].
    pub fn stall_class(&self) -> StallClass {
        self.pending.as_ref().map(|(_, p, _, _)| p.stall_class()).unwrap_or(StallClass::Busy)
    }

    /// Delay execution until the master's StartThread message arrives.
    pub fn set_start_delay(&mut self, cycles: u32) {
        self.charge += cycles;
    }

    /// Instruction site the cycle just ticked belongs to (profiling).
    pub fn attr_site(&self) -> Option<(usize, usize)> {
        self.attr_site
    }

    /// The kind of the in-flight runtime op, if any (hang diagnosis).
    pub fn pending_kind(&self) -> Option<OpKind> {
        self.pending.as_ref().map(|(_, p, _, _)| p.kind)
    }

    /// The partition entry function (hang diagnosis).
    pub fn entry(&self) -> FuncId {
        self.entry
    }

    /// Freeze this thread for `cycles` extra cycles (fault injection:
    /// a transient stall, attributed as busy time like any other charge).
    pub fn inject_stall(&mut self, cycles: u32) {
        self.charge += cycles;
    }

    /// Earliest cycle (> `now`, the cycle just ticked) at which this
    /// agent's tick can do anything beyond burning a charge cycle or
    /// re-polling a blocked/latency-burning op — the fast-forward contract
    /// (DESIGN.md §12). `u64::MAX` means "not until a peer acts".
    pub(crate) fn next_interesting_cycle(&self, now: u64, shared: &Shared) -> u64 {
        if self.finished {
            return u64::MAX;
        }
        if self.charge > 0 {
            // Ticks now+1 ..= now+charge burn the charge; the next one
            // executes.
            return now + self.charge as u64 + 1;
        }
        match &self.pending {
            Some((_, p, _, _)) => match p.state {
                // Latency(n) polls down to Done at tick now+n.
                PendState::Latency(n) => now + n as u64,
                // Blocked on a queue/sem: only a peer can unblock it, and
                // peers act at their own interesting cycles. But if the
                // resource is ready right now the last poll simply missed
                // it (the peer served later in the same cycle, or this
                // agent was riding out a charge) — the wake tick is next.
                PendState::WaitResource => {
                    if shared.resource_ready(p.kind) {
                        now + 1
                    } else {
                        u64::MAX
                    }
                }
                // Bus arbitration is re-run every cycle in agent order;
                // never skip over it.
                _ => now + 1,
            },
            None => now + 1,
        }
    }

    /// The constant per-cycle accounting of a fast-forward span starting
    /// after `now`. Only meaningful when `next_interesting_cycle` allows a
    /// skip (the run loop guarantees that).
    pub(crate) fn skip_spec(&self) -> SkipSpec {
        if self.finished {
            return SkipSpec {
                progress: Progress::Finished,
                class: StallClass::Idle,
                stall_kind: None,
            };
        }
        if self.charge > 0 {
            return SkipSpec {
                progress: Progress::Busy,
                class: StallClass::Busy,
                stall_kind: None,
            };
        }
        match &self.pending {
            Some((_, p, _, _)) => match p.state {
                PendState::WaitResource => SkipSpec {
                    progress: Progress::Blocked,
                    class: p.stall_class(),
                    stall_kind: Some(p.kind),
                },
                // Latency burn: blocked progress, charged as busy.
                _ => SkipSpec {
                    progress: Progress::Blocked,
                    class: StallClass::Busy,
                    stall_kind: None,
                },
            },
            None => {
                debug_assert!(false, "skip_spec on an agent with nothing in flight");
                SkipSpec { progress: Progress::Busy, class: StallClass::Busy, stall_kind: None }
            }
        }
    }

    /// Replay the state changes of `k` skipped ticks in one step: burn
    /// charge, count down op latency, and advance the pending-op tick
    /// counter exactly as `k` naive polls would have.
    pub(crate) fn apply_skip(&mut self, k: u64) {
        if self.finished {
            return;
        }
        if self.charge > 0 {
            debug_assert!(k <= self.charge as u64, "skip overran charge");
            self.charge -= k as u32;
            self.busy_cycles += k;
            return;
        }
        match self.pending.as_mut() {
            Some((_, p, ticks, _)) => {
                *ticks = ticks.wrapping_add(k as u32);
                if let PendState::Latency(n) = &mut p.state {
                    debug_assert!(k < *n as u64, "skip overran op latency");
                    *n -= k as u32;
                }
                self.blocked_cycles += k;
            }
            None => debug_assert!(false, "apply_skip on an agent with nothing in flight"),
        }
    }

    fn eval(&self, m: &Module, v: Value) -> i64 {
        let fr = self.frames.last().unwrap();
        match v {
            Value::Inst(i) => fr.regs[i.index()],
            Value::Arg(n) => {
                let ty = m.func(fr.func).params[n as usize];
                ty.mask(fr.args[n as usize])
            }
            Value::Imm(x, t) => t.mask(x),
        }
    }

    /// One simulated cycle.
    pub fn tick(&mut self, m: &Module, sched: &ModuleSchedule, shared: &mut Shared) -> Progress {
        if self.finished {
            return Progress::Finished;
        }
        if self.charge > 0 {
            self.charge -= 1;
            self.busy_cycles += 1;
            return Progress::Busy;
        }
        // In-flight runtime op?
        if let Some((dst, p, ticks, issue_off)) = self.pending.take() {
            let p = shared.poll(p);
            let ticks = ticks + 1;
            match p.state {
                PendState::Done(v) => {
                    let fr = self.frames.last_mut().unwrap();
                    let ty = m.func(fr.func).inst(dst).ty;
                    if ty != Ty::Void {
                        fr.regs[dst.index()] = ty.mask(v);
                    }
                    fr.op_idx += 1;
                    fr.cur_offset = issue_off + ticks;
                    self.busy_cycles += 1;
                    Progress::Busy
                }
                _ => {
                    self.pending = Some((dst, p, ticks, issue_off));
                    self.blocked_cycles += 1;
                    Progress::Blocked
                }
            }
        } else {
            self.execute(m, sched, shared)
        }
    }

    /// Execute schedule entries until a cycle is consumed.
    fn execute(&mut self, m: &Module, sched: &ModuleSchedule, shared: &mut Shared) -> Progress {
        loop {
            let (func, block, op_idx, cur_offset) = {
                let fr = self.frames.last().unwrap();
                (fr.func, fr.block, fr.op_idx, fr.cur_offset)
            };
            let bs = &sched.for_func(func).blocks[block.index()];
            debug_assert!(op_idx < bs.ops.len(), "ran past block schedule");
            let (iid, start) = bs.ops[op_idx];

            // Burn schedule gaps (less any pipelining waiver).
            if start > cur_offset {
                let mut gap = start - cur_offset;
                let w = gap.min(self.waive_credit);
                self.waive_credit -= w;
                gap -= w;
                self.frames.last_mut().unwrap().cur_offset = start;
                if gap > 0 {
                    // Gap cycles are dependence latency before `iid` issues.
                    self.attr_site = Some((func.index(), iid.index()));
                    self.charge = gap - 1;
                    self.busy_cycles += 1;
                    return Progress::Busy;
                }
                continue;
            }

            let f = m.func(func);
            let inst = f.inst(iid);
            match &inst.op {
                Op::Phi(_) => {
                    // Resolve the whole phi run atomically (parallel copy).
                    let prev = self.frames.last().unwrap().prev_block.expect("phi without pred");
                    let mut updates: Vec<(InstId, i64)> = Vec::new();
                    let mut idx = op_idx;
                    while idx < bs.ops.len() {
                        let (pid, _) = bs.ops[idx];
                        match &f.inst(pid).op {
                            Op::Phi(incoming) => {
                                let (_, v) = incoming
                                    .iter()
                                    .find(|(b, _)| *b == prev)
                                    .unwrap_or_else(|| panic!("phi {pid} missing {prev}"));
                                updates.push((pid, f.inst(pid).ty.mask(self.eval(m, *v))));
                                idx += 1;
                            }
                            _ => break,
                        }
                    }
                    let fr = self.frames.last_mut().unwrap();
                    for (pid, v) in updates {
                        fr.regs[pid.index()] = v;
                    }
                    fr.op_idx = idx;
                    continue; // phis are free muxes on block entry
                }
                Op::Bin(b, x, y) => {
                    let r = eval_bin(*b, inst.ty, self.eval(m, *x), self.eval(m, *y))
                        .unwrap_or(0); // HW divider yields 0 on /0
                    self.setreg(iid, r);
                    continue;
                }
                Op::Cmp(c, x, y) => {
                    let opty = f.value_ty(*x);
                    let r = eval_cmp(*c, opty, self.eval(m, *x), self.eval(m, *y));
                    self.setreg(iid, r);
                    continue;
                }
                Op::Select(c, a, b) => {
                    let r = if self.eval(m, *c) & 1 != 0 {
                        self.eval(m, *a)
                    } else {
                        self.eval(m, *b)
                    };
                    self.setreg(iid, inst.ty.mask(r));
                    continue;
                }
                Op::Cast(c, v) => {
                    let from = f.value_ty(*v);
                    let r = eval_cast(*c, from, inst.ty, self.eval(m, *v));
                    self.setreg(iid, r);
                    continue;
                }
                Op::Gep(b, i, sz) => {
                    let base = self.eval(m, *b);
                    let idx = f.value_ty(*i).sext(self.eval(m, *i));
                    self.setreg(iid, Ty::Ptr.mask(base.wrapping_add(idx.wrapping_mul(*sz as i64))));
                    continue;
                }
                Op::GlobalAddr(g) => {
                    self.setreg(iid, m.global(*g).addr as i64);
                    continue;
                }
                Op::Alloca(size) => {
                    let addr = self.sp;
                    let new_sp = (addr + ((*size + 3) & !3).max(4)).min(self.stack_limit);
                    for b in &mut shared.mem[addr as usize..new_sp as usize] {
                        *b = 0;
                    }
                    self.sp = new_sp;
                    self.setreg(iid, addr as i64);
                    continue;
                }
                Op::Load(a) => {
                    let addr = self.eval(m, *a) as u32;
                    if m.const_global_base(f, *a).is_some() {
                        // Constant-global ROM local to this thread: no
                        // shared-bus traffic; latency is in the schedule.
                        let v = twill_ir::interp::load_mem(&shared.mem, addr, inst.ty)
                            .unwrap_or(0);
                        self.setreg(iid, inst.ty.mask(v));
                        continue;
                    }
                    // Pipelined memory: one issue per bus grant; the
                    // 2-cycle result latency is already encoded in the
                    // schedule offsets of dependent operations.
                    let p = shared.start_op(OpKind::MemLoad(addr, inst.ty), 1);
                    return self.issue(m, iid, p, start, shared);
                }
                Op::Store(v, a) => {
                    let addr = self.eval(m, *a) as u32;
                    let val = self.eval(m, *v);
                    let p = shared
                        .start_op(OpKind::MemStore(addr, inst.ty, val), cost::HW_STORE_LATENCY);
                    return self.issue(m, iid, p, start, shared);
                }
                Op::Intrin(i, args) => {
                    let (kind, lat) = match i {
                        Intr::Enqueue(q) => {
                            let qty = m.queues[q.index()].width;
                            (
                                OpKind::Enqueue(*q, qty.mask(self.eval(m, args[0]))),
                                cost::HW_QUEUE_LATENCY,
                            )
                        }
                        Intr::Dequeue(q) => (OpKind::Dequeue(*q), cost::HW_QUEUE_LATENCY),
                        Intr::SemRaise(s) => (
                            OpKind::SemRaise(*s, self.eval(m, args[0]) as u32),
                            cost::HW_SEM_RAISE_LATENCY,
                        ),
                        Intr::SemLower(s) => (
                            OpKind::SemLower(*s, self.eval(m, args[0]) as u32),
                            cost::HW_SEM_LOWER_LATENCY,
                        ),
                        Intr::Out => (OpKind::Out(self.eval(m, args[0])), cost::HW_QUEUE_LATENCY),
                        Intr::In => (OpKind::In, cost::HW_QUEUE_LATENCY),
                    };
                    let p = shared.start_op(kind, lat);
                    return self.issue(m, iid, p, start, shared);
                }
                Op::Call(callee, args) => {
                    let argv: Vec<i64> = args.iter().map(|a| self.eval(m, *a)).collect();
                    let cf = m.func(*callee);
                    self.attr_site = Some((func.index(), iid.index()));
                    self.frames.last_mut().unwrap().pending_call = Some(iid);
                    self.frames.push(HwFrame {
                        func: *callee,
                        block: cf.entry,
                        prev_block: None,
                        op_idx: 0,
                        cur_offset: 0,
                        regs: vec![0; cf.insts.len()],
                        args: argv,
                        pending_call: None,
                        sp_save: self.sp,
                    });
                    self.waive_credit = 0;
                    self.busy_cycles += 1;
                    return Progress::Busy; // FSM handoff: 1 cycle
                }
                Op::Ret(v) => {
                    let val = v.map(|x| self.eval(m, x));
                    self.attr_site = Some((func.index(), iid.index()));
                    let done = self.frames.pop().unwrap();
                    self.sp = done.sp_save;
                    self.waive_credit = 0;
                    match self.frames.last_mut() {
                        None => {
                            self.finished = true;
                            self.finish_cycle = shared.cycle;
                            return Progress::Finished;
                        }
                        Some(caller) => {
                            let call = caller.pending_call.take().expect("ret without call");
                            if let Some(v) = val {
                                let ty = m.func(caller.func).inst(call).ty;
                                caller.regs[call.index()] = ty.mask(v);
                            }
                            caller.op_idx += 1;
                            // Completing the call consumed the callee's
                            // cycles; the return handoff is 1 more.
                            self.busy_cycles += 1;
                            return Progress::Busy;
                        }
                    }
                }
                Op::Br(t) => {
                    self.attr_site = Some((func.index(), iid.index()));
                    return self.take_branch(m, sched, *t, block);
                }
                Op::CondBr(c, t, e) => {
                    let cond = self.eval(m, *c) & 1 != 0;
                    let target = if cond { *t } else { *e };
                    self.attr_site = Some((func.index(), iid.index()));
                    return self.take_branch(m, sched, target, block);
                }
                Op::Switch(..) => panic!("switch reaches HW executor"),
                Op::FuncAddr(func) => {
                    self.setreg(iid, twill_ir::interp::func_addr_encode(*func));
                    continue;
                }
                Op::CallIndirect(..) => panic!(
                    "indirect call reached a hardware thread: function                      pointers require the processor (thesis §7); DSWP pins                      them to the software master"
                ),
            }
        }
    }

    fn setreg(&mut self, iid: InstId, v: i64) {
        let fr = self.frames.last_mut().unwrap();
        fr.regs[iid.index()] = v;
        fr.op_idx += 1;
    }

    fn issue(
        &mut self,
        m: &Module,
        dst: InstId,
        p: Pending,
        issue_offset: u32,
        shared: &mut Shared,
    ) -> Progress {
        self.attr_site = Some((self.frames.last().unwrap().func.index(), dst.index()));
        // The issue cycle itself polls once (grant can happen same cycle).
        let p = shared.poll(p);
        if let PendState::Done(v) = p.state {
            let fr = self.frames.last_mut().unwrap();
            let ty = m.func(fr.func).inst(dst).ty;
            if ty != Ty::Void {
                fr.regs[dst.index()] = ty.mask(v);
            }
            fr.op_idx += 1;
            fr.cur_offset = issue_offset + 1;
            self.busy_cycles += 1;
            return Progress::Busy;
        }
        self.pending = Some((dst, p, 1, issue_offset));
        self.busy_cycles += 1;
        Progress::Busy
    }

    fn take_branch(
        &mut self,
        m: &Module,
        sched: &ModuleSchedule,
        target: BlockId,
        from: BlockId,
    ) -> Progress {
        let func = self.frames.last().unwrap().func;
        let bs = &sched.for_func(func).blocks[from.index()];
        // Pipelined back edge: next iteration initiates after II cycles
        // instead of the full depth — grant a gap waiver.
        if target == from {
            if let Some(ii) = bs.ii {
                self.waive_credit = bs.depth.saturating_sub(ii);
            }
        } else {
            self.waive_credit = 0;
        }
        let fr = self.frames.last_mut().unwrap();
        fr.prev_block = Some(from);
        fr.block = target;
        fr.op_idx = 0;
        fr.cur_offset = 0;
        let _ = m;
        self.busy_cycles += 1;
        Progress::Busy // the branch state consumes its cycle
    }
}
