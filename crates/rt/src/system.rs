//! System assembly and the three experiment configurations.

use crate::cpu::Cpu;
use crate::fault::{FaultPlan, FaultRecord};
use crate::hang::{build_hang_report, AgentSnapshot, HangReport, WaitState};
use crate::hwthread::{HwThread, Progress, SkipSpec};
use crate::shared::{Shared, StallClass};
use twill_dswp::DswpResult;
use twill_hls::schedule::{schedule_module, HlsOptions, ModuleSchedule};
use twill_ir::{layout, Module};

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Total base latency of a queue operation (thesis baseline: 2; the
    /// Fig 6.5 sweep raises this to 128).
    pub queue_latency: u32,
    /// Queue depth override for all queues (Fig 6.6 sweeps 2..32).
    pub queue_depth: Option<u32>,
    /// Per-queue depth overrides `(queue id, depth)`, applied after the
    /// global `queue_depth` override — the auto-tuner's main actuator
    /// (`twillc --queue-depths q0=4,q1=32`). Ids must name declared
    /// queues; duplicates keep the last entry.
    pub queue_depths: Vec<(usize, u32)>,
    pub mem_size: u32,
    pub max_cycles: u64,
    pub hls: HlsOptions,
    /// Keep the most recent N runtime events in the trace ring buffer
    /// (0 = tracing off; requires the `obs` cargo feature to take effect).
    pub trace_events: usize,
    /// Attribute every agent cycle to the instruction occupying it
    /// (observation-only: cycle counts are identical either way).
    pub profile: bool,
    /// Deterministic fault-injection plan (`None` = injection off, the
    /// strictly-opt-in default; see [`crate::fault`]).
    pub fault: Option<FaultPlan>,
    /// No-progress window, in cycles, before the watchdog declares the
    /// system hung and renders a [`HangReport`].
    pub watchdog_window: u64,
    /// Event-driven fast-forward: leap the clock over spans where every
    /// agent is provably burning charge or re-polling a blocked op
    /// (observably identical to ticking each cycle; see DESIGN.md §12).
    /// `false` forces the naive tick-every-cycle loop — the bisection
    /// escape hatch behind `--no-fast-forward`. Defaults to on unless the
    /// `TWILL_NO_FAST_FORWARD` environment variable is set.
    pub fast_forward: bool,
    /// Sample the always-on counters every N cycles into a
    /// `twill_obs::Timeline` on the report (`SimReport::timeline`):
    /// per-thread stall-class deltas and per-queue traffic/stall deltas
    /// plus the occupancy level at each boundary. `None` (the default)
    /// turns the temporal layer off entirely — no state, no extra work on
    /// either loop path. Fast-forward spans are capped at boundaries so
    /// sampled timelines are byte-identical across loop modes
    /// (DESIGN.md §15); requires the `obs` feature to record anything.
    pub sample_interval: Option<u64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            queue_latency: twill_ir::cost::HW_QUEUE_LATENCY,
            queue_depth: None,
            queue_depths: Vec::new(),
            mem_size: layout::DEFAULT_MEM_SIZE,
            max_cycles: 3_000_000_000,
            hls: HlsOptions::default(),
            trace_events: 0,
            profile: false,
            fault: None,
            watchdog_window: 1_000_000,
            fast_forward: std::env::var_os("TWILL_NO_FAST_FORWARD").is_none(),
            sample_interval: None,
        }
    }
}

impl SimConfig {
    fn queue_extra(&self) -> u32 {
        self.queue_latency.saturating_sub(twill_ir::cost::HW_QUEUE_LATENCY)
    }
}

/// Result of one simulation.
#[derive(Debug, Clone)]
pub struct SimReport {
    pub cycles: u64,
    pub output: Vec<i32>,
    pub stats: crate::shared::SimStats,
    /// Fraction of total cycles the CPU was busy (for the power model).
    pub cpu_busy_fraction: f64,
    pub hw_threads: usize,
    /// Track names in agent order (`cpu`, `hw1`, …).
    pub agent_names: Vec<String>,
    /// Trace events lost to the ring-buffer bound (0 when tracing was off
    /// or nothing was dropped). Never silently truncated.
    pub dropped_events: u64,
    /// Per-instruction cycle attribution (when `SimConfig::profile`).
    pub profile: Option<crate::profile::SimProfile>,
    /// Injected faults in order (bounded at `fault::FAULT_LOG_CAP`; empty
    /// when no fault plan was configured).
    pub fault_log: Vec<FaultRecord>,
    /// Typed runtime event trace (when `SimConfig::trace_events > 0`).
    #[cfg(feature = "obs")]
    pub events: Vec<twill_obs::Event>,
    /// Interval-sampled counter timeline (when
    /// `SimConfig::sample_interval` is set); per-interval deltas sum
    /// exactly to the end-of-run totals in `stats`, including for partial
    /// (timeout/deadlock) reports.
    #[cfg(feature = "obs")]
    pub timeline: Option<twill_obs::Timeline>,
}

impl SimReport {
    /// Fold the always-on counters into the structured metrics report
    /// (stall attribution, queue statistics, critical-stage analysis).
    #[cfg(feature = "obs")]
    pub fn metrics(&self) -> twill_obs::SimMetrics {
        twill_obs::SimMetrics {
            cycles: self.cycles,
            threads: self
                .agent_names
                .iter()
                .zip(&self.stats.agent_cycles)
                .map(|(name, c)| twill_obs::ThreadMetrics {
                    name: name.clone(),
                    busy: c.busy,
                    queue_full: c.queue_full,
                    queue_empty: c.queue_empty,
                    sem: c.sem,
                    mem_bus: c.mem_bus,
                    module_bus: c.module_bus,
                    idle: c.idle,
                })
                .collect(),
            queues: self
                .stats
                .queue_stats
                .iter()
                .zip(&self.stats.queue_peak)
                .enumerate()
                .map(|(i, (q, &peak))| twill_obs::QueueMetrics {
                    name: format!("q{i}"),
                    depth: q.depth,
                    pushes: q.pushes,
                    pops: q.pops,
                    high_water: peak,
                    full_stalls: q.full_stalls,
                    empty_stalls: q.empty_stalls,
                    occupancy_hist: q.occupancy_hist.clone(),
                })
                .collect(),
            dropped_events: self.dropped_events,
            faults: twill_obs::FaultMetrics {
                bit_flips: self.stats.faults.bit_flips,
                drops: self.stats.faults.drops,
                dups: self.stats.faults.dups,
                stalls: self.stats.faults.stalls,
                mem_upsets: self.stats.faults.mem_upsets,
            },
        }
    }

    /// Fold the per-instruction cycle attribution into a source-level
    /// profile (requires `SimConfig::profile`; `m` must be the simulated
    /// module). Overhead cycles appear as a `<runtime>` pseudo-site so the
    /// profile still sums to `agents × cycles`.
    #[cfg(feature = "obs")]
    pub fn source_profile(&self, m: &Module) -> Option<twill_obs::SourceProfile> {
        fn breakdown(c: &crate::shared::ClassCycles) -> twill_obs::CycleBreakdown {
            twill_obs::CycleBreakdown {
                busy: c.busy,
                queue_full: c.queue_full,
                queue_empty: c.queue_empty,
                sem: c.sem,
                mem_bus: c.mem_bus,
                module_bus: c.module_bus,
                idle: c.idle,
            }
        }
        let prof = self.profile.as_ref()?;
        let mut samples = Vec::new();
        for (aid, agent) in prof.agents.iter().enumerate() {
            let thread = &self.agent_names[aid];
            for (&(fi, ii), c) in &agent.sites {
                let f = &m.funcs[fi];
                let iid = twill_ir::InstId::new(ii);
                let inst = f.inst(iid);
                samples.push(twill_obs::SiteSample {
                    thread: thread.clone(),
                    func: f.name.clone(),
                    line: f.loc(iid).line,
                    inst: twill_ir::printer::print_inst(m, &inst.op, inst.ty, iid.0),
                    cycles: breakdown(c),
                });
            }
            if agent.overhead.total() > 0 {
                samples.push(twill_obs::SiteSample {
                    thread: thread.clone(),
                    func: "<runtime>".to_string(),
                    line: 0,
                    inst: String::new(),
                    cycles: breakdown(&agent.overhead),
                });
            }
        }
        Some(twill_obs::SourceProfile { name: m.name.clone(), samples })
    }

    /// A Perfetto trace builder pre-loaded with this run's tracks, queue
    /// counters, events, and truncation metadata. Callers may attach
    /// compiler spans or extra metadata before `build()`.
    #[cfg(feature = "obs")]
    pub fn trace_builder(&self) -> twill_obs::TraceBuilder {
        let b = twill_obs::TraceBuilder::new()
            .threads(self.agent_names.iter().cloned())
            .queues((0..self.stats.queue_stats.len()).map(|i| format!("q{i}")))
            .events(self.events.clone(), self.dropped_events);
        match &self.timeline {
            Some(t) => b.timeline(t.clone()),
            None => b,
        }
    }
}

/// Invalid `SimConfig`/module combinations, rejected before the run
/// starts (instead of panicking deep inside the simulator).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `queue_depth: Some(0)` — queues need at least one slot.
    ZeroQueueDepth,
    /// `mem_size` cannot hold the globals plus per-agent stacks.
    MemTooSmall { required: u32, got: u32 },
    /// The module has no `@main`.
    NoMain,
    /// `watchdog_window: 0` would trip on the first blocked cycle.
    ZeroWatchdog,
    /// A fault rate outside `[0, 1]` (or NaN).
    BadFaultRate { field: &'static str, value: f64 },
    /// A nonzero stall rate with `hw_stall_cycles: 0` injects nothing.
    ZeroStallCycles,
    /// A per-queue override names a queue the module does not declare.
    UnknownQueue { queue: usize, declared: usize },
    /// `sample_interval: Some(0)` — a zero-cycle window samples nothing.
    ZeroSampleInterval,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroQueueDepth => {
                write!(f, "queue_depth override of 0: queues need at least one slot")
            }
            ConfigError::MemTooSmall { required, got } => write!(
                f,
                "mem_size {got:#x} too small: need at least {required:#x} \
                 for globals plus per-agent stacks"
            ),
            ConfigError::NoMain => write!(f, "module has no @main function"),
            ConfigError::ZeroWatchdog => {
                write!(f, "watchdog_window of 0 would trip immediately; use a positive window")
            }
            ConfigError::BadFaultRate { field, value } => {
                write!(f, "fault rate {field} = {value} is outside [0, 1]")
            }
            ConfigError::ZeroStallCycles => {
                write!(f, "hw_stall_cycles of 0 with a nonzero hw_stall_rate injects nothing")
            }
            ConfigError::UnknownQueue { queue, declared } => {
                write!(
                    f,
                    "queue_depths override names q{queue} but the module declares \
                     only {declared} queue(s)"
                )
            }
            ConfigError::ZeroSampleInterval => {
                write!(f, "sample_interval of 0: timeline windows need at least one cycle")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[derive(Debug)]
pub enum SimError {
    /// The watchdog saw no agent progress for a whole window. Carries the
    /// structured wait-for diagnosis and everything the run learned.
    Deadlock { report: HangReport, partial: Box<SimReport> },
    /// `max_cycles` exceeded; the partial report is attached so callers
    /// can still render output, metrics, and profile.
    Timeout { max_cycles: u64, partial: Box<SimReport> },
    /// The configuration was rejected before the run started.
    Config(ConfigError),
}

impl SimError {
    /// The partial report, when the run got far enough to produce one.
    pub fn partial_report(&self) -> Option<&SimReport> {
        match self {
            SimError::Deadlock { partial, .. } | SimError::Timeout { partial, .. } => Some(partial),
            SimError::Config(_) => None,
        }
    }

    /// The hang diagnosis, when this is a deadlock.
    pub fn hang_report(&self) -> Option<&HangReport> {
        match self {
            SimError::Deadlock { report, .. } => Some(report),
            _ => None,
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { report, .. } => {
                write!(f, "deadlock at cycle {}", report.cycle)?;
                if !report.chain.is_empty() {
                    write!(f, ": {}", report.chain.join(" -> "))?;
                }
                Ok(())
            }
            SimError::Timeout { max_cycles, .. } => {
                write!(f, "simulation exceeded {max_cycles} cycles")
            }
            SimError::Config(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> SimError {
        SimError::Config(e)
    }
}

/// Reject configurations the simulator would otherwise panic on.
fn validate_config(m: &Module, cfg: &SimConfig, n_agents: usize) -> Result<(), ConfigError> {
    if cfg.queue_depth == Some(0) {
        return Err(ConfigError::ZeroQueueDepth);
    }
    for &(id, depth) in &cfg.queue_depths {
        if depth == 0 {
            return Err(ConfigError::ZeroQueueDepth);
        }
        if id >= m.queues.len() {
            return Err(ConfigError::UnknownQueue { queue: id, declared: m.queues.len() });
        }
    }
    if cfg.watchdog_window == 0 {
        return Err(ConfigError::ZeroWatchdog);
    }
    if cfg.sample_interval == Some(0) {
        return Err(ConfigError::ZeroSampleInterval);
    }
    if let Some(plan) = &cfg.fault {
        if let Some((field, value)) = plan.spec.invalid_rate() {
            return Err(ConfigError::BadFaultRate { field, value });
        }
        if plan.spec.hw_stall_cycles == 0 && plan.spec.hw_stall_rate > 0.0 {
            return Err(ConfigError::ZeroStallCycles);
        }
    }
    // Each agent needs a usable stack region above the globals (the 128
    // floor keeps `stack_regions` arithmetic in range).
    let globals_end =
        m.globals.iter().map(|g| g.addr + g.size).max().unwrap_or(layout::GLOBAL_BASE);
    let base = (globals_end + 63) & !63;
    let required = base.saturating_add(128 * n_agents.max(1) as u32);
    if cfg.mem_size < required {
        return Err(ConfigError::MemTooSmall { required, got: cfg.mem_size });
    }
    Ok(())
}

/// Carve per-thread stack regions out of the memory above the globals.
fn stack_regions(m: &Module, mem_size: u32, n: usize) -> Vec<(u32, u32)> {
    let globals_end =
        m.globals.iter().map(|g| g.addr + g.size).max().unwrap_or(layout::GLOBAL_BASE);
    let base = (globals_end + 63) & !63;
    let region = ((mem_size - base) / (n as u32).max(1)) & !63;
    (0..n)
        .map(|i| {
            let lo = base + region * i as u32;
            (lo, lo + region - 64)
        })
        .collect()
}

/// How a run halted internally; the public [`SimError`] attaches the
/// partial report to these in the simulate wrappers.
enum RunHalt {
    Timeout(u64),
    Deadlock(HangReport),
}

/// Attach the (possibly partial) report to the run's outcome.
fn wrap(halt: Result<(), RunHalt>, report: SimReport) -> Result<SimReport, SimError> {
    match halt {
        Ok(()) => Ok(report),
        Err(RunHalt::Timeout(max_cycles)) => {
            Err(SimError::Timeout { max_cycles, partial: Box::new(report) })
        }
        Err(RunHalt::Deadlock(hang)) => {
            Err(SimError::Deadlock { report: hang, partial: Box::new(report) })
        }
    }
}

/// Pure-software configuration: the whole program runs on the Microblaze.
pub fn simulate_pure_sw(
    m: &Module,
    input: Vec<i32>,
    cfg: &SimConfig,
) -> Result<SimReport, SimError> {
    validate_config(m, cfg, 1)?;
    let main = m.find_func("main").ok_or(ConfigError::NoMain)?;
    let stacks = stack_regions(m, cfg.mem_size, 1);
    let mut shared = Shared::new(
        m,
        cfg.mem_size,
        input,
        cfg.queue_extra(),
        cfg.queue_depth,
        &cfg.queue_depths,
        1,
    );
    if let Some(plan) = &cfg.fault {
        shared.install_faults(plan);
    }
    #[cfg(feature = "obs")]
    if cfg.trace_events > 0 {
        shared.enable_recorder(cfg.trace_events);
    }
    let mut cpu = Cpu::new(0, m, &[main], &stacks);
    let mut profile = cfg.profile.then(|| crate::profile::SimProfile::new(1));
    let mut tl = TimelineState::new(cfg, &shared);
    let halt = run_loop(m, None, &mut shared, Some(&mut cpu), &mut [], cfg, &mut profile, &mut tl);
    let cycles = shared.cycle;
    let agent_names = vec!["cpu".to_string()];
    #[cfg(feature = "obs")]
    let timeline = tl.finish(&shared, &agent_names);
    #[cfg(not(feature = "obs"))]
    let _ = tl;
    #[cfg(feature = "obs")]
    let (events, dropped_events) = shared.take_recorder();
    #[cfg(not(feature = "obs"))]
    let dropped_events = 0;
    let (fault_log, _) = shared.take_fault_log();
    let report = SimReport {
        cycles,
        output: shared.output.clone(),
        cpu_busy_fraction: cpu.busy_cycles as f64 / cycles.max(1) as f64,
        stats: shared.stats,
        hw_threads: 0,
        agent_names,
        dropped_events,
        profile,
        fault_log,
        #[cfg(feature = "obs")]
        events,
        #[cfg(feature = "obs")]
        timeline,
    };
    wrap(halt, report)
}

/// Pure-hardware configuration: the LegUp translation of the whole program
/// as a single hardware thread (the thesis' pure-HW baseline).
///
/// Schedules the module with `cfg.hls` on every call; sweep drivers that
/// already hold a schedule should use [`simulate_pure_hw_scheduled`].
pub fn simulate_pure_hw(
    m: &Module,
    input: Vec<i32>,
    cfg: &SimConfig,
) -> Result<SimReport, SimError> {
    let sched = schedule_module(m, &cfg.hls);
    simulate_pure_hw_scheduled(m, &sched, input, cfg)
}

/// [`simulate_pure_hw`] with a caller-supplied schedule (must have been
/// produced from `m`; HLS is not re-run).
pub fn simulate_pure_hw_scheduled(
    m: &Module,
    sched: &ModuleSchedule,
    input: Vec<i32>,
    cfg: &SimConfig,
) -> Result<SimReport, SimError> {
    validate_config(m, cfg, 1)?;
    let main = m.find_func("main").ok_or(ConfigError::NoMain)?;
    let stacks = stack_regions(m, cfg.mem_size, 1);
    let mut shared = Shared::new(
        m,
        cfg.mem_size,
        input,
        cfg.queue_extra(),
        cfg.queue_depth,
        &cfg.queue_depths,
        1,
    );
    if let Some(plan) = &cfg.fault {
        shared.install_faults(plan);
    }
    #[cfg(feature = "obs")]
    if cfg.trace_events > 0 {
        shared.enable_recorder(cfg.trace_events);
    }
    let mut hw = vec![HwThread::new(0, m, main, stacks[0])];
    let mut profile = cfg.profile.then(|| crate::profile::SimProfile::new(1));
    let mut tl = TimelineState::new(cfg, &shared);
    let halt = run_loop(m, Some(sched), &mut shared, None, &mut hw, cfg, &mut profile, &mut tl);
    let cycles = shared.cycle;
    let agent_names = vec!["hw0".to_string()];
    #[cfg(feature = "obs")]
    let timeline = tl.finish(&shared, &agent_names);
    #[cfg(not(feature = "obs"))]
    let _ = tl;
    #[cfg(feature = "obs")]
    let (events, dropped_events) = shared.take_recorder();
    #[cfg(not(feature = "obs"))]
    let dropped_events = 0;
    let (fault_log, _) = shared.take_fault_log();
    let report = SimReport {
        cycles,
        output: shared.output.clone(),
        cpu_busy_fraction: 0.0,
        stats: shared.stats,
        hw_threads: 1,
        agent_names,
        dropped_events,
        profile,
        fault_log,
        #[cfg(feature = "obs")]
        events,
        #[cfg(feature = "obs")]
        timeline,
    };
    wrap(halt, report)
}

/// The Twill hybrid: partition 0 on the CPU, the rest as HW threads.
///
/// Schedules the partitioned module with `cfg.hls` on every call; sweep
/// drivers that already hold a schedule should use
/// [`simulate_hybrid_scheduled`].
pub fn simulate_hybrid(
    dswp: &DswpResult,
    input: Vec<i32>,
    cfg: &SimConfig,
) -> Result<SimReport, SimError> {
    let sched = schedule_module(&dswp.module, &cfg.hls);
    simulate_hybrid_scheduled(dswp, &sched, input, cfg)
}

/// [`simulate_hybrid`] with a caller-supplied schedule of `dswp.module`
/// (HLS is not re-run).
pub fn simulate_hybrid_scheduled(
    dswp: &DswpResult,
    sched: &ModuleSchedule,
    input: Vec<i32>,
    cfg: &SimConfig,
) -> Result<SimReport, SimError> {
    let m = &dswp.module;
    let sw_entries: Vec<twill_ir::FuncId> =
        dswp.threads.iter().filter(|t| !t.is_hw).map(|t| t.entry).collect();
    let hw_specs: Vec<&twill_dswp::ThreadSpec> = dswp.threads.iter().filter(|t| t.is_hw).collect();
    let total = sw_entries.len() + hw_specs.len();
    validate_config(m, cfg, total)?;
    let stacks = stack_regions(m, cfg.mem_size, total);
    let mut shared = Shared::new(
        m,
        cfg.mem_size,
        input,
        cfg.queue_extra(),
        cfg.queue_depth,
        &cfg.queue_depths,
        total,
    );
    if let Some(plan) = &cfg.fault {
        shared.install_faults(plan);
    }
    #[cfg(feature = "obs")]
    if cfg.trace_events > 0 {
        shared.enable_recorder(cfg.trace_events);
    }
    let mut cpu = Cpu::new(0, m, &sw_entries, &stacks[..sw_entries.len()]);
    // Startup protocol (§4.4/§4.5): the software master StartThread()s each
    // hardware thread through the stream interface (5 cycles apiece); a
    // hardware thread begins executing once its start message arrives.
    cpu.add_startup_charge(hw_specs.len() as u32 * twill_ir::cost::SW_RUNTIME_OP as u32);
    let mut hw: Vec<HwThread> = hw_specs
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut h = HwThread::new(1 + i, m, t.entry, stacks[sw_entries.len() + i]);
            h.set_start_delay((i as u32 + 1) * twill_ir::cost::SW_RUNTIME_OP as u32);
            h
        })
        .collect();
    let mut profile = cfg.profile.then(|| crate::profile::SimProfile::new(total));
    let mut tl = TimelineState::new(cfg, &shared);
    let halt =
        run_loop(m, Some(sched), &mut shared, Some(&mut cpu), &mut hw, cfg, &mut profile, &mut tl);
    let cycles = shared.cycle;
    // One naming authority for simulator tracks, obs exporters, and the
    // hardware counter register map.
    let agent_names = dswp.agent_names();
    debug_assert_eq!(agent_names.len(), 1 + hw.len());
    #[cfg(feature = "obs")]
    let timeline = tl.finish(&shared, &agent_names);
    #[cfg(not(feature = "obs"))]
    let _ = tl;
    #[cfg(feature = "obs")]
    let (events, dropped_events) = shared.take_recorder();
    #[cfg(not(feature = "obs"))]
    let dropped_events = 0;
    let (fault_log, _) = shared.take_fault_log();
    let report = SimReport {
        cycles,
        output: shared.output.clone(),
        cpu_busy_fraction: cpu.busy_cycles as f64 / cycles.max(1) as f64,
        stats: shared.stats,
        hw_threads: hw.len(),
        agent_names,
        dropped_events,
        profile,
        fault_log,
        #[cfg(feature = "obs")]
        events,
        #[cfg(feature = "obs")]
        timeline,
    };
    wrap(halt, report)
}

/// The agent interface the run loop drives. Both agent kinds tick the same
/// way from the loop's perspective; `sched` is ignored by the CPU and
/// required by hardware threads.
trait SimAgent {
    fn agent_id(&self) -> usize;
    fn stall_class(&self) -> StallClass;
    fn attr_site(&self) -> Option<(usize, usize)>;
    fn tick(&mut self, m: &Module, sched: Option<&ModuleSchedule>, shared: &mut Shared)
        -> Progress;
}

impl SimAgent for Cpu {
    fn agent_id(&self) -> usize {
        self.agent_id
    }
    fn stall_class(&self) -> StallClass {
        Cpu::stall_class(self)
    }
    fn attr_site(&self) -> Option<(usize, usize)> {
        Cpu::attr_site(self)
    }
    fn tick(
        &mut self,
        m: &Module,
        _sched: Option<&ModuleSchedule>,
        shared: &mut Shared,
    ) -> Progress {
        Cpu::tick(self, m, shared)
    }
}

impl SimAgent for HwThread {
    fn agent_id(&self) -> usize {
        self.agent_id
    }
    fn stall_class(&self) -> StallClass {
        HwThread::stall_class(self)
    }
    fn attr_site(&self) -> Option<(usize, usize)> {
        HwThread::attr_site(self)
    }
    fn tick(
        &mut self,
        m: &Module,
        sched: Option<&ModuleSchedule>,
        shared: &mut Shared,
    ) -> Progress {
        HwThread::tick(self, m, sched.expect("HW threads need a schedule"), shared)
    }
}

/// Tick one agent and charge the cycle: progress counters, per-class
/// attribution, and (when profiling) the instruction-site table. The single
/// accounting site both the naive loop and the fast-forward re-sync ticks
/// go through. Returns whether the agent made progress (watchdog feed).
fn tick_agent<A: SimAgent>(
    a: &mut A,
    m: &Module,
    sched: Option<&ModuleSchedule>,
    shared: &mut Shared,
    profile: &mut Option<crate::profile::SimProfile>,
) -> bool {
    let aid = a.agent_id();
    shared.set_agent(aid as u16);
    let mut progressed = false;
    let class = match a.tick(m, sched, shared) {
        Progress::Busy => {
            progressed = true;
            shared.stats.agent_busy[aid] += 1;
            StallClass::Busy
        }
        Progress::Blocked => {
            shared.stats.agent_blocked[aid] += 1;
            a.stall_class()
        }
        Progress::Finished => StallClass::Idle,
    };
    shared.stats.agent_cycles[aid].add(class);
    if let Some(p) = profile.as_mut() {
        let site = if class == StallClass::Idle { None } else { a.attr_site() };
        p.agents[aid].record(site, class);
    }
    progressed
}

/// Bulk-charge `k` skipped cycles for one agent under its (constant) skip
/// spec: the fast-forward twin of the accounting in [`tick_agent`].
fn charge_skip(
    shared: &mut Shared,
    profile: &mut Option<crate::profile::SimProfile>,
    aid: usize,
    spec: &SkipSpec,
    site: Option<(usize, usize)>,
    k: u64,
) {
    match spec.progress {
        Progress::Busy => shared.stats.agent_busy[aid] += k,
        Progress::Blocked => shared.stats.agent_blocked[aid] += k,
        Progress::Finished => {}
    }
    shared.stats.agent_cycles[aid].add_n(spec.class, k);
    if let Some(kind) = spec.stall_kind {
        shared.note_stall_bulk(kind, k);
    }
    if let Some(p) = profile.as_mut() {
        let site = if spec.class == StallClass::Idle { None } else { site };
        p.agents[aid].record_n(site, spec.class, k);
    }
}

/// Try to leap the clock from `shared.cycle` to just before the earliest
/// cycle anything observable can happen. Returns whether a leap occurred
/// (the caller re-enters the loop top either way).
///
/// The target is the minimum over every agent's `next_interesting_cycle`,
/// capped so the leap never crosses a pinned fault's cycle, the watchdog's
/// firing edge, or `max_cycles`. Skipped cycles are bulk-charged to each
/// agent's current stall class at both stats and profile granularity, and
/// the HW rotation advances as if each cycle had been ticked. When the
/// fault plan draws randomness every cycle (memory-upset rate, HW-stall
/// rate), the draws are replayed per skipped cycle in exact tick order —
/// without executing any agent — so the splitmix64 stream, fault log, and
/// trace events stay byte-identical to the naive loop.
#[allow(clippy::too_many_arguments)]
fn try_fast_forward(
    mut cpu: Option<&mut Cpu>,
    hw: &mut [HwThread],
    shared: &mut Shared,
    cfg: &SimConfig,
    profile: &mut Option<crate::profile::SimProfile>,
    rotation: &mut usize,
    last_progress_cycle: &mut u64,
    next_sample_boundary: u64,
) -> bool {
    let now = shared.cycle;
    if shared.has_armed_stalls() {
        // An armed pinned stall fires at its target agent's next tick;
        // that tick must actually happen.
        return false;
    }
    let mut target = u64::MAX;
    if let Some(c) = cpu.as_deref() {
        target = target.min(c.next_interesting_cycle(now, shared));
    }
    for h in hw.iter() {
        target = target.min(h.next_interesting_cycle(now, shared));
    }
    if let Some(p) = shared.next_pinned_fault_cycle() {
        target = target.min(p.max(now + 1));
    }
    // Timeline sampling: a leap may land exactly on a sample boundary but
    // never cross it, so the boundary snapshot sees the same counter
    // state the naive loop would (byte-identical timelines either way;
    // `u64::MAX` when sampling is off).
    target = target.min(next_sample_boundary.saturating_add(1));
    if target <= now + 1 {
        return false;
    }
    // Every agent can now be skipped (its horizon is >= target >= now+2),
    // so the per-cycle accounting of the whole span is a constant spec.
    let cpu_spec = cpu.as_deref().map(|c| c.skip_spec());
    let progressed_const = cpu_spec.map(|s| s.progress == Progress::Busy).unwrap_or(false)
        || hw.iter().any(|h| h.skip_spec().progress == Progress::Busy);
    if !progressed_const {
        // A fully-blocked span must stop exactly where the watchdog would
        // fire; the normal iteration at that cycle then fires it.
        target =
            target.min(last_progress_cycle.saturating_add(cfg.watchdog_window).saturating_add(1));
    }
    // Skipping through cycle max_cycles is fine (the naive loop ticks it);
    // the loop-top check then reports the timeout with identical stats.
    target = target.min(cfg.max_cycles.saturating_add(1));
    if target <= now + 1 {
        return false;
    }
    let k = target - now - 1;
    let n = hw.len();
    let live_hw = hw.iter().any(|h| !h.is_finished());

    if !shared.fault_draws_per_cycle(live_hw) {
        // O(1) leap: no per-cycle randomness to reproduce. Pinned faults
        // cannot come due inside the span (target is capped at the next
        // pinned cycle), so deferring `begin_cycle`'s arming to the next
        // real tick is unobservable; bus budgets reset unused each naive
        // span cycle and are reset again at the next `begin_cycle`.
        shared.skip_cycles(k);
        if let (Some(c), Some(spec)) = (cpu.as_deref_mut(), cpu_spec) {
            let site = c.attr_site();
            c.apply_skip(k);
            charge_skip(shared, profile, c.agent_id, &spec, site, k);
        }
        for h in hw.iter_mut() {
            let spec = h.skip_spec();
            let site = h.attr_site();
            h.apply_skip(k);
            charge_skip(shared, profile, h.agent_id, &spec, site, k);
        }
        if n > 0 {
            *rotation = (*rotation + (k % n as u64) as usize) % n;
            // Restore the event track the naive loop would have left
            // current: the last HW thread ticked in the final skipped
            // cycle's rotation (a pinned fault firing at `begin_cycle` of
            // the next cycle is recorded against it).
            let last_idx = (*rotation + 2 * n - 2) % n;
            shared.set_agent(hw[last_idx].agent_id as u16);
        }
        if progressed_const {
            *last_progress_cycle = shared.cycle;
        }
    } else {
        // Per-cycle fault-draw replay: advance the clock cycle by cycle,
        // consuming exactly the draws the naive loop would (memory upsets
        // in `begin_cycle`, stall draws per live HW thread in rotation
        // order) — but without executing any agent. An injected stall
        // changes the stalled agent's horizon, so the span ends early
        // there and the main loop recomputes.
        let mut injected = false;
        for _ in 0..k {
            shared.begin_cycle();
            let mut progressed = false;
            if let (Some(c), Some(spec)) = (cpu.as_deref_mut(), cpu_spec) {
                shared.set_agent(c.agent_id as u16);
                let site = c.attr_site();
                c.apply_skip(1);
                progressed |= spec.progress == Progress::Busy;
                charge_skip(shared, profile, c.agent_id, &spec, site, 1);
            }
            for i in 0..n {
                let idx = (*rotation + i) % n;
                let aid = hw[idx].agent_id;
                shared.set_agent(aid as u16);
                if !hw[idx].is_finished() {
                    if let Some(cycles) = shared.fault_stall(aid) {
                        hw[idx].inject_stall(cycles);
                        injected = true;
                    }
                }
                // Spec after any injection: the naive tick of a freshly
                // stalled agent burns one charge cycle as busy.
                let spec = hw[idx].skip_spec();
                let site = hw[idx].attr_site();
                hw[idx].apply_skip(1);
                progressed |= spec.progress == Progress::Busy;
                charge_skip(shared, profile, aid, &spec, site, 1);
            }
            if n > 0 {
                *rotation = (*rotation + 1) % n;
            }
            if progressed {
                *last_progress_cycle = shared.cycle;
            }
            if injected {
                break;
            }
        }
    }
    true
}

/// Interval-sampling state for the counter timeline (DESIGN.md §15). The
/// boundary bookkeeping is unconditional — fast-forward spans are capped
/// at the next boundary whenever sampling is on, which never changes any
/// observable counter — while the recorded intervals only exist under the
/// `obs` feature. With `sample_interval` unset, `next_boundary` is
/// `u64::MAX` and both loop paths reduce to a single dead comparison.
struct TimelineState {
    /// Sample window length in cycles (0 = sampling off).
    interval: u64,
    /// Next cycle to snapshot at (`u64::MAX` when off).
    next_boundary: u64,
    #[cfg(feature = "obs")]
    rec: Option<TimelineRec>,
}

/// The `obs`-side half of [`TimelineState`]: last-boundary counter
/// snapshots (so each interval records deltas) and the accumulated
/// intervals.
#[cfg(feature = "obs")]
struct TimelineRec {
    last_threads: Vec<crate::shared::ClassCycles>,
    /// Per queue: (pushes, pops, full_stalls, empty_stalls) at the last
    /// boundary.
    last_queues: Vec<(u64, u64, u64, u64)>,
    last_sampled: u64,
    intervals: Vec<twill_obs::Interval>,
}

impl TimelineState {
    fn new(cfg: &SimConfig, #[allow(unused)] shared: &Shared) -> TimelineState {
        let interval = cfg.sample_interval.unwrap_or(0);
        TimelineState {
            interval,
            next_boundary: if interval == 0 { u64::MAX } else { interval },
            #[cfg(feature = "obs")]
            rec: (interval != 0).then(|| TimelineRec {
                last_threads: vec![Default::default(); shared.stats.agent_cycles.len()],
                last_queues: vec![(0, 0, 0, 0); shared.queue_count()],
                last_sampled: 0,
                intervals: Vec::new(),
            }),
        }
    }

    /// Snapshot the counter deltas when the clock sits on a boundary. The
    /// run loop calls this after every naive cycle and after every
    /// fast-forward leap; leaps are capped at `next_boundary`, so the
    /// clock lands exactly on each boundary and never jumps one.
    fn maybe_sample(&mut self, shared: &Shared) {
        if shared.cycle < self.next_boundary {
            return;
        }
        debug_assert_eq!(shared.cycle, self.next_boundary, "a span leapt across a boundary");
        self.next_boundary = self.next_boundary.saturating_add(self.interval);
        self.record(shared);
    }

    /// Record the window ending at the current cycle.
    #[cfg(feature = "obs")]
    fn record(&mut self, shared: &Shared) {
        let Some(rec) = self.rec.as_mut() else { return };
        let threads = shared
            .stats
            .agent_cycles
            .iter()
            .zip(&rec.last_threads)
            .map(|(cur, last)| twill_obs::CycleBreakdown {
                busy: cur.busy - last.busy,
                queue_full: cur.queue_full - last.queue_full,
                queue_empty: cur.queue_empty - last.queue_empty,
                sem: cur.sem - last.sem,
                mem_bus: cur.mem_bus - last.mem_bus,
                module_bus: cur.module_bus - last.module_bus,
                idle: cur.idle - last.idle,
            })
            .collect();
        let queues = shared
            .stats
            .queue_stats
            .iter()
            .zip(&rec.last_queues)
            .enumerate()
            .map(|(i, (q, last))| twill_obs::QueueWindow {
                pushes: q.pushes - last.0,
                pops: q.pops - last.1,
                full_stalls: q.full_stalls - last.2,
                empty_stalls: q.empty_stalls - last.3,
                occupancy: shared.queue_occupancy(i),
            })
            .collect();
        rec.intervals.push(twill_obs::Interval {
            start: rec.last_sampled + 1,
            end: shared.cycle,
            threads,
            queues,
        });
        rec.last_threads = shared.stats.agent_cycles.clone();
        rec.last_queues = shared
            .stats
            .queue_stats
            .iter()
            .map(|q| (q.pushes, q.pops, q.full_stalls, q.empty_stalls))
            .collect();
        rec.last_sampled = shared.cycle;
    }

    #[cfg(not(feature = "obs"))]
    fn record(&mut self, _shared: &Shared) {}

    /// Flush the final partial window (a run rarely halts exactly on a
    /// boundary — this keeps per-interval deltas summing to the end-of-run
    /// totals, including for timeout/deadlock partial reports) and
    /// assemble the timeline. `None` when sampling was off.
    #[cfg(feature = "obs")]
    fn finish(mut self, shared: &Shared, thread_names: &[String]) -> Option<twill_obs::Timeline> {
        if shared.cycle > self.rec.as_ref()?.last_sampled {
            self.record(shared);
        }
        let rec = self.rec?;
        Some(twill_obs::Timeline {
            sample_interval: self.interval,
            thread_names: thread_names.to_vec(),
            queue_names: (0..shared.queue_count()).map(|i| format!("q{i}")).collect(),
            intervals: rec.intervals,
        })
    }
}

/// The global cycle loop: CPU ticks first (module-bus priority, §4.1),
/// then the hardware threads in rotating order (longest-waiting fairness).
/// With `cfg.fast_forward` the loop leaps over cycles no agent can act on
/// (see [`try_fast_forward`]); otherwise every cycle is ticked naively.
#[allow(clippy::too_many_arguments)]
fn run_loop(
    m: &Module,
    sched: Option<&ModuleSchedule>,
    shared: &mut Shared,
    mut cpu: Option<&mut Cpu>,
    hw: &mut [HwThread],
    cfg: &SimConfig,
    profile: &mut Option<crate::profile::SimProfile>,
    tl: &mut TimelineState,
) -> Result<(), RunHalt> {
    let mut rotation = 0usize;
    let mut last_progress_cycle = 0u64;
    loop {
        let cpu_done = cpu.as_ref().map(|c| c.is_finished()).unwrap_or(true);
        let hw_done = hw.iter().all(|h| h.is_finished());
        if cpu_done && hw_done {
            // Cycle-accounting invariant: every agent has every elapsed
            // cycle attributed to exactly one stall class.
            if cfg!(debug_assertions) {
                for (i, c) in shared.stats.agent_cycles.iter().enumerate() {
                    debug_assert_eq!(
                        c.total(),
                        shared.cycle,
                        "cycle accounting broke for agent {i}: {c:?}"
                    );
                }
                // Same invariant at instruction granularity: per-site
                // attributed cycles sum exactly to each agent's total.
                if let Some(p) = profile.as_ref() {
                    for (i, a) in p.agents.iter().enumerate() {
                        debug_assert_eq!(
                            a.total(),
                            shared.cycle,
                            "instruction attribution broke for agent {i}"
                        );
                    }
                }
            }
            return Ok(());
        }
        if shared.cycle >= cfg.max_cycles {
            return Err(RunHalt::Timeout(cfg.max_cycles));
        }
        if cfg.fast_forward
            && try_fast_forward(
                cpu.as_deref_mut(),
                hw,
                shared,
                cfg,
                profile,
                &mut rotation,
                &mut last_progress_cycle,
                tl.next_boundary,
            )
        {
            tl.maybe_sample(shared);
            continue;
        }
        shared.begin_cycle();
        let mut progressed = false;
        if let Some(c) = cpu.as_deref_mut() {
            progressed |= tick_agent(c, m, sched, shared, profile);
        }
        let n = hw.len();
        if n > 0 {
            for i in 0..n {
                let idx = (rotation + i) % n;
                let aid = hw[idx].agent_id;
                shared.set_agent(aid as u16);
                // Injected transient stall: charged as busy latency so the
                // thread rides it out (and the watchdog sees progress).
                if !hw[idx].is_finished() {
                    if let Some(cycles) = shared.fault_stall(aid) {
                        hw[idx].inject_stall(cycles);
                    }
                }
                progressed |= tick_agent(&mut hw[idx], m, sched, shared, profile);
            }
            rotation = (rotation + 1) % n;
        }
        tl.maybe_sample(shared);
        if progressed {
            last_progress_cycle = shared.cycle;
        } else if shared.cycle - last_progress_cycle > cfg.watchdog_window {
            // The watchdog fired: snapshot every agent's blocked state and
            // walk the wait-for graph into a structured diagnosis.
            let mut snaps: Vec<AgentSnapshot> = Vec::new();
            if let Some(c) = cpu.as_deref() {
                snaps.push(AgentSnapshot {
                    name: "cpu".to_string(),
                    entries: c.entries().to_vec(),
                    state: WaitState::classify(c.pending_kind(), c.stall_class(), c.is_finished()),
                    site: c.attr_site(),
                });
            }
            for h in hw.iter() {
                snaps.push(AgentSnapshot {
                    name: format!("hw{}", h.agent_id),
                    entries: vec![h.entry()],
                    state: WaitState::classify(h.pending_kind(), h.stall_class(), h.is_finished()),
                    site: h.attr_site(),
                });
            }
            let report = build_hang_report(m, shared.cycle, cfg.watchdog_window, &snaps);
            return Err(RunHalt::Deadlock(report));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_dswp::{run_dswp, DswpOptions};

    fn prepare(src: &str) -> Module {
        let mut m = twill_frontend::compile("t", src).unwrap();
        twill_passes::run_standard_pipeline(&mut m, &Default::default());
        m
    }

    const PROGRAM: &str = r#"
int main() {
  int acc = 0;
  for (int i = 0; i < 64; i++) {
    int x = (i * 7 + 3) ^ (i << 2);
    int y = x % 11;
    acc += y * y;
  }
  out(acc);
  return acc;
}
"#;

    #[test]
    fn pure_sw_matches_reference_output() {
        let m = prepare(PROGRAM);
        let (expect, _, _) = twill_ir::interp::run_main(&m, vec![], 1_000_000_000).unwrap();
        let rep = simulate_pure_sw(&m, vec![], &SimConfig::default()).unwrap();
        assert_eq!(rep.output, expect);
        assert!(rep.cycles > 0);
    }

    #[test]
    fn pure_hw_matches_and_is_faster_than_sw() {
        let m = prepare(PROGRAM);
        let (expect, _, _) = twill_ir::interp::run_main(&m, vec![], 1_000_000_000).unwrap();
        let sw = simulate_pure_sw(&m, vec![], &SimConfig::default()).unwrap();
        let hw = simulate_pure_hw(&m, vec![], &SimConfig::default()).unwrap();
        assert_eq!(hw.output, expect);
        assert!(hw.cycles < sw.cycles, "HW ({}) should beat SW ({})", hw.cycles, sw.cycles);
    }

    #[test]
    fn hybrid_matches_reference() {
        let m = prepare(PROGRAM);
        let (expect, _, _) = twill_ir::interp::run_main(&m, vec![], 1_000_000_000).unwrap();
        let d = run_dswp(&m, &DswpOptions { num_partitions: 2, ..Default::default() });
        let rep = simulate_hybrid(&d, vec![], &SimConfig::default()).unwrap();
        assert_eq!(rep.output, expect);
        assert!(rep.hw_threads >= 1);
        assert!(rep.cpu_busy_fraction > 0.0 && rep.cpu_busy_fraction <= 1.0);
    }

    #[test]
    fn queue_latency_slows_hybrid() {
        let m = prepare(PROGRAM);
        // Force a 2-way split (explicit split points bypass the cost-model
        // merge) so queue traffic actually exists.
        let d = run_dswp(
            &m,
            &DswpOptions {
                num_partitions: 2,
                split_points: Some(vec![0.5, 0.5]),
                ..Default::default()
            },
        );
        assert!(d.stats.queues > 0, "expected queue traffic");
        let fast = simulate_hybrid(&d, vec![], &SimConfig::default()).unwrap();
        let slow =
            simulate_hybrid(&d, vec![], &SimConfig { queue_latency: 128, ..Default::default() })
                .unwrap();
        assert_eq!(fast.output, slow.output);
        assert!(slow.cycles > fast.cycles, "{} !> {}", slow.cycles, fast.cycles);
    }

    #[test]
    fn small_queues_still_correct() {
        let m = prepare(PROGRAM);
        let d = run_dswp(&m, &DswpOptions { num_partitions: 3, ..Default::default() });
        let base = simulate_hybrid(&d, vec![], &SimConfig::default()).unwrap();
        let tiny =
            simulate_hybrid(&d, vec![], &SimConfig { queue_depth: Some(2), ..Default::default() })
                .unwrap();
        assert_eq!(base.output, tiny.output);
        assert!(tiny.cycles >= base.cycles);
    }

    #[test]
    fn profiling_is_observation_only_and_sums_to_cycles() {
        let m = prepare(PROGRAM);
        let d = run_dswp(
            &m,
            &DswpOptions {
                num_partitions: 2,
                split_points: Some(vec![0.5, 0.5]),
                ..Default::default()
            },
        );
        let plain = simulate_hybrid(&d, vec![], &SimConfig::default()).unwrap();
        let rep = simulate_hybrid(&d, vec![], &SimConfig { profile: true, ..Default::default() })
            .unwrap();
        // Attribution must not perturb timing or results.
        assert_eq!(rep.cycles, plain.cycles);
        assert_eq!(rep.output, plain.output);
        assert!(plain.profile.is_none());
        // Per-agent attributed cycles sum exactly to the run's cycles.
        let p = rep.profile.as_ref().unwrap();
        assert_eq!(p.agents.len(), rep.agent_names.len());
        for (i, a) in p.agents.iter().enumerate() {
            assert_eq!(a.total(), rep.cycles, "agent {i}");
        }
        // Folding to source lines loses nothing per thread.
        #[cfg(feature = "obs")]
        {
            let sp = rep.source_profile(&d.module).unwrap();
            for (name, total) in sp.thread_totals() {
                assert_eq!(total, rep.cycles, "thread {name}");
            }
            // The loop body carries real source lines (not all synthetic).
            assert!(sp.samples.iter().any(|s| s.line != 0 && s.cycles.total() > 0));
        }
    }

    #[test]
    fn zero_sample_interval_is_rejected() {
        let m = prepare(PROGRAM);
        let cfg = SimConfig { sample_interval: Some(0), ..Default::default() };
        match simulate_pure_sw(&m, vec![], &cfg) {
            Err(SimError::Config(ConfigError::ZeroSampleInterval)) => {}
            other => panic!("expected ZeroSampleInterval, got {other:?}"),
        }
        assert!(ConfigError::ZeroSampleInterval.to_string().contains("sample_interval"));
    }

    #[test]
    fn sampling_is_observation_only_and_tiles_the_run() {
        let m = prepare(PROGRAM);
        let d = run_dswp(
            &m,
            &DswpOptions {
                num_partitions: 2,
                split_points: Some(vec![0.5, 0.5]),
                ..Default::default()
            },
        );
        let plain = simulate_hybrid(&d, vec![], &SimConfig::default()).unwrap();
        let cfg = SimConfig { sample_interval: Some(64), ..Default::default() };
        let rep = simulate_hybrid(&d, vec![], &cfg).unwrap();
        // Sampling must not perturb timing or results.
        assert_eq!(rep.cycles, plain.cycles);
        assert_eq!(rep.output, plain.output);
        #[cfg(feature = "obs")]
        {
            assert!(plain.timeline.is_none(), "no timeline unless sampling is on");
            let t = rep.timeline.as_ref().expect("sampled run carries a timeline");
            assert_eq!(t.sample_interval, 64);
            assert_eq!(t.thread_names, rep.agent_names);
            // Intervals tile [1, cycles] exactly: consecutive, no gaps.
            assert_eq!(t.total_cycles(), rep.cycles);
            let mut expect_start = 1;
            for iv in &t.intervals {
                assert_eq!(iv.start, expect_start);
                assert!(iv.end >= iv.start);
                expect_start = iv.end + 1;
            }
            // Per-interval deltas sum exactly to the end-of-run totals.
            for (tot, cc) in t.thread_totals().iter().zip(&rep.stats.agent_cycles) {
                assert_eq!(tot.total(), rep.cycles);
                assert_eq!(tot.busy, cc.busy);
                assert_eq!(tot.queue_full, cc.queue_full);
                assert_eq!(tot.idle, cc.idle);
            }
            for (tot, q) in t.queue_totals().iter().zip(&rep.stats.queue_stats) {
                assert_eq!(tot.pushes, q.pushes);
                assert_eq!(tot.pops, q.pops);
                assert_eq!(tot.full_stalls, q.full_stalls);
                assert_eq!(tot.empty_stalls, q.empty_stalls);
            }
        }
    }

    #[test]
    fn io_program_roundtrip() {
        let m = prepare("int main() { int a = in(); int b = in(); out(a * b + 1); return 0; }");
        let rep = simulate_pure_sw(&m, vec![6, 7], &SimConfig::default()).unwrap();
        assert_eq!(rep.output, vec![43]);
        let rep = simulate_pure_hw(&m, vec![6, 7], &SimConfig::default()).unwrap();
        assert_eq!(rep.output, vec![43]);
    }

    #[test]
    fn memory_program_all_three_configs() {
        let src = r#"
int buf[32];
int main() {
  for (int i = 0; i < 32; i++) buf[i] = i * i;
  int s = 0;
  for (int i = 0; i < 32; i++) s += buf[i];
  out(s);
  return 0;
}
"#;
        let m = prepare(src);
        let (expect, _, _) = twill_ir::interp::run_main(&m, vec![], 1_000_000_000).unwrap();
        assert_eq!(simulate_pure_sw(&m, vec![], &SimConfig::default()).unwrap().output, expect);
        assert_eq!(simulate_pure_hw(&m, vec![], &SimConfig::default()).unwrap().output, expect);
        let d = run_dswp(&m, &DswpOptions { num_partitions: 2, ..Default::default() });
        assert_eq!(simulate_hybrid(&d, vec![], &SimConfig::default()).unwrap().output, expect);
    }

    #[test]
    fn function_calls_simulate_in_all_configs() {
        let src = r#"
int square(int x) { return x * x; }
int step(int a, int b) { return square(a) + b % 13; }
int main() {
  int acc = 0;
  for (int i = 0; i < 20; i++) acc = step(i, acc);
  out(acc);
  return 0;
}
"#;
        // Disable inlining so calls survive to the simulator.
        let mut m = twill_frontend::compile("t", src).unwrap();
        let opts = twill_passes::PipelineOptions {
            inline: twill_passes::inline::InlineOptions {
                small_threshold: 0,
                single_site_threshold: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        twill_passes::run_standard_pipeline(&mut m, &opts);
        assert!(m.funcs.len() > 1, "calls should survive");
        let (expect, _, _) = twill_ir::interp::run_main(&m, vec![], 1_000_000_000).unwrap();
        assert_eq!(simulate_pure_sw(&m, vec![], &SimConfig::default()).unwrap().output, expect);
        assert_eq!(simulate_pure_hw(&m, vec![], &SimConfig::default()).unwrap().output, expect);
        let d = run_dswp(&m, &DswpOptions { num_partitions: 2, ..Default::default() });
        assert_eq!(simulate_hybrid(&d, vec![], &SimConfig::default()).unwrap().output, expect);
    }
}
