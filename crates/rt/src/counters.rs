//! Simulated hardware performance-counter readback (DESIGN.md §14).
//!
//! A deployed Twill design emitted with `--hw-counters` carries a
//! `twill_perf` register file; a host tool reads it one 32-bit word at a
//! time over the runtime interface. [`CounterBank`] models exactly that
//! artifact for a simulated run: it holds the word image the synthesized
//! counters would contain when the run finishes, serves single-word reads
//! ([`CounterBank::read_word`], out-of-range addresses return 0 like the
//! Verilog mux's `default` arm), and produces the raw [`CounterDump`] a
//! readback loop collects. Because the words are encoded through the same
//! [`RegMap`] the Verilog mux is generated from, decoding a dump on the
//! obs side must reproduce the simulator's `ClassCycles`/`QueueStat`
//! numbers exactly — the counter↔metric equivalence contract the
//! `hw_counters` test suite asserts in both loop modes.

use crate::system::SimReport;
use twill_obs::regmap::{CounterDump, QueueDesc, RegMap};

/// The post-run word image of one design's `twill_perf` register file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterBank {
    regmap: RegMap,
    words: Vec<u32>,
}

impl CounterBank {
    /// Build the counter image a `--hw-counters` deployment of `design`
    /// would hold after the run `rep` describes. The register map is
    /// derived from the report's own agent and queue populations — the
    /// same shape `twill-hls` emits for the corresponding module.
    pub fn from_report(design: &str, rep: &SimReport) -> CounterBank {
        let metrics = rep.metrics();
        let queues = metrics
            .queues
            .iter()
            .map(|q| QueueDesc { name: q.name.clone(), depth: q.depth })
            .collect();
        let regmap = RegMap::new(design, rep.agent_names.clone(), queues);
        let dump = regmap
            .encode(&metrics)
            .expect("a report's metrics always match the map derived from them");
        CounterBank { regmap, words: dump.words }
    }

    /// The register map this bank implements (serialize with
    /// [`RegMap::to_json`] for the `--emit-regmap` artifact).
    pub fn regmap(&self) -> &RegMap {
        &self.regmap
    }

    /// One `rt_fn`-10 word read. Unmapped addresses read 0, matching the
    /// generated mux's `default` arm.
    pub fn read_word(&self, addr: u32) -> u32 {
        self.words.get(addr as usize).copied().unwrap_or(0)
    }

    /// The full readback a host dump tool performs: loop `rt_target` over
    /// every mapped word in address order.
    pub fn dump(&self) -> CounterDump {
        CounterDump { words: (0..self.regmap.words()).map(|a| self.read_word(a)).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_obs::regmap::REGMAP_MAGIC;

    fn tiny_report() -> SimReport {
        let src = "queue q0 i32 x 8\nfunc @main() -> void {\nbb0:\n  out 7:i32\n  ret\n}\n";
        let m = twill_ir::parser::parse_module(src).unwrap();
        let d = twill_dswp::run_dswp(&m, &twill_dswp::DswpOptions::default());
        crate::simulate_hybrid(&d, vec![], &crate::SimConfig::default()).unwrap()
    }

    #[test]
    fn bank_serves_words_and_round_trips_through_its_map() {
        let rep = tiny_report();
        let bank = CounterBank::from_report("tiny", &rep);
        assert_eq!(bank.read_word(0), REGMAP_MAGIC);
        // Out-of-range reads hit the Verilog default arm.
        assert_eq!(bank.read_word(bank.regmap().words() + 100), 0);
        let dump = bank.dump();
        assert_eq!(dump.words.len() as u32, bank.regmap().words());
        let decoded = bank.regmap().decode(&dump).unwrap();
        assert_eq!(decoded, twill_obs::regmap::hardware_view(&rep.metrics()));
    }
}
