//! Shared simulator state: buses, runtime primitives, memory, I/O, stats.

use std::collections::VecDeque;
use twill_ir::{Module, QueueId, SemId};

/// A runtime operation an agent can have in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Enqueue(QueueId, i64),
    Dequeue(QueueId),
    SemRaise(SemId, u32),
    SemLower(SemId, u32),
    /// Memory-bus load (HW threads only): address, width bytes.
    MemLoad(u32, twill_ir::Ty),
    /// Memory-bus store.
    MemStore(u32, twill_ir::Ty, i64),
    Out(i64),
    In,
}

impl OpKind {
    fn uses_module_bus(&self) -> bool {
        !matches!(self, OpKind::MemLoad(..) | OpKind::MemStore(..))
    }
}

/// Progress of an in-flight operation.
#[derive(Debug, Clone, Copy)]
pub enum PendState {
    /// Waiting for a bus grant.
    NeedBus,
    /// Granted, but the primitive can't serve yet (queue full/empty, …).
    WaitResource,
    /// Serving: remaining cycles until completion.
    Latency(u32),
    /// Completed with result payload.
    Done(i64),
}

/// An agent's in-flight runtime operation.
#[derive(Debug, Clone, Copy)]
pub struct Pending {
    pub kind: OpKind,
    pub state: PendState,
    /// Base service latency once the resource is available.
    pub base_latency: u32,
}

/// One traced runtime event (enabled via `SimConfig::trace`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A value entered a queue: (cycle, queue, occupancy after).
    Enqueue(u64, QueueId, u32),
    /// A value left a queue: (cycle, queue, occupancy after).
    Dequeue(u64, QueueId, u32),
    /// A semaphore changed: (cycle, sem index, value after).
    Sem(u64, u32, u32),
    /// A word was written to the output stream: (cycle, value).
    Out(u64, i32),
}

impl TraceEvent {
    pub fn cycle(&self) -> u64 {
        match self {
            TraceEvent::Enqueue(c, ..)
            | TraceEvent::Dequeue(c, ..)
            | TraceEvent::Sem(c, ..)
            | TraceEvent::Out(c, _) => *c,
        }
    }
}

/// Render a trace as readable text (one event per line).
pub fn format_trace(events: &[TraceEvent]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for e in events {
        match e {
            TraceEvent::Enqueue(c, q, occ) => {
                writeln!(out, "{c:>10}  enq  {q}  occupancy={occ}").unwrap()
            }
            TraceEvent::Dequeue(c, q, occ) => {
                writeln!(out, "{c:>10}  deq  {q}  occupancy={occ}").unwrap()
            }
            TraceEvent::Sem(c, s, v) => writeln!(out, "{c:>10}  sem  sem{s} -> {v}").unwrap(),
            TraceEvent::Out(c, v) => writeln!(out, "{c:>10}  out  {v}").unwrap(),
        }
    }
    out
}

/// Simulation counters.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    pub cycles: u64,
    pub module_bus_grants: u64,
    pub module_bus_conflicts: u64,
    pub mem_bus_grants: u64,
    pub mem_bus_conflicts: u64,
    pub queue_full_stalls: u64,
    pub queue_empty_stalls: u64,
    pub sem_stalls: u64,
    /// Per-agent: cycles spent blocked on runtime ops.
    pub agent_blocked: Vec<u64>,
    /// Per-agent: cycles doing useful work (issue or compute).
    pub agent_busy: Vec<u64>,
    /// Peak simultaneous occupancy per queue.
    pub queue_peak: Vec<u32>,
}

struct SimQueue {
    items: VecDeque<i64>,
    cap: usize,
}

/// Central shared state.
pub struct Shared {
    pub cycle: u64,
    pub mem: Vec<u8>,
    pub input: Vec<i32>,
    pub in_pos: usize,
    pub output: Vec<i32>,
    queues: Vec<SimQueue>,
    sems: Vec<u32>,
    sem_max: Vec<u32>,
    /// Extra per-operation queue latency (Fig 6.5 sweeps this; 0 extra at
    /// the thesis' 2-cycle baseline).
    pub queue_extra_latency: u32,
    /// Module-bus grant budget left this cycle (1 msg/cycle).
    module_bus_left: u8,
    /// Memory-bus grant budget left this cycle.
    mem_bus_left: u8,
    pub stats: SimStats,
    /// Event trace (bounded; None = disabled).
    pub trace: Option<Vec<TraceEvent>>,
    pub trace_limit: usize,
}

impl Shared {
    pub fn new(
        m: &Module,
        mem_size: u32,
        input: Vec<i32>,
        queue_extra_latency: u32,
        queue_depth_override: Option<u32>,
        n_agents: usize,
    ) -> Shared {
        Shared {
            cycle: 0,
            mem: twill_ir::layout::initial_memory(m, mem_size),
            input,
            in_pos: 0,
            output: Vec::new(),
            queues: m
                .queues
                .iter()
                .map(|q| SimQueue {
                    items: VecDeque::new(),
                    cap: queue_depth_override.unwrap_or(q.depth) as usize,
                })
                .collect(),
            sems: m.sems.iter().map(|s| s.initial).collect(),
            sem_max: m.sems.iter().map(|s| s.max).collect(),
            queue_extra_latency,
            module_bus_left: 1,
            mem_bus_left: 1,
            stats: SimStats {
                agent_blocked: vec![0; n_agents],
                agent_busy: vec![0; n_agents],
                queue_peak: vec![0; m.queues.len()],
                ..Default::default()
            },
            trace: None,
            trace_limit: 0,
        }
    }

    /// Enable event tracing, keeping at most `limit` events.
    pub fn enable_trace(&mut self, limit: usize) {
        self.trace = Some(Vec::new());
        self.trace_limit = limit;
    }

    fn record(&mut self, e: TraceEvent) {
        if let Some(t) = &mut self.trace {
            if t.len() < self.trace_limit {
                t.push(e);
            }
        }
    }

    /// Called once per simulated cycle, before agents tick.
    pub fn begin_cycle(&mut self) {
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        self.module_bus_left = 1;
        self.mem_bus_left = 1;
    }

    /// Start a new operation (agent had none in flight).
    pub fn start_op(&mut self, kind: OpKind, base_latency: u32) -> Pending {
        Pending { kind, state: PendState::NeedBus, base_latency }
    }

    /// Advance an in-flight operation by (at most) one cycle's worth of
    /// progress. Returns the op (possibly completed).
    pub fn poll(&mut self, mut p: Pending) -> Pending {
        match p.state {
            PendState::Done(_) => p,
            PendState::NeedBus => {
                let granted = if p.kind.uses_module_bus() {
                    if self.module_bus_left > 0 {
                        self.module_bus_left -= 1;
                        self.stats.module_bus_grants += 1;
                        true
                    } else {
                        self.stats.module_bus_conflicts += 1;
                        false
                    }
                } else if self.mem_bus_left > 0 {
                    self.mem_bus_left -= 1;
                    self.stats.mem_bus_grants += 1;
                    true
                } else {
                    self.stats.mem_bus_conflicts += 1;
                    false
                };
                if granted {
                    p.state = PendState::WaitResource;
                    self.try_serve(p)
                } else {
                    p
                }
            }
            PendState::WaitResource => self.try_serve(p),
            PendState::Latency(n) => {
                if n <= 1 {
                    p.state = PendState::Done(self.complete(p.kind));
                } else {
                    p.state = PendState::Latency(n - 1);
                }
                p
            }
        }
    }

    /// Attempt to begin service (resource availability check). On success
    /// the op reserves its effect immediately (FIFO slot / sem count) and
    /// burns its service latency; the payload is delivered at completion.
    fn try_serve(&mut self, mut p: Pending) -> Pending {
        let ok = match p.kind {
            OpKind::Enqueue(q, v) => {
                let qq = &mut self.queues[q.index()];
                if qq.items.len() < qq.cap {
                    qq.items.push_back(v);
                    let peak = &mut self.stats.queue_peak[q.index()];
                    *peak = (*peak).max(qq.items.len() as u32);
                    true
                } else {
                    self.stats.queue_full_stalls += 1;
                    false
                }
            }
            OpKind::Dequeue(q) => {
                // Value popped at completion so concurrent polls this cycle
                // see consistent state; reserve by checking emptiness.
                if self.queues[q.index()].items.is_empty() {
                    self.stats.queue_empty_stalls += 1;
                    false
                } else {
                    true
                }
            }
            OpKind::SemRaise(..) | OpKind::Out(_) | OpKind::In => true,
            OpKind::SemLower(s, n) => {
                if self.sems[s.index()] >= n {
                    self.sems[s.index()] -= n;
                    true
                } else {
                    self.stats.sem_stalls += 1;
                    false
                }
            }
            OpKind::MemLoad(..) | OpKind::MemStore(..) => true,
        };
        if ok {
            let lat = p.base_latency
                + match p.kind {
                    OpKind::Enqueue(..) | OpKind::Dequeue(_) => self.queue_extra_latency,
                    _ => 0,
                };
            if lat <= 1 {
                p.state = PendState::Done(self.complete(p.kind));
            } else {
                p.state = PendState::Latency(lat - 1);
            }
        } else {
            p.state = PendState::WaitResource;
        }
        p
    }

    /// Apply the operation's effect and produce its payload.
    fn complete(&mut self, kind: OpKind) -> i64 {
        match kind {
            OpKind::Enqueue(q, _) => {
                let cycle = self.cycle;
                let occ = self.queues[q.index()].items.len() as u32;
                self.record(TraceEvent::Enqueue(cycle, q, occ));
                0
            }
            OpKind::Dequeue(q) => {
                let v = self.queues[q.index()]
                    .items
                    .pop_front()
                    .expect("dequeue served on empty queue");
                let cycle = self.cycle;
                let occ = self.queues[q.index()].items.len() as u32;
                self.record(TraceEvent::Dequeue(cycle, q, occ));
                v
            }
            OpKind::SemRaise(s, n) => {
                self.sems[s.index()] = (self.sems[s.index()] + n).min(self.sem_max[s.index()]);
                let (cycle, v) = (self.cycle, self.sems[s.index()]);
                self.record(TraceEvent::Sem(cycle, s.0, v));
                0
            }
            OpKind::SemLower(s, _) => {
                let (cycle, v) = (self.cycle, self.sems[s.index()]);
                self.record(TraceEvent::Sem(cycle, s.0, v));
                0
            }
            OpKind::MemLoad(addr, ty) => {
                twill_ir::interp::load_mem(&self.mem, addr, ty).unwrap_or(0)
            }
            OpKind::MemStore(addr, ty, v) => {
                let _ = twill_ir::interp::store_mem(&mut self.mem, addr, ty, v);
                0
            }
            OpKind::Out(v) => {
                self.output.push(v as i32);
                let cycle = self.cycle;
                self.record(TraceEvent::Out(cycle, v as i32));
                0
            }
            OpKind::In => {
                let v = self.input.get(self.in_pos).copied().unwrap_or(-1);
                self.in_pos += 1;
                v as i64
            }
        }
    }

    pub fn queue_len(&self, q: QueueId) -> usize {
        self.queues[q.index()].items.len()
    }

    pub fn all_queues_empty(&self) -> bool {
        self.queues.iter().all(|q| q.items.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_ir::{QueueDecl, Ty};

    fn shared_with_queue(depth: u32, extra: u32) -> Shared {
        let mut m = Module::new("t");
        m.add_queue(QueueDecl { width: Ty::I32, depth });
        Shared::new(&m, 0x10000, vec![], extra, None, 1)
    }

    fn run_to_done(s: &mut Shared, mut p: Pending, max: u32) -> (i64, u32) {
        for c in 0..max {
            s.begin_cycle();
            p = s.poll(p);
            if let PendState::Done(v) = p.state {
                return (v, c + 1);
            }
        }
        panic!("op did not complete: {p:?}");
    }

    #[test]
    fn enqueue_takes_two_cycles() {
        let mut s = shared_with_queue(8, 0);
        let p = s.start_op(OpKind::Enqueue(QueueId(0), 42), 2);
        let (_, cycles) = run_to_done(&mut s, p, 10);
        assert_eq!(cycles, 2, "thesis: queue ops take a minimum of 2 cycles");
        assert_eq!(s.queue_len(QueueId(0)), 1);
    }

    #[test]
    fn dequeue_returns_fifo_order() {
        let mut s = shared_with_queue(8, 0);
        for v in [1, 2, 3] {
            let p = s.start_op(OpKind::Enqueue(QueueId(0), v), 2);
            run_to_done(&mut s, p, 10);
        }
        for expect in [1, 2, 3] {
            let p = s.start_op(OpKind::Dequeue(QueueId(0)), 2);
            let (v, _) = run_to_done(&mut s, p, 10);
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn full_queue_blocks_until_drained() {
        let mut s = shared_with_queue(2, 0);
        for v in [1, 2] {
            let p = s.start_op(OpKind::Enqueue(QueueId(0), v), 2);
            run_to_done(&mut s, p, 10);
        }
        // Third enqueue stalls.
        let mut p = s.start_op(OpKind::Enqueue(QueueId(0), 3), 2);
        for _ in 0..5 {
            s.begin_cycle();
            p = s.poll(p);
        }
        assert!(matches!(p.state, PendState::WaitResource));
        assert!(s.stats.queue_full_stalls > 0);
        // Drain one; enqueue can now complete.
        let d = s.start_op(OpKind::Dequeue(QueueId(0)), 2);
        run_to_done(&mut s, d, 10);
        let (_, _) = run_to_done(&mut s, p, 10);
        assert_eq!(s.queue_len(QueueId(0)), 2);
    }

    #[test]
    fn extra_latency_slows_queue_ops() {
        let mut s = shared_with_queue(8, 30);
        let p = s.start_op(OpKind::Enqueue(QueueId(0), 1), 2);
        let (_, cycles) = run_to_done(&mut s, p, 100);
        assert_eq!(cycles, 32);
    }

    #[test]
    fn module_bus_grants_one_per_cycle() {
        let mut m = Module::new("t");
        m.add_queue(QueueDecl { width: Ty::I32, depth: 8 });
        m.add_queue(QueueDecl { width: Ty::I32, depth: 8 });
        let mut s = Shared::new(&m, 0x10000, vec![], 0, None, 2);
        let mut p1 = s.start_op(OpKind::Enqueue(QueueId(0), 1), 2);
        let mut p2 = s.start_op(OpKind::Enqueue(QueueId(1), 2), 2);
        s.begin_cycle();
        p1 = s.poll(p1);
        p2 = s.poll(p2);
        // p1 got the bus; p2 must still be waiting for a grant.
        assert!(!matches!(p1.state, PendState::NeedBus));
        assert!(matches!(p2.state, PendState::NeedBus));
        assert_eq!(s.stats.module_bus_conflicts, 1);
        let _ = (p1, p2);
    }

    #[test]
    fn memory_bus_read_two_write_one() {
        let m = Module::new("t");
        let mut s = Shared::new(&m, 0x10000, vec![], 0, None, 1);
        let w =
            s.start_op(OpKind::MemStore(0x2000, Ty::I32, 0xBEEF), twill_ir::cost::HW_STORE_LATENCY);
        let (_, wc) = run_to_done(&mut s, w, 10);
        assert_eq!(wc, 1, "store takes one cycle");
        let r = s.start_op(OpKind::MemLoad(0x2000, Ty::I32), twill_ir::cost::HW_LOAD_LATENCY);
        let (v, rc) = run_to_done(&mut s, r, 10);
        assert_eq!(rc, 2, "read takes two cycles");
        assert_eq!(v, 0xBEEF);
    }

    #[test]
    fn semaphore_lower_blocks_at_zero() {
        let mut m = Module::new("t");
        m.add_sem(twill_ir::SemDecl { max: 4, initial: 0 });
        let mut s = Shared::new(&m, 0x10000, vec![], 0, None, 1);
        let mut p = s.start_op(OpKind::SemLower(SemId(0), 1), 2);
        for _ in 0..3 {
            s.begin_cycle();
            p = s.poll(p);
        }
        assert!(matches!(p.state, PendState::WaitResource));
        let r = s.start_op(OpKind::SemRaise(SemId(0), 1), 1);
        run_to_done(&mut s, r, 10);
        run_to_done(&mut s, p, 10);
    }

    #[test]
    fn io_stream_round_trip() {
        let m = Module::new("t");
        let mut s = Shared::new(&m, 0x10000, vec![7, 8], 0, None, 1);
        let i1 = s.start_op(OpKind::In, 2);
        let (v, _) = run_to_done(&mut s, i1, 10);
        assert_eq!(v, 7);
        let o = s.start_op(OpKind::Out(v * 2), 2);
        run_to_done(&mut s, o, 10);
        assert_eq!(s.output, vec![14]);
    }
}
