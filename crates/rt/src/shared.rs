//! Shared simulator state: buses, runtime primitives, memory, I/O, stats.
//!
//! Observability has two tiers:
//!
//! * **Metrics counters** (always on): plain integers and pre-sized vectors
//!   in [`SimStats`], updated unconditionally. Everything is allocated at
//!   construction, so the steady-state simulation performs zero heap
//!   allocations per cycle.
//! * **Event tracing** (`obs` cargo feature + `SimConfig::trace_events`):
//!   typed [`twill_obs::Event`]s pushed into a bounded ring buffer for
//!   Perfetto export. Disabled at compile time the hooks vanish entirely;
//!   disabled at run time they are a `None` check.

use crate::fault::{EnqueueFaults, FaultCounts, FaultPlan, FaultRecord, FaultSite, FaultState};
use std::collections::VecDeque;
use twill_ir::{Module, QueueId, SemId};

#[cfg(feature = "obs")]
use twill_obs::{Event, EventKind, OpClass, Ring};

/// A runtime operation an agent can have in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Enqueue(QueueId, i64),
    Dequeue(QueueId),
    SemRaise(SemId, u32),
    SemLower(SemId, u32),
    /// Memory-bus load (HW threads only): address, width bytes.
    MemLoad(u32, twill_ir::Ty),
    /// Memory-bus store.
    MemStore(u32, twill_ir::Ty, i64),
    Out(i64),
    In,
}

impl OpKind {
    fn uses_module_bus(&self) -> bool {
        !matches!(self, OpKind::MemLoad(..) | OpKind::MemStore(..))
    }
}

/// Record an event when the `obs` feature is on; compile to nothing when
/// it is off (the argument tokens only need to parse).
macro_rules! rec {
    ($shared:expr, $kind:expr) => {{
        #[cfg(feature = "obs")]
        {
            $shared.record($kind);
        }
    }};
}
pub(crate) use rec;

#[cfg(feature = "obs")]
pub(crate) fn op_class(kind: OpKind) -> OpClass {
    match kind {
        OpKind::Enqueue(..) => OpClass::Enqueue,
        OpKind::Dequeue(_) => OpClass::Dequeue,
        OpKind::SemRaise(..) => OpClass::SemRaise,
        OpKind::SemLower(..) => OpClass::SemLower,
        OpKind::MemLoad(..) => OpClass::MemLoad,
        OpKind::MemStore(..) => OpClass::MemStore,
        OpKind::Out(_) => OpClass::Out,
        OpKind::In => OpClass::In,
    }
}

/// Progress of an in-flight operation.
#[derive(Debug, Clone, Copy)]
pub enum PendState {
    /// Waiting for a bus grant.
    NeedBus,
    /// Granted, but the primitive can't serve yet (queue full/empty, …).
    WaitResource,
    /// Serving: remaining cycles until completion.
    Latency(u32),
    /// Completed with result payload.
    Done(i64),
}

/// An agent's in-flight runtime operation.
#[derive(Debug, Clone, Copy)]
pub struct Pending {
    pub kind: OpKind,
    pub state: PendState,
    /// Base service latency once the resource is available.
    pub base_latency: u32,
}

/// Where an agent's cycle went — the attribution classes of the stall
/// model. Every simulated cycle of every agent lands in exactly one class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallClass {
    /// Executing, issuing, or being served (service latency is work).
    Busy,
    /// Enqueue blocked on a full queue.
    QueueFull,
    /// Dequeue blocked on an empty queue.
    QueueEmpty,
    /// Semaphore lower blocked at zero.
    Sem,
    /// Waiting for a memory-bus grant.
    MemBus,
    /// Waiting for a module-bus grant.
    ModuleBus,
    /// Agent finished while the rest of the system ran.
    Idle,
}

impl Pending {
    /// Attribution of a cycle spent on this op in its current state.
    pub fn stall_class(&self) -> StallClass {
        match self.state {
            PendState::NeedBus => {
                if self.kind.uses_module_bus() {
                    StallClass::ModuleBus
                } else {
                    StallClass::MemBus
                }
            }
            PendState::WaitResource => match self.kind {
                OpKind::Enqueue(..) => StallClass::QueueFull,
                OpKind::Dequeue(_) => StallClass::QueueEmpty,
                OpKind::SemLower(..) => StallClass::Sem,
                _ => StallClass::Busy,
            },
            PendState::Latency(_) | PendState::Done(_) => StallClass::Busy,
        }
    }
}

/// Per-agent cycle accounting by [`StallClass`]. The fields always sum to
/// the run's total cycles (asserted in debug builds when a simulation
/// completes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCycles {
    pub busy: u64,
    pub queue_full: u64,
    pub queue_empty: u64,
    pub sem: u64,
    pub mem_bus: u64,
    pub module_bus: u64,
    pub idle: u64,
}

impl ClassCycles {
    pub fn add(&mut self, class: StallClass) {
        self.add_n(class, 1);
    }

    /// Bulk-charge `n` cycles to one class (the fast-forward path charges
    /// a whole skipped span in one call).
    pub fn add_n(&mut self, class: StallClass, n: u64) {
        match class {
            StallClass::Busy => self.busy += n,
            StallClass::QueueFull => self.queue_full += n,
            StallClass::QueueEmpty => self.queue_empty += n,
            StallClass::Sem => self.sem += n,
            StallClass::MemBus => self.mem_bus += n,
            StallClass::ModuleBus => self.module_bus += n,
            StallClass::Idle => self.idle += n,
        }
    }

    pub fn total(&self) -> u64 {
        self.busy
            + self.queue_full
            + self.queue_empty
            + self.sem
            + self.mem_bus
            + self.module_bus
            + self.idle
    }
}

/// One queue's lifetime statistics (always collected).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueStat {
    pub depth: u32,
    pub pushes: u64,
    pub pops: u64,
    /// Blocked producer attempts (one per blocked cycle).
    pub full_stalls: u64,
    /// Blocked consumer attempts.
    pub empty_stalls: u64,
    /// `occupancy_hist[n]`: push/pop completions that left the queue
    /// holding `n` values. Sized `depth + 1` at construction.
    pub occupancy_hist: Vec<u64>,
}

/// Simulation counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    pub cycles: u64,
    pub module_bus_grants: u64,
    pub module_bus_conflicts: u64,
    pub mem_bus_grants: u64,
    pub mem_bus_conflicts: u64,
    pub queue_full_stalls: u64,
    pub queue_empty_stalls: u64,
    pub sem_stalls: u64,
    /// Per-agent: cycles spent blocked on runtime ops.
    pub agent_blocked: Vec<u64>,
    /// Per-agent: cycles doing useful work (issue or compute).
    pub agent_busy: Vec<u64>,
    /// Per-agent: full cycle accounting by stall class.
    pub agent_cycles: Vec<ClassCycles>,
    /// Peak simultaneous occupancy per queue.
    pub queue_peak: Vec<u32>,
    /// Per-queue traffic, stall, and occupancy statistics.
    pub queue_stats: Vec<QueueStat>,
    /// Injected-fault counters (all zero unless a fault plan is installed).
    pub faults: FaultCounts,
}

struct SimQueue {
    items: VecDeque<i64>,
    cap: usize,
    /// Payload width in bits (bounds injected bit flips).
    width_bits: u32,
}

/// Central shared state.
pub struct Shared {
    pub cycle: u64,
    pub mem: Vec<u8>,
    pub input: Vec<i32>,
    pub in_pos: usize,
    pub output: Vec<i32>,
    queues: Vec<SimQueue>,
    sems: Vec<u32>,
    sem_max: Vec<u32>,
    /// Extra per-operation queue latency (Fig 6.5 sweeps this; 0 extra at
    /// the thesis' 2-cycle baseline).
    pub queue_extra_latency: u32,
    /// Module-bus grant budget left this cycle (1 msg/cycle).
    module_bus_left: u8,
    /// Memory-bus grant budget left this cycle.
    mem_bus_left: u8,
    pub stats: SimStats,
    /// Which agent's events are being recorded (set by the system loop
    /// before each agent's tick; 0 for direct harnesses).
    cur_agent: u16,
    /// Fault-injection state (None = injection off; the strictly-opt-in
    /// default, one pointer test on the hot path).
    faults: Option<Box<FaultState>>,
    /// Bounded event recorder (None = tracing disabled).
    #[cfg(feature = "obs")]
    recorder: Option<Ring>,
}

impl Shared {
    pub fn new(
        m: &Module,
        mem_size: u32,
        input: Vec<i32>,
        queue_extra_latency: u32,
        queue_depth_override: Option<u32>,
        queue_depths: &[(usize, u32)],
        n_agents: usize,
    ) -> Shared {
        // Per-queue overrides win over the global override; on duplicate
        // ids the last entry wins (already validated by `validate_config`).
        let mut caps: Vec<u32> =
            m.queues.iter().map(|q| queue_depth_override.unwrap_or(q.depth)).collect();
        for &(id, depth) in queue_depths {
            if let Some(cap) = caps.get_mut(id) {
                *cap = depth;
            }
        }
        Shared {
            cycle: 0,
            mem: twill_ir::layout::initial_memory(m, mem_size),
            input,
            in_pos: 0,
            output: Vec::new(),
            queues: m
                .queues
                .iter()
                .zip(&caps)
                .map(|(q, &cap)| SimQueue {
                    // Reserve up front: queue traffic must not allocate.
                    items: VecDeque::with_capacity(cap as usize),
                    cap: cap as usize,
                    width_bits: q.width.bits().max(1),
                })
                .collect(),
            sems: m.sems.iter().map(|s| s.initial).collect(),
            sem_max: m.sems.iter().map(|s| s.max).collect(),
            queue_extra_latency,
            module_bus_left: 1,
            mem_bus_left: 1,
            stats: SimStats {
                agent_blocked: vec![0; n_agents],
                agent_busy: vec![0; n_agents],
                agent_cycles: vec![ClassCycles::default(); n_agents],
                queue_peak: vec![0; caps.len()],
                queue_stats: caps
                    .iter()
                    .map(|&cap| QueueStat {
                        depth: cap,
                        occupancy_hist: vec![0; cap as usize + 1],
                        ..Default::default()
                    })
                    .collect(),
                ..Default::default()
            },
            cur_agent: 0,
            faults: None,
            #[cfg(feature = "obs")]
            recorder: None,
        }
    }

    /// Install a fault-injection plan for this run (see [`crate::fault`]).
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        self.faults = Some(Box::new(FaultState::new(plan)));
    }

    /// Detach the fault log: `(records in order, dropped count)`. Empty
    /// when no plan was installed.
    pub fn take_fault_log(&mut self) -> (Vec<FaultRecord>, u64) {
        match self.faults.as_deref_mut() {
            Some(fs) => fs.take_log(),
            None => (Vec::new(), 0),
        }
    }

    /// Attribute subsequent events to this agent's track.
    pub fn set_agent(&mut self, agent: u16) {
        self.cur_agent = agent;
    }

    /// Enable event tracing, keeping the most recent `capacity` events.
    #[cfg(feature = "obs")]
    pub fn enable_recorder(&mut self, capacity: usize) {
        self.recorder = Some(Ring::new(capacity));
    }

    /// Detach the recorder: `(events in order, dropped count)`.
    #[cfg(feature = "obs")]
    pub fn take_recorder(&mut self) -> (Vec<Event>, u64) {
        match self.recorder.take() {
            Some(r) => r.into_parts(),
            None => (Vec::new(), 0),
        }
    }

    #[cfg(feature = "obs")]
    pub(crate) fn record(&mut self, kind: EventKind) {
        if let Some(r) = &mut self.recorder {
            r.push(Event { cycle: self.cycle, track: self.cur_agent, kind });
        }
    }

    /// Called once per simulated cycle, before agents tick.
    pub fn begin_cycle(&mut self) {
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        self.module_bus_left = 1;
        self.mem_bus_left = 1;
        if self.faults.is_some() {
            self.cycle_faults();
        }
    }

    /// Leap the clock over `k` quiet cycles (fast-forward path). Only legal
    /// when nothing observable happens in the span: no agent executes, no
    /// bus poll occurs (budgets reset unused each naive cycle), and no
    /// fault is armed or rate-drawn. The caller bulk-charges each agent's
    /// counters separately so the `total() == cycle` invariants hold.
    pub(crate) fn skip_cycles(&mut self, k: u64) {
        self.cycle += k;
        self.stats.cycles = self.cycle;
    }

    /// Bulk equivalent of `k` consecutive [`Shared::note_stall`] retries of
    /// the same blocked op. None of them is the episode's first attempt (it
    /// happened at issue time), so no trace event is emitted — exactly like
    /// the naive loop's retry cycles.
    pub(crate) fn note_stall_bulk(&mut self, kind: OpKind, k: u64) {
        match kind {
            OpKind::Enqueue(q, _) => {
                self.stats.queue_full_stalls += k;
                self.stats.queue_stats[q.index()].full_stalls += k;
            }
            OpKind::Dequeue(q) => {
                self.stats.queue_empty_stalls += k;
                self.stats.queue_stats[q.index()].empty_stalls += k;
            }
            OpKind::SemLower(..) => {
                self.stats.sem_stalls += k;
            }
            _ => {}
        }
    }

    /// Whether a blocked (`WaitResource`) op of this kind would be served
    /// by its next poll. Fast-forward horizon check: a blocked agent's
    /// last real poll can predate the resource becoming ready (the peer
    /// acts after it in the same cycle, or it was riding out a charge), so
    /// a ready resource forces the wake tick to happen for real. Mirrors
    /// the availability tests in `try_serve`.
    pub(crate) fn resource_ready(&self, kind: OpKind) -> bool {
        match kind {
            OpKind::Enqueue(q, _) => {
                let qi = q.index();
                self.queues[qi].items.len() < self.queues[qi].cap
            }
            OpKind::Dequeue(q) => !self.queues[q.index()].items.is_empty(),
            OpKind::SemLower(s, n) => self.sems[s.index()] >= n,
            _ => true,
        }
    }

    /// The next not-yet-armed pinned fault's cycle (a fast-forward leap
    /// must not cross it: pinned stalls and memory upsets fire at exact
    /// cycles).
    pub(crate) fn next_pinned_fault_cycle(&self) -> Option<u64> {
        self.faults.as_deref().and_then(|fs| fs.next_pinned_cycle())
    }

    /// True while an armed pinned stall waits for its target agent's next
    /// tick; fast-forward must not skip that tick.
    pub(crate) fn has_armed_stalls(&self) -> bool {
        self.faults.as_deref().is_some_and(|fs| fs.has_armed_stalls())
    }

    /// True when the fault plan consumes PRNG draws every cycle (memory
    /// upsets per cycle, stall draws per live hardware thread per cycle).
    /// Such cycles can be skipped only by replaying the draws in tick
    /// order so the splitmix64 stream stays byte-identical.
    pub(crate) fn fault_draws_per_cycle(&self, live_hw: bool) -> bool {
        match self.faults.as_deref() {
            None => false,
            Some(fs) => fs.spec.mem_upset_rate > 0.0 || (live_hw && fs.spec.hw_stall_rate > 0.0),
        }
    }

    /// Per-cycle fault work: arm pinned faults that came due, apply memory
    /// single-event upsets (pinned and rate-driven). Memory is upset before
    /// agents tick so the flip is visible this cycle.
    fn cycle_faults(&mut self) {
        let cycle = self.cycle;
        if let Some(fs) = self.faults.as_deref_mut() {
            fs.arm(cycle);
        }
        while let Some(site) = self.faults.as_deref_mut().and_then(|fs| fs.pop_armed_mem()) {
            if let FaultSite::MemUpset { addr, bit } = site {
                if (addr as usize) < self.mem.len() {
                    self.mem[addr as usize] ^= 1 << (bit & 7);
                }
            }
            self.note_fault(site);
        }
        let mem_len = self.mem.len() as u32;
        let upset = self.faults.as_deref_mut().and_then(|fs| {
            if mem_len > 0 && fs.rng.chance(fs.spec.mem_upset_rate) {
                let addr = fs.rng.below(mem_len);
                let bit = fs.rng.below(8) as u8;
                Some(FaultSite::MemUpset { addr, bit })
            } else {
                None
            }
        });
        if let Some(site) = upset {
            if let FaultSite::MemUpset { addr, bit } = site {
                self.mem[addr as usize] ^= 1 << bit;
            }
            self.note_fault(site);
        }
    }

    /// Injected stall length for agent `agent`'s tick this cycle, if one
    /// fires (the system loop freezes the agent for that many cycles).
    pub fn fault_stall(&mut self, agent: usize) -> Option<u32> {
        let fs = self.faults.as_deref_mut()?;
        let n = fs.stall_for(agent as u32)?;
        self.note_fault(FaultSite::HwStall { agent: agent as u32, cycles: n });
        Some(n)
    }

    /// The single accounting point for an injected fault: bumps the
    /// always-on counter, appends to the bounded fault log, and (with the
    /// `obs` feature) records the typed trace event.
    fn note_fault(&mut self, site: FaultSite) {
        self.stats.faults.bump(site);
        let cycle = self.cycle;
        if let Some(fs) = self.faults.as_deref_mut() {
            fs.log(cycle, site);
        }
        rec!(self, EventKind::Fault { fault: site.obs_class(), unit: site.unit() });
    }

    /// Start a new operation (agent had none in flight).
    pub fn start_op(&mut self, kind: OpKind, base_latency: u32) -> Pending {
        rec!(self, EventKind::OpStart { op: op_class(kind) });
        Pending { kind, state: PendState::NeedBus, base_latency }
    }

    /// Advance an in-flight operation by (at most) one cycle's worth of
    /// progress. Returns the op (possibly completed).
    pub fn poll(&mut self, mut p: Pending) -> Pending {
        match p.state {
            PendState::Done(_) => p,
            PendState::NeedBus => {
                let granted = if p.kind.uses_module_bus() {
                    if self.module_bus_left > 0 {
                        self.module_bus_left -= 1;
                        self.stats.module_bus_grants += 1;
                        true
                    } else {
                        self.stats.module_bus_conflicts += 1;
                        false
                    }
                } else if self.mem_bus_left > 0 {
                    self.mem_bus_left -= 1;
                    self.stats.mem_bus_grants += 1;
                    true
                } else {
                    self.stats.mem_bus_conflicts += 1;
                    false
                };
                if granted {
                    p.state = PendState::WaitResource;
                    self.try_serve(p, true)
                } else {
                    p
                }
            }
            PendState::WaitResource => self.try_serve(p, false),
            PendState::Latency(n) => {
                if n <= 1 {
                    p.state = PendState::Done(self.complete(p.kind));
                    rec!(self, EventKind::OpRetire { op: op_class(p.kind) });
                } else {
                    p.state = PendState::Latency(n - 1);
                }
                p
            }
        }
    }

    /// Attempt to begin service (resource availability check). On success
    /// the op reserves its effect immediately (FIFO slot / sem count) and
    /// burns its service latency; the payload is delivered at completion.
    /// `first` marks the first attempt after the bus grant (the start of a
    /// stall episode, if the attempt fails).
    fn try_serve(&mut self, mut p: Pending, first: bool) -> Pending {
        let ok = match p.kind {
            OpKind::Enqueue(q, v) => {
                let qi = q.index();
                if self.queues[qi].items.len() < self.queues[qi].cap {
                    let width_bits = self.queues[qi].width_bits;
                    let ef = match self.faults.as_deref_mut() {
                        Some(fs) => fs.enqueue_faults(qi, width_bits),
                        None => EnqueueFaults::default(),
                    };
                    if ef.drop {
                        // The producer sees success; the message is lost in
                        // flight (not counted as a push — it never landed).
                        self.note_fault(FaultSite::QueueDrop { queue: qi as u32 });
                    } else {
                        let mut v = v;
                        if let Some(bit) = ef.flip_bit {
                            v ^= 1 << bit;
                            self.note_fault(FaultSite::QueueBitFlip { queue: qi as u32, bit });
                        }
                        self.push_queue(qi, v);
                        // A duplicate is one more message on the wire; it
                        // only fits if the queue has room for both.
                        if ef.dup && self.queues[qi].items.len() < self.queues[qi].cap {
                            self.push_queue(qi, v);
                            self.note_fault(FaultSite::QueueDup { queue: qi as u32 });
                        }
                    }
                    true
                } else {
                    false
                }
            }
            OpKind::Dequeue(q) => {
                // Value popped at completion so concurrent polls this cycle
                // see consistent state; reserve by checking emptiness.
                !self.queues[q.index()].items.is_empty()
            }
            OpKind::SemRaise(..) | OpKind::Out(_) | OpKind::In => true,
            OpKind::SemLower(s, n) => {
                if self.sems[s.index()] >= n {
                    self.sems[s.index()] -= n;
                    true
                } else {
                    false
                }
            }
            OpKind::MemLoad(..) | OpKind::MemStore(..) => true,
        };
        if ok {
            let lat = p.base_latency
                + match p.kind {
                    OpKind::Enqueue(..) | OpKind::Dequeue(_) => self.queue_extra_latency,
                    _ => 0,
                };
            if lat <= 1 {
                p.state = PendState::Done(self.complete(p.kind));
                rec!(self, EventKind::OpRetire { op: op_class(p.kind) });
            } else {
                p.state = PendState::Latency(lat - 1);
            }
        } else {
            self.note_stall(p.kind, first);
            p.state = PendState::WaitResource;
        }
        p
    }

    /// Land one value in queue `qi` with full accounting (peak, push
    /// count, occupancy histogram, trace event).
    fn push_queue(&mut self, qi: usize, v: i64) {
        self.queues[qi].items.push_back(v);
        let occ = self.queues[qi].items.len() as u32;
        let peak = &mut self.stats.queue_peak[qi];
        *peak = (*peak).max(occ);
        let qs = &mut self.stats.queue_stats[qi];
        qs.pushes += 1;
        let slot = (occ as usize).min(qs.occupancy_hist.len() - 1);
        qs.occupancy_hist[slot] += 1;
        rec!(self, EventKind::QueuePush { queue: qi as u16, occupancy: occ });
    }

    /// The single accounting point for a blocked service attempt: bumps
    /// the matching global counter, the per-queue counter, and (on the
    /// first attempt of an episode) records the trace event.
    fn note_stall(&mut self, kind: OpKind, first: bool) {
        self.stall_episode(kind, first);
        match kind {
            OpKind::Enqueue(q, _) => {
                self.stats.queue_full_stalls += 1;
                self.stats.queue_stats[q.index()].full_stalls += 1;
            }
            OpKind::Dequeue(q) => {
                self.stats.queue_empty_stalls += 1;
                self.stats.queue_stats[q.index()].empty_stalls += 1;
            }
            OpKind::SemLower(..) => {
                self.stats.sem_stalls += 1;
            }
            _ => {}
        }
    }

    /// Trace the start of a stall episode (first blocked attempt only, so
    /// a long stall is one event, not thousands).
    #[cfg(feature = "obs")]
    fn stall_episode(&mut self, kind: OpKind, first: bool) {
        if !first {
            return;
        }
        let ev = match kind {
            OpKind::Enqueue(q, _) => EventKind::QueueStall { queue: q.index() as u16, full: true },
            OpKind::Dequeue(q) => EventKind::QueueStall { queue: q.index() as u16, full: false },
            OpKind::SemLower(s, _) => EventKind::SemWait { sem: s.index() as u16 },
            _ => return,
        };
        self.record(ev);
    }

    #[cfg(not(feature = "obs"))]
    fn stall_episode(&mut self, _kind: OpKind, _first: bool) {}

    /// Apply the operation's effect and produce its payload.
    fn complete(&mut self, kind: OpKind) -> i64 {
        match kind {
            OpKind::Enqueue(..) => 0, // slot was reserved (and traced) at serve time
            OpKind::Dequeue(q) => {
                let v = self.queues[q.index()]
                    .items
                    .pop_front()
                    .expect("dequeue served on empty queue");
                let occ = self.queues[q.index()].items.len() as u32;
                let qs = &mut self.stats.queue_stats[q.index()];
                qs.pops += 1;
                let slot = (occ as usize).min(qs.occupancy_hist.len() - 1);
                qs.occupancy_hist[slot] += 1;
                rec!(self, EventKind::QueuePop { queue: q.index() as u16, occupancy: occ });
                v
            }
            OpKind::SemRaise(s, n) => {
                self.sems[s.index()] = (self.sems[s.index()] + n).min(self.sem_max[s.index()]);
                let value = self.sems[s.index()];
                rec!(self, EventKind::SemSignal { sem: s.0 as u16, value });
                let _ = value;
                0
            }
            OpKind::SemLower(s, _) => {
                let value = self.sems[s.index()];
                rec!(self, EventKind::SemSignal { sem: s.0 as u16, value });
                let _ = value;
                0
            }
            OpKind::MemLoad(addr, ty) => {
                twill_ir::interp::load_mem(&self.mem, addr, ty).unwrap_or(0)
            }
            OpKind::MemStore(addr, ty, v) => {
                let _ = twill_ir::interp::store_mem(&mut self.mem, addr, ty, v);
                0
            }
            OpKind::Out(v) => {
                self.output.push(v as i32);
                rec!(self, EventKind::Output { value: v as i32 });
                0
            }
            OpKind::In => {
                let v = self.input.get(self.in_pos).copied().unwrap_or(-1);
                self.in_pos += 1;
                v as i64
            }
        }
    }

    pub fn queue_len(&self, q: QueueId) -> usize {
        self.queues[q.index()].items.len()
    }

    /// Instantaneous occupancy of queue `i` (by raw index, not
    /// [`QueueId`]) — the level the timeline sampler records at each
    /// interval boundary.
    pub fn queue_occupancy(&self, i: usize) -> u32 {
        self.queues[i].items.len() as u32
    }

    /// Number of queues the module declares.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    pub fn all_queues_empty(&self) -> bool {
        self.queues.iter().all(|q| q.items.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twill_ir::{QueueDecl, Ty};

    fn shared_with_queue(depth: u32, extra: u32) -> Shared {
        let mut m = Module::new("t");
        m.add_queue(QueueDecl { width: Ty::I32, depth });
        Shared::new(&m, 0x10000, vec![], extra, None, &[], 1)
    }

    fn run_to_done(s: &mut Shared, mut p: Pending, max: u32) -> (i64, u32) {
        for c in 0..max {
            s.begin_cycle();
            p = s.poll(p);
            if let PendState::Done(v) = p.state {
                return (v, c + 1);
            }
        }
        panic!("op did not complete: {p:?}");
    }

    #[test]
    fn enqueue_takes_two_cycles() {
        let mut s = shared_with_queue(8, 0);
        let p = s.start_op(OpKind::Enqueue(QueueId(0), 42), 2);
        let (_, cycles) = run_to_done(&mut s, p, 10);
        assert_eq!(cycles, 2, "thesis: queue ops take a minimum of 2 cycles");
        assert_eq!(s.queue_len(QueueId(0)), 1);
    }

    #[test]
    fn dequeue_returns_fifo_order() {
        let mut s = shared_with_queue(8, 0);
        for v in [1, 2, 3] {
            let p = s.start_op(OpKind::Enqueue(QueueId(0), v), 2);
            run_to_done(&mut s, p, 10);
        }
        for expect in [1, 2, 3] {
            let p = s.start_op(OpKind::Dequeue(QueueId(0)), 2);
            let (v, _) = run_to_done(&mut s, p, 10);
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn full_queue_blocks_until_drained() {
        let mut s = shared_with_queue(2, 0);
        for v in [1, 2] {
            let p = s.start_op(OpKind::Enqueue(QueueId(0), v), 2);
            run_to_done(&mut s, p, 10);
        }
        // Third enqueue stalls.
        let mut p = s.start_op(OpKind::Enqueue(QueueId(0), 3), 2);
        for _ in 0..5 {
            s.begin_cycle();
            p = s.poll(p);
        }
        assert!(matches!(p.state, PendState::WaitResource));
        assert!(s.stats.queue_full_stalls > 0);
        assert_eq!(s.stats.queue_stats[0].full_stalls, s.stats.queue_full_stalls);
        assert_eq!(p.stall_class(), StallClass::QueueFull);
        // Drain one; enqueue can now complete.
        let d = s.start_op(OpKind::Dequeue(QueueId(0)), 2);
        run_to_done(&mut s, d, 10);
        let (_, _) = run_to_done(&mut s, p, 10);
        assert_eq!(s.queue_len(QueueId(0)), 2);
    }

    #[test]
    fn extra_latency_slows_queue_ops() {
        let mut s = shared_with_queue(8, 30);
        let p = s.start_op(OpKind::Enqueue(QueueId(0), 1), 2);
        let (_, cycles) = run_to_done(&mut s, p, 100);
        assert_eq!(cycles, 32);
    }

    #[test]
    fn module_bus_grants_one_per_cycle() {
        let mut m = Module::new("t");
        m.add_queue(QueueDecl { width: Ty::I32, depth: 8 });
        m.add_queue(QueueDecl { width: Ty::I32, depth: 8 });
        let mut s = Shared::new(&m, 0x10000, vec![], 0, None, &[], 2);
        let mut p1 = s.start_op(OpKind::Enqueue(QueueId(0), 1), 2);
        let mut p2 = s.start_op(OpKind::Enqueue(QueueId(1), 2), 2);
        s.begin_cycle();
        p1 = s.poll(p1);
        p2 = s.poll(p2);
        // p1 got the bus; p2 must still be waiting for a grant.
        assert!(!matches!(p1.state, PendState::NeedBus));
        assert!(matches!(p2.state, PendState::NeedBus));
        assert_eq!(s.stats.module_bus_conflicts, 1);
        assert_eq!(p2.stall_class(), StallClass::ModuleBus);
        let _ = (p1, p2);
    }

    #[test]
    fn memory_bus_read_two_write_one() {
        let m = Module::new("t");
        let mut s = Shared::new(&m, 0x10000, vec![], 0, None, &[], 1);
        let w =
            s.start_op(OpKind::MemStore(0x2000, Ty::I32, 0xBEEF), twill_ir::cost::HW_STORE_LATENCY);
        let (_, wc) = run_to_done(&mut s, w, 10);
        assert_eq!(wc, 1, "store takes one cycle");
        let r = s.start_op(OpKind::MemLoad(0x2000, Ty::I32), twill_ir::cost::HW_LOAD_LATENCY);
        let (v, rc) = run_to_done(&mut s, r, 10);
        assert_eq!(rc, 2, "read takes two cycles");
        assert_eq!(v, 0xBEEF);
    }

    #[test]
    fn semaphore_lower_blocks_at_zero() {
        let mut m = Module::new("t");
        m.add_sem(twill_ir::SemDecl { max: 4, initial: 0 });
        let mut s = Shared::new(&m, 0x10000, vec![], 0, None, &[], 1);
        let mut p = s.start_op(OpKind::SemLower(SemId(0), 1), 2);
        for _ in 0..3 {
            s.begin_cycle();
            p = s.poll(p);
        }
        assert!(matches!(p.state, PendState::WaitResource));
        assert_eq!(p.stall_class(), StallClass::Sem);
        assert!(s.stats.sem_stalls > 0);
        let r = s.start_op(OpKind::SemRaise(SemId(0), 1), 1);
        run_to_done(&mut s, r, 10);
        run_to_done(&mut s, p, 10);
    }

    #[test]
    fn io_stream_round_trip() {
        let m = Module::new("t");
        let mut s = Shared::new(&m, 0x10000, vec![7, 8], 0, None, &[], 1);
        let i1 = s.start_op(OpKind::In, 2);
        let (v, _) = run_to_done(&mut s, i1, 10);
        assert_eq!(v, 7);
        let o = s.start_op(OpKind::Out(v * 2), 2);
        run_to_done(&mut s, o, 10);
        assert_eq!(s.output, vec![14]);
    }

    #[test]
    fn queue_stats_track_traffic_and_occupancy() {
        let mut s = shared_with_queue(4, 0);
        for v in [1, 2, 3] {
            let p = s.start_op(OpKind::Enqueue(QueueId(0), v), 2);
            run_to_done(&mut s, p, 10);
        }
        let p = s.start_op(OpKind::Dequeue(QueueId(0)), 2);
        run_to_done(&mut s, p, 10);
        let qs = &s.stats.queue_stats[0];
        assert_eq!(qs.depth, 4);
        assert_eq!(qs.pushes, 3);
        assert_eq!(qs.pops, 1);
        assert_eq!(s.stats.queue_peak[0], 3);
        // Pushes sampled occupancies 1, 2, 3; the pop sampled 2.
        assert_eq!(qs.occupancy_hist, vec![0, 1, 2, 1, 0]);
        let samples: u64 = qs.occupancy_hist.iter().sum();
        assert_eq!(samples, qs.pushes + qs.pops);
    }

    #[test]
    fn latency_class_counts_as_busy_not_stall() {
        let mut s = shared_with_queue(8, 10);
        let mut p = s.start_op(OpKind::Enqueue(QueueId(0), 1), 2);
        s.begin_cycle();
        p = s.poll(p); // granted + served: now burning latency
        assert!(matches!(p.state, PendState::Latency(_)));
        assert_eq!(p.stall_class(), StallClass::Busy);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn recorder_captures_typed_events_per_track() {
        use twill_obs::EventKind;

        let mut s = shared_with_queue(2, 0);
        s.enable_recorder(64);
        s.set_agent(3);
        // Fill the queue, then stall once.
        for v in [1, 2] {
            let p = s.start_op(OpKind::Enqueue(QueueId(0), v), 2);
            run_to_done(&mut s, p, 10);
        }
        let mut p = s.start_op(OpKind::Enqueue(QueueId(0), 3), 2);
        for _ in 0..4 {
            s.begin_cycle();
            p = s.poll(p);
        }
        let (events, dropped) = s.take_recorder();
        assert_eq!(dropped, 0);
        assert!(events.iter().all(|e| e.track == 3));
        let starts = events.iter().filter(|e| matches!(e.kind, EventKind::OpStart { .. })).count();
        let retires =
            events.iter().filter(|e| matches!(e.kind, EventKind::OpRetire { .. })).count();
        assert_eq!(starts, 3);
        assert_eq!(retires, 2, "the stalled op has not retired");
        // The 4-cycle stall is a single episode event.
        let stalls = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::QueueStall { full: true, .. }))
            .count();
        assert_eq!(stalls, 1, "stall episodes are recorded once, not per cycle");
        // Cycles are non-decreasing.
        for w in events.windows(2) {
            assert!(w[0].cycle <= w[1].cycle);
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn disabled_recorder_records_nothing() {
        let mut s = shared_with_queue(8, 0);
        let p = s.start_op(OpKind::Enqueue(QueueId(0), 1), 2);
        run_to_done(&mut s, p, 10);
        let (events, dropped) = s.take_recorder();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }
}
