//! The Microblaze-style soft-CPU agent: executes software threads (IR via
//! the reference interpreter) with the calibrated per-instruction cycle
//! costs, runtime ops through the 5-cycle stream interface, and a
//! hardware-scheduler-driven round robin when more than one software
//! thread exists (thesis §4.4: single context switch, scheduler snoops for
//! blocked threads).

use crate::hwthread::{Progress, SkipSpec};
#[cfg(feature = "obs")]
use crate::shared::op_class;
use crate::shared::rec;
use crate::shared::{OpKind, PendState, Pending, Shared, StallClass};
use twill_ir::cost;
use twill_ir::interp::{Interp, RtPoll, Runtime, StepEvent};
use twill_ir::{FuncId, Intr, Module};
#[cfg(feature = "obs")]
use twill_obs::EventKind;

/// Cycles charged when the HW scheduler switches the active SW thread
/// (thesis: a *single* context switch, no software scheduling loop).
pub const CONTEXT_SWITCH_CYCLES: u32 = 12;

struct SwThread {
    interp: Interp,
    finished: bool,
}

/// The CPU with its software threads.
pub struct Cpu {
    pub agent_id: usize,
    /// Entry function of each software thread (wait-for-graph analysis).
    entries: Vec<FuncId>,
    threads: Vec<SwThread>,
    active: usize,
    /// Busy cycles left for the current instruction.
    charge: u32,
    /// In-flight runtime op (owned by the active thread).
    pending: Option<Pending>,
    /// Result ready for delivery to the retried intrinsic.
    ready: Option<i64>,
    /// Consecutive cycles the active thread's op has been resource-blocked
    /// (the HW scheduler snoops the bus for this, §4.4).
    blocked_streak: u32,
    /// Instruction the current/most recent cycle belongs to (profiling);
    /// `None` during runtime overhead (startup, context switches).
    attr_site: Option<(usize, usize)>,
    pub busy_cycles: u64,
    pub blocked_cycles: u64,
    pub finish_cycle: u64,
}

impl Cpu {
    pub fn new(agent_id: usize, m: &Module, entries: &[FuncId], stacks: &[(u32, u32)]) -> Cpu {
        let threads = entries
            .iter()
            .zip(stacks)
            .map(|(&e, &st)| SwThread { interp: Interp::new(m, e, vec![], st), finished: false })
            .collect();
        Cpu {
            agent_id,
            entries: entries.to_vec(),
            threads,
            active: 0,
            charge: 0,
            pending: None,
            ready: None,
            blocked_streak: 0,
            attr_site: None,
            busy_cycles: 0,
            blocked_cycles: 0,
            finish_cycle: 0,
        }
    }

    pub fn is_finished(&self) -> bool {
        self.threads.iter().all(|t| t.finished)
    }

    /// Charge startup work (the master's StartThread stream operations).
    pub fn add_startup_charge(&mut self, cycles: u32) {
        self.charge += cycles;
    }

    pub fn thread_results(&self) -> Vec<Option<i64>> {
        self.threads.iter().map(|t| t.interp.result().flatten()).collect()
    }

    /// Attribution for a cycle this agent reported [`Progress::Blocked`].
    pub fn stall_class(&self) -> StallClass {
        self.pending.as_ref().map(|p| p.stall_class()).unwrap_or(StallClass::Busy)
    }

    /// Instruction site the cycle just ticked belongs to (profiling).
    pub fn attr_site(&self) -> Option<(usize, usize)> {
        self.attr_site
    }

    /// The kind of the in-flight runtime op, if any (hang diagnosis).
    pub fn pending_kind(&self) -> Option<OpKind> {
        self.pending.as_ref().map(|p| p.kind)
    }

    /// Entry functions of the software threads (hang diagnosis).
    pub fn entries(&self) -> &[FuncId] {
        &self.entries
    }

    /// One simulated cycle.
    pub fn tick(&mut self, m: &Module, shared: &mut Shared) -> Progress {
        if self.is_finished() {
            return Progress::Finished;
        }
        if self.charge > 0 {
            self.charge -= 1;
            self.busy_cycles += 1;
            return Progress::Busy;
        }
        // Poll an in-flight runtime op.
        if let Some(p) = self.pending.take() {
            let p = shared.poll(p);
            match p.state {
                PendState::Done(v) => {
                    self.ready = Some(v);
                    self.blocked_streak = 0;
                    // fall through to re-step the interp this cycle
                }
                PendState::WaitResource => {
                    // The HW scheduler snoops the bus for a blocked active
                    // thread and switches it out (§4.4). A WaitResource op
                    // has had no effect yet, so it can be cancelled and
                    // reissued when the thread is rescheduled.
                    self.blocked_streak += 1;
                    self.blocked_cycles += 1;
                    if self.blocked_streak >= 4 {
                        if let Some(next) = self.next_runnable() {
                            if next != self.active {
                                // The blocked op is discarded (it had no
                                // effect) and will be reissued when this
                                // thread is rescheduled.
                                rec!(shared, EventKind::OpCancel { op: op_class(p.kind) });
                                rec!(shared, EventKind::ContextSwitch { to: next as u16 });
                                self.active = next;
                                self.blocked_streak = 0;
                                self.attr_site = None;
                                self.charge = CONTEXT_SWITCH_CYCLES.saturating_sub(1);
                                self.busy_cycles += 1;
                                return Progress::Busy;
                            }
                        }
                    }
                    self.pending = Some(p);
                    return Progress::Blocked;
                }
                _ => {
                    self.pending = Some(p);
                    self.blocked_cycles += 1;
                    return Progress::Blocked;
                }
            }
        }

        let t = &mut self.threads[self.active];
        if t.finished {
            if let Some(next) = self.next_runnable() {
                rec!(shared, EventKind::ContextSwitch { to: next as u16 });
                self.active = next;
                self.attr_site = None;
                self.charge = CONTEXT_SWITCH_CYCLES.saturating_sub(1);
                self.busy_cycles += 1;
                return Progress::Busy;
            }
            return Progress::Finished;
        }

        // Step the interpreter with the bus adapter.
        let mut adapter = CpuRt { shared, pending: &mut self.pending, ready: &mut self.ready };
        let mut mem = std::mem::take(&mut adapter.shared.mem);
        let ev = t.interp.step(m, &mut mem, &mut adapter);
        // Restore memory.
        let sh = adapter.shared;
        sh.mem = mem;

        match ev {
            Ok(StepEvent::Executed(fid, iid)) => {
                self.attr_site = Some((fid.index(), iid.index()));
                let op = &m.func(fid).inst(iid).op;
                let cycles = match op {
                    // Queue/sem cost was paid through the pending op;
                    // stream I/O charges its five cycles here.
                    twill_ir::Op::Intrin(Intr::Out | Intr::In, _) => cost::SW_IO as u32,
                    twill_ir::Op::Intrin(..) => 1,
                    twill_ir::Op::Phi(_) => 1,
                    _ => (cost::sw_cycles(op) + cost::SW_EXPANSION_OVERHEAD).max(1) as u32,
                };
                self.charge = cycles - 1;
                self.busy_cycles += 1;
                Progress::Busy
            }
            Ok(StepEvent::Blocked(fid, iid)) => {
                // The adapter started (or is still waiting on) a runtime
                // op; the issue cycle counts as busy.
                self.attr_site = Some((fid.index(), iid.index()));
                self.busy_cycles += 1;
                Progress::Busy
            }
            Ok(StepEvent::Finished(_)) => {
                self.threads[self.active].finished = true;
                self.finish_cycle = sh.cycle;
                self.attr_site = None;
                if let Some(next) = self.next_runnable() {
                    rec!(sh, EventKind::ContextSwitch { to: next as u16 });
                    self.active = next;
                    self.charge = CONTEXT_SWITCH_CYCLES.saturating_sub(1);
                }
                self.busy_cycles += 1;
                Progress::Busy
            }
            Err(e) => panic!("CPU execution fault: {e}"),
        }
    }

    /// Earliest cycle (> `now`, the cycle just ticked) at which this
    /// agent's tick can do anything beyond burning a charge cycle or
    /// re-polling a blocked/latency-burning op — the fast-forward contract
    /// (DESIGN.md §12). `u64::MAX` means "not until a peer acts".
    pub(crate) fn next_interesting_cycle(&self, now: u64, shared: &Shared) -> u64 {
        if self.is_finished() {
            return u64::MAX;
        }
        if self.charge > 0 {
            return now + self.charge as u64 + 1;
        }
        match &self.pending {
            Some(p) => match p.state {
                PendState::Latency(n) => now + n as u64,
                // A ready resource means the last poll missed it (the HW
                // peer served after the CPU's tick in the same cycle) —
                // the serving wake tick is next and must happen for real.
                PendState::WaitResource if shared.resource_ready(p.kind) => now + 1,
                PendState::WaitResource => match self.next_runnable() {
                    // The HW scheduler switches out a thread blocked for 4
                    // consecutive cycles when another is runnable; that
                    // switch is the next interesting event. Thread liveness
                    // cannot change while this thread is blocked (all SW
                    // threads run on this CPU), so the horizon is exact.
                    Some(next) if next != self.active => {
                        now + 4u64.saturating_sub(self.blocked_streak as u64).max(1)
                    }
                    // Sole runnable thread: blocked until a peer acts.
                    _ => u64::MAX,
                },
                // Bus arbitration re-runs every cycle; never skip it.
                _ => now + 1,
            },
            None => now + 1,
        }
    }

    /// The constant per-cycle accounting of a fast-forward span starting
    /// after `now` (see [`HwThread::skip_spec`]).
    ///
    /// [`HwThread::skip_spec`]: crate::hwthread::HwThread
    pub(crate) fn skip_spec(&self) -> SkipSpec {
        if self.is_finished() {
            return SkipSpec {
                progress: Progress::Finished,
                class: StallClass::Idle,
                stall_kind: None,
            };
        }
        if self.charge > 0 {
            return SkipSpec {
                progress: Progress::Busy,
                class: StallClass::Busy,
                stall_kind: None,
            };
        }
        match &self.pending {
            Some(p) => match p.state {
                PendState::WaitResource => SkipSpec {
                    progress: Progress::Blocked,
                    class: p.stall_class(),
                    stall_kind: Some(p.kind),
                },
                _ => SkipSpec {
                    progress: Progress::Blocked,
                    class: StallClass::Busy,
                    stall_kind: None,
                },
            },
            None => {
                debug_assert!(false, "skip_spec on an agent with nothing in flight");
                SkipSpec { progress: Progress::Busy, class: StallClass::Busy, stall_kind: None }
            }
        }
    }

    /// Replay the state changes of `k` skipped ticks in one step: burn
    /// charge, count down op latency, and grow the blocked streak exactly
    /// as `k` naive polls would have.
    pub(crate) fn apply_skip(&mut self, k: u64) {
        if self.is_finished() {
            return;
        }
        if self.charge > 0 {
            debug_assert!(k <= self.charge as u64, "skip overran charge");
            self.charge -= k as u32;
            self.busy_cycles += k;
            return;
        }
        match self.pending.as_mut() {
            Some(p) => {
                match &mut p.state {
                    PendState::Latency(n) => {
                        debug_assert!(k < *n as u64, "skip overran op latency");
                        *n -= k as u32;
                    }
                    PendState::WaitResource => {
                        // Matches the naive per-cycle `+= 1` modulo 2^32
                        // (the streak only ever gates on reaching 4).
                        self.blocked_streak = self.blocked_streak.wrapping_add(k as u32);
                    }
                    _ => debug_assert!(false, "unskippable pending state"),
                }
                self.blocked_cycles += k;
            }
            None => debug_assert!(false, "apply_skip on an agent with nothing in flight"),
        }
    }

    fn next_runnable(&self) -> Option<usize> {
        (0..self.threads.len())
            .map(|i| (self.active + 1 + i) % self.threads.len())
            .find(|&i| !self.threads[i].finished)
    }
}

/// Adapter bridging the interpreter's synchronous [`Runtime`] trait to the
/// asynchronous bus simulation: the first call starts a 5-cycle stream
/// operation and reports WouldBlock; the interpreter retries the same
/// instruction each cycle until the op completes.
struct CpuRt<'s, 'c> {
    shared: &'s mut Shared,
    pending: &'c mut Option<Pending>,
    ready: &'c mut Option<i64>,
}

impl CpuRt<'_, '_> {
    fn run(&mut self, kind: OpKind) -> RtPoll {
        if let Some(v) = self.ready.take() {
            return RtPoll::Done(v);
        }
        if self.pending.is_none() {
            // Thesis §4.5: five cycles for any CPU runtime operation.
            let p = self.shared.start_op(kind, cost::SW_RUNTIME_OP as u32);
            // The start cycle polls once (stream put).
            let p = self.shared.poll(p);
            if let PendState::Done(v) = p.state {
                return RtPoll::Done(v);
            }
            *self.pending = Some(p);
        }
        RtPoll::WouldBlock
    }
}

impl Runtime for CpuRt<'_, '_> {
    fn enqueue(&mut self, q: twill_ir::QueueId, v: i64) -> RtPoll {
        self.run(OpKind::Enqueue(q, v))
    }
    fn dequeue(&mut self, q: twill_ir::QueueId) -> RtPoll {
        self.run(OpKind::Dequeue(q))
    }
    fn sem_raise(&mut self, s: twill_ir::SemId, n: i64) -> RtPoll {
        self.run(OpKind::SemRaise(s, n.max(0) as u32))
    }
    fn sem_lower(&mut self, s: twill_ir::SemId, n: i64) -> RtPoll {
        self.run(OpKind::SemLower(s, n.max(0) as u32))
    }
    fn write_out(&mut self, v: i64) {
        // `out` is non-blocking at the interpreter level but still costs a
        // runtime operation; we model it as an immediate effect plus the
        // stream charge folded into the instruction cost table (SW_IO).
        self.shared.output.push(v as i32);
        rec!(self.shared, EventKind::Output { value: v as i32 });
    }
    fn read_in(&mut self) -> i64 {
        let v = self.shared.input.get(self.shared.in_pos).copied().unwrap_or(-1);
        self.shared.in_pos += 1;
        v as i64
    }
}

/// Intrinsic classification helper used by system stats.
pub fn is_runtime_intrinsic(i: &Intr) -> bool {
    !matches!(i, Intr::Out | Intr::In)
}
