//! The on-disk performance baseline (`BENCH_baseline.json` at the repo
//! root): a versioned JSON record of every CHStone benchmark × mode
//! (sw/hw/hybrid) simulation — cycle count, full stall-class breakdown and
//! queue statistics ([`SimMetrics`]) — plus per-benchmark wall-clock
//! compile-stage timings, with environment metadata and a schema version.
//!
//! The file is the single source of truth for perf regression tracking:
//! `twill-bench baseline` (re)records it, `twill-bench compare` and the
//! CI perf gate diff fresh runs against it with [`crate::diff`], and the
//! golden-cycle test in `twill-rt` reads its expected counts from it.
//! Simulated cycle data is deterministic (bit-equal across re-records on
//! any machine); the wall-clock stage timings are environment-dependent
//! and only ever compared under a generous noise band.

use crate::json::{self, Json};
use crate::metrics::SimMetrics;

/// Current schema version. Bump when the file layout changes; [`parse`]
/// rejects versions it does not understand instead of misreading them.
pub const SCHEMA_VERSION: u64 = 1;

/// The three simulated configurations of the paper's evaluation.
pub const MODES: [&str; 3] = ["sw", "hw", "hybrid"];

/// One benchmark × mode measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    pub bench: String,
    /// `sw`, `hw`, or `hybrid`.
    pub mode: String,
    /// Workload scale the cycles were recorded at.
    pub scale: u32,
    pub metrics: SimMetrics,
}

impl BaselineEntry {
    pub fn cycles(&self) -> u64 {
        self.metrics.cycles
    }
}

/// One benchmark's wall-clock compile-stage record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTimings {
    pub bench: String,
    /// `(stage name, wall-clock ns)` per stage *execution*, in completion
    /// order (cache hits record nothing).
    pub spans: Vec<(String, u64)>,
    /// Stage executions / memoization-cache hits (`StageCounts` totals).
    pub runs: u64,
    pub hits: u64,
}

impl StageTimings {
    /// Total wall-clock across all stage executions.
    pub fn total_ns(&self) -> u64 {
        self.spans.iter().map(|(_, ns)| ns).sum()
    }
}

/// The whole baseline document.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    pub schema_version: u64,
    /// Free-form `(key, value)` environment metadata (os, arch, …).
    pub env: Vec<(String, String)>,
    pub entries: Vec<BaselineEntry>,
    pub stages: Vec<StageTimings>,
}

impl Default for Baseline {
    fn default() -> Self {
        Baseline {
            schema_version: SCHEMA_VERSION,
            env: Vec::new(),
            entries: Vec::new(),
            stages: Vec::new(),
        }
    }
}

fn indent_block(s: &str, pad: usize) -> String {
    let prefix = " ".repeat(pad);
    let mut out = String::with_capacity(s.len());
    for (i, line) in s.trim_end().lines().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        if !line.is_empty() {
            out.push_str(&prefix);
        }
        out.push_str(line);
    }
    out
}

impl Baseline {
    /// Look up one benchmark × mode entry.
    pub fn find(&self, bench: &str, mode: &str) -> Option<&BaselineEntry> {
        self.entries.iter().find(|e| e.bench == bench && e.mode == mode)
    }

    pub fn find_stages(&self, bench: &str) -> Option<&StageTimings> {
        self.stages.iter().find(|s| s.bench == bench)
    }

    /// Serialize the document (parse it back with [`parse`]).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", self.schema_version);
        out.push_str("  \"env\": {");
        for (i, (k, v)) in self.env.iter().enumerate() {
            let sep = if i + 1 < self.env.len() { ", " } else { "" };
            let _ = write!(out, "{}: {}{sep}", json::quote(k), json::quote(v));
        }
        out.push_str("},\n  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"bench\": {}, \"mode\": {}, \"scale\": {},",
                json::quote(&e.bench),
                json::quote(&e.mode),
                e.scale
            );
            let _ = write!(out, "     \"metrics\": {}}}", indent_block(&e.metrics.to_json(), 5));
            out.push_str(if i + 1 < self.entries.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"bench\": {}, \"runs\": {}, \"hits\": {}, \"spans\": [",
                json::quote(&s.bench),
                s.runs,
                s.hits
            );
            for (j, (name, ns)) in s.spans.iter().enumerate() {
                let sep = if j + 1 < s.spans.len() { ", " } else { "" };
                let _ = write!(out, "{{\"name\": {}, \"dur_ns\": {ns}}}{sep}", json::quote(name));
            }
            out.push_str("]}");
            out.push_str(if i + 1 < self.stages.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Read and parse a baseline file.
    pub fn load(path: &std::path::Path) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Parse a baseline document. Unknown schema versions are an error: a
/// newer tool wrote the file and silently misreading it would corrupt
/// every downstream comparison.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let doc = json::parse(text)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("baseline: missing schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "baseline: unknown schema version {version} (this tool understands {SCHEMA_VERSION}); \
             re-record with `twill-bench baseline`"
        ));
    }
    let mut b = Baseline { schema_version: version, ..Default::default() };
    if let Some(Json::Obj(fields)) = doc.get("env") {
        for (k, v) in fields {
            b.env
                .push((k.clone(), v.as_str().ok_or("baseline: non-string env value")?.to_string()));
        }
    }
    for e in doc.get("entries").and_then(Json::as_arr).unwrap_or(&[]) {
        let field = |key: &str| -> Result<String, String> {
            e.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("baseline entry: missing {key:?}"))
        };
        b.entries.push(BaselineEntry {
            bench: field("bench")?,
            mode: field("mode")?,
            scale: e.get("scale").and_then(Json::as_u64).ok_or("baseline entry: missing scale")?
                as u32,
            metrics: SimMetrics::from_json(
                e.get("metrics").ok_or("baseline entry: missing metrics")?,
            )?,
        });
    }
    for s in doc.get("stages").and_then(Json::as_arr).unwrap_or(&[]) {
        let mut spans = Vec::new();
        for sp in s.get("spans").and_then(Json::as_arr).unwrap_or(&[]) {
            spans.push((
                sp.get("name")
                    .and_then(Json::as_str)
                    .ok_or("baseline stage span: missing name")?
                    .to_string(),
                sp.get("dur_ns")
                    .and_then(Json::as_u64)
                    .ok_or("baseline stage span: missing dur_ns")?,
            ));
        }
        b.stages.push(StageTimings {
            bench: s
                .get("bench")
                .and_then(Json::as_str)
                .ok_or("baseline stage: missing bench")?
                .to_string(),
            spans,
            runs: s.get("runs").and_then(Json::as_u64).unwrap_or(0),
            hits: s.get("hits").and_then(Json::as_u64).unwrap_or(0),
        });
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{FaultMetrics, QueueMetrics, ThreadMetrics};

    fn sample() -> Baseline {
        Baseline {
            schema_version: SCHEMA_VERSION,
            env: vec![("os".into(), "linux".into()), ("arch".into(), "x86_64".into())],
            entries: vec![BaselineEntry {
                bench: "aes".into(),
                mode: "hybrid".into(),
                scale: 1,
                metrics: SimMetrics {
                    cycles: 1736,
                    threads: vec![ThreadMetrics {
                        name: "cpu".into(),
                        busy: 1000,
                        queue_empty: 700,
                        idle: 36,
                        ..Default::default()
                    }],
                    queues: vec![QueueMetrics {
                        name: "q0".into(),
                        depth: 8,
                        pushes: 40,
                        pops: 40,
                        high_water: 3,
                        full_stalls: 0,
                        empty_stalls: 12,
                        occupancy_hist: vec![5, 30, 5],
                    }],
                    dropped_events: 0,
                    faults: FaultMetrics::default(),
                },
            }],
            stages: vec![StageTimings {
                bench: "aes".into(),
                spans: vec![("dswp".into(), 1_200_000), ("hls".into(), 800_000)],
                runs: 2,
                hits: 1,
            }],
        }
    }

    #[test]
    fn round_trips_exactly() {
        let b = sample();
        let parsed = parse(&b.to_json()).expect("baseline JSON parses");
        assert_eq!(parsed, b);
        // And the serialization is a fixpoint (stable committed file).
        assert_eq!(parsed.to_json(), b.to_json());
    }

    #[test]
    fn unknown_schema_version_is_an_error() {
        let newer = sample().to_json().replacen(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            &format!("\"schema_version\": {}", SCHEMA_VERSION + 41),
            1,
        );
        let err = parse(&newer).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
        assert!(err.contains(&format!("{}", SCHEMA_VERSION + 41)), "{err}");
    }

    #[test]
    fn find_locates_entries_and_stages() {
        let b = sample();
        assert_eq!(b.find("aes", "hybrid").unwrap().cycles(), 1736);
        assert!(b.find("aes", "sw").is_none());
        assert_eq!(b.find_stages("aes").unwrap().total_ns(), 2_000_000);
        assert!(b.find_stages("gsm").is_none());
    }

    #[test]
    fn missing_schema_version_is_an_error() {
        assert!(parse("{}").unwrap_err().contains("schema_version"));
    }
}
