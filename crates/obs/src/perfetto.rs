//! Chrome `trace_event` JSON export, loadable in `ui.perfetto.dev` (or
//! `chrome://tracing`).
//!
//! Layout:
//! * **pid 1 — "twill compiler (wall clock)"**: one `X` complete event per
//!   compiler stage span, timestamps in microseconds since the process
//!   observability epoch.
//! * **pid 2 — "twill simulator (cycles)"**: one slice track per simulated
//!   agent (`B`/`E` pairs from op start/retire/cancel, instants for
//!   stalls, context switches and output), plus one `C` counter track per
//!   queue tracking occupancy.
//!
//! Compiler spans and simulator events use different time units, so they
//! live in different process groups rather than pretending nanoseconds
//! and cycles share an axis. Dropped-event counts and caller metadata go
//! in `otherData`.

use crate::event::{Event, EventKind};
use crate::json;
use crate::span::Span;
use crate::timeseries::Timeline;
use std::fmt::Write as _;

const COMPILER_PID: u32 = 1;
const SIM_PID: u32 = 2;

/// Assembles a Chrome/Perfetto trace from plain data. No simulator types
/// appear here, so the exporter is trivially testable (and reusable for
/// traces that never came from a live run).
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    thread_names: Vec<String>,
    queue_names: Vec<String>,
    events: Vec<Event>,
    dropped: u64,
    spans: Vec<Span>,
    metadata: Vec<(String, String)>,
    timeline: Option<Timeline>,
}

impl TraceBuilder {
    pub fn new() -> TraceBuilder {
        TraceBuilder::default()
    }

    /// Name the simulator tracks, in track-index order (`cpu`, `hw1`, …).
    /// Tracks that appear in events but not here fall back to `t<N>`.
    pub fn threads<S: Into<String>>(mut self, names: impl IntoIterator<Item = S>) -> Self {
        self.thread_names = names.into_iter().map(Into::into).collect();
        self
    }

    /// Name the queue counter tracks, in queue-index order.
    pub fn queues<S: Into<String>>(mut self, names: impl IntoIterator<Item = S>) -> Self {
        self.queue_names = names.into_iter().map(Into::into).collect();
        self
    }

    /// Supply the simulator events plus how many the ring buffer dropped.
    pub fn events(mut self, events: Vec<Event>, dropped: u64) -> Self {
        self.events = events;
        self.dropped = dropped;
        self
    }

    /// Supply compiler-side wall-clock spans.
    pub fn spans(mut self, spans: Vec<Span>) -> Self {
        self.spans = spans;
        self
    }

    /// Attach a key/value pair to `otherData`.
    pub fn meta(mut self, key: &str, value: &str) -> Self {
        self.metadata.push((key.to_string(), value.to_string()));
        self
    }

    /// Attach a sampled counter timeline: emits real timestamped `C`
    /// counter tracks — one per (thread, stall class) with any activity,
    /// plus a sampled-occupancy track per queue — so Perfetto plots how
    /// stalls and queue levels evolve over the run instead of a single
    /// end-of-run total.
    pub fn timeline(mut self, t: Timeline) -> Self {
        self.timeline = Some(t);
        self
    }

    fn thread_name(&self, track: u16) -> String {
        self.thread_names.get(track as usize).cloned().unwrap_or_else(|| format!("t{track}"))
    }

    fn queue_name(&self, queue: u16) -> String {
        self.queue_names.get(queue as usize).cloned().unwrap_or_else(|| format!("q{queue}"))
    }

    /// Render the trace as a JSON document.
    pub fn build(&self) -> String {
        let mut ev = Vec::new();

        if !self.spans.is_empty() {
            ev.push(meta_event("process_name", COMPILER_PID, 0, "twill compiler (wall clock)"));
            ev.push(meta_event("thread_name", COMPILER_PID, 0, "build stages"));
            for s in &self.spans {
                // Complete events; timestamps are microseconds.
                ev.push(format!(
                    "{{\"name\": {}, \"ph\": \"X\", \"pid\": {COMPILER_PID}, \"tid\": 0, \
                     \"ts\": {}, \"dur\": {}, \"cat\": \"compile\"}}",
                    json::quote(&s.name),
                    json::number(s.start_ns as f64 / 1000.0),
                    json::number((s.dur_ns.max(1)) as f64 / 1000.0),
                ));
            }
        }

        if !self.events.is_empty() || !self.thread_names.is_empty() {
            ev.push(meta_event("process_name", SIM_PID, 0, "twill simulator (cycles)"));
            let mut named: Vec<u16> = (0..self.thread_names.len() as u16).collect();
            for e in &self.events {
                if !named.contains(&e.track) {
                    named.push(e.track);
                }
            }
            named.sort_unstable();
            for track in named {
                ev.push(meta_event("thread_name", SIM_PID, track, &self.thread_name(track)));
            }
        }

        // Per-track open-slice depth, so an `E` whose `B` was lost to ring
        // truncation is skipped instead of corrupting the track.
        let max_track = self.events.iter().map(|e| e.track as usize + 1).max().unwrap_or(0);
        let mut depth = vec![0u32; max_track];

        for e in &self.events {
            let tid = e.track;
            match e.kind {
                EventKind::OpStart { op } => {
                    depth[tid as usize] += 1;
                    ev.push(format!(
                        "{{\"name\": {}, \"ph\": \"B\", \"pid\": {SIM_PID}, \"tid\": {tid}, \
                         \"ts\": {}, \"cat\": \"op\"}}",
                        json::quote(op.name()),
                        e.cycle,
                    ));
                }
                EventKind::OpRetire { op } | EventKind::OpCancel { op } => {
                    if depth[tid as usize] == 0 {
                        continue; // opening edge was dropped
                    }
                    depth[tid as usize] -= 1;
                    let cancelled = matches!(e.kind, EventKind::OpCancel { .. });
                    ev.push(format!(
                        "{{\"name\": {}, \"ph\": \"E\", \"pid\": {SIM_PID}, \"tid\": {tid}, \
                         \"ts\": {}, \"cat\": \"op\", \"args\": {{\"cancelled\": {cancelled}}}}}",
                        json::quote(op.name()),
                        e.cycle,
                    ));
                }
                EventKind::QueuePush { queue, occupancy }
                | EventKind::QueuePop { queue, occupancy } => {
                    ev.push(format!(
                        "{{\"name\": {}, \"ph\": \"C\", \"pid\": {SIM_PID}, \"tid\": {tid}, \
                         \"ts\": {}, \"args\": {{\"occupancy\": {occupancy}}}}}",
                        json::quote(&format!("{} occupancy", self.queue_name(queue))),
                        e.cycle,
                    ));
                }
                EventKind::QueueStall { queue, full } => {
                    ev.push(instant(
                        &format!(
                            "stall: {} {}",
                            self.queue_name(queue),
                            if full { "full" } else { "empty" }
                        ),
                        tid,
                        e.cycle,
                    ));
                }
                EventKind::SemWait { sem } => {
                    ev.push(instant(&format!("wait: sem{sem}"), tid, e.cycle));
                }
                EventKind::SemSignal { sem, value } => {
                    ev.push(format!(
                        "{{\"name\": {}, \"ph\": \"C\", \"pid\": {SIM_PID}, \"tid\": {tid}, \
                         \"ts\": {}, \"args\": {{\"value\": {value}}}}}",
                        json::quote(&format!("sem{sem}")),
                        e.cycle,
                    ));
                }
                EventKind::ContextSwitch { to } => {
                    ev.push(instant(&format!("switch to sw-thread {to}"), tid, e.cycle));
                }
                EventKind::Output { value } => {
                    ev.push(instant(&format!("out {value}"), tid, e.cycle));
                }
                EventKind::Fault { fault, unit } => {
                    ev.push(instant(&format!("fault: {} unit={unit}", fault.name()), tid, e.cycle));
                }
            }
        }

        if let Some(t) = &self.timeline {
            // One counter track per (thread, stall class) that ever moved;
            // all-zero tracks are skipped so the UI stays readable. The
            // timestamp is the closing cycle of each sample window.
            let totals = t.thread_totals();
            for (ti, name) in t.thread_names.iter().enumerate() {
                for (ci, class) in crate::timeseries::CLASS_NAMES.iter().enumerate() {
                    if totals.get(ti).map(|b| b.as_array()[ci]).unwrap_or(0) == 0 {
                        continue;
                    }
                    for iv in &t.intervals {
                        ev.push(format!(
                            "{{\"name\": {}, \"ph\": \"C\", \"pid\": {SIM_PID}, \"tid\": {ti}, \
                             \"ts\": {}, \"args\": {{\"cycles\": {}}}}}",
                            json::quote(&format!("{name}:{class}")),
                            iv.end,
                            iv.threads[ti].as_array()[ci],
                        ));
                    }
                }
            }
            // Sampled occupancy levels per queue — named distinctly from
            // the event-driven `{q} occupancy` push/pop counters so the
            // two sources never interleave on one track.
            for (qi, qname) in t.queue_names.iter().enumerate() {
                for iv in &t.intervals {
                    ev.push(format!(
                        "{{\"name\": {}, \"ph\": \"C\", \"pid\": {SIM_PID}, \"tid\": 0, \
                         \"ts\": {}, \"args\": {{\"occupancy\": {}}}}}",
                        json::quote(&format!("{qname} occupancy (sampled)")),
                        iv.end,
                        iv.queues[qi].occupancy,
                    ));
                }
            }
        }

        let mut out = String::new();
        out.push_str("{\n  \"traceEvents\": [\n");
        for (i, line) in ev.iter().enumerate() {
            let _ = write!(out, "    {line}");
            out.push_str(if i + 1 < ev.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"displayTimeUnit\": \"ns\",\n  \"otherData\": {\n");
        let _ = write!(out, "    \"dropped_events\": \"{}\"", self.dropped);
        for (k, v) in &self.metadata {
            let _ = write!(out, ",\n    {}: {}", json::quote(k), json::quote(v));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

fn meta_event(name: &str, pid: u32, tid: u16, value: &str) -> String {
    format!(
        "{{\"name\": \"{name}\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
         \"args\": {{\"name\": {}}}}}",
        json::quote(value)
    )
}

fn instant(name: &str, tid: u16, cycle: u64) -> String {
    format!(
        "{{\"name\": {}, \"ph\": \"i\", \"pid\": {SIM_PID}, \"tid\": {tid}, \
         \"ts\": {cycle}, \"s\": \"t\"}}",
        json::quote(name)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OpClass;
    use crate::json::parse;

    fn ev(cycle: u64, track: u16, kind: EventKind) -> Event {
        Event { cycle, track, kind }
    }

    fn sample_events() -> Vec<Event> {
        vec![
            ev(1, 0, EventKind::OpStart { op: OpClass::Enqueue }),
            ev(1, 1, EventKind::OpStart { op: OpClass::Dequeue }),
            ev(2, 1, EventKind::QueueStall { queue: 0, full: false }),
            ev(4, 0, EventKind::QueuePush { queue: 0, occupancy: 1 }),
            ev(4, 0, EventKind::OpRetire { op: OpClass::Enqueue }),
            ev(5, 1, EventKind::QueuePop { queue: 0, occupancy: 0 }),
            ev(5, 1, EventKind::OpRetire { op: OpClass::Dequeue }),
            ev(6, 0, EventKind::ContextSwitch { to: 1 }),
            ev(7, 1, EventKind::Output { value: 42 }),
        ]
    }

    #[test]
    fn export_parses_and_has_expected_shape() {
        let out = TraceBuilder::new()
            .threads(["cpu", "hw1"])
            .queues(["q0"])
            .events(sample_events(), 0)
            .meta("benchmark", "mips")
            .build();
        let doc = parse(&out).expect("trace must be valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();

        let count =
            |ph: &str| events.iter().filter(|e| e.get("ph").unwrap().as_str() == Some(ph)).count();
        assert_eq!(count("B"), 2);
        assert_eq!(count("E"), 2);
        assert_eq!(count("C"), 2, "one counter sample per push/pop");
        assert_eq!(count("i"), 3, "stall + switch + output instants");
        // process_name + two thread_name metadata records.
        assert_eq!(count("M"), 3);

        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .map(|e| e.get("args").unwrap().get("name").unwrap().as_str().unwrap())
            .collect();
        assert!(names.contains(&"cpu"));
        assert!(names.contains(&"hw1"));
        assert!(names.contains(&"twill simulator (cycles)"));

        assert_eq!(doc.get("otherData").unwrap().get("benchmark").unwrap().as_str(), Some("mips"));
    }

    #[test]
    fn spans_go_to_the_compiler_process() {
        let out = TraceBuilder::new()
            .spans(vec![
                Span { name: "frontend".into(), start_ns: 10_000, dur_ns: 5_000 },
                Span { name: "dswp".into(), start_ns: 20_000, dur_ns: 1_000 },
            ])
            .build();
        let doc = parse(&out).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let xs: Vec<_> =
            events.iter().filter(|e| e.get("ph").unwrap().as_str() == Some("X")).collect();
        assert_eq!(xs.len(), 2);
        for x in &xs {
            assert_eq!(x.get("pid").unwrap().as_u64(), Some(COMPILER_PID as u64));
        }
        assert_eq!(xs[0].get("ts").unwrap().as_f64(), Some(10.0), "ns -> us");
    }

    #[test]
    fn orphan_end_events_are_skipped() {
        // Ring truncation can lose an OpStart; its retire must not emit an
        // unmatched E.
        let out = TraceBuilder::new()
            .events(
                vec![
                    ev(3, 0, EventKind::OpRetire { op: OpClass::Dequeue }),
                    ev(4, 0, EventKind::OpStart { op: OpClass::Out }),
                    ev(5, 0, EventKind::OpCancel { op: OpClass::Out }),
                ],
                12,
            )
            .build();
        let doc = parse(&out).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let count =
            |ph: &str| events.iter().filter(|e| e.get("ph").unwrap().as_str() == Some(ph)).count();
        assert_eq!(count("B"), 1);
        assert_eq!(count("E"), 1, "only the cancel that closes a live slice");
        assert_eq!(
            doc.get("otherData").unwrap().get("dropped_events").unwrap().as_str(),
            Some("12")
        );
    }

    #[test]
    fn empty_builder_still_produces_valid_json() {
        let doc = parse(&TraceBuilder::new().build()).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn timeline_becomes_timestamped_counter_tracks() {
        use crate::timeseries::{Interval, QueueWindow, Timeline};
        let bd = |busy, qf| crate::CycleBreakdown { busy, queue_full: qf, ..Default::default() };
        let t = Timeline {
            sample_interval: 100,
            thread_names: vec!["cpu".into(), "hw1".into()],
            queue_names: vec!["q0".into()],
            intervals: vec![
                Interval {
                    start: 1,
                    end: 100,
                    threads: vec![bd(90, 10), bd(100, 0)],
                    queues: vec![QueueWindow { occupancy: 2, ..Default::default() }],
                },
                Interval {
                    start: 101,
                    end: 130,
                    threads: vec![bd(30, 0), bd(30, 0)],
                    queues: vec![QueueWindow { occupancy: 0, ..Default::default() }],
                },
            ],
        };
        let out = TraceBuilder::new().threads(["cpu", "hw1"]).queues(["q0"]).timeline(t).build();
        let doc = parse(&out).expect("trace with timeline must be valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let counters: Vec<_> =
            events.iter().filter(|e| e.get("ph").unwrap().as_str() == Some("C")).collect();
        let named = |n: &str| {
            counters.iter().filter(|e| e.get("name").unwrap().as_str() == Some(n)).count()
        };
        // Active (thread, class) tracks get one sample per interval; the
        // all-zero tracks (e.g. hw1:queue-full) are skipped entirely.
        assert_eq!(named("cpu:busy"), 2);
        assert_eq!(named("cpu:queue-full"), 2);
        assert_eq!(named("hw1:busy"), 2);
        assert_eq!(named("hw1:queue-full"), 0);
        assert_eq!(named("q0 occupancy (sampled)"), 2);
        // Timestamps are the interval end cycles.
        let ts: Vec<u64> = counters
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("cpu:busy"))
            .map(|e| e.get("ts").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(ts, vec![100, 130]);
    }
}
