//! Shared human-readable rendering of a profiled run: the one formatter
//! behind `twillc --profile`, `twill-bench profile`, and the compare
//! report, so every surface prints the same header, stall/utilization
//! table, and compiler-stage timing section.

use crate::metrics::SimMetrics;
use crate::span::Span;
use std::fmt::Write as _;

/// Compiler-side timing data to append to a profile report: the stage
/// execution spans plus the `StageCounts` run/hit totals.
#[derive(Debug, Clone, Copy)]
pub struct StageSection<'a> {
    pub spans: &'a [Span],
    /// Stage executions (cache misses — the work actually done).
    pub runs: usize,
    /// Demands answered from a memoization cache.
    pub hits: usize,
}

/// Render one run's profile: `=== title (N cycles) ===`, the per-thread
/// stall/utilization table, and (when provided) the wall-clock compiler
/// stage timings.
pub fn profile_report(title: &str, m: &SimMetrics, stages: Option<StageSection<'_>>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== {title} ({} cycles) ===", m.cycles);
    out.push_str(&m.profile_table());
    if let Some(s) = stages {
        out.push_str("compiler stages (wall clock):\n");
        for span in s.spans {
            let _ = writeln!(out, "  {:<10} {:>9.2} ms", span.name, span.dur_ns as f64 / 1e6);
        }
        let _ = writeln!(out, "  {} stage run(s), {} cache hit(s)", s.runs, s.hits);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{FaultMetrics, ThreadMetrics};

    fn metrics() -> SimMetrics {
        SimMetrics {
            cycles: 500,
            threads: vec![ThreadMetrics {
                name: "cpu".into(),
                busy: 400,
                idle: 100,
                ..Default::default()
            }],
            queues: vec![],
            dropped_events: 0,
            faults: FaultMetrics::default(),
        }
    }

    #[test]
    fn header_table_and_stage_section() {
        let spans = [Span { name: "dswp".into(), start_ns: 0, dur_ns: 2_500_000 }];
        let r = profile_report(
            "aes",
            &metrics(),
            Some(StageSection { spans: &spans, runs: 3, hits: 1 }),
        );
        assert!(r.starts_with("=== aes (500 cycles) ==="), "{r}");
        assert!(r.contains("busy%"), "{r}");
        assert!(r.contains("dswp"), "{r}");
        assert!(r.contains("2.50 ms"), "{r}");
        assert!(r.contains("3 stage run(s), 1 cache hit(s)"), "{r}");
    }

    #[test]
    fn stage_section_is_optional() {
        let r = profile_report("aes", &metrics(), None);
        assert!(!r.contains("compiler stages"), "{r}");
    }
}
